package spectra_test

import (
	"fmt"
	"time"

	"spectra"
)

// Example shows the complete Spectra flow on a simulated testbed: register
// an operation, self-tune over both plans, then let Spectra place the next
// execution.
func Example() {
	client := spectra.NewMachine(spectra.MachineConfig{
		Name: "handheld", SpeedMHz: 100, OnWallPower: true,
	})
	server := spectra.NewMachine(spectra.MachineConfig{
		Name: "server", SpeedMHz: 1000, OnWallPower: true,
	})
	link := spectra.NewLink(spectra.LinkConfig{
		Name: "lan", Latency: time.Millisecond, BandwidthBps: 1 << 20,
	})
	setup, err := spectra.NewSimSetup(spectra.SimOptions{
		Host:    client,
		Servers: []spectra.SimServer{{Name: "server", Machine: server, Link: link}},
	})
	if err != nil {
		fmt.Println("setup:", err)
		return
	}

	work := func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: 500})
		return []byte("ok"), nil
	}
	setup.Env.Host().RegisterService("work", work)
	if node, _, ok := setup.Env.Server("server"); ok {
		node.RegisterService("work", work)
	}

	op, err := setup.Client.RegisterFidelity(spectra.OperationSpec{
		Name:    "example.work",
		Service: "work",
		Plans: []spectra.PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	})
	if err != nil {
		fmt.Println("register:", err)
		return
	}
	setup.Refresh()

	// Self-tune: one execution of each plan.
	for _, alt := range []spectra.Alternative{
		{Plan: "local"},
		{Server: "server", Plan: "remote"},
	} {
		octx, err := setup.Client.BeginForced(op, alt, nil, "")
		if err != nil {
			fmt.Println("begin:", err)
			return
		}
		if alt.Plan == "remote" {
			_, err = octx.DoRemoteOp("run", nil)
		} else {
			_, err = octx.DoLocalOp("run", nil)
		}
		if err != nil {
			fmt.Println("do:", err)
			return
		}
		if _, err := octx.End(); err != nil {
			fmt.Println("end:", err)
			return
		}
	}

	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		fmt.Println("decide:", err)
		return
	}
	fmt.Printf("plan=%s server=%s\n", octx.Plan(), octx.Server())
	if _, err := octx.DoRemoteOp("run", nil); err != nil {
		fmt.Println("run:", err)
		return
	}
	rep, err := octx.End()
	if err != nil {
		fmt.Println("end:", err)
		return
	}
	fmt.Printf("elapsed=%v remoteMc=%.0f\n",
		rep.Elapsed.Round(100*time.Millisecond), rep.Usage.RemoteMegacycles)
	// Output:
	// plan=remote server=server
	// elapsed=500ms remoteMc=500
}

// ExampleContinuousFidelity demonstrates a continuous quality knob: the
// chosen value comes back as a parseable fidelity setting.
func ExampleContinuousFidelity() {
	fid := map[string]string{"quality": spectra.FormatContinuous(0.8)}
	q, ok := spectra.ContinuousValue(fid, "quality")
	fmt.Println(q, ok)
	// Output:
	// 0.8 true
}

// ExampleHoardProfile shows Coda-style hoarding: priorities order the walk.
func ExampleHoardProfile() {
	p := spectra.NewHoardProfile()
	p.Add("/coda/app/model.bin", 10)
	p.Add("/coda/app/config", 5)
	for _, e := range p.Entries() {
		fmt.Printf("%s (priority %d)\n", e.Path, e.Priority)
	}
	// Output:
	// /coda/app/model.bin (priority 10)
	// /coda/app/config (priority 5)
}
