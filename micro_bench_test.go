package spectra_test

import (
	"testing"
	"time"

	"spectra/internal/apps/janus"
	"spectra/internal/predict"
	"spectra/internal/rpc"
	"spectra/internal/solver"
	"spectra/internal/testbed"
	"spectra/internal/wire"

	spectrapub "spectra"
)

// --- Hot-path micro-benchmarks --------------------------------------------

// benchSpeechApp assembles the trained speech workload for Begin
// micro-benchmarks: the testbed, the janus app, and three forced training
// passes over each alternative so decisions are self-tuned.
func benchSpeechApp(b *testing.B, opts testbed.Options) (*testbed.Speech, *janus.App) {
	b.Helper()
	tb, err := testbed.NewSpeech(opts)
	if err != nil {
		b.Fatal(err)
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		b.Fatal(err)
	}
	tb.Setup.Refresh()
	alts := []solver.Alternative{
		{Plan: janus.PlanLocal, Fidelity: map[string]string{janus.FidelityDim: janus.VocabFull}},
		{Server: "t20", Plan: janus.PlanHybrid, Fidelity: map[string]string{janus.FidelityDim: janus.VocabFull}},
		{Server: "t20", Plan: janus.PlanRemote, Fidelity: map[string]string{janus.FidelityDim: janus.VocabFull}},
	}
	for i := 0; i < 3; i++ {
		for _, alt := range alts {
			if _, err := app.RecognizeForced(alt, 2); err != nil {
				b.Fatal(err)
			}
		}
	}
	return tb, app
}

// runBeginLoop is the measured Begin/Abort loop shared by the solver-path
// and warm-path benchmarks.
func runBeginLoop(b *testing.B, tb *testbed.Speech, app *janus.App) {
	b.Helper()
	params := map[string]float64{janus.ParamLength: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		octx, err := tb.Setup.Client.BeginFidelityOp(app.Operation(), params, "")
		if err != nil {
			b.Fatal(err)
		}
		octx.Abort()
	}
}

// BenchmarkBeginFidelityOp measures one full placement decision on the
// trained speech workload: snapshot, file prediction, solve, consistency.
func BenchmarkBeginFidelityOp(b *testing.B) {
	tb, app := benchSpeechApp(b, testbed.Options{})
	runBeginLoop(b, tb, app)
}

// BenchmarkBeginFidelityOpWarm measures the same Begin with the
// placement-decision cache enabled: after the first solve, every iteration
// is a warm hit — fingerprint comparison instead of predict + search. The
// virtual clock is frozen during the loop, so neither the snapshot TTL nor
// the decision TTL expires; the ratio to BenchmarkBeginFidelityOp is the
// cache's speedup.
func BenchmarkBeginFidelityOpWarm(b *testing.B) {
	tb, app := benchSpeechApp(b, testbed.Options{
		Cache:       spectrapub.CacheOptions{Enabled: true},
		SnapshotTTL: time.Hour,
	})
	runBeginLoop(b, tb, app)
}

// BenchmarkSolverHeuristic97 measures the search alone over the Pangloss
// decision space with a synthetic utility.
func BenchmarkSolverHeuristic97(b *testing.B) {
	alts := panglossSpace()
	eval := func(a solver.Alternative) float64 {
		return float64(len(a.Plan)) + float64(len(a.Server))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.Heuristic(alts, eval, solver.Options{})
	}
}

// BenchmarkSolverExhaustive97 is the oracle counterpart.
func BenchmarkSolverExhaustive97(b *testing.B) {
	alts := panglossSpace()
	eval := func(a solver.Alternative) float64 {
		return float64(len(a.Plan)) + float64(len(a.Server))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.Exhaustive(alts, eval)
	}
}

func panglossSpace() []solver.Alternative {
	var alts []solver.Alternative
	for _, s := range []string{"a", "b"} {
		for _, p := range []string{"p1", "p2", "p3", "p4"} {
			for _, f := range []string{"x", "y", "z"} {
				alts = append(alts, solver.Alternative{
					Server:   s,
					Plan:     p,
					Fidelity: map[string]string{"f": f},
				})
			}
		}
	}
	return alts
}

// BenchmarkLinearModelObserve measures one online regression update.
func BenchmarkLinearModelObserve(b *testing.B) {
	m := predict.NewLinearModel([]string{"a", "b", "c"})
	params := map[string]float64{"a": 1, "b": 2, "c": 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(params, float64(i))
	}
}

// BenchmarkLinearModelPredict measures one regression solve + evaluate.
func BenchmarkLinearModelPredict(b *testing.B) {
	m := predict.NewLinearModel([]string{"a", "b", "c"})
	params := map[string]float64{"a": 1, "b": 2, "c": 3}
	for i := 0; i < 100; i++ {
		params["a"] = float64(i)
		m.Observe(params, float64(3*i+7))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(params)
	}
}

// BenchmarkTrafficEstimate measures one bandwidth/latency fit over a full
// observation window.
func BenchmarkTrafficEstimate(b *testing.B) {
	l := rpc.NewTrafficLog()
	for i := 0; i < rpc.DefaultLogWindow; i++ {
		l.Record(rpc.TrafficObservation{
			Bytes:   int64(1000 * (i + 1)),
			Elapsed: time.Duration(i+1) * time.Millisecond,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := l.Estimate(); !ok {
			b.Fatal("no estimate")
		}
	}
}

// BenchmarkWireRoundTrip measures message encode+decode.
func BenchmarkWireRoundTrip(b *testing.B) {
	msg := &wire.Message{
		Type:    wire.MsgRequest,
		ID:      1,
		Service: "svc",
		OpType:  "op",
		Payload: make([]byte, 1024),
	}
	var buf loopBuffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.reset()
		if _, err := wire.WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// loopBuffer is a minimal in-memory read/write buffer.
type loopBuffer struct {
	data []byte
	off  int
}

func (l *loopBuffer) reset() { l.data = l.data[:0]; l.off = 0 }

func (l *loopBuffer) Write(p []byte) (int, error) {
	l.data = append(l.data, p...)
	return len(p), nil
}

func (l *loopBuffer) Read(p []byte) (int, error) {
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// BenchmarkLiveRPCRoundTrip measures a real loopback Spectra RPC.
func BenchmarkLiveRPCRoundTrip(b *testing.B) {
	machine := spectrapub.NewMachine(spectrapub.MachineConfig{
		Name: "bench", SpeedMHz: 1_000_000, OnWallPower: true,
	})
	node := spectrapub.NewNode(machine, nil, nil)
	srv := spectrapub.NewServer("bench", node, spectrapub.RealClock{})
	srv.Register("echo", func(ctx *spectrapub.ServiceContext, optype string, payload []byte) ([]byte, error) {
		return payload, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := rpc.Dial(addr, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.Call("echo", "op", payload); err != nil {
			b.Fatal(err)
		}
	}
}
