// End-to-end tests of the public API, written the way a downstream user
// would use the package.
package spectra_test

import (
	"testing"
	"time"

	"spectra"
)

// newPublicSetup assembles a deployment purely through the public API.
func newPublicSetup(t *testing.T) *spectra.SimSetup {
	t.Helper()
	client := spectra.NewMachine(spectra.MachineConfig{
		Name:        "handheld",
		SpeedMHz:    200,
		OnWallPower: true,
		Battery:     spectra.NewBattery(50_000),
	})
	server := spectra.NewMachine(spectra.MachineConfig{
		Name:        "server",
		SpeedMHz:    2000,
		OnWallPower: true,
	})
	link := spectra.NewLink(spectra.LinkConfig{
		Name:         "lan",
		Latency:      2 * time.Millisecond,
		BandwidthBps: 1 << 20,
	})
	setup, err := spectra.NewSimSetup(spectra.SimOptions{
		Host:    client,
		Servers: []spectra.SimServer{{Name: "server", Machine: server, Link: link}},
	})
	if err != nil {
		t.Fatal(err)
	}
	work := func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: 400})
		return []byte("out"), nil
	}
	setup.Env.Host().RegisterService("svc", work)
	if node, _, ok := setup.Env.Server("server"); ok {
		node.RegisterService("svc", work)
	}
	return setup
}

func publicSpec() spectra.OperationSpec {
	return spectra.OperationSpec{
		Name:    "public.op",
		Service: "svc",
		Plans: []spectra.PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
		LatencyUtility: spectra.InverseLatency,
	}
}

func TestPublicAPIFlow(t *testing.T) {
	setup := newPublicSetup(t)
	op, err := setup.Client.RegisterFidelity(publicSpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()

	for i := 0; i < 3; i++ {
		for _, alt := range []spectra.Alternative{
			{Plan: "local"},
			{Server: "server", Plan: "remote"},
		} {
			octx, err := setup.Client.BeginForced(op, alt, nil, "")
			if err != nil {
				t.Fatal(err)
			}
			if alt.Plan == "remote" {
				_, err = octx.DoRemoteOp("run", nil)
			} else {
				_, err = octx.DoLocalOp("run", nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := octx.End(); err != nil {
				t.Fatal(err)
			}
		}
	}

	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	d := octx.Decision()
	if d.Alternative.Plan != "remote" {
		t.Fatalf("decision = %+v, want remote", d.Alternative)
	}
	if d.Predicted.Latency <= 0 || !d.Predicted.Feasible {
		t.Fatalf("prediction = %+v", d.Predicted)
	}
	out, err := octx.DoRemoteOp("run", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "out" {
		t.Fatalf("output = %q", out)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Usage.RemoteMegacycles != 400 {
		t.Fatalf("usage = %+v", rep.Usage)
	}
}

func TestPublicCodaTypes(t *testing.T) {
	setup := newPublicSetup(t)
	fs := setup.FileServer
	fs.Store("vol", "/coda/file", 1000)
	cm := setup.Env.Host().Coda()
	cm.SetMode(spectra.Weak)
	if cm.Mode() != spectra.Weak {
		t.Fatalf("mode = %v", cm.Mode())
	}
	if _, err := cm.Write("/coda/file", 1200); err != nil {
		t.Fatal(err)
	}
	if got := cm.DirtyVolumes(); len(got) != 1 || got[0] != "vol" {
		t.Fatalf("dirty volumes = %v", got)
	}
}

func TestPublicGoalAdaptation(t *testing.T) {
	setup := newPublicSetup(t)
	setup.Adaptor.SetGoal(10 * time.Hour)
	if c := setup.Adaptor.Importance(); c < 0 || c > 1 {
		t.Fatalf("importance = %v", c)
	}
}

func TestPublicAnnounceRegistry(t *testing.T) {
	reg := spectra.NewAnnounceRegistry(spectra.RealClock{}, time.Minute)
	reg.Announce("dynamic-server")
	if got := reg.Discover(); len(got) != 1 || got[0] != "dynamic-server" {
		t.Fatalf("discover = %v", got)
	}
}

func TestPublicParallelOps(t *testing.T) {
	setup := newPublicSetup(t)
	op, err := setup.Client.RegisterFidelity(publicSpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	octx, err := setup.Client.BeginForced(op,
		spectra.Alternative{Server: "server", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := octx.DoParallelOps([]spectra.ParallelCall{
		{OpType: "run"},
		{OpType: "run"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outputs = %d", len(outs))
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Usage.RemoteMegacycles != 800 {
		t.Fatalf("usage = %+v", rep.Usage)
	}
}

func TestPublicLiveMode(t *testing.T) {
	serverMachine := spectra.NewMachine(spectra.MachineConfig{
		Name: "live", SpeedMHz: 1000, OnWallPower: true,
	})
	node := spectra.NewNode(serverMachine, nil, nil)
	srv := spectra.NewServer("live", node, spectra.RealClock{})
	srv.Register("svc", func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: 10})
		return []byte("live"), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	setup, err := spectra.NewLiveSetup(spectra.LiveOptions{
		Servers: map[string]string{"live": addr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Runtime.Close()

	op, err := setup.Client.RegisterFidelity(spectra.OperationSpec{
		Name:    "live.op",
		Service: "svc",
		Plans:   []spectra.PlanSpec{{Name: "remote", UsesServer: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Client.PollServers()

	octx, err := setup.Client.BeginForced(op,
		spectra.Alternative{Server: "live", Plan: "remote"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := octx.DoRemoteOp("run", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "live" {
		t.Fatalf("output = %q", out)
	}
	if _, err := octx.End(); err != nil {
		t.Fatal(err)
	}
}
