module spectra

go 1.23
