// Command viewer demonstrates continuous fidelity: an image viewer fetches
// remotely rendered images at a quality setting Spectra chooses from a
// continuous range. The demand models regress on the quality value, so
// predictions interpolate between trained settings, and the chosen quality
// degrades gracefully as the network slows.
package main

import (
	"fmt"
	"log"
	"time"

	"spectra"
)

const fullImageBytes = 400_000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tablet := spectra.NewMachine(spectra.MachineConfig{
		Name:        "tablet",
		SpeedMHz:    300,
		OnWallPower: true,
	})
	renderFarm := spectra.NewMachine(spectra.MachineConfig{
		Name:        "render-farm",
		SpeedMHz:    3000,
		OnWallPower: true,
	})
	link := spectra.NewLink(spectra.LinkConfig{
		Name:         "wan",
		Latency:      10 * time.Millisecond,
		BandwidthBps: 500_000,
	})
	setup, err := spectra.NewSimSetup(spectra.SimOptions{
		Host:    tablet,
		Servers: []spectra.SimServer{{Name: "render-farm", Machine: renderFarm, Link: link}},
	})
	if err != nil {
		return err
	}

	render := func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		quality := float64(len(payload)) / 1000
		ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: 200 * quality})
		return make([]byte, int(quality*fullImageBytes)), nil
	}
	node, _, _ := setup.Env.Server("render-farm")
	node.RegisterService("render", render)
	setup.Env.Host().RegisterService("render", render)

	op, err := setup.Client.RegisterFidelity(spectra.OperationSpec{
		Name:    "viewer.render",
		Service: "render",
		Plans:   []spectra.PlanSpec{{Name: "remote", UsesServer: true}},
		ContinuousFidelities: []spectra.ContinuousFidelity{
			{Name: "quality", Min: 0.2, Max: 1.0, Levels: 9},
		},
		LatencyUtility: spectra.DeadlineLatency(300*time.Millisecond, 6*time.Second),
		FidelityUtility: func(fid map[string]string) float64 {
			q, _ := spectra.ContinuousValue(fid, "quality")
			return q
		},
	})
	if err != nil {
		return err
	}
	setup.Refresh()

	fetch := func() (float64, time.Duration, error) {
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			return 0, 0, err
		}
		q, _ := spectra.ContinuousValue(octx.Fidelity(), "quality")
		if _, err := octx.DoRemoteOp("render", make([]byte, int(q*1000))); err != nil {
			return 0, 0, err
		}
		rep, err := octx.End()
		if err != nil {
			return 0, 0, err
		}
		return q, rep.Elapsed, nil
	}

	// Train three settings; regression covers the rest of the range.
	for i := 0; i < 4; i++ {
		for _, q := range []float64{0.2, 0.6, 1.0} {
			octx, err := setup.Client.BeginForced(op, spectra.Alternative{
				Server:   "render-farm",
				Plan:     "remote",
				Fidelity: map[string]string{"quality": spectra.FormatContinuous(q)},
			}, nil, "")
			if err != nil {
				return err
			}
			if _, err := octx.DoRemoteOp("render", make([]byte, int(q*1000))); err != nil {
				return err
			}
			if _, err := octx.End(); err != nil {
				return err
			}
		}
	}

	fmt.Println("Continuous quality adaptation as the network degrades:")
	for _, scale := range []float64{1, 0.5, 0.25, 0.125} {
		link.SetBandwidthBps(500_000 * scale)
		for i := 0; i < 45; i++ {
			setup.Refresh()
		}
		q, elapsed, err := fetch()
		if err != nil {
			return err
		}
		fmt.Printf("bandwidth %6.0f kB/s -> quality %.2f, fetched in %v\n",
			500*scale, q, elapsed.Round(10*time.Millisecond))
	}
	return nil
}
