// Command speech demonstrates adaptive offloading of a speech-recognizer-
// style workload, the paper's motivating application: a handheld with
// software floating point, a compute server over a serial link, local /
// hybrid / remote execution plans and a vocabulary fidelity. The demo
// cycles through the paper's resource scenarios and shows Spectra's
// placement adapting to each.
package main

import (
	"fmt"
	"log"
	"time"

	"spectra"
)

// Workload constants (see internal/apps/janus for the full calibration).
const (
	frontEndMc  = 300 // integer signal processing
	searchMc    = 600 // floating-point search, full vocabulary
	reducedMc   = 400 // floating-point search, reduced vocabulary
	audioBytes  = 32_000
	sampleBytes = 4_000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	handheld := spectra.NewItsy()
	server := spectra.NewT20()
	serial := spectra.NewLink(spectra.LinkConfig{
		Name:         "serial",
		Latency:      5 * time.Millisecond,
		BandwidthBps: 14_400,
	})
	setup, err := spectra.NewSimSetup(spectra.SimOptions{
		Host:    handheld,
		Servers: []spectra.SimServer{{Name: "server", Machine: server, Link: serial}},
	})
	if err != nil {
		return err
	}

	recognizer := func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		switch optype {
		case "frontend":
			ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: frontEndMc})
			return make([]byte, sampleBytes), nil
		case "search.full":
			ctx.Compute(spectra.ComputeDemand{FloatMegacycles: searchMc})
		case "search.reduced":
			ctx.Compute(spectra.ComputeDemand{FloatMegacycles: reducedMc})
		case "recognize.full":
			ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: frontEndMc, FloatMegacycles: searchMc})
		case "recognize.reduced":
			ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: frontEndMc, FloatMegacycles: reducedMc})
		}
		return []byte("recognized text"), nil
	}
	setup.Env.Host().RegisterService("speech", recognizer)
	if node, _, ok := setup.Env.Server("server"); ok {
		node.RegisterService("speech", recognizer)
	}

	op, err := setup.Client.RegisterFidelity(spectra.OperationSpec{
		Name:    "speech.recognize",
		Service: "speech",
		Plans: []spectra.PlanSpec{
			{Name: "local"},
			{Name: "hybrid", UsesServer: true},
			{Name: "remote", UsesServer: true},
		},
		Fidelities: []spectra.FidelityDimension{
			{Name: "vocab", Values: []string{"full", "reduced"}},
		},
		LatencyUtility: spectra.InverseLatency,
		FidelityUtility: func(fid map[string]string) float64 {
			if fid["vocab"] == "reduced" {
				return 0.5
			}
			return 1.0
		},
	})
	if err != nil {
		return err
	}
	setup.Refresh()

	execute := func(octx *spectra.OpContext) error {
		audio := make([]byte, audioBytes)
		vocab := octx.Fidelity()["vocab"]
		switch octx.Plan() {
		case "local":
			_, err := octx.DoLocalOp("recognize."+vocab, audio)
			return err
		case "remote":
			_, err := octx.DoRemoteOp("recognize."+vocab, audio)
			return err
		default: // hybrid
			features, err := octx.DoLocalOp("frontend", audio)
			if err != nil {
				return err
			}
			_, err = octx.DoRemoteOp("search."+vocab, features)
			return err
		}
	}

	// Train every alternative.
	alternatives := []spectra.Alternative{
		{Plan: "local", Fidelity: map[string]string{"vocab": "full"}},
		{Plan: "local", Fidelity: map[string]string{"vocab": "reduced"}},
		{Server: "server", Plan: "hybrid", Fidelity: map[string]string{"vocab": "full"}},
		{Server: "server", Plan: "hybrid", Fidelity: map[string]string{"vocab": "reduced"}},
		{Server: "server", Plan: "remote", Fidelity: map[string]string{"vocab": "full"}},
		{Server: "server", Plan: "remote", Fidelity: map[string]string{"vocab": "reduced"}},
	}
	for i := 0; i < 4; i++ {
		for _, alt := range alternatives {
			octx, err := setup.Client.BeginForced(op, alt, nil, "")
			if err != nil {
				return err
			}
			if err := execute(octx); err != nil {
				return err
			}
			if _, err := octx.End(); err != nil {
				return err
			}
		}
	}

	decide := func(label string) error {
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			return err
		}
		if err := execute(octx); err != nil {
			return err
		}
		rep, err := octx.End()
		if err != nil {
			return err
		}
		a := rep.Decision.Alternative
		fmt.Printf("%-22s -> plan=%-7s vocab=%-8s elapsed=%7v energy=%5.2fJ\n",
			label, a.Plan, a.Fidelity["vocab"],
			rep.Elapsed.Round(10*time.Millisecond), rep.Usage.EnergyJoules)
		return nil
	}

	fmt.Println("Spectra adapting a speech recognizer across scenarios:")
	if err := decide("baseline"); err != nil {
		return err
	}

	// Energy pressure: battery power, ambitious lifetime goal.
	handheld.SetWallPower(false)
	setup.Adaptor.SetGoal(10 * time.Hour)
	setup.Adaptor.SetImportance(0.7)
	setup.Refresh()
	if err := decide("battery (10h goal)"); err != nil {
		return err
	}

	// Back on wall power; the client becomes loaded.
	handheld.SetWallPower(true)
	setup.Adaptor.SetImportance(0)
	handheld.SetBackgroundTasks(1)
	for i := 0; i < 8; i++ {
		setup.Refresh()
	}
	if err := decide("loaded client CPU"); err != nil {
		return err
	}

	// Server partition: only local plans remain.
	handheld.SetBackgroundTasks(0)
	for i := 0; i < 8; i++ {
		setup.Refresh()
	}
	serial.SetPartitioned(true)
	setup.Client.PollServers()
	if err := decide("server partitioned"); err != nil {
		return err
	}
	return nil
}
