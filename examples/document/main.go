// Command document demonstrates consistency-aware offloading in the style
// of the paper's Latex workload: a weakly connected client edits input
// files; before compiling remotely, Spectra predicts which files the
// operation will read and reintegrates the dirty volumes — or decides the
// reintegration is too expensive and compiles locally.
package main

import (
	"fmt"
	"log"
	"time"

	"spectra"
)

const (
	inputPath  = "/coda/docs/report.tex"
	inputBytes = 200 * 1024
	volume     = "docs"
	compileMc  = 300
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	laptop := spectra.New560X()
	server := spectra.NewServerB()
	wireless := spectra.NewLink(spectra.LinkConfig{
		Name:         "wireless",
		Latency:      8 * time.Millisecond,
		BandwidthBps: 160_000,
	})
	fsLink := spectra.NewLink(spectra.LinkConfig{
		Name:         "wireless-fs",
		Latency:      8 * time.Millisecond,
		BandwidthBps: 80_000,
	})
	setup, err := spectra.NewSimSetup(spectra.SimOptions{
		Host:       laptop,
		HostFSLink: fsLink,
		Servers:    []spectra.SimServer{{Name: "build-server", Machine: server, Link: wireless}},
	})
	if err != nil {
		return err
	}

	// Provision the document on the file servers and warm both caches.
	setup.FileServer.Store(volume, inputPath, inputBytes)
	if err := setup.Env.Host().Coda().Warm(inputPath); err != nil {
		return err
	}
	node, _, _ := setup.Env.Server("build-server")
	if err := node.Coda().Warm(inputPath); err != nil {
		return err
	}
	// The wireless client buffers its writes (weak connectivity).
	setup.Env.Host().Coda().SetMode(spectra.Weak)

	compile := func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		if err := ctx.ReadFile(inputPath); err != nil {
			return nil, err
		}
		ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: compileMc})
		return []byte("report.dvi"), nil
	}
	setup.Env.Host().RegisterService("compile", compile)
	node.RegisterService("compile", compile)

	op, err := setup.Client.RegisterFidelity(spectra.OperationSpec{
		Name:    "docs.compile",
		Service: "compile",
		Plans: []spectra.PlanSpec{
			{Name: "local", Files: spectra.FilesLocal},
			{Name: "remote", UsesServer: true, Files: spectra.FilesRemote},
		},
		LatencyUtility: spectra.InverseLatency,
	})
	if err != nil {
		return err
	}
	setup.Refresh()

	execute := func(octx *spectra.OpContext) (spectra.Report, error) {
		var err error
		if octx.Plan() == "remote" {
			_, err = octx.DoRemoteOp("compile", nil)
		} else {
			_, err = octx.DoLocalOp("compile", nil)
		}
		if err != nil {
			return spectra.Report{}, err
		}
		return octx.End()
	}

	// Train both plans.
	for i := 0; i < 4; i++ {
		for _, alt := range []spectra.Alternative{
			{Plan: "local"},
			{Server: "build-server", Plan: "remote"},
		} {
			octx, err := setup.Client.BeginForced(op, alt, nil, "")
			if err != nil {
				return err
			}
			if _, err := execute(octx); err != nil {
				return err
			}
		}
	}

	decide := func(label string) error {
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			return err
		}
		d := octx.Decision()
		rep, err := execute(octx)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s -> plan=%-7s reintegrated=%6d bytes  elapsed=%v\n",
			label, d.Alternative.Plan, d.ReintegratedBytes,
			rep.Elapsed.Round(10*time.Millisecond))
		return nil
	}

	fmt.Println("Consistency-aware offloading of a document build:")
	if err := decide("clean working copy"); err != nil {
		return err
	}

	// The user edits the input: the modification buffers in Coda. Spectra
	// must now either reintegrate before any remote compile or build
	// locally against the buffered copy.
	if _, err := setup.Env.Host().Coda().Write(inputPath, inputBytes); err != nil {
		return err
	}
	if err := decide("200 KB edit buffered"); err != nil {
		return err
	}

	// A much faster link makes reintegration cheap: remote wins again and
	// the edit is pushed to the file servers first.
	fsLink.SetBandwidthBps(2 << 20)
	if _, err := setup.Env.Host().Coda().Write(inputPath, inputBytes); err != nil {
		return err
	}
	if err := decide("edit + fast uplink"); err != nil {
		return err
	}

	dirty := setup.Env.Host().Coda().DirtyVolumes()
	fmt.Printf("dirty volumes after run: %v\n", dirty)
	return nil
}
