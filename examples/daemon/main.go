// Command daemon demonstrates Spectra's live mode: it starts two spectrad-
// style servers on loopback TCP ports, connects a live client, self-tunes
// over the real network, and offloads to whichever server is currently the
// better choice — including reacting to one server becoming loaded.
package main

import (
	"fmt"
	"log"
	"time"

	"spectra"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// work burns 40 modeled megacycles: 40 ms on a 1000 MHz server, 400 ms on
// the 100 MHz client model.
func work(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
	ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: 40})
	return []byte("ok"), nil
}

func startServer(name string, mhz float64) (*spectra.Server, string, error) {
	machine := spectra.NewMachine(spectra.MachineConfig{
		Name:        name,
		SpeedMHz:    mhz,
		OnWallPower: true,
	})
	node := spectra.NewNode(machine, nil, nil)
	srv := spectra.NewServer(name, node, spectra.RealClock{})
	srv.Register("work", work)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return srv, addr, nil
}

func run() error {
	fast, fastAddr, err := startServer("fast", 1000)
	if err != nil {
		return err
	}
	defer fast.Close()
	slow, slowAddr, err := startServer("slow", 400)
	if err != nil {
		return err
	}
	defer slow.Close()
	fmt.Printf("spectrad 'fast' on %s, 'slow' on %s\n", fastAddr, slowAddr)

	host := spectra.NewMachine(spectra.MachineConfig{
		Name:        "client",
		SpeedMHz:    100,
		OnWallPower: true,
	})
	setup, err := spectra.NewLiveSetup(spectra.LiveOptions{
		Host:    host,
		Servers: map[string]string{"fast": fastAddr, "slow": slowAddr},
	})
	if err != nil {
		return err
	}
	defer setup.Runtime.Close()
	setup.Host.RegisterService("work", work)

	op, err := setup.Client.RegisterFidelity(spectra.OperationSpec{
		Name:    "live.work",
		Service: "work",
		Plans: []spectra.PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	})
	if err != nil {
		return err
	}
	setup.Client.PollServers()
	setup.Client.Probe()

	execute := func(octx *spectra.OpContext) (spectra.Report, error) {
		var err error
		if octx.Plan() == "remote" {
			_, err = octx.DoRemoteOp("run", []byte("x"))
		} else {
			_, err = octx.DoLocalOp("run", []byte("x"))
		}
		if err != nil {
			return spectra.Report{}, err
		}
		return octx.End()
	}

	// Self-tune over the real network.
	for i := 0; i < 2; i++ {
		for _, alt := range []spectra.Alternative{
			{Plan: "local"},
			{Server: "fast", Plan: "remote"},
			{Server: "slow", Plan: "remote"},
		} {
			octx, err := setup.Client.BeginForced(op, alt, nil, "")
			if err != nil {
				return err
			}
			rep, err := execute(octx)
			if err != nil {
				return err
			}
			fmt.Printf("trained %-6s %-5s %8v\n", alt.Plan, alt.Server,
				rep.Elapsed.Round(time.Millisecond))
		}
	}

	decide := func(label string) error {
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			return err
		}
		d := octx.Decision()
		rep, err := execute(octx)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s -> plan=%-7s server=%-5s elapsed=%v (decision cost %v)\n",
			label, d.Alternative.Plan, d.Alternative.Server,
			rep.Elapsed.Round(time.Millisecond), d.Overhead.Total.Round(time.Microsecond))
		return nil
	}

	if err := decide("both servers idle"); err != nil {
		return err
	}

	// An advisor watches conditions and reports when the best alternative
	// flips — the Odyssey-style upcall for adaptive applications.
	advisor := setup.Client.NewAdvisor(op, nil, "")
	if _, _, ok := advisor.Check(); !ok {
		return fmt.Errorf("advisor found nothing feasible")
	}

	// The fast server becomes heavily loaded; periodic status polls let the
	// smoothed load estimate converge, and Spectra switches.
	fast.Node().Machine().SetBackgroundTasks(4)
	for i := 0; i < 6; i++ {
		setup.Client.PollServers()
	}
	if best, changed, ok := advisor.Check(); ok && changed {
		fmt.Printf("advisor: best alternative changed to %s on %s\n",
			best.Alternative.Plan, best.Alternative.Server)
	}
	if err := decide("fast server loaded 5x"); err != nil {
		return err
	}
	return nil
}
