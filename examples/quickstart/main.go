// Command quickstart is the smallest complete Spectra program: one
// operation with local and remote execution plans, a simulated client and
// server, a short self-tuning phase, and a placement decision.
package main

import (
	"fmt"
	"log"
	"time"

	"spectra"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A slow handheld client and a fast compute server on a LAN.
	client := spectra.NewMachine(spectra.MachineConfig{
		Name:        "handheld",
		SpeedMHz:    200,
		OnWallPower: true,
	})
	server := spectra.NewMachine(spectra.MachineConfig{
		Name:        "bigbox",
		SpeedMHz:    2000,
		OnWallPower: true,
	})
	link := spectra.NewLink(spectra.LinkConfig{
		Name:         "lan",
		Latency:      2 * time.Millisecond,
		BandwidthBps: 1 << 20,
	})

	setup, err := spectra.NewSimSetup(spectra.SimOptions{
		Host:    client,
		Servers: []spectra.SimServer{{Name: "bigbox", Machine: server, Link: link}},
	})
	if err != nil {
		return err
	}

	// The application component: burns 400 megacycles wherever it runs.
	work := func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: 400})
		return []byte("result"), nil
	}
	setup.Env.Host().RegisterService("crunch", work)
	if node, _, ok := setup.Env.Server("bigbox"); ok {
		node.RegisterService("crunch", work)
	}

	// register_fidelity: one operation, two execution plans.
	op, err := setup.Client.RegisterFidelity(spectra.OperationSpec{
		Name:    "demo.crunch",
		Service: "crunch",
		Plans: []spectra.PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	})
	if err != nil {
		return err
	}
	setup.Refresh() // poll servers, probe the network

	// Self-tuning: execute each plan a few times so Spectra learns the
	// operation's resource demand.
	for i := 0; i < 3; i++ {
		for _, alt := range []spectra.Alternative{
			{Plan: "local"},
			{Server: "bigbox", Plan: "remote"},
		} {
			octx, err := setup.Client.BeginForced(op, alt, nil, "")
			if err != nil {
				return err
			}
			if alt.Plan == "remote" {
				_, err = octx.DoRemoteOp("run", []byte("payload"))
			} else {
				_, err = octx.DoLocalOp("run", []byte("payload"))
			}
			if err != nil {
				return err
			}
			rep, err := octx.End()
			if err != nil {
				return err
			}
			fmt.Printf("trained %-7s %8v  (local %.0f Mc, remote %.0f Mc)\n",
				alt.Plan, rep.Elapsed.Round(time.Millisecond),
				rep.Usage.LocalMegacycles, rep.Usage.RemoteMegacycles)
		}
	}

	// begin_fidelity_op: Spectra decides.
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		return err
	}
	d := octx.Decision()
	fmt.Printf("\nSpectra chose plan=%q server=%q (predicted %v, %d alternatives, %d evaluations)\n",
		d.Alternative.Plan, d.Alternative.Server,
		d.Predicted.Latency.Round(time.Millisecond), d.Candidates, d.Evaluations)

	if d.Alternative.Plan == "remote" {
		_, err = octx.DoRemoteOp("run", []byte("payload"))
	} else {
		_, err = octx.DoLocalOp("run", []byte("payload"))
	}
	if err != nil {
		return err
	}
	rep, err := octx.End()
	if err != nil {
		return err
	}
	fmt.Printf("executed in %v\n", rep.Elapsed.Round(time.Millisecond))
	return nil
}
