// Command translator demonstrates multi-engine fidelity adaptation in the
// style of the paper's Pangloss-Lite workload: a translation can use an
// expensive high-quality engine, a cheap low-quality engine, or both, and
// components can be placed locally or on a server. Spectra drops engines
// as sentences grow to stay under a latency deadline, and shifts placement
// as server load changes.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"spectra"
)

const (
	heavyMcPerWord = 50 // high-quality engine
	lightMcPerWord = 4  // low-quality engine
	combineMcWord  = 5  // combiner
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	laptop := spectra.New560X()
	server := spectra.NewServerB()
	link := spectra.NewLink(spectra.LinkConfig{
		Name:         "wireless",
		Latency:      8 * time.Millisecond,
		BandwidthBps: 160_000,
	})
	setup, err := spectra.NewSimSetup(spectra.SimOptions{
		Host:    laptop,
		Servers: []spectra.SimServer{{Name: "server", Machine: server, Link: link}},
	})
	if err != nil {
		return err
	}

	translate := func(ctx *spectra.ServiceContext, optype string, payload []byte) ([]byte, error) {
		words := float64(binary.BigEndian.Uint64(payload))
		switch optype {
		case "heavy":
			ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: heavyMcPerWord * words})
		case "light":
			ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: lightMcPerWord * words})
		case "combine":
			ctx.Compute(spectra.ComputeDemand{IntegerMegacycles: combineMcWord * words})
		}
		return payload[:8], nil
	}
	setup.Env.Host().RegisterService("translate", translate)
	node, _, _ := setup.Env.Server("server")
	node.RegisterService("translate", translate)

	// Plans place the heavy engine; the light engine and combiner stay
	// local (their work is negligible).
	op, err := setup.Client.RegisterFidelity(spectra.OperationSpec{
		Name:    "translate.sentence",
		Service: "translate",
		Plans: []spectra.PlanSpec{
			{Name: "heavy-local"},
			{Name: "heavy-remote", UsesServer: true},
		},
		Fidelities: []spectra.FidelityDimension{
			{Name: "heavy", Values: []string{"on", "off"}},
			{Name: "light", Values: []string{"on", "off"}},
		},
		Params: []string{"words"},
		// Translations over 4 s are worthless; under 0.4 s fully desirable.
		LatencyUtility: spectra.DeadlineLatency(400*time.Millisecond, 4*time.Second),
		FidelityUtility: func(fid map[string]string) float64 {
			v := 0.0
			if fid["heavy"] == "on" {
				v += 0.7
			}
			if fid["light"] == "on" {
				v += 0.3
			}
			return v
		},
		Valid: func(plan string, fid map[string]string) bool {
			if fid["heavy"] != "on" && fid["light"] != "on" {
				return false // at least one engine
			}
			if fid["heavy"] != "on" && plan == "heavy-remote" {
				return false // placing a disabled engine is meaningless
			}
			return true
		},
	})
	if err != nil {
		return err
	}
	setup.Refresh()

	payload := func(words float64) []byte {
		buf := make([]byte, 8+int(words)*10)
		binary.BigEndian.PutUint64(buf, uint64(words))
		return buf
	}
	execute := func(octx *spectra.OpContext, words float64) (spectra.Report, error) {
		fid := octx.Fidelity()
		if fid["heavy"] == "on" {
			var err error
			if octx.Plan() == "heavy-remote" {
				_, err = octx.DoRemoteOp("heavy", payload(words))
			} else {
				_, err = octx.DoLocalOp("heavy", payload(words))
			}
			if err != nil {
				return spectra.Report{}, err
			}
		}
		if fid["light"] == "on" {
			if _, err := octx.DoLocalOp("light", payload(words)); err != nil {
				return spectra.Report{}, err
			}
		}
		if _, err := octx.DoLocalOp("combine", payload(words)); err != nil {
			return spectra.Report{}, err
		}
		return octx.End()
	}

	// Train across the alternative space and sentence lengths.
	alternatives := []spectra.Alternative{
		{Plan: "heavy-local", Fidelity: map[string]string{"heavy": "on", "light": "on"}},
		{Plan: "heavy-local", Fidelity: map[string]string{"heavy": "on", "light": "off"}},
		{Plan: "heavy-local", Fidelity: map[string]string{"heavy": "off", "light": "on"}},
		{Server: "server", Plan: "heavy-remote", Fidelity: map[string]string{"heavy": "on", "light": "on"}},
		{Server: "server", Plan: "heavy-remote", Fidelity: map[string]string{"heavy": "on", "light": "off"}},
	}
	for _, words := range []float64{5, 15, 30, 60} {
		for _, alt := range alternatives {
			octx, err := setup.Client.BeginForced(op, alt, map[string]float64{"words": words}, "")
			if err != nil {
				return err
			}
			if _, err := execute(octx, words); err != nil {
				return err
			}
		}
	}

	decide := func(words float64) error {
		octx, err := setup.Client.BeginFidelityOp(op, map[string]float64{"words": words}, "")
		if err != nil {
			return err
		}
		rep, err := execute(octx, words)
		if err != nil {
			return err
		}
		a := rep.Decision.Alternative
		fmt.Printf("%3.0f words -> plan=%-12s heavy=%-3s light=%-3s elapsed=%v\n",
			words, a.Plan, a.Fidelity["heavy"], a.Fidelity["light"],
			rep.Elapsed.Round(10*time.Millisecond))
		return nil
	}

	fmt.Println("Fidelity adaptation with sentence length (unloaded server):")
	for _, words := range []float64{5, 20, 45, 80} {
		if err := decide(words); err != nil {
			return err
		}
	}

	fmt.Println("\nSame sentences with a heavily loaded server:")
	server.SetBackgroundTasks(3)
	for i := 0; i < 8; i++ {
		setup.Refresh()
	}
	for _, words := range []float64{5, 20, 45, 80} {
		if err := decide(words); err != nil {
			return err
		}
	}
	return nil
}
