// Package spectra is the public API of this Spectra reproduction: a
// self-tuning remote execution system for battery-powered pervasive-
// computing clients, after Flinn, Park & Satyanarayanan, "Balancing
// Performance, Energy, and Quality in Pervasive Computing" (ICDCS 2002).
//
// Applications register operations — coarse-grained code components with a
// set of execution plans (local / remote / hybrid partitions), discrete
// fidelity dimensions, and input parameters. For every execution, Spectra
// snapshots resource availability through its modular monitors (CPU,
// network, battery, file cache, and remote proxies), predicts each
// alternative's execution time and energy from self-tuned demand models,
// and selects the alternative maximizing a utility function that balances
// performance, energy conservation (weighted by a goal-directed importance
// parameter), and application fidelity. Before remote execution it
// enforces data consistency with the Coda-style file system substrate.
//
// The typical flow mirrors the paper's API (Figure 1):
//
//	setup, _ := spectra.NewSimSetup(spectra.SimOptions{...})
//	op, _ := setup.Client.RegisterFidelity(spec)      // register_fidelity
//	octx, _ := setup.Client.BeginFidelityOp(op, p, "") // begin_fidelity_op
//	out, _ := octx.DoLocalOp("optype", payload)        // do_local_op
//	out, _ = octx.DoRemoteOp("optype", payload)        // do_remote_op
//	report, _ := octx.End()                            // end_fidelity_op
//
// Two runtimes are provided: a deterministic simulation of the paper's
// testbeds (NewSimSetup) and a live TCP mode (NewLiveSetup plus the
// spectrad daemon) for real remote execution.
package spectra

import (
	"spectra/internal/coda"
	"spectra/internal/core"
	"spectra/internal/energy"
	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/predict"
	"spectra/internal/rpc"
	"spectra/internal/sim"
	"spectra/internal/simnet"
	"spectra/internal/solver"
	"spectra/internal/utility"
)

// Core client API.
type (
	// Client is the Spectra client: it registers operations, decides how
	// and where they execute, and self-tunes from observed usage.
	Client = core.Client
	// Config assembles a Client from explicit components.
	Config = core.Config
	// Operation is a registered operation.
	Operation = core.Operation
	// OperationSpec statically describes an operation (register_fidelity).
	OperationSpec = core.OperationSpec
	// PlanSpec describes one execution plan.
	PlanSpec = core.PlanSpec
	// FidelityDimension is one discrete fidelity knob.
	FidelityDimension = core.FidelityDimension
	// ContinuousFidelity is a continuous fidelity dimension, modeled by
	// regression rather than binning.
	ContinuousFidelity = core.ContinuousFidelity
	// OpContext is an in-flight operation (begin_fidelity_op ... End).
	OpContext = core.OpContext
	// Report summarizes a completed operation.
	Report = core.Report
	// Decision describes how Spectra chose to execute an operation.
	Decision = core.Decision
	// ScoredAlternative is one alternative with its current prediction and
	// utility, from Client.EvaluateAlternatives.
	ScoredAlternative = core.ScoredAlternative
	// Advisor reports when the best alternative for an operation changes
	// (Odyssey-style upcalls).
	Advisor = core.Advisor
	// BeginOverhead breaks down the wall-clock cost of a decision.
	BeginOverhead = core.BeginOverhead
	// CacheOptions tunes the placement-decision cache in front of the
	// solver ("virtual stubs": warm Begins reuse a prior decision under an
	// unchanged coarse resource picture); the zero value disables it.
	CacheOptions = core.CacheOptions
	// CacheStats summarizes decision-cache behaviour, from
	// Client.DecisionCacheStats.
	CacheStats = core.CacheStats
	// ModelOptions tunes the self-tuning demand models.
	ModelOptions = core.ModelOptions
	// CustomPredictors replaces default demand predictors with
	// application-specific ones.
	CustomPredictors = core.CustomPredictors
	// NumericPredictor is the interface application-specific demand
	// predictors implement.
	NumericPredictor = predict.Numeric
	// PredictObservation / PredictQuery are the predictor data types.
	PredictObservation = predict.Observation
	PredictQuery       = predict.Query
	// Registry discovers Spectra servers at runtime.
	Registry = core.Registry
	// StaticRegistry is a fixed server list.
	StaticRegistry = core.StaticRegistry
	// AnnounceRegistry is an expiring announcement-based discovery
	// registry.
	AnnounceRegistry = core.AnnounceRegistry
	// ParallelCall is one branch of a parallel remote phase (the paper's
	// future-work extension).
	ParallelCall = core.ParallelCall
)

// Fault tolerance: transparent failover, server health tracking, and fault
// injection for chaos testing.
type (
	// FailoverOptions tunes transparent recovery of failed remote calls
	// (next-best server, then local fallback); the zero value enables it.
	FailoverOptions = core.FailoverOptions
	// FailoverEvent records one transparent recovery, reported in Report.
	FailoverEvent = core.FailoverEvent
	// HealthOptions tunes the per-server circuit breaker; the zero value
	// enables it.
	HealthOptions = core.HealthOptions
	// HealthTracker is the per-server health state machine, reachable via
	// Client.Health.
	HealthTracker = core.HealthTracker
	// HealthState is a server's breaker state.
	HealthState = core.HealthState
	// DeadlineOptions tunes end-to-end latency budgets, cancellation, and
	// hedged requests for remote operations; the zero value enables them
	// with defaults.
	DeadlineOptions = core.DeadlineOptions
	// RetryPolicy tunes RPC-level retry with exponential backoff for
	// idempotent exchanges.
	RetryPolicy = rpc.RetryPolicy
	// PoolOptions tunes the per-server RPC pools a live runtime runs
	// streams through (connection count, streams per connection, waiter
	// cap, timeouts). Concurrent requests multiplex as independent streams
	// over each connection.
	PoolOptions = rpc.PoolOptions
	// ServerLimits bounds concurrent request execution on a Server:
	// MaxConcurrent workers, MaxQueue waiters, classified overload
	// rejections beyond that.
	ServerLimits = rpc.ServerLimits
	// FaultInjector perturbs a simulated link deterministically: drops,
	// latency spikes, scripted flaps.
	FaultInjector = simnet.FaultInjector
	// FaultConfig configures a FaultInjector.
	FaultConfig = simnet.FaultConfig
	// FlapEvent is one step of a scripted link outage.
	FlapEvent = simnet.FlapEvent
)

// Observability: metrics, per-operation decision traces, and predictor
// accuracy accounting. Attach an Observer through SimOptions.Obs /
// LiveOptions.Obs (or testbed.Options.Obs) to enable; a nil Observer costs
// nothing on the decision path.
type (
	// Observer bundles the metrics registry, the decision-trace sink, and
	// the prediction-accuracy tracker.
	Observer = obs.Observer
	// MetricsRegistry holds named counters, gauges, and histograms and
	// serves them as JSON. (Not to be confused with Registry, the server
	// discovery interface.)
	MetricsRegistry = obs.Registry
	// TraceSink receives one DecisionTrace per completed operation.
	TraceSink = obs.TraceSink
	// DecisionTrace records everything Spectra considered and observed for
	// one operation: the resource snapshot, every evaluated alternative
	// with its predicted demand and utility, the chosen alternative, the
	// actual usage, and per-resource prediction error.
	DecisionTrace = obs.DecisionTrace
	// EvaluatedAlternative is one solver-scored point of the decision
	// space inside a DecisionTrace.
	EvaluatedAlternative = obs.EvaluatedAlternative
	// ResourceDemand is a per-resource predicted demand vector.
	ResourceDemand = obs.ResourceDemand
	// MemoryTraceSink is a bounded in-memory TraceSink (newest kept).
	MemoryTraceSink = obs.MemorySink
	// AccuracyTracker maintains rolling per-operation, per-resource
	// relative prediction error.
	AccuracyTracker = obs.AccuracyTracker
	// Span is one timed phase of an operation (predict, solve, rpc,
	// server-side exec, ...) inside a DecisionTrace's span tree.
	Span = obs.Span
	// TraceStore is a TraceSink that retains traces for later inspection
	// (MemoryTraceSink implements it; the debug endpoint serves it).
	TraceStore = obs.TraceStore
	// TimeSeriesRecorder keeps a bounded history of timestamped resource
	// samples per series, served at /debug/timeseries.
	TimeSeriesRecorder = obs.TimeSeriesRecorder
	// TimeSeriesPoint is one sample in a TimeSeriesRecorder series.
	TimeSeriesPoint = obs.TimeSeriesPoint
	// JSONLSink is a flight recorder: a TraceSink appending each trace as a
	// JSON line with size-based rotation.
	JSONLSink = obs.JSONLSink
	// JSONLSinkOptions tunes JSONLSink rotation.
	JSONLSinkOptions = obs.JSONLSinkOptions
	// TelemetryOptions tunes the background resource sampler started by
	// StartTelemetry.
	TelemetryOptions = monitor.TelemetryOptions
)

// NewObserver returns an Observer with a fresh metrics registry and
// accuracy tracker and no trace sink.
var NewObserver = obs.NewObserver

// NewMemoryTraceSink returns a TraceSink retaining the newest max traces.
var NewMemoryTraceSink = obs.NewMemorySink

// NewDebugMux returns an http.Handler exposing /debug/metrics,
// /debug/accuracy, and /debug/pprof/*.
var NewDebugMux = obs.NewDebugMux

// ServeDebug serves a debug mux on addr in a background goroutine.
var ServeDebug = obs.ServeDebug

// NewTimeSeriesRecorder returns a resource-telemetry ring keeping at most
// capPerSeries points per series (<= 0 selects the default, 1024).
var NewTimeSeriesRecorder = obs.NewTimeSeriesRecorder

// NewJSONLSink opens (appending) a flight-recorder trace file.
var NewJSONLSink = obs.NewJSONLSink

// ReadTraceFile reads decision traces back from a flight-recorder file,
// skipping unparsable lines.
var ReadTraceFile = obs.ReadTraceFile

// MultiTraceSink fans each trace out to every given sink.
var MultiTraceSink = obs.MultiSink

// StartTelemetry samples a monitor set into a TimeSeriesRecorder at a fixed
// interval until the returned stop function is called.
var StartTelemetry = monitor.StartTelemetry

// RecordSnapshot writes one monitor snapshot into a TimeSeriesRecorder as a
// single batch, returning the batch sequence number.
var RecordSnapshot = monitor.RecordSnapshot

// Server health states: closed (healthy), open (quarantined after repeated
// failures), half-open (probing after quarantine).
const (
	HealthClosed   = core.HealthClosed
	HealthOpen     = core.HealthOpen
	HealthHalfOpen = core.HealthHalfOpen
)

// NewFaultInjector builds a deterministic link fault injector.
var NewFaultInjector = simnet.NewFaultInjector

// NewAnnounceRegistry returns a discovery registry whose announcements
// live for ttl.
var NewAnnounceRegistry = core.NewAnnounceRegistry

// ContinuousValue parses a continuous fidelity setting from a fidelity
// assignment.
var ContinuousValue = core.ContinuousValue

// Poller periodically refreshes a live client's server database.
type Poller = core.Poller

// StartPolling launches a background server poller for live deployments.
var StartPolling = core.StartPolling

// FormatContinuous renders a continuous fidelity value canonically.
var FormatContinuous = core.FormatContinuous

// Execution environments and services.
type (
	// Node is one machine: hardware model, cache manager, services.
	Node = core.Node
	// Env is a simulated testbed.
	Env = core.Env
	// ServiceFunc is an application code component hosted by a server.
	ServiceFunc = core.ServiceFunc
	// ServiceContext meters a service invocation's resource consumption.
	ServiceContext = core.ServiceContext
	// ServiceLoop adapts the paper's service_getop/service_retop loop.
	ServiceLoop = core.ServiceLoop
	// ServiceRequest is one request delivered to a ServiceLoop.
	ServiceRequest = core.ServiceRequest
	// Server is a network-facing Spectra server (the spectrad core).
	Server = core.Server
	// SimOptions / SimServer / SimSetup assemble simulated deployments.
	SimOptions = core.SimOptions
	SimServer  = core.SimServer
	SimSetup   = core.SimSetup
	// LiveOptions / LiveSetup assemble live TCP deployments.
	LiveOptions = core.LiveOptions
	LiveSetup   = core.LiveSetup
	// NetRuntime executes operations against live spectrad servers.
	NetRuntime = core.NetRuntime
	// SimRuntime executes operations against the simulated testbed.
	SimRuntime = core.SimRuntime
)

// Decision-space and utility types.
type (
	// Alternative is one point in the decision space: server, plan,
	// fidelity.
	Alternative = solver.Alternative
	// Prediction carries predicted time, energy, and fidelity value.
	Prediction = utility.Prediction
	// UtilityFunction scores predictions; applications may override the
	// default.
	UtilityFunction = utility.Function
	// LatencyDesirability maps execution time to desirability.
	LatencyDesirability = utility.LatencyDesirability
	// GoalAdaptor implements goal-directed energy adaptation.
	GoalAdaptor = energy.GoalAdaptor
	// Machine models a computer's CPU and power characteristics.
	Machine = sim.Machine
	// MachineConfig configures a Machine.
	MachineConfig = sim.MachineConfig
	// ComputeDemand expresses CPU demand in megacycles.
	ComputeDemand = sim.ComputeDemand
	// Battery models a client battery.
	Battery = sim.Battery
	// Link models a network path.
	Link = simnet.Link
	// LinkConfig configures a Link.
	LinkConfig = simnet.LinkConfig
	// FileAccess describes one file touched by an operation.
	FileAccess = predict.FileAccess
	// MonitorSet is the modular resource-monitor framework.
	MonitorSet = monitor.Set
	// Snapshot is a resource-availability snapshot.
	Snapshot = monitor.Snapshot
	// Usage aggregates the resources one operation consumed.
	Usage = monitor.Usage
)

// File-system substrate types.
type (
	// FileServer is a Coda-style file server holding volumes of files.
	FileServer = coda.FileServer
	// CacheManager is a per-machine Coda cache manager ("Venus").
	CacheManager = coda.Client
	// ConnectionMode is a cache manager's connectivity level.
	ConnectionMode = coda.ConnectionMode
	// HoardProfile is a per-client set of hoard entries: paths kept cached
	// by priority, Coda-style.
	HoardProfile = coda.HoardProfile
	// HoardEntry is one line of a hoard profile.
	HoardEntry = coda.HoardEntry
)

// NewHoardProfile returns an empty hoard profile.
var NewHoardProfile = coda.NewHoardProfile

// Connection modes: strongly connected clients write through; weakly
// connected clients buffer modifications for reintegration; disconnected
// clients serve only cache hits.
const (
	Strong       = coda.Strong
	Weak         = coda.Weak
	Disconnected = coda.Disconnected
)

// File placements (advisory plan hints).
const (
	FilesLocal  = core.FilesLocal
	FilesRemote = core.FilesRemote
)

// NewClient assembles a client from explicit components.
func NewClient(cfg Config) (*Client, error) { return core.NewClient(cfg) }

// NewSimSetup assembles a simulated Spectra deployment.
func NewSimSetup(opts SimOptions) (*SimSetup, error) { return core.NewSimSetup(opts) }

// NewLiveSetup assembles a live Spectra client talking to spectrad
// daemons over TCP.
func NewLiveSetup(opts LiveOptions) (*LiveSetup, error) { return core.NewLiveSetup(opts) }

// NewServer wraps a node as a network-facing Spectra server.
func NewServer(name string, node *Node, clock Clock) *Server {
	return core.NewServer(name, node, clock)
}

// NewNode assembles a machine node.
var NewNode = core.NewNode

// NewServiceContext builds a metered execution context on a node; account
// handling is internal, so pass nil unless embedding in a custom runtime.
var NewServiceContext = core.NewServiceContext

// NewServiceLoop returns a paper-style service main loop.
func NewServiceLoop() *ServiceLoop { return core.NewServiceLoop() }

// Clock is the time source abstraction (virtual in simulations, real in
// live deployments).
type Clock = sim.Clock

// RealClock is the system clock.
type RealClock = sim.RealClock

// VirtualClock is the deterministic simulation clock.
type VirtualClock = sim.VirtualClock

// NewMachine constructs a machine model.
func NewMachine(cfg MachineConfig) *Machine { return sim.NewMachine(cfg) }

// NewBattery returns a full battery of the given capacity in joules.
func NewBattery(capacityJoules float64) *Battery { return sim.NewBattery(capacityJoules) }

// NewLink constructs a network link model.
func NewLink(cfg LinkConfig) *Link { return simnet.NewLink(cfg) }

// Preset machine models of the paper's testbed.
var (
	NewItsy    = sim.NewItsy
	NewT20     = sim.NewT20
	New560X    = sim.New560X
	NewServerA = sim.NewServerA
	NewServerB = sim.NewServerB
)

// InverseLatency is the 1/T latency desirability used by Janus and Latex.
var InverseLatency = utility.InverseLatency

// DeadlineLatency builds a Pangloss-style best/worst deadline
// desirability.
var DeadlineLatency = utility.DeadlineLatency
