package pangloss

import (
	"fmt"

	"spectra/internal/core"
	"spectra/internal/solver"
)

// TranslateParallel translates one sentence with the enabled engines
// executing concurrently, each on its own server — the paper's future-work
// extension (§4.3): "the three engines could be executed in parallel on
// different servers". The language modeler runs locally over the combined
// output. placements maps engine name to server name; engines absent from
// the map run on primaryServer.
func (a *App) TranslateParallel(words float64, fidelity map[string]string, primaryServer string, placements map[string]string) (core.Report, error) {
	plan := Plan{EBMT: Remote, Glossary: Remote, Dict: Remote, LM: Local}
	octx, err := a.setup.Client.BeginForced(a.op, solver.Alternative{
		Server:   primaryServer,
		Plan:     plan.Name(),
		Fidelity: fidelity,
	}, params(words), "")
	if err != nil {
		return core.Report{}, err
	}

	sentence := encodeWords(words, sentenceBytesPerWord)
	var calls []core.ParallelCall
	for _, eng := range Engines() {
		if fidelity[eng] != On {
			continue
		}
		calls = append(calls, core.ParallelCall{
			Server:  placements[eng],
			OpType:  "engine." + eng,
			Payload: sentence,
		})
	}
	if len(calls) == 0 {
		octx.Abort()
		return core.Report{}, fmt.Errorf("pangloss: no engines enabled")
	}
	outs, err := octx.DoParallelOps(calls)
	if err != nil {
		octx.Abort()
		return core.Report{}, err
	}

	lmPayload := encodeWords(words, 1)
	for _, out := range outs {
		lmPayload = append(lmPayload, out...)
	}
	if _, err := octx.DoLocalOp("combine", lmPayload); err != nil {
		octx.Abort()
		return core.Report{}, err
	}
	return octx.End()
}
