// Package pangloss models the Pangloss-Lite natural-language translator of
// the paper's evaluation (§3.7.3, §4.3). A translation runs up to three
// engines — EBMT (example-based), glossary-based, and dictionary-based —
// whose outputs a language modeler combines into the final translation.
// Fidelity is the subset of engines used (EBMT 0.5, glossary 0.3,
// dictionary 0.2, summing when combined); execution plans place each
// enabled engine and the language modeler locally or on the chosen remote
// server, yielding roughly one hundred location×fidelity combinations.
package pangloss

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"

	"spectra/internal/coda"
	"spectra/internal/core"
	"spectra/internal/sim"
	"spectra/internal/solver"
	"spectra/internal/utility"
)

// Public identifiers of the Pangloss-Lite workload.
const (
	OperationName = "pangloss.translate"
	ServiceName   = "pangloss"

	// ParamWords is the input parameter: sentence length in words.
	ParamWords = "words"

	// Volume holds the translation knowledge bases.
	Volume = "pangloss"
)

// Engine names (also the fidelity dimensions).
const (
	EngineEBMT     = "ebmt"
	EngineGlossary = "glossary"
	EngineDict     = "dict"
	// componentLM is the language modeler; always executed, placed by the
	// plan but not a fidelity dimension.
	componentLM = "lm"
)

// Fidelity values.
const (
	On  = "on"
	Off = "off"
)

// Engine fidelity weights (paper §3.7.3).
var engineWeights = map[string]float64{
	EngineEBMT:     0.5,
	EngineGlossary: 0.3,
	EngineDict:     0.2,
}

// Engines lists the engine names in canonical execution order.
func Engines() []string { return []string{EngineEBMT, EngineGlossary, EngineDict} }

// Knowledge-base files. The 12 MB EBMT corpus is the file the paper's
// file-cache scenario evicts from server B.
const (
	EBMTFile   = "/coda/pangloss/ebmt.db"
	EBMTBytes  = 12 * 1024 * 1024
	GlossFile  = "/coda/pangloss/glossary.db"
	GlossBytes = 2 * 1024 * 1024
	DictFile   = "/coda/pangloss/dict.db"
	DictBytes  = 512 * 1024
	LMFile     = "/coda/pangloss/lm.db"
	LMBytes    = 1024 * 1024
)

// Work calibration: integer megacycles per sentence word.
var workMcPerWord = map[string]float64{
	EngineEBMT:     50,
	EngineGlossary: 30,
	EngineDict:     3,
	componentLM:    5,
}

var engineFiles = map[string]struct {
	path string
	size int64
}{
	EngineEBMT:     {path: EBMTFile, size: EBMTBytes},
	EngineGlossary: {path: GlossFile, size: GlossBytes},
	EngineDict:     {path: DictFile, size: DictBytes},
	componentLM:    {path: LMFile, size: LMBytes},
}

// Payload sizing.
const (
	sentenceBytesPerWord    = 10
	translationBytesPerWord = 50
	resultBytesPerWord      = 60
)

// Latency desirability thresholds (paper §3.7.3): translations under 0.5 s
// are fully desirable, translations over 5 s are worthless.
const (
	BestLatency  = 500 * time.Millisecond
	WorstLatency = 5 * time.Second
)

// Placement is where one component runs.
type Placement byte

// Placements.
const (
	Local  Placement = 'l'
	Remote Placement = 'r'
)

// Plan assigns a placement to every component.
type Plan struct {
	EBMT     Placement
	Glossary Placement
	Dict     Placement
	LM       Placement
}

// Name renders the canonical plan name, e.g. "e=l,g=r,d=l,m=r".
func (p Plan) Name() string {
	return fmt.Sprintf("e=%c,g=%c,d=%c,m=%c", p.EBMT, p.Glossary, p.Dict, p.LM)
}

// UsesServer reports whether any component runs remotely.
func (p Plan) UsesServer() bool {
	return p.EBMT == Remote || p.Glossary == Remote || p.Dict == Remote || p.LM == Remote
}

// PlacementOf returns the placement of a component.
func (p Plan) PlacementOf(component string) Placement {
	switch component {
	case EngineEBMT:
		return p.EBMT
	case EngineGlossary:
		return p.Glossary
	case EngineDict:
		return p.Dict
	default:
		return p.LM
	}
}

// ParsePlan parses a canonical plan name.
func ParsePlan(name string) (Plan, error) {
	parts := strings.Split(name, ",")
	if len(parts) != 4 {
		return Plan{}, fmt.Errorf("pangloss: malformed plan %q", name)
	}
	var p Plan
	for _, part := range parts {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || len(kv[1]) != 1 || (kv[1][0] != byte(Local) && kv[1][0] != byte(Remote)) {
			return Plan{}, fmt.Errorf("pangloss: malformed plan element %q", part)
		}
		place := Placement(kv[1][0])
		switch kv[0] {
		case "e":
			p.EBMT = place
		case "g":
			p.Glossary = place
		case "d":
			p.Dict = place
		case "m":
			p.LM = place
		default:
			return Plan{}, fmt.Errorf("pangloss: unknown component %q", kv[0])
		}
	}
	return p, nil
}

// AllPlans enumerates every placement assignment (16 plans).
func AllPlans() []Plan {
	var out []Plan
	for _, e := range []Placement{Local, Remote} {
		for _, g := range []Placement{Local, Remote} {
			for _, d := range []Placement{Local, Remote} {
				for _, m := range []Placement{Local, Remote} {
					out = append(out, Plan{EBMT: e, Glossary: g, Dict: d, LM: m})
				}
			}
		}
	}
	return out
}

// ValidCombination reports whether a (plan, fidelity) pair is meaningful:
// at least one engine enabled, and disabled engines pinned to the canonical
// local placement so the same behaviour is not enumerated twice.
func ValidCombination(planName string, fidelity map[string]string) bool {
	plan, err := ParsePlan(planName)
	if err != nil {
		return false
	}
	enabled := 0
	for _, eng := range Engines() {
		if fidelity[eng] == On {
			enabled++
			continue
		}
		if plan.PlacementOf(eng) != Local {
			return false
		}
	}
	return enabled > 0
}

// FidelityValue sums the enabled engines' weights: the language modeler
// combines their outputs into a better translation (paper §3.7.3).
func FidelityValue(fidelity map[string]string) float64 {
	var total float64
	for eng, w := range engineWeights {
		if fidelity[eng] == On {
			total += w
		}
	}
	return total
}

// Spec is the Pangloss-Lite operation registration.
func Spec() core.OperationSpec {
	plans := make([]core.PlanSpec, 0, 16)
	for _, p := range AllPlans() {
		plans = append(plans, core.PlanSpec{
			Name:       p.Name(),
			UsesServer: p.UsesServer(),
		})
	}
	var dims []core.FidelityDimension
	for _, eng := range Engines() {
		dims = append(dims, core.FidelityDimension{
			Name:   eng,
			Values: []string{On, Off},
		})
	}
	return core.OperationSpec{
		Name:            OperationName,
		Service:         ServiceName,
		Plans:           plans,
		Fidelities:      dims,
		Params:          []string{ParamWords},
		LatencyUtility:  utility.DeadlineLatency(BestLatency, WorstLatency),
		FidelityUtility: FidelityValue,
		Valid:           ValidCombination,
	}
}

// App is a Pangloss-Lite front-end bound to a Spectra deployment.
type App struct {
	setup *core.SimSetup
	op    *core.Operation
}

// Install provisions the knowledge bases, warms caches everywhere,
// registers the service, and registers the operation.
func Install(setup *core.SimSetup) (*App, error) {
	fs := setup.FileServer
	for _, f := range engineFiles {
		fs.Store(Volume, f.path, f.size)
	}

	nodes := []*core.Node{setup.Env.Host()}
	for _, name := range setup.Env.ServerNames() {
		node, _, _ := setup.Env.Server(name)
		nodes = append(nodes, node)
	}
	// Every machine hoards the knowledge bases, sized-by-value priorities
	// protecting the 12 MB EBMT corpus hardest.
	hoard := coda.NewHoardProfile()
	hoard.Add(EBMTFile, 10)
	hoard.Add(GlossFile, 6)
	hoard.Add(LMFile, 4)
	hoard.Add(DictFile, 2)
	for _, node := range nodes {
		node.RegisterService(ServiceName, Service)
		if _, err := node.Coda().HoardWalk(hoard); err != nil {
			return nil, fmt.Errorf("pangloss: hoard on %s: %w", node.Machine().Name(), err)
		}
	}

	op, err := setup.Client.RegisterFidelity(Spec())
	if err != nil {
		return nil, err
	}
	return &App{setup: setup, op: op}, nil
}

// Operation returns the registered operation.
func (a *App) Operation() *core.Operation { return a.op }

// Translate translates one sentence, letting Spectra choose locations and
// fidelity.
func (a *App) Translate(words float64) (core.Report, error) {
	octx, err := a.setup.Client.BeginFidelityOp(a.op, params(words), "")
	if err != nil {
		return core.Report{}, err
	}
	return a.finish(octx, words)
}

// TranslateForced translates with a dictated alternative.
func (a *App) TranslateForced(alt solver.Alternative, words float64) (core.Report, error) {
	octx, err := a.setup.Client.BeginForced(a.op, alt, params(words), "")
	if err != nil {
		return core.Report{}, err
	}
	return a.finish(octx, words)
}

func params(words float64) map[string]float64 {
	return map[string]float64{ParamWords: words}
}

// finish runs the enabled engines sequentially at their placements, then
// the language modeler over their combined output.
func (a *App) finish(octx *core.OpContext, words float64) (core.Report, error) {
	plan, err := ParsePlan(octx.Plan())
	if err != nil {
		octx.Abort()
		return core.Report{}, err
	}
	fidelity := octx.Fidelity()
	sentence := encodeWords(words, sentenceBytesPerWord)

	do := func(place Placement, optype string, payload []byte) ([]byte, error) {
		if place == Remote {
			return octx.DoRemoteOp(optype, payload)
		}
		return octx.DoLocalOp(optype, payload)
	}

	var combined []byte
	for _, eng := range Engines() {
		if fidelity[eng] != On {
			continue
		}
		out, err := do(plan.PlacementOf(eng), "engine."+eng, sentence)
		if err != nil {
			octx.Abort()
			return core.Report{}, err
		}
		combined = append(combined, out...)
	}
	lmPayload := encodeWords(words, 1)
	lmPayload = append(lmPayload, combined...)
	if _, err := do(plan.LM, "combine", lmPayload); err != nil {
		octx.Abort()
		return core.Report{}, err
	}
	return octx.End()
}

// Service is the Pangloss-Lite Spectra service: one optype per engine plus
// the language modeler.
func Service(ctx *core.ServiceContext, optype string, payload []byte) ([]byte, error) {
	words := decodeWords(payload)
	component := strings.TrimPrefix(optype, "engine.")
	if optype == "combine" {
		component = componentLM
	}
	work, ok := workMcPerWord[component]
	if !ok {
		return nil, fmt.Errorf("pangloss: unknown optype %q", optype)
	}
	f := engineFiles[component]
	if err := ctx.ReadFile(f.path); err != nil {
		return nil, err
	}
	ctx.Compute(sim.ComputeDemand{IntegerMegacycles: work * words})
	if optype == "combine" {
		return encodeWords(words, resultBytesPerWord), nil
	}
	return encodeWords(words, translationBytesPerWord), nil
}

// AllAlternatives enumerates the full decision space for the given servers,
// the ~100 combinations the validation harness ranks (Figures 8 and 9).
func AllAlternatives(servers []string) []solver.Alternative {
	var out []solver.Alternative
	var fids []map[string]string
	for _, e := range []string{On, Off} {
		for _, g := range []string{On, Off} {
			for _, d := range []string{On, Off} {
				fids = append(fids, map[string]string{
					EngineEBMT:     e,
					EngineGlossary: g,
					EngineDict:     d,
				})
			}
		}
	}
	for _, p := range AllPlans() {
		targets := []string{""}
		if p.UsesServer() {
			targets = servers
		}
		for _, server := range targets {
			for _, fid := range fids {
				if !ValidCombination(p.Name(), fid) {
					continue
				}
				out = append(out, solver.Alternative{
					Server:   server,
					Plan:     p.Name(),
					Fidelity: fid,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// encodeWords builds a payload of size words×rate carrying the word count
// in its first eight bytes.
func encodeWords(words float64, bytesPerWord float64) []byte {
	n := int(words * bytesPerWord)
	if n < 8 {
		n = 8
	}
	buf := make([]byte, n)
	binary.BigEndian.PutUint64(buf, uint64(words))
	return buf
}

// decodeWords recovers the word count from a payload header.
func decodeWords(payload []byte) float64 {
	if len(payload) >= 8 {
		if w := binary.BigEndian.Uint64(payload); w > 0 {
			return float64(w)
		}
	}
	return 1
}
