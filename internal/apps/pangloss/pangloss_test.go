package pangloss_test

import (
	"math"
	"testing"

	"spectra/internal/apps/pangloss"
	"spectra/internal/core"
	"spectra/internal/solver"
	"spectra/internal/testbed"
	"spectra/internal/utility"
)

func newApp(t *testing.T) (*testbed.Laptop, *pangloss.App) {
	t.Helper()
	tb, err := testbed.NewLaptop(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := pangloss.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()
	return tb, app
}

// train sweeps every alternative at several sentence lengths, standing in
// for the paper's 129 training sentences (and its exhaustive measurement of
// all alternatives, which equally feeds Spectra's models).
func train(t *testing.T, tb *testbed.Laptop, app *pangloss.App) {
	t.Helper()
	alts := pangloss.AllAlternatives(tb.Setup.Client.Servers())
	for _, words := range []float64{4, 10, 20, 34} {
		for _, a := range alts {
			if _, err := app.TranslateForced(a, words); err != nil {
				t.Fatalf("training %v @%v: %v", a, words, err)
			}
		}
	}
}

func TestPlanNameRoundTrip(t *testing.T) {
	for _, p := range pangloss.AllPlans() {
		got, err := pangloss.ParsePlan(p.Name())
		if err != nil {
			t.Fatalf("%q: %v", p.Name(), err)
		}
		if got != p {
			t.Fatalf("round trip %q -> %+v", p.Name(), got)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{"", "e=l", "e=l,g=r,d=l,m=x", "e=l,g=r,d=l,z=l", "a,b,c,d"} {
		if _, err := pangloss.ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
}

func TestFidelityValues(t *testing.T) {
	tests := []struct {
		give map[string]string
		want float64
	}{
		{give: map[string]string{"ebmt": "on", "glossary": "on", "dict": "on"}, want: 1.0},
		{give: map[string]string{"ebmt": "on", "glossary": "off", "dict": "off"}, want: 0.5},
		{give: map[string]string{"ebmt": "off", "glossary": "on", "dict": "on"}, want: 0.5},
		{give: map[string]string{"ebmt": "off", "glossary": "off", "dict": "on"}, want: 0.2},
		{give: map[string]string{}, want: 0},
	}
	for _, tt := range tests {
		if got := pangloss.FidelityValue(tt.give); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("FidelityValue(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestAlternativeSpaceSize(t *testing.T) {
	// The paper reports "100 different combinations of location and
	// fidelity"; the canonical enumeration with two candidate servers
	// yields 97.
	alts := pangloss.AllAlternatives([]string{"serverA", "serverB"})
	if len(alts) != 97 {
		t.Fatalf("alternatives = %d, want 97", len(alts))
	}
	seen := make(map[string]bool, len(alts))
	for _, a := range alts {
		if seen[a.Key()] {
			t.Fatalf("duplicate alternative %s", a.Key())
		}
		seen[a.Key()] = true
	}
}

func TestValidCombination(t *testing.T) {
	allOn := map[string]string{"ebmt": "on", "glossary": "on", "dict": "on"}
	if !pangloss.ValidCombination("e=r,g=r,d=l,m=l", allOn) {
		t.Fatal("valid combination rejected")
	}
	// Disabled engine with a remote placement is a duplicate encoding.
	off := map[string]string{"ebmt": "off", "glossary": "on", "dict": "on"}
	if pangloss.ValidCombination("e=r,g=r,d=l,m=l", off) {
		t.Fatal("disabled engine with remote placement accepted")
	}
	// All engines off is meaningless.
	none := map[string]string{"ebmt": "off", "glossary": "off", "dict": "off"}
	if pangloss.ValidCombination("e=l,g=l,d=l,m=l", none) {
		t.Fatal("all-off fidelity accepted")
	}
}

func TestTranslateExecutesChosenPlacements(t *testing.T) {
	_, app := newApp(t)
	full := map[string]string{"ebmt": "on", "glossary": "on", "dict": "on"}
	rep, err := app.TranslateForced(solver.Alternative{
		Server:   "serverB",
		Plan:     "e=r,g=r,d=l,m=l",
		Fidelity: full,
	}, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Two remote engine calls; dictionary and LM local.
	if rep.Usage.RPCs != 2 {
		t.Fatalf("rpcs = %d, want 2", rep.Usage.RPCs)
	}
	if rep.Usage.LocalMegacycles == 0 || rep.Usage.RemoteMegacycles == 0 {
		t.Fatalf("usage = %+v", rep.Usage)
	}
	// EBMT dominates: remote megacycles must exceed local.
	if rep.Usage.RemoteMegacycles <= rep.Usage.LocalMegacycles {
		t.Fatalf("remote %v <= local %v", rep.Usage.RemoteMegacycles, rep.Usage.LocalMegacycles)
	}
}

func TestReducedFidelitySkipsEngines(t *testing.T) {
	_, app := newApp(t)
	rep, err := app.TranslateForced(solver.Alternative{
		Plan:     "e=l,g=l,d=l,m=l",
		Fidelity: map[string]string{"ebmt": "off", "glossary": "off", "dict": "on"},
	}, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Only dict (3 Mc/word) and LM (5 Mc/word) run: 96 Mc at 12 words.
	if math.Abs(rep.Usage.LocalMegacycles-96) > 1e-6 {
		t.Fatalf("local megacycles = %v, want 96", rep.Usage.LocalMegacycles)
	}
}

func TestBaselineDecisions(t *testing.T) {
	tb, app := newApp(t)
	train(t, tb, app)

	// Small sentence: all engines used (fidelity 1.0), EBMT offloaded.
	rep, err := app.Translate(8)
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Decision
	fid := d.Alternative.Fidelity
	if fid["ebmt"] != "on" || fid["glossary"] != "on" || fid["dict"] != "on" {
		t.Fatalf("small-sentence fidelity = %v, want all engines", fid)
	}
	plan, err := pangloss.ParsePlan(d.Alternative.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EBMT != pangloss.Remote {
		t.Fatalf("small-sentence plan = %s, want EBMT remote", d.Alternative.Plan)
	}

	// Large sentence: the glossary engine is dropped to stay under the
	// 5-second deadline (paper: "for the two larger sentences, it does not
	// use the glossary engine").
	rep, err = app.Translate(34)
	if err != nil {
		t.Fatal(err)
	}
	fid = rep.Decision.Alternative.Fidelity
	if fid["glossary"] != "off" {
		t.Fatalf("large-sentence fidelity = %v, want glossary off", fid)
	}
	if fid["ebmt"] != "on" {
		t.Fatalf("large-sentence fidelity = %v, want ebmt kept", fid)
	}
}

func TestFileCacheScenarioAvoidsEBMTOnB(t *testing.T) {
	tb, app := newApp(t)
	train(t, tb, app)

	// Evict the 12 MB EBMT corpus from server B's cache.
	nodeB, _, _ := tb.Setup.Env.Server("serverB")
	if !nodeB.Coda().Evict(pangloss.EBMTFile) {
		t.Fatal("evict failed")
	}
	tb.Setup.Refresh()

	for _, words := range []float64{4, 12, 26} {
		rep, err := app.Translate(words)
		if err != nil {
			t.Fatal(err)
		}
		d := rep.Decision.Alternative
		plan, err := pangloss.ParsePlan(d.Plan)
		if err != nil {
			t.Fatal(err)
		}
		ebmtOnB := d.Fidelity["ebmt"] == "on" &&
			plan.EBMT == pangloss.Remote && d.Server == "serverB"
		if ebmtOnB {
			t.Fatalf("words=%v: chose EBMT on cold server B: %+v", words, d)
		}
	}
}

func TestNearOracleUtility(t *testing.T) {
	tb, app := newApp(t)
	train(t, tb, app)

	// Measure every alternative's achieved utility, then compare Spectra's
	// achieved utility (Figure 9's comparison, baseline scenario).
	eval := func(words float64) {
		alts := pangloss.AllAlternatives(tb.Setup.Client.Servers())
		best := 0.0
		for _, a := range alts {
			rep, err := app.TranslateForced(a, words)
			if err != nil {
				t.Fatalf("%v: %v", a, err)
			}
			u := achievedUtility(rep)
			if u > best {
				best = u
			}
		}
		rep, err := app.Translate(words)
		if err != nil {
			t.Fatal(err)
		}
		got := achievedUtility(rep)
		if best > 0 && got < 0.8*best {
			t.Fatalf("words=%v: Spectra achieved %.3f of oracle %.3f (< 80%%)",
				words, got, best)
		}
	}
	eval(8)
	eval(26)
}

// achievedUtility scores a completed translation by its measured latency
// and chosen fidelity (the baseline scenarios are wall-powered, so energy
// does not contribute).
func achievedUtility(rep core.Report) float64 {
	lat := utility.DeadlineLatency(pangloss.BestLatency, pangloss.WorstLatency)
	return lat(rep.Elapsed) * pangloss.FidelityValue(rep.Decision.Alternative.Fidelity)
}
