package pangloss_test

import (
	"testing"

	"spectra/internal/apps/pangloss"
	"spectra/internal/solver"
)

func TestTranslateParallelBeatsSequential(t *testing.T) {
	_, app := newApp(t)
	full := map[string]string{"ebmt": "on", "glossary": "on", "dict": "on"}
	const words = 30

	// Sequential: every engine on server B (the paper's best sequential
	// placement for large sentences with all engines).
	seq, err := app.TranslateForced(solver.Alternative{
		Server:   "serverB",
		Plan:     "e=r,g=r,d=r,m=l",
		Fidelity: full,
	}, words)
	if err != nil {
		t.Fatal(err)
	}

	// Parallel: EBMT on B, glossary on A, dictionary on B — the paper's
	// "considerable benefit" projection for Pangloss-Lite.
	par, err := app.TranslateParallel(words, full, "serverB", map[string]string{
		pangloss.EngineEBMT:     "serverB",
		pangloss.EngineGlossary: "serverA",
		pangloss.EngineDict:     "serverB",
	})
	if err != nil {
		t.Fatal(err)
	}

	if par.Elapsed >= seq.Elapsed {
		t.Fatalf("parallel %v should beat sequential %v", par.Elapsed, seq.Elapsed)
	}
	// The win is real but bounded by server heterogeneity: the glossary
	// engine overlaps with EBMT, but runs on the slower server A.
	improvement := float64(seq.Elapsed-par.Elapsed) / float64(seq.Elapsed)
	if improvement < 0.10 {
		t.Fatalf("parallel improvement = %.0f%%, want >= 10%%", improvement*100)
	}
	// Both runs perform the same work.
	if par.Usage.RemoteMegacycles != seq.Usage.RemoteMegacycles {
		t.Fatalf("parallel remote Mc %v != sequential %v",
			par.Usage.RemoteMegacycles, seq.Usage.RemoteMegacycles)
	}
}

func TestTranslateParallelNoEngines(t *testing.T) {
	_, app := newApp(t)
	none := map[string]string{"ebmt": "off", "glossary": "off", "dict": "off"}
	if _, err := app.TranslateParallel(10, none, "serverB", nil); err == nil {
		t.Fatal("no enabled engines should fail")
	}
}
