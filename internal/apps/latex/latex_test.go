package latex_test

import (
	"testing"

	"spectra/internal/apps/latex"
	"spectra/internal/solver"
	"spectra/internal/testbed"
)

func newApp(t *testing.T) (*testbed.Laptop, *latex.App) {
	t.Helper()
	tb, err := testbed.NewLaptop(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := latex.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()
	return tb, app
}

func alt(server, plan string) solver.Alternative {
	return solver.Alternative{Server: server, Plan: plan}
}

func allAlternatives() []solver.Alternative {
	return []solver.Alternative{
		alt("", latex.PlanLocal),
		alt("serverA", latex.PlanRemote),
		alt("serverB", latex.PlanRemote),
	}
}

// train executes every alternative for both documents, the equivalent of
// the paper's 20 training runs.
func train(t *testing.T, app *latex.App, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		for _, doc := range []latex.Document{latex.SmallDocument(), latex.LargeDocument()} {
			for _, a := range allAlternatives() {
				if _, err := app.CompileForced(a, doc); err != nil {
					t.Fatalf("training %v %s: %v", a, doc.Name, err)
				}
			}
		}
	}
}

func TestCompilePaths(t *testing.T) {
	_, app := newApp(t)
	small := latex.SmallDocument()
	for _, a := range allAlternatives() {
		rep, err := app.CompileForced(a, small)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if rep.Elapsed <= 0 {
			t.Fatalf("%v elapsed = %v", a, rep.Elapsed)
		}
		if len(rep.Usage.Files) < len(small.Inputs) {
			t.Fatalf("%v accessed %d files, want >= %d", a, len(rep.Usage.Files), len(small.Inputs))
		}
	}
}

func TestDocumentWorkScalesWithPages(t *testing.T) {
	_, app := newApp(t)
	small, err := app.CompileForced(alt("", latex.PlanLocal), latex.SmallDocument())
	if err != nil {
		t.Fatal(err)
	}
	large, err := app.CompileForced(alt("", latex.PlanLocal), latex.LargeDocument())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large.Elapsed) / float64(small.Elapsed)
	want := latex.LargeDocument().Pages / latex.SmallDocument().Pages
	if ratio < want*0.8 || ratio > want*1.2 {
		t.Fatalf("elapsed ratio = %.1f, want ~%.1f", ratio, want)
	}
}

func TestBaselineChoosesServerB(t *testing.T) {
	_, app := newApp(t)
	train(t, app, 3)
	for _, doc := range []latex.Document{latex.SmallDocument(), latex.LargeDocument()} {
		rep, err := app.Compile(doc)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Decision.Alternative
		if got.Plan != latex.PlanRemote || got.Server != "serverB" {
			t.Fatalf("%s baseline decision = %+v, want remote on serverB", doc.Name, got)
		}
	}
}

func TestFileCacheScenarioSwitchesToServerA(t *testing.T) {
	tb, app := newApp(t)
	train(t, app, 3)

	// Evict every input file from server B's cache.
	nodeB, _, _ := tb.Setup.Env.Server("serverB")
	for _, doc := range []latex.Document{latex.SmallDocument(), latex.LargeDocument()} {
		for _, in := range doc.Inputs {
			nodeB.Coda().Evict(in.Path)
		}
	}
	tb.Setup.Refresh() // repoll so the cache snapshot reflects the eviction

	for _, doc := range []latex.Document{latex.SmallDocument(), latex.LargeDocument()} {
		rep, err := app.Compile(doc)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Decision.Alternative
		if got.Plan != latex.PlanRemote || got.Server != "serverA" {
			t.Fatalf("%s file-cache decision = %+v, want remote on serverA", doc.Name, got)
		}
	}
}

func TestReintegrateScenario(t *testing.T) {
	tb, app := newApp(t)
	train(t, app, 3)
	small, large := latex.SmallDocument(), latex.LargeDocument()

	// Modify the small document's 70 KB input on the client.
	if err := app.TouchInput(small); err != nil {
		t.Fatal(err)
	}
	// Small document: reintegration over the wireless makes remote
	// expensive; Spectra chooses local execution.
	rep, err := app.Compile(small)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Decision.Alternative; got.Plan != latex.PlanLocal {
		t.Fatalf("small reintegrate decision = %+v, want local", got)
	}
	if rep.Decision.ReintegratedBytes != 0 {
		t.Fatalf("local execution should not reintegrate, moved %d bytes",
			rep.Decision.ReintegratedBytes)
	}
	if !tb.Setup.Env.Host().Coda().IsDirty(small.MainInput().Path) {
		t.Fatal("modification should still be buffered")
	}

	// Large document: Spectra predicts the modified file is not needed and
	// does not force reintegration; server B stays the choice.
	rep, err = app.Compile(large)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Decision.Alternative; got.Plan != latex.PlanRemote || got.Server != "serverB" {
		t.Fatalf("large reintegrate decision = %+v, want remote on serverB", got)
	}
	if rep.Decision.ReintegratedBytes != 0 {
		t.Fatalf("large document reintegrated %d bytes, want 0", rep.Decision.ReintegratedBytes)
	}
	if !tb.Setup.Env.Host().Coda().IsDirty(small.MainInput().Path) {
		t.Fatal("large compile must not have reintegrated the small document's file")
	}
}

func TestReintegrationEnforcedWhenRemoteForced(t *testing.T) {
	tb, app := newApp(t)
	train(t, app, 3)
	small := latex.SmallDocument()
	if err := app.TouchInput(small); err != nil {
		t.Fatal(err)
	}
	rep, err := app.CompileForced(alt("serverB", latex.PlanRemote), small)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision.ReintegratedBytes != small.MainInput().SizeBytes {
		t.Fatalf("reintegrated %d bytes, want %d",
			rep.Decision.ReintegratedBytes, small.MainInput().SizeBytes)
	}
	if tb.Setup.Env.Host().Coda().IsDirty(small.MainInput().Path) {
		t.Fatal("file still dirty after forced remote compile")
	}
}

func TestEnergyScenarioChoosesServerB(t *testing.T) {
	tb, app := newApp(t)
	train(t, app, 3)
	small, large := latex.SmallDocument(), latex.LargeDocument()

	// Identical to the reintegrate scenario, plus battery power and a very
	// aggressive lifetime goal (paper §4.2).
	if err := app.TouchInput(small); err != nil {
		t.Fatal(err)
	}
	tb.X560.SetWallPower(false)
	tb.Setup.Adaptor.SetImportance(0.95)
	tb.Setup.Refresh()

	// Small document: B takes more time than local but uses slightly less
	// energy; with energy paramount Spectra picks B.
	rep, err := app.Compile(small)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Decision.Alternative; got.Plan != latex.PlanRemote || got.Server != "serverB" {
		t.Fatalf("small energy decision = %+v, want remote on serverB", got)
	}

	// Large document: B saves both time and energy.
	rep, err = app.Compile(large)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Decision.Alternative; got.Plan != latex.PlanRemote || got.Server != "serverB" {
		t.Fatalf("large energy decision = %+v, want remote on serverB", got)
	}
}
