// Package latex models the Latex document-preparation workload of the
// paper's evaluation (§3.7.2, §4.2): generating a DVI file from multiple
// input files, with local and remote execution plans. Resource usage is
// strongly document-specific — the 123-page document consumes far more CPU
// than the 14-page one — so operations are parameterized by document name,
// exercising Spectra's data-specific demand models. Input files are
// commonly modified on the (weakly connected) client, exercising data
// consistency: dirty volumes the compile may read must be reintegrated
// before remote execution.
package latex

import (
	"fmt"
	"sync"

	"spectra/internal/coda"
	"spectra/internal/core"
	"spectra/internal/sim"
	"spectra/internal/solver"
	"spectra/internal/utility"
)

// Public identifiers of the Latex workload.
const (
	OperationName = "latex.compile"
	ServiceName   = "latex"

	PlanLocal  = "local"
	PlanRemote = "remote"

	// ParamPages is the input parameter: document length in pages.
	ParamPages = "pages"

	opCompile = "compile"

	// workMcPerPage calibrates integer compile work per page.
	workMcPerPage = 17
)

// InputFile is one input of a document.
type InputFile struct {
	Path      string
	SizeBytes int64
}

// Document describes one Latex document: its inputs, its output, and the
// Coda volume its private files live in.
type Document struct {
	// Name labels the document; it doubles as the Spectra data label.
	Name  string
	Pages float64
	// Volume is the document's private Coda volume.
	Volume string
	// Inputs are the files the compile reads. Shared inputs (styles,
	// fonts) live in SharedVolume.
	Inputs []InputFile
	// Output is the DVI the compile writes, in Volume.
	Output      string
	OutputBytes int64
}

// SharedVolume holds style and font files used by every document.
const SharedVolume = "latex.shared"

// Shared inputs.
var sharedInputs = []InputFile{
	{Path: "/coda/latex/shared/style.sty", SizeBytes: 30 * 1024},
	{Path: "/coda/latex/shared/fonts.db", SizeBytes: 700 * 1024},
}

// SmallDocument is the paper's 14-page document; its 70 KB main input is
// the file the reintegrate scenario modifies on the client.
func SmallDocument() Document {
	return Document{
		Name:   "small.tex",
		Pages:  14,
		Volume: "latex.small",
		Inputs: append([]InputFile{
			{Path: "/coda/latex/small/main.tex", SizeBytes: 70 * 1024},
			{Path: "/coda/latex/small/body.tex", SizeBytes: 30 * 1024},
		}, sharedInputs...),
		Output:      "/coda/latex/small/out.dvi",
		OutputBytes: 30 * 1024,
	}
}

// LargeDocument is the paper's 123-page document.
func LargeDocument() Document {
	return Document{
		Name:   "large.tex",
		Pages:  123,
		Volume: "latex.large",
		Inputs: append([]InputFile{
			{Path: "/coda/latex/large/main.tex", SizeBytes: 250 * 1024},
			{Path: "/coda/latex/large/ch1.tex", SizeBytes: 150 * 1024},
			{Path: "/coda/latex/large/ch2.tex", SizeBytes: 150 * 1024},
			{Path: "/coda/latex/large/ch3.tex", SizeBytes: 150 * 1024},
			{Path: "/coda/latex/large/ch4.tex", SizeBytes: 150 * 1024},
			{Path: "/coda/latex/large/ch5.tex", SizeBytes: 150 * 1024},
			{Path: "/coda/latex/large/figs.db", SizeBytes: 3 * 1024 * 1024},
		}, sharedInputs...),
		Output:      "/coda/latex/large/out.dvi",
		OutputBytes: 150 * 1024,
	}
}

// WorkMegacycles is the integer compile demand of a document.
func (d Document) WorkMegacycles() float64 { return d.Pages * workMcPerPage }

// MainInput returns the document's first input, the file the reintegrate
// scenario modifies.
func (d Document) MainInput() InputFile { return d.Inputs[0] }

// App is a Latex front-end bound to a Spectra deployment.
type App struct {
	setup *core.SimSetup
	op    *core.Operation

	mu   sync.Mutex
	docs map[string]Document
}

// Install provisions document files on the file servers, warms every
// machine's cache, registers the latex service everywhere, and registers
// the operation.
func Install(setup *core.SimSetup, docs ...Document) (*App, error) {
	if len(docs) == 0 {
		docs = []Document{SmallDocument(), LargeDocument()}
	}
	app := &App{setup: setup, docs: make(map[string]Document, len(docs))}

	fs := setup.FileServer
	for _, d := range docs {
		app.docs[d.Name] = d
		for _, in := range d.Inputs {
			vol := d.Volume
			if isShared(in.Path) {
				vol = SharedVolume
			}
			fs.Store(vol, in.Path, in.SizeBytes)
		}
		fs.Store(d.Volume, d.Output, d.OutputBytes)
	}

	nodes := []*core.Node{setup.Env.Host()}
	for _, name := range setup.Env.ServerNames() {
		node, _, _ := setup.Env.Server(name)
		nodes = append(nodes, node)
	}
	// Each machine hoards every document's inputs; shared styles and fonts
	// get the highest priority since all documents need them.
	hoard := coda.NewHoardProfile()
	for _, d := range docs {
		for _, in := range d.Inputs {
			priority := 5
			if isShared(in.Path) {
				priority = 10
			}
			hoard.Add(in.Path, priority)
		}
	}
	for _, node := range nodes {
		node.RegisterService(ServiceName, app.Service)
		if _, err := node.Coda().HoardWalk(hoard); err != nil {
			return nil, fmt.Errorf("latex: hoard on %s: %w", node.Machine().Name(), err)
		}
	}

	op, err := setup.Client.RegisterFidelity(Spec())
	if err != nil {
		return nil, err
	}
	app.op = op
	return app, nil
}

// Spec is the Latex operation registration: one fidelity, two plans, and
// document-parameterized predictions (paper §3.7.2).
func Spec() core.OperationSpec {
	return core.OperationSpec{
		Name:    OperationName,
		Service: ServiceName,
		Plans: []core.PlanSpec{
			{Name: PlanLocal, Files: core.FilesLocal},
			{Name: PlanRemote, UsesServer: true, Files: core.FilesRemote},
		},
		Params:         []string{ParamPages},
		LatencyUtility: utility.InverseLatency,
		UsesData:       true,
	}
}

// Operation returns the registered operation.
func (a *App) Operation() *core.Operation { return a.op }

// Document returns a registered document.
func (a *App) Document(name string) (Document, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.docs[name]
	return d, ok
}

// TouchInput modifies the document's main input file on the client, as an
// editing user would. On the weakly connected client the modification
// buffers in Coda until Spectra reintegrates it.
func (a *App) TouchInput(doc Document) error {
	in := doc.MainInput()
	if _, err := a.setup.Env.Host().Coda().Write(in.Path, in.SizeBytes); err != nil {
		return fmt.Errorf("latex: touch %s: %w", in.Path, err)
	}
	return nil
}

// Compile runs one compilation, letting Spectra pick the location.
func (a *App) Compile(doc Document) (core.Report, error) {
	octx, err := a.setup.Client.BeginFidelityOp(a.op, params(doc), doc.Name)
	if err != nil {
		return core.Report{}, err
	}
	return a.finish(octx, doc)
}

// CompileForced runs one compilation at a dictated alternative.
func (a *App) CompileForced(alt solver.Alternative, doc Document) (core.Report, error) {
	octx, err := a.setup.Client.BeginForced(a.op, alt, params(doc), doc.Name)
	if err != nil {
		return core.Report{}, err
	}
	return a.finish(octx, doc)
}

func params(doc Document) map[string]float64 {
	return map[string]float64{ParamPages: doc.Pages}
}

func (a *App) finish(octx *core.OpContext, doc Document) (core.Report, error) {
	var err error
	switch octx.Plan() {
	case PlanLocal:
		_, err = octx.DoLocalOp(opCompile, []byte(doc.Name))
	case PlanRemote:
		_, err = octx.DoRemoteOp(opCompile, []byte(doc.Name))
	default:
		err = fmt.Errorf("latex: unknown plan %q", octx.Plan())
	}
	if err != nil {
		octx.Abort()
		return core.Report{}, err
	}
	return octx.End()
}

// Service compiles a document on whatever machine hosts the call: it reads
// every input (fetching uncached ones), burns document-proportional CPU,
// and writes the DVI.
func (a *App) Service(ctx *core.ServiceContext, optype string, payload []byte) ([]byte, error) {
	if optype != opCompile {
		return nil, fmt.Errorf("latex: unknown optype %q", optype)
	}
	doc, ok := a.Document(string(payload))
	if !ok {
		return nil, fmt.Errorf("latex: unknown document %q", payload)
	}
	for _, in := range doc.Inputs {
		if err := ctx.ReadFile(in.Path); err != nil {
			return nil, err
		}
	}
	ctx.Compute(sim.ComputeDemand{IntegerMegacycles: doc.WorkMegacycles()})
	if err := ctx.WriteFile(doc.Output, doc.OutputBytes); err != nil {
		return nil, err
	}
	return []byte("dvi:" + doc.Output), nil
}

func isShared(path string) bool {
	const prefix = "/coda/latex/shared/"
	return len(path) >= len(prefix) && path[:len(prefix)] == prefix
}
