package janus_test

import (
	"testing"
	"time"

	"spectra/internal/apps/janus"
	"spectra/internal/solver"
	"spectra/internal/testbed"
)

func newApp(t *testing.T) (*testbed.Speech, *janus.App) {
	t.Helper()
	tb, err := testbed.NewSpeech(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()
	return tb, app
}

func alt(server, plan, vocab string) solver.Alternative {
	return solver.Alternative{
		Server:   server,
		Plan:     plan,
		Fidelity: map[string]string{janus.FidelityDim: vocab},
	}
}

// allAlternatives enumerates the six bars of Figure 3.
func allAlternatives() []solver.Alternative {
	return []solver.Alternative{
		alt("", janus.PlanLocal, janus.VocabFull),
		alt("", janus.PlanLocal, janus.VocabSmall),
		alt("t20", janus.PlanHybrid, janus.VocabFull),
		alt("t20", janus.PlanHybrid, janus.VocabSmall),
		alt("t20", janus.PlanRemote, janus.VocabFull),
		alt("t20", janus.PlanRemote, janus.VocabSmall),
	}
}

func train(t *testing.T, app *janus.App, rounds int) {
	t.Helper()
	lengths := []float64{1.5, 2, 2.5}
	for i := 0; i < rounds; i++ {
		for _, a := range allAlternatives() {
			if _, err := app.RecognizeForced(a, lengths[i%len(lengths)]); err != nil {
				t.Fatalf("training %v: %v", a, err)
			}
		}
	}
}

func TestPlanExecutionPaths(t *testing.T) {
	_, app := newApp(t)
	for _, a := range allAlternatives() {
		rep, err := app.RecognizeForced(a, 2)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if rep.Elapsed <= 0 {
			t.Fatalf("%v: elapsed %v", a, rep.Elapsed)
		}
		switch a.Plan {
		case janus.PlanLocal:
			if rep.Usage.LocalMegacycles == 0 || rep.Usage.RemoteMegacycles != 0 {
				t.Fatalf("%v usage = %+v", a, rep.Usage)
			}
		case janus.PlanRemote:
			if rep.Usage.LocalMegacycles != 0 || rep.Usage.RemoteMegacycles == 0 {
				t.Fatalf("%v usage = %+v", a, rep.Usage)
			}
			if rep.Usage.RPCs != 1 {
				t.Fatalf("%v rpcs = %d", a, rep.Usage.RPCs)
			}
		case janus.PlanHybrid:
			if rep.Usage.LocalMegacycles == 0 || rep.Usage.RemoteMegacycles == 0 {
				t.Fatalf("%v usage = %+v", a, rep.Usage)
			}
		}
		if len(rep.Usage.Files) == 0 {
			t.Fatalf("%v accessed no files", a)
		}
	}
}

func TestLocalSlowdownWithinPaperRange(t *testing.T) {
	_, app := newApp(t)
	local, err := app.RecognizeForced(alt("", janus.PlanLocal, janus.VocabFull), 2)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := app.RecognizeForced(alt("t20", janus.PlanHybrid, janus.VocabFull), 2)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := app.RecognizeForced(alt("t20", janus.PlanRemote, janus.VocabFull), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3: local takes 3-9x as long as hybrid and remote.
	for _, other := range []time.Duration{hybrid.Elapsed, remote.Elapsed} {
		ratio := float64(local.Elapsed) / float64(other)
		if ratio < 3 || ratio > 9 {
			t.Fatalf("local/offload ratio = %.2f (local %v, other %v), want 3-9",
				ratio, local.Elapsed, other)
		}
	}
	// Hybrid beats remote at baseline.
	if hybrid.Elapsed >= remote.Elapsed {
		t.Fatalf("hybrid %v should beat remote %v at baseline",
			hybrid.Elapsed, remote.Elapsed)
	}
}

func TestBaselineDecisionHybridFull(t *testing.T) {
	_, app := newApp(t)
	train(t, app, 3)
	rep, err := app.Recognize(2)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Decision.Alternative
	if got.Plan != janus.PlanHybrid || got.Fidelity[janus.FidelityDim] != janus.VocabFull {
		t.Fatalf("baseline decision = %+v, want hybrid/full", got)
	}
}

func TestEnergyScenarioPrefersRemoteFull(t *testing.T) {
	tb, app := newApp(t)
	train(t, app, 3)

	// Battery power with an ambitious 10-hour lifetime goal (paper §4.1).
	// The importance parameter is pinned at the level the goal sustains so
	// the scenario is deterministic across trials.
	tb.Itsy.SetWallPower(false)
	tb.Setup.Adaptor.SetGoal(10 * time.Hour)
	tb.Setup.Adaptor.SetImportance(0.7)
	tb.Setup.Refresh()

	rep, err := app.Recognize(2)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Decision.Alternative
	if got.Plan != janus.PlanRemote || got.Fidelity[janus.FidelityDim] != janus.VocabFull {
		t.Fatalf("energy decision = %+v, want remote/full", got)
	}
}

func TestCPUScenarioPrefersRemote(t *testing.T) {
	tb, app := newApp(t)
	train(t, app, 3)

	tb.Itsy.SetBackgroundTasks(1)
	for i := 0; i < 8; i++ {
		tb.Setup.Refresh() // let the smoothed load estimate converge
	}
	rep, err := app.Recognize(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Decision.Alternative; got.Plan != janus.PlanRemote {
		t.Fatalf("CPU-scenario decision = %+v, want remote", got)
	}
}

func TestFileCacheScenarioDropsToReducedLocal(t *testing.T) {
	tb, app := newApp(t)
	train(t, app, 3)

	// Partition the Spectra server; file servers stay reachable. Flush the
	// full-vocabulary language model from the client cache.
	tb.Serial.SetPartitioned(true)
	tb.Setup.Client.PollServers()
	if !tb.Setup.Env.Host().Coda().Evict(janus.LMFullPath) {
		t.Fatal("evict failed")
	}

	rep, err := app.Recognize(2)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Decision.Alternative
	if got.Plan != janus.PlanLocal || got.Fidelity[janus.FidelityDim] != janus.VocabSmall {
		t.Fatalf("file-cache decision = %+v, want local/reduced", got)
	}
}
