// Package janus models the Janus speech recognizer of the paper's
// evaluation (§3.7.1, §4.1): speech-to-text translation of spoken phrases
// with three execution plans (local, hybrid, remote) and two fidelities
// (full or reduced recognition vocabulary). The front-end signal processing
// is integer work; the recognition search is floating-point heavy, which is
// what makes local execution 3-9x slower on the Itsy's SA-1100 with its
// software floating-point emulation.
package janus

import (
	"encoding/binary"
	"fmt"

	"spectra/internal/coda"
	"spectra/internal/core"
	"spectra/internal/sim"
	"spectra/internal/solver"
	"spectra/internal/utility"
)

// Public identifiers of the Janus workload.
const (
	// OperationName is the registered Spectra operation.
	OperationName = "janus.recognize"
	// ServiceName is the Spectra service hosting remote components.
	ServiceName = "janus"

	// Plans.
	PlanLocal  = "local"
	PlanHybrid = "hybrid"
	PlanRemote = "remote"

	// FidelityDim is the single fidelity dimension: vocabulary size.
	FidelityDim = "vocab"
	VocabFull   = "full"
	VocabSmall  = "reduced"

	// ParamLength is the input parameter: utterance length in seconds.
	ParamLength = "length"
)

// Workload calibration. Only ratios matter to Spectra's decisions; these
// are chosen so the measured shapes match Figures 3 and 4.
const (
	// LMFullPath is the 277 KB language model the full vocabulary needs;
	// the paper's file-cache scenario flushes it from the client.
	LMFullPath  = "/coda/speech/lm-full.bin"
	LMFullBytes = 277 * 1024
	// LMSmallPath is the reduced vocabulary's smaller model.
	LMSmallPath  = "/coda/speech/lm-reduced.bin"
	LMSmallBytes = 60 * 1024
	// Volume holds both language models.
	Volume = "speech"

	// audioBytesPerSecond is the raw utterance sample rate.
	audioBytesPerSecond = 16_000
	// featureBytesPerSecond is the compact front-end output rate.
	featureBytesPerSecond = 2_000
	// textBytesPerSecond approximates recognized-text size.
	textBytesPerSecond = 20

	// frontEndMcPerSecond is integer front-end work per utterance second.
	frontEndMcPerSecond = 150
	// searchFullMcPerSecond / searchSmallMcPerSecond are floating-point
	// search work per utterance second.
	searchFullMcPerSecond  = 300
	searchSmallMcPerSecond = 200
)

// Operation types the service multiplexes on.
const (
	opFrontEnd       = "frontend"
	opSearchFull     = "search.full"
	opSearchSmall    = "search.reduced"
	opRecognizeFull  = "recognize.full"
	opRecognizeSmall = "recognize.reduced"
)

// App is a Janus instance bound to a Spectra deployment.
type App struct {
	setup *core.SimSetup
	op    *core.Operation
}

// Install provisions the language models on the file servers, warms every
// machine's cache, registers the service on the client and all servers,
// and registers the operation with Spectra.
func Install(setup *core.SimSetup) (*App, error) {
	fs := setup.FileServer
	fs.Store(Volume, LMFullPath, LMFullBytes)
	fs.Store(Volume, LMSmallPath, LMSmallBytes)

	nodes := []*core.Node{setup.Env.Host()}
	for _, name := range setup.Env.ServerNames() {
		node, _, _ := setup.Env.Server(name)
		nodes = append(nodes, node)
	}
	// Every machine hoards both language models, the full vocabulary's at
	// higher priority (Coda hoard profiles keep them cached).
	hoard := coda.NewHoardProfile()
	hoard.Add(LMFullPath, 10)
	hoard.Add(LMSmallPath, 5)
	for _, node := range nodes {
		node.RegisterService(ServiceName, Service)
		if _, err := node.Coda().HoardWalk(hoard); err != nil {
			return nil, fmt.Errorf("janus: hoard on %s: %w", node.Machine().Name(), err)
		}
	}

	op, err := setup.Client.RegisterFidelity(Spec())
	if err != nil {
		return nil, err
	}
	return &App{setup: setup, op: op}, nil
}

// Spec is the Janus operation registration: the three execution plans, the
// vocabulary fidelity (full twice as desirable as reduced), the utterance
// length input parameter, and 1/T latency desirability.
func Spec() core.OperationSpec {
	return core.OperationSpec{
		Name:    OperationName,
		Service: ServiceName,
		Plans: []core.PlanSpec{
			{Name: PlanLocal, Files: core.FilesLocal},
			{Name: PlanHybrid, UsesServer: true, Files: core.FilesRemote},
			{Name: PlanRemote, UsesServer: true, Files: core.FilesRemote},
		},
		Fidelities: []core.FidelityDimension{
			{Name: FidelityDim, Values: []string{VocabFull, VocabSmall}},
		},
		Params:         []string{ParamLength},
		LatencyUtility: utility.InverseLatency,
		FidelityUtility: func(fid map[string]string) float64 {
			if fid[FidelityDim] == VocabSmall {
				return 0.5
			}
			return 1.0
		},
	}
}

// Operation returns the registered operation.
func (a *App) Operation() *core.Operation { return a.op }

// Recognize performs one utterance recognition, letting Spectra choose
// how and where to execute it.
func (a *App) Recognize(lengthSeconds float64) (core.Report, error) {
	octx, err := a.setup.Client.BeginFidelityOp(a.op, params(lengthSeconds), "")
	if err != nil {
		return core.Report{}, err
	}
	return a.finish(octx, lengthSeconds)
}

// RecognizeForced performs one recognition with a dictated alternative;
// the validation harness uses it to measure every bar of Figures 3 and 4.
func (a *App) RecognizeForced(alt solver.Alternative, lengthSeconds float64) (core.Report, error) {
	octx, err := a.setup.Client.BeginForced(a.op, alt, params(lengthSeconds), "")
	if err != nil {
		return core.Report{}, err
	}
	return a.finish(octx, lengthSeconds)
}

func params(lengthSeconds float64) map[string]float64 {
	return map[string]float64{ParamLength: lengthSeconds}
}

// finish executes the chosen plan through the Spectra API and ends the op.
func (a *App) finish(octx *core.OpContext, lengthSeconds float64) (core.Report, error) {
	vocab := octx.Fidelity()[FidelityDim]
	audio := make([]byte, int(audioBytesPerSecond*lengthSeconds))

	var err error
	switch octx.Plan() {
	case PlanLocal:
		_, err = octx.DoLocalOp(recognizeOp(vocab), audio)
	case PlanRemote:
		_, err = octx.DoRemoteOp(recognizeOp(vocab), audio)
	case PlanHybrid:
		var features []byte
		features, err = octx.DoLocalOp(opFrontEnd, audio)
		if err == nil {
			_, err = octx.DoRemoteOp(searchOp(vocab), features)
		}
	default:
		err = fmt.Errorf("janus: unknown plan %q", octx.Plan())
	}
	if err != nil {
		octx.Abort()
		return core.Report{}, err
	}
	return octx.End()
}

func recognizeOp(vocab string) string {
	if vocab == VocabSmall {
		return opRecognizeSmall
	}
	return opRecognizeFull
}

func searchOp(vocab string) string {
	if vocab == VocabSmall {
		return opSearchSmall
	}
	return opSearchFull
}

// Service is the Janus Spectra service: it multiplexes the front-end,
// search, and whole-pipeline operation types.
func Service(ctx *core.ServiceContext, optype string, payload []byte) ([]byte, error) {
	switch optype {
	case opFrontEnd:
		seconds := float64(len(payload)) / audioBytesPerSecond
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: frontEndMcPerSecond * seconds})
		return encodeSeconds(seconds, featureBytesPerSecond), nil
	case opSearchFull, opSearchSmall:
		seconds := decodeSeconds(payload, featureBytesPerSecond)
		return search(ctx, optype == opSearchSmall, seconds)
	case opRecognizeFull, opRecognizeSmall:
		seconds := float64(len(payload)) / audioBytesPerSecond
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: frontEndMcPerSecond * seconds})
		return search(ctx, optype == opRecognizeSmall, seconds)
	default:
		return nil, fmt.Errorf("janus: unknown optype %q", optype)
	}
}

func search(ctx *core.ServiceContext, reduced bool, seconds float64) ([]byte, error) {
	lm, rate := LMFullPath, float64(searchFullMcPerSecond)
	if reduced {
		lm, rate = LMSmallPath, searchSmallMcPerSecond
	}
	if err := ctx.ReadFile(lm); err != nil {
		return nil, err
	}
	ctx.Compute(sim.ComputeDemand{FloatMegacycles: rate * seconds})
	return encodeSeconds(seconds, textBytesPerSecond), nil
}

// encodeSeconds builds a payload of size rate×seconds carrying the
// utterance length in its first eight bytes.
func encodeSeconds(seconds float64, bytesPerSecond float64) []byte {
	n := int(seconds * bytesPerSecond)
	if n < 8 {
		n = 8
	}
	buf := make([]byte, n)
	binary.BigEndian.PutUint64(buf, uint64(seconds*1000))
	return buf
}

// decodeSeconds recovers the utterance length, preferring the embedded
// header and falling back to payload size.
func decodeSeconds(payload []byte, bytesPerSecond float64) float64 {
	if len(payload) >= 8 {
		if ms := binary.BigEndian.Uint64(payload); ms > 0 {
			return float64(ms) / 1000
		}
	}
	return float64(len(payload)) / bytesPerSecond
}
