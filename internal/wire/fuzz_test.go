package wire

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzReadMessage hardens the frame decoder against arbitrary input: it
// must never panic and never claim to have consumed more bytes than it was
// given. Run with `go test -fuzz FuzzReadMessage ./internal/wire`.
func FuzzReadMessage(f *testing.F) {
	// Seed with valid frames and near-misses.
	var valid bytes.Buffer
	if _, err := WriteMessage(&valid, &Message{Type: MsgRequest, ID: 1, Service: "s"}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var cancel bytes.Buffer
	if _, err := WriteMessage(&cancel, &Message{Type: MsgCancel, ID: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(cancel.Bytes())
	// A request immediately followed by its own cancel, as a multiplexed
	// client emits when abandoning a stream; decoding the first frame of
	// the pair must not be confused by the trailing bytes.
	var interleaved bytes.Buffer
	interleaved.Write(valid.Bytes())
	interleaved.Write(cancel.Bytes())
	f.Add(interleaved.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 3, '{', '}', '!'})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, n, err := ReadMessage(bytes.NewReader(data))
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
	})
}

// FuzzInterleavedCancelStream writes an arbitrary interleaving of request
// and cancel frames onto one buffer — the shape a multiplexed connection
// carries — and re-reads the whole stream, checking every frame comes back
// with its own type and stream ID and that byte accounting stays exact
// across frame boundaries.
func FuzzInterleavedCancelStream(f *testing.F) {
	// Each bit of pattern selects frame kind: 0 = request, 1 = cancel.
	f.Add(uint8(0b0101), uint64(1))
	f.Add(uint8(0b1111), uint64(1<<40))
	f.Add(uint8(0), uint64(0))
	f.Fuzz(func(t *testing.T, pattern uint8, baseID uint64) {
		const frames = 8
		var buf bytes.Buffer
		var wrote []Message
		written := 0
		for i := 0; i < frames; i++ {
			m := Message{ID: baseID + uint64(i)}
			if pattern&(1<<i) != 0 {
				m.Type = MsgCancel
			} else {
				m.Type = MsgRequest
				m.Service = "svc"
				m.Payload = []byte{byte(i)}
			}
			n, err := WriteMessage(&buf, &m)
			if err != nil {
				t.Fatal(err)
			}
			written += n
			wrote = append(wrote, m)
		}
		read := 0
		for i, want := range wrote {
			got, n, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			read += n
			if got.Type != want.Type || got.ID != want.ID {
				t.Fatalf("frame %d = type %v id %d, want type %v id %d", i, got.Type, got.ID, want.Type, want.ID)
			}
			if !bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("frame %d payload = %v, want %v", i, got.Payload, want.Payload)
			}
		}
		if read != written {
			t.Fatalf("read %d bytes of %d written", read, written)
		}
	})
}

// FuzzTraceRoundTrip checks encode/decode symmetry for the trace-context
// field and server-side span records under arbitrary values.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), "server.exec", int64(10), int64(500))
	f.Add(uint64(0), uint64(0), "", int64(-1), int64(0))
	f.Fuzz(func(t *testing.T, traceID, spanID uint64, name string, startNs, durNs int64) {
		if !utf8.ValidString(name) {
			t.Skip("invalid UTF-8 identifiers are outside the protocol")
		}
		var buf bytes.Buffer
		in := &Message{
			Type:  MsgResponse,
			ID:    1,
			Trace: &TraceContext{TraceID: traceID, SpanID: spanID},
			Spans: []SpanRecord{{Name: name, StartOffsetNs: startNs, DurationNs: durNs}},
		}
		if _, err := WriteMessage(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if out.Trace == nil || *out.Trace != *in.Trace {
			t.Fatalf("trace = %+v, want %+v", out.Trace, in.Trace)
		}
		if len(out.Spans) != 1 || out.Spans[0] != in.Spans[0] {
			t.Fatalf("spans = %+v, want %+v", out.Spans, in.Spans)
		}
	})
}

// FuzzDeadlineRoundTrip checks encode/decode symmetry for the deadline
// context under arbitrary budgets, including negative (already expired)
// ones, and that a frame without a deadline decodes to a nil context.
func FuzzDeadlineRoundTrip(f *testing.F) {
	f.Add(int64(250), true)
	f.Add(int64(0), true)
	f.Add(int64(-7), true)
	f.Add(int64(1<<40), false)
	f.Fuzz(func(t *testing.T, budgetMillis int64, withDeadline bool) {
		var buf bytes.Buffer
		in := &Message{Type: MsgRequest, ID: 9, Service: "s"}
		if withDeadline {
			in.Deadline = &DeadlineContext{BudgetMillis: budgetMillis}
		}
		if _, err := WriteMessage(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !withDeadline {
			if out.Deadline != nil {
				t.Fatalf("deadline = %+v, want nil", out.Deadline)
			}
			return
		}
		if out.Deadline == nil || out.Deadline.BudgetMillis != budgetMillis {
			t.Fatalf("deadline = %+v, want budgetMillis %d", out.Deadline, budgetMillis)
		}
	})
}

// FuzzRoundTrip checks encode/decode symmetry for arbitrary payloads.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("payload"), "service", "optype", uint64(7))
	f.Fuzz(func(t *testing.T, payload []byte, service, optype string, id uint64) {
		if !utf8.ValidString(service) || !utf8.ValidString(optype) {
			// The JSON wire format requires string fields to be valid
			// UTF-8 (see the Message doc); invalid sequences would be
			// replaced with U+FFFD on the wire.
			t.Skip("invalid UTF-8 identifiers are outside the protocol")
		}
		var buf bytes.Buffer
		in := &Message{
			Type:    MsgRequest,
			ID:      id,
			Service: service,
			OpType:  optype,
			Payload: payload,
		}
		if _, err := WriteMessage(&buf, in); err != nil {
			if len(payload) > MaxMessageBytes/2 {
				return // oversized input may legitimately fail
			}
			t.Fatal(err)
		}
		out, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if out.ID != id || out.Service != service || out.OpType != optype ||
			!bytes.Equal(out.Payload, payload) {
			t.Fatalf("round trip mismatch: %+v", out)
		}
	})
}
