// Package wire defines the Spectra wire protocol: length-prefixed JSON
// messages exchanged between Spectra clients and servers. Byte counts are
// reported to callers so the network monitor can passively estimate
// bandwidth and latency from observed traffic, as the paper's RPC package
// does (§3.3.2).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// MaxMessageBytes bounds a single message to protect servers from
// malformed or hostile length prefixes.
const MaxMessageBytes = 64 << 20 // 64 MiB

// ErrMessageTooLarge indicates a frame exceeding MaxMessageBytes.
var ErrMessageTooLarge = errors.New("wire: message too large")

// MsgType identifies a message's role in the protocol.
type MsgType uint8

// Message types.
const (
	MsgRequest MsgType = iota + 1
	MsgResponse
	MsgStatus
	MsgStatusReply
	MsgPing
	MsgPong
	// MsgCancel tells the server the client has abandoned the request with
	// the same ID on this connection: work not yet started is dropped, and
	// a running handler's context is cancelled. Cancels carry no payload
	// and receive no reply — the requesting stream is already gone.
	MsgCancel
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "request"
	case MsgResponse:
		return "response"
	case MsgStatus:
		return "status"
	case MsgStatusReply:
		return "status-reply"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgCancel:
		return "cancel"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Response codes carried in Message.Code. They classify machine-readable
// failure modes that clients dispatch on, unlike Err which is free text.
const (
	// CodeOverloaded marks a request shed by server admission control: the
	// worker pool and its wait queue were full, so the request was never
	// executed and may safely run elsewhere.
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded marks a request whose latency budget (see
	// DeadlineContext) expired before the server could execute it: the work
	// was shed without running, because the client has already given up on
	// the reply. Like CodeOverloaded the connection is healthy.
	CodeDeadlineExceeded = "deadline-exceeded"
)

// Message is the protocol envelope. String fields (Service, OpType, Err)
// must be valid UTF-8: the JSON encoding replaces invalid sequences with
// U+FFFD, so they would not survive a round trip. Payload is arbitrary
// binary data (base64 on the wire).
type Message struct {
	Type MsgType `json:"type"`
	// ID names the stream this frame belongs to. Concurrent requests are
	// multiplexed over one connection with distinct IDs; responses may
	// arrive in any order and are matched back to callers by ID, and a
	// MsgCancel carries the ID of the request it abandons.
	ID      uint64 `json:"id"`
	Service string `json:"service,omitempty"`
	OpType  string `json:"optype,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	// Err carries a server-side error string on responses.
	Err string `json:"err,omitempty"`
	// Code classifies machine-readable response failures (see the Code*
	// constants); empty on success and on plain application errors.
	Code string `json:"code,omitempty"`
	// Usage reports server resource consumption for the RPC, which the
	// client forwards to its remote proxy monitors via AddUsage.
	Usage *UsageReport `json:"usage,omitempty"`
	// Status carries a server resource snapshot on status replies.
	Status *ServerStatus `json:"status,omitempty"`
	// Trace propagates the client's trace context on requests; the server
	// echoes it on the response so spans can be stitched.
	Trace *TraceContext `json:"trace,omitempty"`
	// Deadline propagates the operation's remaining latency budget on
	// requests so servers can shed work the client has already abandoned.
	Deadline *DeadlineContext `json:"deadline,omitempty"`
	// Spans carries the server-side span records of a traced request on the
	// response, as offsets from the server's receipt of the request.
	Spans []SpanRecord `json:"spans,omitempty"`
}

// TraceContext identifies the client-side trace (and the span within it)
// that a request executes under. Servers treat it as opaque: they echo it
// back and emit SpanRecords for the work done on its behalf.
type TraceContext struct {
	// TraceID is the client's operation instance identifier.
	TraceID uint64 `json:"traceId"`
	// SpanID is the client-side rpc span the server's spans nest under.
	SpanID uint64 `json:"spanId"`
}

// DeadlineContext carries an operation's remaining latency budget, in the
// style of gRPC's grpc-timeout header: a relative duration rather than an
// absolute timestamp, so it survives unsynchronized clocks. Each hop
// restates the budget left at transmission time; the receiver measures
// expiry against its own clock from the moment of receipt.
type DeadlineContext struct {
	// BudgetMillis is the whole operation's remaining budget in
	// milliseconds when the message was sent. Non-positive budgets are
	// already expired.
	BudgetMillis int64 `json:"budgetMillis"`
}

// Budget returns the remaining budget as a duration.
func (d *DeadlineContext) Budget() time.Duration {
	return time.Duration(d.BudgetMillis) * time.Millisecond
}

// NewDeadlineContext converts a remaining budget into wire form, rounding
// up so sub-millisecond budgets do not encode as already expired.
func NewDeadlineContext(remaining time.Duration) *DeadlineContext {
	ms := remaining.Milliseconds()
	if remaining > 0 && remaining%time.Millisecond != 0 {
		ms++
	}
	return &DeadlineContext{BudgetMillis: ms}
}

// SpanRecord is one server-side span, expressed relative to the server's
// receipt of the request so the client can rebase it onto its own timeline
// without synchronized clocks.
type SpanRecord struct {
	Name string `json:"name"`
	// StartOffsetNs is the span's start, in nanoseconds after the server
	// read the request off the wire.
	StartOffsetNs int64 `json:"startOffsetNs"`
	// DurationNs is the span's length in nanoseconds.
	DurationNs int64 `json:"durationNs"`
}

// UsageReport describes the resources one RPC consumed on a server.
type UsageReport struct {
	CPUMegacycles float64      `json:"cpuMegacycles"`
	Files         []FileUsage  `json:"files,omitempty"`
	Extra         []NamedValue `json:"extra,omitempty"`
}

// FileUsage records one file accessed during an RPC.
type FileUsage struct {
	Path      string `json:"path"`
	SizeBytes int64  `json:"sizeBytes"`
	// FetchedBytes is how much had to be fetched from file servers.
	FetchedBytes int64 `json:"fetchedBytes,omitempty"`
}

// NamedValue is an extensible resource measurement.
type NamedValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// ServerStatus is the resource snapshot a Spectra server publishes; clients
// poll it periodically and feed it to the remote proxy monitors (§3.3.5).
type ServerStatus struct {
	Name string `json:"name"`
	// SpeedMHz is the server CPU clock.
	SpeedMHz float64 `json:"speedMHz"`
	// LoadFraction is the fraction of CPU recently used by other work.
	LoadFraction float64 `json:"loadFraction"`
	// AvailMHz is the predicted megacycles/second for a new operation.
	AvailMHz float64 `json:"availMHz"`
	// CachedFiles lists Coda files cached at the server.
	CachedFiles []string `json:"cachedFiles,omitempty"`
	// FetchRateBps estimates the server's fetch rate from file servers.
	FetchRateBps float64 `json:"fetchRateBps"`
	// Services lists the service names this server can execute.
	Services []string `json:"services,omitempty"`
}

// WorkRequestBytes is the fixed encoded size of a WorkRequest.
const WorkRequestBytes = 9

// WorkRequest is the payload of the built-in "spectra.work" benchmark
// service: a CPU demand in megacycles, optionally marked floating-point.
// spectrad hosts the service and spectractl exercises it; both sides share
// this encoding instead of hand-rolling the framing.
type WorkRequest struct {
	Megacycles    uint64
	FloatingPoint bool
}

// Encode serializes the request: eight big-endian bytes of megacycles plus
// a floating-point flag byte.
func (w WorkRequest) Encode() []byte {
	buf := make([]byte, WorkRequestBytes)
	binary.BigEndian.PutUint64(buf, w.Megacycles)
	if w.FloatingPoint {
		buf[8] = 1
	}
	return buf
}

// DecodeWorkRequest parses an encoded work request. For compatibility with
// old clients the flag byte may be absent.
func DecodeWorkRequest(p []byte) (WorkRequest, error) {
	if len(p) < 8 {
		return WorkRequest{}, fmt.Errorf("wire: work request needs 8-byte megacycle header, got %d bytes", len(p))
	}
	w := WorkRequest{Megacycles: binary.BigEndian.Uint64(p)}
	if len(p) > 8 && p[8] == 1 {
		w.FloatingPoint = true
	}
	return w, nil
}

// WriteMessage frames and writes a message, returning the bytes put on the
// wire (including the length prefix).
func WriteMessage(w io.Writer, m *Message) (int, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return 0, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxMessageBytes {
		return 0, ErrMessageTooLarge
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	n, err := w.Write(buf)
	if err != nil {
		return n, fmt.Errorf("wire: write: %w", err)
	}
	return n, nil
}

// ReadMessage reads one framed message, returning it and the bytes
// consumed from the wire.
func ReadMessage(r io.Reader) (*Message, int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wire: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxMessageBytes {
		return nil, 4, ErrMessageTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 4, fmt.Errorf("wire: read body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, 4 + int(n), fmt.Errorf("wire: unmarshal: %w", err)
	}
	return &m, 4 + int(n), nil
}
