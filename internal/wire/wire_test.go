package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type:    MsgRequest,
		ID:      7,
		Service: "speech",
		OpType:  "recognize",
		Payload: []byte("hello"),
		Usage: &UsageReport{
			CPUMegacycles: 123.5,
			Files:         []FileUsage{{Path: "/coda/lm", SizeBytes: 9, FetchedBytes: 9}},
			Extra:         []NamedValue{{Name: "rpcs", Value: 2}},
		},
	}
	wrote, err := WriteMessage(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	out, read, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != read {
		t.Fatalf("wrote %d bytes but read %d", wrote, read)
	}
	if out.Type != in.Type || out.ID != in.ID || out.Service != in.Service ||
		out.OpType != in.OpType || string(out.Payload) != "hello" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if out.Usage == nil || out.Usage.CPUMegacycles != 123.5 || len(out.Usage.Files) != 1 {
		t.Fatalf("usage mismatch: %+v", out.Usage)
	}
}

func TestReadMessageEOF(t *testing.T) {
	var empty bytes.Buffer
	if _, _, err := ReadMessage(&empty); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReadMessageTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], 100)
	buf.Write(lenBuf[:])
	buf.WriteString("short")
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("truncated body must error")
	}
}

func TestReadMessageTooLarge(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxMessageBytes+1)
	buf.Write(lenBuf[:])
	if _, _, err := ReadMessage(&buf); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("want ErrMessageTooLarge, got %v", err)
	}
}

func TestReadMessageBadJSON(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], 3)
	buf.Write(lenBuf[:])
	buf.WriteString("{{{")
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestDeadlineContextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type:     MsgRequest,
		ID:       11,
		Service:  "speech",
		Deadline: NewDeadlineContext(250 * time.Millisecond),
	}
	if _, err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, _, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Deadline == nil || out.Deadline.BudgetMillis != 250 {
		t.Fatalf("deadline = %+v, want 250ms budget", out.Deadline)
	}
	if got := out.Deadline.Budget(); got != 250*time.Millisecond {
		t.Fatalf("Budget() = %v, want 250ms", got)
	}
}

func TestNewDeadlineContextRounding(t *testing.T) {
	tests := []struct {
		give time.Duration
		want int64
	}{
		{250 * time.Millisecond, 250},
		{100*time.Millisecond + time.Microsecond, 101}, // round up, not down to expired-adjacent
		{500 * time.Microsecond, 1},                    // sub-millisecond budgets stay alive
		{0, 0},
		{-3 * time.Millisecond, -3},
	}
	for _, tt := range tests {
		if got := NewDeadlineContext(tt.give).BudgetMillis; got != tt.want {
			t.Errorf("NewDeadlineContext(%v).BudgetMillis = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	tests := []struct {
		give MsgType
		want string
	}{
		{MsgRequest, "request"},
		{MsgResponse, "response"},
		{MsgStatus, "status"},
		{MsgStatusReply, "status-reply"},
		{MsgPing, "ping"},
		{MsgPong, "pong"},
		{MsgType(42), "MsgType(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", uint8(tt.give), got, tt.want)
		}
	}
}

func TestStatusRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type: MsgStatusReply,
		ID:   3,
		Status: &ServerStatus{
			Name:         "serverB",
			SpeedMHz:     933,
			LoadFraction: 0.25,
			AvailMHz:     700,
			CachedFiles:  []string{"/coda/a"},
			FetchRateBps: 125000,
			Services:     []string{"latex"},
		},
	}
	if _, err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, _, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status == nil || out.Status.Name != "serverB" || out.Status.SpeedMHz != 933 {
		t.Fatalf("status mismatch: %+v", out.Status)
	}
}

// Property: arbitrary payloads survive a frame round trip byte-for-byte.
func TestPayloadRoundTripProperty(t *testing.T) {
	f := func(payload []byte, id uint64, service string) bool {
		var buf bytes.Buffer
		in := &Message{Type: MsgRequest, ID: id, Service: service, Payload: payload}
		if _, err := WriteMessage(&buf, in); err != nil {
			return false
		}
		out, _, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		return out.ID == id && out.Service == service && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleMessagesOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(1); i <= 5; i++ {
		if _, err := WriteMessage(&buf, &Message{Type: MsgPing, ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 5; i++ {
		m, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.ID != i {
			t.Fatalf("message %d has ID %d", i, m.ID)
		}
	}
}
