package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// TestTraceContextRoundTrip checks that the trace-context field and
// server-side span records survive the frame encoding, and that their
// absence costs nothing on the wire.
func TestTraceContextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type:    MsgRequest,
		ID:      9,
		Service: "svc",
		OpType:  "run",
		Trace:   &TraceContext{TraceID: 42, SpanID: 3},
	}
	if _, err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, _, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || *out.Trace != *in.Trace {
		t.Fatalf("trace context = %+v, want %+v", out.Trace, in.Trace)
	}

	reply := &Message{
		Type:  MsgResponse,
		ID:    9,
		Trace: &TraceContext{TraceID: 42, SpanID: 3},
		Spans: []SpanRecord{
			{Name: "server.queue", StartOffsetNs: 0, DurationNs: 100},
			{Name: "server.exec", StartOffsetNs: 100, DurationNs: 5000},
			{Name: "server.respond", StartOffsetNs: 5100, DurationNs: 200},
		},
	}
	buf.Reset()
	if _, err := WriteMessage(&buf, reply); err != nil {
		t.Fatal(err)
	}
	out, _, err = ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Spans, reply.Spans) {
		t.Fatalf("spans = %+v, want %+v", out.Spans, reply.Spans)
	}

	// Untraced messages must not carry the fields at all (omitempty), so
	// tracing costs nothing when off.
	buf.Reset()
	if _, err := WriteMessage(&buf, &Message{Type: MsgRequest, ID: 1, Service: "svc"}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("trace")) || bytes.Contains(buf.Bytes(), []byte("spans")) {
		t.Fatalf("untraced frame mentions trace fields: %s", buf.Bytes())
	}
}

func TestWorkRequestRoundTrip(t *testing.T) {
	for _, w := range []WorkRequest{
		{Megacycles: 0},
		{Megacycles: 500},
		{Megacycles: 1 << 40, FloatingPoint: true},
	} {
		enc := w.Encode()
		if len(enc) != WorkRequestBytes {
			t.Fatalf("encoded size = %d, want %d", len(enc), WorkRequestBytes)
		}
		got, err := DecodeWorkRequest(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("round trip = %+v, want %+v", got, w)
		}
	}
	// Legacy 8-byte form (no flag byte) decodes as integer work.
	got, err := DecodeWorkRequest(WorkRequest{Megacycles: 77}.Encode()[:8])
	if err != nil {
		t.Fatal(err)
	}
	if got.Megacycles != 77 || got.FloatingPoint {
		t.Fatalf("legacy decode = %+v", got)
	}
	if _, err := DecodeWorkRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
}
