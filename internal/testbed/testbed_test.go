package testbed

import (
	"testing"

	"spectra/internal/coda"
)

func TestSpeechTestbed(t *testing.T) {
	tb, err := NewSpeech(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Itsy.SpeedMHz() != 206 || tb.T20.SpeedMHz() != 700 {
		t.Fatalf("machines = %v/%v MHz", tb.Itsy.SpeedMHz(), tb.T20.SpeedMHz())
	}
	if tb.Itsy.FPPenalty() <= 1 {
		t.Fatal("Itsy must have a floating-point emulation penalty")
	}
	if tb.Serial.BandwidthBps() != SerialBps {
		t.Fatalf("serial bw = %v", tb.Serial.BandwidthBps())
	}
	node, link, ok := tb.Setup.Env.Server("t20")
	if !ok || node == nil || link != tb.Serial {
		t.Fatal("t20 server wiring wrong")
	}
	// The T20 fetches from file servers over its LAN, not the serial line.
	if node.FetchRateBps() <= float64(SerialBps) {
		t.Fatalf("t20 fetch rate = %v, want LAN-class", node.FetchRateBps())
	}
	if got := tb.Setup.Env.ServerNames(); len(got) != 1 || got[0] != "t20" {
		t.Fatalf("servers = %v", got)
	}
}

func TestLaptopTestbed(t *testing.T) {
	tb, err := NewLaptop(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.X560.SpeedMHz() != 233 || tb.ServerA.SpeedMHz() != 400 || tb.ServerB.SpeedMHz() != 933 {
		t.Fatal("machine speeds wrong")
	}
	// The client is weakly connected: its writes buffer.
	if tb.Setup.Env.Host().Coda().Mode() != coda.Weak {
		t.Fatal("laptop client should be weakly connected")
	}
	// The shared wireless medium halves the file-server path's bandwidth.
	if tb.WirelessFS.EffectiveBandwidthBps() >= float64(WirelessBps) {
		t.Fatalf("fs wireless effective bw = %v, want contended", tb.WirelessFS.EffectiveBandwidthBps())
	}
	names := tb.Setup.Env.ServerNames()
	if len(names) != 2 || names[0] != "serverA" || names[1] != "serverB" {
		t.Fatalf("servers = %v", names)
	}
	// Servers fetch over wired LAN.
	for _, name := range names {
		node, _, _ := tb.Setup.Env.Server(name)
		if node.FetchRateBps() != LANBps {
			t.Fatalf("%s fetch rate = %v, want %v", name, node.FetchRateBps(), LANBps)
		}
	}
}

func TestTestbedOptionsPassThrough(t *testing.T) {
	tb, err := NewSpeech(Options{UsageLogDir: t.TempDir(), Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Setup.Client == nil {
		t.Fatal("client missing")
	}
}
