// Package testbed assembles the two hardware configurations of the paper's
// evaluation as simulated Spectra deployments:
//
//   - the speech testbed (§4.1): an Itsy v2.2 pocket computer client and an
//     IBM T20 compute server joined by a serial link;
//   - the laptop testbed (§4.2-4.3): an IBM 560X client and two compute
//     servers (A: 400 MHz P-II, B: 933 MHz P-III) on a shared 2 Mb/s
//     wireless network, with wired file servers.
package testbed

import (
	"time"

	"spectra/internal/coda"
	"spectra/internal/core"
	"spectra/internal/obs"
	"spectra/internal/sim"
	"spectra/internal/simnet"
	"spectra/internal/solver"
)

// Link calibration shared by the testbeds.
const (
	// SerialBps is the Itsy-T20 serial line payload rate (115.2 kb/s).
	SerialBps = 14_400
	// WirelessBps is the shared 2 Mb/s wireless network's effective rate.
	WirelessBps = 160_000
	// LANBps is the wired path from compute servers to file servers.
	LANBps = 1_250_000
)

// Options tunes testbed construction.
type Options struct {
	// UsageLogDir enables persistent usage logs when non-empty.
	UsageLogDir string
	// Models passes model ablation switches through.
	Models core.ModelOptions
	// Solver tunes the heuristic search.
	Solver solver.Options
	// Exhaustive replaces the heuristic solver with the oracle.
	Exhaustive bool
	// Failover and Health tune transparent recovery and server health
	// tracking; zero values enable both with defaults.
	Failover core.FailoverOptions
	Health   core.HealthOptions
	// Obs enables metrics, decision traces, and prediction-accuracy
	// accounting; nil disables observability.
	Obs *obs.Observer
	// Cache tunes the placement-decision cache; the zero value disables it.
	Cache core.CacheOptions
	// SnapshotTTL caches the decision snapshot; 0 (the default) disables
	// caching for deterministic replays. Benchmarks opt in.
	SnapshotTTL time.Duration
	// OverheadClock times decision overheads; nil selects the system clock.
	OverheadClock sim.Clock
}

// Speech is the assembled speech-recognition testbed.
type Speech struct {
	Setup *core.SimSetup
	// Itsy is the client machine; T20 the compute server.
	Itsy *sim.Machine
	T20  *sim.Machine
	// Serial is the client-server link; FSSerial the client's path to the
	// file servers (which the partition scenario leaves up).
	Serial   *simnet.Link
	FSSerial *simnet.Link
}

// NewSpeech builds the Itsy + T20 testbed.
func NewSpeech(opts Options) (*Speech, error) {
	itsy := sim.NewItsy()
	t20 := sim.NewT20()
	serial := simnet.NewSerialLink()
	fsSerial := simnet.NewLink(simnet.LinkConfig{
		Name:         "fs-serial",
		Latency:      5 * time.Millisecond,
		BandwidthBps: SerialBps,
	})
	t20LAN := simnet.NewLink(simnet.LinkConfig{
		Name:         "t20-lan",
		Latency:      time.Millisecond,
		BandwidthBps: LANBps,
	})
	setup, err := core.NewSimSetup(core.SimOptions{
		Host:       itsy,
		HostFSLink: fsSerial,
		Servers: []core.SimServer{
			{Name: "t20", Machine: t20, Link: serial, FSLink: t20LAN},
		},
		UsageLogDir:   opts.UsageLogDir,
		Models:        opts.Models,
		Solver:        opts.Solver,
		Exhaustive:    opts.Exhaustive,
		Failover:      opts.Failover,
		Health:        opts.Health,
		Obs:           opts.Obs,
		Cache:         opts.Cache,
		SnapshotTTL:   opts.SnapshotTTL,
		OverheadClock: opts.OverheadClock,
	})
	if err != nil {
		return nil, err
	}
	return &Speech{
		Setup:    setup,
		Itsy:     itsy,
		T20:      t20,
		Serial:   serial,
		FSSerial: fsSerial,
	}, nil
}

// Laptop is the assembled document-preparation / translation testbed.
type Laptop struct {
	Setup *core.SimSetup
	// X560 is the client; ServerA and ServerB the compute servers.
	X560    *sim.Machine
	ServerA *sim.Machine
	ServerB *sim.Machine
	// Wireless links carry client traffic; WirelessFS is the client's path
	// to the file servers over the same shared medium.
	WirelessA  *simnet.Link
	WirelessB  *simnet.Link
	WirelessFS *simnet.Link
}

// NewLaptop builds the 560X + servers A/B testbed. The client is weakly
// connected (wireless), so its file modifications buffer in Coda until
// Spectra forces reintegration; the wired servers are strongly connected.
func NewLaptop(opts Options) (*Laptop, error) {
	x560 := sim.New560X()
	serverA := sim.NewServerA()
	serverB := sim.NewServerB()

	wireless := func(name string) *simnet.Link {
		return simnet.NewLink(simnet.LinkConfig{
			Name:         name,
			Latency:      8 * time.Millisecond,
			BandwidthBps: WirelessBps,
		})
	}
	lan := func(name string) *simnet.Link {
		return simnet.NewLink(simnet.LinkConfig{
			Name:         name,
			Latency:      time.Millisecond,
			BandwidthBps: LANBps,
		})
	}
	wa, wb, wfs := wireless("wireless-a"), wireless("wireless-b"), wireless("wireless-fs")
	// The wireless medium is shared (paper: "a shared 2 Mb/s wireless
	// network"); file-server traffic competes with the compute-server
	// paths, halving the effective reintegration and fetch rate.
	wfs.SetContention(0.5)

	setup, err := core.NewSimSetup(core.SimOptions{
		Host:       x560,
		HostFSLink: wfs,
		Servers: []core.SimServer{
			{Name: "serverA", Machine: serverA, Link: wa, FSLink: lan("lan-a")},
			{Name: "serverB", Machine: serverB, Link: wb, FSLink: lan("lan-b")},
		},
		UsageLogDir:   opts.UsageLogDir,
		Models:        opts.Models,
		Solver:        opts.Solver,
		Exhaustive:    opts.Exhaustive,
		Failover:      opts.Failover,
		Health:        opts.Health,
		Obs:           opts.Obs,
		Cache:         opts.Cache,
		SnapshotTTL:   opts.SnapshotTTL,
		OverheadClock: opts.OverheadClock,
	})
	if err != nil {
		return nil, err
	}
	// The wireless client buffers writes; Spectra reintegrates on demand.
	setup.Env.Host().Coda().SetMode(coda.Weak)

	return &Laptop{
		Setup:      setup,
		X560:       x560,
		ServerA:    serverA,
		ServerB:    serverB,
		WirelessA:  wa,
		WirelessB:  wb,
		WirelessFS: wfs,
	}, nil
}
