package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// JSONLSinkOptions tunes the flight recorder.
type JSONLSinkOptions struct {
	// MaxBytes rotates the file when it would exceed this size; <= 0
	// selects 8 MiB.
	MaxBytes int64
	// MaxFiles bounds rotated files kept next to the live one (path.1 is
	// the newest rotation); <= 0 selects 3.
	MaxFiles int
}

func (o JSONLSinkOptions) maxBytes() int64 {
	if o.MaxBytes <= 0 {
		return 8 << 20
	}
	return o.MaxBytes
}

func (o JSONLSinkOptions) maxFiles() int {
	if o.MaxFiles <= 0 {
		return 3
	}
	return o.MaxFiles
}

// JSONLSink is a flight recorder: a TraceSink that appends each completed
// DecisionTrace as one JSON line to a file, rotating by size. Emit never
// blocks on anything but the write itself and never fails the caller:
// write and marshal errors count traces as dropped instead.
type JSONLSink struct {
	mu   sync.Mutex
	path string
	opts JSONLSinkOptions

	f      *os.File
	size   int64
	closed bool

	emitted int64
	dropped int64
	// mDropped, when attached, mirrors the dropped count as a metric.
	mDropped *Counter
}

// NewJSONLSink opens (appending) the flight-recorder file at path.
func NewJSONLSink(path string, opts JSONLSinkOptions) (*JSONLSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open flight recorder: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: stat flight recorder: %w", err)
	}
	return &JSONLSink{path: path, opts: opts, f: f, size: st.Size()}, nil
}

// AttachMetrics mirrors the sink's dropped-trace count into the registry
// (MTracesDropped). A nil registry detaches.
func (s *JSONLSink) AttachMetrics(reg *Registry) {
	s.mu.Lock()
	s.mDropped = reg.Counter(MTracesDropped)
	s.mu.Unlock()
}

// Path returns the live file's path.
func (s *JSONLSink) Path() string { return s.path }

// Emit implements TraceSink.
func (s *JSONLSink) Emit(t *DecisionTrace) {
	if t == nil {
		return
	}
	line, err := json.Marshal(t)
	if err != nil {
		s.drop(1)
		return
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.f == nil {
		s.dropLocked(1)
		return
	}
	if s.size+int64(len(line)) > s.opts.maxBytes() && s.size > 0 {
		if err := s.rotateLocked(); err != nil {
			s.dropLocked(1)
			return
		}
	}
	n, err := s.f.Write(line)
	s.size += int64(n)
	if err != nil {
		s.dropLocked(1)
		return
	}
	s.emitted++
}

// rotateLocked shifts path.(i) to path.(i+1), dropping the oldest, then
// moves the live file to path.1 and starts a fresh one.
func (s *JSONLSink) rotateLocked() error {
	s.f.Close()
	s.f = nil
	maxFiles := s.opts.maxFiles()
	os.Remove(fmt.Sprintf("%s.%d", s.path, maxFiles))
	for i := maxFiles - 1; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", s.path, i), fmt.Sprintf("%s.%d", s.path, i+1))
	}
	if err := os.Rename(s.path, s.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	s.f = f
	s.size = 0
	return nil
}

func (s *JSONLSink) drop(n int64) {
	s.mu.Lock()
	s.dropLocked(n)
	s.mu.Unlock()
}

func (s *JSONLSink) dropLocked(n int64) {
	s.dropped += n
	s.mDropped.Add(n)
}

// Emitted counts traces successfully written.
func (s *JSONLSink) Emitted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emitted
}

// Dropped counts traces lost to marshal or write failures (or emission
// after Close).
func (s *JSONLSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Flush forces buffered data to stable storage.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close flushes and closes the file; later Emits count as dropped.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// ReadTraceFile loads a flight-recorder JSONL file. Unparsable lines — a
// process may die mid-write — are skipped and counted, not fatal.
func ReadTraceFile(path string) (traces []*DecisionTrace, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var t DecisionTrace
		if json.Unmarshal([]byte(line), &t) != nil {
			skipped++
			continue
		}
		traces = append(traces, &t)
	}
	if err := sc.Err(); err != nil {
		return traces, skipped, err
	}
	return traces, skipped, nil
}
