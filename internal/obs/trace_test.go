package obs

import (
	"math"
	"testing"
)

func TestRelativeError(t *testing.T) {
	cases := []struct {
		p, a, want float64
	}{
		{0, 0, 0},
		{10, 10, 0},
		{10, 0, 1},
		{0, 10, 1},
		{5, 10, 0.5},
		{10, 5, 0.5},
		{-4, 4, 2}, // opposite signs exceed 1 by design
	}
	for _, c := range cases {
		if got := RelativeError(c.p, c.a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelativeError(%v, %v) = %v, want %v", c.p, c.a, got, c.want)
		}
	}
}

func TestMemorySinkUnbounded(t *testing.T) {
	s := NewMemorySink(0)
	for i := 0; i < 5; i++ {
		s.Emit(&DecisionTrace{OpID: uint64(i)})
	}
	s.Emit(nil) // ignored
	if s.Len() != 5 {
		t.Fatalf("len = %d, want 5", s.Len())
	}
	traces := s.Traces()
	if traces[0].OpID != 0 || traces[4].OpID != 4 {
		t.Fatal("traces not in emission order")
	}
}

func TestMemorySinkCapKeepsNewest(t *testing.T) {
	s := NewMemorySink(3)
	for i := 0; i < 10; i++ {
		s.Emit(&DecisionTrace{OpID: uint64(i)})
	}
	traces := s.Traces()
	if len(traces) != 3 {
		t.Fatalf("len = %d, want 3", len(traces))
	}
	for i, want := range []uint64{7, 8, 9} {
		if traces[i].OpID != want {
			t.Fatalf("traces[%d].OpID = %d, want %d", i, traces[i].OpID, want)
		}
	}
}

func TestAccuracyTracker(t *testing.T) {
	a := NewAccuracyTracker(1) // no decay: plain mean
	a.Observe("speech", ResCPULocal, 0.2)
	a.Observe("speech", ResCPULocal, 0.4)
	a.Observe("speech", ResNetBytes, 0.1)
	// Below AccuracyMinSamples the mean is reported but not ok: one or two
	// noisy samples must not drive invalidation decisions.
	if mean, n, ok := a.RelativeError("speech", ResCPULocal); ok || n != 2 || math.Abs(mean-0.3) > 1e-12 {
		t.Fatalf("RelativeError = (%v, %d, %v), want (0.3, 2, false) below min samples", mean, n, ok)
	}
	a.Observe("speech", ResCPULocal, 0.3)
	mean, n, ok := a.RelativeError("speech", ResCPULocal)
	if !ok || n != 3 || math.Abs(mean-0.3) > 1e-12 {
		t.Fatalf("RelativeError = (%v, %d, %v), want (0.3, 3, true)", mean, n, ok)
	}
	if _, _, ok := a.RelativeError("speech", ResEnergy); ok {
		t.Fatal("untracked pair should report ok=false")
	}
	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	if snap[0].Resource != ResCPULocal || snap[1].Resource != ResNetBytes {
		t.Fatal("snapshot not sorted by resource")
	}

	var nilTracker *AccuracyTracker
	nilTracker.Observe("x", "y", 1)
	if _, _, ok := nilTracker.RelativeError("x", "y"); ok {
		t.Fatal("nil tracker must report ok=false")
	}
	if nilTracker.Snapshot() != nil {
		t.Fatal("nil tracker snapshot must be nil")
	}
}

func TestObserverPredictionErrorGauges(t *testing.T) {
	o := NewObserver()
	for i := 0; i < AccuracyMinSamples; i++ {
		o.ObservePredictionError("janus", map[string]float64{ResCPULocal: 0.25})
	}
	g := o.Registry.Gauge(RelErrPrefix + "janus." + ResCPULocal)
	if g.Value() != 0.25 {
		t.Fatalf("relerr gauge = %v, want 0.25", g.Value())
	}
	mean, n, ok := o.Accuracy.RelativeError("janus", ResCPULocal)
	if !ok || n != AccuracyMinSamples || mean != 0.25 {
		t.Fatalf("accuracy = (%v, %d, %v), want (0.25, %d, true)", mean, n, ok, AccuracyMinSamples)
	}
}

// TestRelativeErrorMinSamples pins the guard the decision cache's
// accuracy-regression invalidation relies on: ok stays false until
// AccuracyMinSamples observations, then flips with an unchanged mean.
func TestRelativeErrorMinSamples(t *testing.T) {
	a := NewAccuracyTracker(1)
	for i := 0; i < AccuracyMinSamples-1; i++ {
		a.Observe("op", ResLatency, 0.9) // one huge outlier, then another
		if _, _, ok := a.RelativeError("op", ResLatency); ok {
			t.Fatalf("ok after %d samples, want false below %d", i+1, AccuracyMinSamples)
		}
	}
	a.Observe("op", ResLatency, 0.9)
	if mean, n, ok := a.RelativeError("op", ResLatency); !ok || n != AccuracyMinSamples || math.Abs(mean-0.9) > 1e-12 {
		t.Fatalf("RelativeError = (%v, %d, %v), want (0.9, %d, true)", mean, n, ok, AccuracyMinSamples)
	}
}
