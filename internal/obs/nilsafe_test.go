package obs

import (
	"io"
	"net/http/httptest"
	"testing"
	"time"
)

// TestNilTimeSeriesRecorder locks in the fix for the methods the nilsafe
// analyzer caught unguarded: Observer.Timeline hands out a nil recorder
// when telemetry is disabled, and every read method used to panic on it.
func TestNilTimeSeriesRecorder(t *testing.T) {
	var r *TimeSeriesRecorder

	if seq := r.Record(time.Time{}, map[string]float64{"cpu": 1}); seq != 0 {
		t.Errorf("Record on nil = %d, want 0", seq)
	}
	if seq := r.RecordValue("cpu", time.Time{}, 1); seq != 0 {
		t.Errorf("RecordValue on nil = %d, want 0", seq)
	}
	if names := r.Names(); names != nil {
		t.Errorf("Names on nil = %v, want nil", names)
	}
	if pts := r.Series("cpu"); pts != nil {
		t.Errorf("Series on nil = %v, want nil", pts)
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("Snapshot on nil = %v, want empty", snap)
	}

	// Handler is nil-safe by delegation; serving a request proves it.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeseries", nil))
	if rec.Code != 200 {
		t.Errorf("Handler on nil: status = %d, want 200", rec.Code)
	}
}

// TestNilRegistryDelegation covers the methods annotated nil-safe by
// delegation rather than by a leading guard.
func TestNilRegistryDelegation(t *testing.T) {
	var r *Registry
	if err := r.WriteJSON(io.Discard); err != nil {
		t.Errorf("WriteJSON on nil: %v", err)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rec.Code != 200 {
		t.Errorf("Handler on nil: status = %d, want 200", rec.Code)
	}
	snap := r.Snapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Error("Snapshot on nil returned unallocated sections")
	}
}

// TestNilAccuracyTracker covers the delegation-guarded Observe alongside
// the directly guarded methods.
func TestNilAccuracyTracker(t *testing.T) {
	var a *AccuracyTracker
	if mean := a.Observe("op", "cpu", -0.25); mean != 0.25 {
		t.Errorf("Observe on nil = %v, want the |sample| 0.25", mean)
	}
	if _, _, ok := a.RelativeError("op", "cpu"); ok {
		t.Error("RelativeError on nil reported ok")
	}
	if snap := a.Snapshot(); snap != nil {
		t.Errorf("Snapshot on nil = %v, want nil", snap)
	}
}

// TestNilObserver covers the Observer methods, including the restructured
// Emit guard.
func TestNilObserver(t *testing.T) {
	var o *Observer
	if o.TraceOn() {
		t.Error("TraceOn on nil = true")
	}
	if tl := o.Timeline(); tl != nil {
		t.Errorf("Timeline on nil = %v, want nil", tl)
	}
	o.Emit(&DecisionTrace{})
	o.ObservePredictionError("op", map[string]float64{"cpu": 0.1})
	if h := o.AccuracyFor("op"); h != nil {
		t.Errorf("AccuracyFor on nil = %v, want nil", h)
	}
	if mux := o.DebugMux(); mux == nil {
		t.Error("DebugMux on nil = nil")
	}
}
