package obs

import (
	"sync"
	"time"
)

// Canonical span names. Client-side spans mark the phases of one operation
// (prediction, solver search, consistency enforcement, execution); the
// server-prefixed spans are emitted by the remote Spectra server and
// stitched under the rpc span that carried the request.
const (
	SpanPredict     = "predict"
	SpanSolve       = "solve"
	SpanReintegrate = "reintegrate"
	SpanRPC         = "rpc"
	SpanLocal       = "local"
	// SpanHedge marks a hedged backup RPC launched against the next-best
	// server while the primary was still in flight.
	SpanHedge = "rpc.hedge"

	SpanServerQueue   = "server.queue"
	SpanServerExec    = "server.exec"
	SpanServerRespond = "server.respond"
)

// Span is one timed phase of an operation. Spans form a tree through
// Parent (an index into the trace's span slice; -1 marks a root). Start and
// End are on the runtime clock — virtual time in simulations — while
// WallNanos records the real (wall-clock) duration, which is the honest
// cost of phases like prediction and solving that consume no virtual time.
type Span struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent"`
	Name   string `json:"name"`
	// Origin names the process that recorded the span: "" for the client,
	// the server name for spans shipped back across the RPC boundary.
	Origin string    `json:"origin,omitempty"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	// WallNanos is the span's wall-clock duration in nanoseconds; 0 when
	// the runtime clock is already wall time.
	WallNanos int64 `json:"wallNanos,omitempty"`
}

// Duration is the span's length on the runtime clock.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Cost is the span's effective duration for ranking: the runtime-clock
// duration, or the wall-clock duration when it is larger (phases that take
// zero virtual time still cost real time).
func (s Span) Cost() time.Duration {
	d := s.Duration()
	if w := time.Duration(s.WallNanos); w > d {
		return w
	}
	return d
}

// wallNow is the wall-clock source for WallNanos. Spans deliberately
// record honest wall-clock cost alongside runtime-clock timestamps — in a
// simulation the runtime clock stands still during prediction and solving,
// so the wall duration is the only true cost signal (see the Span doc) —
// making this obs's single sanctioned wall-clock read. Deterministic tests
// can stub it.
//
//lint:allow virtualclock spans record honest wall-clock cost even in sims
var wallNow = time.Now

// SpanRecorder accumulates the span tree of one in-flight operation. A nil
// recorder is a no-op on every method — the untraced path allocates and
// records nothing — so call sites need no guards. It is safe for concurrent
// use (parallel execution plans record branch spans concurrently).
//
//lint:nilsafe
type SpanRecorder struct {
	mu  sync.Mutex
	now func() time.Time

	spans []Span
	// wallStart remembers each open span's wall-clock start so EndSpan can
	// fill WallNanos.
	wallStart []time.Time
}

// NewSpanRecorder returns a recorder reading the runtime clock through now.
func NewSpanRecorder(now func() time.Time) *SpanRecorder {
	return &SpanRecorder{now: now}
}

// Start opens a span and returns its ID (-1 on a nil recorder). parent is
// the enclosing span's ID, or -1 for a root span.
func (r *SpanRecorder) Start(name string, parent int) int {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	id := len(r.spans)
	r.spans = append(r.spans, Span{
		ID:     id,
		Parent: parent,
		Name:   name,
		Start:  r.now(),
	})
	r.wallStart = append(r.wallStart, wallNow())
	r.mu.Unlock()
	return id
}

// EndSpan closes a span. Unknown IDs (including -1 from a nil-recorder
// Start) are ignored.
func (r *SpanRecorder) EndSpan(id int) {
	if r == nil || id < 0 {
		return
	}
	r.mu.Lock()
	if id < len(r.spans) {
		r.spans[id].End = r.now()
		r.spans[id].WallNanos = wallNow().Sub(r.wallStart[id]).Nanoseconds()
	}
	r.mu.Unlock()
}

// Attach grafts externally recorded spans (e.g. server-side spans returned
// across the RPC boundary) under parent, remapping their IDs and parents
// into this recorder's ID space. Children whose Parent is -1 become direct
// children of parent; internal parent links are preserved.
func (r *SpanRecorder) Attach(parent int, children []Span) {
	if r == nil || len(children) == 0 {
		return
	}
	r.mu.Lock()
	base := len(r.spans)
	for i, c := range children {
		c.ID = base + i
		if c.Parent < 0 {
			c.Parent = parent
		} else {
			c.Parent += base
		}
		r.spans = append(r.spans, c)
		r.wallStart = append(r.wallStart, time.Time{})
	}
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans, in creation order.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}
