// Package obs is Spectra's observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms) exported as JSON, a
// debug HTTP endpoint with pprof wiring, structured per-operation decision
// traces, and rolling predictor-accuracy accounting.
//
// The package is designed for near-zero cost when unused: every metric
// handle (*Counter, *Gauge, *Histogram) is safe to use as a nil pointer —
// operations on nil handles are no-ops — so instrumented code can hold nil
// handles and skip all bookkeeping with a single pointer test, without
// allocating or branching per metric.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; a nil *Counter is a no-op.
//
//lint:nilsafe
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can move in both directions. The zero value
// is ready to use; a nil *Gauge is a no-op.
//
//lint:nilsafe
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// Histogram accumulates observations into fixed, ascending upper-bound
// buckets plus an overflow bucket. A nil *Histogram is a no-op.
//
//lint:nilsafe
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is overflow
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// Bounds are copied; an empty slice yields a histogram that only tracks
// count and sum.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]uint64, len(b)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistogramBucket is one exported bucket: the cumulative count of samples
// at or below the upper bound.
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is the exported state of a histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot exports the histogram's current state with cumulative bucket
// counts (overflow is Count minus the last bucket's cumulative count).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		snap.Buckets = append(snap.Buckets, HistogramBucket{UpperBound: b, Count: cum})
	}
	return snap
}

// Registry is a concurrent, get-or-create collection of named metrics. A
// nil *Registry returns nil (no-op) handles, so instrumentation can be
// installed unconditionally and cost nothing when no registry is attached.
//
//lint:nilsafe
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. An existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.histograms[name] = h
	return h
}

// RegistrySnapshot is the exported state of every metric, the JSON shape
// served by the debug endpoint (expvar-style: one flat document).
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// emptyRegistrySnapshot returns a snapshot with all sections allocated, so
// consumers can index and range without nil checks.
func emptyRegistrySnapshot() RegistrySnapshot {
	return RegistrySnapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
}

// Snapshot exports the current value of every registered metric.
func (r *Registry) Snapshot() RegistrySnapshot {
	if r == nil {
		return emptyRegistrySnapshot()
	}
	snap := emptyRegistrySnapshot()
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.RUnlock()

	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		snap.Histograms[k] = v.Snapshot()
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
//
//lint:allow nilsafe nil-safe by delegation: Snapshot carries the guard
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry snapshot as JSON.
//
//lint:allow nilsafe nil-safe by delegation: the closure only calls WriteJSON
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// floatBits / bitsFloat convert through the raw representation so gauges
// can use a lock-free atomic word.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
