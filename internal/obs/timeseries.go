package obs

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultTimeSeriesCap bounds each series' retained points when the
// recorder is built with a non-positive capacity.
const DefaultTimeSeriesCap = 1024

// TimeSeriesPoint is one sampled value of a named resource series.
type TimeSeriesPoint struct {
	// Seq is the batch sequence number the point was recorded under;
	// points recorded by the same Record call share it, and decision
	// traces reference it via SnapshotSeq.
	Seq   uint64    `json:"seq"`
	When  time.Time `json:"when"`
	Value float64   `json:"value"`
}

// TimeSeriesRecorder retains a bounded ring of timestamped samples per
// resource series — the history behind /debug/timeseries. Writers are the
// decision path (every snapshot the solver consumes) and the background
// telemetry sampler; both are cheap: a mutex, a map lookup per series, and
// a ring slot overwrite once warm. A nil recorder records nothing and
// returns empty results — Observer.Timeline hands one out when telemetry
// is disabled, so every method must tolerate it.
//
//lint:nilsafe
type TimeSeriesRecorder struct {
	mu     sync.Mutex
	cap    int
	seq    uint64
	series map[string]*tsRing
}

// tsRing is one series' bounded history.
type tsRing struct {
	buf  []TimeSeriesPoint
	head int // next write position
	n    int // points stored
}

func (r *tsRing) push(p TimeSeriesPoint) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = p
		r.n++
		return
	}
	r.buf[r.head] = p
	r.head = (r.head + 1) % len(r.buf)
}

func (r *tsRing) points() []TimeSeriesPoint {
	out := make([]TimeSeriesPoint, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// NewTimeSeriesRecorder returns a recorder retaining at most capPerSeries
// points per series (DefaultTimeSeriesCap when <= 0).
func NewTimeSeriesRecorder(capPerSeries int) *TimeSeriesRecorder {
	if capPerSeries <= 0 {
		capPerSeries = DefaultTimeSeriesCap
	}
	return &TimeSeriesRecorder{
		cap:    capPerSeries,
		series: make(map[string]*tsRing),
	}
}

// Record appends one sample to every named series under a single batch
// sequence number, which it returns. Traces store the number so a decision
// can be lined up against the history that surrounds it.
func (r *TimeSeriesRecorder) Record(when time.Time, values map[string]float64) uint64 {
	if r == nil || len(values) == 0 {
		return 0
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	for name, v := range values {
		r.pushLocked(name, TimeSeriesPoint{Seq: seq, When: when, Value: v})
	}
	r.mu.Unlock()
	return seq
}

// RecordValue appends one sample to one series under its own batch number.
func (r *TimeSeriesRecorder) RecordValue(name string, when time.Time, v float64) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.pushLocked(name, TimeSeriesPoint{Seq: seq, When: when, Value: v})
	r.mu.Unlock()
	return seq
}

func (r *TimeSeriesRecorder) pushLocked(name string, p TimeSeriesPoint) {
	ring, ok := r.series[name]
	if !ok {
		ring = &tsRing{buf: make([]TimeSeriesPoint, r.cap)}
		r.series[name] = ring
	}
	ring.push(p)
}

// Names returns the recorded series names, sorted.
func (r *TimeSeriesRecorder) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.series))
	for name := range r.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Series returns one series' retained points, oldest first.
func (r *TimeSeriesRecorder) Series(name string) []TimeSeriesPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ring, ok := r.series[name]
	if !ok {
		return nil
	}
	return ring.points()
}

// Snapshot returns every series' retained points, oldest first.
func (r *TimeSeriesRecorder) Snapshot() map[string][]TimeSeriesPoint {
	if r == nil {
		return map[string][]TimeSeriesPoint{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]TimeSeriesPoint, len(r.series))
	for name, ring := range r.series {
		out[name] = ring.points()
	}
	return out
}

// Handler serves the recorder as JSON. Without parameters it returns every
// series; ?series=NAME restricts to one, and ?n=N keeps only each series'
// newest N points.
//
//lint:allow nilsafe nil-safe by delegation: the closure only calls Series and Snapshot
func (r *TimeSeriesRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		tail := func(pts []TimeSeriesPoint) []TimeSeriesPoint {
			if n > 0 && len(pts) > n {
				return pts[len(pts)-n:]
			}
			return pts
		}
		if name := req.URL.Query().Get("series"); name != "" {
			writeJSON(w, map[string][]TimeSeriesPoint{name: tail(r.Series(name))})
			return
		}
		snap := r.Snapshot()
		for name, pts := range snap {
			snap[name] = tail(pts)
		}
		writeJSON(w, snap)
	})
}
