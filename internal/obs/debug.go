package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux returns an HTTP mux exposing the registry and the Go
// profiler:
//
//	/debug/metrics     — registry snapshot as JSON
//	/debug/accuracy    — predictor-accuracy snapshot as JSON (when acc != nil)
//	/debug/pprof/...   — the standard net/http/pprof handlers
//
// Either argument may be nil; the corresponding routes are simply absent.
func NewDebugMux(reg *Registry, acc *AccuracyTracker) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/debug/metrics", reg.Handler())
	}
	if acc != nil {
		mux.HandleFunc("/debug/accuracy", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, acc.Snapshot())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug endpoint on addr (e.g. "127.0.0.1:0") and
// returns the bound address and a shutdown function. It is optional: tests
// and embedded deployments can mount NewDebugMux themselves.
func ServeDebug(addr string, reg *Registry, acc *AccuracyTracker) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(reg, acc)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
