package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewDebugMux returns an HTTP mux exposing the registry and the Go
// profiler:
//
//	/debug/metrics     — registry snapshot as JSON
//	/debug/accuracy    — predictor-accuracy snapshot as JSON (when acc != nil)
//	/debug/pprof/...   — the standard net/http/pprof handlers
//
// Either argument may be nil; the corresponding routes are simply absent.
func NewDebugMux(reg *Registry, acc *AccuracyTracker) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/debug/metrics", reg.Handler())
	}
	if acc != nil {
		mux.HandleFunc("/debug/accuracy", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, acc.Snapshot())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugMux returns the observer's full debug surface: everything
// NewDebugMux serves, plus
//
//	/debug/timeseries  — resource time-series history (when TimeSeries != nil)
//	/debug/traces      — retained decision traces (when Sink retains, i.e.
//	                     implements TraceStore); ?n=N tails the newest N and
//	                     ?op=NAME filters by operation
func (o *Observer) DebugMux() *http.ServeMux {
	if o == nil {
		return NewDebugMux(nil, nil)
	}
	mux := NewDebugMux(o.Registry, o.Accuracy)
	if o.TimeSeries != nil {
		mux.Handle("/debug/timeseries", o.TimeSeries.Handler())
	}
	if store, ok := o.Sink.(TraceStore); ok {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			traces := store.Traces()
			if op := req.URL.Query().Get("op"); op != "" {
				kept := traces[:0:0]
				for _, t := range traces {
					if t.Operation == op {
						kept = append(kept, t)
					}
				}
				traces = kept
			}
			if s := req.URL.Query().Get("n"); s != "" {
				if n, err := strconv.Atoi(s); err == nil && n > 0 && n < len(traces) {
					traces = traces[len(traces)-n:]
				}
			}
			if traces == nil {
				traces = []*DecisionTrace{}
			}
			writeJSON(w, traces)
		})
	}
	return mux
}

// ServeDebug starts the debug endpoint on addr (e.g. "127.0.0.1:0") and
// returns the bound address and a shutdown function. It is optional: tests
// and embedded deployments can mount NewDebugMux themselves.
func ServeDebug(addr string, reg *Registry, acc *AccuracyTracker) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(reg, acc)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// ServeDebug starts the observer's full debug surface (DebugMux) on addr
// and returns the bound address and a shutdown function.
//
//lint:allow nilsafe nil-safe by delegation: DebugMux carries the guard
func (o *Observer) ServeDebug(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: o.DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
