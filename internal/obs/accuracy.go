package obs

import (
	"sort"
	"sync"
)

// DefaultAccuracyDecay is the per-sample exponential decay of the rolling
// relative-error estimates, matching the demand models' recency weighting.
const DefaultAccuracyDecay = 0.95

// AccuracyMinSamples is how many observations RelativeError needs before it
// reports ok (mirroring core's latency-ring p95 guard): consumers that act
// on the rolling error — notably the decision cache's accuracy-regression
// invalidation — must not fire off one noisy sample.
const AccuracyMinSamples = 3

// AccuracyStat is the exported rolling accuracy of one (operation,
// resource) pair.
type AccuracyStat struct {
	// Operation and Resource identify the predictor stream.
	Operation string `json:"operation"`
	Resource  string `json:"resource"`
	// MeanRelativeError is the recency-weighted mean of the symmetric
	// relative error (see RelativeError), in [0, 1].
	MeanRelativeError float64 `json:"meanRelativeError"`
	// Samples counts observations absorbed.
	Samples int `json:"samples"`
}

// AccuracyTracker maintains rolling per-operation, per-resource relative
// prediction-error estimates, fed from decision traces at EndFidelityOp.
// It is safe for concurrent use; a nil tracker absorbs nothing and reports
// no statistics.
//
//lint:nilsafe
type AccuracyTracker struct {
	mu    sync.Mutex
	decay float64
	stats map[string]*accStat // key: op + "\x00" + resource
}

type accStat struct {
	op, resource string
	sum          float64 // decayed error sum
	weight       float64 // decayed sample count
	samples      int
}

// NewAccuracyTracker returns a tracker with an explicit decay in (0,1];
// out-of-range values select DefaultAccuracyDecay.
func NewAccuracyTracker(decay float64) *AccuracyTracker {
	if decay <= 0 || decay > 1 {
		decay = DefaultAccuracyDecay
	}
	return &AccuracyTracker{decay: decay, stats: make(map[string]*accStat)}
}

// Observe absorbs one relative-error sample for the operation and resource
// and returns the updated rolling mean.
//
//lint:allow nilsafe nil-safe by delegation: stat and observeStat both guard
func (a *AccuracyTracker) Observe(op, resource string, relErr float64) float64 {
	return a.observeStat(a.stat(op, resource), relErr)
}

// stat returns (creating if needed) the cell for one pair. Cells are stable
// once created, so callers may cache the pointer to skip the key
// construction and map lookup on later observations.
func (a *AccuracyTracker) stat(op, resource string) *accStat {
	if a == nil {
		return nil
	}
	key := op + "\x00" + resource
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.stats[key]
	if !ok {
		st = &accStat{op: op, resource: resource}
		a.stats[key] = st
	}
	return st
}

// observeStat folds one sample into a cell under the tracker lock and
// returns the updated rolling mean.
func (a *AccuracyTracker) observeStat(st *accStat, relErr float64) float64 {
	if relErr < 0 {
		relErr = -relErr
	}
	if a == nil || st == nil {
		return relErr
	}
	a.mu.Lock()
	st.sum = a.decay*st.sum + relErr
	st.weight = a.decay*st.weight + 1
	st.samples++
	mean := st.sum / st.weight
	a.mu.Unlock()
	return mean
}

// RelativeError returns the rolling mean relative error for the operation
// and resource. ok is false before AccuracyMinSamples observations have
// been absorbed — the mean and sample count are still reported so callers
// can display them, but they are too noisy to act on.
func (a *AccuracyTracker) RelativeError(op, resource string) (mean float64, samples int, ok bool) {
	if a == nil {
		return 0, 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st, found := a.stats[op+"\x00"+resource]
	if !found || st.weight == 0 {
		return 0, 0, false
	}
	return st.sum / st.weight, st.samples, st.samples >= AccuracyMinSamples
}

// OpAccuracy is a per-operation handle feeding relative-error samples to
// the tracker and the registry gauges without per-call allocation: the
// stat cell and gauge for each resource are resolved once and cached, so
// the End hot path costs one small-map lookup, one lock, and an atomic
// store per resource. A nil handle is a no-op.
//
//lint:nilsafe
type OpAccuracy struct {
	o  *Observer
	op string

	mu     sync.Mutex
	stats  map[string]*accStat
	gauges map[string]*Gauge
}

// AccuracyFor returns the error-feeding handle for one operation; nil (a
// no-op handle) when neither accuracy accounting nor metrics are enabled.
func (o *Observer) AccuracyFor(op string) *OpAccuracy {
	if o == nil || (o.Accuracy == nil && o.Registry == nil) {
		return nil
	}
	return &OpAccuracy{
		o:      o,
		op:     op,
		stats:  make(map[string]*accStat),
		gauges: make(map[string]*Gauge),
	}
}

// Observe absorbs one relative-error sample for a resource.
func (h *OpAccuracy) Observe(resource string, relErr float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	st, ok := h.stats[resource]
	if !ok {
		st = h.o.Accuracy.stat(h.op, resource)
		h.stats[resource] = st
	}
	g, ok := h.gauges[resource]
	if !ok {
		g = h.o.relErrGauge(h.op, resource)
		h.gauges[resource] = g
	}
	h.mu.Unlock()
	g.Set(h.o.Accuracy.observeStat(st, relErr))
}

// Snapshot exports every tracked pair, sorted by operation then resource
// for determinism.
func (a *AccuracyTracker) Snapshot() []AccuracyStat {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]AccuracyStat, 0, len(a.stats))
	for _, st := range a.stats {
		mean := 0.0
		if st.weight > 0 {
			mean = st.sum / st.weight
		}
		out = append(out, AccuracyStat{
			Operation:         st.op,
			Resource:          st.resource,
			MeanRelativeError: mean,
			Samples:           st.samples,
		})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Operation != out[j].Operation {
			return out[i].Operation < out[j].Operation
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}
