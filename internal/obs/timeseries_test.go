package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTimeSeriesRecordBatch(t *testing.T) {
	r := NewTimeSeriesRecorder(16)
	when := time.Unix(100, 0)
	seq := r.Record(when, map[string]float64{"a": 1, "b": 2})
	if seq != 1 {
		t.Fatalf("first batch seq = %d, want 1", seq)
	}
	seq = r.Record(when.Add(time.Second), map[string]float64{"a": 3})
	if seq != 2 {
		t.Fatalf("second batch seq = %d, want 2", seq)
	}
	if names := r.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v, want [a b]", names)
	}
	a := r.Series("a")
	if len(a) != 2 || a[0].Value != 1 || a[1].Value != 3 {
		t.Fatalf("series a = %+v", a)
	}
	// Points of one batch share the sequence number.
	b := r.Series("b")
	if len(b) != 1 || b[0].Seq != a[0].Seq {
		t.Fatalf("batch seq mismatch: a=%+v b=%+v", a, b)
	}
	if r.Series("missing") != nil {
		t.Fatal("unknown series should return nil")
	}
}

// TestTimeSeriesRingWrap fills a small ring past capacity and checks that
// only the newest points survive, oldest first.
func TestTimeSeriesRingWrap(t *testing.T) {
	r := NewTimeSeriesRecorder(4)
	when := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		r.RecordValue("x", when.Add(time.Duration(i)*time.Second), float64(i))
	}
	pts := r.Series("x")
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.Value != want {
			t.Errorf("point %d = %v, want %v", i, p.Value, want)
		}
	}
	if !pts[0].When.Before(pts[3].When) {
		t.Error("points not oldest-first after wrap")
	}
}

func TestTimeSeriesDefaultCap(t *testing.T) {
	r := NewTimeSeriesRecorder(0)
	when := time.Unix(0, 0)
	for i := 0; i < DefaultTimeSeriesCap+10; i++ {
		r.RecordValue("x", when, float64(i))
	}
	if got := len(r.Series("x")); got != DefaultTimeSeriesCap {
		t.Fatalf("retained %d, want default cap %d", got, DefaultTimeSeriesCap)
	}
}

func TestTimeSeriesHandler(t *testing.T) {
	r := NewTimeSeriesRecorder(8)
	when := time.Unix(50, 0)
	for i := 0; i < 6; i++ {
		r.Record(when.Add(time.Duration(i)*time.Second), map[string]float64{
			"cpu": float64(i), "net": float64(10 * i),
		})
	}
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	fetch := func(path string) map[string][]TimeSeriesPoint {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string][]TimeSeriesPoint
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	all := fetch("")
	if len(all) != 2 || len(all["cpu"]) != 6 {
		t.Fatalf("all = %d series, cpu = %d points", len(all), len(all["cpu"]))
	}
	one := fetch("?series=cpu&n=2")
	if len(one) != 1 || len(one["cpu"]) != 2 {
		t.Fatalf("filtered = %v", one)
	}
	if one["cpu"][1].Value != 5 {
		t.Fatalf("tail did not keep newest: %+v", one["cpu"])
	}
}
