package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testTrace(id uint64) *DecisionTrace {
	begin := time.Unix(int64(id), 0)
	return &DecisionTrace{
		OpID:      id,
		Operation: "op",
		Begin:     begin,
		End:       begin.Add(time.Second),
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	sink, err := NewJSONLSink(path, JSONLSinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		sink.Emit(testTrace(i))
	}
	if sink.Emitted() != 3 || sink.Dropped() != 0 {
		t.Fatalf("emitted=%d dropped=%d, want 3/0", sink.Emitted(), sink.Dropped())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	traces, skipped, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(traces) != 3 {
		t.Fatalf("read %d traces (%d skipped), want 3/0", len(traces), skipped)
	}
	if traces[0].OpID != 1 || traces[2].OpID != 3 {
		t.Fatalf("order lost: %d...%d", traces[0].OpID, traces[2].OpID)
	}
	// Appending survives reopen.
	sink2, err := NewJSONLSink(path, JSONLSinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sink2.Emit(testTrace(4))
	sink2.Close()
	traces, _, err = ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 {
		t.Fatalf("after reopen read %d traces, want 4", len(traces))
	}
}

func TestJSONLSinkRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	// Tiny limit: every trace line (~100 bytes) forces a rotation.
	sink, err := NewJSONLSink(path, JSONLSinkOptions{MaxBytes: 150, MaxFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		sink.Emit(testTrace(i))
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Emitted() != 6 {
		t.Fatalf("emitted = %d, want 6", sink.Emitted())
	}
	// Live file plus at most MaxFiles rotations; no path.3.
	for _, p := range []string{path, path + ".1", path + ".2"} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("expected %s to exist: %v", p, err)
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("rotation kept more than MaxFiles: %v", err)
	}
	// The newest trace is in the live file.
	traces, _, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 || traces[len(traces)-1].OpID != 6 {
		t.Fatalf("live file missing newest trace: %+v", traces)
	}
}

func TestJSONLSinkClosedDrops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	sink, err := NewJSONLSink(path, JSONLSinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	sink.AttachMetrics(reg)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sink.Emit(testTrace(1))
	if sink.Dropped() != 1 {
		t.Fatalf("dropped = %d after emit-on-closed, want 1", sink.Dropped())
	}
	if got := reg.Counter(MTracesDropped).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MTracesDropped, got)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestReadTraceFileSkipsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	content := `{"opId":1,"operation":"op","begin":"2002-07-02T00:00:00Z","end":"2002-07-02T00:00:01Z","snapshot":{"when":"2002-07-02T00:00:00Z"},"evaluated":null,"chosen":{"plan":"local","demand":{"localMegacycles":0,"remoteMegacycles":0,"netBytes":0,"rpcs":0,"latencySeconds":0,"energyJoules":0},"fidelityValue":0,"utility":0,"feasible":true},"candidates":0,"evaluations":0,"actual":{"localMegacycles":0,"remoteMegacycles":0,"bytesSent":0,"bytesReceived":0,"rpcs":0,"energyJoules":0,"energyValid":false,"elapsedSeconds":0,"files":0}}
not json at all
{"opId":2,"operation":"op","begin":"2002-07-02T00:00:02Z","end":"2002-07-02T00:00:03Z"
{"opId":3,"operation":"op"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	traces, skipped, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || skipped != 2 {
		t.Fatalf("read %d traces %d skipped, want 2/2", len(traces), skipped)
	}
	if traces[0].OpID != 1 || traces[1].OpID != 3 {
		t.Fatalf("wrong traces survived: %d, %d", traces[0].OpID, traces[1].OpID)
	}
}
