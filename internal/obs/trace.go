package obs

import (
	"sync"
	"time"
)

// Resource names used in demand breakdowns and prediction-error maps. They
// match the resource names of the demand models and usage logs.
const (
	ResCPULocal  = "cpu.local"
	ResCPURemote = "cpu.remote"
	ResNetBytes  = "net.bytes"
	ResNetRPCs   = "net.rpcs"
	ResLatency   = "latency"
	ResEnergy    = "energy"
)

// ResourceDemand is one alternative's predicted per-resource demand: the
// raw model outputs plus the derived latency and energy predictions.
type ResourceDemand struct {
	// LocalMegacycles / RemoteMegacycles are predicted CPU demand.
	LocalMegacycles  float64 `json:"localMegacycles"`
	RemoteMegacycles float64 `json:"remoteMegacycles"`
	// NetBytes is predicted client-server traffic; RPCs predicted exchange
	// count.
	NetBytes float64 `json:"netBytes"`
	RPCs     float64 `json:"rpcs"`
	// LatencySeconds / EnergyJoules are the derived execution-time and
	// client-energy predictions.
	LatencySeconds float64 `json:"latencySeconds"`
	EnergyJoules   float64 `json:"energyJoules"`
}

// EvaluatedAlternative records one solver-evaluated point of the decision
// space with its prediction and utility.
type EvaluatedAlternative struct {
	Server   string            `json:"server,omitempty"`
	Plan     string            `json:"plan"`
	Fidelity map[string]string `json:"fidelity,omitempty"`
	// Demand is the per-resource predicted demand.
	Demand ResourceDemand `json:"demand"`
	// FidelityValue is the desirability of the fidelity assignment.
	FidelityValue float64 `json:"fidelityValue"`
	// Utility is the alternative's score under the operation's utility
	// function.
	Utility float64 `json:"utility"`
	// Feasible is false when the alternative could not execute (server
	// unreachable, no CPU estimate, ...).
	Feasible bool `json:"feasible"`
}

// ServerAvail summarizes one server's availability in a snapshot.
type ServerAvail struct {
	Reachable    bool    `json:"reachable"`
	CPUAvailMHz  float64 `json:"cpuAvailMHz"`
	BandwidthBps float64 `json:"bandwidthBps"`
	LatencyMs    float64 `json:"latencyMs"`
}

// SnapshotSummary is the resource-availability snapshot a decision was made
// against, reduced to plain values.
type SnapshotSummary struct {
	When              time.Time              `json:"when"`
	LocalCPUAvailMHz  float64                `json:"localCpuAvailMHz"`
	LocalLoadFraction float64                `json:"localLoadFraction"`
	BatteryJoules     float64                `json:"batteryJoules"`
	EnergyImportance  float64                `json:"energyImportance"`
	OnWallPower       bool                   `json:"onWallPower"`
	Servers           map[string]ServerAvail `json:"servers,omitempty"`
}

// ResourceUsage is what an operation actually consumed.
type ResourceUsage struct {
	LocalMegacycles  float64 `json:"localMegacycles"`
	RemoteMegacycles float64 `json:"remoteMegacycles"`
	BytesSent        int64   `json:"bytesSent"`
	BytesReceived    int64   `json:"bytesReceived"`
	RPCs             int     `json:"rpcs"`
	EnergyJoules     float64 `json:"energyJoules"`
	EnergyValid      bool    `json:"energyValid"`
	ElapsedSeconds   float64 `json:"elapsedSeconds"`
	Files            int     `json:"files"`
}

// FailoverRecord is one transparent mid-operation recovery.
type FailoverRecord struct {
	OpType string `json:"opType"`
	From   string `json:"from"`
	// To is the adopted server; "" means local fallback.
	To    string `json:"to"`
	Cause string `json:"cause,omitempty"`
}

// DecisionTrace is the full record of one operation: the snapshot the
// decision saw, every alternative the solver evaluated, the choice, and —
// once the operation ends — actual usage, per-resource prediction error,
// and any failovers. A trace is emitted to the TraceSink exactly once, at
// End or Abort.
type DecisionTrace struct {
	// OpID is the operation instance identifier.
	OpID uint64 `json:"opId"`
	// Operation is the registered operation name.
	Operation string `json:"operation"`
	// Begin is the decision instant on the runtime clock (virtual time in
	// simulations).
	Begin time.Time `json:"begin"`
	// Forced marks oracle/validation runs where the caller dictated the
	// alternative.
	Forced bool `json:"forced,omitempty"`
	// Candidates is the size of the decision space; Evaluations the number
	// of utility-function calls the solver spent on it.
	Candidates  int `json:"candidates"`
	Evaluations int `json:"evaluations"`
	// Restarts counts hill-climbing restarts (0 for exhaustive search).
	Restarts int `json:"restarts,omitempty"`
	// Snapshot is the resource availability the decision was based on.
	Snapshot SnapshotSummary `json:"snapshot"`
	// Evaluated lists every distinct alternative the solver scored.
	Evaluated []EvaluatedAlternative `json:"evaluated"`
	// Chosen is the selected alternative (also present in Evaluated).
	Chosen EvaluatedAlternative `json:"chosen"`
	// OracleRan marks decisions made by the exhaustive oracle; when set,
	// HeuristicRankPct is the percentile rank the heuristic solver's choice
	// would have achieved among all candidates (the Figure 8 metric,
	// computed from the oracle's cached evaluations at no extra cost).
	OracleRan        bool    `json:"oracleRan,omitempty"`
	HeuristicRankPct float64 `json:"heuristicRankPct,omitempty"`
	// ReintegratedBytes is consistency-enforcement work done before
	// execution.
	ReintegratedBytes int64 `json:"reintegratedBytes,omitempty"`
	// SnapshotSeq points into the resource time-series history (see
	// TimeSeriesRecorder): the batch sequence number under which the
	// snapshot this decision saw was recorded, so post-hoc analysis can
	// read what the monitors reported before and after. 0 when no
	// time-series recorder was attached.
	SnapshotSeq uint64 `json:"snapshotSeq,omitempty"`

	// End is the completion instant; Aborted marks operations that ended
	// via Abort (no usage fed to the models, Actual/PredictionError empty).
	End     time.Time `json:"end"`
	Aborted bool      `json:"aborted,omitempty"`
	// Actual is the measured usage; PredictionError maps resource names to
	// the symmetric relative error |p-a|/max(|p|,|a|) between predicted and
	// actual (energy present only when the measurement was attributable).
	Actual          ResourceUsage      `json:"actual"`
	PredictionError map[string]float64 `json:"predictionError,omitempty"`
	// Failovers lists transparent recoveries; Degraded marks executions
	// that left the decided plan.
	Failovers []FailoverRecord `json:"failovers,omitempty"`
	Degraded  bool             `json:"degraded,omitempty"`
	// Spans is the operation's phase tree: client-side predict, solve,
	// reintegrate, rpc, and local spans plus any server-side spans stitched
	// in across the RPC boundary (Origin names the server). Empty when span
	// recording was off.
	Spans []Span `json:"spans,omitempty"`
}

// TraceSink receives completed decision traces. Emit is called exactly once
// per operation, at End or Abort, from the goroutine running the operation;
// implementations must be safe for concurrent use and should return
// quickly (buffer or drop rather than block the hot path).
type TraceSink interface {
	Emit(*DecisionTrace)
}

// TraceStore is a TraceSink that retains traces for later inspection; the
// debug endpoint serves /debug/traces from any sink that implements it.
type TraceStore interface {
	TraceSink
	// Traces returns the retained traces, oldest first.
	Traces() []*DecisionTrace
}

// MemorySink is a TraceSink that retains traces in memory, primarily for
// tests, interactive debugging, and the /debug/traces endpoint.
type MemorySink struct {
	mu sync.Mutex
	// cap bounds retention; 0 keeps everything.
	cap     int
	traces  []*DecisionTrace
	dropped int64
	// mDropped, when attached, mirrors the dropped count as a metric.
	mDropped *Counter
}

// NewMemorySink returns a sink retaining at most capTraces traces (the most
// recent are kept); capTraces <= 0 retains everything.
func NewMemorySink(capTraces int) *MemorySink {
	return &MemorySink{cap: capTraces}
}

// AttachMetrics mirrors the sink's dropped-trace count into the registry
// (MTracesDropped), so eviction is visible in /debug/metrics rather than
// silent. A nil registry detaches.
func (s *MemorySink) AttachMetrics(reg *Registry) {
	s.mu.Lock()
	s.mDropped = reg.Counter(MTracesDropped)
	s.mu.Unlock()
}

// Emit implements TraceSink.
func (s *MemorySink) Emit(t *DecisionTrace) {
	if t == nil {
		return
	}
	s.mu.Lock()
	s.traces = append(s.traces, t)
	if s.cap > 0 && len(s.traces) > s.cap {
		evicted := len(s.traces) - s.cap
		s.dropped += int64(evicted)
		s.mDropped.Add(int64(evicted))
		s.traces = append(s.traces[:0], s.traces[len(s.traces)-s.cap:]...)
	}
	s.mu.Unlock()
}

// Traces returns the retained traces, oldest first.
func (s *MemorySink) Traces() []*DecisionTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*DecisionTrace(nil), s.traces...)
}

// Len returns the number of retained traces.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}

// Dropped counts traces evicted to stay within the retention cap.
func (s *MemorySink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// MultiSink fans each trace out to every given sink (nils are skipped).
// It retains nothing itself, but implements TraceStore by delegating to
// the first member that does — so a MemorySink + JSONLSink pair still
// serves /debug/traces.
func MultiSink(sinks ...TraceSink) TraceSink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

type multiSink []TraceSink

// Emit implements TraceSink.
func (m multiSink) Emit(t *DecisionTrace) {
	for _, s := range m {
		s.Emit(t)
	}
}

// Traces implements TraceStore through the first retaining member.
func (m multiSink) Traces() []*DecisionTrace {
	for _, s := range m {
		if store, ok := s.(TraceStore); ok {
			return store.Traces()
		}
	}
	return nil
}

// RelativeError is the symmetric relative error |predicted-actual| divided
// by max(|predicted|, |actual|): 0 for a perfect prediction, 1 when one
// side is zero and the other is not, and 0 when both are zero. Bounded in
// [0, 1] for same-signed values, it is robust to near-zero actuals, which
// plain relative error is not.
func RelativeError(predicted, actual float64) float64 {
	if predicted == actual {
		return 0
	}
	ap, aa := predicted, actual
	if ap < 0 {
		ap = -ap
	}
	if aa < 0 {
		aa = -aa
	}
	denom := ap
	if aa > denom {
		denom = aa
	}
	if denom == 0 {
		return 0
	}
	diff := predicted - actual
	if diff < 0 {
		diff = -diff
	}
	return diff / denom
}
