package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestDebugMuxRoutes(t *testing.T) {
	o := NewObserver()
	o.Registry.Counter(MOpBegin).Add(3)
	o.Accuracy.Observe("janus", ResCPULocal, 0.5)

	srv := httptest.NewServer(NewDebugMux(o.Registry, o.Accuracy))
	defer srv.Close()

	var snap RegistrySnapshot
	getJSON(t, srv.URL+"/debug/metrics", &snap)
	if snap.Counters[MOpBegin] != 3 {
		t.Fatalf("%s = %d, want 3", MOpBegin, snap.Counters[MOpBegin])
	}

	var acc []AccuracyStat
	getJSON(t, srv.URL+"/debug/accuracy", &acc)
	if len(acc) != 1 || acc[0].Operation != "janus" || acc[0].MeanRelativeError != 0.5 {
		t.Fatalf("accuracy endpoint = %+v", acc)
	}

	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}
}

func TestServeDebug(t *testing.T) {
	addr, closeFn, err := ServeDebug("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	var snap RegistrySnapshot
	getJSON(t, "http://"+addr+"/debug/metrics", &snap)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
