package obs

import "sync"

// Canonical metric names. Instrumented packages resolve these once and hold
// the handles, so the hot path never touches the registry map.
const (
	// Operation lifecycle.
	MOpBegin    = "spectra.op.begin.total"
	MOpEnd      = "spectra.op.end.total"
	MOpAbort    = "spectra.op.abort.total"
	MOpForced   = "spectra.op.forced.total"
	MOpDegraded = "spectra.op.degraded.total"
	// MBeginSeconds is the wall-clock cost of one begin_fidelity_op.
	MBeginSeconds = "spectra.op.begin.seconds"

	// Solver.
	MSolverEvaluations = "spectra.solver.evaluations.total"
	MSolverRestarts    = "spectra.solver.restarts.total"
	MSolverCandidates  = "spectra.solver.candidates"
	// MSolverRankPct ranks the heuristic's choice among all candidates when
	// the exhaustive oracle runs (100 = the heuristic found the optimum).
	MSolverRankPct = "spectra.solver.rank.pct"

	// Failover and health.
	MFailoverEvents = "spectra.failover.events.total"
	MFailoverLocal  = "spectra.failover.local.total"
	MHealthOpened   = "spectra.health.opened.total"
	MHealthClosed   = "spectra.health.closed.total"

	// Server polling (the paper's periodic server database refresh).
	MPollCycles  = "spectra.poll.cycles.total"
	MPollErrors  = "spectra.poll.errors.total"
	MPollSeconds = "spectra.poll.seconds"

	// Monitor framework.
	MSnapshotSeconds = "spectra.monitor.snapshot.seconds"

	// RPC transport.
	MRPCRetries     = "spectra.rpc.retries.total"
	MRPCRedials     = "spectra.rpc.redials.total"
	MRPCCallSeconds = "spectra.rpc.call.seconds"

	// Connection pool (per-server pooled RPC clients).
	MPoolCreated   = "spectra.rpc.pool.created.total"
	MPoolEvicted   = "spectra.rpc.pool.evicted.total"
	MPoolWaits     = "spectra.rpc.pool.waits.total"
	MPoolExhausted = "spectra.rpc.pool.exhausted.total"
	MPoolInUse     = "spectra.rpc.pool.inuse"

	// End-to-end latency budgets (deadline propagation and hedging).
	// MDeadlineExceeded counts operations that exhausted their budget;
	// MDeadlineBudget is the distribution of budgets the planner derived.
	// MHedgeLaunched counts hedged backup requests; MHedgeWins counts the
	// subset whose backup reply beat the primary.
	MDeadlineExceeded = "spectra.rpc.deadline.exceeded.total"
	MDeadlineBudget   = "spectra.rpc.deadline.budget.seconds"
	MHedgeLaunched    = "spectra.rpc.hedge.launched.total"
	MHedgeWins        = "spectra.rpc.hedge.wins.total"

	// Trace pipeline.
	MTracesDropped = "spectra.traces.dropped.total"

	// Server-side request handling (spectrad).
	MServerRequests    = "spectra.server.requests.total"
	MServerErrors      = "spectra.server.errors.total"
	MServerExecSeconds = "spectra.server.exec.seconds"

	// Server admission control (bounded worker pool + wait queue).
	// MServerDeadlineShed counts requests shed because their propagated
	// latency budget expired before execution.
	MServerQueueDepth       = "spectra.server.queue.depth"
	MServerQueueRejected    = "spectra.server.queue.rejected.total"
	MServerQueueWaitSeconds = "spectra.server.queue.wait.seconds"
	MServerDeadlineShed     = "spectra.server.deadline.shed.total"

	// Decision snapshot cache (short-TTL sharing across concurrent Begins).
	MSnapCacheHits   = "spectra.monitor.snapshot.cache.hits.total"
	MSnapCacheMisses = "spectra.monitor.snapshot.cache.misses.total"

	// Placement-decision cache ("virtual stubs"): warm Begins reuse a prior
	// decision under an unchanged coarse resource picture. Bypasses count
	// forced/traced Begins that skip the cache by design; invalidations
	// count entries dropped for staleness (TTL, drift, health, accuracy).
	MDecisionCacheHits          = "spectra.decision.cache.hits.total"
	MDecisionCacheMisses        = "spectra.decision.cache.misses.total"
	MDecisionCacheBypass        = "spectra.decision.cache.bypass.total"
	MDecisionCacheInvalidations = "spectra.decision.cache.invalidations.total"
	MDecisionCacheEntries       = "spectra.decision.cache.entries"

	// Demand-predictor model selection (which model answered a query).
	MPredictHitBin     = "spectra.predict.hits.bin.total"
	MPredictHitGeneric = "spectra.predict.hits.generic.total"
	MPredictHitData    = "spectra.predict.hits.data.total"
	MPredictMiss       = "spectra.predict.miss.total"

	// RelErrPrefix prefixes per-operation, per-resource rolling relative
	// prediction error gauges: spectra.predict.relerr.<operation>.<resource>.
	RelErrPrefix = "spectra.predict.relerr."
)

// Default histogram bucket sets.
var (
	// DefaultLatencyBuckets covers microseconds to tens of seconds.
	DefaultLatencyBuckets = []float64{
		1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 2.5, 10, 60,
	}
	// DefaultCountBuckets covers small cardinalities (candidate-space
	// sizes, evaluation counts).
	DefaultCountBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}
	// DefaultPercentBuckets covers percentile metrics.
	DefaultPercentBuckets = []float64{10, 25, 50, 75, 90, 95, 99, 100}
)

// Observer bundles the three observability facilities Spectra plumbs
// through its setups: the metrics registry, an optional decision-trace
// sink, and the predictor-accuracy tracker. A nil *Observer disables
// everything; a non-nil Observer with a nil Sink keeps metrics and
// accuracy accounting but skips trace construction entirely.
//
//lint:nilsafe
type Observer struct {
	// Registry receives all metrics; nil disables them.
	Registry *Registry
	// Sink receives one DecisionTrace per operation; nil disables tracing.
	Sink TraceSink
	// Accuracy accumulates rolling prediction error; nil disables it.
	Accuracy *AccuracyTracker
	// TimeSeries, when non-nil, retains a bounded history of resource
	// snapshots: every decision snapshot is recorded into it (traces point
	// at the batch via SnapshotSeq), and a background sampler can feed it
	// between decisions (monitor.StartTelemetry).
	TimeSeries *TimeSeriesRecorder

	// relErrGauges caches the per-(operation, resource) error gauges so the
	// End hot path skips the registry lock and name concatenation.
	relErrGauges sync.Map // op + "\x00" + resource -> *Gauge
}

// NewObserver returns an observer with a fresh registry (core metric names
// pre-registered so the JSON endpoint lists them at zero) and accuracy
// tracker, and no trace sink. Attach a sink by setting Sink.
func NewObserver() *Observer {
	o := &Observer{
		Registry: NewRegistry(),
		Accuracy: NewAccuracyTracker(DefaultAccuracyDecay),
	}
	RegisterCoreMetrics(o.Registry)
	return o
}

// RegisterCoreMetrics eagerly creates every fixed-name Spectra metric so
// exports list them (at zero) before the first event.
func RegisterCoreMetrics(r *Registry) {
	if r == nil {
		return
	}
	for _, name := range []string{
		MOpBegin, MOpEnd, MOpAbort, MOpForced, MOpDegraded,
		MSolverEvaluations, MSolverRestarts,
		MFailoverEvents, MFailoverLocal,
		MHealthOpened, MHealthClosed,
		MPollCycles, MPollErrors,
		MRPCRetries, MRPCRedials,
		MPoolCreated, MPoolEvicted, MPoolWaits, MPoolExhausted,
		MPredictHitBin, MPredictHitGeneric, MPredictHitData, MPredictMiss,
		MTracesDropped,
		MServerRequests, MServerErrors, MServerQueueRejected, MServerDeadlineShed,
		MDeadlineExceeded, MHedgeLaunched, MHedgeWins,
		MSnapCacheHits, MSnapCacheMisses,
		MDecisionCacheHits, MDecisionCacheMisses,
		MDecisionCacheBypass, MDecisionCacheInvalidations,
	} {
		r.Counter(name)
	}
	r.Gauge(MDecisionCacheEntries)
	r.Gauge(MPoolInUse)
	r.Gauge(MServerQueueDepth)
	r.Histogram(MServerQueueWaitSeconds, DefaultLatencyBuckets)
	r.Histogram(MBeginSeconds, DefaultLatencyBuckets)
	r.Histogram(MServerExecSeconds, DefaultLatencyBuckets)
	r.Histogram(MSolverCandidates, DefaultCountBuckets)
	r.Histogram(MSolverRankPct, DefaultPercentBuckets)
	r.Histogram(MPollSeconds, DefaultLatencyBuckets)
	r.Histogram(MSnapshotSeconds, DefaultLatencyBuckets)
	r.Histogram(MRPCCallSeconds, DefaultLatencyBuckets)
	r.Histogram(MDeadlineBudget, DefaultLatencyBuckets)
}

// TraceOn reports whether decision traces should be constructed.
func (o *Observer) TraceOn() bool { return o != nil && o.Sink != nil }

// Timeline returns the resource time-series recorder, nil-safely.
func (o *Observer) Timeline() *TimeSeriesRecorder {
	if o == nil {
		return nil
	}
	return o.TimeSeries
}

// Emit forwards a completed trace to the sink, if any.
func (o *Observer) Emit(t *DecisionTrace) {
	if o == nil || o.Sink == nil {
		return
	}
	o.Sink.Emit(t)
}

// ObservePredictionError feeds one operation's per-resource relative errors
// into the accuracy tracker and the per-pair registry gauges.
func (o *Observer) ObservePredictionError(op string, errs map[string]float64) {
	if o == nil || len(errs) == 0 {
		return
	}
	for res, e := range errs {
		mean := o.Accuracy.Observe(op, res, e)
		o.relErrGauge(op, res).Set(mean)
	}
}

// relErrGauge returns (caching) the rolling-error gauge for one pair; nil
// (a no-op handle) when metrics are disabled.
func (o *Observer) relErrGauge(op, res string) *Gauge {
	if o.Registry == nil {
		return nil
	}
	key := op + "\x00" + res
	if g, ok := o.relErrGauges.Load(key); ok {
		return g.(*Gauge)
	}
	g := o.Registry.Gauge(RelErrPrefix + op + "." + res)
	o.relErrGauges.Store(key, g)
	return g
}
