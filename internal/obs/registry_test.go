package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	g := r.Gauge("x")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	h := r.Histogram("x", DefaultLatencyBuckets)
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	var o *Observer
	if o.TraceOn() {
		t.Fatal("nil observer must not trace")
	}
	o.Emit(&DecisionTrace{})
	o.ObservePredictionError("op", map[string]float64{"r": 1})
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if snap.Sum != 1053.5 {
		t.Fatalf("sum = %v, want 1053.5", snap.Sum)
	}
	// Cumulative: ≤1 → 2 samples, ≤10 → 3, ≤100 → 4; 1000 overflows.
	want := []uint64{2, 3, 4}
	for i, b := range snap.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket le=%v count = %d, want %d", b.UpperBound, b.Count, want[i])
		}
	}
}

func TestRegistryJSONEndpoint(t *testing.T) {
	r := NewRegistry()
	RegisterCoreMetrics(r)
	r.Counter(MOpBegin).Add(7)
	r.Histogram(MBeginSeconds, DefaultLatencyBuckets).Observe(0.002)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var snap RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[MOpBegin] != 7 {
		t.Fatalf("%s = %d, want 7", MOpBegin, snap.Counters[MOpBegin])
	}
	// Eagerly registered names are present at zero.
	for _, name := range []string{MSolverEvaluations, MFailoverEvents, MRPCRetries} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("counter %s missing from JSON export", name)
		}
	}
	if snap.Histograms[MBeginSeconds].Count != 1 {
		t.Fatalf("histogram %s count = %d, want 1", MBeginSeconds, snap.Histograms[MBeginSeconds].Count)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", DefaultCountBuckets).Observe(float64(j % 30))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}
