package obs

import (
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestConcurrentEmitAndDebugReads hammers the observer from both sides —
// operations emitting traces, metrics, and telemetry while HTTP readers
// scrape every debug endpoint — and relies on -race to catch unsynchronized
// access.
func TestConcurrentEmitAndDebugReads(t *testing.T) {
	mem := NewMemorySink(32)
	o := NewObserver()
	mem.AttachMetrics(o.Registry)
	o.Sink = mem
	o.TimeSeries = NewTimeSeriesRecorder(64)

	ts := httptest.NewServer(o.DebugMux())
	defer ts.Close()

	const writers, readers, rounds = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctr := o.Registry.Counter(MOpEnd)
			for i := 0; i < rounds; i++ {
				begin := time.Unix(int64(i), 0)
				o.Emit(&DecisionTrace{
					OpID:      uint64(w*rounds + i),
					Operation: "concurrent-op",
					Begin:     begin,
					End:       begin.Add(time.Millisecond),
					Spans: []Span{
						{ID: 0, Parent: -1, Name: SpanSolve, Start: begin, End: begin.Add(time.Millisecond)},
					},
				})
				ctr.Inc()
				o.TimeSeries.RecordValue("load", begin, float64(i))
				o.Accuracy.Observe("concurrent-op", ResLatency, 0.1)
			}
		}(w)
	}
	paths := []string{
		"/debug/metrics", "/debug/traces", "/debug/traces?op=concurrent-op&n=5",
		"/debug/timeseries", "/debug/timeseries?series=load&n=3", "/debug/accuracy",
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := ts.Client().Get(ts.URL + paths[(r+i)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("GET %s: %d", paths[(r+i)%len(paths)], resp.StatusCode)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	if got := mem.Len(); got != 32 {
		t.Errorf("retained %d traces, want cap 32", got)
	}
	wantDropped := int64(writers*rounds - 32)
	if got := mem.Dropped(); got != wantDropped {
		t.Errorf("dropped = %d, want %d", got, wantDropped)
	}
	if got := o.Registry.Counter(MTracesDropped).Value(); got != wantDropped {
		t.Errorf("%s = %d, want %d", MTracesDropped, got, wantDropped)
	}
}
