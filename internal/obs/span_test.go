package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanRecorderTree(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	rec := NewSpanRecorder(clock)

	root := rec.Start(SpanPredict, -1)
	now = now.Add(10 * time.Millisecond)
	rec.EndSpan(root)

	parent := rec.Start(SpanRPC, -1)
	now = now.Add(5 * time.Millisecond)
	child := rec.Start(SpanServerExec, parent)
	now = now.Add(20 * time.Millisecond)
	rec.EndSpan(child)
	rec.EndSpan(parent)

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Name != SpanPredict || spans[0].Parent != -1 {
		t.Errorf("span 0 = %+v, want root predict", spans[0])
	}
	if spans[0].Duration() != 10*time.Millisecond {
		t.Errorf("predict duration = %v, want 10ms", spans[0].Duration())
	}
	if spans[2].Parent != parent {
		t.Errorf("exec parent = %d, want %d", spans[2].Parent, parent)
	}
	if spans[1].Duration() != 25*time.Millisecond {
		t.Errorf("rpc duration = %v, want 25ms", spans[1].Duration())
	}
}

// TestSpanRecorderNil pins the nil-recorder contract: every method is a
// no-op, Start returns -1, and nothing panics — the untraced path needs no
// guards and no allocations.
func TestSpanRecorderNil(t *testing.T) {
	var rec *SpanRecorder
	if id := rec.Start(SpanSolve, -1); id != -1 {
		t.Fatalf("nil Start = %d, want -1", id)
	}
	rec.EndSpan(-1)
	rec.EndSpan(3)
	rec.Attach(0, []Span{{Name: SpanServerExec}})
	if s := rec.Spans(); s != nil {
		t.Fatalf("nil Spans = %v, want nil", s)
	}
	allocs := testing.AllocsPerRun(100, func() {
		id := rec.Start(SpanSolve, -1)
		rec.EndSpan(id)
	})
	if allocs != 0 {
		t.Errorf("nil recorder allocates %v per Start/End, want 0", allocs)
	}
}

// TestSpanRecorderAttach checks the ID remapping when server-side spans are
// grafted under a client rpc span: roots become children of the rpc span,
// internal parent links shift by the base offset.
func TestSpanRecorderAttach(t *testing.T) {
	base := time.Unix(2000, 0)
	rec := NewSpanRecorder(func() time.Time { return base })
	rpcSpan := rec.Start(SpanRPC, -1)

	server := []Span{
		{ID: 0, Parent: -1, Name: SpanServerQueue, Origin: "srv"},
		{ID: 1, Parent: -1, Name: SpanServerExec, Origin: "srv"},
		{ID: 2, Parent: 1, Name: "exec.child", Origin: "srv"},
	}
	rec.Attach(rpcSpan, server)
	rec.EndSpan(rpcSpan)

	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	for i, s := range spans {
		if s.ID != i {
			t.Errorf("span %d has ID %d", i, s.ID)
		}
	}
	if spans[1].Parent != rpcSpan || spans[2].Parent != rpcSpan {
		t.Errorf("server roots parented to %d/%d, want %d", spans[1].Parent, spans[2].Parent, rpcSpan)
	}
	if spans[3].Parent != spans[2].ID {
		t.Errorf("exec.child parent = %d, want %d", spans[3].Parent, spans[2].ID)
	}
	if spans[1].Origin != "srv" {
		t.Errorf("origin lost in attach: %+v", spans[1])
	}
}

func TestSpanCostPrefersWall(t *testing.T) {
	begin := time.Unix(0, 0)
	s := Span{Start: begin, End: begin, WallNanos: int64(3 * time.Millisecond)}
	if s.Cost() != 3*time.Millisecond {
		t.Errorf("zero-virtual-time span cost = %v, want 3ms", s.Cost())
	}
	s = Span{Start: begin, End: begin.Add(time.Second), WallNanos: int64(time.Millisecond)}
	if s.Cost() != time.Second {
		t.Errorf("virtual-dominated span cost = %v, want 1s", s.Cost())
	}
}

// TestSpanRecorderConcurrent exercises the recorder from parallel branches
// (run with -race).
func TestSpanRecorderConcurrent(t *testing.T) {
	rec := NewSpanRecorder(time.Now)
	root := rec.Start(SpanSolve, -1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := rec.Start(SpanRPC, root)
				rec.Attach(id, []Span{{Parent: -1, Name: SpanServerExec}})
				rec.EndSpan(id)
				_ = rec.Spans()
			}
		}()
	}
	wg.Wait()
	rec.EndSpan(root)
	spans := rec.Spans()
	want := 1 + 8*100*2
	if len(spans) != want {
		t.Fatalf("spans = %d, want %d", len(spans), want)
	}
	for i, s := range spans {
		if s.ID != i {
			t.Fatalf("span %d has ID %d after concurrent recording", i, s.ID)
		}
		if s.Parent >= i {
			t.Fatalf("span %d parented forward to %d", i, s.Parent)
		}
	}
}
