package sim

import (
	"sync"
	"time"
)

// Battery models a client battery. It tracks remaining energy in joules and
// a short history of discharge so that the two battery "drivers" (ACPI-style
// and SmartBattery-style, see internal/energy) can report remaining capacity
// and recent drain rate the way the paper's battery monitor consumed them.
type Battery struct {
	mu sync.Mutex

	capacityJ  float64
	remainingJ float64
	drainedJ   float64 // cumulative discharge since construction

	// voltage is used by the SmartBattery driver to convert between
	// joules and milliamp-hours.
	voltage float64
}

// NewBattery returns a full battery with the given capacity in joules.
// A typical Itsy v2.2 battery stores roughly 9 Wh (~32 kJ); a ThinkPad 560X
// battery roughly 39 Wh (~140 kJ).
func NewBattery(capacityJoules float64) *Battery {
	if capacityJoules <= 0 {
		capacityJoules = 1
	}
	return &Battery{
		capacityJ:  capacityJoules,
		remainingJ: capacityJoules,
		voltage:    3.7,
	}
}

// SetVoltage sets the nominal voltage used for mAh conversions.
func (b *Battery) SetVoltage(v float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v > 0 {
		b.voltage = v
	}
}

// Voltage returns the nominal voltage.
func (b *Battery) Voltage() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.voltage
}

// CapacityJoules returns the battery's full capacity.
func (b *Battery) CapacityJoules() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacityJ
}

// RemainingJoules returns the energy left in the battery.
func (b *Battery) RemainingJoules() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remainingJ
}

// DrainedJoules returns the cumulative energy drawn from the battery.
// The battery monitor measures per-operation energy as the difference of
// this counter before and after the operation.
func (b *Battery) DrainedJoules() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drainedJ
}

// Drain removes energy from the battery, clamping at empty.
func (b *Battery) Drain(joules float64) {
	if joules <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drainedJ += joules
	b.remainingJ -= joules
	if b.remainingJ < 0 {
		b.remainingJ = 0
	}
}

// Recharge restores energy, clamping at capacity.
func (b *Battery) Recharge(joules float64) {
	if joules <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.remainingJ += joules
	if b.remainingJ > b.capacityJ {
		b.remainingJ = b.capacityJ
	}
}

// FractionRemaining returns remaining/capacity in [0,1].
func (b *Battery) FractionRemaining() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remainingJ / b.capacityJ
}

// IsEmpty reports whether the battery is exhausted.
func (b *Battery) IsEmpty() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remainingJ <= 0
}

// LifetimeAt returns how long the battery lasts at a constant draw.
func (b *Battery) LifetimeAt(watts float64) time.Duration {
	if watts <= 0 {
		return time.Duration(1<<62 - 1)
	}
	return DurationSeconds(b.RemainingJoules() / watts)
}
