package sim

// Preset machine configurations for the hardware platforms used in the
// paper's evaluation. Absolute power numbers follow published measurements
// of the platforms; Spectra only depends on their relative magnitudes.

// NewItsy returns a model of the Compaq Itsy v2.2 pocket computer:
// 206 MHz StrongARM SA-1100 with software floating-point emulation and a
// small (~9 Wh) Smart Battery. The floating-point penalty is calibrated so
// that Janus local recognition lands 3-9x slower than hybrid/remote, as in
// Figure 3 of the paper.
func NewItsy() *Machine {
	return NewMachine(MachineConfig{
		Name:      "itsy",
		SpeedMHz:  206,
		FPPenalty: 4.0,
		Power: PowerModel{
			IdleW: 0.2,
			BusyW: 1.5,
			NetW:  0.25, // serial line: barely above idle
		},
		OnWallPower: true,
		Battery:     NewBattery(32_000),
	})
}

// NewT20 returns a model of the IBM ThinkPad T20 used as the speech
// compute server: 700 MHz Pentium III with hardware floating point.
func NewT20() *Machine {
	return NewMachine(MachineConfig{
		Name:        "t20",
		SpeedMHz:    700,
		Power:       PowerModel{IdleW: 10, BusyW: 24, NetW: 12},
		OnWallPower: true,
	})
}

// New560X returns a model of the IBM ThinkPad 560X client used for the
// Latex and Pangloss-Lite experiments: 233 MHz Pentium MMX.
func New560X() *Machine {
	return NewMachine(MachineConfig{
		Name:     "560x",
		SpeedMHz: 233,
		Power: PowerModel{
			IdleW: 7,
			BusyW: 16,
			NetW:  9, // idle CPU + active WaveLAN
		},
		OnWallPower: true,
		Battery:     NewBattery(140_000),
	})
}

// NewServerA returns a model of remote server A: 400 MHz Pentium II.
func NewServerA() *Machine {
	return NewMachine(MachineConfig{
		Name:        "serverA",
		SpeedMHz:    400,
		Power:       PowerModel{IdleW: 20, BusyW: 45, NetW: 22},
		OnWallPower: true,
	})
}

// NewServerB returns a model of remote server B: 933 MHz Pentium III.
func NewServerB() *Machine {
	return NewMachine(MachineConfig{
		Name:        "serverB",
		SpeedMHz:    933,
		Power:       PowerModel{IdleW: 25, BusyW: 60, NetW: 27},
		OnWallPower: true,
	})
}
