package sim

import (
	"fmt"
	"sync"
	"time"
)

// Machine models a computer in the testbed: its CPU, its power draw, and
// its background load. Compute demand is expressed in megacycles so that the
// same application demand numbers can be replayed against machines of
// different speeds, exactly as Spectra's history-based CPU predictions do.
type Machine struct {
	mu sync.Mutex

	name string
	// speedMHz is the processor clock in MHz (megacycles per second).
	speedMHz float64
	// fpPenalty multiplies floating-point cycle demand. The Itsy's SA-1100
	// emulates floating point in software; the paper attributes the 3-9x
	// local slowdown of Janus to this penalty.
	fpPenalty float64
	// backgroundTasks is the number of CPU-bound competing processes.
	// Operations receive a fair share 1/(backgroundTasks+1) of the CPU.
	backgroundTasks int

	power PowerModel
	// onWallPower reports whether the machine is externally powered.
	onWallPower bool
	battery     *Battery

	// cycleCount accumulates megacycles executed on behalf of operations,
	// analogous to the per-process counters Spectra reads from /proc.
	cycleCount float64
}

// PowerModel describes a platform's power draw in watts. Values are drawn
// from published measurements of the Itsy v2.2 and ThinkPad 560X class
// hardware; only their ratios matter to Spectra's decisions.
type PowerModel struct {
	// IdleW is the draw when the CPU is idle (e.g. waiting on a server).
	IdleW float64
	// BusyW is the draw during computation.
	BusyW float64
	// NetW is the draw while actively transmitting or receiving.
	NetW float64
}

// MachineConfig configures a Machine.
type MachineConfig struct {
	Name            string
	SpeedMHz        float64
	FPPenalty       float64 // <1 values are treated as 1 (hardware FPU)
	BackgroundTasks int
	Power           PowerModel
	OnWallPower     bool
	Battery         *Battery
}

// NewMachine constructs a machine from the given configuration.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.SpeedMHz <= 0 {
		cfg.SpeedMHz = 100
	}
	if cfg.FPPenalty < 1 {
		cfg.FPPenalty = 1
	}
	return &Machine{
		name:            cfg.Name,
		speedMHz:        cfg.SpeedMHz,
		fpPenalty:       cfg.FPPenalty,
		backgroundTasks: cfg.BackgroundTasks,
		power:           cfg.Power,
		onWallPower:     cfg.OnWallPower,
		battery:         cfg.Battery,
	}
}

// Name returns the machine's name.
func (m *Machine) Name() string { return m.name }

// SpeedMHz returns the processor clock in MHz.
func (m *Machine) SpeedMHz() float64 { return m.speedMHz }

// FPPenalty returns the floating-point emulation multiplier (1 for
// hardware floating point).
func (m *Machine) FPPenalty() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fpPenalty
}

// Power returns the machine's power model.
func (m *Machine) Power() PowerModel { return m.power }

// OnWallPower reports whether the machine is externally powered.
func (m *Machine) OnWallPower() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.onWallPower
}

// SetWallPower switches the machine between wall and battery power.
func (m *Machine) SetWallPower(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onWallPower = on
}

// Battery returns the machine's battery, or nil for machines without one.
func (m *Machine) Battery() *Battery { return m.battery }

// SetBackgroundTasks sets the number of CPU-bound competing processes, as
// the paper's CPU scenario does by starting background jobs.
func (m *Machine) SetBackgroundTasks(n int) {
	if n < 0 {
		n = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.backgroundTasks = n
}

// BackgroundTasks returns the number of CPU-bound competing processes.
func (m *Machine) BackgroundTasks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.backgroundTasks
}

// LoadFraction returns the fraction of CPU cycles consumed by processes
// other than the operation, the statistic the CPU monitor samples.
func (m *Machine) LoadFraction() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := float64(m.backgroundTasks)
	return n / (n + 1)
}

// FairShare returns the fraction of the CPU an operation receives assuming
// background load stays constant and scheduling is fair, per the prediction
// algorithm of Narayanan et al. used by the paper's CPU monitor.
func (m *Machine) FairShare() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return 1 / (float64(m.backgroundTasks) + 1)
}

// AvailableMHz returns the predicted megacycles per second available to a
// newly started operation.
func (m *Machine) AvailableMHz() float64 {
	return m.speedMHz * m.FairShare()
}

// ComputeTime returns how long executing the given demand takes on this
// machine at its current load, and the effective megacycles charged to the
// operation (after floating-point emulation expansion).
func (m *Machine) ComputeTime(d ComputeDemand) (time.Duration, float64) {
	eff := m.EffectiveMegacycles(d)
	if eff <= 0 {
		return 0, 0
	}
	avail := m.AvailableMHz()
	return DurationSeconds(eff / avail), eff
}

// EffectiveMegacycles returns the cycle demand after applying the machine's
// floating-point emulation penalty.
func (m *Machine) EffectiveMegacycles(d ComputeDemand) float64 {
	fp := m.FPPenalty()
	eff := d.IntegerMegacycles + d.FloatMegacycles*fp
	if eff < 0 {
		return 0
	}
	return eff
}

// ChargeCycles records megacycles executed on behalf of operations. The CPU
// monitor reads the counter before and after an operation.
func (m *Machine) ChargeCycles(megacycles float64) {
	if megacycles <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cycleCount += megacycles
}

// CycleCount returns the accumulated operation megacycles.
func (m *Machine) CycleCount() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cycleCount
}

// DrainCompute discharges the battery for t of computation, if the machine
// is battery powered. It returns the energy consumed in joules.
func (m *Machine) DrainCompute(t time.Duration) float64 {
	return m.drain(m.power.BusyW, t)
}

// DrainIdle discharges the battery for t of idle waiting.
func (m *Machine) DrainIdle(t time.Duration) float64 {
	return m.drain(m.power.IdleW, t)
}

// DrainNetwork discharges the battery for t of network activity.
func (m *Machine) DrainNetwork(t time.Duration) float64 {
	return m.drain(m.power.NetW, t)
}

func (m *Machine) drain(watts float64, t time.Duration) float64 {
	if t <= 0 || watts <= 0 {
		return 0
	}
	joules := watts * Seconds(t)
	if m.OnWallPower() || m.battery == nil {
		return joules
	}
	m.battery.Drain(joules)
	return joules
}

// ComputeDemand expresses an application component's CPU demand in
// megacycles, split by instruction mix so that software floating-point
// platforms can be modeled.
type ComputeDemand struct {
	IntegerMegacycles float64
	FloatMegacycles   float64
}

// Add returns the sum of two demands.
func (d ComputeDemand) Add(o ComputeDemand) ComputeDemand {
	return ComputeDemand{
		IntegerMegacycles: d.IntegerMegacycles + o.IntegerMegacycles,
		FloatMegacycles:   d.FloatMegacycles + o.FloatMegacycles,
	}
}

// Scale returns the demand multiplied by f.
func (d ComputeDemand) Scale(f float64) ComputeDemand {
	return ComputeDemand{
		IntegerMegacycles: d.IntegerMegacycles * f,
		FloatMegacycles:   d.FloatMegacycles * f,
	}
}

// Total returns the raw (unpenalized) megacycles.
func (d ComputeDemand) Total() float64 {
	return d.IntegerMegacycles + d.FloatMegacycles
}

// String implements fmt.Stringer.
func (d ComputeDemand) String() string {
	return fmt.Sprintf("%.1fMc(int)+%.1fMc(fp)", d.IntegerMegacycles, d.FloatMegacycles)
}
