package sim

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtualClock(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	c.Advance(3 * time.Second)
	if got := c.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("after Advance, Now() = %v", got)
	}
}

func TestVirtualClockSleepAdvances(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	c.Sleep(time.Minute)
	if got := c.Now().Sub(time.Unix(0, 0)); got != time.Minute {
		t.Fatalf("Sleep advanced %v, want 1m", got)
	}
}

func TestVirtualClockNegativeAdvanceIgnored(t *testing.T) {
	c := NewVirtualClock(time.Unix(100, 0))
	c.Advance(-time.Hour)
	c.Sleep(-time.Second)
	if got := c.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Fatalf("negative advance moved clock to %v", got)
	}
}

func TestVirtualClockConcurrentAdvance(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Advance(time.Millisecond)
		}()
	}
	wg.Wait()
	if got := c.Now().Sub(time.Unix(0, 0)); got != 50*time.Millisecond {
		t.Fatalf("concurrent advances produced %v, want 50ms", got)
	}
}

func TestRealClockMonotonicish(t *testing.T) {
	var c RealClock
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock moved backwards: %v then %v", a, b)
	}
}

func TestDurationSecondsRoundTrip(t *testing.T) {
	tests := []struct {
		give float64
		want time.Duration
	}{
		{give: 0, want: 0},
		{give: -1, want: 0},
		{give: 1.5, want: 1500 * time.Millisecond},
		{give: 0.001, want: time.Millisecond},
	}
	for _, tt := range tests {
		if got := DurationSeconds(tt.give); got != tt.want {
			t.Errorf("DurationSeconds(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
	if got := Seconds(2500 * time.Millisecond); got != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", got)
	}
}
