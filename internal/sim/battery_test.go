package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBatteryDrainAndRecharge(t *testing.T) {
	b := NewBattery(100)
	if b.RemainingJoules() != 100 || b.CapacityJoules() != 100 {
		t.Fatal("new battery should be full")
	}
	b.Drain(30)
	if got := b.RemainingJoules(); got != 70 {
		t.Fatalf("remaining = %v, want 70", got)
	}
	if got := b.DrainedJoules(); got != 30 {
		t.Fatalf("drained = %v, want 30", got)
	}
	b.Recharge(10)
	if got := b.RemainingJoules(); got != 80 {
		t.Fatalf("after recharge remaining = %v, want 80", got)
	}
	b.Recharge(1000)
	if got := b.RemainingJoules(); got != 100 {
		t.Fatalf("recharge must clamp at capacity, got %v", got)
	}
}

func TestBatteryClampsAtEmpty(t *testing.T) {
	b := NewBattery(10)
	b.Drain(25)
	if got := b.RemainingJoules(); got != 0 {
		t.Fatalf("remaining = %v, want 0", got)
	}
	if !b.IsEmpty() {
		t.Fatal("battery should report empty")
	}
	// Cumulative drain still records the full request, like a coulomb
	// counter that kept integrating.
	if got := b.DrainedJoules(); got != 25 {
		t.Fatalf("drained = %v, want 25", got)
	}
}

func TestBatteryIgnoresNonPositive(t *testing.T) {
	b := NewBattery(50)
	b.Drain(-5)
	b.Recharge(-5)
	b.Drain(0)
	if b.RemainingJoules() != 50 || b.DrainedJoules() != 0 {
		t.Fatal("non-positive amounts must be ignored")
	}
}

func TestBatteryFractionAndLifetime(t *testing.T) {
	b := NewBattery(200)
	b.Drain(50)
	if got := b.FractionRemaining(); got != 0.75 {
		t.Fatalf("fraction = %v, want 0.75", got)
	}
	if got := b.LifetimeAt(3); got != DurationSeconds(50) {
		t.Fatalf("lifetime at 3W = %v, want 50s", got)
	}
	if got := b.LifetimeAt(0); got < 100*365*24*time.Hour {
		t.Fatalf("lifetime at 0W should be effectively infinite, got %v", got)
	}
}

func TestBatteryVoltage(t *testing.T) {
	b := NewBattery(10)
	if b.Voltage() != 3.7 {
		t.Fatalf("default voltage = %v", b.Voltage())
	}
	b.SetVoltage(12)
	if b.Voltage() != 12 {
		t.Fatalf("voltage = %v, want 12", b.Voltage())
	}
	b.SetVoltage(-1)
	if b.Voltage() != 12 {
		t.Fatal("invalid voltage must be ignored")
	}
}

// Property: for any sequence of drains, remaining stays within [0, capacity]
// and drained equals the sum of positive requests.
func TestBatteryInvariantsProperty(t *testing.T) {
	f := func(amounts []int16) bool {
		const cap = 1000.0
		b := NewBattery(cap)
		var wantDrained float64
		for _, a := range amounts {
			j := float64(a)
			b.Drain(j)
			if j > 0 {
				wantDrained += j
			}
		}
		rem := b.RemainingJoules()
		return rem >= 0 && rem <= cap && b.DrainedJoules() == wantDrained
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
