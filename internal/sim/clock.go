// Package sim provides the simulated hardware substrate used to reproduce
// the Spectra testbed: a virtual clock, machine models with CPU speed and
// power characteristics, and batteries. The paper's experiments ran on a
// Compaq Itsy v2.2, an IBM T20, an IBM 560X, and two compute servers; this
// package models those platforms analytically so that the resource monitors
// observe the same supply/demand signals the real hardware produced.
package sim

import (
	"sync"
	"time"
)

// Clock is the time source used throughout the simulation. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time

	// Sleep advances (virtual clock) or waits (real clock) for d.
	// Negative durations are treated as zero.
	Sleep(d time.Duration)
}

// VirtualClock is a deterministic Clock that only moves when Sleep or
// Advance is called. The zero value is not usable; construct with
// NewVirtualClock.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*VirtualClock)(nil)

// NewVirtualClock returns a virtual clock starting at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances virtual time by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	c.Advance(d)
}

// Advance moves virtual time forward by d. Negative durations are ignored.
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// RealClock is a Clock backed by the system clock. It is the single
// sanctioned wall-clock entry point for deterministic code: everything on
// the sim path reads time through a Clock, and live deployments inject
// this implementation. The two methods below are therefore the allowlisted
// exceptions to the virtualclock analyzer.
type RealClock struct{}

var _ Clock = RealClock{}

// Now returns time.Now().
//
//lint:allow virtualclock RealClock is the live runtime's clock adapter
func (RealClock) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (RealClock) Sleep(d time.Duration) {
	if d > 0 {
		//lint:allow virtualclock RealClock is the live runtime's clock adapter
		time.Sleep(d)
	}
}

// Seconds converts a duration to floating-point seconds.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// DurationSeconds converts floating-point seconds to a duration.
func DurationSeconds(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}
