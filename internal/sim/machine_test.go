package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMachineDefaults(t *testing.T) {
	m := NewMachine(MachineConfig{Name: "m"})
	if m.SpeedMHz() <= 0 {
		t.Fatal("default speed must be positive")
	}
	if m.FPPenalty() != 1 {
		t.Fatalf("default FP penalty = %v, want 1", m.FPPenalty())
	}
}

func TestComputeTimeScalesWithSpeed(t *testing.T) {
	slow := NewMachine(MachineConfig{Name: "slow", SpeedMHz: 100})
	fast := NewMachine(MachineConfig{Name: "fast", SpeedMHz: 400})
	d := ComputeDemand{IntegerMegacycles: 200}
	ts, _ := slow.ComputeTime(d)
	tf, _ := fast.ComputeTime(d)
	if ts != 2*time.Second {
		t.Fatalf("slow time = %v, want 2s", ts)
	}
	if tf != 500*time.Millisecond {
		t.Fatalf("fast time = %v, want 500ms", tf)
	}
}

func TestFPPenaltyAppliesOnlyToFloatCycles(t *testing.T) {
	m := NewMachine(MachineConfig{Name: "itsy", SpeedMHz: 100, FPPenalty: 4})
	d := ComputeDemand{IntegerMegacycles: 100, FloatMegacycles: 100}
	eff := m.EffectiveMegacycles(d)
	if eff != 500 {
		t.Fatalf("effective megacycles = %v, want 500", eff)
	}
	hw := NewMachine(MachineConfig{Name: "hw", SpeedMHz: 100})
	if got := hw.EffectiveMegacycles(d); got != 200 {
		t.Fatalf("hardware-FP effective megacycles = %v, want 200", got)
	}
}

func TestBackgroundLoadFairShare(t *testing.T) {
	m := NewMachine(MachineConfig{Name: "m", SpeedMHz: 300})
	if got := m.FairShare(); got != 1 {
		t.Fatalf("unloaded fair share = %v", got)
	}
	m.SetBackgroundTasks(2)
	if got := m.FairShare(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("fair share with 2 competitors = %v, want 1/3", got)
	}
	if got := m.LoadFraction(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("load fraction = %v, want 2/3", got)
	}
	if got := m.AvailableMHz(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("available MHz = %v, want 100", got)
	}
	m.SetBackgroundTasks(-1)
	if got := m.BackgroundTasks(); got != 0 {
		t.Fatalf("negative background tasks stored as %d", got)
	}
}

func TestComputeTimeUnderLoad(t *testing.T) {
	m := NewMachine(MachineConfig{Name: "m", SpeedMHz: 100})
	m.SetBackgroundTasks(1)
	d, eff := m.ComputeTime(ComputeDemand{IntegerMegacycles: 100})
	if d != 2*time.Second {
		t.Fatalf("loaded compute time = %v, want 2s", d)
	}
	if eff != 100 {
		t.Fatalf("effective cycles = %v, want 100", eff)
	}
}

func TestDrainRespectsWallPower(t *testing.T) {
	b := NewBattery(1000)
	m := NewMachine(MachineConfig{
		Name:        "m",
		SpeedMHz:    100,
		Power:       PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
		OnWallPower: true,
		Battery:     b,
	})
	if j := m.DrainCompute(time.Second); j != 10 {
		t.Fatalf("wall-power drain reported %v J, want 10", j)
	}
	if got := b.RemainingJoules(); got != 1000 {
		t.Fatalf("battery drained on wall power: %v", got)
	}
	m.SetWallPower(false)
	if j := m.DrainCompute(2 * time.Second); j != 20 {
		t.Fatalf("battery drain reported %v J, want 20", j)
	}
	if got := b.RemainingJoules(); got != 980 {
		t.Fatalf("battery remaining = %v, want 980", got)
	}
	if j := m.DrainIdle(time.Second); j != 1 {
		t.Fatalf("idle drain = %v, want 1", j)
	}
	if j := m.DrainNetwork(time.Second); j != 2 {
		t.Fatalf("net drain = %v, want 2", j)
	}
}

func TestChargeCyclesAccumulates(t *testing.T) {
	m := NewMachine(MachineConfig{Name: "m", SpeedMHz: 100})
	m.ChargeCycles(10)
	m.ChargeCycles(-5) // ignored
	m.ChargeCycles(2.5)
	if got := m.CycleCount(); got != 12.5 {
		t.Fatalf("cycle count = %v, want 12.5", got)
	}
}

func TestComputeDemandArithmetic(t *testing.T) {
	a := ComputeDemand{IntegerMegacycles: 1, FloatMegacycles: 2}
	b := ComputeDemand{IntegerMegacycles: 3, FloatMegacycles: 4}
	sum := a.Add(b)
	if sum.IntegerMegacycles != 4 || sum.FloatMegacycles != 6 {
		t.Fatalf("Add = %+v", sum)
	}
	sc := a.Scale(2)
	if sc.IntegerMegacycles != 2 || sc.FloatMegacycles != 4 {
		t.Fatalf("Scale = %+v", sc)
	}
	if a.Total() != 3 {
		t.Fatalf("Total = %v", a.Total())
	}
	if s := a.String(); s == "" {
		t.Fatal("String() empty")
	}
}

// Property: compute time is monotone non-decreasing in demand and
// non-increasing in machine speed.
func TestComputeTimeMonotonicityProperty(t *testing.T) {
	f := func(intMc, fpMc uint16, speed uint8) bool {
		mhz := float64(speed%200) + 50
		m1 := NewMachine(MachineConfig{Name: "a", SpeedMHz: mhz})
		m2 := NewMachine(MachineConfig{Name: "b", SpeedMHz: mhz * 2})
		d := ComputeDemand{
			IntegerMegacycles: float64(intMc),
			FloatMegacycles:   float64(fpMc),
		}
		bigger := d.Add(ComputeDemand{IntegerMegacycles: 1})
		t1, _ := m1.ComputeTime(d)
		t1b, _ := m1.ComputeTime(bigger)
		t2, _ := m2.ComputeTime(d)
		return t1b >= t1 && t2 <= t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformPresets(t *testing.T) {
	tests := []struct {
		name    string
		machine *Machine
		mhz     float64
		fp      float64
	}{
		{name: "itsy", machine: NewItsy(), mhz: 206, fp: 4},
		{name: "t20", machine: NewT20(), mhz: 700, fp: 1},
		{name: "560x", machine: New560X(), mhz: 233, fp: 1},
		{name: "serverA", machine: NewServerA(), mhz: 400, fp: 1},
		{name: "serverB", machine: NewServerB(), mhz: 933, fp: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.machine.Name() != tt.name {
				t.Errorf("name = %q, want %q", tt.machine.Name(), tt.name)
			}
			if tt.machine.SpeedMHz() != tt.mhz {
				t.Errorf("speed = %v, want %v", tt.machine.SpeedMHz(), tt.mhz)
			}
			if tt.machine.FPPenalty() != tt.fp {
				t.Errorf("fp penalty = %v, want %v", tt.machine.FPPenalty(), tt.fp)
			}
		})
	}
	if NewItsy().Battery() == nil || New560X().Battery() == nil {
		t.Error("clients must have batteries")
	}
	if NewT20().Battery() != nil {
		t.Error("T20 server should not have a battery")
	}
}
