// Package coda implements the distributed file system substrate Spectra
// depends on, modeled after the Coda file system (Kistler & Satyanarayanan):
// file servers organize files into volumes; each machine runs a cache
// manager that caches whole files, buffers modifications while weakly
// connected, and reintegrates them to servers at volume granularity.
// Spectra interacts with it to (a) learn which files are cached, (b) predict
// cache-miss fetch costs, and (c) force reintegration of dirty volumes
// before remote execution so that remote operations observe client writes.
//
// The package is deliberately metadata-based: it tracks file sizes and
// versions, not contents, because Spectra's decisions depend only on byte
// counts and freshness.
package coda

import (
	"errors"
	"fmt"
	"sync"
)

// Errors callers can match.
var (
	// ErrNotFound indicates the path is unknown to the file servers.
	ErrNotFound = errors.New("coda: file not found")
	// ErrNoVolume indicates an unknown volume.
	ErrNoVolume = errors.New("coda: volume not found")
	// ErrDisconnected indicates a cache miss while disconnected.
	ErrDisconnected = errors.New("coda: disconnected cache miss")
)

// FileServer is a Coda file server holding a set of volumes.
type FileServer struct {
	mu sync.Mutex

	volumes map[string]*volume
	byPath  map[string]string // path -> volume name
}

type volume struct {
	name  string
	files map[string]*serverFile
}

type serverFile struct {
	sizeBytes int64
	version   uint64
}

// FileInfo describes a file as known to the servers.
type FileInfo struct {
	Path      string
	Volume    string
	SizeBytes int64
	Version   uint64
}

// NewFileServer returns an empty file server.
func NewFileServer() *FileServer {
	return &FileServer{
		volumes: make(map[string]*volume),
		byPath:  make(map[string]string),
	}
}

// CreateVolume creates a volume if it does not already exist.
func (s *FileServer) CreateVolume(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.volumes[name]; !ok {
		s.volumes[name] = &volume{name: name, files: make(map[string]*serverFile)}
	}
}

// Store creates or replaces a file in a volume, bumping its version.
// The volume is created if needed.
func (s *FileServer) Store(volumeName, path string, sizeBytes int64) {
	if sizeBytes < 0 {
		sizeBytes = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[volumeName]
	if !ok {
		v = &volume{name: volumeName, files: make(map[string]*serverFile)}
		s.volumes[volumeName] = v
	}
	f, ok := v.files[path]
	if !ok {
		f = &serverFile{}
		v.files[path] = f
	}
	f.sizeBytes = sizeBytes
	f.version++
	s.byPath[path] = volumeName
}

// Lookup returns server metadata for a path.
func (s *FileServer) Lookup(path string) (FileInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookupLocked(path)
}

func (s *FileServer) lookupLocked(path string) (FileInfo, error) {
	vname, ok := s.byPath[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("lookup %q: %w", path, ErrNotFound)
	}
	f := s.volumes[vname].files[path]
	return FileInfo{
		Path:      path,
		Volume:    vname,
		SizeBytes: f.sizeBytes,
		Version:   f.version,
	}, nil
}

// VolumeOf returns the volume containing a path.
func (s *FileServer) VolumeOf(path string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vname, ok := s.byPath[path]
	if !ok {
		return "", fmt.Errorf("volume of %q: %w", path, ErrNotFound)
	}
	return vname, nil
}

// VolumeFiles lists the files of a volume.
func (s *FileServer) VolumeFiles(volumeName string) ([]FileInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[volumeName]
	if !ok {
		return nil, fmt.Errorf("volume %q: %w", volumeName, ErrNoVolume)
	}
	out := make([]FileInfo, 0, len(v.files))
	for path, f := range v.files {
		out = append(out, FileInfo{
			Path:      path,
			Volume:    volumeName,
			SizeBytes: f.sizeBytes,
			Version:   f.version,
		})
	}
	return out, nil
}
