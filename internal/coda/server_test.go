package coda

import (
	"errors"
	"testing"
)

func TestServerStoreAndLookup(t *testing.T) {
	s := NewFileServer()
	s.Store("speech", "/coda/speech/lm-full.bin", 277*1024)
	info, err := s.Lookup("/coda/speech/lm-full.bin")
	if err != nil {
		t.Fatal(err)
	}
	if info.Volume != "speech" || info.SizeBytes != 277*1024 || info.Version != 1 {
		t.Fatalf("info = %+v", info)
	}
}

func TestServerLookupUnknown(t *testing.T) {
	s := NewFileServer()
	if _, err := s.Lookup("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err := s.VolumeOf("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("VolumeOf: want ErrNotFound, got %v", err)
	}
}

func TestServerVersionBumpsOnStore(t *testing.T) {
	s := NewFileServer()
	s.Store("v", "/f", 10)
	s.Store("v", "/f", 20)
	info, err := s.Lookup("/f")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.SizeBytes != 20 {
		t.Fatalf("info = %+v, want version 2 size 20", info)
	}
}

func TestServerVolumeFiles(t *testing.T) {
	s := NewFileServer()
	s.CreateVolume("docs")
	s.Store("docs", "/docs/a.tex", 100)
	s.Store("docs", "/docs/b.sty", 200)
	files, err := s.VolumeFiles("docs")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files = %d, want 2", len(files))
	}
	if _, err := s.VolumeFiles("absent"); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("want ErrNoVolume, got %v", err)
	}
}

func TestServerNegativeSizeClamped(t *testing.T) {
	s := NewFileServer()
	s.Store("v", "/f", -5)
	info, err := s.Lookup("/f")
	if err != nil {
		t.Fatal(err)
	}
	if info.SizeBytes != 0 {
		t.Fatalf("size = %d, want 0", info.SizeBytes)
	}
}

func TestServerCreateVolumeIdempotent(t *testing.T) {
	s := NewFileServer()
	s.CreateVolume("v")
	s.Store("v", "/f", 1)
	s.CreateVolume("v") // must not wipe files
	if _, err := s.Lookup("/f"); err != nil {
		t.Fatalf("file lost after CreateVolume: %v", err)
	}
}
