package coda

import (
	"testing"
)

func TestHoardProfileOrdering(t *testing.T) {
	p := NewHoardProfile()
	p.Add("/b", 5)
	p.Add("/a", 5)
	p.Add("/c", 9)
	p.Add("/d", 0) // clamped to 1
	p.Add("", 3)   // ignored

	entries := p.Entries()
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	wantOrder := []string{"/c", "/a", "/b", "/d"}
	for i, want := range wantOrder {
		if entries[i].Path != want {
			t.Fatalf("order[%d] = %s, want %s (full: %+v)", i, entries[i].Path, want, entries)
		}
	}
	if entries[3].Priority != 1 {
		t.Fatalf("clamped priority = %d", entries[3].Priority)
	}

	p.Remove("/c")
	if p.Len() != 3 {
		t.Fatalf("len after remove = %d", p.Len())
	}
	p.Add("/a", 1) // reprioritize
	if got := p.Entries()[0].Path; got != "/b" {
		t.Fatalf("after reprioritize, top = %s", got)
	}
}

func TestHoardWalkFetchesAndHits(t *testing.T) {
	s := NewFileServer()
	s.Store("v", "/f1", 100)
	s.Store("v", "/f2", 200)
	c := NewClient("c", s, 0)

	p := NewHoardProfile()
	p.Add("/f1", 10)
	p.Add("/f2", 5)

	res, err := c.HoardWalk(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched != 2 || res.FetchedBytes != 300 || res.Hits != 0 {
		t.Fatalf("first walk = %+v", res)
	}

	// Second walk: everything cached.
	res, err = c.HoardWalk(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched != 0 || res.Hits != 2 {
		t.Fatalf("second walk = %+v", res)
	}

	// A server-side update makes /f1 stale; the walk refreshes it.
	s.Store("v", "/f1", 150)
	res, err = c.HoardWalk(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched != 1 || res.FetchedBytes != 150 || res.Hits != 1 {
		t.Fatalf("refresh walk = %+v", res)
	}
}

func TestHoardWalkUnknownPath(t *testing.T) {
	s := NewFileServer()
	s.Store("v", "/known", 10)
	c := NewClient("c", s, 0)
	p := NewHoardProfile()
	p.Add("/known", 1)
	p.Add("/ghost", 9)

	res, err := c.HoardWalk(p)
	if err == nil {
		t.Fatal("walk with unknown path should error while connected")
	}
	if len(res.Skipped) != 1 || res.Skipped[0] != "/ghost" {
		t.Fatalf("skipped = %v", res.Skipped)
	}
	// The known entry was still hoarded.
	if !c.IsCached("/known") {
		t.Fatal("known entry not hoarded")
	}
}

func TestHoardWalkDisconnectedTolerated(t *testing.T) {
	s := NewFileServer()
	s.Store("v", "/cached", 10)
	s.Store("v", "/uncached", 20)
	c := NewClient("c", s, 0)
	if err := c.Warm("/cached"); err != nil {
		t.Fatal(err)
	}
	c.SetMode(Disconnected)

	p := NewHoardProfile()
	p.Add("/cached", 2)
	p.Add("/uncached", 1)
	res, err := c.HoardWalk(p)
	if err != nil {
		t.Fatalf("disconnected walk should tolerate misses: %v", err)
	}
	if res.Hits != 1 || len(res.Skipped) != 1 {
		t.Fatalf("disconnected walk = %+v", res)
	}
}
