package coda

import (
	"fmt"
	"sort"
	"sync"
)

// HoardEntry is one line of a hoard profile: a path the user wants cached,
// with a priority. Coda's hoarding keeps high-priority files cached so that
// disconnected and weakly-connected operation finds them locally — the
// mechanism behind the warm caches Spectra's experiments assume.
type HoardEntry struct {
	Path string
	// Priority orders fetches and eviction protection; higher is more
	// important. Must be positive.
	Priority int
}

// HoardProfile is a per-client set of hoard entries.
type HoardProfile struct {
	mu      sync.Mutex
	entries map[string]int
}

// NewHoardProfile returns an empty profile.
func NewHoardProfile() *HoardProfile {
	return &HoardProfile{entries: make(map[string]int)}
}

// Add records (or reprioritizes) a hoard entry. Non-positive priorities
// are clamped to 1.
func (p *HoardProfile) Add(path string, priority int) {
	if path == "" {
		return
	}
	if priority < 1 {
		priority = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries[path] = priority
}

// Remove deletes a hoard entry.
func (p *HoardProfile) Remove(path string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.entries, path)
}

// Entries returns the profile sorted by descending priority, ties broken
// by path for determinism.
func (p *HoardProfile) Entries() []HoardEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]HoardEntry, 0, len(p.entries))
	for path, prio := range p.entries {
		out = append(out, HoardEntry{Path: path, Priority: prio})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Len returns the number of entries.
func (p *HoardProfile) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// HoardWalkResult summarizes one hoard walk.
type HoardWalkResult struct {
	// Fetched counts files brought into (or refreshed in) the cache.
	Fetched int
	// FetchedBytes is the data moved from the file servers.
	FetchedBytes int64
	// Hits counts entries already cached and fresh.
	Hits int
	// Skipped lists entries that could not be hoarded (unknown paths, or
	// misses while disconnected).
	Skipped []string
}

// HoardWalk refreshes the cache against a profile, in priority order, as
// Coda's periodic hoard walks do. While disconnected, only already-cached
// entries count; misses are reported as skipped rather than failing the
// walk.
func (c *Client) HoardWalk(profile *HoardProfile) (HoardWalkResult, error) {
	var res HoardWalkResult
	for _, e := range profile.Entries() {
		r, err := c.Read(e.Path)
		if err != nil {
			res.Skipped = append(res.Skipped, e.Path)
			continue
		}
		if r.Hit {
			res.Hits++
			continue
		}
		res.Fetched++
		res.FetchedBytes += r.FetchedBytes
	}
	if len(res.Skipped) > 0 && c.Mode() != Disconnected {
		return res, fmt.Errorf("coda: hoard walk skipped %d entries", len(res.Skipped))
	}
	return res, nil
}
