package coda

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newTestFS() (*FileServer, *Client) {
	s := NewFileServer()
	s.Store("speech", "/coda/speech/lm-full.bin", 1000)
	s.Store("docs", "/coda/docs/small.tex", 70)
	s.Store("docs", "/coda/docs/big.tex", 500)
	return s, NewClient("client", s, 0)
}

func TestReadMissFetchesThenHits(t *testing.T) {
	_, c := newTestFS()
	r1, err := c.Read("/coda/speech/lm-full.bin")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hit || r1.FetchedBytes != 1000 || r1.SizeBytes != 1000 {
		t.Fatalf("first read = %+v", r1)
	}
	r2, err := c.Read("/coda/speech/lm-full.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Hit || r2.FetchedBytes != 0 {
		t.Fatalf("second read = %+v, want cache hit", r2)
	}
}

func TestReadUnknownFile(t *testing.T) {
	_, c := newTestFS()
	if _, err := c.Read("/absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestDisconnectedReads(t *testing.T) {
	_, c := newTestFS()
	if err := c.Warm("/coda/docs/small.tex"); err != nil {
		t.Fatal(err)
	}
	c.SetMode(Disconnected)
	// Cached file: served.
	r, err := c.Read("/coda/docs/small.tex")
	if err != nil || !r.Hit {
		t.Fatalf("disconnected cached read = %+v, %v", r, err)
	}
	// Uncached file: disconnected miss.
	if _, err := c.Read("/coda/docs/big.tex"); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
}

func TestStrongWriteThrough(t *testing.T) {
	s, c := newTestFS()
	w, err := c.Write("/coda/docs/small.tex", 90)
	if err != nil {
		t.Fatal(err)
	}
	if w.Buffered || w.ThroughBytes != 90 {
		t.Fatalf("strong write = %+v", w)
	}
	info, err := s.Lookup("/coda/docs/small.tex")
	if err != nil {
		t.Fatal(err)
	}
	if info.SizeBytes != 90 || info.Version != 2 {
		t.Fatalf("server info = %+v", info)
	}
	if c.IsDirty("/coda/docs/small.tex") {
		t.Fatal("write-through left file dirty")
	}
}

func TestWeakWriteBuffersAndReintegrates(t *testing.T) {
	s, c := newTestFS()
	c.SetMode(Weak)
	w, err := c.Write("/coda/docs/small.tex", 70)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Buffered || w.ThroughBytes != 0 {
		t.Fatalf("weak write = %+v", w)
	}
	if !c.IsDirty("/coda/docs/small.tex") {
		t.Fatal("file should be dirty")
	}
	if got := c.DirtyVolumes(); len(got) != 1 || got[0] != "docs" {
		t.Fatalf("dirty volumes = %v", got)
	}
	if got := c.VolumeDirtyBytes("docs"); got != 70 {
		t.Fatalf("dirty bytes = %d, want 70", got)
	}
	// The server must not see the modification yet.
	info, _ := s.Lookup("/coda/docs/small.tex")
	if info.Version != 1 {
		t.Fatalf("buffered write leaked to server: %+v", info)
	}

	res, err := c.Reintegrate("docs")
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesSent != 70 || res.Files != 1 {
		t.Fatalf("reintegration = %+v", res)
	}
	info, _ = s.Lookup("/coda/docs/small.tex")
	if info.Version != 2 {
		t.Fatalf("reintegration did not reach server: %+v", info)
	}
	if c.IsDirty("/coda/docs/small.tex") {
		t.Fatal("file still dirty after reintegration")
	}
	if got := c.VolumeDirtyBytes("docs"); got != 0 {
		t.Fatalf("dirty bytes after reintegration = %d", got)
	}
}

func TestReintegrationVisibilityAcrossClients(t *testing.T) {
	s, c1 := newTestFS()
	c2 := NewClient("other", s, 0)
	if err := c2.Warm("/coda/docs/small.tex"); err != nil {
		t.Fatal(err)
	}

	c1.SetMode(Weak)
	if _, err := c1.Write("/coda/docs/small.tex", 75); err != nil {
		t.Fatal(err)
	}
	// Before reintegration c2 still sees the old version as fresh.
	if !c2.IsCached("/coda/docs/small.tex") {
		t.Fatal("c2 should consider old version fresh before reintegration")
	}
	if _, err := c1.Reintegrate("docs"); err != nil {
		t.Fatal(err)
	}
	// After reintegration c2's copy is stale: next read refetches.
	if c2.IsCached("/coda/docs/small.tex") {
		t.Fatal("c2 copy should be stale after reintegration")
	}
	r, err := c2.Read("/coda/docs/small.tex")
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit || r.FetchedBytes != 75 {
		t.Fatalf("c2 read after reintegration = %+v, want 75-byte fetch", r)
	}
}

func TestVolumeGranularityReintegration(t *testing.T) {
	s := NewFileServer()
	s.Store("docs", "/docs/a", 10)
	s.Store("docs", "/docs/b", 20)
	s.Store("misc", "/misc/c", 30)
	c := NewClient("c", s, 0)
	c.SetMode(Weak)
	for path, size := range map[string]int64{"/docs/a": 11, "/docs/b": 22, "/misc/c": 33} {
		if _, err := c.Write(path, size); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Reintegrate("docs")
	if err != nil {
		t.Fatal(err)
	}
	// Both docs files go; misc stays dirty.
	if res.Files != 2 || res.BytesSent != 33 {
		t.Fatalf("reintegration = %+v, want 2 files 33 bytes", res)
	}
	if !c.IsDirty("/misc/c") {
		t.Fatal("misc volume should remain dirty")
	}
	all, err := c.ReintegrateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Volume != "misc" || all[0].BytesSent != 33 {
		t.Fatalf("ReintegrateAll = %+v", all)
	}
}

func TestWeakWriteOfNewFileGoesToDefaultVolume(t *testing.T) {
	s := NewFileServer()
	c := NewClient("c", s, 0)
	c.SetMode(Weak)
	if _, err := c.Write("/new/file", 42); err != nil {
		t.Fatal(err)
	}
	if got := c.DirtyVolumes(); len(got) != 1 || got[0] != "default" {
		t.Fatalf("dirty volumes = %v", got)
	}
	if _, err := c.Reintegrate("default"); err != nil {
		t.Fatal(err)
	}
	info, err := s.Lookup("/new/file")
	if err != nil {
		t.Fatal(err)
	}
	if info.Volume != "default" || info.SizeBytes != 42 {
		t.Fatalf("server info = %+v", info)
	}
}

func TestEvict(t *testing.T) {
	_, c := newTestFS()
	if err := c.Warm("/coda/speech/lm-full.bin"); err != nil {
		t.Fatal(err)
	}
	if !c.IsCached("/coda/speech/lm-full.bin") {
		t.Fatal("file should be cached")
	}
	if !c.Evict("/coda/speech/lm-full.bin") {
		t.Fatal("evict failed")
	}
	if c.IsCached("/coda/speech/lm-full.bin") {
		t.Fatal("file still cached after evict")
	}
	// Evicting a dirty file must fail.
	c.SetMode(Weak)
	if _, err := c.Write("/coda/docs/small.tex", 70); err != nil {
		t.Fatal(err)
	}
	if c.Evict("/coda/docs/small.tex") {
		t.Fatal("dirty file must not be evictable")
	}
	if c.Evict("/never/seen") {
		t.Fatal("evicting unknown path should report false")
	}
}

func TestCachedPaths(t *testing.T) {
	_, c := newTestFS()
	if err := c.Warm("/coda/docs/small.tex"); err != nil {
		t.Fatal(err)
	}
	if err := c.Warm("/coda/docs/big.tex"); err != nil {
		t.Fatal(err)
	}
	got := c.CachedPaths()
	if len(got) != 2 || !got["/coda/docs/small.tex"] || !got["/coda/docs/big.tex"] {
		t.Fatalf("cached paths = %v", got)
	}
}

func TestLRUCapacityEviction(t *testing.T) {
	s := NewFileServer()
	for i := 0; i < 5; i++ {
		s.Store("v", fmt.Sprintf("/f%d", i), 100)
	}
	c := NewClient("c", s, 250)
	for i := 0; i < 3; i++ {
		if err := c.Warm(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.UsedBytes() > 250 {
		t.Fatalf("cache over capacity: %d", c.UsedBytes())
	}
	// f0 is oldest and must have been evicted.
	if c.IsCached("/f0") {
		t.Fatal("f0 should have been evicted")
	}
	if !c.IsCached("/f1") || !c.IsCached("/f2") {
		t.Fatal("recent files evicted")
	}
}

func TestLRUDoesNotEvictDirty(t *testing.T) {
	s := NewFileServer()
	s.Store("v", "/a", 100)
	s.Store("v", "/b", 100)
	c := NewClient("c", s, 150)
	c.SetMode(Weak)
	if _, err := c.Write("/a", 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Warm("/b"); err != nil {
		t.Fatal(err)
	}
	// /a is dirty and may not be evicted even though we are over capacity.
	if !c.IsDirty("/a") {
		t.Fatal("/a should be dirty and retained")
	}
}

func TestConnectionModeString(t *testing.T) {
	tests := []struct {
		give ConnectionMode
		want string
	}{
		{Strong, "strong"},
		{Weak, "weak"},
		{Disconnected, "disconnected"},
		{ConnectionMode(99), "ConnectionMode(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

// Property: after any sequence of weak writes followed by ReintegrateAll,
// no volume remains dirty and the server sees every final size.
func TestReintegrateAllClearsProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewFileServer()
		for i := range sizes {
			s.Store(fmt.Sprintf("vol%d", i%3), fmt.Sprintf("/f%d", i), 1)
		}
		c := NewClient("c", s, 0)
		c.SetMode(Weak)
		for i, size := range sizes {
			if _, err := c.Write(fmt.Sprintf("/f%d", i), int64(size)); err != nil {
				return false
			}
		}
		if _, err := c.ReintegrateAll(); err != nil {
			return false
		}
		if len(c.DirtyVolumes()) != 0 {
			return false
		}
		for i, size := range sizes {
			info, err := s.Lookup(fmt.Sprintf("/f%d", i))
			if err != nil || info.SizeBytes != int64(size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
