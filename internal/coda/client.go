package coda

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
)

// ConnectionMode describes a cache manager's connectivity to the file
// servers, following Coda's adaptation levels.
type ConnectionMode int

// Connection modes. Strongly connected clients write through to servers;
// weakly connected clients buffer modifications for background
// reintegration; disconnected clients serve only cache hits.
const (
	Strong ConnectionMode = iota + 1
	Weak
	Disconnected
)

// String implements fmt.Stringer.
func (m ConnectionMode) String() string {
	switch m {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	case Disconnected:
		return "disconnected"
	default:
		return fmt.Sprintf("ConnectionMode(%d)", int(m))
	}
}

// Client is a per-machine Coda cache manager ("Venus").
type Client struct {
	mu sync.Mutex

	name   string
	server *FileServer
	mode   ConnectionMode

	cache map[string]*cacheEntry
	// lru tracks entry recency; front = most recently used. Used only when
	// capacityBytes > 0.
	lru           *list.List
	capacityBytes int64
	usedBytes     int64
}

type cacheEntry struct {
	path       string
	sizeBytes  int64
	version    uint64
	dirty      bool
	dirtyBytes int64
	el         *list.Element
}

// ReadResult reports the outcome of a file read.
type ReadResult struct {
	// SizeBytes is the size of the file read.
	SizeBytes int64
	// FetchedBytes is how much data had to come from the file server
	// (0 on a cache hit).
	FetchedBytes int64
	// Hit reports whether the read was served entirely from cache.
	Hit bool
}

// WriteResult reports the outcome of a file write.
type WriteResult struct {
	// ThroughBytes is how much data was synchronously written through to
	// the server (strong connectivity only).
	ThroughBytes int64
	// Buffered reports whether the modification was buffered locally.
	Buffered bool
}

// ReintegrationResult reports a volume reintegration.
type ReintegrationResult struct {
	Volume    string
	BytesSent int64
	Files     int
}

// NewClient returns a cache manager for one machine. capacityBytes of 0
// means an unbounded cache (the experiments evict files explicitly).
func NewClient(name string, server *FileServer, capacityBytes int64) *Client {
	if capacityBytes < 0 {
		capacityBytes = 0
	}
	return &Client{
		name:          name,
		server:        server,
		mode:          Strong,
		cache:         make(map[string]*cacheEntry),
		lru:           list.New(),
		capacityBytes: capacityBytes,
	}
}

// Name returns the cache manager's name.
func (c *Client) Name() string { return c.name }

// Mode returns the current connection mode.
func (c *Client) Mode() ConnectionMode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// SetMode changes the connection mode.
func (c *Client) SetMode(m ConnectionMode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mode = m
}

// Read opens a file for reading. On a miss (or a stale cached version) the
// file is fetched from the server, unless disconnected. Reads of locally
// dirty files are served from the buffered copy.
func (c *Client) Read(path string) (ReadResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	e := c.cache[path]
	if e != nil && e.dirty {
		c.touchLocked(e)
		return ReadResult{SizeBytes: e.sizeBytes, Hit: true}, nil
	}

	info, err := c.server.Lookup(path)
	if err != nil {
		if e != nil {
			// Server no longer knows the file but we have a cached copy
			// (e.g. disconnected create by another client); serve it.
			c.touchLocked(e)
			return ReadResult{SizeBytes: e.sizeBytes, Hit: true}, nil
		}
		return ReadResult{}, err
	}

	if e != nil && e.version == info.Version {
		c.touchLocked(e)
		return ReadResult{SizeBytes: e.sizeBytes, Hit: true}, nil
	}

	if c.mode == Disconnected {
		if e != nil {
			// Stale but reachable copy; disconnected operation serves it.
			c.touchLocked(e)
			return ReadResult{SizeBytes: e.sizeBytes, Hit: true}, nil
		}
		return ReadResult{}, fmt.Errorf("read %q: %w", path, ErrDisconnected)
	}

	c.installLocked(path, info.SizeBytes, info.Version, false)
	return ReadResult{SizeBytes: info.SizeBytes, FetchedBytes: info.SizeBytes}, nil
}

// Write records a whole-file modification of the given size. Under strong
// connectivity the data is written through to the server immediately;
// otherwise it is buffered for later reintegration.
func (c *Client) Write(path string, sizeBytes int64) (WriteResult, error) {
	if sizeBytes < 0 {
		sizeBytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	if c.mode == Strong {
		vname, err := c.server.VolumeOf(path)
		if err != nil {
			// New file: place it in the default volume.
			vname = "default"
		}
		c.server.Store(vname, path, sizeBytes)
		info, err := c.server.Lookup(path)
		if err != nil {
			return WriteResult{}, fmt.Errorf("coda: write-through lookup: %w", err)
		}
		c.installLocked(path, sizeBytes, info.Version, false)
		return WriteResult{ThroughBytes: sizeBytes}, nil
	}

	e := c.cache[path]
	if e == nil {
		e = c.installLocked(path, sizeBytes, 0, true)
	}
	c.accountLocked(e, sizeBytes)
	e.dirty = true
	e.dirtyBytes = sizeBytes
	c.touchLocked(e)
	return WriteResult{Buffered: true}, nil
}

// Reintegrate pushes all buffered modifications belonging to the given
// volume to the server, making them visible to other clients. Coda
// reintegrates at volume granularity, so every dirty file in the volume is
// sent (paper §3.5).
func (c *Client) Reintegrate(volumeName string) (ReintegrationResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	res := ReintegrationResult{Volume: volumeName}
	for path, e := range c.cache {
		if !e.dirty {
			continue
		}
		vname, err := c.server.VolumeOf(path)
		if err != nil {
			vname = "default"
		}
		if vname != volumeName {
			continue
		}
		c.server.Store(vname, path, e.sizeBytes)
		info, err := c.server.Lookup(path)
		if err != nil {
			return res, fmt.Errorf("coda: reintegrate lookup: %w", err)
		}
		e.dirty = false
		e.version = info.Version
		res.BytesSent += e.dirtyBytes
		e.dirtyBytes = 0
		res.Files++
	}
	return res, nil
}

// ReintegrateAll reintegrates every dirty volume and returns the per-volume
// results.
func (c *Client) ReintegrateAll() ([]ReintegrationResult, error) {
	var out []ReintegrationResult
	for _, v := range c.DirtyVolumes() {
		r, err := c.Reintegrate(v)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// VolumeOf maps a path to its volume, as known by the file servers.
func (c *Client) VolumeOf(path string) (string, error) {
	return c.server.VolumeOf(path)
}

// DirtyVolumes lists volumes with buffered modifications, sorted
// deterministically.
func (c *Client) DirtyVolumes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()

	seen := make(map[string]bool)
	var out []string
	for path, e := range c.cache {
		if !e.dirty {
			continue
		}
		vname, err := c.server.VolumeOf(path)
		if err != nil {
			vname = "default"
		}
		if !seen[vname] {
			seen[vname] = true
			out = append(out, vname)
		}
	}
	sort.Strings(out)
	return out
}

// VolumeDirtyBytes returns the buffered modification bytes for a volume —
// the amount a reintegration would transfer.
func (c *Client) VolumeDirtyBytes(volumeName string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()

	var total int64
	for path, e := range c.cache {
		if !e.dirty {
			continue
		}
		vname, err := c.server.VolumeOf(path)
		if err != nil {
			vname = "default"
		}
		if vname == volumeName {
			total += e.dirtyBytes
		}
	}
	return total
}

// IsDirty reports whether the path has buffered local modifications.
func (c *Client) IsDirty(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.cache[path]
	return e != nil && e.dirty
}

// IsCached reports whether the path is in the cache with a current version.
// Stale entries count as uncached because they would require a fetch.
func (c *Client) IsCached(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.cache[path]
	if e == nil {
		return false
	}
	if e.dirty {
		return true
	}
	info, err := c.server.Lookup(path)
	if err != nil {
		return true // cached copy of a server-unknown file
	}
	return e.version == info.Version
}

// CachedPaths returns the set of currently cached (fresh or dirty) paths.
// The paper notes Coda's original interface dumped the whole cache state;
// this is the efficient replacement Spectra's file-cache monitor consumes.
func (c *Client) CachedPaths() map[string]bool {
	c.mu.Lock()
	paths := make([]string, 0, len(c.cache))
	for path := range c.cache {
		paths = append(paths, path)
	}
	c.mu.Unlock()

	out := make(map[string]bool, len(paths))
	for _, p := range paths {
		if c.IsCached(p) {
			out[p] = true
		}
	}
	return out
}

// Evict removes a path from the cache, as the experiments do to flush the
// speech language model or server B's Latex inputs. Dirty entries are not
// evicted (their data would be lost); Evict reports whether the entry was
// removed.
func (c *Client) Evict(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.cache[path]
	if e == nil || e.dirty {
		return false
	}
	c.removeLocked(e)
	return true
}

// UsedBytes returns the bytes of cached data.
func (c *Client) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usedBytes
}

// Len returns the number of cached entries.
func (c *Client) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// Warm fetches a path into the cache (a hoard walk for one file).
func (c *Client) Warm(path string) error {
	_, err := c.Read(path)
	return err
}

// installLocked inserts or refreshes a cache entry and enforces capacity.
func (c *Client) installLocked(path string, size int64, version uint64, dirty bool) *cacheEntry {
	e := c.cache[path]
	if e == nil {
		e = &cacheEntry{path: path}
		c.cache[path] = e
		e.el = c.lru.PushFront(e)
	}
	c.accountLocked(e, size)
	e.version = version
	e.dirty = dirty
	c.touchLocked(e)
	c.enforceCapacityLocked()
	return e
}

// accountLocked updates usedBytes for an entry whose size changes.
func (c *Client) accountLocked(e *cacheEntry, newSize int64) {
	c.usedBytes += newSize - e.sizeBytes
	e.sizeBytes = newSize
}

func (c *Client) touchLocked(e *cacheEntry) {
	if e.el != nil {
		c.lru.MoveToFront(e.el)
	}
}

func (c *Client) removeLocked(e *cacheEntry) {
	if e.el != nil {
		c.lru.Remove(e.el)
	}
	c.usedBytes -= e.sizeBytes
	delete(c.cache, e.path)
}

// enforceCapacityLocked evicts clean LRU entries until under capacity.
func (c *Client) enforceCapacityLocked() {
	if c.capacityBytes <= 0 {
		return
	}
	for c.usedBytes > c.capacityBytes {
		victim := c.oldestCleanLocked()
		if victim == nil {
			return // everything dirty; nothing evictable
		}
		c.removeLocked(victim)
	}
}

func (c *Client) oldestCleanLocked() *cacheEntry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e, _ := el.Value.(*cacheEntry)
		if e != nil && !e.dirty {
			return e
		}
	}
	return nil
}
