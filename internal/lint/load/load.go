// Package load turns `go list` package metadata into type-checked syntax
// trees for the lint suite. It is a minimal stand-in for
// golang.org/x/tools/go/packages built only on the standard library: the
// go command enumerates the import closure in dependency order
// (`go list -deps -json`), and go/types checks each package from source,
// resolving imports against the packages checked before it.
//
// Checked packages are cached per process (keyed by source directory), so
// repeated loads — every analyzer test loads its golden package — pay for
// the standard-library closure only once.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// Package is one type-checked package.
type Package struct {
	// ImportPath is the package's canonical import path.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files is the parsed syntax of the package's non-test Go files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type resolution for Files (nil for dependency-only
	// packages, which are loaded solely so their importers resolve).
	Info *types.Info
}

// Program is the result of one Load: the requested root packages in
// dependency order, sharing one file set.
type Program struct {
	// Fset is the file set shared by every package in the program.
	Fset *token.FileSet
	// Roots are the packages matched by the load patterns, in dependency
	// order (imported packages come before their importers).
	Roots []*Package
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// cacheEntry is one checked package in the process-wide cache.
type cacheEntry struct {
	pkg *Package
}

var (
	mu sync.Mutex
	// fset is global so cached packages from earlier loads keep valid
	// positions in later programs.
	fset = token.NewFileSet()
	// byDir caches checked packages by absolute source directory. Keying by
	// directory (not import path) keeps distinct temporary test modules
	// that reuse an import path from colliding.
	byDir = make(map[string]*cacheEntry)
)

// Load lists patterns (e.g. "./...") relative to dir, then parses and
// type-checks every package in the import closure, dependencies first.
func Load(dir string, patterns ...string) (*Program, error) {
	mu.Lock()
	defer mu.Unlock()

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	prog := &Program{Fset: fset}
	// byPath maps import paths to checked packages for this program's
	// importer. Seeded from the cache as entries resolve.
	byPath := make(map[string]*Package, len(entries))
	imp := &mapImporter{pkgs: byPath}

	for _, e := range entries {
		if e.ImportPath == "unsafe" {
			continue
		}
		isRoot := !e.DepOnly
		absDir, err := filepath.Abs(e.Dir)
		if err != nil {
			return nil, err
		}
		if ce, ok := byDir[absDir]; ok && (!isRoot || ce.pkg.Info != nil) {
			byPath[e.ImportPath] = ce.pkg
			if isRoot {
				prog.Roots = append(prog.Roots, ce.pkg)
			}
			continue
		}
		pkg, err := check(e, absDir, isRoot, imp)
		if err != nil {
			return nil, err
		}
		byDir[absDir] = &cacheEntry{pkg: pkg}
		byPath[e.ImportPath] = pkg
		if isRoot {
			prog.Roots = append(prog.Roots, pkg)
		}
	}
	return prog, nil
}

// goList runs `go list -deps -json` and decodes the entry stream. Cgo is
// disabled so the pure-Go fallback file sets are listed and everything
// type-checks without a C toolchain.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Dir,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// check parses and type-checks one package. Roots get full type
// resolution info and comment-bearing syntax; dependencies are checked
// only deeply enough to export their API.
func check(e listEntry, absDir string, isRoot bool, imp types.Importer) (*Package, error) {
	mode := parser.SkipObjectResolution
	if isRoot {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(absDir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", e.ImportPath, err)
		}
		files = append(files, f)
	}
	var info *types.Info
	if isRoot {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
	}
	return &Package{
		ImportPath: e.ImportPath,
		Dir:        absDir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// mapImporter resolves imports against the packages checked so far.
type mapImporter struct {
	pkgs map[string]*Package
}

// Import implements types.Importer.
func (m *mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.pkgs[path]; ok {
		return p.Types, nil
	}
	// The standard library vendors golang.org/x dependencies: the entry is
	// listed as vendor/golang.org/x/..., but sources import the bare path.
	if p, ok := m.pkgs["vendor/"+path]; ok {
		return p.Types, nil
	}
	return nil, fmt.Errorf("load: import %q not in dependency closure", path)
}
