package load

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"

	"spectra/internal/lint/analysis"
	"spectra/internal/lint/callgraph"
)

// moduleRoot is the repo root relative to this package's directory, where
// `go test` runs the binary.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestLoadSinglePackage(t *testing.T) {
	prog, err := Load(moduleRoot(t), "./internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(prog.Roots))
	}
	p := prog.Roots[0]
	if p.ImportPath != "spectra/internal/obs" {
		t.Fatalf("import path = %q", p.ImportPath)
	}
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatalf("root package missing types, info, or files: %+v", p)
	}
	// Roots are parsed with comments so analyzers can see directives.
	commented := false
	for _, f := range p.Files {
		if len(f.Comments) > 0 {
			commented = true
			break
		}
	}
	if !commented {
		t.Fatal("root package parsed without comments")
	}
}

func TestLoadWildcard(t *testing.T) {
	prog, err := Load(moduleRoot(t), "./internal/lint/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Roots) < 5 {
		t.Fatalf("roots = %d, want >= 5 analyzer packages", len(prog.Roots))
	}
	for _, p := range prog.Roots {
		if p.Info == nil {
			t.Errorf("%s: loaded as root without full type info", p.ImportPath)
		}
	}
}

const (
	genvalPath = "spectra/internal/lint/load/testdata/src/genval"
	genusePath = "spectra/internal/lint/load/testdata/src/genuse"
)

// loadGenerics loads the two-package generics golden module (genuse
// imports and instantiates genval's type-parameterized declarations) and
// returns the packages.
func loadGenerics(t *testing.T) (prog *Program, genval, genuse *Package) {
	t.Helper()
	prog, err := Load(moduleRoot(t),
		"./internal/lint/load/testdata/src/genval",
		"./internal/lint/load/testdata/src/genuse")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(prog.Roots))
	}
	return prog, prog.Roots[0], prog.Roots[1]
}

func TestLoadGenerics(t *testing.T) {
	_, genval, genuse := loadGenerics(t)

	// Dependency order: the imported package comes before its importer.
	if genval.ImportPath != genvalPath || genuse.ImportPath != genusePath {
		t.Fatalf("root order = [%s %s], want genval before genuse",
			genval.ImportPath, genuse.ImportPath)
	}
	if genval.Info == nil || genuse.Info == nil {
		t.Fatal("generic roots loaded without full type info")
	}

	// The generic declarations type-check with their type parameters
	// intact.
	sum, ok := genval.Types.Scope().Lookup("Sum").(*types.Func)
	if !ok {
		t.Fatal("genval.Sum not in package scope")
	}
	if sum.Type().(*types.Signature).TypeParams().Len() != 1 {
		t.Fatalf("genval.Sum type params = %v, want 1", sum.Type())
	}

	// Cross-package instantiation resolves back to the one canonical
	// generic object: genuse's use of Sum IS genval's declaration.
	var sumUse *types.Func
	for _, f := range genuse.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "Sum" {
				if fn, ok := genuse.Info.Uses[id].(*types.Func); ok {
					sumUse = fn
				}
			}
			return true
		})
	}
	if sumUse == nil {
		t.Fatal("genuse: use of genval.Sum did not resolve to a *types.Func")
	}
	if sumUse != sum {
		t.Fatalf("genuse resolves Sum to %p, genval declares %p — object identity lost", sumUse, sum)
	}
}

// TestCallgraphGenerics checks the call graph over the instantiating
// package: inferred calls (Sum), explicitly instantiated calls
// (New[string, int]), and methods on an instantiated generic type
// (Put/Get) must all produce edges to genval's declarations.
func TestCallgraphGenerics(t *testing.T) {
	prog, _, genuse := loadGenerics(t)

	a := &analysis.Analyzer{Name: "test", Run: func(*analysis.Pass) error { return nil }}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      prog.Fset,
		Files:     genuse.Files,
		Pkg:       genuse.Types,
		TypesInfo: genuse.Info,
	}
	g := callgraph.Build(pass)

	useAll, _ := genuse.Types.Scope().Lookup("UseAll").(*types.Func)
	if useAll == nil {
		t.Fatal("genuse.UseAll not in package scope")
	}
	node := g.Node(useAll)
	if node == nil {
		t.Fatal("no call-graph node for genuse.UseAll")
	}
	callees := map[string]bool{}
	for _, e := range node.Calls {
		if e.Callee.Pkg() != nil && e.Callee.Pkg().Path() == genvalPath {
			callees[e.Callee.Name()] = true
		}
	}
	for _, want := range []string{"New", "Put", "Get", "Sum"} {
		if !callees[want] {
			t.Errorf("UseAll has no edge to genval.%s (got %v)", want, callees)
		}
	}
}

// genericsPkgFact and genericsObjFact are the named pointer payloads for
// the facts round trip below.
type genericsPkgFact struct{ Exports int }

type genericsObjFact struct{ Note string }

// TestFactsRoundTripAcrossPackages drives the facts lifecycle exactly as
// the driver does: one FactStore for the run, a pass over the dependency
// exporting a package fact and an object fact, then a pass over the
// importer reading both back — including the object fact through the
// importer's own resolution of the object, which only works because the
// loader keeps one canonical *types.Func per declaration.
func TestFactsRoundTripAcrossPackages(t *testing.T) {
	prog, genval, genuse := loadGenerics(t)

	a := &analysis.Analyzer{Name: "factcheck", Run: func(*analysis.Pass) error { return nil }}
	facts := analysis.NewFactStore()
	mkPass := func(p *Package) *analysis.Pass {
		return &analysis.Pass{
			Analyzer:  a,
			Fset:      prog.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
			Facts:     facts,
		}
	}

	// Pass 1: the dependency exports.
	dep := mkPass(genval)
	sum := genval.Types.Scope().Lookup("Sum")
	dep.ExportPackageFact(&genericsPkgFact{Exports: 4})
	dep.ExportObjectFact(sum, &genericsObjFact{Note: "pure"})

	// Pass 2: the importer reads back.
	use := mkPass(genuse)
	var pf genericsPkgFact
	if !use.ImportPackageFact(genvalPath, &pf) {
		t.Fatal("package fact on genval not visible from genuse's pass")
	}
	if pf.Exports != 4 {
		t.Fatalf("package fact = %+v, want Exports=4", pf)
	}

	// Resolve Sum the way an analyzer over genuse would: through its own
	// Uses table, not genval's scope.
	var sumUse types.Object
	for _, f := range genuse.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "Sum" {
				if o := genuse.Info.Uses[id]; o != nil {
					sumUse = o
				}
			}
			return true
		})
	}
	var of genericsObjFact
	if !use.ImportObjectFact(sumUse, &of) {
		t.Fatal("object fact on genval.Sum not visible through genuse's resolution of the object")
	}
	if of.Note != "pure" {
		t.Fatalf("object fact = %+v, want Note=pure", of)
	}

	// A fact of an unexported type/subject combination stays absent.
	if use.ImportObjectFact(genval.Types.Scope().Lookup("New"), &of) {
		t.Fatal("object fact reported for genval.New, which exported none")
	}

	// Mutating the copied-out fact must not corrupt the store.
	of.Note = "scribbled"
	var again genericsObjFact
	if !use.ImportObjectFact(sumUse, &again) || again.Note != "pure" {
		t.Fatalf("fact store returned %+v after caller mutation, want Note=pure", again)
	}
}
