package load

import (
	"path/filepath"
	"testing"
)

// moduleRoot is the repo root relative to this package's directory, where
// `go test` runs the binary.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestLoadSinglePackage(t *testing.T) {
	prog, err := Load(moduleRoot(t), "./internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(prog.Roots))
	}
	p := prog.Roots[0]
	if p.ImportPath != "spectra/internal/obs" {
		t.Fatalf("import path = %q", p.ImportPath)
	}
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatalf("root package missing types, info, or files: %+v", p)
	}
	// Roots are parsed with comments so analyzers can see directives.
	commented := false
	for _, f := range p.Files {
		if len(f.Comments) > 0 {
			commented = true
			break
		}
	}
	if !commented {
		t.Fatal("root package parsed without comments")
	}
}

func TestLoadWildcard(t *testing.T) {
	prog, err := Load(moduleRoot(t), "./internal/lint/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Roots) < 5 {
		t.Fatalf("roots = %d, want >= 5 analyzer packages", len(prog.Roots))
	}
	for _, p := range prog.Roots {
		if p.Info == nil {
			t.Errorf("%s: loaded as root without full type info", p.ImportPath)
		}
	}
}
