// Package genval is the loader's generics golden package: type
// parameters on types, methods, and functions, which the type-checked
// load path and the analyzers' traversal must handle.
package genval

// Cache is a generic container with a parameterized method set.
type Cache[K comparable, V any] struct {
	m map[K]V
}

// New builds an empty cache.
func New[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{m: map[K]V{}}
}

// Put stores a value.
func (c *Cache[K, V]) Put(k K, v V) { c.m[k] = v }

// Get fetches a value.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	v, ok := c.m[k]
	return v, ok
}

// Sum folds a slice of any numeric-ish type.
func Sum[T ~int | ~float64](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}
