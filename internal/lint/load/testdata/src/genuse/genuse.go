// Package genuse instantiates genval's generics across the package
// boundary: the loader must present resolvable objects for instantiated
// calls, and dependency order must put genval first.
package genuse

import "spectra/internal/lint/load/testdata/src/genval"

// UseAll exercises generic instantiation through the import.
func UseAll() int {
	c := genval.New[string, int]()
	c.Put("a", 1)
	v, _ := c.Get("a")
	return v + genval.Sum([]int{1, 2, 3})
}
