package spanmetric_test

import (
	"testing"

	"spectra/internal/lint/linttest"
	"spectra/internal/lint/spanmetric"
)

const regPath = "spectra/internal/lint/spanmetric/testdata/src/reg"

// TestGolden resolves emit's names against reg through the types scope.
// reg itself is analyzed first (dependency order) and must be silent.
func TestGolden(t *testing.T) {
	a := spanmetric.New(spanmetric.Config{
		RegistryPkg: regPath,
		Exempt:      []string{"spectra.test.svc"},
	})
	linttest.Run(t, a, "./testdata/src/reg", "./testdata/src/emit")
}

// TestEmitOnly loads only the emitting package: the registry is reachable
// solely as a dependency, which is exactly the case the types-scope
// harvest exists for.
func TestEmitOnly(t *testing.T) {
	a := spanmetric.New(spanmetric.Config{
		RegistryPkg: regPath,
		Exempt:      []string{"spectra.test.svc"},
	})
	linttest.Run(t, a, "./testdata/src/emit")
}
