// Package emit exercises spanmetric's three rules against the reg
// package's declarations, resolved through the types scope.
package emit

import "spectra/internal/lint/spanmetric/testdata/src/reg"

// Metrics covers rule 1: registration-site names.
func Metrics(r *reg.Registry, suffix string) {
	r.Counter(reg.MGood)                      // declared constant
	r.Counter("spectra.good.total")           // inline but declared value
	r.Gauge("spectra.dyn.live")               // extends a declared prefix
	r.Histogram(reg.MOther, nil)              // declared constant
	r.Counter(reg.MPrefix + suffix)           // dynamic: unverifiable, skipped
	r.Counter("spectra.unknown.total")        // want `metric name "spectra\.unknown\.total" is not declared`
	r.Histogram("spectra.wrong.seconds", nil) // want `metric name "spectra\.wrong\.seconds" is not declared`
}

// Spans covers rule 2: span kinds at Start.
func Spans(rec *reg.SpanRecorder, kind string) {
	rec.Start(reg.SpanWork, -1) // declared constant
	rec.Start("flush", -1)      // inline but matches a Span* value
	rec.Start(kind, -1)         // dynamic: unverifiable, skipped
	rec.Start("wrok", -1)       // want `span kind "wrok" does not match any Span\* constant`
}

// Literals covers rule 3: stray metric-shaped strings.
func Literals(dial func(string)) {
	dial("spectra.test.svc")       // exempted service name
	_ = "spectra.stray.total"      // want `string "spectra\.stray\.total" looks like a metric name but is not declared`
	_ = "spectra stray prose"      // not name-shaped; ignored
	_ = "spectra.dyn.anything.yet" // extends a declared prefix
}

// Allowed suppresses a deliberate undeclared emission.
func Allowed(r *reg.Registry) {
	//lint:allow spanmetric scratch metric for a one-off experiment
	r.Counter("spectra.scratch.total")
}
