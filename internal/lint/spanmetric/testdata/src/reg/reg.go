// Package reg is the golden registry: declared metric names, a prefix,
// and span kinds, read by spanmetric through the types scope.
package reg

// Declared metric names and one prefix.
const (
	MGood   = "spectra.good.total"
	MOther  = "spectra.other.seconds"
	MPrefix = "spectra.dyn."
)

// Declared span kinds (recognized by the Span name prefix, not value).
const (
	SpanWork  = "work"
	SpanFlush = "flush"
)

// Registry mirrors the obs metric-handle surface.
type Registry struct{}

// Counter returns a metric handle.
func (r *Registry) Counter(name string) int { return 0 }

// Gauge returns a metric handle.
func (r *Registry) Gauge(name string) int { return 0 }

// Histogram returns a metric handle.
func (r *Registry) Histogram(name string, bounds []float64) int { return 0 }

// SpanRecorder mirrors the obs span surface.
type SpanRecorder struct{}

// Start opens a span of the given kind.
func (r *SpanRecorder) Start(kind string, parent int) int { return 0 }
