// Package spanmetric pins every emitted metric name and span kind to a
// constant declared in the observability registry package, program-wide —
// the drift class where a dashboard queries spectra.rpc.retries.total
// forever while the code quietly emits a renamed or misspelled string.
//
// Unlike metricname, which harvests the registry's constants from its
// *syntax* and therefore only works when the registry package is among the
// load roots, spanmetric reads the registry package's **types scope**,
// located through the current package's transitive imports. Export data
// carries constant values, so the declared-name set is available to every
// importer no matter how the analysis was rooted — this is what makes the
// check truly cross-package. Packages that do not (transitively) import
// the registry are skipped: with no registry in sight there is nothing to
// resolve against.
//
// Three rules, enforced outside the registry package itself:
//
//  1. The metric-name argument of Registry.Counter / Gauge / Histogram,
//     when constant, must equal a declared registry constant or extend a
//     declared prefix (a registry constant ending in ".").
//  2. The kind argument of SpanRecorder.Start, when constant, must equal
//     the value of a registry constant named Span*.
//  3. Any other in-place string literal shaped like a metric name
//     ("spectra." + name characters) must be declared, extend a declared
//     prefix, or appear in the Exempt list (service names such as
//     "spectra.work" share the prefix but are not metrics).
//
// Non-constant arguments (prefix + variable) are unverifiable here and are
// skipped; metricname's format rule still covers their constant parts.
package spanmetric

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"spectra/internal/lint/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// RegistryPkg is the import path whose scope declares the metric-name
	// constants ("spectra."-valued) and span kinds (Span*-named).
	RegistryPkg string
	// Exempt lists exact strings allowed without declaration — service
	// names that share the spectra. prefix without being metrics.
	Exempt []string
}

// nameShaped matches literals plausibly intended as metric names;
// prose with spaces or punctuation is left alone.
var nameShaped = regexp.MustCompile(`^spectra\.[A-Za-z0-9_.]+$`)

// registry is the harvested declaration set of the registry package.
type registry struct {
	// names are declared metric names (exact).
	names map[string]bool
	// prefixes are declared name prefixes (value ends in ".").
	prefixes []string
	// spanKinds maps each Span* constant's value to its constant name.
	spanKinds map[string]string
}

// New returns the analyzer.
func New(cfg Config) *analysis.Analyzer {
	exempt := make(map[string]bool)
	for _, s := range cfg.Exempt {
		exempt[s] = true
	}
	registerFuncs := map[string]bool{
		"(*" + cfg.RegistryPkg + ".Registry).Counter":   true,
		"(*" + cfg.RegistryPkg + ".Registry).Gauge":     true,
		"(*" + cfg.RegistryPkg + ".Registry).Histogram": true,
	}
	startFunc := "(*" + cfg.RegistryPkg + ".SpanRecorder).Start"
	// One harvest per registry *types.Package, cached across passes.
	cache := map[*types.Package]*registry{}
	return &analysis.Analyzer{
		Name: "spanmetric",
		Doc: "emitted metric names and span kinds must resolve to constants " +
			"declared in the observability registry package, so dashboards " +
			"and trace tooling survive renames; declare the name there or " +
			"annotate //lint:allow spanmetric",
		Run: func(pass *analysis.Pass) error {
			if pass.Pkg.Path() == cfg.RegistryPkg {
				return nil
			}
			regPkg := findImport(pass.Pkg, cfg.RegistryPkg)
			if regPkg == nil {
				return nil
			}
			reg := cache[regPkg]
			if reg == nil {
				reg = harvest(regPkg)
				cache[regPkg] = reg
			}
			for _, file := range pass.Files {
				checkFile(pass, file, reg, registerFuncs, startFunc, exempt)
			}
			return nil
		},
	}
}

// findImport locates the registry package in the transitive imports.
func findImport(pkg *types.Package, path string) *types.Package {
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}

// harvest reads the registry package's scope: string constants valued
// "spectra.*" declare metric names (trailing "." marks a prefix), and
// string constants *named* Span* declare span kinds.
func harvest(pkg *types.Package) *registry {
	reg := &registry{names: map[string]bool{}, spanKinds: map[string]string{}}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		val := constant.StringVal(c.Val())
		if strings.HasPrefix(val, "spectra.") {
			if strings.HasSuffix(val, ".") {
				reg.prefixes = append(reg.prefixes, val)
			} else {
				reg.names[val] = true
			}
		}
		if strings.HasPrefix(name, "Span") {
			reg.spanKinds[val] = name
		}
	}
	return reg
}

// checkFile applies the three rules to one file.
func checkFile(pass *analysis.Pass, file *ast.File, reg *registry, registerFuncs map[string]bool, startFunc string, exempt map[string]bool) {
	// Arguments checked at call sites are excluded from the literal walk
	// so one bad name reports once.
	checkedArgs := map[token.Pos]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		full := analysis.FullName(pass.FuncFor(call.Fun))
		switch {
		case registerFuncs[full]:
			checkedArgs[call.Args[0].Pos()] = true
			if name, ok := constString(pass, call.Args[0]); ok && !declared(reg, name) && !exempt[name] {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q is not declared in the registry package; register it as a named constant there so dashboards track renames", name)
			}
		case full == startFunc:
			checkedArgs[call.Args[0].Pos()] = true
			if kind, ok := constString(pass, call.Args[0]); ok {
				if _, known := reg.spanKinds[kind]; !known {
					pass.Reportf(call.Args[0].Pos(),
						"span kind %q does not match any Span* constant in the registry package; use a declared kind so trace tooling recognizes the span", kind)
				}
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || checkedArgs[lit.Pos()] {
			return true
		}
		name, ok := constString(pass, lit)
		if !ok || !nameShaped.MatchString(name) {
			return true
		}
		if !declared(reg, name) && !exempt[name] {
			pass.Reportf(lit.Pos(),
				"string %q looks like a metric name but is not declared in the registry package; use the declared constant, declare it, or exempt it as a service name", name)
		}
		return true
	})
}

// declared reports whether name is a registry constant or extends a
// declared prefix.
func declared(reg *registry, name string) bool {
	if reg.names[name] {
		return true
	}
	for _, p := range reg.prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// constString evaluates e as a constant string.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
