// Package crosspkg spawns another package's functions; findings here rely
// on object facts exported when daemon was analyzed.
package crosspkg

import "spectra/internal/lint/goroleak/testdata/src/daemon"

// SpawnServe leaks: daemon.Serve has no termination path.
func SpawnServe() {
	go daemon.Serve() // want `go spawns .*daemon\.Serve, which has no termination path`
}

// SpawnStoppable is fine.
func SpawnStoppable(done chan struct{}) {
	go daemon.Stoppable(done)
}
