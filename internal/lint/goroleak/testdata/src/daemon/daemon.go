// Package daemon exports a never-returning function; the goroleak object
// fact must carry its non-termination across the package boundary.
package daemon

// Serve loops forever with no escape.
func Serve() {
	for {
		tick()
	}
}

// Stoppable has a termination path and must export no fact.
func Stoppable(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
			tick()
		}
	}
}

func tick() {}
