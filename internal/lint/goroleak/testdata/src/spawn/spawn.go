// Package spawn is the goroleak golden package: goroutine shapes with and
// without termination paths.
package spawn

import (
	"context"
	"log"
	"os"
	"time"
)

// LeakPlain spawns a literal whose loop has no escape of any kind.
func LeakPlain() {
	go func() {
		for { // want `infinite loop with no termination path`
			work()
		}
	}()
}

// LeakConstTrue spells the same loop with a constant condition.
func LeakConstTrue() {
	go func() {
		for true { // want `infinite loop with no termination path`
			work()
		}
	}()
}

// LeakSelectBreak is the classic near-miss: the unlabeled break targets
// the select, not the loop, so the loop still has no escape.
func LeakSelectBreak(ch chan int) {
	go func() {
		for { // want `infinite loop with no termination path`
			select {
			case <-ch:
				break
			}
		}
	}()
}

// LeakTick ranges over a channel that never closes.
func LeakTick() {
	go func() {
		for range time.Tick(time.Second) { // want `ranges over time.Tick`
			work()
		}
	}()
}

// LeakEmptySelect parks the goroutine forever.
func LeakEmptySelect() {
	go func() {
		select {} // want `blocks forever on an empty select`
	}()
}

// OKDoneSelect exits through the done-channel case.
func OKDoneSelect(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-ch:
				work()
			case <-done:
				return
			}
		}
	}()
}

// OKCtx exits on context cancellation.
func OKCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ch:
				work()
			case <-ctx.Done():
				return
			}
		}
	}()
}

// OKErrReturn is the reader-loop shape: the escape is an error return,
// driven by a connection close elsewhere.
func OKErrReturn(read func() error) {
	go func() {
		for {
			if err := read(); err != nil {
				return
			}
		}
	}()
}

// OKLabeledBreak escapes through a labeled break from inside the select.
func OKLabeledBreak(done chan struct{}) {
	go func() {
	drain:
		for {
			select {
			case <-done:
				break drain
			}
		}
	}()
}

// OKBounded terminates by iteration count.
func OKBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

// OKRangeChannel terminates when the channel closes; termination is not
// provably absent, so no finding.
func OKRangeChannel(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// OKFatal escapes by killing the process.
func OKFatal(check func() error) {
	go func() {
		for {
			if err := check(); err != nil {
				log.Fatal(err)
			}
		}
	}()
}

// OKPanicEscape escapes by panicking.
func OKPanicEscape(check func() bool) {
	go func() {
		for {
			if !check() {
				panic("broken invariant")
			}
		}
	}()
}

// OKExit escapes through os.Exit.
func OKExit(check func() bool) {
	go func() {
		for {
			if !check() {
				os.Exit(1)
			}
		}
	}()
}

// loopForever is a named never-returning function.
func loopForever() {
	for { // reported only at spawn sites, not here
		work()
	}
}

// runWrapper inherits non-termination from its top-level call.
func runWrapper() { loopForever() }

// LeakNamed spawns the never-returning function directly.
func LeakNamed() {
	go loopForever() // want `go spawns loopForever, which has no termination path`
}

// LeakWrapped spawns it through the wrapper chain.
func LeakWrapped() {
	go runWrapper() // want `go spawns runWrapper, which has no termination path`
}

// LeakLiteralCallsNamed spawns a literal whose top-level statement call
// never returns.
func LeakLiteralCallsNamed() {
	go func() { // want `calls loopForever, which has no termination path`
		loopForever()
	}()
}

// Allowed is an intended process-lifetime goroutine, suppressed with a
// justification.
func Allowed() {
	go func() {
		//lint:allow goroleak intended process-lifetime sampler
		for {
			work()
		}
	}()
}

func work() {}
