// Package goroleak flags goroutine spawn sites with no provable
// termination path — the leak class behind runaway mux readers/writers and
// telemetry samplers: a `go` statement whose function can only exit its
// loop via a path that does not exist keeps its stack, its connection, and
// its captured references alive for the life of the process.
//
// The proof obligation is negative and syntactic: a spawned function is
// reported when it provably lacks an escape, not merely when termination
// is unproven (which would flag half the language). Concretely a spawn is
// reported when the spawned function — a literal at the site, or a named
// function resolved through the call graph and, across packages, through
// object facts — contains:
//
//   - an infinite loop (`for {}` / constant-true condition) whose body has
//     no escape: no return, no break that targets the loop (an unlabeled
//     break inside a nested select/switch/loop targets that construct, a
//     classic near-miss this analyzer gets right), no goto, and no fatal
//     call (panic, os.Exit, runtime.Goexit, log.Fatal*);
//   - a `for range` over time.Tick, whose channel never closes; or
//   - an empty select{}, which blocks forever.
//
// A named function "inherits" non-termination from a statement-level call
// to another never-terminating function at the top level of its body (the
// `func run() { s.loop() }` wrapper shape). Loops with a termination path
// that merely *may* run long (a reader loop that exits on connection
// close) are accepted — the analyzer demands an escape, not a bound.
// Intentional process-lifetime goroutines carry //lint:allow goroleak with
// a justification.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"spectra/internal/lint/analysis"
	"spectra/internal/lint/callgraph"
)

// neverFact marks a declared function with no termination path, exported
// so cross-package spawns of it are reported at the spawn site.
type neverFact struct {
	// Reason describes the non-terminating construct.
	Reason string
}

// fatalCalls terminate the goroutine (or process) and therefore count as
// loop escapes.
var fatalCalls = map[string]bool{
	"os.Exit":               true,
	"runtime.Goexit":        true,
	"log.Fatal":             true,
	"log.Fatalf":            true,
	"log.Fatalln":           true,
	"(*log.Logger).Fatal":   true,
	"(*log.Logger).Fatalf":  true,
	"(*log.Logger).Fatalln": true,
}

// New returns the analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "goroleak",
		Doc: "every goroutine spawn site needs a provable termination path: " +
			"infinite loops must carry a reachable return/break (typically a " +
			"ctx.Done or close-channel select case), time.Tick ranges and " +
			"empty selects never terminate; annotate intended " +
			"process-lifetime goroutines with //lint:allow goroleak",
		Run: func(pass *analysis.Pass) error {
			g := callgraph.Build(pass)
			never := computeNeverReturns(pass, g)
			for fn, reason := range never {
				pass.ExportObjectFact(fn, &neverFact{Reason: reason})
			}

			// externNever answers for callees outside this package.
			externNever := func(f *types.Func) (string, bool) {
				var fact neverFact
				if pass.ImportObjectFact(f, &fact) {
					return fact.Reason, true
				}
				return "", false
			}

			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					checkSpawn(pass, g, gs, never, externNever)
					return true
				})
			}
			return nil
		},
	}
}

// checkSpawn validates one go statement's spawned function.
func checkSpawn(pass *analysis.Pass, g *callgraph.Graph, gs *ast.GoStmt, never map[*types.Func]string, extern func(*types.Func) (string, bool)) {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		// Report non-terminating constructs at their own positions, and
		// statement-level calls to never-returning functions at the spawn.
		findForever(pass, lit.Body, func(pos token.Pos, what string) {
			pass.Reportf(pos, "goroutine %s; give the loop a termination path (ctx.Done/close-channel select case, bounded iteration) or annotate //lint:allow goroleak", what)
		})
		for _, stmt := range lit.Body.List {
			if reason, callee, ok := stmtLevelNeverCall(pass, g, stmt, never, extern); ok {
				pass.Reportf(gs.Pos(), "go spawns a literal that calls %s, which has no termination path (%s)", callee.Name(), reason)
			}
		}
		return
	}
	callee := pass.FuncFor(gs.Call.Fun)
	if callee == nil {
		return
	}
	if reason, ok := never[callee]; ok {
		pass.Reportf(gs.Pos(), "go spawns %s, which has no termination path (%s); give it one or annotate //lint:allow goroleak", callee.Name(), reason)
		return
	}
	if reason, ok := extern(callee); ok {
		pass.Reportf(gs.Pos(), "go spawns %s, which has no termination path (%s); give it one or annotate //lint:allow goroleak", callee.FullName(), reason)
	}
}

// computeNeverReturns finds declared functions with no termination path:
// directly (a forever construct in the body) or through a top-level
// statement call to another never-returning function, iterated to
// fixpoint for wrapper chains.
func computeNeverReturns(pass *analysis.Pass, g *callgraph.Graph) map[*types.Func]string {
	never := make(map[*types.Func]string)
	for _, n := range g.Nodes() {
		findForever(pass, n.Decl.Body, func(pos token.Pos, what string) {
			if _, seen := never[n.Func]; !seen {
				never[n.Func] = what
			}
		})
	}
	extern := func(f *types.Func) (string, bool) {
		var fact neverFact
		if pass.ImportObjectFact(f, &fact) {
			return fact.Reason, true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if _, seen := never[n.Func]; seen {
				continue
			}
			for _, stmt := range n.Decl.Body.List {
				if reason, callee, ok := stmtLevelNeverCall(pass, g, stmt, never, extern); ok {
					never[n.Func] = "calls " + callee.Name() + ", which " + reason
					changed = true
					break
				}
			}
		}
	}
	return never
}

// stmtLevelNeverCall recognizes a top-level `f()` statement whose callee
// never returns.
func stmtLevelNeverCall(pass *analysis.Pass, g *callgraph.Graph, stmt ast.Stmt, never map[*types.Func]string, extern func(*types.Func) (string, bool)) (string, *types.Func, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", nil, false
	}
	callee := pass.FuncFor(call.Fun)
	if callee == nil {
		return "", nil, false
	}
	if reason, ok := never[callee]; ok {
		return reason, callee, true
	}
	if reason, ok := extern(callee); ok {
		return reason, callee, true
	}
	return "", nil, false
}

// findForever walks a function body (skipping nested literals) and emits
// each provably non-terminating construct.
func findForever(pass *analysis.Pass, body *ast.BlockStmt, emit func(pos token.Pos, what string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if isInfiniteCond(pass, n.Cond) && !hasEscape(pass, n) {
				emit(n.Pos(), "has an infinite loop with no termination path (no return, loop break, goto, or fatal exit)")
			}
		case *ast.RangeStmt:
			if isTickCall(pass, n.X) && !hasEscape(pass, n) {
				emit(n.Pos(), "ranges over time.Tick, whose channel never closes")
			}
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				emit(n.Pos(), "blocks forever on an empty select")
			}
		}
		return true
	})
}

// isInfiniteCond reports a missing or constant-true loop condition.
func isInfiniteCond(pass *analysis.Pass, cond ast.Expr) bool {
	if cond == nil {
		return true
	}
	tv, ok := pass.TypesInfo.Types[cond]
	return ok && tv.Value != nil && tv.Value.String() == "true"
}

// isTickCall recognizes a direct `range time.Tick(...)` expression.
func isTickCall(pass *analysis.Pass, x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	return analysis.FullName(pass.FuncFor(call.Fun)) == "time.Tick"
}

// hasEscape reports whether a loop's body contains an escape from the
// loop: a return, a break targeting this loop, a goto, or a fatal call.
// Break targeting is depth-aware — an unlabeled break inside a nested
// select/switch/loop targets that construct, not this loop.
func hasEscape(pass *analysis.Pass, loop ast.Stmt) bool {
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	default:
		return true
	}
	// label is the loop's label when the loop is the direct statement of a
	// labeled statement; handled by the caller passing the ForStmt only, so
	// labeled breaks are matched conservatively: any labeled break counts
	// as an escape (it must target an enclosing construct, and escaping to
	// an *outer* loop still leaves this loop).
	return blockEscapes(pass, body, 0)
}

// blockEscapes walks statements tracking how many break-swallowing
// constructs (for/range/switch/select) are between the statement and the
// loop under test.
func blockEscapes(pass *analysis.Pass, node ast.Node, depth int) bool {
	escaped := false
	ast.Inspect(node, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			escaped = true
			return false
		case *ast.BranchStmt:
			if n.Tok == token.GOTO || (n.Tok == token.BREAK && (n.Label != nil || depth == 0)) {
				escaped = true
				return false
			}
		case *ast.CallExpr:
			name := analysis.FullName(pass.FuncFor(n.Fun))
			if fatalCalls[name] || isPanic(pass, n) {
				escaped = true
				return false
			}
		case *ast.ForStmt:
			if blockEscapes(pass, n.Body, depth+1) ||
				(n.Init != nil && blockEscapes(pass, n.Init, depth)) ||
				(n.Cond != nil && blockEscapes(pass, n.Cond, depth)) {
				escaped = true
			}
			return false
		case *ast.RangeStmt:
			if blockEscapes(pass, n.Body, depth+1) || blockEscapes(pass, n.X, depth) {
				escaped = true
			}
			return false
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if blockEscapes(pass, bodyOf(n), depth+1) {
				escaped = true
			}
			return false
		}
		return true
	})
	return escaped
}

// bodyOf extracts the block of a switch/select statement.
func bodyOf(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.SwitchStmt:
		return n.Body
	case *ast.TypeSwitchStmt:
		return n.Body
	case *ast.SelectStmt:
		return n.Body
	}
	return &ast.BlockStmt{}
}

// isPanic recognizes the builtin panic.
func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}
