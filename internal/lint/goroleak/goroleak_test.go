package goroleak_test

import (
	"testing"

	"spectra/internal/lint/goroleak"
	"spectra/internal/lint/linttest"
)

// TestGolden covers the in-package spawn shapes.
func TestGolden(t *testing.T) {
	linttest.Run(t, goroleak.New(), "./testdata/src/spawn")
}

// TestCrossPackage covers fact-borne non-termination: daemon is analyzed
// first (dependency order), crosspkg's spawn sites read its facts.
func TestCrossPackage(t *testing.T) {
	linttest.Run(t, goroleak.New(), "./testdata/src/daemon", "./testdata/src/crosspkg")
}
