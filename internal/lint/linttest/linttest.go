// Package linttest runs an analyzer over golden packages and checks its
// findings against expectations embedded in the sources — a minimal
// analogue of golang.org/x/tools/go/analysis/analysistest.
//
// A golden file marks each line where a diagnostic is expected with a
// trailing comment of the form
//
//	// want `regexp` `another regexp`
//
// (double-quoted Go strings also work). The runner requires exactly one
// matching diagnostic per pattern on that line and zero diagnostics on
// unmarked lines. //lint:allow directives are honored exactly as the
// spectralint driver honors them, so golden packages can exercise the
// suppression path: a suppressed violation line carries no want comment.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"spectra/internal/lint/analysis"
	"spectra/internal/lint/load"
)

// wantRE extracts the expectation patterns from a want comment: Go string
// literals (quoted or backquoted) following the word "want".
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads patterns (relative to the test's working directory, e.g.
// "./testdata/src/det") and checks the analyzer's diagnostics against the
// // want expectations in the loaded sources. Multiple patterns load in
// one program, dependencies first, so cross-package analyzers (metricname)
// see their registry package before its importers.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	prog, err := load.Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(prog.Roots) == 0 {
		t.Fatalf("no packages matched %v", patterns)
	}

	type lineKey struct {
		file string
		line int
	}
	got := make(map[lineKey][]string)
	want := make(map[lineKey][]string)

	// One fact store per Run, exactly as the driver keeps one per
	// invocation: dependency-ordered packages export facts their
	// dependents import.
	facts := analysis.NewFactStore()
	for _, pkg := range prog.Roots {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      prog.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		sup := analysis.CollectSuppressions(prog.Fset, pkg.Files)
		for _, d := range pass.Diagnostics() {
			pos := prog.Fset.Position(d.Pos)
			if sup.Allows(a.Name, pos) {
				continue
			}
			k := lineKey{pos.Filename, pos.Line}
			got[k] = append(got[k], d.Message)
		}
		for _, f := range pkg.Files {
			collectWants(prog, f, func(file string, line int, patterns []string) {
				k := lineKey{file, line}
				want[k] = append(want[k], patterns...)
			})
		}
	}

	keys := make(map[lineKey]bool)
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	sorted := make([]lineKey, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].file != sorted[j].file {
			return sorted[i].file < sorted[j].file
		}
		return sorted[i].line < sorted[j].line
	})

	for _, k := range sorted {
		matchLine(t, k.file, k.line, want[k], got[k])
	}
}

// collectWants scans a file's comments for want expectations.
func collectWants(prog *load.Program, f *ast.File, emit func(file string, line int, patterns []string)) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			body, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			var patterns []string
			for _, lit := range wantRE.FindAllString(body, -1) {
				if strings.HasPrefix(lit, "`") {
					patterns = append(patterns, strings.Trim(lit, "`"))
					continue
				}
				s, err := strconv.Unquote(lit)
				if err == nil {
					patterns = append(patterns, s)
				}
			}
			if len(patterns) > 0 {
				pos := prog.Fset.Position(c.Pos())
				emit(pos.Filename, pos.Line, patterns)
			}
		}
	}
}

// matchLine pairs each want pattern on one line with a distinct diagnostic.
func matchLine(t *testing.T, file string, line int, wants, gots []string) {
	t.Helper()
	loc := fmt.Sprintf("%s:%d", file, line)
	remaining := append([]string(nil), gots...)
	for _, w := range wants {
		re, err := regexp.Compile(w)
		if err != nil {
			t.Errorf("%s: bad want pattern %q: %v", loc, w, err)
			continue
		}
		idx := -1
		for i, g := range remaining {
			if re.MatchString(g) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s: no diagnostic matching %q (got %q)", loc, w, remaining)
			continue
		}
		remaining = append(remaining[:idx], remaining[idx+1:]...)
	}
	for _, g := range remaining {
		t.Errorf("%s: unexpected diagnostic: %s", loc, g)
	}
}
