// Package callgraph builds a static, per-package call graph from a
// type-checked pass, the substrate for Spectra's interprocedural analyzers
// (ctxflow, goroleak, lockorder). Nodes are the package's declared
// functions and methods; edges are the statically resolvable call sites in
// their bodies, including sites inside nested function literals (a literal
// runs with its enclosing function's facts about reachability, so its
// calls are attributed to the enclosing declaration) — except when an
// analyzer inspects literals itself.
//
// Soundness limits, accepted deliberately:
//
//   - Calls through function-typed values (fields, parameters, variables)
//     resolve to nothing and produce no edge.
//   - Calls through interface methods resolve to the *interface* method's
//     types.Func, not its implementations. Analyzers that care name the
//     interface methods explicitly (ctxflow's sink list does).
//   - Reflection and linkname tricks are invisible.
//
// Cross-package edges carry the imported callee's *types.Func; combined
// with object facts exported by earlier passes (the loader checks
// dependencies first), analyzers extend in-package closures across the
// whole program.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"spectra/internal/lint/analysis"
)

// Edge is one statically resolved call site.
type Edge struct {
	// Callee is the invoked function: in-package, imported, or an
	// interface method.
	Callee *types.Func
	// Pos locates the call expression.
	Pos token.Pos
	// InLiteral marks calls occurring inside a function literal nested in
	// the declaring function (they may run on another goroutine or later).
	InLiteral bool
}

// Node is one declared function or method with its outgoing edges.
type Node struct {
	// Func is the declared function's type object.
	Func *types.Func
	// Decl is the declaration's syntax.
	Decl *ast.FuncDecl
	// Calls are the statically resolved call sites in body order.
	Calls []Edge
	// Spawns are the `go` statements in the body whose spawned callee
	// resolved to a named function (spawned literals are analyzed by the
	// interested analyzer directly from syntax).
	Spawns []Edge
}

// Graph is the call graph of one package.
type Graph struct {
	nodes  map[*types.Func]*Node
	sorted []*Node
}

// Build constructs the package's call graph from the pass's syntax and
// type information.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{nodes: make(map[*types.Func]*Node)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &Node{Func: fn, Decl: fd}
			collect(pass, fd.Body, false, node)
			g.nodes[fn] = node
			g.sorted = append(g.sorted, node)
		}
	}
	sort.Slice(g.sorted, func(i, j int) bool {
		return g.sorted[i].Decl.Pos() < g.sorted[j].Decl.Pos()
	})
	return g
}

// collect walks a body gathering call and spawn edges. inLit marks that
// the walk has entered a nested function literal.
func collect(pass *analysis.Pass, body ast.Node, inLit bool, node *Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			collect(pass, n.Body, true, node)
			return false
		case *ast.GoStmt:
			if callee := pass.FuncFor(n.Call.Fun); callee != nil {
				node.Spawns = append(node.Spawns, Edge{Callee: callee, Pos: n.Pos(), InLiteral: inLit})
			}
			// The call's arguments (and a spawned literal's body) still
			// walk normally via Inspect children.
			return true
		case *ast.CallExpr:
			if callee := pass.FuncFor(n.Fun); callee != nil {
				node.Calls = append(node.Calls, Edge{Callee: callee, Pos: n.Pos(), InLiteral: inLit})
			}
		}
		return true
	})
}

// Node returns the graph node declaring fn, or nil for functions not
// declared in this package.
func (g *Graph) Node(fn *types.Func) *Node {
	return g.nodes[fn]
}

// Nodes returns the package's functions in declaration order.
func (g *Graph) Nodes() []*Node {
	return g.sorted
}

// Closure propagates a boolean property bottom-up through call edges to a
// fixpoint: a declared function has the property if seed reports it
// directly (true for sinks and for external callees whose imported facts
// carry the property) or if any of its resolved callees — in-package,
// recursive cycles included — has it. The result maps every declared
// function to its closure value.
func (g *Graph) Closure(seed func(*types.Func) bool) map[*types.Func]bool {
	has := make(map[*types.Func]bool, len(g.sorted))
	for _, n := range g.sorted {
		has[n.Func] = seed(n.Func)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.sorted {
			if has[n.Func] {
				continue
			}
			for _, e := range n.Calls {
				v, declared := has[e.Callee]
				if (declared && v) || (!declared && seed(e.Callee)) {
					has[n.Func] = true
					changed = true
					break
				}
			}
		}
	}
	return has
}
