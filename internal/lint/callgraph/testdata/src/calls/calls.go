// Package calls is the call-graph golden package: a small web of direct
// calls, method calls, a recursion cycle, a function literal, and a go
// spawn, exercising edge collection and closure propagation.
package calls

import "strings"

// Sink is the seed target for closure tests.
func Sink() {}

// Direct calls Sink directly.
func Direct() { Sink() }

// Indirect reaches Sink through Direct.
func Indirect() { Direct() }

// Clean calls only the standard library.
func Clean() string { return strings.ToUpper("x") }

// T carries a method chain.
type T struct{}

// Hit reaches Sink through Direct.
func (T) Hit() { Direct() }

// Miss calls only Clean.
func (t T) Miss() { _ = Clean() }

// InLiteral calls Sink only from inside a nested function literal.
func InLiteral() func() {
	return func() { Sink() }
}

// Spawner spawns Loop on a goroutine and calls nothing else.
func Spawner() { go Loop() }

// Loop recurses forever (a cycle in the graph; closure must converge).
func Loop() { Loop() }

// MutualA and MutualB form a two-node cycle that reaches Sink.
func MutualA() { MutualB() }

// MutualB completes the cycle and calls Sink.
func MutualB() {
	MutualA()
	Sink()
}
