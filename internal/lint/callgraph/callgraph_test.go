package callgraph_test

import (
	"go/types"
	"testing"

	"spectra/internal/lint/analysis"
	"spectra/internal/lint/callgraph"
	"spectra/internal/lint/load"
)

// buildGolden loads the golden package and builds its graph.
func buildGolden(t *testing.T) (*analysis.Pass, *callgraph.Graph) {
	t.Helper()
	prog, err := load.Load(".", "./testdata/src/calls")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Roots) != 1 {
		t.Fatalf("want 1 root package, got %d", len(prog.Roots))
	}
	pkg := prog.Roots[0]
	pass := &analysis.Pass{
		Analyzer:  &analysis.Analyzer{Name: "test"},
		Fset:      prog.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	return pass, callgraph.Build(pass)
}

// nodeByName finds a declared function node by name (methods by bare name).
func nodeByName(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

func TestEdges(t *testing.T) {
	_, g := buildGolden(t)

	direct := nodeByName(t, g, "Direct")
	if len(direct.Calls) != 1 || direct.Calls[0].Callee.Name() != "Sink" {
		t.Fatalf("Direct edges: %+v", direct.Calls)
	}
	if direct.Calls[0].InLiteral {
		t.Fatal("Direct's call wrongly marked InLiteral")
	}

	clean := nodeByName(t, g, "Clean")
	if len(clean.Calls) != 1 || clean.Calls[0].Callee.Pkg().Path() != "strings" {
		t.Fatalf("Clean should have one cross-package edge into strings, got %+v", clean.Calls)
	}

	lit := nodeByName(t, g, "InLiteral")
	if len(lit.Calls) != 1 || !lit.Calls[0].InLiteral {
		t.Fatalf("InLiteral's nested call should carry InLiteral=true, got %+v", lit.Calls)
	}

	spawner := nodeByName(t, g, "Spawner")
	if len(spawner.Spawns) != 1 || spawner.Spawns[0].Callee.Name() != "Loop" {
		t.Fatalf("Spawner spawns: %+v", spawner.Spawns)
	}
}

func TestMethodsAreNodes(t *testing.T) {
	_, g := buildGolden(t)
	hit := nodeByName(t, g, "Hit")
	if len(hit.Calls) != 1 || hit.Calls[0].Callee.Name() != "Direct" {
		t.Fatalf("method Hit edges: %+v", hit.Calls)
	}
}

func TestClosure(t *testing.T) {
	_, g := buildGolden(t)
	sink := nodeByName(t, g, "Sink").Func
	reaches := g.Closure(func(f *types.Func) bool { return f == sink })

	want := map[string]bool{
		"Sink":      true, // the seed itself
		"Direct":    true,
		"Indirect":  true,
		"Hit":       true,
		"InLiteral": true, // literal calls attribute to the declaration
		"MutualA":   true, // through the two-node cycle
		"MutualB":   true,
		"Clean":     false,
		"Miss":      false,
		"Spawner":   false, // spawns are not call edges
		"Loop":      false, // self-cycle converges without the property
	}
	for _, n := range g.Nodes() {
		w, ok := want[n.Func.Name()]
		if !ok {
			continue
		}
		if reaches[n.Func] != w {
			t.Errorf("Closure(%s) = %v, want %v", n.Func.Name(), reaches[n.Func], w)
		}
	}
}
