package metricname_test

import (
	"strings"
	"testing"

	"spectra/internal/lint/analysis"
	"spectra/internal/lint/linttest"
	"spectra/internal/lint/load"
	"spectra/internal/lint/metricname"
)

// runBoth runs the analyzer over both golden packages, registry first, and
// returns the combined diagnostics (suppressions not applied).
func runBoth(t *testing.T, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	prog, err := load.Load(".", "./testdata/src/metrics", "./testdata/src/use")
	if err != nil {
		t.Fatal(err)
	}
	var out []analysis.Diagnostic
	for _, pkg := range prog.Roots {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      prog.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			t.Fatal(err)
		}
		out = append(out, pass.Diagnostics()...)
	}
	return out
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestRegistryAndUse loads the golden registry package and its consumer in
// one program, registry first, mirroring the driver's dependency-order
// traversal that the analyzer's statefulness relies on.
func TestRegistryAndUse(t *testing.T) {
	a := metricname.New(metricname.Config{
		RegistryPkg: "spectra/internal/lint/metricname/testdata/src/metrics",
	})
	linttest.Run(t, a, "./testdata/src/metrics", "./testdata/src/use")
}

// TestPreregistered seeds the declared set directly, the escape for names
// minted outside the registry package.
func TestPreregistered(t *testing.T) {
	a := metricname.New(metricname.Config{
		RegistryPkg: "spectra/internal/lint/metricname/testdata/src/metrics",
		Preregistered: []string{
			"spectra.golden.unknown.total",
			"spectra.golden.local.total",
			"spectra.golden.adhoc.total",
		},
	})
	// With every literal preregistered, only the format findings remain;
	// reuse the want comments by checking counts directly instead.
	diags := runBoth(t, a)
	for _, d := range diags {
		if !contains(d.Message, "convention") {
			t.Errorf("unexpected non-format finding with preregistered names: %s", d.Message)
		}
	}
	if len(diags) != 2 {
		t.Errorf("findings = %d, want exactly the 2 format violations", len(diags))
	}
}
