// Package use is the golden instrumentation package for the metricname
// analyzer: it registers metrics against the golden registry package.
package use

import "spectra/internal/lint/metricname/testdata/src/metrics"

var reg = &metrics.Registry{}

// localName is well-formed but declared here, not in the registry
// package — exactly how a renamed metric drifts off the dashboards.
const localName = "spectra.golden.local.total"

var (
	// Referencing registry constants is the sanctioned pattern.
	a = reg.Counter(metrics.MOps)
	b = reg.Histogram(metrics.MLatSec, nil)

	// A literal is fine as long as it resolves to a declared name.
	c = reg.Counter("spectra.golden.ops.total")

	// Prefix-declared names admit any suffix (per-operation gauges).
	d = reg.Gauge(metrics.Prefix + "op.cpu")

	e = reg.Counter("spectra.golden.unknown.total") // want `not declared in the metrics registry package`
	f = reg.Counter(localName)                      // want `not declared in the metrics registry package`

	//lint:allow metricname golden test of the suppression path
	g = reg.Counter("spectra.golden.adhoc.total")
)

// malformed violates the format rule regardless of registration.
const malformed = "spectra.golden.Mixed_Case" // want `violates the spectra\.-prefixed dotted-lowercase convention`

// prose is spectra.-prefixed but not name-shaped: error strings and log
// messages are none of the analyzer's business.
const prose = "spectra.golden: something went wrong"
