// Package metrics is the golden registry package for the metricname
// analyzer: its spectra.-prefixed string constants define the namespace,
// and its Registry type carries the constructor methods the analyzer
// watches (the shape of internal/obs, minus everything irrelevant).
package metrics

// Declared names. A trailing dot declares a prefix, like obs.RelErrPrefix.
const (
	MOps    = "spectra.golden.ops.total"
	MLatSec = "spectra.golden.latency.seconds"
	Prefix  = "spectra.golden.relerr."

	MBadCase = "spectra.golden.BadSegment" // want `violates the spectra\.-prefixed dotted-lowercase convention`
)

// Registry is the constructor surface.
type Registry struct{}

// Counter returns a handle for the named counter.
func (r *Registry) Counter(name string) int { return 0 }

// Gauge returns a handle for the named gauge.
func (r *Registry) Gauge(name string) int { return 0 }

// Histogram returns a handle for the named histogram.
func (r *Registry) Histogram(name string, bounds []float64) int { return 0 }
