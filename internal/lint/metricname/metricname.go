// Package metricname keeps Spectra's metric namespace coherent so
// dashboards never drift from the code. Two rules:
//
//  1. Format: every string constant beginning with "spectra." must match
//     the dotted-lowercase convention spectra.<seg>.<seg>... (segments of
//     [a-z0-9_]; a trailing dot marks a name prefix such as
//     obs.RelErrPrefix).
//  2. Registration: a constant name passed to Registry.Counter / Gauge /
//     Histogram must resolve to a name declared in the registry package
//     (internal/obs), either exactly or by a declared prefix. Undeclared
//     literals at instrumentation sites are exactly how a renamed metric
//     silently vanishes from dashboards.
//
// The analyzer is stateful across one driver run: when it visits the
// registry package it records every "spectra."-prefixed string constant as
// declared; the driver's dependency-order traversal guarantees the
// registry package is seen before its importers. Dynamically built names
// (prefix + variable) are outside rule 2's reach and are skipped.
package metricname

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"

	"spectra/internal/lint/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// RegistryPkg is the import path whose "spectra."-prefixed string
	// constants define the metric namespace.
	RegistryPkg string
	// RegisterFuncs are the metric-handle constructors (types.Func.FullName
	// form) whose first argument is a metric name; nil selects
	// DefaultRegisterFuncs rewritten against RegistryPkg.
	RegisterFuncs []string
	// Preregistered seeds the declared-name set, for tests or for names
	// minted outside the registry package.
	Preregistered []string
}

// DefaultRegisterFuncs are the Registry methods taking a metric name,
// relative to the registry package path.
var DefaultRegisterFuncs = []string{
	"(*%s.Registry).Counter",
	"(*%s.Registry).Gauge",
	"(*%s.Registry).Histogram",
}

// namePattern is the dotted-lowercase convention; an optional trailing
// dot marks a prefix constant.
var namePattern = regexp.MustCompile(`^spectra(\.[a-z0-9_]+)+\.?$`)

// nameShaped matches literals that are plausibly intended as metric
// names: "spectra." followed only by name-ish characters. Literals with
// spaces, format verbs, or other punctuation (error messages, prose) are
// not metric names and are left alone.
var nameShaped = regexp.MustCompile(`^spectra\.[A-Za-z0-9_.]+$`)

// New returns the analyzer.
func New(cfg Config) *analysis.Analyzer {
	registerFuncs := make(map[string]bool)
	if cfg.RegisterFuncs == nil {
		for _, tmpl := range DefaultRegisterFuncs {
			registerFuncs[strings.Replace(tmpl, "%s", cfg.RegistryPkg, 1)] = true
		}
	} else {
		for _, name := range cfg.RegisterFuncs {
			registerFuncs[name] = true
		}
	}
	declared := make(map[string]bool)
	var prefixes []string
	for _, name := range cfg.Preregistered {
		if p, ok := strings.CutSuffix(name, "."); ok {
			prefixes = append(prefixes, p+".")
			continue
		}
		declared[name] = true
	}
	return &analysis.Analyzer{
		Name: "metricname",
		Doc: "metric name literals must follow the spectra.-prefixed " +
			"dotted-lowercase convention and resolve to a name declared in " +
			"the metrics registry package",
		Run: func(pass *analysis.Pass) error {
			inRegistry := pass.Pkg.Path() == cfg.RegistryPkg
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.BasicLit:
						checkFormat(pass, n)
					case *ast.CallExpr:
						if !inRegistry {
							checkRegistered(pass, n, registerFuncs, declared, prefixes)
						}
					}
					return true
				})
				if inRegistry {
					collectDeclared(pass, file, declared, &prefixes)
				}
			}
			return nil
		},
	}
}

// checkFormat enforces rule 1 on any spectra.-prefixed string literal.
func checkFormat(pass *analysis.Pass, lit *ast.BasicLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	s := constant.StringVal(tv.Value)
	if !nameShaped.MatchString(s) {
		return
	}
	if !namePattern.MatchString(s) {
		pass.Reportf(lit.Pos(),
			"metric name %q violates the spectra.-prefixed dotted-lowercase convention (segments of [a-z0-9_])", s)
	}
}

// collectDeclared records the registry package's string constants.
func collectDeclared(pass *analysis.Pass, file *ast.File, declared map[string]bool, prefixes *[]string) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				c, ok := pass.TypesInfo.Defs[name].(interface{ Val() constant.Value })
				if !ok {
					continue
				}
				v := c.Val()
				if v == nil || v.Kind() != constant.String {
					continue
				}
				s := constant.StringVal(v)
				if !strings.HasPrefix(s, "spectra.") {
					continue
				}
				if strings.HasSuffix(s, ".") {
					*prefixes = append(*prefixes, s)
				} else {
					declared[s] = true
				}
			}
		}
	}
}

// checkRegistered enforces rule 2 at metric-handle constructor calls.
func checkRegistered(pass *analysis.Pass, call *ast.CallExpr, registerFuncs, declared map[string]bool, prefixes []string) {
	f := pass.FuncFor(call.Fun)
	if f == nil || !registerFuncs[analysis.FullName(f)] || len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		// Dynamically built names (prefix + variable) are unverifiable
		// here; the format rule still covers their constant parts.
		return
	}
	name := constant.StringVal(tv.Value)
	if declared[name] {
		return
	}
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return
		}
	}
	pass.Reportf(call.Args[0].Pos(),
		"metric name %q is not declared in the metrics registry package; add a named constant there (or use an existing one) so dashboards track renames", name)
}
