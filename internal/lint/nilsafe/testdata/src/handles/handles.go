// Package handles is a golden package for the nilsafe analyzer: Tally
// models an obs-style metric handle whose nil value must be a no-op.
package handles

// Tally is a nil-callable counter.
//
//lint:nilsafe
type Tally struct {
	n int64
}

// Inc carries the canonical leading guard.
func (t *Tally) Inc() {
	if t == nil {
		return
	}
	t.n++
}

// Nonzero uses the return-expression guard form.
func (t *Tally) Nonzero() bool { return t != nil && t.n != 0 }

// MustInc guards by panicking with a better message than the nil deref.
func (t *Tally) MustInc() {
	if t == nil {
		panic("nil Tally")
	}
	t.n++
}

// Doc never touches the receiver: an unnamed receiver passes trivially.
func (*Tally) Doc() string { return "tally" }

// Add is missing the guard entirely.
func (t *Tally) Add(n int64) { // want `exported method Add must begin with a nil-receiver guard`
	t.n += n
}

// Peek dereferences at the call site before the body can guard.
func (t Tally) Peek() int64 { // want `exported method Peek must use a pointer receiver`
	return t.n
}

// Reset guards too late: the receiver is touched first.
func (t *Tally) Reset() { // want `exported method Reset must begin with a nil-receiver guard`
	old := t.n
	_ = old
	if t == nil {
		return
	}
	t.n = 0
}

// Value is nil-safe by delegation to Nonzero and Inc's guard style; the
// annotation is the sanctioned escape hatch for that pattern.
//
//lint:allow nilsafe golden test of the suppression path
func (t *Tally) Value() int64 {
	if !t.Nonzero() {
		return 0
	}
	return t.n
}

// reset is unexported: internal helpers may assume a checked receiver.
func (t *Tally) reset() { t.n = 0 }

// Loose is not marked nil-callable, so its methods are unconstrained.
type Loose struct {
	n int64
}

// Bump has no guard and needs none.
func (l *Loose) Bump() { l.n++ }
