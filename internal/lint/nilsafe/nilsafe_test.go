package nilsafe_test

import (
	"testing"

	"spectra/internal/lint/linttest"
	"spectra/internal/lint/nilsafe"
)

func TestMarkedType(t *testing.T) {
	linttest.Run(t, nilsafe.New(), "./testdata/src/handles")
}
