// Package nilsafe enforces the observability layer's "nil observer ≈ zero
// cost" contract (DESIGN.md §7): every exported method of a type marked
// nil-callable must tolerate a nil receiver, so instrumented code can hold
// nil handles and skip all bookkeeping without per-call guards.
//
// A type opts in with a //lint:nilsafe directive in its declaration doc
// comment. For each exported method on such a type the analyzer requires:
//
//   - a pointer receiver (value receivers dereference at the call site,
//     so a nil pointer panics before the body runs), and
//   - a leading nil-receiver guard: either a first statement of the form
//     `if r == nil { ...; return }` (the nil test may be one operand of
//     the condition), or a single `return <expr>` whose expression tests
//     the receiver against nil (e.g. `return r != nil && r.on`).
//
// Methods with unnamed receivers never touch the receiver and pass
// trivially. Methods that are nil-safe by delegation can carry an
// explicit //lint:allow nilsafe with a justification.
package nilsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spectra/internal/lint/analysis"
)

// Marker is the doc-comment directive that opts a type into the check.
const Marker = "//lint:nilsafe"

// New returns the analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "nilsafe",
		Doc: "exported methods on types marked //lint:nilsafe must begin " +
			"with a nil-receiver guard so nil handles stay no-ops",
		Run: run,
	}
}

func run(pass *analysis.Pass) error {
	marked := markedTypes(pass)
	if len(marked) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 || !fn.Name.IsExported() {
				continue
			}
			named := receiverNamed(pass, fn)
			if named == nil || !marked[named.Obj()] {
				continue
			}
			checkMethod(pass, fn)
		}
	}
	return nil
}

// markedTypes collects the type objects whose declarations carry the
// //lint:nilsafe directive.
func markedTypes(pass *analysis.Pass) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasMarker(gd.Doc) && !hasMarker(ts.Doc) {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					marked[obj] = true
				}
			}
		}
	}
	return marked
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, Marker) {
			return true
		}
	}
	return false
}

// receiverNamed resolves a method's receiver to its named type, seeing
// through one level of pointer.
func receiverNamed(pass *analysis.Pass, fn *ast.FuncDecl) *types.Named {
	field := fn.Recv.List[0]
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkMethod verifies one exported method of a marked type.
func checkMethod(pass *analysis.Pass, fn *ast.FuncDecl) {
	field := fn.Recv.List[0]
	if _, isPtr := field.Type.(*ast.StarExpr); !isPtr {
		pass.Reportf(fn.Name.Pos(),
			"nil-callable type: exported method %s must use a pointer receiver (a value receiver panics on nil before the body runs)",
			fn.Name.Name)
		return
	}
	// An unnamed (or blank) receiver is never dereferenced.
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return
	}
	recv := pass.TypesInfo.Defs[field.Names[0]]
	if recv == nil || fn.Body == nil || len(fn.Body.List) == 0 {
		return
	}
	if guards(pass, fn.Body.List[0], recv) {
		return
	}
	pass.Reportf(fn.Name.Pos(),
		"nil-callable type: exported method %s must begin with a nil-receiver guard (if %s == nil { ... })",
		fn.Name.Name, field.Names[0].Name)
}

// guards reports whether stmt is an accepted nil-receiver guard for recv.
func guards(pass *analysis.Pass, stmt ast.Stmt, recv types.Object) bool {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		return s.Init == nil && testsNil(pass, s.Cond, recv) && terminates(s.Body)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if testsNil(pass, res, recv) {
				return true
			}
		}
	}
	return false
}

// testsNil reports whether expr contains a `recv == nil` or `recv != nil`
// comparison.
func testsNil(pass *analysis.Pass, expr ast.Expr, recv types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isRecv(pass, be.X, recv) && isNil(pass, be.Y) ||
			isRecv(pass, be.Y, recv) && isNil(pass, be.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isRecv(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == recv
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilObj
}

// terminates reports whether a guard body ends the method early: its last
// statement is a return (or the body is a lone panic).
func terminates(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
