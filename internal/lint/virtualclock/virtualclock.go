// Package virtualclock enforces Spectra's determinism invariant: code on
// the simulation path must read time through the injected clock
// (sim.Clock), never the wall clock. The paper's self-tuning loop only
// reproduces run-for-run if every timestamp a simulation observes comes
// from the virtual clock; a single time.Now in a predictor or solver
// corrupts logged demand histories in ways no test notices until results
// drift (cf. Sesame's silent model degradation on bad timestamps).
package virtualclock

import (
	"go/ast"
	"go/types"
	"strings"

	"spectra/internal/lint/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// DeterministicPkgs lists import paths (exact or prefix, a trailing
	// "/..." marks a prefix) whose code must not touch the wall clock.
	DeterministicPkgs []string
	// Forbidden is the set of time-package functions to flag; nil selects
	// DefaultForbidden.
	Forbidden []string
}

// DefaultForbidden is the set of wall-clock entry points in package time.
// Since and Until are included: both read time.Now internally.
var DefaultForbidden = []string{
	"Now", "Sleep", "After", "AfterFunc", "Tick",
	"NewTimer", "NewTicker", "Since", "Until",
}

// New returns the analyzer.
func New(cfg Config) *analysis.Analyzer {
	forbidden := cfg.Forbidden
	if forbidden == nil {
		forbidden = DefaultForbidden
	}
	bad := make(map[string]bool, len(forbidden))
	for _, name := range forbidden {
		bad[name] = true
	}
	return &analysis.Analyzer{
		Name: "virtualclock",
		Doc: "forbids wall-clock reads (time.Now, time.Sleep, timers) in " +
			"deterministic packages; route time through the injected sim.Clock " +
			"or annotate live-only paths with //lint:allow virtualclock",
		Run: func(pass *analysis.Pass) error {
			if !matchPkg(cfg.DeterministicPkgs, pass.Pkg.Path()) {
				return nil
			}
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					f := pass.FuncFor(sel)
					if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" {
						return true
					}
					// Only package-level functions read the wall clock;
					// methods like time.Time.After are pure arithmetic.
					if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
						return true
					}
					if bad[f.Name()] {
						pass.Reportf(sel.Pos(),
							"wall clock in deterministic package: time.%s breaks sim reproducibility; use the injected sim.Clock",
							f.Name())
					}
					return true
				})
			}
			return nil
		},
	}
}

// matchPkg reports whether path matches any pattern (exact, or prefix for
// patterns ending in "/...").
func matchPkg(patterns []string, path string) bool {
	for _, p := range patterns {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
			continue
		}
		if path == p {
			return true
		}
	}
	return false
}
