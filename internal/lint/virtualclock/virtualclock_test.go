package virtualclock_test

import (
	"testing"

	"spectra/internal/lint/analysis"
	"spectra/internal/lint/linttest"
	"spectra/internal/lint/load"
	"spectra/internal/lint/virtualclock"
)

const goldenPath = "spectra/internal/lint/virtualclock/testdata/src/det"

func TestDeterministicPackage(t *testing.T) {
	a := virtualclock.New(virtualclock.Config{
		DeterministicPkgs: []string{goldenPath},
	})
	linttest.Run(t, a, "./testdata/src/det")
}

// runOnGolden runs an analyzer over the golden package directly, without
// the want-comment machinery, and returns its diagnostics.
func runOnGolden(t *testing.T, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	prog, err := load.Load(".", "./testdata/src/det")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(prog.Roots))
	}
	pkg := prog.Roots[0]
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      prog.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	return pass.Diagnostics()
}

// TestExemptPackage reruns the same golden sources with a config that does
// not list them as deterministic: every finding must vanish, proving the
// analyzer is scoped and will not fire on the live runtime.
func TestExemptPackage(t *testing.T) {
	a := virtualclock.New(virtualclock.Config{
		DeterministicPkgs: []string{"spectra/internal/some/other/pkg"},
	})
	if diags := runOnGolden(t, a); len(diags) != 0 {
		t.Fatalf("exempt package produced %d findings, want 0", len(diags))
	}
}

// TestPrefixPattern checks the "/..." form of DeterministicPkgs.
func TestPrefixPattern(t *testing.T) {
	a := virtualclock.New(virtualclock.Config{
		DeterministicPkgs: []string{"spectra/internal/lint/virtualclock/..."},
	})
	if diags := runOnGolden(t, a); len(diags) == 0 {
		t.Fatal("prefix pattern did not match the golden package")
	}
}
