// Package det is a golden package for the virtualclock analyzer: it
// stands in for a deterministic package that must read time only through
// an injected clock.
package det

import "time"

// now reads the wall clock directly.
func now() time.Time {
	return time.Now() // want `wall clock in deterministic package: time\.Now`
}

// block exercises the sleeping and timer entry points.
func block() {
	time.Sleep(time.Millisecond)    // want `time\.Sleep breaks sim reproducibility`
	<-time.After(time.Millisecond)  // want `time\.After breaks sim reproducibility`
	t := time.NewTimer(time.Second) // want `time\.NewTimer breaks sim reproducibility`
	t.Stop()
}

// since uses the derived readers, which call time.Now internally.
func since(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since breaks sim reproducibility`
}

// sleepFn shows that bare references are flagged, not just calls: storing
// the function smuggles the wall clock past a call-site-only check.
var sleepFn = time.Sleep // want `time\.Sleep breaks sim reproducibility`

// methodsAreFine: time.Time.After is pure arithmetic on an existing
// timestamp, not a clock read.
func methodsAreFine(a, b time.Time) bool {
	return a.After(b) && b.Sub(a) > 0
}

// allowed is the sanctioned adapter pattern (cf. sim.RealClock).
func allowed() time.Time {
	//lint:allow virtualclock golden test of the suppression path
	return time.Now()
}
