// Package analysis is a small, dependency-free analogue of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics. Spectra vendors
// this minimal core instead of depending on x/tools so the lint suite
// builds with nothing beyond the standard library.
//
// The model is deliberately a subset: no requires-graph, no SSA. Facts —
// data an analyzer exports about a package or object for later passes over
// dependent packages to import — are supported through FactStore, riding
// the driver's deps-before-dependents ordering; see facts.go. Analyzers
// predating facts (metricname's registry of known names) keep cross-package
// state inside the analyzer closure instead, which works identically.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Name doubles as the suppression key for
// //lint:allow comments.
type Analyzer struct {
	// Name identifies the analyzer in reports and in //lint:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package through pass and reports findings via
	// pass.Reportf. It is called once per package, in dependency order.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations, shared program-wide.
	Fset *token.FileSet
	// Files is the package's parsed syntax (non-test files only).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds use/def/selection/type resolution for Files.
	TypesInfo *types.Info
	// Facts is the run-wide fact store shared by every pass, enabling
	// cross-package analyses: the driver's deps-before-dependents order
	// guarantees a package's facts are exported before any importer is
	// analyzed. Nil disables facts (analyzers degrade to package scope).
	Facts *FactStore

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer names the reporting check.
	Analyzer string
	// Message describes the violation and, ideally, the fix.
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	out := append([]Diagnostic(nil), p.diags...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// FuncFor resolves a call or selector expression to the *types.Func it
// invokes, or nil. It sees through method values and promoted (embedded)
// methods via the selection table, so (*sync.Mutex).Lock is recognized even
// when called on a struct that embeds the mutex.
func (p *Pass) FuncFor(e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.CallExpr:
		return p.FuncFor(e.Fun)
	case *ast.ParenExpr:
		return p.FuncFor(e.X)
	case *ast.IndexExpr:
		// Explicit generic instantiation with one type argument,
		// f[T](...). A value index (m[k]) resolves X to a non-func
		// object and falls out nil below.
		return p.FuncFor(e.X)
	case *ast.IndexListExpr:
		// Explicit generic instantiation with several type arguments.
		return p.FuncFor(e.X)
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[e]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := p.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := p.TypesInfo.Uses[e].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// FullName renders f like types.Func.FullName: "time.Now",
// "(*sync.Mutex).Lock". A nil f yields "".
func FullName(f *types.Func) string {
	if f == nil {
		return ""
	}
	return f.FullName()
}
