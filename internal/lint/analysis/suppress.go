package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppressions indexes //lint:allow directives so drivers can filter
// findings. A directive of the form
//
//	//lint:allow name1,name2 optional justification
//
// suppresses diagnostics from the named analyzers on the directive's own
// line and on the line immediately below it (so it can ride at the end of
// the offending line or stand alone above it).
type Suppressions struct {
	// byFile maps filename -> line -> analyzer names allowed there.
	byFile map[string]map[int][]string
}

// CollectSuppressions scans the comments of files for //lint:allow
// directives.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byFile: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				names := strings.Fields(strings.TrimSpace(text))
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byFile[pos.Filename] = lines
				}
				// Only the first field names analyzers; the rest is prose.
				for _, name := range strings.Split(names[0], ",") {
					if name != "" {
						lines[pos.Line] = append(lines[pos.Line], name)
					}
				}
			}
		}
	}
	return s
}

// Allows reports whether a diagnostic from the named analyzer at position
// pos is suppressed by a directive on the same or the preceding line.
func (s *Suppressions) Allows(analyzer string, pos token.Position) bool {
	if s == nil {
		return false
	}
	lines, ok := s.byFile[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// Directive is one //lint:allow occurrence in source form — the unit of
// suppression debt the driver inventories (-suppressions) and ratchets
// against a checked-in budget.
type Directive struct {
	// File and Line locate the directive comment.
	File string
	Line int
	// Analyzers are the names the directive silences.
	Analyzers []string
	// Reason is the justification prose after the analyzer list.
	Reason string
}

// ListDirectives returns every //lint:allow directive in files, in
// source order.
func ListDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(strings.TrimSpace(text))
				if len(fields) == 0 {
					continue
				}
				var names []string
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						names = append(names, name)
					}
				}
				pos := fset.Position(c.Pos())
				out = append(out, Directive{
					File:      pos.Filename,
					Line:      pos.Line,
					Analyzers: names,
					Reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}
