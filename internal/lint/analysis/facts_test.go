package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

// fakePass builds a minimal Pass over a synthetic package for fact tests.
func fakePass(name, path string, store *FactStore) *Pass {
	return &Pass{
		Analyzer: &Analyzer{Name: name},
		Pkg:      types.NewPackage(path, "p"),
		Facts:    store,
	}
}

type countFact struct{ N int }

type nameFact struct{ Names []string }

func TestPackageFactRoundTrip(t *testing.T) {
	store := NewFactStore()
	exporter := fakePass("a", "example.com/dep", store)
	exporter.ExportPackageFact(&countFact{N: 7})
	exporter.ExportPackageFact(&nameFact{Names: []string{"x", "y"}})

	importer := fakePass("a", "example.com/top", store)
	var cf countFact
	if !importer.ImportPackageFact("example.com/dep", &cf) || cf.N != 7 {
		t.Fatalf("countFact round trip: got %+v, want N=7", cf)
	}
	var nf nameFact
	if !importer.ImportPackageFact("example.com/dep", &nf) || len(nf.Names) != 2 {
		t.Fatalf("nameFact round trip: got %+v", nf)
	}
	if importer.ImportPackageFact("example.com/absent", &cf) {
		t.Fatal("imported a fact from a package that exported none")
	}
}

func TestPackageFactKeyedByAnalyzer(t *testing.T) {
	store := NewFactStore()
	fakePass("a", "example.com/dep", store).ExportPackageFact(&countFact{N: 1})

	var cf countFact
	if fakePass("b", "example.com/top", store).ImportPackageFact("example.com/dep", &cf) {
		t.Fatal("analyzer b read analyzer a's fact")
	}
}

func TestObjectFactRoundTrip(t *testing.T) {
	store := NewFactStore()
	pkg := types.NewPackage("example.com/dep", "dep")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, "F", sig)
	other := types.NewFunc(token.NoPos, pkg, "G", sig)

	p := fakePass("a", "example.com/dep", store)
	p.ExportObjectFact(fn, &countFact{N: 3})

	var cf countFact
	if !p.ImportObjectFact(fn, &cf) || cf.N != 3 {
		t.Fatalf("object fact round trip: got %+v, want N=3", cf)
	}
	if p.ImportObjectFact(other, &cf) {
		t.Fatal("imported a fact about an object that has none")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	p := fakePass("a", "example.com/p", nil)
	p.ExportPackageFact(&countFact{N: 1}) // must not panic
	var cf countFact
	if p.ImportPackageFact("example.com/p", &cf) {
		t.Fatal("nil store produced a fact")
	}
}

func TestNonPointerFactsRejected(t *testing.T) {
	store := NewFactStore()
	p := fakePass("a", "example.com/p", store)
	p.ExportPackageFact(countFact{N: 1}) // value, not pointer: dropped
	var cf countFact
	if p.ImportPackageFact("example.com/p", &cf) {
		t.Fatal("value-typed export should have been dropped")
	}
	var nilPtr *countFact
	p.ExportPackageFact(nilPtr) // nil pointer: dropped, no panic
}
