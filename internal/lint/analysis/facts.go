package analysis

import (
	"go/types"
	"reflect"
	"sync"
)

// FactStore carries analyzer facts across packages within one driver run.
// The loader checks dependencies before their dependents, so an analyzer
// visiting package P may export facts about P (or P's objects) that every
// later pass over an importer of P can read back. This is the in-process
// analogue of golang.org/x/tools/go/analysis facts: because the whole run
// shares one type-checker and one process, facts need no serialization —
// they are keyed by (analyzer, fact type, subject) in memory.
//
// Facts must be pointers to named types; the fact's dynamic type is part
// of the key, so one analyzer can export several fact kinds about the same
// subject. A nil store is valid and empty: exports are dropped, imports
// report absence — analyzers degrade to per-package scope.
type FactStore struct {
	mu  sync.Mutex
	pkg map[factKey]any
	obj map[objFactKey]any
}

// factKey identifies one package-level fact.
type factKey struct {
	analyzer string
	path     string
	ftype    reflect.Type
}

// objFactKey identifies one object-level fact. Object identity is the
// *types.Object itself: the loader's process-wide package cache keeps one
// canonical object per declaration across a run.
type objFactKey struct {
	analyzer string
	obj      types.Object
	ftype    reflect.Type
}

// NewFactStore returns an empty store for one driver run.
func NewFactStore() *FactStore {
	return &FactStore{
		pkg: make(map[factKey]any),
		obj: make(map[objFactKey]any),
	}
}

// factType validates that fact is a non-nil pointer and returns its type.
func factType(fact any) (reflect.Type, bool) {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer || reflect.ValueOf(fact).IsNil() {
		return nil, false
	}
	return t, true
}

// copyFact copies the stored fact's pointee into ptr (same concrete type
// guaranteed by the type-keyed lookup).
func copyFact(stored, ptr any) {
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(stored).Elem())
}

// ExportPackageFact records a fact about the pass's own package. The fact
// must be a non-nil pointer; re-exporting the same fact type overwrites.
func (p *Pass) ExportPackageFact(fact any) {
	if p.Facts == nil || p.Pkg == nil {
		return
	}
	t, ok := factType(fact)
	if !ok {
		return
	}
	p.Facts.mu.Lock()
	defer p.Facts.mu.Unlock()
	p.Facts.pkg[factKey{p.Analyzer.Name, p.Pkg.Path(), t}] = fact
}

// ImportPackageFact copies the fact of ptr's type previously exported by
// this analyzer about the package at path into ptr, reporting whether one
// was found.
func (p *Pass) ImportPackageFact(path string, ptr any) bool {
	if p.Facts == nil {
		return false
	}
	t, ok := factType(ptr)
	if !ok {
		return false
	}
	p.Facts.mu.Lock()
	defer p.Facts.mu.Unlock()
	stored, found := p.Facts.pkg[factKey{p.Analyzer.Name, path, t}]
	if !found {
		return false
	}
	copyFact(stored, ptr)
	return true
}

// ExportObjectFact records a fact about obj — typically a *types.Func or
// *types.Var declared in the pass's package — readable by later passes of
// the same analyzer over any package that can reference obj.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	if p.Facts == nil || obj == nil {
		return
	}
	t, ok := factType(fact)
	if !ok {
		return
	}
	p.Facts.mu.Lock()
	defer p.Facts.mu.Unlock()
	p.Facts.obj[objFactKey{p.Analyzer.Name, obj, t}] = fact
}

// ImportObjectFact copies the fact of ptr's type about obj into ptr,
// reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr any) bool {
	if p.Facts == nil || obj == nil {
		return false
	}
	t, ok := factType(ptr)
	if !ok {
		return false
	}
	p.Facts.mu.Lock()
	defer p.Facts.mu.Unlock()
	stored, found := p.Facts.obj[objFactKey{p.Analyzer.Name, obj, t}]
	if !found {
		return false
	}
	copyFact(stored, ptr)
	return true
}
