// Package lint assembles Spectra's analyzer suite with the repository's
// invariants baked in: which packages are deterministic, where the metric
// registry lives, which calls block, which packages form the request path
// whose deadlines must propagate, and where the classified error boundary
// sits. cmd/spectralint runs this suite over one shared fact store, so the
// interprocedural analyzers (ctxflow, goroleak, lockorder, spanmetric) see
// across package boundaries; tests under internal/lint/* exercise each
// analyzer against golden packages.
package lint

import (
	"spectra/internal/lint/analysis"
	"spectra/internal/lint/ctxflow"
	"spectra/internal/lint/errclass"
	"spectra/internal/lint/goroleak"
	"spectra/internal/lint/lockhold"
	"spectra/internal/lint/lockorder"
	"spectra/internal/lint/metricname"
	"spectra/internal/lint/nilsafe"
	"spectra/internal/lint/spanmetric"
	"spectra/internal/lint/virtualclock"
)

// DeterministicPkgs are the packages whose code must read time only
// through the injected clock: the simulated substrate, the decision
// engine (solver, predictors), the network model, the scenario drivers
// that replay the paper's experiments, and the observability layer whose
// spans timestamp simulated operations. The live runtime (core's wall
// paths, rpc, monitor sampling, the daemons) is exempt; the one place the
// wall clock legitimately enters deterministic code — sim.RealClock — is
// annotated with //lint:allow virtualclock.
var DeterministicPkgs = []string{
	"spectra/internal/sim",
	"spectra/internal/solver",
	"spectra/internal/predict",
	"spectra/internal/simnet",
	"spectra/internal/scenario",
	"spectra/internal/obs",
}

// BlockingCalls are operations that must never run under a held mutex,
// beyond lockhold's built-ins (channel ops, selects, time.Sleep,
// WaitGroup.Wait): the RPC client's exchanges each hold the connection
// for a full network round trip — and the pooled variants may additionally
// wait for a free connection — Server.Close waits for serving goroutines,
// and net.Dial blocks on connection establishment.
var BlockingCalls = []string{
	"(*spectra/internal/rpc.Client).Call",
	"(*spectra/internal/rpc.Client).CallTraced",
	"(*spectra/internal/rpc.Client).CallContext",
	"(*spectra/internal/rpc.Client).Status",
	"(*spectra/internal/rpc.Client).StatusContext",
	"(*spectra/internal/rpc.Client).Ping",
	"(*spectra/internal/rpc.Client).PingContext",
	"(*spectra/internal/rpc.Pool).Call",
	"(*spectra/internal/rpc.Pool).CallTraced",
	"(*spectra/internal/rpc.Pool).CallContext",
	"(*spectra/internal/rpc.Pool).Status",
	"(*spectra/internal/rpc.Pool).StatusContext",
	"(*spectra/internal/rpc.Pool).Ping",
	"(*spectra/internal/rpc.Server).Close",
	"net.Dial",
}

// RegistryPkg declares the metric namespace (the M* constants).
const RegistryPkg = "spectra/internal/obs"

// ServiceNames share the spectra. prefix without naming metrics; spanmetric
// exempts them from registry resolution.
var ServiceNames = []string{"spectra.work"}

// ClassifiedPkgs form the error-classification boundary.
var ClassifiedPkgs = []string{"spectra/internal/rpc"}

// RequestPkgs are the packages forming the remote request path, where
// ctxflow's deadline-propagation rules apply: every function that reaches
// an RPC sink must thread the caller's context rather than minting a fresh
// one or calling a no-context variant.
var RequestPkgs = []string{
	"spectra/internal/core",
	"spectra/internal/rpc",
}

// RPCSinks are the exchange primitives a request-path function may reach:
// the concrete client/pool methods and the core runtime interface methods
// that dispatch to them (interface calls resolve to the interface method,
// so both spellings are needed).
var RPCSinks = []string{
	"(*spectra/internal/rpc.Client).Call",
	"(*spectra/internal/rpc.Client).CallTraced",
	"(*spectra/internal/rpc.Client).CallContext",
	"(*spectra/internal/rpc.Client).Status",
	"(*spectra/internal/rpc.Client).StatusContext",
	"(*spectra/internal/rpc.Client).Ping",
	"(*spectra/internal/rpc.Client).PingContext",
	"(*spectra/internal/rpc.Pool).Call",
	"(*spectra/internal/rpc.Pool).CallTraced",
	"(*spectra/internal/rpc.Pool).CallContext",
	"(*spectra/internal/rpc.Pool).Status",
	"(*spectra/internal/rpc.Pool).StatusContext",
	"(*spectra/internal/rpc.Pool).Ping",
	"(spectra/internal/core.Runtime).RemoteCall",
	"(spectra/internal/core.DeadlineRuntime).RemoteCallContext",
	"(spectra/internal/core.ParallelRuntime).ParallelRemote",
}

// CtxVariants maps each no-context sink variant to its Context-taking
// sibling: a request-path function holding a ctx must call the sibling.
var CtxVariants = map[string]string{
	"(*spectra/internal/rpc.Client).Call":        "CallContext",
	"(*spectra/internal/rpc.Client).CallTraced":  "CallContext",
	"(*spectra/internal/rpc.Client).Status":      "StatusContext",
	"(*spectra/internal/rpc.Client).Ping":        "PingContext",
	"(*spectra/internal/rpc.Pool).Call":          "CallContext",
	"(*spectra/internal/rpc.Pool).CallTraced":    "CallContext",
	"(*spectra/internal/rpc.Pool).Status":        "StatusContext",
	"(spectra/internal/core.Runtime).RemoteCall": "RemoteCallContext",
}

// CtxFacade are the compatibility wrappers whose documented contract is
// the no-context call path — each is a thin shim over its Context sibling
// with context.Background, kept for callers that have no deadline (setup,
// probes, benchmarks). They are exempt from ctxflow's rules; everything
// that *has* a budget must bypass them.
var CtxFacade = []string{
	"(*spectra/internal/rpc.Client).Call",
	"(*spectra/internal/rpc.Client).CallTraced",
	"(*spectra/internal/rpc.Client).Status",
	"(*spectra/internal/rpc.Client).Ping",
	"(*spectra/internal/rpc.Pool).Call",
	"(*spectra/internal/rpc.Pool).CallTraced",
	"(*spectra/internal/rpc.Pool).Status",
	"(*spectra/internal/rpc.Pool).Ping",
	"(*spectra/internal/core.NetRuntime).RemoteCall",
}

// Suite returns the analyzers configured for this repository, in the
// order the driver runs them. Instances carry per-run state (lockorder's
// edge graph, spanmetric's registry cache): build a fresh suite per run.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		virtualclock.New(virtualclock.Config{DeterministicPkgs: DeterministicPkgs}),
		nilsafe.New(),
		lockhold.New(lockhold.Config{Blocking: BlockingCalls}),
		metricname.New(metricname.Config{RegistryPkg: RegistryPkg}),
		errclass.New(errclass.Config{Packages: ClassifiedPkgs}),
		ctxflow.New(ctxflow.Config{
			RequestPkgs: RequestPkgs,
			Sinks:       RPCSinks,
			Variants:    CtxVariants,
			Facade:      CtxFacade,
		}),
		goroleak.New(),
		lockorder.New(),
		spanmetric.New(spanmetric.Config{
			RegistryPkg: RegistryPkg,
			Exempt:      ServiceNames,
		}),
	}
}
