// Package lint assembles Spectra's analyzer suite with the repository's
// invariants baked in: which packages are deterministic, where the metric
// registry lives, which calls block, and where the classified error
// boundary sits. cmd/spectralint runs this suite; tests under
// internal/lint/* exercise each analyzer against golden packages.
package lint

import (
	"spectra/internal/lint/analysis"
	"spectra/internal/lint/errclass"
	"spectra/internal/lint/lockhold"
	"spectra/internal/lint/metricname"
	"spectra/internal/lint/nilsafe"
	"spectra/internal/lint/virtualclock"
)

// DeterministicPkgs are the packages whose code must read time only
// through the injected clock: the simulated substrate, the decision
// engine (solver, predictors), the network model, the scenario drivers
// that replay the paper's experiments, and the observability layer whose
// spans timestamp simulated operations. The live runtime (core's wall
// paths, rpc, monitor sampling, the daemons) is exempt; the one place the
// wall clock legitimately enters deterministic code — sim.RealClock — is
// annotated with //lint:allow virtualclock.
var DeterministicPkgs = []string{
	"spectra/internal/sim",
	"spectra/internal/solver",
	"spectra/internal/predict",
	"spectra/internal/simnet",
	"spectra/internal/scenario",
	"spectra/internal/obs",
}

// BlockingCalls are operations that must never run under a held mutex,
// beyond lockhold's built-ins (channel ops, selects, time.Sleep,
// WaitGroup.Wait): the RPC client's exchanges each hold the connection
// for a full network round trip — and the pooled variants may additionally
// wait for a free connection — Server.Close waits for serving goroutines,
// and net.Dial blocks on connection establishment.
var BlockingCalls = []string{
	"(*spectra/internal/rpc.Client).Call",
	"(*spectra/internal/rpc.Client).CallTraced",
	"(*spectra/internal/rpc.Client).CallContext",
	"(*spectra/internal/rpc.Client).Status",
	"(*spectra/internal/rpc.Client).StatusContext",
	"(*spectra/internal/rpc.Client).Ping",
	"(*spectra/internal/rpc.Client).PingContext",
	"(*spectra/internal/rpc.Pool).Call",
	"(*spectra/internal/rpc.Pool).CallTraced",
	"(*spectra/internal/rpc.Pool).CallContext",
	"(*spectra/internal/rpc.Pool).Status",
	"(*spectra/internal/rpc.Pool).StatusContext",
	"(*spectra/internal/rpc.Pool).Ping",
	"(*spectra/internal/rpc.Server).Close",
	"net.Dial",
}

// RegistryPkg declares the metric namespace (the M* constants).
const RegistryPkg = "spectra/internal/obs"

// ClassifiedPkgs form the error-classification boundary.
var ClassifiedPkgs = []string{"spectra/internal/rpc"}

// Suite returns the analyzers configured for this repository, in the
// order the driver runs them.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		virtualclock.New(virtualclock.Config{DeterministicPkgs: DeterministicPkgs}),
		nilsafe.New(),
		lockhold.New(lockhold.Config{Blocking: BlockingCalls}),
		metricname.New(metricname.Config{RegistryPkg: RegistryPkg}),
		errclass.New(errclass.Config{Packages: ClassifiedPkgs}),
	}
}
