// Package locks is a golden package for the lockhold analyzer.
package locks

import (
	"sync"
	"time"
)

// remoteCall stands in for an RPC exchange; the test config lists it in
// Blocking, the way the real suite lists rpc.Client.Call.
func remoteCall() {}

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

// sleepUnderLock is the paradigm violation.
func (b *box) sleepUnderLock() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking operation \(time\.Sleep\) while b\.mu is locked`
	b.mu.Unlock()
}

// sleepAfterUnlock releases first: clean.
func (b *box) sleepAfterUnlock() {
	b.mu.Lock()
	b.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// deferredUnlockHolds: a deferred Unlock keeps the lock to function end,
// so the receive below still runs under it.
func (b *box) deferredUnlockHolds() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `blocking operation \(channel receive\) while b\.mu is locked`
}

// sendUnderReadLock: read locks block writers just the same.
func (b *box) sendUnderReadLock() {
	b.rw.RLock()
	b.ch <- 1 // want `blocking operation \(channel send\) while b\.rw is locked`
	b.rw.RUnlock()
}

// selectUnderLock: a select with no default can park the goroutine.
func (b *box) selectUnderLock() {
	b.mu.Lock()
	select { // want `blocking operation \(select with no default clause\) while b\.mu is locked`
	case v := <-b.ch:
		_ = v
	}
	b.mu.Unlock()
}

// selectWithDefault never parks: clean.
func (b *box) selectWithDefault() {
	b.mu.Lock()
	select {
	case v := <-b.ch:
		_ = v
	default:
	}
	b.mu.Unlock()
}

// waitUnderLock: WaitGroup.Wait is a built-in blocking call.
func (b *box) waitUnderLock() {
	b.mu.Lock()
	b.wg.Wait() // want `blocking operation \(\(\*sync\.WaitGroup\)\.Wait\) while b\.mu is locked`
	b.mu.Unlock()
}

// rpcUnderLock: the configured Blocking list extends the built-ins.
func (b *box) rpcUnderLock() {
	b.mu.Lock()
	remoteCall() // want `blocking operation .*remoteCall\) while b\.mu is locked`
	b.mu.Unlock()
}

// goroutineDoesNotHold: the spawned goroutine runs without the caller's
// locks, so its sleep is not a violation.
func (b *box) goroutineDoesNotHold() {
	b.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	b.mu.Unlock()
}

// funcLitNotDescended: a literal assigned under the lock runs later (or
// elsewhere); its body is out of scope for this intra-procedural pass.
func (b *box) funcLitNotDescended() func() {
	b.mu.Lock()
	f := func() { b.wg.Wait() }
	b.mu.Unlock()
	return f
}

// branchStateIsLocal: a lock taken inside one branch does not poison the
// statements after the branch.
func (b *box) branchStateIsLocal(cond bool) {
	if cond {
		b.mu.Lock()
		b.mu.Unlock()
	}
	time.Sleep(time.Millisecond)
}

// allowed carries the sanctioned annotation: the author judged the hold
// acceptable and said why.
func (b *box) allowed() {
	b.mu.Lock()
	//lint:allow lockhold golden test of the suppression path
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}
