package lockhold_test

import (
	"testing"

	"spectra/internal/lint/linttest"
	"spectra/internal/lint/lockhold"
)

func TestLockHold(t *testing.T) {
	a := lockhold.New(lockhold.Config{
		Blocking: []string{"spectra/internal/lint/lockhold/testdata/src/locks.remoteCall"},
	})
	linttest.Run(t, a, "./testdata/src/locks")
}
