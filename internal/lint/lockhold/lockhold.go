// Package lockhold flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held — the deadlock class behind PR 1's
// failover/health-tracker fix: a mutex held across an RPC call or channel
// wait stalls every other goroutine that needs the lock, turning one slow
// server into a frozen client.
//
// The analysis is intra-procedural and syntactic over the statement list:
// a call to (*sync.Mutex).Lock / (*sync.RWMutex).Lock / RLock marks the
// receiver expression as held until the matching Unlock on the same
// statement path; a deferred Unlock holds the lock to the end of the
// function. While any lock is held, the analyzer reports channel sends and
// receives, selects with no default clause, time.Sleep,
// (*sync.WaitGroup).Wait, and calls in the configured Blocking list
// (typically the RPC client's exchange methods). sync.Cond.Wait is
// exempt: it is specified to be called with the lock held.
//
// Function literals are not descended into — they usually run on another
// goroutine that does not hold the caller's locks.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"spectra/internal/lint/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// Blocking lists extra functions (types.Func.FullName form, e.g.
	// "(*spectra/internal/rpc.Client).Call" or "net.Dial") to treat as
	// blocking in addition to the built-in set.
	Blocking []string
}

// builtinBlocking are always treated as blocking calls.
var builtinBlocking = []string{
	"time.Sleep",
	"(*sync.WaitGroup).Wait",
}

// lock method full names, mapped to whether the call acquires (true) or
// releases (false).
var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":     true,
	"(*sync.Mutex).Unlock":   false,
	"(*sync.RWMutex).Lock":   true,
	"(*sync.RWMutex).RLock":  true,
	"(*sync.RWMutex).Unlock": false,
	// RUnlock releases; TryLock is ignored (its result gates an if).
	"(*sync.RWMutex).RUnlock": false,
}

// New returns the analyzer.
func New(cfg Config) *analysis.Analyzer {
	blocking := make(map[string]bool)
	for _, name := range builtinBlocking {
		blocking[name] = true
	}
	for _, name := range cfg.Blocking {
		blocking[name] = true
	}
	return &analysis.Analyzer{
		Name: "lockhold",
		Doc: "flags blocking operations (channel ops, selects, sleeps, RPC " +
			"calls) while a sync.Mutex/RWMutex is held; release the lock " +
			"before blocking or annotate with //lint:allow lockhold",
		Run: func(pass *analysis.Pass) error {
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					w := &walker{pass: pass, blocking: blocking}
					w.stmts(fn.Body.List, map[string]token.Pos{})
				}
			}
			return nil
		},
	}
}

type walker struct {
	pass     *analysis.Pass
	blocking map[string]bool
}

// stmts processes a statement list sequentially, threading the held-lock
// set through it. Branch bodies run on clones: their lock-state effects
// are local (the conservative join keeps the pre-branch state).
func (w *walker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range list {
		w.stmt(stmt, held)
	}
}

func (w *walker) stmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, acquire, ok := w.lockOp(s.X); ok {
			if acquire {
				held[key] = s.Pos()
			} else {
				delete(held, key)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end; any other
		// deferred work runs after the function's own statements, so it is
		// not a blocking point on this path.
		return
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks.
		return
	case *ast.SendStmt:
		w.reportBlocked(s.Pos(), "channel send", held)
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, clone(held))
		if s.Else != nil {
			w.stmt(s.Else, clone(held))
		}
	case *ast.ForStmt:
		inner := clone(held)
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.expr(s.Cond, inner)
		}
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, held)
				}
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !hasDefault(s) {
			w.reportBlocked(s.Pos(), "select with no default clause", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	}
}

// expr scans an expression for blocking operations, skipping function
// literals.
func (w *walker) expr(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportBlocked(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			f := w.pass.FuncFor(n.Fun)
			if name := analysis.FullName(f); name != "" && w.blocking[name] {
				w.reportBlocked(n.Pos(), name, held)
			}
		}
		return true
	})
}

// lockOp recognizes a statement-level mutex acquire/release call and
// returns a key identifying the lock (the rendered receiver expression).
func (w *walker) lockOp(e ast.Expr) (key string, acquire, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	f := w.pass.FuncFor(sel)
	acq, isLock := lockMethods[analysis.FullName(f)]
	if !isLock {
		return "", false, false
	}
	return types.ExprString(sel.X), acq, true
}

func (w *walker) reportBlocked(pos token.Pos, what string, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	for key, lockPos := range held {
		w.pass.Reportf(pos,
			"blocking operation (%s) while %s is locked (acquired at %s); release the lock first",
			what, key, w.pass.Fset.Position(lockPos))
	}
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
