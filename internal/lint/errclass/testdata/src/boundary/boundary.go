// Package boundary is a golden package for the errclass analyzer: it
// models an RPC transport whose returned errors must carry a class.
package boundary

import (
	"errors"
	"fmt"
)

// FaultError is the classification wrapper (cf. rpc.TransportError).
type FaultError struct {
	Op  string
	Err error
}

// Error implements error.
func (e *FaultError) Error() string { return e.Op + ": " + e.Err.Error() }

// Unwrap exposes the cause.
func (e *FaultError) Unwrap() error { return e.Err }

// ErrClosed is a named sentinel: package-level construction is fine, the
// name makes the class testable with errors.Is.
var ErrClosed = errors.New("boundary: closed")

func bad() error {
	return errors.New("boundary: transient glitch") // want `unclassified error \(errors\.New\) returned across the rpc boundary`
}

func badf(code int) error {
	return fmt.Errorf("boundary: code %d", code) // want `unclassified error \(fmt\.Errorf\) returned across the rpc boundary`
}

// badClosure: closures inside the boundary return across it just as
// easily as named functions.
func badClosure() error {
	f := func() error {
		return errors.New("boundary: from closure") // want `unclassified error \(errors\.New\)`
	}
	return f()
}

// wrapped is the sanctioned pattern: the raw construction is nested
// inside the classification wrapper, which carries the class.
func wrapped(code int) error {
	return &FaultError{Op: "call", Err: fmt.Errorf("code %d", code)}
}

// sentinel returns a nameable, classifiable error.
func sentinel() error {
	return ErrClosed
}

// allowed carries the escape hatch.
func allowed() error {
	//lint:allow errclass golden test of the suppression path
	return errors.New("boundary: annotated")
}
