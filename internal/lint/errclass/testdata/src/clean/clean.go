// Package clean returns raw errors outside any configured boundary: the
// errclass analyzer must stay silent here.
package clean

import "errors"

func plain() error {
	return errors.New("clean: anything goes outside the boundary")
}
