// Package errclass keeps errors crossing the RPC boundary classified.
// Spectra's retry, failover, and circuit-breaker logic branches on error
// class (rpc.IsTransient / rpc.IsRemote): a fresh, anonymous error built
// with errors.New or fmt.Errorf at a return site in the RPC package is
// invisible to that logic — it is neither transient (no retry, no
// failover) nor remote, so callers silently fall into the most
// conservative path and overhead accounting skews (cf. the fast cyber
// foraging literature's dependence on accurate failure attribution).
//
// Rule: inside the configured packages, a return statement must not
// return a direct errors.New(...) or fmt.Errorf(...) call. Classify the
// failure instead: wrap it in one of the classification types
// (*TransportError, *RemoteError), or declare a package-level sentinel
// (var ErrX = errors.New(...)) so the class is nameable and testable with
// errors.Is. Constructions nested inside a classification wrapper —
// &TransportError{Err: fmt.Errorf(...)} — are fine: the wrapper carries
// the class.
package errclass

import (
	"go/ast"

	"spectra/internal/lint/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// Packages lists the import paths forming the classified boundary
	// (exact match), typically the RPC transport package.
	Packages []string
}

// rawConstructors build anonymous, unclassified errors.
var rawConstructors = map[string]bool{
	"errors.New": true,
	"fmt.Errorf": true,
}

// New returns the analyzer.
func New(cfg Config) *analysis.Analyzer {
	pkgs := make(map[string]bool, len(cfg.Packages))
	for _, p := range cfg.Packages {
		pkgs[p] = true
	}
	return &analysis.Analyzer{
		Name: "errclass",
		Doc: "errors returned inside the RPC boundary must be classified " +
			"(*TransportError, *RemoteError, or a named sentinel), never a " +
			"bare errors.New/fmt.Errorf, so retry and circuit-breaker logic " +
			"can see the error class",
		Run: func(pass *analysis.Pass) error {
			if !pkgs[pass.Pkg.Path()] {
				return nil
			}
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					checkBody(pass, fn.Body)
				}
			}
			return nil
		},
	}
}

// checkBody flags raw error constructions returned from fn's own body.
// Function literals are checked too: closures inside the boundary return
// across it just as easily.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			name := analysis.FullName(pass.FuncFor(call.Fun))
			if rawConstructors[name] {
				pass.Reportf(call.Pos(),
					"unclassified error (%s) returned across the rpc boundary; wrap it in *TransportError/*RemoteError or return a named sentinel so IsTransient/IsRemote can classify it", name)
			}
		}
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
