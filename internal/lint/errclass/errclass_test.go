package errclass_test

import (
	"testing"

	"spectra/internal/lint/errclass"
	"spectra/internal/lint/linttest"
)

func TestBoundary(t *testing.T) {
	a := errclass.New(errclass.Config{
		Packages: []string{"spectra/internal/lint/errclass/testdata/src/boundary"},
	})
	linttest.Run(t, a, "./testdata/src/boundary")
}

// TestOutsideBoundary: with no configured packages the analyzer is inert.
func TestOutsideBoundary(t *testing.T) {
	a := errclass.New(errclass.Config{})
	linttest.Run(t, a, "./testdata/src/clean")
}
