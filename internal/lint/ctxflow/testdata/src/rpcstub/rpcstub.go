// Package rpcstub is the ctxflow golden dependency: it declares the sink
// methods (Call / CallContext), the sanctioned facade wrapper, and an
// exported helper whose network-reachability must cross the package
// boundary as a fact.
package rpcstub

import "context"

// Conn stands in for the RPC client.
type Conn struct{}

// Call is the no-context compatibility wrapper — the facade. The test
// configuration lists it in Config.Facade, so its fresh root is exempt.
func (c *Conn) Call(op string) error {
	return c.CallContext(context.Background(), op)
}

// CallContext is the context-threading exchange primitive (a sink).
func (c *Conn) CallContext(ctx context.Context, op string) error {
	_ = ctx
	_ = op
	return nil
}

// Exchange reaches the sink one hop out; importers must learn that from
// the exported fact, not from the sink list.
func Exchange(ctx context.Context, c *Conn, op string) error {
	return c.CallContext(ctx, op)
}
