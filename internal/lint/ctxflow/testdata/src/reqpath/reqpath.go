// Package reqpath is the ctxflow golden request-path package: every way a
// caller can detach an exchange from its budget, plus the clean and
// sanctioned shapes.
package reqpath

import (
	"context"

	"spectra/internal/lint/ctxflow/testdata/src/rpcstub"
)

// Fresh mints a root right at the exchange.
func Fresh(c *rpcstub.Conn) error {
	return c.CallContext(context.Background(), "x") // want `Fresh mints a fresh context with context.Background`
}

// FreshTODO is the TODO spelling of the same escape.
func FreshTODO(c *rpcstub.Conn) error {
	return c.CallContext(context.TODO(), "x") // want `FreshTODO mints a fresh context with context.TODO`
}

// helper reaches the sink; Indirect reaches it only through helper.
func helper(c *rpcstub.Conn) error {
	return c.CallContext(context.Background(), "x") // want `helper mints a fresh context`
}

// Indirect itself mints nothing, so only helper is reported.
func Indirect(c *rpcstub.Conn) error { return helper(c) }

// CrossPkg reaches the sink only through rpcstub.Exchange — known via the
// imported fact, not the sink list.
func CrossPkg(c *rpcstub.Conn) error {
	return rpcstub.Exchange(context.Background(), c, "x") // want `CrossPkg mints a fresh context`
}

// Downgrade receives a context but calls the no-context variant.
func Downgrade(ctx context.Context, c *rpcstub.Conn) error {
	_ = ctx
	return c.Call("x") // want `Downgrade receives a context.Context but calls .*Call, dropping it`
}

// Threads is the correct shape.
func Threads(ctx context.Context, c *rpcstub.Conn) error {
	return c.CallContext(ctx, "x")
}

// InGoroutine mints the root inside a spawned literal; the literal's
// calls attribute to the enclosing declaration.
func InGoroutine(c *rpcstub.Conn) {
	go func() {
		_ = c.CallContext(context.Background(), "x") // want `InGoroutine mints a fresh context`
	}()
}

// Unrelated never reaches a sink, so its fresh root is fine.
func Unrelated() context.Context {
	return context.Background()
}

// Sanctioned is an annotated budget root: allowed.
func Sanctioned(c *rpcstub.Conn) error {
	ctx := context.Background() //lint:allow ctxflow golden sanctioned budget root
	return c.CallContext(ctx, "x")
}

// UsesRoot launders the root through Unrelated — the documented soundness
// limit: named root helpers are the reviewable chokepoint, not a finding.
func UsesRoot(c *rpcstub.Conn) error {
	return c.CallContext(Unrelated(), "x")
}
