// Package ctxflow enforces deadline propagation on Spectra's request
// paths: the tail-latency guarantees of the deadline/hedging/multiplexing
// work hold only if every remote exchange runs inside the operation's
// budget, and a single context.Background() anywhere on the path silently
// detaches everything downstream of it from that budget — failover rungs
// and parallel branches then run unbounded, exactly the escapes this
// analyzer was built to catch.
//
// The analysis is interprocedural. A function "reaches the network" when
// one of the configured sink calls (the RPC exchange primitives, by
// types.Func.FullName — concrete methods and the runtime interfaces both)
// is reachable from it through the package call graph; reachability
// crosses package boundaries via object facts exported in dependency
// order. Within the configured request-path packages, two rules apply to
// every network-reaching function:
//
//  1. No fresh roots: calls to context.Background / context.TODO are
//     forbidden. A sanctioned budget root (the one place an operation's
//     latency budget becomes a context) is annotated //lint:allow ctxflow;
//     compatibility wrappers whose contract is exactly "the no-context
//     variant" are listed in Config.Facade.
//  2. No variant downgrades: a function that receives a context.Context
//     must not call a sink's no-context variant (Config.Variants names the
//     Context-taking sibling) — dropping the caller's context at the last
//     hop unbounds the exchange just as surely as a fresh root.
//
// Soundness limits: calls through function values produce no edge, and
// interface calls resolve to the interface method (name the interface
// methods as sinks, as the default Spectra configuration does). A helper
// that wraps context.Background and is called from a request path is not
// flagged (the helper itself does not reach a sink) — that is deliberate:
// it forces fresh roots out of request functions into named, reviewable
// root helpers.
package ctxflow

import (
	"go/ast"
	"go/types"

	"spectra/internal/lint/analysis"
	"spectra/internal/lint/callgraph"
)

// Config tunes the analyzer.
type Config struct {
	// RequestPkgs are the import paths whose functions are subject to the
	// rules. Facts are exported from every package regardless, so
	// reachability flows through intermediate packages.
	RequestPkgs []string
	// Sinks are the RPC exchange primitives (types.Func.FullName form):
	// concrete client/pool methods and the runtime interface methods that
	// dispatch to them.
	Sinks []string
	// Variants maps a no-context sink variant (FullName) to the name of
	// its Context-taking sibling, for rule 2's diagnostic.
	Variants map[string]string
	// Facade lists functions (FullName) exempt from both rules: the
	// compatibility wrappers whose documented contract is the no-context
	// call path.
	Facade []string
}

// reachesFact marks a function from which a configured sink is reachable;
// Sink records one witness for diagnostics.
type reachesFact struct {
	Sink string
}

// rootFuncs are the forbidden fresh-context constructors.
var rootFuncs = map[string]bool{
	"context.Background": true,
	"context.TODO":       true,
}

// New returns the analyzer.
func New(cfg Config) *analysis.Analyzer {
	sinks := make(map[string]bool, len(cfg.Sinks))
	for _, s := range cfg.Sinks {
		sinks[s] = true
	}
	facade := make(map[string]bool, len(cfg.Facade))
	for _, f := range cfg.Facade {
		facade[f] = true
	}
	request := make(map[string]bool, len(cfg.RequestPkgs))
	for _, p := range cfg.RequestPkgs {
		request[p] = true
	}
	return &analysis.Analyzer{
		Name: "ctxflow",
		Doc: "request-path functions that reach an RPC sink must not mint " +
			"fresh contexts (context.Background/TODO) or drop a received " +
			"context by calling a no-context call variant; thread the " +
			"caller's ctx so deadlines propagate end to end",
		Run: func(pass *analysis.Pass) error {
			g := callgraph.Build(pass)
			reach := computeReach(pass, g, sinks)

			// Export facts for every network-reaching declared function so
			// dependent packages see through this one.
			for fn, sink := range reach {
				pass.ExportObjectFact(fn, &reachesFact{Sink: sink})
			}

			if !request[pass.Pkg.Path()] {
				return nil
			}
			for _, node := range g.Nodes() {
				sink, onPath := reach[node.Func]
				if !onPath || facade[analysis.FullName(node.Func)] {
					continue
				}
				checkFreshRoots(pass, node, sink)
				checkVariantDowngrade(pass, node, cfg.Variants)
			}
			return nil
		},
	}
}

// computeReach finds which declared functions reach a sink, with one
// witness sink name each: a fixpoint over the package call graph seeded by
// the sink list and by facts imported from dependency packages.
func computeReach(pass *analysis.Pass, g *callgraph.Graph, sinks map[string]bool) map[*types.Func]string {
	reach := make(map[*types.Func]string)
	// external answers sink-ness for callees not declared in this package.
	external := func(f *types.Func) (string, bool) {
		if name := analysis.FullName(f); sinks[name] {
			return name, true
		}
		var fact reachesFact
		if pass.ImportObjectFact(f, &fact) {
			return fact.Sink, true
		}
		return "", false
	}
	// Seed declared functions that are themselves sinks (their bodies are
	// the facade boundary's inside; rule 1 still applies to them).
	for _, n := range g.Nodes() {
		if name := analysis.FullName(n.Func); sinks[name] {
			reach[n.Func] = name
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if _, done := reach[n.Func]; done {
				continue
			}
			for _, e := range n.Calls {
				if callee, declared := e.Callee, g.Node(e.Callee); declared != nil {
					if sink, ok := reach[callee]; ok {
						reach[n.Func] = sink
						changed = true
						break
					}
				} else if sink, ok := external(e.Callee); ok {
					reach[n.Func] = sink
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// checkFreshRoots reports context.Background/TODO calls anywhere in the
// function body, nested literals included.
func checkFreshRoots(pass *analysis.Pass, node *callgraph.Node, sink string) {
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := analysis.FullName(pass.FuncFor(call.Fun))
		if rootFuncs[name] {
			pass.Reportf(call.Pos(),
				"%s mints a fresh context with %s on a request path that reaches %s; thread the caller's ctx so the operation budget propagates (annotate sanctioned budget roots with //lint:allow ctxflow)",
				node.Func.Name(), name, sink)
		}
		return true
	})
}

// checkVariantDowngrade reports no-context sink-variant calls from
// functions that received a context.
func checkVariantDowngrade(pass *analysis.Pass, node *callgraph.Node, variants map[string]string) {
	if variants == nil || !hasContextParam(node.Func) {
		return
	}
	for _, e := range node.Calls {
		name := analysis.FullName(e.Callee)
		sibling, downgrade := variants[name]
		if !downgrade {
			continue
		}
		pass.Reportf(e.Pos,
			"%s receives a context.Context but calls %s, dropping it at the last hop; call %s with the caller's ctx",
			node.Func.Name(), name, sibling)
	}
}

// hasContextParam reports whether fn's signature takes a context.Context.
func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType recognizes context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
