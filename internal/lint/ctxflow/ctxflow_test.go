package ctxflow_test

import (
	"testing"

	"spectra/internal/lint/ctxflow"
	"spectra/internal/lint/linttest"
)

const (
	stubPath = "spectra/internal/lint/ctxflow/testdata/src/rpcstub"
	reqPath  = "spectra/internal/lint/ctxflow/testdata/src/reqpath"
)

func golden() ctxflow.Config {
	return ctxflow.Config{
		RequestPkgs: []string{stubPath, reqPath},
		Sinks: []string{
			"(*" + stubPath + ".Conn).Call",
			"(*" + stubPath + ".Conn).CallContext",
		},
		Variants: map[string]string{
			"(*" + stubPath + ".Conn).Call": "CallContext",
		},
		Facade: []string{
			"(*" + stubPath + ".Conn).Call",
		},
	}
}

// TestGolden runs both packages in one program, dependency first, so the
// cross-package fact (rpcstub.Exchange reaches the sink) is exported
// before reqpath is analyzed.
func TestGolden(t *testing.T) {
	linttest.Run(t, ctxflow.New(golden()), "./testdata/src/rpcstub", "./testdata/src/reqpath")
}

// TestRequestPkgScoping verifies packages outside RequestPkgs are never
// reported even when they mint roots on sink-reaching paths.
func TestRequestPkgScoping(t *testing.T) {
	cfg := golden()
	cfg.RequestPkgs = []string{stubPath} // reqpath out of scope: its wants must not fire...
	a := ctxflow.New(cfg)
	// ...so run only the dependency package, which is clean by itself.
	linttest.Run(t, a, "./testdata/src/rpcstub")
}
