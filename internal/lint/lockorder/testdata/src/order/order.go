// Package order is the lockorder golden package: acquisition-order
// inversions within one package, direct and through callees.
package order

import "sync"

// S carries the mutex fields under test.
type S struct {
	mu1 sync.Mutex
	mu2 sync.Mutex
	c   sync.Mutex
	d   sync.Mutex
	e   sync.Mutex
	f   sync.Mutex
	g   sync.Mutex
}

// TakeAB establishes mu1 -> mu2.
func TakeAB(s *S) {
	s.mu1.Lock()
	s.mu2.Lock()
	s.mu2.Unlock()
	s.mu1.Unlock()
}

// TakeBA inverts the order: the mu1 acquisition completes the cycle.
func TakeBA(s *S) {
	s.mu2.Lock()
	s.mu1.Lock() // want `acquiring .*S\.mu1 while holding .*S\.mu2 creates a lock-order cycle`
	s.mu1.Unlock()
	s.mu2.Unlock()
}

// lockD acquires d; callers holding other locks inherit the edge.
func lockD(s *S) {
	s.d.Lock()
	s.d.Unlock()
}

// CThenD establishes c -> d through the callee's acquired set.
func CThenD(s *S) {
	s.c.Lock()
	lockD(s)
	s.c.Unlock()
}

// DThenC inverts directly against the callee-borne edge.
func DThenC(s *S) {
	s.d.Lock()
	s.c.Lock() // want `acquiring .*S\.c while holding .*S\.d creates a lock-order cycle`
	s.c.Unlock()
	s.d.Unlock()
}

// Package-level mutexes are identified by package path and name.
var (
	muG sync.Mutex
	muH sync.Mutex
)

// GH establishes muG -> muH.
func GH() {
	muG.Lock()
	muH.Lock()
	muH.Unlock()
	muG.Unlock()
}

// HG inverts.
func HG() {
	muH.Lock()
	muG.Lock() // want `acquiring .*order\.muG while holding .*order\.muH creates a lock-order cycle`
	muG.Unlock()
	muH.Unlock()
}

// Box embeds its mutex; the promoted Lock carries the type's identity.
type Box struct {
	sync.Mutex
}

// BoxThenE establishes Box -> S.e.
func BoxThenE(b *Box, s *S) {
	b.Lock()
	s.e.Lock()
	s.e.Unlock()
	b.Unlock()
}

// EThenBox inverts against the embedded-mutex identity.
func EThenBox(b *Box, s *S) {
	s.e.Lock()
	b.Lock() // want `acquiring .*order\.Box while holding .*S\.e creates a lock-order cycle`
	b.Unlock()
	s.e.Unlock()
}

// Released does not order mu2 before mu1: mu2 is gone by then.
func Released(s *S) {
	s.mu2.Lock()
	s.mu2.Unlock()
	s.mu1.Lock()
	s.mu1.Unlock()
}

// Locals have no stable identity and are skipped entirely.
func Locals() {
	var a, b sync.Mutex
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

// FG establishes f -> g.
func FG(s *S) {
	s.f.Lock()
	s.g.Lock()
	s.g.Unlock()
	s.f.Unlock()
}

// GFAllowed inverts deliberately; the annotation suppresses the finding.
func GFAllowed(s *S) {
	s.g.Lock()
	//lint:allow lockorder deliberate teardown-path inversion, guarded by a single caller
	s.f.Lock()
	s.f.Unlock()
	s.g.Unlock()
}
