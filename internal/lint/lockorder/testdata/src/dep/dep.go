// Package dep establishes lock-order edges that the use package must see
// through acquiresFact object facts.
package dep

import "sync"

// Store carries a mutex field with cross-package identity.
type Store struct {
	Mu sync.Mutex
}

// Reg is a package-level mutex.
var Reg sync.Mutex

// LockBoth establishes Reg -> Store.Mu and exports an acquired set of
// both locks.
func LockBoth(s *Store) {
	Reg.Lock()
	s.Mu.Lock()
	s.Mu.Unlock()
	Reg.Unlock()
}
