// Package use inverts lock orders established in dep; the findings here
// depend on edges carried across the package boundary by facts.
package use

import (
	"sync"

	"spectra/internal/lint/lockorder/testdata/src/dep"
)

// Mu is this package's own lock.
var Mu sync.Mutex

// Under calls into dep while holding Mu; the imported fact charges
// dep.Reg and dep.Store.Mu here, establishing Mu -> Reg and Mu -> Store.Mu.
func Under(s *dep.Store) {
	Mu.Lock()
	dep.LockBoth(s)
	Mu.Unlock()
}

// InvertVar completes the cycle against the fact-borne Mu -> Reg edge.
func InvertVar() {
	dep.Reg.Lock()
	Mu.Lock() // want `acquiring .*use\.Mu while holding .*dep\.Reg creates a lock-order cycle`
	Mu.Unlock()
	dep.Reg.Unlock()
}

// InvertField completes the cycle against the fact-borne Mu -> Store.Mu
// edge, locking the foreign field directly.
func InvertField(s *dep.Store) {
	s.Mu.Lock()
	Mu.Lock() // want `acquiring .*use\.Mu while holding .*dep\.Store\.Mu creates a lock-order cycle`
	Mu.Unlock()
	s.Mu.Unlock()
}
