// Package lockorder detects lock-ordering cycles across the whole
// program — the ABBA deadlock class that lockhold (which only sees a
// blocking call under one lock) cannot: goroutine 1 holds A and wants B
// while goroutine 2 holds B and wants A, and both stall forever with no
// blocking *operation* in sight, just two Lock calls in opposite orders.
//
// Locks are identified structurally, not per instance: a mutex field is
// "pkg.Type.field", a package-level mutex is "pkg.var", and a promoted
// (embedded) mutex is "pkg.Type". Function-local mutexes have no stable
// cross-function identity and are skipped. Identifying by type means two
// *instances* of one type locked in opposite orders also report — which is
// the classic ABBA shape — at the cost of flagging deliberate
// instance-ordered hierarchies (annotate those //lint:allow lockorder).
//
// Per function, a statement walk (same discipline as lockhold: branches on
// cloned state, literals skipped, deferred Unlock holds to function end)
// records every ordered pair (A held, B acquired). Acquisitions inside
// callees count too: each function's transitively-acquired lock set is
// computed to a fixpoint over the package call graph and exported as an
// object fact, so a call made under a lock contributes edges for
// everything the callee (even in another package) eventually locks.
//
// Edges accumulate in the analyzer instance across every package of the
// run, riding the driver's deps-before-dependents order. When a new edge
// A→B closes a directed cycle among the accumulated edges, the acquisition
// that completed it is reported with the full cycle path; each edge
// reports at most once, at the first site that introduces it.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"spectra/internal/lint/analysis"
	"spectra/internal/lint/callgraph"
)

// acquiresFact records the locks a function acquires, directly or through
// its callees, for importers to consult at call sites made under a lock.
type acquiresFact struct {
	// Locks are lock identities, sorted.
	Locks []string
}

// lock method full names; value is true for acquire, false for release.
var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).Unlock":    false,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).Unlock":  false,
	"(*sync.RWMutex).RUnlock": false,
}

// New returns the analyzer. One instance accumulates the program-wide
// edge set; create a fresh instance per run.
func New() *analysis.Analyzer {
	g := &global{edges: map[string]map[string]token.Pos{}}
	return &analysis.Analyzer{
		Name: "lockorder",
		Doc: "detects lock-ordering cycles program-wide: if one path acquires " +
			"mutex B while holding A and another acquires A while holding B " +
			"(directly or through callees), the two paths can deadlock; " +
			"acquire locks in one consistent global order or annotate the " +
			"deliberate inversion with //lint:allow lockorder",
		Run: func(pass *analysis.Pass) error {
			g.run(pass)
			return nil
		},
	}
}

// global is the per-run accumulator: the ordered-acquisition graph over
// lock identities, merged across every analyzed package.
type global struct {
	// edges[a][b] is the position that first established "b acquired while
	// a held".
	edges map[string]map[string]token.Pos
}

func (g *global) run(pass *analysis.Pass) {
	cg := callgraph.Build(pass)
	acquired := computeAcquired(pass, cg)
	for fn, locks := range acquired {
		if len(locks) > 0 {
			pass.ExportObjectFact(fn, &acquiresFact{Locks: sortedKeys(locks)})
		}
	}
	for _, n := range cg.Nodes() {
		w := &walker{pass: pass, g: g, acquired: acquired}
		w.stmts(n.Decl.Body.List, map[string]token.Pos{})
	}
}

// computeAcquired maps each declared function to the set of lock
// identities it acquires, transitively through same-package callees (to a
// fixpoint) and cross-package callees (through facts).
func computeAcquired(pass *analysis.Pass, cg *callgraph.Graph) map[*types.Func]map[string]bool {
	acquired := make(map[*types.Func]map[string]bool)
	for _, n := range cg.Nodes() {
		set := map[string]bool{}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if _, ok := node.(*ast.FuncLit); ok {
				return false
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, acq := lockOp(pass, call); acq && id != "" {
				set[id] = true
			}
			return true
		})
		acquired[n.Func] = set
	}
	// Fold in callee sets until stable; external callees answer via facts
	// (their sets are already transitive when exported).
	for changed := true; changed; {
		changed = false
		for _, n := range cg.Nodes() {
			set := acquired[n.Func]
			for _, e := range n.Calls {
				if e.InLiteral {
					// A literal's locks are charged when (if) it runs, not to
					// the function that merely constructs it.
					continue
				}
				for _, id := range calleeLocks(pass, acquired, e.Callee) {
					if !set[id] {
						set[id] = true
						changed = true
					}
				}
			}
		}
	}
	return acquired
}

// calleeLocks returns the lock set of a callee, from the in-package map
// or, for external functions, the exported fact.
func calleeLocks(pass *analysis.Pass, acquired map[*types.Func]map[string]bool, callee *types.Func) []string {
	if set, ok := acquired[callee]; ok {
		return sortedKeys(set)
	}
	var fact acquiresFact
	if pass.ImportObjectFact(callee, &fact) {
		return fact.Locks
	}
	return nil
}

// walker threads the held-lock set through a statement list, emitting an
// ordering edge for every acquisition (direct or via callee) under a held
// lock. The traversal discipline mirrors lockhold.
type walker struct {
	pass     *analysis.Pass
	g        *global
	acquired map[*types.Func]map[string]bool
}

func (w *walker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range list {
		w.stmt(stmt, held)
	}
}

func (w *walker) stmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, held)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, acq := lockOp(w.pass, call); id != "" {
				if acq {
					w.acquire(id, call.Pos(), held)
					held[id] = call.Pos()
				} else {
					delete(held, id)
				}
			}
		}
	case *ast.DeferStmt:
		// Deferred Unlock keeps the lock held to function end; deferred
		// acquisitions run after the body, outside this walk's order.
		return
	case *ast.GoStmt:
		// The goroutine does not hold this goroutine's locks.
		return
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, clone(held))
		if s.Else != nil {
			w.stmt(s.Else, clone(held))
		}
	case *ast.ForStmt:
		inner := clone(held)
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.expr(s.Cond, inner)
		}
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

// expr scans an expression for calls whose callees acquire locks,
// charging the callee's full transitive lock set at the call site.
// Literals are skipped; a statement-level lock call is handled by stmt.
func (w *walker) expr(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, _ := lockOp(w.pass, call); id != "" {
			return true // direct lock op; stmt handles acquisition order
		}
		callee := w.pass.FuncFor(call.Fun)
		if callee == nil {
			return true
		}
		for _, id := range calleeLocks(w.pass, w.acquired, callee) {
			w.acquire(id, call.Pos(), held)
		}
		return true
	})
}

// acquire records edges held→id and reports if one closes a cycle.
func (w *walker) acquire(id string, pos token.Pos, held map[string]token.Pos) {
	for a := range held {
		if a == id {
			continue // re-entrant acquisition is lockhold's concern, not ordering
		}
		if _, seen := w.g.edges[a][id]; seen {
			continue
		}
		if w.g.edges[a] == nil {
			w.g.edges[a] = map[string]token.Pos{}
		}
		w.g.edges[a][id] = pos
		if path := w.g.findPath(id, a); path != nil {
			w.pass.Reportf(pos,
				"acquiring %s while holding %s creates a lock-order cycle (%s); "+
					"acquire locks in one consistent order or annotate //lint:allow lockorder",
				id, a, strings.Join(append([]string{a, id}, path[1:]...), " -> "))
		}
	}
}

// findPath returns a node path from src to dst over the accumulated
// edges, or nil. Deterministic: neighbors visited in sorted order.
func (g *global) findPath(src, dst string) []string {
	var dfs func(node string, visited map[string]bool) []string
	dfs = func(node string, visited map[string]bool) []string {
		if node == dst {
			return []string{node}
		}
		visited[node] = true
		for _, next := range sortedEdgeKeys(g.edges[node]) {
			if visited[next] {
				continue
			}
			if rest := dfs(next, visited); rest != nil {
				return append([]string{node}, rest...)
			}
		}
		return nil
	}
	return dfs(src, map[string]bool{})
}

// lockOp recognizes a mutex acquire/release call and returns the lock's
// structural identity ("" when the lock is local and unidentifiable).
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (id string, acquire bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	f := pass.FuncFor(sel)
	acq, isLock := lockMethods[analysis.FullName(f)]
	if !isLock {
		return "", false
	}
	return lockIdent(pass, sel.X), acq
}

// lockIdent names a lock structurally: "pkg.Type.field" for a mutex
// field, "pkg.var" for a package-level mutex, "pkg.Type" for an embedded
// (promoted) mutex. Locals return "".
func lockIdent(pass *analysis.Pass, recv ast.Expr) string {
	switch recv := recv.(type) {
	case *ast.ParenExpr:
		return lockIdent(pass, recv.X)
	case *ast.SelectorExpr:
		// Field selection: identity is the owning named type plus field.
		if sel, ok := pass.TypesInfo.Selections[recv]; ok {
			if _, isVar := sel.Obj().(*types.Var); isVar {
				if named := derefNamed(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Obj().Name()
				}
			}
			return ""
		}
		// Package-qualified var: pkg.Mu.
		if v, ok := pass.TypesInfo.Uses[recv.Sel].(*types.Var); ok {
			return pkgLevelIdent(v)
		}
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[recv].(*types.Var)
		if !ok {
			return ""
		}
		if id := pkgLevelIdent(v); id != "" {
			return id
		}
		// Local variable of a named type: the promoted-mutex receiver shape
		// (s.Lock() with s a *Server embedding sync.Mutex). sync's own types
		// carry no structural identity.
		if named := derefNamed(v.Type()); named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() != "sync" {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name()
		}
	}
	return ""
}

// pkgLevelIdent names a package-scope variable, or "".
func pkgLevelIdent(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// derefNamed unwraps pointers and returns the named type, or nil.
func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedEdgeKeys(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
