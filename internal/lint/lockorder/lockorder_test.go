package lockorder_test

import (
	"testing"

	"spectra/internal/lint/linttest"
	"spectra/internal/lint/lockorder"
)

// TestGolden covers in-package inversions: direct, via callee, embedded
// mutexes, package-level mutexes, locals, and suppression.
func TestGolden(t *testing.T) {
	linttest.Run(t, lockorder.New(), "./testdata/src/order")
}

// TestCrossPackage covers fact-borne edges: dep is analyzed first, use
// holds its own lock across calls into dep and inverts the order.
func TestCrossPackage(t *testing.T) {
	linttest.Run(t, lockorder.New(), "./testdata/src/dep", "./testdata/src/use")
}
