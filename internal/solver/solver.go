// Package solver searches the space of execution alternatives — candidate
// server × execution plan × fidelity — for the one maximizing utility.
// Spectra uses a heuristic solver (after Narayanan et al.) that is not
// guaranteed to find the optimum but evaluates far fewer alternatives than
// exhaustive search; the package also provides the exhaustive oracle used
// by the paper's validation to rank Spectra's choices (Figures 8 and 9).
package solver

import (
	"sort"
	"strings"
	"sync"

	"spectra/internal/predict"
)

// Alternative is one point in the decision space.
type Alternative struct {
	// Server names the remote server used, or "" for purely local plans.
	Server string
	// Plan names the execution plan (e.g. "local", "hybrid", "remote", or
	// an engine-placement assignment for Pangloss-style apps).
	Plan string
	// Fidelity assigns each discrete fidelity dimension a value.
	Fidelity map[string]string
}

// FidelityKey returns a canonical string for the fidelity assignment.
func (a Alternative) FidelityKey() string { return predict.DiscreteKey(a.Fidelity) }

// Key returns a canonical identity string for the alternative.
func (a Alternative) Key() string {
	return a.Server + "|" + a.Plan + "|" + a.FidelityKey()
}

// Evaluator returns the utility of an alternative. Implementations are
// expected to be deterministic within one solve.
type Evaluator func(Alternative) float64

// Result reports the outcome of a search.
type Result struct {
	Best Alternative
	// Utility is the best alternative's utility.
	Utility float64
	// Evaluations counts utility-function calls performed.
	Evaluations int
	// Restarts counts hill-climbing restarts actually run (0 for
	// exhaustive search).
	Restarts int
	// Found is false when the space was empty.
	Found bool
}

// Exhaustive evaluates every alternative and returns the best. Ties are
// broken toward the earlier candidate, so candidate order is significant
// and should be deterministic.
func Exhaustive(candidates []Alternative, eval Evaluator) Result {
	var res Result
	for _, alt := range candidates {
		u := eval(alt)
		res.Evaluations++
		if !res.Found || u > res.Utility {
			res.Found = true
			res.Best = alt
			res.Utility = u
		}
	}
	return res
}

// Ranked returns all alternatives sorted by descending utility, with their
// utilities and 1-based competition ranks: alternatives with equal utility
// share the best rank of their group (1, 1, 3, ...), so an alternative tied
// with the optimum ranks first rather than being penalized by sort order.
// The validation harness uses it to compute the percentile rank of
// Spectra's choice.
func Ranked(candidates []Alternative, eval Evaluator) ([]Alternative, []float64, []int) {
	type scored struct {
		alt Alternative
		u   float64
	}
	all := make([]scored, len(candidates))
	for i, alt := range candidates {
		all[i] = scored{alt: alt, u: eval(alt)}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].u > all[j].u })
	alts := make([]Alternative, len(all))
	utils := make([]float64, len(all))
	ranks := make([]int, len(all))
	for i, s := range all {
		alts[i] = s.alt
		utils[i] = s.u
		if i > 0 && utils[i] == utils[i-1] {
			ranks[i] = ranks[i-1]
		} else {
			ranks[i] = i + 1
		}
	}
	return alts, utils, ranks
}

// Options tunes the heuristic search.
type Options struct {
	// Restarts is the number of distinct start points; 0 selects 3.
	Restarts int
	// MaxSteps bounds hill-climbing steps per restart; 0 selects 32.
	MaxSteps int
}

// Heuristic performs deterministic multi-start hill climbing over the
// candidate list. The neighborhood of an alternative is every candidate
// differing from it in exactly one dimension (server, plan, or fidelity),
// plus coupled plan+fidelity moves on the same server — applications such
// as Pangloss-Lite tie a fidelity dimension (an engine being enabled) to a
// plan dimension (that engine's placement), and a search restricted to
// single-dimension moves cannot cross between such regions. Start points
// are spread evenly through the candidate list so restarts cover distant
// regions of the space.
func Heuristic(candidates []Alternative, eval Evaluator, opts Options) Result {
	if len(candidates) == 0 {
		return Result{}
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 3
	}
	if restarts > len(candidates) {
		restarts = len(candidates)
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 32
	}

	nb := buildNeighborhoods(candidates)
	cache := make(map[string]float64, len(candidates))
	var res Result
	evalCached := func(i int) float64 {
		key := candidates[i].Key()
		if u, ok := cache[key]; ok {
			return u
		}
		u := eval(candidates[i])
		res.Evaluations++
		cache[key] = u
		return u
	}

	for r := 0; r < restarts; r++ {
		res.Restarts++
		cur := r * len(candidates) / restarts
		curU := evalCached(cur)
		for step := 0; step < maxSteps; step++ {
			bestN, bestU := -1, curU
			for _, n := range nb[cur] {
				if u := evalCached(n); u > bestU {
					bestN, bestU = n, u
				}
			}
			if bestN < 0 {
				break // local maximum
			}
			cur, curU = bestN, bestU
		}
		if !res.Found || curU > res.Utility {
			res.Found = true
			res.Best = candidates[cur]
			res.Utility = curU
		}
	}
	return res
}

// neighborhoodCacheCap bounds the memoized neighborhood structures. Real
// deployments register a handful of operations, each with a stable
// candidate set, so a small cap covers them all; the bound only matters if
// candidate sets churn (servers appearing and disappearing).
const neighborhoodCacheCap = 32

// nbCacheMinCandidates is the space size below which memoization is not
// worth it: for a handful of candidates the O(n²) construction is cheaper
// than building the cache key, so small solves bypass the cache entirely.
const nbCacheMinCandidates = 16

var (
	nbMu    sync.Mutex
	nbCache = map[string][][]int{}
	// nbOrder tracks insertion order for eviction.
	nbOrder []string
)

// buildNeighborhoods returns the neighborhood structure for a candidate
// list, memoized per canonical candidate-set key. The structure depends
// only on the candidates' identity keys — not on utilities or resource
// state — and its O(n²) construction dominated solve time on large spaces
// (Pangloss-Lite has hundreds of candidates), so repeated solves over the
// same operation reuse it. The returned slices are shared and must be
// treated as immutable.
func buildNeighborhoods(candidates []Alternative) [][]int {
	if len(candidates) < nbCacheMinCandidates {
		return computeNeighborhoods(candidates)
	}
	keys := make([]string, len(candidates))
	for i, a := range candidates {
		keys[i] = a.Key()
	}
	setKey := strings.Join(keys, "\x00")

	nbMu.Lock()
	if nb, ok := nbCache[setKey]; ok {
		nbMu.Unlock()
		return nb
	}
	nbMu.Unlock()

	nb := computeNeighborhoods(candidates)

	nbMu.Lock()
	if _, ok := nbCache[setKey]; !ok {
		if len(nbOrder) >= neighborhoodCacheCap {
			// Compact in place rather than re-slicing (nbOrder = nbOrder[1:]):
			// re-slicing advances the slice header but pins the evicted keys'
			// backing array forever, leaking every evicted key string under
			// candidate-set churn.
			delete(nbCache, nbOrder[0])
			copy(nbOrder, nbOrder[1:])
			nbOrder[len(nbOrder)-1] = ""
			nbOrder = nbOrder[:len(nbOrder)-1]
		}
		nbCache[setKey] = nb
		nbOrder = append(nbOrder, setKey)
	}
	nbMu.Unlock()
	return nb
}

// computeNeighborhoods computes, for each candidate, the indices of its
// neighbors: candidates differing in exactly one dimension, or in both
// plan and fidelity with the same server (coupled moves).
func computeNeighborhoods(candidates []Alternative) [][]int {
	type dims struct{ server, plan, fid string }
	ds := make([]dims, len(candidates))
	for i, a := range candidates {
		ds[i] = dims{server: a.Server, plan: a.Plan, fid: a.FidelityKey()}
	}
	nb := make([][]int, len(candidates))
	for i := range candidates {
		for j := range candidates {
			if i == j {
				continue
			}
			sameServer := ds[i].server == ds[j].server
			samePlan := ds[i].plan == ds[j].plan
			sameFid := ds[i].fid == ds[j].fid
			diff := 0
			if !sameServer {
				diff++
			}
			if !samePlan {
				diff++
			}
			if !sameFid {
				diff++
			}
			if diff == 1 || (sameServer && !samePlan && !sameFid) {
				nb[i] = append(nb[i], j)
			}
		}
	}
	return nb
}
