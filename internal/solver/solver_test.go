package solver

import (
	"fmt"
	"testing"
	"testing/quick"
)

// space builds a full grid of servers × plans × fidelity values.
func space(servers, plans, fids []string) []Alternative {
	var out []Alternative
	for _, s := range servers {
		for _, p := range plans {
			for _, f := range fids {
				out = append(out, Alternative{
					Server:   s,
					Plan:     p,
					Fidelity: map[string]string{"vocab": f},
				})
			}
		}
	}
	return out
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	cands := space([]string{"a", "b"}, []string{"local", "remote"}, []string{"full", "reduced"})
	eval := func(a Alternative) float64 {
		u := 1.0
		if a.Server == "b" {
			u += 2
		}
		if a.Plan == "remote" {
			u += 1
		}
		if a.Fidelity["vocab"] == "full" {
			u += 0.5
		}
		return u
	}
	res := Exhaustive(cands, eval)
	if !res.Found {
		t.Fatal("no result")
	}
	if res.Best.Server != "b" || res.Best.Plan != "remote" || res.Best.Fidelity["vocab"] != "full" {
		t.Fatalf("best = %+v", res.Best)
	}
	if res.Utility != 4.5 {
		t.Fatalf("utility = %v", res.Utility)
	}
	if res.Evaluations != len(cands) {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, len(cands))
	}
}

func TestExhaustiveEmpty(t *testing.T) {
	res := Exhaustive(nil, func(Alternative) float64 { return 1 })
	if res.Found {
		t.Fatal("empty space should not find")
	}
	res = Heuristic(nil, func(Alternative) float64 { return 1 }, Options{})
	if res.Found {
		t.Fatal("heuristic on empty space should not find")
	}
}

func TestHeuristicMatchesExhaustiveOnSeparableUtility(t *testing.T) {
	cands := space(
		[]string{"", "a", "b"},
		[]string{"local", "hybrid", "remote"},
		[]string{"full", "reduced"},
	)
	// Separable utility: hill climbing must reach the global optimum.
	eval := func(a Alternative) float64 {
		u := 0.0
		switch a.Server {
		case "a":
			u += 1
		case "b":
			u += 3
		}
		switch a.Plan {
		case "hybrid":
			u += 2
		case "remote":
			u += 1
		}
		if a.Fidelity["vocab"] == "full" {
			u += 1
		}
		return u
	}
	ex := Exhaustive(cands, eval)
	h := Heuristic(cands, eval, Options{})
	if h.Utility != ex.Utility {
		t.Fatalf("heuristic utility %v != exhaustive %v (best %+v)", h.Utility, ex.Utility, h.Best)
	}
}

func TestHeuristicEvaluatesFewerOnLargeSpace(t *testing.T) {
	var servers, plans, fids []string
	for i := 0; i < 8; i++ {
		servers = append(servers, fmt.Sprintf("s%d", i))
		plans = append(plans, fmt.Sprintf("p%d", i))
		fids = append(fids, fmt.Sprintf("f%d", i))
	}
	cands := space(servers, plans, fids) // 512 alternatives
	eval := func(a Alternative) float64 {
		return float64(len(a.Server) + len(a.Plan)*2)
	}
	h := Heuristic(cands, eval, Options{})
	if h.Evaluations >= len(cands) {
		t.Fatalf("heuristic evaluated %d of %d alternatives", h.Evaluations, len(cands))
	}
}

func TestHeuristicRespectsRestartBounds(t *testing.T) {
	cands := space([]string{"a"}, []string{"p"}, []string{"f"})
	res := Heuristic(cands, func(Alternative) float64 { return 1 }, Options{Restarts: 100})
	if !res.Found || res.Utility != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRankedOrdersDescending(t *testing.T) {
	cands := space([]string{"a", "b", "c"}, []string{"p"}, []string{"f"})
	eval := func(a Alternative) float64 {
		switch a.Server {
		case "a":
			return 1
		case "b":
			return 3
		default:
			return 2
		}
	}
	alts, utils, ranks := Ranked(cands, eval)
	if len(alts) != 3 {
		t.Fatalf("ranked %d", len(alts))
	}
	if alts[0].Server != "b" || alts[1].Server != "c" || alts[2].Server != "a" {
		t.Fatalf("order = %v %v %v", alts[0].Server, alts[1].Server, alts[2].Server)
	}
	if utils[0] < utils[1] || utils[1] < utils[2] {
		t.Fatalf("utilities not descending: %v", utils)
	}
	if ranks[0] != 1 || ranks[1] != 2 || ranks[2] != 3 {
		t.Fatalf("ranks = %v, want [1 2 3]", ranks)
	}
}

func TestRankedTiesShareBestRank(t *testing.T) {
	cands := space([]string{"a", "b", "c", "d"}, []string{"p"}, []string{"f"})
	// b and c tie at the top; a and d tie at the bottom.
	eval := func(a Alternative) float64 {
		switch a.Server {
		case "b", "c":
			return 5
		default:
			return 1
		}
	}
	_, utils, ranks := Ranked(cands, eval)
	want := []int{1, 1, 3, 3}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v (utils %v), want %v", ranks, utils, want)
		}
	}
}

func TestAlternativeKeys(t *testing.T) {
	a := Alternative{Server: "s", Plan: "p", Fidelity: map[string]string{"b": "2", "a": "1"}}
	if a.FidelityKey() != "a=1;b=2" {
		t.Fatalf("fidelity key = %q", a.FidelityKey())
	}
	if a.Key() != "s|p|a=1;b=2" {
		t.Fatalf("key = %q", a.Key())
	}
}

// Property: the heuristic never returns an alternative with utility above
// the exhaustive optimum, and always returns a member of the space.
func TestHeuristicSoundProperty(t *testing.T) {
	f := func(seed uint32) bool {
		cands := space([]string{"", "a", "b"}, []string{"l", "h", "r"}, []string{"x", "y"})
		eval := func(a Alternative) float64 {
			// Arbitrary but deterministic non-separable utility.
			h := seed
			for _, c := range a.Key() {
				h = h*31 + uint32(c)
			}
			return float64(h % 1000)
		}
		ex := Exhaustive(cands, eval)
		hr := Heuristic(cands, eval, Options{})
		if hr.Utility > ex.Utility {
			return false
		}
		found := false
		for _, c := range cands {
			if c.Key() == hr.Best.Key() {
				found = true
				break
			}
		}
		return found && eval(hr.Best) == hr.Utility
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
