package solver

import (
	"fmt"
	"reflect"
	"testing"
)

func resetNeighborhoodCache() {
	nbMu.Lock()
	nbCache = map[string][][]int{}
	nbOrder = nil
	nbMu.Unlock()
}

func TestNeighborhoodMemoization(t *testing.T) {
	resetNeighborhoodCache()
	// Large enough to clear nbCacheMinCandidates: small spaces bypass the
	// cache because direct construction is cheaper than the key.
	cands := space([]string{"a", "b"}, []string{"l", "h", "r"}, []string{"w", "x", "y"})

	nb1 := buildNeighborhoods(cands)
	nb2 := buildNeighborhoods(cands)
	if &nb1[0] != &nb2[0] {
		t.Fatal("second build did not reuse the memoized structure")
	}
	if !reflect.DeepEqual(nb1, computeNeighborhoods(cands)) {
		t.Fatal("memoized structure differs from a fresh computation")
	}

	// A different candidate set must not collide.
	other := space([]string{"a", "c"}, []string{"l", "h", "r"}, []string{"w", "x", "y"})
	nbOther := buildNeighborhoods(other)
	if reflect.DeepEqual(nb1, nbOther) == (len(cands) == len(other)) && &nb1[0] == &nbOther[0] {
		t.Fatal("distinct candidate sets shared a cache entry")
	}
	if !reflect.DeepEqual(nbOther, computeNeighborhoods(other)) {
		t.Fatal("second set's memoized structure is wrong")
	}
}

func TestNeighborhoodSmallSpaceBypassesCache(t *testing.T) {
	resetNeighborhoodCache()
	cands := space([]string{"a"}, []string{"l", "r"}, []string{"x", "y"}) // 4 < min
	nb := buildNeighborhoods(cands)
	if !reflect.DeepEqual(nb, computeNeighborhoods(cands)) {
		t.Fatal("bypassed build returned a wrong structure")
	}
	nbMu.Lock()
	n := len(nbCache)
	nbMu.Unlock()
	if n != 0 {
		t.Fatalf("small space was cached (%d entries); direct construction is cheaper", n)
	}
}

func TestNeighborhoodCacheBounded(t *testing.T) {
	resetNeighborhoodCache()
	for i := 0; i < neighborhoodCacheCap*2; i++ {
		cands := space([]string{fmt.Sprintf("s%d", i), "t"},
			[]string{"l", "h", "r"}, []string{"w", "x", "y"})
		buildNeighborhoods(cands)
	}
	nbMu.Lock()
	n, ord := len(nbCache), len(nbOrder)
	nbMu.Unlock()
	if n > neighborhoodCacheCap || ord > neighborhoodCacheCap {
		t.Fatalf("cache grew to %d entries (order %d), cap %d", n, ord, neighborhoodCacheCap)
	}
}

func TestNeighborhoodEvictionCompacts(t *testing.T) {
	resetNeighborhoodCache()
	grid := func(i int) []Alternative {
		return space([]string{fmt.Sprintf("s%d", i), "t"},
			[]string{"l", "h", "r"}, []string{"w", "x", "y"})
	}
	for i := 0; i < neighborhoodCacheCap; i++ {
		buildNeighborhoods(grid(i))
	}
	nbMu.Lock()
	base := &nbOrder[0]
	nbMu.Unlock()

	// Churn far past the cap. Compaction reuses one backing array, so the
	// slice base must not move; the old nbOrder = nbOrder[1:] advanced the
	// base on every eviction, pinning all evicted keys behind it.
	for i := neighborhoodCacheCap; i < neighborhoodCacheCap*4; i++ {
		buildNeighborhoods(grid(i))
	}
	// The most recent insertion must have survived eviction (memoized, so a
	// rebuild returns the identical shared structure).
	newest := buildNeighborhoods(grid(neighborhoodCacheCap*4 - 1))

	nbMu.Lock()
	defer nbMu.Unlock()
	if len(nbOrder) != neighborhoodCacheCap || len(nbCache) != neighborhoodCacheCap {
		t.Fatalf("cache size %d / order %d, want %d", len(nbCache), len(nbOrder), neighborhoodCacheCap)
	}
	if &nbOrder[0] != base {
		t.Fatal("eviction re-sliced nbOrder instead of compacting: backing array moved, pinning evicted keys")
	}
	// Every tracked key must still be cached, and the newest slot must hold
	// the last inserted set.
	for i, key := range nbOrder {
		if _, ok := nbCache[key]; !ok {
			t.Fatalf("order[%d] not in cache", i)
		}
	}
	if got := nbCache[nbOrder[len(nbOrder)-1]]; &got[0] != &newest[0] {
		t.Fatal("newest entry is not the last inserted set")
	}
}

func TestNeighborhoodConcurrentBuild(t *testing.T) {
	resetNeighborhoodCache()
	cands := space([]string{"a", "b", "c"}, []string{"l", "h", "r"}, []string{"x", "y"}) // 18 >= min
	done := make(chan [][]int, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- buildNeighborhoods(cands) }()
	}
	want := computeNeighborhoods(cands)
	for i := 0; i < 8; i++ {
		if got := <-done; !reflect.DeepEqual(got, want) {
			t.Fatal("concurrent build returned a wrong structure")
		}
	}
}

// panglossSpace approximates Pangloss-Lite's decision space: three engines
// with client/server placement plus two discrete fidelity knobs — a few
// hundred alternatives.
func panglossSpace() []Alternative {
	var out []Alternative
	for _, srv := range []string{"", "serverA", "serverB"} {
		for p := 0; p < 8; p++ { // 2^3 engine placements
			plan := fmt.Sprintf("place%03b", p)
			for _, res := range []string{"low", "med", "high"} {
				for _, poly := range []string{"1k", "10k", "40k"} {
					out = append(out, Alternative{
						Server: srv,
						Plan:   plan,
						Fidelity: map[string]string{
							"resolution": res,
							"polygons":   poly,
						},
					})
				}
			}
		}
	}
	return out
}

func BenchmarkHeuristicPanglossCold(b *testing.B) {
	cands := panglossSpace()
	eval := func(a Alternative) float64 { return float64(len(a.Server) + len(a.Plan)) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resetNeighborhoodCache()
		Heuristic(cands, eval, Options{})
	}
}

func BenchmarkHeuristicPanglossWarm(b *testing.B) {
	cands := panglossSpace()
	eval := func(a Alternative) float64 { return float64(len(a.Server) + len(a.Plan)) }
	resetNeighborhoodCache()
	Heuristic(cands, eval, Options{}) // prime the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Heuristic(cands, eval, Options{})
	}
}

func BenchmarkComputeNeighborhoodsPangloss(b *testing.B) {
	cands := panglossSpace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		computeNeighborhoods(cands)
	}
}
