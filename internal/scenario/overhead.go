package scenario

import (
	"fmt"
	"strings"
	"time"

	"spectra/internal/core"
	"spectra/internal/sim"
	"spectra/internal/simnet"
	"spectra/internal/solver"
	"spectra/internal/testbed"
)

// OverheadServerCounts are the configurations of Figure 10.
var OverheadServerCounts = []int{0, 1, 5}

// overheadIterations is how many null operations are averaged per
// configuration.
const overheadIterations = 100

// OverheadResult is one column of Figure 10: the wall-clock cost of
// Spectra's API calls around a null operation.
type OverheadResult struct {
	Servers int
	// FullCache marks the variant where the operation's file model knows
	// thousands of files, the condition under which the paper measured
	// file-cache prediction ballooning to 359.6 ms.
	FullCache bool

	Register       time.Duration
	Begin          time.Duration
	FilePrediction time.Duration
	Choosing       time.Duration
	BeginOther     time.Duration
	DoLocal        time.Duration
	End            time.Duration
	Total          time.Duration
	// Candidates is the size of the decision space searched.
	Candidates int
}

// fullCacheFiles is how many files the full-cache variant tracks.
const fullCacheFiles = 2000

// overheadClock times the do/end phases of Figure 10. The measurement is
// deliberately wall-clock — the figure reports the real cost of Spectra's
// API around a null operation, which consumes no virtual time — but it is
// routed through the clock interface so deterministic tests can inject a
// virtual clock and assert on the accounting instead of the hardware.
var overheadClock sim.Clock = sim.RealClock{}

// RunOverhead reproduces Figure 10: a null operation measured with 0, 1,
// and 5 candidate servers, plus a 1-server variant whose file model tracks
// thousands of files (the paper's "cache is full" case, where file-cache
// prediction dominated at 359.6 ms).
func RunOverhead(opts testbed.Options) ([]OverheadResult, error) {
	var out []OverheadResult
	for _, n := range OverheadServerCounts {
		r, err := runOverheadConfig(n, false, opts)
		if err != nil {
			return nil, fmt.Errorf("overhead with %d servers: %w", n, err)
		}
		out = append(out, r)
	}
	r, err := runOverheadConfig(1, true, opts)
	if err != nil {
		return nil, fmt.Errorf("overhead with full cache: %w", err)
	}
	out = append(out, r)
	return out, nil
}

func runOverheadConfig(serverCount int, fullCache bool, opts testbed.Options) (OverheadResult, error) {
	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    500,
		Power:       sim.PowerModel{IdleW: 5, BusyW: 15, NetW: 7},
		OnWallPower: true,
		Battery:     sim.NewBattery(100_000),
	})
	var servers []core.SimServer
	for i := 0; i < serverCount; i++ {
		servers = append(servers, core.SimServer{
			Name: fmt.Sprintf("server%d", i),
			Machine: sim.NewMachine(sim.MachineConfig{
				Name:        fmt.Sprintf("server%d", i),
				SpeedMHz:    1000,
				OnWallPower: true,
			}),
			Link: simnet.NewLink(simnet.LinkConfig{
				Name:         fmt.Sprintf("lan%d", i),
				Latency:      time.Millisecond,
				BandwidthBps: testbed.LANBps,
			}),
		})
	}
	setup, err := core.NewSimSetup(core.SimOptions{
		Host:       host,
		Servers:    servers,
		Models:     opts.Models,
		Solver:     opts.Solver,
		Exhaustive: opts.Exhaustive,
	})
	if err != nil {
		return OverheadResult{}, err
	}

	null := func(ctx *core.ServiceContext, optype string, payload []byte) ([]byte, error) {
		return nil, nil
	}
	setup.Env.Host().RegisterService("null", null)
	for _, s := range servers {
		node, _, _ := setup.Env.Server(s.Name)
		node.RegisterService("null", null)
	}

	op, err := setup.Client.RegisterFidelity(core.OperationSpec{
		Name:    "null.op",
		Service: "null",
		Plans: []core.PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	})
	if err != nil {
		return OverheadResult{}, err
	}
	setup.Refresh()

	if fullCache {
		// A file-heavy training execution: the operation's file-access
		// model now tracks thousands of files, so every begin must
		// evaluate all of them when predicting cache-miss costs.
		fileOp := func(ctx *core.ServiceContext, optype string, payload []byte) ([]byte, error) {
			for i := 0; i < fullCacheFiles; i++ {
				if err := ctx.ReadFile(fmt.Sprintf("/coda/bulk/f%04d", i)); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		for i := 0; i < fullCacheFiles; i++ {
			setup.FileServer.Store("bulk", fmt.Sprintf("/coda/bulk/f%04d", i), 1024)
		}
		setup.Env.Host().RegisterService("null", fileOp)
		octx, err := setup.Client.BeginForced(op,
			solver.Alternative{Plan: "local"}, nil, "")
		if err != nil {
			return OverheadResult{}, err
		}
		if _, err := octx.DoLocalOp("train", nil); err != nil {
			return OverheadResult{}, err
		}
		if _, err := octx.End(); err != nil {
			return OverheadResult{}, err
		}
		setup.Env.Host().RegisterService("null", null) // back to null work
	}

	res := OverheadResult{
		Servers:   serverCount,
		FullCache: fullCache,
		Register:  op.RegisterDuration(),
	}
	for i := 0; i < overheadIterations; i++ {
		octx, err := setup.Client.BeginFidelityOp(op, nil, "")
		if err != nil {
			return OverheadResult{}, err
		}
		oh := octx.Decision().Overhead
		res.Begin += oh.Total
		res.FilePrediction += oh.FilePrediction
		res.Choosing += oh.Choosing
		res.BeginOther += oh.Other
		res.Candidates = octx.Decision().Candidates

		doStart := overheadClock.Now()
		if octx.Plan() == "remote" {
			_, err = octx.DoRemoteOp("null", nil)
		} else {
			_, err = octx.DoLocalOp("null", nil)
		}
		if err != nil {
			return OverheadResult{}, err
		}
		res.DoLocal += overheadClock.Now().Sub(doStart)

		endStart := overheadClock.Now()
		if _, err := octx.End(); err != nil {
			return OverheadResult{}, err
		}
		res.End += overheadClock.Now().Sub(endStart)
	}
	div := func(d time.Duration) time.Duration { return d / overheadIterations }
	res.Begin = div(res.Begin)
	res.FilePrediction = div(res.FilePrediction)
	res.Choosing = div(res.Choosing)
	res.BeginOther = div(res.BeginOther)
	res.DoLocal = div(res.DoLocal)
	res.End = div(res.End)
	res.Total = res.Begin + res.DoLocal + res.End
	return res, nil
}

// FormatOverhead renders Figure 10 as a text table.
func FormatOverhead(results []OverheadResult) string {
	var b strings.Builder
	b.WriteString("Figure 10 — Spectra overhead (null operation)\n")
	fmt.Fprintf(&b, "%-28s", "activity")
	for _, r := range results {
		label := fmt.Sprintf("%d server(s)", r.Servers)
		if r.FullCache {
			label = "full cache"
		}
		fmt.Fprintf(&b, "%14s", label)
	}
	b.WriteByte('\n')
	row := func(label string, pick func(OverheadResult) time.Duration) {
		fmt.Fprintf(&b, "%-28s", label)
		for _, r := range results {
			fmt.Fprintf(&b, "%14s", fmtDur(pick(r)))
		}
		b.WriteByte('\n')
	}
	row("register_fidelity", func(r OverheadResult) time.Duration { return r.Register })
	row("begin_fidelity_op", func(r OverheadResult) time.Duration { return r.Begin })
	row("  file cache prediction", func(r OverheadResult) time.Duration { return r.FilePrediction })
	row("  choosing alternative", func(r OverheadResult) time.Duration { return r.Choosing })
	row("  other activity", func(r OverheadResult) time.Duration { return r.BeginOther })
	row("do_local_op", func(r OverheadResult) time.Duration { return r.DoLocal })
	row("end_fidelity_op", func(r OverheadResult) time.Duration { return r.End })
	row("total per operation", func(r OverheadResult) time.Duration { return r.Total })
	fmt.Fprintf(&b, "%-28s", "candidates searched")
	for _, r := range results {
		fmt.Fprintf(&b, "%14d", r.Candidates)
	}
	b.WriteByte('\n')
	return b.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}
