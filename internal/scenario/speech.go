package scenario

import (
	"fmt"
	"time"

	"spectra/internal/apps/janus"
	"spectra/internal/core"
	"spectra/internal/solver"
	"spectra/internal/testbed"
)

// Speech scenario names (Figures 3 and 4).
const (
	SpeechBaseline  = "baseline"
	SpeechEnergy    = "energy"
	SpeechNetwork   = "network"
	SpeechCPU       = "cpu"
	SpeechFileCache = "filecache"
)

// SpeechScenarios lists the five data sets of Figure 3 in paper order.
func SpeechScenarios() []string {
	return []string{SpeechBaseline, SpeechEnergy, SpeechNetwork, SpeechCPU, SpeechFileCache}
}

// speechTrainingPhrases mirrors the paper's 15 training phrases.
var speechTrainingPhrases = []float64{
	1.5, 2.0, 2.5, 1.8, 2.2, 1.6, 2.4, 2.0, 1.9, 2.1, 1.7, 2.3, 2.0, 1.5, 2.5,
}

// speechTestPhrase is the new phrase recognized under each scenario.
const speechTestPhrase = 2.0

// speechAlternatives enumerates the six bars of Figures 3 and 4.
func speechAlternatives() []solver.Alternative {
	var out []solver.Alternative
	for _, pf := range []struct {
		server, plan string
	}{
		{"", janus.PlanLocal},
		{"t20", janus.PlanHybrid},
		{"t20", janus.PlanRemote},
	} {
		for _, vocab := range []string{janus.VocabFull, janus.VocabSmall} {
			out = append(out, solver.Alternative{
				Server:   pf.server,
				Plan:     pf.plan,
				Fidelity: map[string]string{janus.FidelityDim: vocab},
			})
		}
	}
	return out
}

func speechLabel(a solver.Alternative) string {
	return a.Plan + "/" + a.Fidelity[janus.FidelityDim]
}

// RunSpeech reproduces Figures 3 and 4: Janus under the five scenarios.
// The returned results carry both execution time and energy for every bar.
func RunSpeech(opts testbed.Options) ([]ScenarioResult, error) {
	var results []ScenarioResult
	for _, name := range SpeechScenarios() {
		r, err := runSpeechScenario(name, opts)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		results = append(results, r)
	}
	return results, nil
}

func runSpeechScenario(name string, opts testbed.Options) (ScenarioResult, error) {
	tb, err := testbed.NewSpeech(opts)
	if err != nil {
		return ScenarioResult{}, err
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		return ScenarioResult{}, err
	}
	tb.Setup.Refresh()

	// Training: recognize 15 phrases across all alternatives so Spectra
	// learns the application's resource requirements (paper §4.1; the
	// paper's per-alternative measurements feed the same models).
	for _, length := range speechTrainingPhrases {
		for _, alt := range speechAlternatives() {
			if _, err := app.RecognizeForced(alt, length); err != nil {
				return ScenarioResult{}, fmt.Errorf("training: %w", err)
			}
		}
	}

	prepare, err := applySpeechScenario(name, tb)
	if err != nil {
		return ScenarioResult{}, err
	}

	res := ScenarioResult{Scenario: name}
	run := func(alt solver.Alternative) (core.Report, error) {
		return app.RecognizeForced(alt, speechTestPhrase)
	}
	for _, alt := range speechAlternatives() {
		m, err := measure(alt, speechLabel(alt), run, prepare)
		if err != nil {
			return ScenarioResult{}, err
		}
		res.Bars = append(res.Bars, m)
	}

	// Spectra's own choice, measured with its overhead included.
	spectraRun := func(solver.Alternative) (core.Report, error) {
		return app.Recognize(speechTestPhrase)
	}
	if prepare != nil {
		if err := prepare(); err != nil {
			return ScenarioResult{}, err
		}
	}
	chosenRep, err := app.Recognize(speechTestPhrase)
	if err != nil {
		return ScenarioResult{}, err
	}
	chosen := chosenRep.Decision.Alternative
	m, err := measure(chosen, "spectra", spectraRun, prepare)
	if err != nil {
		return ScenarioResult{}, err
	}
	res.Spectra = m
	for i := range res.Bars {
		if res.Bars[i].Alternative.Key() == chosen.Key() {
			res.Bars[i].Chosen = true
		}
	}
	return res, nil
}

// applySpeechScenario varies the availability of a single resource
// (paper §4.1) and returns an optional per-trial preparation step.
func applySpeechScenario(name string, tb *testbed.Speech) (func() error, error) {
	switch name {
	case SpeechBaseline:
		return nil, nil
	case SpeechEnergy:
		// Battery power with an ambitious 10-hour lifetime goal. The
		// importance parameter is pinned at the level such a goal sustains
		// so repeated trials see the same condition.
		tb.Itsy.SetWallPower(false)
		tb.Setup.Adaptor.SetGoal(10 * time.Hour)
		tb.Setup.Adaptor.SetImportance(0.7)
		tb.Setup.Refresh()
		return nil, nil
	case SpeechNetwork:
		tb.Serial.ScaleBandwidth(0.5)
		for i := 0; i < 12; i++ {
			tb.Setup.Refresh() // passive observations pick up the change
		}
		return nil, nil
	case SpeechCPU:
		tb.Itsy.SetBackgroundTasks(1)
		for i := 0; i < 8; i++ {
			tb.Setup.Refresh() // smoothed load estimate converges
		}
		return nil, nil
	case SpeechFileCache:
		// Network partition: the Spectra server is unreachable, the file
		// servers remain accessible; the 277 KB full-vocabulary language
		// model is flushed from the client cache.
		tb.Serial.SetPartitioned(true)
		tb.Setup.Client.PollServers()
		// Each trial starts with the language model flushed: the first
		// execution refetches it, so it must be flushed again.
		flush := func() error {
			tb.Setup.Env.Host().Coda().Evict(janus.LMFullPath)
			return nil
		}
		return flush, flush()
	default:
		return nil, fmt.Errorf("unknown speech scenario %q", name)
	}
}
