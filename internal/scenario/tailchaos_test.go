package scenario

import (
	"testing"
	"time"
)

// TestTailChaosBoundsTheTail is the tentpole's acceptance gate: a
// pool-exhaustion storm (64 workers over pool-of-4 connections) against
// servers that stall ~20% of requests must keep p99 under 5x p50 and never
// let an operation overrun its budget by more than one exchange timeout —
// the deadline, cancellation, and hedging machinery working together.
// Without it the stalled exchanges would pin p99 at the stall duration
// (3x the budget) and blocked checkouts would stack behind them.
func TestTailChaosBoundsTheTail(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm is seconds long; skipped in -short")
	}
	opts := TailChaosOptions{}.withDefaults()
	res, err := RunTailChaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ops=%d p50=%v p99=%v max=%v ratio=%.2f degraded=%d hedges=%d/%d deadline=%d sheds=%d exhausted=%d",
		res.Ops, res.P50, res.P99, res.Max, res.TailRatio, res.Degraded,
		res.HedgeWins, res.HedgesLaunched, res.DeadlineExceeded, res.ServerSheds, res.PoolExhausted)

	if res.Ops != opts.Workers*opts.OpsPerWorker {
		t.Fatalf("completed %d ops, want %d — operations were lost", res.Ops, opts.Workers*opts.OpsPerWorker)
	}
	// The chaos must actually have happened: hedges launched against
	// stalled primaries.
	if res.HedgesLaunched == 0 {
		t.Fatal("no hedges launched — the fault injection never bit")
	}
	if res.TailRatio >= 5 {
		t.Fatalf("p99/p50 = %.2f (p50=%v p99=%v), want < 5", res.TailRatio, res.P50, res.P99)
	}
	grace := 100 * time.Millisecond // scheduling slack + the local-fallback execution
	if res.MaxOverrun > opts.ExchangeTimeout+grace {
		t.Fatalf("worst op overran its %v budget by %v, want <= one exchange timeout (%v) + %v grace",
			res.Budget, res.MaxOverrun, opts.ExchangeTimeout, grace)
	}
	// The tail must stay far from the stall duration: hedging or the
	// budget, not patience, resolved the stalled requests.
	if res.P99 >= opts.StallDuration {
		t.Fatalf("p99 %v reached the stall duration %v — stalled ops were waited out", res.P99, opts.StallDuration)
	}
}
