package scenario

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spectra/internal/coda"
	"spectra/internal/core"
	"spectra/internal/obs"
	"spectra/internal/sim"
	"spectra/internal/solver"

	spectrarpc "spectra/internal/rpc"
)

// tailChaosClock times the chaos storm and paces its fault windows. Like
// overheadClock it is deliberately wall-clock — the scenario measures the
// real tail of live TCP operations — but routed through the clock interface
// so the determinism invariant stays auditable.
var tailChaosClock sim.Clock = sim.RealClock{}

// TailChaosOptions tunes the tail-latency chaos storm.
type TailChaosOptions struct {
	// Workers is the number of concurrent operation loops; 0 selects 64.
	Workers int
	// OpsPerWorker is how many operations each loop runs; 0 selects 40.
	OpsPerWorker int
	// PoolSize caps connections per server; 0 selects 4, far below Workers
	// so every checkout contends (the pool-exhaustion half of the storm).
	PoolSize int
	// Budget pins the per-operation latency budget (floor and ceiling both);
	// 0 selects 400ms.
	Budget time.Duration
	// ExchangeTimeout bounds each RPC exchange; 0 selects 250ms.
	ExchangeTimeout time.Duration
	// HedgeDelay is how long a primary may run before the backup launches;
	// 0 selects 25ms.
	HedgeDelay time.Duration
	// StallDuration is how long a faulted handler hangs — well past the
	// budget, so only cancellation or hedging can save the operation;
	// 0 selects 1200ms.
	StallDuration time.Duration
	// FaultWindow is the length of one fault-schedule slot; 0 selects 120ms.
	// The schedule cycles [server A stalled, healthy, server B stalled,
	// healthy, healthy], so one server is stalling 40% of the time and about
	// a fifth of all requests land on a stalling primary.
	FaultWindow time.Duration
}

func (o TailChaosOptions) withDefaults() TailChaosOptions {
	if o.Workers <= 0 {
		o.Workers = 64
	}
	if o.OpsPerWorker <= 0 {
		o.OpsPerWorker = 40
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.Budget <= 0 {
		o.Budget = 400 * time.Millisecond
	}
	if o.ExchangeTimeout <= 0 {
		o.ExchangeTimeout = 250 * time.Millisecond
	}
	if o.HedgeDelay <= 0 {
		o.HedgeDelay = 25 * time.Millisecond
	}
	if o.StallDuration <= 0 {
		o.StallDuration = 1200 * time.Millisecond
	}
	if o.FaultWindow <= 0 {
		o.FaultWindow = 120 * time.Millisecond
	}
	return o
}

// TailChaosResult summarizes the storm: the latency distribution of the
// remote sections, how the deadline machinery intervened, and how far the
// worst operation overran its budget.
type TailChaosResult struct {
	Ops        int
	P50        time.Duration
	P99        time.Duration
	Max        time.Duration
	TailRatio  float64 // P99 / P50
	Budget     time.Duration
	MaxOverrun time.Duration // worst elapsed-beyond-budget, 0 when none

	Degraded         int   // operations completed by local fallback
	HedgesLaunched   int64 // backup requests started
	HedgeWins        int64 // operations the backup resolved
	DeadlineExceeded int64 // budgets that fully expired
	ServerSheds      int64 // requests the servers refused as expired
	PoolExhausted    int64 // checkouts abandoned at the deadline
}

// RunTailChaos drives a pool-exhaustion storm against two live loopback
// servers while a fault scheduler stalls one of them at a time, and
// measures the latency tail with the full deadline machinery engaged:
// budgets derived per operation, expired work shed server-side, abandoned
// checkouts failing fast, stalled primaries hedged to the healthy server,
// and the local fallback as the last rung. Without that machinery the same
// storm pins p99 at the stall duration; with it the tail must stay within a
// small multiple of the median and no operation may overrun its budget by
// more than one exchange timeout.
func RunTailChaos(opts TailChaosOptions) (TailChaosResult, error) {
	opts = opts.withDefaults()

	// Two identical servers; the fault scheduler stalls at most one at a
	// time, so a hedged backup always finds a healthy placement.
	var stallA, stallB atomic.Bool
	newServer := func(name string, flag *atomic.Bool) (string, *core.Server, error) {
		machine := sim.NewMachine(sim.MachineConfig{Name: name, SpeedMHz: 1000, OnWallPower: true})
		node := core.NewNode(machine, coda.NewClient(name, coda.NewFileServer(), 0), nil)
		srv := core.NewServer(name, node, sim.RealClock{})
		srv.Register("work", func(ctx *core.ServiceContext, optype string, payload []byte) ([]byte, error) {
			if flag.Load() {
				tailChaosClock.Sleep(opts.StallDuration)
			}
			ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 5})
			return payload, nil
		})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		return addr, srv, nil
	}
	addrA, srvA, err := newServer("alpha", &stallA)
	if err != nil {
		return TailChaosResult{}, err
	}
	defer srvA.Close()
	addrB, srvB, err := newServer("beta", &stallB)
	if err != nil {
		return TailChaosResult{}, err
	}
	defer srvB.Close()

	observer := obs.NewObserver()
	srvA.SetObserver(observer)
	srvB.SetObserver(observer)

	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    1000,
		Power:       sim.PowerModel{IdleW: 2, BusyW: 10, NetW: 3},
		OnWallPower: true,
		Battery:     sim.NewBattery(1_000_000),
	})
	setup, err := core.NewLiveSetup(core.LiveOptions{
		Host:    host,
		Servers: map[string]string{"alpha": addrA, "beta": addrB},
		Obs:     observer,
		Deadline: core.DeadlineOptions{
			Floor:      opts.Budget,
			Ceiling:    opts.Budget,
			HedgeDelay: opts.HedgeDelay,
		},
	})
	if err != nil {
		return TailChaosResult{}, err
	}
	defer setup.Runtime.Close()
	// Pools are created lazily, so the exchange timeout can still be set
	// here alongside the size.
	setup.Runtime.SetPoolOptions(spectrarpc.PoolOptions{
		Size:    opts.PoolSize,
		Timeout: opts.ExchangeTimeout,
	})
	// Local fallback is the ladder's last rung: the client must offer the
	// service itself (never stalled — the chaos is remote).
	setup.Host.RegisterService("work", func(ctx *core.ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 5})
		return payload, nil
	})

	op, err := setup.Client.RegisterFidelity(core.OperationSpec{
		Name:    "work.tailchaos",
		Service: "work",
		Plans:   []core.PlanSpec{{Name: "local"}, {Name: "remote", UsesServer: true}},
	})
	if err != nil {
		return TailChaosResult{}, err
	}
	setup.Client.PollServers()
	setup.Client.Probe()

	// Fault scheduler: cycle one window of each shape until the storm ends.
	done := make(chan struct{})
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		defer stallA.Store(false)
		defer stallB.Store(false)
		for {
			for _, phase := range []*atomic.Bool{&stallA, nil, &stallB, nil, nil} {
				select {
				case <-done:
					return
				default:
				}
				if phase != nil {
					phase.Store(true)
				}
				tailChaosClock.Sleep(opts.FaultWindow)
				if phase != nil {
					phase.Store(false)
				}
			}
		}
	}()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		degraded  int
		firstErr  error
	)
	servers := []string{"alpha", "beta"}
	payload := []byte("chaos")
	var workWG sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		workWG.Add(1)
		go func(w int) {
			defer workWG.Done()
			primary := servers[w%len(servers)]
			for i := 0; i < opts.OpsPerWorker; i++ {
				octx, err := setup.Client.BeginForced(op, solver.Alternative{Server: primary, Plan: "remote"}, nil, "")
				if err == nil {
					start := tailChaosClock.Now()
					_, err = octx.DoRemoteOp("run", payload)
					elapsed := tailChaosClock.Now().Sub(start)
					if err == nil {
						var rep core.Report
						rep, err = octx.End()
						if err == nil {
							mu.Lock()
							latencies = append(latencies, elapsed)
							if rep.Degraded {
								degraded++
							}
							mu.Unlock()
						}
					} else {
						octx.Abort()
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("worker %d op %d: %w", w, i, err)
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	workWG.Wait()
	close(done)
	schedWG.Wait()

	if firstErr != nil {
		return TailChaosResult{}, firstErr
	}
	if len(latencies) == 0 {
		return TailChaosResult{}, fmt.Errorf("tail chaos completed no operations")
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p int) time.Duration {
		idx := len(latencies) * p / 100
		if idx >= len(latencies) {
			idx = len(latencies) - 1
		}
		return latencies[idx]
	}
	res := TailChaosResult{
		Ops:      len(latencies),
		P50:      pct(50),
		P99:      pct(99),
		Max:      latencies[len(latencies)-1],
		Budget:   opts.Budget,
		Degraded: degraded,
	}
	if res.P50 > 0 {
		res.TailRatio = float64(res.P99) / float64(res.P50)
	}
	if over := res.Max - opts.Budget; over > 0 {
		res.MaxOverrun = over
	}
	reg := observer.Registry
	res.HedgesLaunched = reg.Counter(obs.MHedgeLaunched).Value()
	res.HedgeWins = reg.Counter(obs.MHedgeWins).Value()
	res.DeadlineExceeded = reg.Counter(obs.MDeadlineExceeded).Value()
	res.ServerSheds = reg.Counter(obs.MServerDeadlineShed).Value()
	res.PoolExhausted = reg.Counter(obs.MPoolExhausted).Value()
	return res, nil
}
