package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"spectra/internal/apps/pangloss"
	"spectra/internal/obs"
	"spectra/internal/testbed"
	"spectra/internal/workload"
)

// TestRemoteOperationSpanTree is the span-tracing acceptance scenario: a
// remote Pangloss translation must yield one stitched span tree covering
// both sides of the RPC boundary — client-side predict, solve, and rpc
// spans plus server-side exec spans shipped back in the RPC response, with
// the server spans parented under the rpc span that carried the request.
func TestRemoteOperationSpanTree(t *testing.T) {
	sink := obs.NewMemorySink(0) // retain everything, including training runs
	observer := obs.NewObserver()
	observer.Sink = sink

	tb, err := testbed.NewLaptop(testbed.Options{Obs: observer})
	if err != nil {
		t.Fatal(err)
	}
	app, err := pangloss.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()

	for _, words := range panglossTrainingSentences {
		for _, alt := range pangloss.AllAlternatives(tb.Setup.Client.Servers()) {
			if _, err := app.TranslateForced(alt, words); err != nil {
				t.Fatalf("training: %v", err)
			}
		}
	}

	// Load the client's CPU so remote execution wins deterministically.
	tb.X560.SetBackgroundTasks(4)
	for i := 0; i < 8; i++ {
		tb.Setup.Refresh()
	}

	before := sink.Len()
	rep, err := app.Translate(26)
	if err != nil {
		t.Fatal(err)
	}
	server := rep.Decision.Alternative.Server
	if server == "" {
		t.Fatalf("solver chose local under a loaded client CPU: %+v", rep.Decision.Alternative)
	}

	traces := sink.Traces()
	if len(traces) != before+1 {
		t.Fatalf("traces = %d, want %d", len(traces), before+1)
	}
	tr := traces[len(traces)-1]
	if len(tr.Spans) == 0 {
		t.Fatal("remote operation's trace has no spans")
	}

	byName := map[string][]obs.Span{}
	for _, s := range tr.Spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range []string{obs.SpanPredict, obs.SpanSolve, obs.SpanRPC} {
		if len(byName[name]) == 0 {
			t.Errorf("span tree missing client-side %s span: %v", name, spanNames(tr.Spans))
		}
	}
	execs := byName[obs.SpanServerExec]
	if len(execs) == 0 {
		t.Fatalf("span tree missing server-side exec span: %v", spanNames(tr.Spans))
	}

	// Server spans carry the server's name and are stitched under a
	// client-side rpc span, inside the operation's time window.
	for _, exec := range execs {
		if exec.Origin != server {
			t.Errorf("server exec origin = %q, want %q", exec.Origin, server)
		}
		if exec.Parent < 0 || exec.Parent >= len(tr.Spans) {
			t.Fatalf("server exec parent %d out of range", exec.Parent)
		}
		parent := tr.Spans[exec.Parent]
		if parent.Name != obs.SpanRPC {
			t.Errorf("server exec parented under %q, want %q", parent.Name, obs.SpanRPC)
		}
		if exec.Start.Before(tr.Begin) || exec.End.After(tr.End) {
			t.Errorf("server exec [%v, %v] outside operation [%v, %v]",
				exec.Start, exec.End, tr.Begin, tr.End)
		}
		// In the simulation both sides share the virtual clock, so the
		// stitched exec span nests exactly inside its rpc span.
		if exec.Start.Before(parent.Start) || exec.End.After(parent.End) {
			t.Errorf("server exec [%v, %v] escapes its rpc span [%v, %v]",
				exec.Start, exec.End, parent.Start, parent.End)
		}
	}

	// The span IDs are the spans' indices and every parent precedes its
	// children — the invariant the trace tooling's tree rendering relies on.
	for i, s := range tr.Spans {
		if s.ID != i {
			t.Fatalf("span %d has ID %d", i, s.ID)
		}
		if s.Parent >= i {
			t.Fatalf("span %d parented forward to %d", i, s.Parent)
		}
	}

	// Predict and solve consume no virtual time but report wall cost.
	for _, name := range []string{obs.SpanPredict, obs.SpanSolve} {
		for _, s := range byName[name] {
			if s.Cost() <= 0 {
				t.Errorf("%s span cost = %v, want > 0", name, s.Cost())
			}
		}
	}
}

// TestObservabilitySoak drives a churning translation workload with full
// observability on — span tracing, flight recorder, resource telemetry —
// and checks the recorded JSONL file reads back complete. CI sets
// SPECTRA_TRACE_FILE to keep the file and upload it as an artifact;
// locally it lands in the test's temp dir.
func TestObservabilitySoak(t *testing.T) {
	path := os.Getenv("SPECTRA_TRACE_FILE")
	if path == "" {
		path = filepath.Join(t.TempDir(), "soak-traces.jsonl")
	}
	recorder, err := obs.NewJSONLSink(path, obs.JSONLSinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemorySink(32)
	observer := obs.NewObserver()
	mem.AttachMetrics(observer.Registry)
	recorder.AttachMetrics(observer.Registry)
	observer.Sink = obs.MultiSink(mem, recorder)
	observer.TimeSeries = obs.NewTimeSeriesRecorder(256)

	tb, err := testbed.NewLaptop(testbed.Options{Obs: observer})
	if err != nil {
		t.Fatal(err)
	}
	app, err := pangloss.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()
	for _, alt := range pangloss.AllAlternatives(tb.Setup.Client.Servers()) {
		if _, err := app.TranslateForced(alt, 10); err != nil {
			t.Fatalf("training: %v", err)
		}
	}
	trained := recorder.Emitted()

	rng := workload.NewRNG(17)
	sentences := workload.Sentences(11, 120, 40)
	for i, words := range sentences {
		if i%15 == 7 {
			switch rng.Intn(3) {
			case 0:
				tb.X560.SetBackgroundTasks(rng.Intn(5))
			case 1:
				tb.ServerA.SetBackgroundTasks(rng.Intn(3))
			case 2:
				tb.WirelessB.SetPartitioned(!tb.WirelessB.Partitioned())
			}
			tb.Setup.Refresh()
		}
		if _, err := app.Translate(words); err != nil {
			t.Fatalf("translate %d (%vw): %v", i, words, err)
		}
	}

	if err := recorder.Close(); err != nil {
		t.Fatal(err)
	}
	if recorder.Dropped() != 0 {
		t.Errorf("flight recorder dropped %d traces", recorder.Dropped())
	}
	traces, skipped, err := obs.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("flight recorder produced %d unparsable lines", skipped)
	}
	want := int(trained) + len(sentences)
	if len(traces) < want {
		t.Fatalf("flight recorder holds %d traces, want >= %d", len(traces), want)
	}
	withSpans := 0
	for _, tr := range traces {
		if len(tr.Spans) > 0 {
			withSpans++
		}
	}
	if withSpans == 0 {
		t.Fatal("no recorded trace carries spans")
	}
	// The background resource history accumulated alongside the decisions.
	if len(observer.TimeSeries.Names()) == 0 {
		t.Error("no resource time-series recorded")
	}
}

func spanNames(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestLocalOperationSpanTree checks the local path: a solver-made local
// decision yields predict, solve, and local spans and no server spans.
func TestLocalOperationSpanTree(t *testing.T) {
	sink := obs.NewMemorySink(64)
	observer := obs.NewObserver()
	observer.Sink = sink

	tb, err := testbed.NewLaptop(testbed.Options{Obs: observer})
	if err != nil {
		t.Fatal(err)
	}
	app, err := pangloss.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()
	for _, alt := range pangloss.AllAlternatives(nil) {
		if _, err := app.TranslateForced(alt, 4); err != nil {
			t.Fatalf("training: %v", err)
		}
	}

	// Partition both servers: only local alternatives remain feasible.
	tb.WirelessA.SetPartitioned(true)
	tb.WirelessB.SetPartitioned(true)
	tb.Setup.Refresh()

	rep, err := app.Translate(4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision.Alternative.Server != "" {
		t.Fatalf("partitioned run went remote: %+v", rep.Decision.Alternative)
	}
	tr := sink.Traces()[sink.Len()-1]
	byName := map[string]int{}
	for _, s := range tr.Spans {
		byName[s.Name]++
	}
	if byName[obs.SpanPredict] == 0 || byName[obs.SpanSolve] == 0 || byName[obs.SpanLocal] == 0 {
		t.Errorf("local span tree incomplete: %v", spanNames(tr.Spans))
	}
	if byName[obs.SpanServerExec] != 0 || byName[obs.SpanRPC] != 0 {
		t.Errorf("local run recorded remote spans: %v", spanNames(tr.Spans))
	}
}
