package scenario

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"spectra/internal/apps/janus"
	"spectra/internal/obs"
	"spectra/internal/testbed"
)

// TestDecisionTraceAndMetricsEndpoint is the observability acceptance
// scenario: a speech-testbed Janus run with an Observer attached must yield
// a complete decision trace (snapshot, evaluated alternatives with
// per-resource demand, chosen alternative, actual usage, prediction error)
// and a metrics endpoint exposing the core operation/solver/failover/rpc
// counters.
func TestDecisionTraceAndMetricsEndpoint(t *testing.T) {
	sink := obs.NewMemorySink(256)
	observer := obs.NewObserver()
	observer.Sink = sink

	tb, err := testbed.NewSpeech(testbed.Options{Obs: observer})
	if err != nil {
		t.Fatal(err)
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()

	// Train across all alternatives so the models can predict demand.
	for _, length := range speechTrainingPhrases {
		for _, alt := range speechAlternatives() {
			if _, err := app.RecognizeForced(alt, length); err != nil {
				t.Fatalf("training: %v", err)
			}
		}
	}

	// The measured run: Spectra decides, with tracing on.
	before := sink.Len()
	rep, err := app.Recognize(speechTestPhrase)
	if err != nil {
		t.Fatal(err)
	}
	traces := sink.Traces()
	if len(traces) != before+1 {
		t.Fatalf("traces = %d, want %d (one per completed op)", len(traces), before+1)
	}
	tr := traces[len(traces)-1]

	// Identity and decision shape.
	if tr.Operation != janus.OperationName {
		t.Errorf("trace operation = %q, want %q", tr.Operation, janus.OperationName)
	}
	if tr.Forced {
		t.Error("decision trace marked Forced for a solver-made decision")
	}
	if tr.Candidates < 2 {
		t.Errorf("candidates = %d, want >= 2", tr.Candidates)
	}
	if tr.Evaluations <= 0 {
		t.Errorf("evaluations = %d, want > 0", tr.Evaluations)
	}

	// Snapshot: the decision must have seen the local CPU and the t20
	// server.
	if tr.Snapshot.LocalCPUAvailMHz <= 0 {
		t.Errorf("snapshot local CPU avail = %v, want > 0", tr.Snapshot.LocalCPUAvailMHz)
	}
	srv, ok := tr.Snapshot.Servers["t20"]
	if !ok {
		t.Fatalf("snapshot servers = %v, want t20 present", tr.Snapshot.Servers)
	}
	if !srv.Reachable || srv.BandwidthBps <= 0 {
		t.Errorf("t20 avail = %+v, want reachable with bandwidth", srv)
	}

	// Evaluated alternatives: at least two distinct points of the decision
	// space, each with a per-resource predicted demand.
	if len(tr.Evaluated) < 2 {
		t.Fatalf("evaluated alternatives = %d, want >= 2", len(tr.Evaluated))
	}
	sawDemand := false
	for _, ev := range tr.Evaluated {
		if ev.Plan == "" {
			t.Errorf("evaluated alternative without plan: %+v", ev)
		}
		d := ev.Demand
		if d.LocalMegacycles > 0 || d.RemoteMegacycles > 0 || d.NetBytes > 0 ||
			d.LatencySeconds > 0 || d.EnergyJoules > 0 {
			sawDemand = true
		}
	}
	if !sawDemand {
		t.Error("no evaluated alternative carries non-zero predicted demand")
	}

	// Chosen alternative matches the report's decision.
	dec := rep.Decision.Alternative
	if tr.Chosen.Plan != dec.Plan || tr.Chosen.Server != dec.Server {
		t.Errorf("chosen = %s/%s, decision = %s/%s",
			tr.Chosen.Server, tr.Chosen.Plan, dec.Server, dec.Plan)
	}
	if tr.Chosen.Utility <= 0 {
		t.Errorf("chosen utility = %v, want > 0", tr.Chosen.Utility)
	}

	// Actual usage and per-resource prediction error are recorded at End.
	if tr.End.Before(tr.Begin) {
		t.Errorf("end %v before begin %v", tr.End, tr.Begin)
	}
	if tr.Actual.ElapsedSeconds <= 0 {
		t.Errorf("actual elapsed = %v, want > 0", tr.Actual.ElapsedSeconds)
	}
	if tr.Actual.LocalMegacycles <= 0 && tr.Actual.RemoteMegacycles <= 0 {
		t.Errorf("actual usage has no CPU demand: %+v", tr.Actual)
	}
	if len(tr.PredictionError) == 0 {
		t.Fatal("trace has no per-resource prediction error")
	}
	if _, ok := tr.PredictionError[obs.ResLatency]; !ok {
		t.Errorf("prediction error %v missing %s", tr.PredictionError, obs.ResLatency)
	}
	for res, e := range tr.PredictionError {
		if e < 0 || e > 1 {
			t.Errorf("prediction error %s = %v, want within [0, 1]", res, e)
		}
	}

	// The accuracy tracker saw the same errors.
	if mean, n, ok := observer.Accuracy.RelativeError(janus.OperationName, obs.ResLatency); !ok || n <= 0 || mean < 0 {
		t.Errorf("accuracy tracker: mean=%v n=%v ok=%v, want observations", mean, n, ok)
	}

	// The metrics endpoint exposes operation, solver, failover, and rpc
	// counters (failover/rpc at zero here, but present).
	ts := httptest.NewServer(observer.Registry.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		obs.MOpBegin, obs.MOpEnd, obs.MSolverEvaluations,
		obs.MFailoverEvents, obs.MRPCRetries,
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("metrics endpoint missing counter %s", name)
		}
	}
	ops := int64(len(speechTrainingPhrases)*len(speechAlternatives()) + 1)
	if got := snap.Counters[obs.MOpBegin]; got != ops {
		t.Errorf("%s = %d, want %d", obs.MOpBegin, got, ops)
	}
	if got := snap.Counters[obs.MOpEnd]; got != ops {
		t.Errorf("%s = %d, want %d", obs.MOpEnd, got, ops)
	}
	if got := snap.Counters[obs.MSolverEvaluations]; got <= 0 {
		t.Errorf("%s = %d, want > 0", obs.MSolverEvaluations, got)
	}
	if hist, ok := snap.Histograms[obs.MBeginSeconds]; !ok || hist.Count != uint64(ops) {
		t.Errorf("%s count = %v ok=%v, want %d", obs.MBeginSeconds, hist.Count, ok, ops)
	}
}

// TestForcedRunsAreTracedAndMarked checks that oracle/validation runs are
// traced with the Forced flag and a single evaluated alternative.
func TestForcedRunsAreTracedAndMarked(t *testing.T) {
	sink := obs.NewMemorySink(8)
	observer := obs.NewObserver()
	observer.Sink = sink

	tb, err := testbed.NewSpeech(testbed.Options{Obs: observer})
	if err != nil {
		t.Fatal(err)
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()

	alt := speechAlternatives()[0]
	if _, err := app.RecognizeForced(alt, speechTestPhrase); err != nil {
		t.Fatal(err)
	}
	traces := sink.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if !tr.Forced {
		t.Error("forced run not marked Forced")
	}
	if len(tr.Evaluated) != 1 {
		t.Errorf("forced run evaluated %d alternatives, want 1", len(tr.Evaluated))
	}
	if tr.Chosen.Plan != alt.Plan {
		t.Errorf("chosen plan = %q, want %q", tr.Chosen.Plan, alt.Plan)
	}
}
