package scenario

import (
	"fmt"

	"spectra/internal/apps/latex"
	"spectra/internal/core"
	"spectra/internal/solver"
	"spectra/internal/testbed"
)

// Latex scenario names (Figures 5, 6, and 7).
const (
	LatexBaseline    = "baseline"
	LatexFileCache   = "filecache"
	LatexReintegrate = "reintegrate"
	LatexEnergy      = "energy"
)

// LatexScenarios lists the four data sets of Figures 5 and 6 in paper
// order.
func LatexScenarios() []string {
	return []string{LatexBaseline, LatexFileCache, LatexReintegrate, LatexEnergy}
}

// latexTrainingRounds mirrors the paper's 20 training executions.
const latexTrainingRounds = 5

func latexAlternatives() []solver.Alternative {
	return []solver.Alternative{
		{Plan: latex.PlanLocal},
		{Server: "serverA", Plan: latex.PlanRemote},
		{Server: "serverB", Plan: latex.PlanRemote},
	}
}

func latexLabel(a solver.Alternative) string {
	if a.Plan == latex.PlanLocal {
		return "local"
	}
	return a.Server
}

// LatexResult bundles one document's scenario sweep.
type LatexResult struct {
	Document latex.Document
	Results  []ScenarioResult
}

// RunLatex reproduces Figures 5-7: the small and large documents under the
// four scenarios, measuring both time and energy.
func RunLatex(opts testbed.Options) ([]LatexResult, error) {
	var out []LatexResult
	for _, doc := range []latex.Document{latex.SmallDocument(), latex.LargeDocument()} {
		lr := LatexResult{Document: doc}
		for _, name := range LatexScenarios() {
			r, err := runLatexScenario(name, doc, opts)
			if err != nil {
				return nil, fmt.Errorf("latex %s %s: %w", doc.Name, name, err)
			}
			lr.Results = append(lr.Results, r)
		}
		out = append(out, lr)
	}
	return out, nil
}

func runLatexScenario(name string, doc latex.Document, opts testbed.Options) (ScenarioResult, error) {
	tb, err := testbed.NewLaptop(opts)
	if err != nil {
		return ScenarioResult{}, err
	}
	app, err := latex.Install(tb.Setup)
	if err != nil {
		return ScenarioResult{}, err
	}
	tb.Setup.Refresh()

	// Training: both documents across all alternatives (paper: "We first
	// executed Latex 20 times").
	for i := 0; i < latexTrainingRounds; i++ {
		for _, d := range []latex.Document{latex.SmallDocument(), latex.LargeDocument()} {
			for _, alt := range latexAlternatives() {
				if _, err := app.CompileForced(alt, d); err != nil {
					return ScenarioResult{}, fmt.Errorf("training: %w", err)
				}
			}
		}
	}

	scenarioPrepare, err := applyLatexScenario(name, tb, app)
	if err != nil {
		return ScenarioResult{}, err
	}
	// Normalize client state between trials: background reintegration (as
	// Coda would perform while idle) clears buffered DVI writes so each
	// trial starts with exactly the scenario's intended dirty state.
	prepare := func() error {
		if _, err := tb.Setup.Env.Host().Coda().ReintegrateAll(); err != nil {
			return err
		}
		if scenarioPrepare != nil {
			return scenarioPrepare()
		}
		return nil
	}

	res := ScenarioResult{Scenario: name}
	run := func(alt solver.Alternative) (core.Report, error) {
		return app.CompileForced(alt, doc)
	}
	for _, alt := range latexAlternatives() {
		m, err := measure(alt, latexLabel(alt), run, prepare)
		if err != nil {
			return ScenarioResult{}, err
		}
		res.Bars = append(res.Bars, m)
	}

	if err := prepare(); err != nil {
		return ScenarioResult{}, err
	}
	chosenRep, err := app.Compile(doc)
	if err != nil {
		return ScenarioResult{}, err
	}
	chosen := chosenRep.Decision.Alternative
	m, err := measure(chosen, "spectra", func(solver.Alternative) (core.Report, error) {
		return app.Compile(doc)
	}, prepare)
	if err != nil {
		return ScenarioResult{}, err
	}
	res.Spectra = m
	for i := range res.Bars {
		if res.Bars[i].Alternative.Key() == chosen.Key() {
			res.Bars[i].Chosen = true
		}
	}
	return res, nil
}

// applyLatexScenario mutates the testbed and returns an optional per-trial
// preparation step (the reintegrate scenarios must re-modify the input
// before every trial, because a remote trial reintegrates it).
func applyLatexScenario(name string, tb *testbed.Laptop, app *latex.App) (func() error, error) {
	small := latex.SmallDocument()
	touch := func() error { return app.TouchInput(small) }
	switch name {
	case LatexBaseline:
		return nil, nil
	case LatexFileCache:
		// Server B loses every input file from its cache; trials executed
		// on B refetch them, so each trial re-evicts and refreshes the
		// polled cache state.
		nodeB, _, ok := tb.Setup.Env.Server("serverB")
		if !ok {
			return nil, fmt.Errorf("serverB missing")
		}
		evict := func() error {
			for _, d := range []latex.Document{latex.SmallDocument(), latex.LargeDocument()} {
				for _, in := range d.Inputs {
					nodeB.Coda().Evict(in.Path)
				}
			}
			tb.Setup.Refresh()
			return nil
		}
		return evict, evict()
	case LatexReintegrate:
		// The small document's 70 KB input is modified on the client.
		if err := touch(); err != nil {
			return nil, err
		}
		return touch, nil
	case LatexEnergy:
		// Reintegrate scenario plus battery power and a very aggressive
		// lifetime goal (paper §4.2).
		if err := touch(); err != nil {
			return nil, err
		}
		tb.X560.SetWallPower(false)
		tb.Setup.Adaptor.SetImportance(0.95)
		tb.Setup.Refresh()
		return touch, nil
	default:
		return nil, fmt.Errorf("unknown latex scenario %q", name)
	}
}
