package scenario

import (
	"testing"
	"time"

	"spectra/internal/apps/janus"
	"spectra/internal/apps/latex"
	"spectra/internal/apps/pangloss"
	"spectra/internal/testbed"
	"spectra/internal/workload"
)

// TestSoakSpeechUnderChurn drives hundreds of recognitions while the
// environment churns — load appearing and disappearing, the link
// degrading, the server partitioning and healing, the battery draining —
// and requires every operation to complete with a feasible decision.
func TestSoakSpeechUnderChurn(t *testing.T) {
	tb, err := testbed.NewSpeech(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()

	// Brief training so early decisions are informed.
	for _, length := range workload.Utterances(1, 5) {
		for _, alt := range speechAlternatives() {
			if _, err := app.RecognizeForced(alt, length); err != nil {
				t.Fatalf("training: %v", err)
			}
		}
	}

	rng := workload.NewRNG(99)
	lengths := workload.Utterances(2, 200)
	plans := make(map[string]int)
	for i, length := range lengths {
		// Churn the environment every 20 operations.
		if i%20 == 10 {
			switch rng.Intn(5) {
			case 0:
				tb.Itsy.SetBackgroundTasks(rng.Intn(3))
			case 1:
				tb.Serial.SetBandwidthBps(float64(7_000 + rng.Intn(20_000)))
			case 2:
				tb.Serial.SetPartitioned(!tb.Serial.Partitioned())
			case 3:
				tb.Itsy.SetWallPower(!tb.Itsy.OnWallPower())
			case 4:
				tb.Setup.Adaptor.SetImportance(rng.Float64() * 0.8)
			}
			tb.Setup.Refresh()
		}
		rep, err := app.Recognize(length)
		if err != nil {
			t.Fatalf("op %d (len %v): %v", i, length, err)
		}
		if rep.Elapsed <= 0 || rep.Elapsed > 5*time.Minute {
			t.Fatalf("op %d elapsed = %v", i, rep.Elapsed)
		}
		plans[rep.Decision.Alternative.Plan]++
	}
	// The churn must actually exercise more than one plan.
	if len(plans) < 2 {
		t.Fatalf("soak used only plans %v", plans)
	}
}

// TestSoakLaptopMixedWorkload interleaves translations and compiles, with
// document edits arriving stochastically, over a churning laptop testbed.
func TestSoakLaptopMixedWorkload(t *testing.T) {
	tb, err := testbed.NewLaptop(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	texApp, err := latex.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	panApp, err := pangloss.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()

	// Light training for both applications.
	for _, alt := range latexAlternatives() {
		for _, doc := range []latex.Document{latex.SmallDocument(), latex.LargeDocument()} {
			if _, err := texApp.CompileForced(alt, doc); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, alt := range pangloss.AllAlternatives(tb.Setup.Client.Servers()) {
		if _, err := panApp.TranslateForced(alt, 10); err != nil {
			t.Fatal(err)
		}
	}

	rng := workload.NewRNG(7)
	sentences := workload.Sentences(8, 150, 40)
	edits := workload.EditPattern(9, 150, 0.2)
	small := latex.SmallDocument()

	for i := 0; i < 150; i++ {
		if i%25 == 12 {
			switch rng.Intn(4) {
			case 0:
				tb.ServerA.SetBackgroundTasks(rng.Intn(4))
			case 1:
				tb.ServerB.SetBackgroundTasks(rng.Intn(2))
			case 2:
				nodeB, _, _ := tb.Setup.Env.Server("serverB")
				nodeB.Coda().Evict(pangloss.EBMTFile)
			case 3:
				tb.X560.SetWallPower(!tb.X560.OnWallPower())
			}
			tb.Setup.Refresh()
		}

		if edits[i] {
			if err := texApp.TouchInput(small); err != nil {
				t.Fatal(err)
			}
		}
		if i%3 == 0 {
			doc := small
			if rng.Intn(2) == 1 {
				doc = latex.LargeDocument()
			}
			rep, err := texApp.Compile(doc)
			if err != nil {
				t.Fatalf("compile %d: %v", i, err)
			}
			if rep.Elapsed <= 0 {
				t.Fatalf("compile %d elapsed = %v", i, rep.Elapsed)
			}
		} else {
			rep, err := panApp.Translate(sentences[i])
			if err != nil {
				t.Fatalf("translate %d (%vw): %v", i, sentences[i], err)
			}
			if rep.Elapsed <= 0 {
				t.Fatalf("translate %d elapsed = %v", i, rep.Elapsed)
			}
		}
	}

	// The system must remain internally consistent: no volume stuck dirty
	// beyond the latest edit, and the models still predict.
	if dirty := tb.Setup.Env.Host().Coda().DirtyVolumes(); len(dirty) > 2 {
		t.Fatalf("dirty volumes accumulated: %v", dirty)
	}
}
