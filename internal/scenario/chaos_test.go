package scenario

import "testing"

// TestChaosSpeechZeroVisibleErrors is the acceptance soak for the speech
// testbed: 20% of all serial-link transfers are dropped, yet every
// recognition must complete (RunSpeechChaos returns an error on the first
// application-visible failure) with bounded latency inflation.
func TestChaosSpeechZeroVisibleErrors(t *testing.T) {
	res, err := RunSpeechChaos(ChaosOptions{})
	if err != nil {
		t.Fatalf("chaos soak surfaced an error: %v", err)
	}
	if res.InjectedDrops == 0 {
		t.Fatal("injector dropped nothing — the soak tested nothing")
	}
	if res.Failovers == 0 {
		t.Fatal("no transparent recoveries recorded under 20% drops")
	}
	// Local execution on the Itsy runs 3-9x slower than remote on the T20,
	// so degraded recoveries legitimately stretch the mean; 6x bounds it.
	if infl := res.Inflation(); infl > 6 {
		t.Fatalf("latency inflation = %.2fx (baseline %v, chaos %v)",
			infl, res.BaselineMean, res.ChaosMean)
	}
	t.Logf("speech chaos: %d ops, %d drops, %d failovers (%d degraded), inflation %.2fx",
		res.Ops, res.InjectedDrops, res.Failovers, res.Degraded, res.Inflation())
}

// TestChaosLaptopKillAndReadopt is the acceptance soak for the laptop
// testbed: both wireless links drop 20% of transfers, serverB is killed
// mid-soak and healed later. Every translation must complete, the dead
// server must be routed around, and after healing it must rejoin the
// decision space.
func TestChaosLaptopKillAndReadopt(t *testing.T) {
	res, err := RunLaptopChaos(ChaosOptions{})
	if err != nil {
		t.Fatalf("chaos soak surfaced an error: %v", err)
	}
	if res.InjectedDrops == 0 {
		t.Fatal("injectors dropped nothing — the soak tested nothing")
	}
	if res.Failovers == 0 {
		t.Fatal("no transparent recoveries recorded under 20% drops + kill")
	}
	if !res.ServerReadopted {
		t.Fatal("serverB was not re-adopted after its link healed")
	}
	// The surviving server keeps remote plans viable, so inflation stays
	// moderate even with a third of the soak under a dead serverB.
	if infl := res.Inflation(); infl > 6 {
		t.Fatalf("latency inflation = %.2fx (baseline %v, chaos %v)",
			infl, res.BaselineMean, res.ChaosMean)
	}
	t.Logf("laptop chaos: %d ops, %d drops, %d failovers (%d degraded), inflation %.2fx, readopted=%v",
		res.Ops, res.InjectedDrops, res.Failovers, res.Degraded, res.Inflation(), res.ServerReadopted)
}
