package scenario

import (
	"fmt"
	"strings"

	"spectra/internal/apps/pangloss"
	"spectra/internal/core"
	"spectra/internal/testbed"
	"spectra/internal/utility"
)

// Pangloss scenario names (Figures 8 and 9).
const (
	PanglossBaseline  = "baseline"
	PanglossFileCache = "filecache"
	PanglossCPU       = "cpu"
)

// PanglossScenarios lists the three data sets of Figures 8 and 9.
func PanglossScenarios() []string {
	return []string{PanglossBaseline, PanglossFileCache, PanglossCPU}
}

// PanglossTestSentences are the five sentences translated after training,
// in words.
var PanglossTestSentences = []float64{4, 8, 12, 26, 34}

// panglossTrainingSentences stands in for the paper's 129-sentence
// training set: every alternative is exercised at several lengths.
var panglossTrainingSentences = []float64{4, 10, 20, 34}

// SentenceResult is one bar of Figures 8 and 9.
type SentenceResult struct {
	Words float64
	// Percentile ranks Spectra's choice among all alternatives by achieved
	// utility; 100 means the best choice.
	Percentile float64
	// RelativeUtility is Spectra's achieved utility divided by the
	// zero-overhead oracle's (Figure 9).
	RelativeUtility float64
	// Chosen describes the selected alternative.
	Chosen string
	// OracleBest describes the best alternative by measurement.
	OracleBest string
}

// PanglossResult is one scenario's sweep over the five test sentences.
type PanglossResult struct {
	Scenario  string
	Sentences []SentenceResult
}

// MeanRelativeUtility averages relative utility across sentences.
func (r PanglossResult) MeanRelativeUtility() float64 {
	if len(r.Sentences) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Sentences {
		sum += s.RelativeUtility
	}
	return sum / float64(len(r.Sentences))
}

// RunPangloss reproduces Figures 8 and 9.
func RunPangloss(opts testbed.Options) ([]PanglossResult, error) {
	var out []PanglossResult
	for _, name := range PanglossScenarios() {
		r, err := runPanglossScenario(name, opts)
		if err != nil {
			return nil, fmt.Errorf("pangloss %s: %w", name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func runPanglossScenario(name string, opts testbed.Options) (PanglossResult, error) {
	tb, err := testbed.NewLaptop(opts)
	if err != nil {
		return PanglossResult{}, err
	}
	app, err := pangloss.Install(tb.Setup)
	if err != nil {
		return PanglossResult{}, err
	}
	tb.Setup.Refresh()

	alts := pangloss.AllAlternatives(tb.Setup.Client.Servers())
	for _, words := range panglossTrainingSentences {
		for _, alt := range alts {
			if _, err := app.TranslateForced(alt, words); err != nil {
				return PanglossResult{}, fmt.Errorf("training: %w", err)
			}
		}
	}

	prepare, err := applyPanglossScenario(name, tb)
	if err != nil {
		return PanglossResult{}, err
	}

	res := PanglossResult{Scenario: name}
	latU := utility.DeadlineLatency(pangloss.BestLatency, pangloss.WorstLatency)
	achieved := func(rep core.Report) float64 {
		return latU(rep.Elapsed) * pangloss.FidelityValue(rep.Decision.Alternative.Fidelity)
	}

	for _, words := range PanglossTestSentences {
		// Oracle: measure every alternative's achieved utility.
		utilities := make([]float64, 0, len(alts))
		bestU, bestLabel := -1.0, ""
		for _, alt := range alts {
			if prepare != nil {
				if err := prepare(); err != nil {
					return PanglossResult{}, err
				}
			}
			rep, err := app.TranslateForced(alt, words)
			if err != nil {
				return PanglossResult{}, fmt.Errorf("oracle %v: %w", alt, err)
			}
			u := achieved(rep)
			utilities = append(utilities, u)
			if u > bestU {
				bestU = u
				bestLabel = alt.Key()
			}
		}

		// Spectra's choice, with overhead, on the same sentence.
		if prepare != nil {
			if err := prepare(); err != nil {
				return PanglossResult{}, err
			}
		}
		rep, err := app.Translate(words)
		if err != nil {
			return PanglossResult{}, err
		}
		got := achieved(rep)

		better := 0
		for _, u := range utilities {
			if u > got {
				better++
			}
		}
		n := len(utilities)
		sr := SentenceResult{
			Words:      words,
			Percentile: 100 * float64(n-better) / float64(n),
			Chosen:     rep.Decision.Alternative.Key(),
			OracleBest: bestLabel,
		}
		if bestU > 0 {
			sr.RelativeUtility = got / bestU
		} else {
			sr.RelativeUtility = 1 // everything is worthless; no regret
		}
		res.Sentences = append(res.Sentences, sr)
	}
	return res, nil
}

// applyPanglossScenario mutates the testbed and returns an optional
// per-trial preparation step (the evicted EBMT corpus must be re-evicted
// after any trial that refetches it).
func applyPanglossScenario(name string, tb *testbed.Laptop) (func() error, error) {
	switch name {
	case PanglossBaseline:
		return nil, nil
	case PanglossFileCache:
		// The 12 MB EBMT corpus is evicted from server B's cache; trials
		// that ran EBMT on B refetched it, so every trial re-evicts and
		// refreshes the polled cache state.
		nodeB, _, ok := tb.Setup.Env.Server("serverB")
		if !ok {
			return nil, fmt.Errorf("serverB missing")
		}
		evict := func() error {
			nodeB.Coda().Evict(pangloss.EBMTFile)
			tb.Setup.Refresh()
			return nil
		}
		return evict, evict()
	case PanglossCPU:
		// File-cache scenario plus two CPU-intensive processes on server A.
		prepare, err := applyPanglossScenario(PanglossFileCache, tb)
		if err != nil {
			return nil, err
		}
		tb.ServerA.SetBackgroundTasks(2)
		for i := 0; i < 8; i++ {
			tb.Setup.Refresh()
		}
		return prepare, nil
	default:
		return nil, fmt.Errorf("unknown pangloss scenario %q", name)
	}
}

// FormatPangloss renders Figures 8 and 9 as text tables.
func FormatPangloss(results []PanglossResult) string {
	var b strings.Builder
	b.WriteString("Figure 8 — accuracy percentile of Spectra's choice\n")
	fmt.Fprintf(&b, "%-12s", "sentence")
	for _, r := range results {
		fmt.Fprintf(&b, "%12s", r.Scenario)
	}
	b.WriteByte('\n')
	for i, words := range PanglossTestSentences {
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("%dw", int(words)))
		for _, r := range results {
			fmt.Fprintf(&b, "%12.0f", r.Sentences[i].Percentile)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nFigure 9 — utility relative to zero-overhead oracle\n")
	fmt.Fprintf(&b, "%-12s", "sentence")
	for _, r := range results {
		fmt.Fprintf(&b, "%12s", r.Scenario)
	}
	b.WriteByte('\n')
	for i, words := range PanglossTestSentences {
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("%dw", int(words)))
		for _, r := range results {
			fmt.Fprintf(&b, "%12.2f", r.Sentences[i].RelativeUtility)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s", "mean")
	for _, r := range results {
		fmt.Fprintf(&b, "%12.2f", r.MeanRelativeUtility())
	}
	b.WriteByte('\n')
	return b.String()
}
