package scenario

import (
	"strings"
	"testing"

	"spectra/internal/apps/janus"
	"spectra/internal/apps/latex"
	"spectra/internal/testbed"
)

// TestSpeechFigures reproduces Figures 3 and 4 and checks every shape the
// paper reports for the speech workload.
func TestSpeechFigures(t *testing.T) {
	results, err := RunSpeech(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("scenarios = %d, want 5", len(results))
	}
	byName := make(map[string]ScenarioResult, len(results))
	for _, r := range results {
		byName[r.Scenario] = r
	}
	barByLabel := func(r ScenarioResult, label string) Measurement {
		for _, b := range r.Bars {
			if b.Label == label {
				return b
			}
		}
		t.Fatalf("%s: no bar %q", r.Scenario, label)
		return Measurement{}
	}

	base := byName[SpeechBaseline]
	// Local execution is 3-9x slower than hybrid and remote (Figure 3).
	localFull := barByLabel(base, "local/full")
	hybridFull := barByLabel(base, "hybrid/full")
	remoteFull := barByLabel(base, "remote/full")
	for _, other := range []Measurement{hybridFull, remoteFull} {
		ratio := float64(localFull.Elapsed) / float64(other.Elapsed)
		if ratio < 3 || ratio > 9 {
			t.Errorf("baseline local/offload ratio = %.1f, want 3-9", ratio)
		}
	}
	// Baseline choice: hybrid plan, full vocabulary.
	if !hybridFull.Chosen {
		t.Errorf("baseline chose %v, want hybrid/full", base.ChosenIndex())
	}

	// Energy scenario: remote/full chosen; hybrid costs more energy than
	// remote (Figure 4).
	en := byName[SpeechEnergy]
	if !barByLabel(en, "remote/full").Chosen {
		t.Errorf("energy scenario chose wrong alternative")
	}
	if barByLabel(en, "hybrid/full").EnergyJoules <= barByLabel(en, "remote/full").EnergyJoules {
		t.Errorf("hybrid energy %.2fJ should exceed remote %.2fJ",
			barByLabel(en, "hybrid/full").EnergyJoules,
			barByLabel(en, "remote/full").EnergyJoules)
	}

	// Network scenario: hybrid/full chosen; remote noticeably slower than
	// at baseline.
	nw := byName[SpeechNetwork]
	if !barByLabel(nw, "hybrid/full").Chosen {
		t.Errorf("network scenario chose wrong alternative")
	}
	if barByLabel(nw, "remote/full").Elapsed <= remoteFull.Elapsed {
		t.Errorf("halved bandwidth did not slow remote execution")
	}

	// CPU scenario: remote plan chosen (local computation got expensive).
	cpu := byName[SpeechCPU]
	if !barByLabel(cpu, "remote/full").Chosen && !barByLabel(cpu, "remote/reduced").Chosen {
		t.Errorf("cpu scenario did not choose a remote plan")
	}

	// File-cache scenario: remote/hybrid infeasible (partition); Spectra
	// picks reduced-quality local recognition; full-quality local is about
	// 3x slower.
	fc := byName[SpeechFileCache]
	if barByLabel(fc, "hybrid/full").Feasible || barByLabel(fc, "remote/full").Feasible {
		t.Errorf("partitioned scenario still ran remote plans")
	}
	if !barByLabel(fc, "local/reduced").Chosen {
		t.Errorf("file-cache scenario chose wrong alternative")
	}
	slow := float64(barByLabel(fc, "local/full").Elapsed)
	fast := float64(barByLabel(fc, "local/reduced").Elapsed)
	if ratio := slow / fast; ratio < 2 || ratio > 6 {
		t.Errorf("full/reduced ratio under cache miss = %.1f, want ~3", ratio)
	}

	// Spectra's own run should be close to its chosen bar (low overhead).
	for _, r := range results {
		idx := r.ChosenIndex()
		if idx < 0 {
			t.Errorf("%s: no chosen bar", r.Scenario)
			continue
		}
		chosen := r.Bars[idx]
		if r.Spectra.Elapsed > chosen.Elapsed*3/2 {
			t.Errorf("%s: Spectra run %v much slower than chosen bar %v",
				r.Scenario, r.Spectra.Elapsed, chosen.Elapsed)
		}
	}

	// Table rendering sanity.
	tbl := FormatTimeTable("Figure 3", results)
	if !strings.Contains(tbl, "hybrid/full") || !strings.Contains(tbl, "baseline") {
		t.Errorf("table rendering broken:\n%s", tbl)
	}
}

// TestLatexFigures reproduces Figures 5-7 and checks the reported shapes.
func TestLatexFigures(t *testing.T) {
	results, err := RunLatex(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("documents = %d, want 2", len(results))
	}
	for _, lr := range results {
		byName := make(map[string]ScenarioResult)
		for _, r := range lr.Results {
			byName[r.Scenario] = r
		}
		bar := func(r ScenarioResult, label string) Measurement {
			for _, b := range r.Bars {
				if b.Label == label {
					return b
				}
			}
			t.Fatalf("no bar %q", label)
			return Measurement{}
		}
		small := lr.Document.Name == latex.SmallDocument().Name

		// Baseline: server B (faster CPU) chosen for both documents.
		base := byName[LatexBaseline]
		if !bar(base, "serverB").Chosen {
			t.Errorf("%s baseline chose wrong server", lr.Document.Name)
		}
		if bar(base, "serverB").Elapsed >= bar(base, "serverA").Elapsed {
			t.Errorf("%s baseline: B not faster than A", lr.Document.Name)
		}

		// File cache: B's cold cache flips the choice to A.
		fc := byName[LatexFileCache]
		if !bar(fc, "serverA").Chosen {
			t.Errorf("%s file-cache scenario chose wrong server", lr.Document.Name)
		}
		if bar(fc, "serverB").Elapsed <= bar(base, "serverB").Elapsed {
			t.Errorf("%s: cold cache did not slow server B", lr.Document.Name)
		}

		// Reintegrate: local for the small document (remote must pay
		// reintegration); still B for the large one (modified file not
		// predicted to be needed).
		re := byName[LatexReintegrate]
		if small {
			if !bar(re, "local").Chosen {
				t.Errorf("small reintegrate scenario chose wrong plan")
			}
			if bar(re, "serverB").Elapsed <= bar(base, "serverB").Elapsed {
				t.Errorf("reintegration did not slow remote execution")
			}
		} else {
			if !bar(re, "serverB").Chosen {
				t.Errorf("large reintegrate scenario chose wrong server")
			}
		}

		// Energy: B chosen for both; for the small document B is slower
		// than local but uses less energy (Figure 7a).
		en := byName[LatexEnergy]
		if !bar(en, "serverB").Chosen {
			t.Errorf("%s energy scenario chose wrong server", lr.Document.Name)
		}
		if small {
			if bar(en, "serverB").Elapsed <= bar(en, "local").Elapsed {
				t.Errorf("small energy: B should be slower than local")
			}
			if bar(en, "serverB").EnergyJoules >= bar(en, "local").EnergyJoules {
				t.Errorf("small energy: B (%.1fJ) should use less energy than local (%.1fJ)",
					bar(en, "serverB").EnergyJoules, bar(en, "local").EnergyJoules)
			}
			if bar(en, "serverB").EnergyJoules >= bar(en, "serverA").EnergyJoules {
				t.Errorf("small energy: B should use less energy than A")
			}
		} else {
			// Large document: B saves both time and energy.
			if bar(en, "serverB").Elapsed >= bar(en, "local").Elapsed ||
				bar(en, "serverB").EnergyJoules >= bar(en, "local").EnergyJoules {
				t.Errorf("large energy: B should beat local on both metrics")
			}
		}
	}
}

// TestPanglossFigures reproduces Figures 8 and 9.
func TestPanglossFigures(t *testing.T) {
	results, err := RunPangloss(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("scenarios = %d, want 3", len(results))
	}
	var totalRel float64
	var n int
	for _, r := range results {
		if len(r.Sentences) != len(PanglossTestSentences) {
			t.Fatalf("%s: %d sentences", r.Scenario, len(r.Sentences))
		}
		for _, s := range r.Sentences {
			if s.Percentile < 50 {
				t.Errorf("%s %vw: percentile %.0f too low (chose %s, best %s)",
					r.Scenario, s.Words, s.Percentile, s.Chosen, s.OracleBest)
			}
			totalRel += s.RelativeUtility
			n++
		}
	}
	// Paper: "Spectra did an excellent job for Pangloss-Lite, achieving on
	// average 91% of the best utility."
	if mean := totalRel / float64(n); mean < 0.85 {
		t.Errorf("mean relative utility = %.2f, want >= 0.85", mean)
	}
	out := FormatPangloss(results)
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "Figure 9") {
		t.Errorf("rendering broken:\n%s", out)
	}
}

// TestOverheadFigure reproduces Figure 10.
func TestOverheadFigure(t *testing.T) {
	results, err := RunOverhead(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("configs = %d, want 3 server counts + full cache", len(results))
	}
	for i, r := range results[:3] {
		if r.Servers != OverheadServerCounts[i] {
			t.Errorf("config %d servers = %d", i, r.Servers)
		}
		if r.Total <= 0 || r.Begin <= 0 {
			t.Errorf("%d servers: zero overhead measured: %+v", r.Servers, r)
		}
		wantCands := 1 + r.Servers
		if r.Candidates != wantCands {
			t.Errorf("%d servers: candidates = %d, want %d", r.Servers, r.Candidates, wantCands)
		}
	}
	// The full-cache variant must show file-cache prediction dominating
	// the equivalent 1-server configuration, the paper's pathological case.
	full := results[3]
	if !full.FullCache {
		t.Fatalf("last config should be the full-cache variant: %+v", full)
	}
	if full.FilePrediction <= results[1].FilePrediction {
		t.Errorf("full-cache file prediction %v not above 1-server %v",
			full.FilePrediction, results[1].FilePrediction)
	}
	// More candidate servers => more alternatives searched; total overhead
	// must not shrink dramatically (the paper's growth is dominated by
	// choosing among alternatives).
	if results[2].Choosing < results[0].Choosing {
		t.Errorf("choosing with 5 servers (%v) below 0 servers (%v)",
			results[2].Choosing, results[0].Choosing)
	}
	out := FormatOverhead(results)
	if !strings.Contains(out, "begin_fidelity_op") {
		t.Errorf("rendering broken:\n%s", out)
	}
}

// TestSpeechAlternativesCoverFigure ensures the bar set matches the
// figure's six alternatives.
func TestSpeechAlternativesCoverFigure(t *testing.T) {
	alts := speechAlternatives()
	if len(alts) != 6 {
		t.Fatalf("alternatives = %d, want 6", len(alts))
	}
	seen := make(map[string]bool)
	for _, a := range alts {
		seen[speechLabel(a)] = true
	}
	for _, want := range []string{
		"local/full", "local/reduced", "hybrid/full",
		"hybrid/reduced", "remote/full", "remote/reduced",
	} {
		if !seen[want] {
			t.Errorf("missing alternative %s", want)
		}
	}
	_ = janus.Spec() // keep import meaningful if labels change
}
