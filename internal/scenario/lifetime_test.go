package scenario

import (
	"testing"
	"time"

	"spectra/internal/apps/janus"
	"spectra/internal/solver"
	"spectra/internal/testbed"
)

// TestGoalDirectedAdaptationExtendsLifetime validates the system's central
// energy claim (paper §2.1, §3.3.3): with a battery-lifetime goal set, the
// goal-directed feedback raises the energy-conservation importance c when
// the battery drains too fast, Spectra shifts work off the client, and the
// battery lasts substantially longer than without adaptation.
func TestGoalDirectedAdaptationExtendsLifetime(t *testing.T) {
	// run simulates a user recognizing one phrase every 20 virtual seconds
	// until the battery dies or the horizon passes, returning the achieved
	// lifetime.
	run := func(adaptive bool) (time.Duration, map[string]int) {
		tb, err := testbed.NewSpeech(testbed.Options{})
		if err != nil {
			t.Fatal(err)
		}
		app, err := janus.Install(tb.Setup)
		if err != nil {
			t.Fatal(err)
		}
		tb.Setup.Refresh()
		for i := 0; i < 2; i++ {
			for _, alt := range speechAlternatives() {
				if _, err := app.RecognizeForced(alt, 2); err != nil {
					t.Fatal(err)
				}
			}
		}

		// A small battery so the experiment concludes quickly: 600 J.
		// Continuous hybrid use drains ~2.5 J per op plus ~0.2 W idle.
		battery := tb.Itsy.Battery()
		battery.Drain(battery.RemainingJoules() - 600)
		tb.Itsy.SetWallPower(false)
		start := tb.Setup.Clock.Now()
		if adaptive {
			tb.Setup.Adaptor.SetGoal(2 * time.Hour)
		}

		const horizon = 4 * time.Hour
		plans := make(map[string]int)
		for battery.RemainingJoules() > 1 {
			if tb.Setup.Clock.Now().Sub(start) > horizon {
				break
			}
			rep, err := app.Recognize(2)
			if err != nil {
				t.Fatal(err)
			}
			plans[rep.Decision.Alternative.Plan]++
			// Idle until the next phrase, draining idle power.
			tb.Setup.Clock.Advance(20 * time.Second)
			tb.Setup.Env.HostAccount().DrainIdle(20 * time.Second)
		}
		return tb.Setup.Clock.Now().Sub(start), plans
	}

	fixed, fixedPlans := run(false)
	adaptive, adaptivePlans := run(true)

	// Without a goal (c = 0) Spectra optimizes performance only and keeps
	// choosing the hybrid plan, burning client CPU.
	if fixedPlans["hybrid"] == 0 {
		t.Fatalf("performance mode never chose hybrid: %v", fixedPlans)
	}
	// With the goal the feedback loop pushes execution fully remote.
	if adaptivePlans["remote"] == 0 {
		t.Fatalf("adaptive mode never chose remote: %v", adaptivePlans)
	}
	// And the battery lasts meaningfully longer.
	if adaptive < fixed*5/4 {
		t.Fatalf("adaptation extended lifetime only %v -> %v (want >= +25%%), plans %v vs %v",
			fixed, adaptive, fixedPlans, adaptivePlans)
	}
}

// TestLifetimeGoalMet checks the dual condition: when the goal is modest,
// the adaptor relaxes c and Spectra returns to faster plans rather than
// conserving forever.
func TestLifetimeGoalRelaxesWhenEasy(t *testing.T) {
	tb, err := testbed.NewSpeech(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		t.Fatal(err)
	}
	tb.Setup.Refresh()
	for i := 0; i < 2; i++ {
		for _, alt := range speechAlternatives() {
			if _, err := app.RecognizeForced(alt, 2); err != nil {
				t.Fatal(err)
			}
		}
	}

	tb.Itsy.SetWallPower(false)
	// Trivial goal on a full 32 kJ battery: ten minutes.
	tb.Setup.Adaptor.SetGoal(10 * time.Minute)

	var last solver.Alternative
	for i := 0; i < 10; i++ {
		rep, err := app.Recognize(2)
		if err != nil {
			t.Fatal(err)
		}
		last = rep.Decision.Alternative
		tb.Setup.Clock.Advance(30 * time.Second)
		tb.Setup.Env.HostAccount().DrainIdle(30 * time.Second)
	}
	// With energy pressure near zero, the fastest plan (hybrid) wins.
	if last.Plan != janus.PlanHybrid {
		t.Fatalf("easy-goal decision = %+v, want hybrid", last)
	}
	if c := tb.Setup.Adaptor.Importance(); c > 0.3 {
		t.Fatalf("importance under easy goal = %v, want near 0", c)
	}
}
