// Package scenario reproduces the paper's validation (§4): it constructs
// the testbeds, trains Spectra, applies each resource-availability
// scenario, measures every execution alternative, asks Spectra to choose,
// and reports the same rows and series the paper's figures show.
package scenario

import (
	"fmt"
	"strings"
	"time"

	"spectra/internal/core"
	"spectra/internal/solver"
)

// Trials is how many times each alternative is measured; the paper used
// five. The simulation is deterministic, so the mean equals each trial,
// but the methodology is preserved.
const Trials = 3

// Measurement is one bar of a figure: an alternative's measured execution
// time and client energy.
type Measurement struct {
	Alternative solver.Alternative
	// Label is the figure's bar label (e.g. "hybrid/full").
	Label string
	// Elapsed is the mean measured execution time.
	Elapsed time.Duration
	// EnergyJoules is the mean measured client energy.
	EnergyJoules float64
	// Feasible is false when the alternative cannot execute in this
	// scenario (e.g. remote plans during a partition).
	Feasible bool
	// Chosen marks the alternative Spectra selected ("S" in the figures).
	Chosen bool
}

// ScenarioResult is one data set of a figure: every alternative measured
// under one resource-availability scenario, plus Spectra's run.
type ScenarioResult struct {
	Scenario string
	Bars     []Measurement
	// Spectra is the measurement of the run where Spectra chose (the
	// figures' last bar, which includes decision overhead).
	Spectra Measurement
}

// BestIndex returns the index of the fastest feasible bar.
func (r ScenarioResult) BestIndex() int {
	best := -1
	for i, b := range r.Bars {
		if !b.Feasible {
			continue
		}
		if best < 0 || b.Elapsed < r.Bars[best].Elapsed {
			best = i
		}
	}
	return best
}

// ChosenIndex returns the index of Spectra's chosen bar, or -1.
func (r ScenarioResult) ChosenIndex() int {
	for i, b := range r.Bars {
		if b.Chosen {
			return i
		}
	}
	return -1
}

// runner measures one alternative once; implemented per application.
type runner func(alt solver.Alternative) (core.Report, error)

// measure runs an alternative Trials times and averages.
func measure(alt solver.Alternative, label string, run runner, prepare func() error) (Measurement, error) {
	m := Measurement{Alternative: alt, Label: label}
	var totalT time.Duration
	var totalE float64
	for i := 0; i < Trials; i++ {
		if prepare != nil {
			if err := prepare(); err != nil {
				return m, err
			}
		}
		rep, err := run(alt)
		if err != nil {
			if isInfeasible(err) {
				return m, nil // bar absent in this scenario
			}
			return m, err
		}
		totalT += rep.Elapsed
		totalE += rep.Usage.EnergyJoules
	}
	m.Feasible = true
	m.Elapsed = totalT / Trials
	m.EnergyJoules = totalE / Trials
	return m, nil
}

func isInfeasible(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no feasible execution alternative")
}

// FormatTimeTable renders scenario results as the paper's execution-time
// figures do: one row per alternative, columns per scenario.
func FormatTimeTable(title string, results []ScenarioResult) string {
	return formatTable(title+" — execution time", results, func(m Measurement) string {
		if !m.Feasible {
			return "-"
		}
		return fmt.Sprintf("%.2fs", m.Elapsed.Seconds())
	})
}

// FormatEnergyTable renders scenario results as the energy figures do.
func FormatEnergyTable(title string, results []ScenarioResult) string {
	return formatTable(title+" — energy usage", results, func(m Measurement) string {
		if !m.Feasible {
			return "-"
		}
		return fmt.Sprintf("%.2fJ", m.EnergyJoules)
	})
}

func formatTable(title string, results []ScenarioResult, cell func(Measurement) string) string {
	if len(results) == 0 {
		return title + ": no data\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-24s", "alternative")
	for _, r := range results {
		fmt.Fprintf(&b, "%14s", r.Scenario)
	}
	b.WriteByte('\n')
	for i, bar := range results[0].Bars {
		fmt.Fprintf(&b, "%-24s", bar.Label)
		for _, r := range results {
			mark := " "
			if r.Bars[i].Chosen {
				mark = "*"
			}
			fmt.Fprintf(&b, "%13s%s", cell(r.Bars[i]), mark)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-24s", "spectra (with overhead)")
	for _, r := range results {
		fmt.Fprintf(&b, "%13s ", cell(r.Spectra))
	}
	b.WriteString("\n('*' marks Spectra's choice)\n")
	return b.String()
}
