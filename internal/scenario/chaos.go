package scenario

import (
	"fmt"
	"time"

	"spectra/internal/apps/janus"
	"spectra/internal/apps/pangloss"
	"spectra/internal/core"
	"spectra/internal/simnet"
	"spectra/internal/testbed"
	"spectra/internal/workload"
)

// ChaosOptions tunes a chaos soak: a trained workload driven while the
// fault injectors perturb every client-server link. The soak's contract is
// the paper's promise under failure — applications delegate placement and
// never see transient infrastructure faults.
type ChaosOptions struct {
	// Seed drives both the workload and the fault injectors; runs with the
	// same seed replay the same faults. 0 selects a fixed default.
	Seed uint64
	// DropRate is the probability that any one transfer is dropped
	// (injected transient RPC fault). Default 0.2 — the acceptance bar.
	DropRate float64
	// SpikeRate and SpikeLatency add congestion bursts to transfers.
	SpikeRate    float64
	SpikeLatency time.Duration
	// Ops is how many application operations the soak drives after
	// training; 0 selects 120.
	Ops int
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Seed == 0 {
		o.Seed = 0xc4a05
	}
	if o.DropRate == 0 {
		o.DropRate = 0.2
	}
	if o.Ops == 0 {
		o.Ops = 120
	}
	return o
}

// ChaosResult summarizes a chaos soak. Every operation completed — a soak
// that observes an application-visible error returns that error instead of
// a result.
type ChaosResult struct {
	// Ops is how many operations ran under injected faults.
	Ops int
	// Failovers counts transparent recoveries across all operations.
	Failovers int
	// Degraded counts operations that fell back to client-local execution.
	Degraded int
	// InjectedDrops is how many transfers the injectors actually dropped.
	InjectedDrops int64
	// BaselineMean and ChaosMean are the mean operation latencies without
	// and with injected faults.
	BaselineMean time.Duration
	ChaosMean    time.Duration
	// ServerReadopted reports whether the server killed mid-soak was
	// quarantined and then re-adopted after its link healed (laptop soak
	// only; true trivially otherwise).
	ServerReadopted bool
}

// Inflation is the latency ratio chaos/baseline.
func (r ChaosResult) Inflation() float64 {
	if r.BaselineMean <= 0 {
		return 0
	}
	return float64(r.ChaosMean) / float64(r.BaselineMean)
}

// RunSpeechChaos soaks the speech testbed: Janus recognitions with the
// serial link dropping DropRate of all transfers. With a single compute
// server, every absorbed fault degrades to local execution — the ladder's
// terminal rung.
func RunSpeechChaos(opts ChaosOptions) (ChaosResult, error) {
	opts = opts.withDefaults()
	tb, err := testbed.NewSpeech(testbed.Options{})
	if err != nil {
		return ChaosResult{}, err
	}
	app, err := janus.Install(tb.Setup)
	if err != nil {
		return ChaosResult{}, err
	}
	tb.Setup.Refresh()
	for _, length := range workload.Utterances(1, 5) {
		for _, alt := range speechAlternatives() {
			if _, err := app.RecognizeForced(alt, length); err != nil {
				return ChaosResult{}, fmt.Errorf("training: %w", err)
			}
		}
	}

	lengths := workload.Utterances(opts.Seed, 2*opts.Ops)
	res := ChaosResult{Ops: opts.Ops, ServerReadopted: true}

	// Baseline: the same workload prefix, no faults.
	var baseline time.Duration
	for _, length := range lengths[:opts.Ops] {
		rep, err := app.Recognize(length)
		if err != nil {
			return ChaosResult{}, fmt.Errorf("baseline op: %w", err)
		}
		baseline += rep.Elapsed
	}
	res.BaselineMean = baseline / time.Duration(opts.Ops)

	inj := simnet.NewFaultInjector(simnet.FaultConfig{
		Seed:         opts.Seed,
		DropRate:     opts.DropRate,
		SpikeRate:    opts.SpikeRate,
		SpikeLatency: opts.SpikeLatency,
	})
	tb.Serial.SetFaultInjector(inj)

	var chaos time.Duration
	for i, length := range lengths[opts.Ops:] {
		if i%20 == 10 {
			tb.Setup.Refresh()
		}
		rep, err := app.Recognize(length)
		if err != nil {
			return ChaosResult{}, fmt.Errorf("chaos op %d: %w", i, err)
		}
		chaos += rep.Elapsed
		res.Failovers += len(rep.Failovers)
		if rep.Degraded {
			res.Degraded++
		}
	}
	res.ChaosMean = chaos / time.Duration(opts.Ops)
	res.InjectedDrops = inj.Drops()
	return res, nil
}

// RunLaptopChaos soaks the laptop testbed: Pangloss translations with both
// wireless compute links dropping DropRate of all transfers, plus a
// scripted kill of serverB mid-soak. It verifies the full recovery story:
// faults are absorbed (by re-planning onto the surviving server or the
// client), the killed server is quarantined, and once its link heals and
// the quarantine elapses it is re-adopted.
func RunLaptopChaos(opts ChaosOptions) (ChaosResult, error) {
	opts = opts.withDefaults()
	tb, err := testbed.NewLaptop(testbed.Options{
		Health: core.HealthOptions{FailureThreshold: 3, Quarantine: 30 * time.Second},
	})
	if err != nil {
		return ChaosResult{}, err
	}
	app, err := pangloss.Install(tb.Setup)
	if err != nil {
		return ChaosResult{}, err
	}
	tb.Setup.Refresh()
	for _, alt := range pangloss.AllAlternatives(tb.Setup.Client.Servers()) {
		if _, err := app.TranslateForced(alt, 10); err != nil {
			return ChaosResult{}, fmt.Errorf("training: %w", err)
		}
	}

	sentences := workload.Sentences(opts.Seed+1, 2*opts.Ops, 40)
	res := ChaosResult{Ops: opts.Ops}

	var baseline time.Duration
	for _, words := range sentences[:opts.Ops] {
		rep, err := app.Translate(words)
		if err != nil {
			return ChaosResult{}, fmt.Errorf("baseline op: %w", err)
		}
		baseline += rep.Elapsed
	}
	res.BaselineMean = baseline / time.Duration(opts.Ops)

	mkInj := func(seed uint64) *simnet.FaultInjector {
		return simnet.NewFaultInjector(simnet.FaultConfig{
			Seed:         seed,
			DropRate:     opts.DropRate,
			SpikeRate:    opts.SpikeRate,
			SpikeLatency: opts.SpikeLatency,
		})
	}
	injA, injB := mkInj(opts.Seed), mkInj(opts.Seed+1)
	tb.WirelessA.SetFaultInjector(injA)
	tb.WirelessB.SetFaultInjector(injB)

	// Kill serverB a third of the way in; heal it at two thirds, scaling
	// the window to the workload's own (virtual) duration. The flap
	// schedule is evaluated against the virtual clock, so the outage hits
	// whatever transfer is in flight when the clock passes it — including
	// mid-operation.
	injB.SetClock(tb.Setup.Clock.Now)
	soakDur := time.Duration(opts.Ops) * res.BaselineMean
	killAt := tb.Setup.Clock.Now().Add(soakDur / 3)
	healAt := tb.Setup.Clock.Now().Add(2 * soakDur / 3)
	injB.Schedule([]simnet.FlapEvent{
		{At: killAt, Down: true},
		{At: healAt, Down: false},
	})

	var chaos time.Duration
	for i, words := range sentences[opts.Ops:] {
		if i%20 == 10 {
			tb.Setup.Refresh()
		}
		rep, err := app.Translate(words)
		if err != nil {
			return ChaosResult{}, fmt.Errorf("chaos op %d: %w", i, err)
		}
		chaos += rep.Elapsed
		res.Failovers += len(rep.Failovers)
		if rep.Degraded {
			res.Degraded++
		}
	}
	res.ChaosMean = chaos / time.Duration(opts.Ops)
	res.InjectedDrops = injA.Drops() + injB.Drops()

	// Re-adoption: the fault storm ends, the heal event is consumed, any
	// remaining quarantine elapses, and the next poll must bring serverB
	// back into the decision space.
	if now := tb.Setup.Clock.Now(); now.Before(healAt) {
		tb.Setup.Clock.Advance(healAt.Sub(now) + time.Second)
	}
	tb.WirelessB.TransferTime(1) // consume the heal flap event
	tb.WirelessA.SetFaultInjector(nil)
	tb.WirelessB.SetFaultInjector(nil)
	tb.Setup.Clock.Advance(31 * time.Second)
	tb.Setup.Refresh()
	health := tb.Setup.Client.Health()
	res.ServerReadopted = health.State("serverB") == core.HealthClosed
	return res, nil
}
