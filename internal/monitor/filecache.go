package monitor

import (
	"sync"

	"spectra/internal/predict"
	"spectra/internal/wire"
)

// CacheSource exposes a machine's Coda cache state. *coda.Client
// satisfies it.
type CacheSource interface {
	CachedPaths() map[string]bool
}

// FetchRateSource estimates the rate at which uncached data arrives from
// the file servers, in bytes per second.
type FetchRateSource func() float64

// FileCacheMonitor reports the local Coda cache state and observes which
// files operations access (paper §3.3.4). File accesses are reported to it
// by the execution layer through AddUsage, covering both local accesses and
// those servers report in their RPC responses.
type FileCacheMonitor struct {
	mu sync.Mutex

	src       CacheSource
	fetchRate FetchRateSource
	inflight  map[uint64][]predict.FileAccess
}

var _ Monitor = (*FileCacheMonitor)(nil)

// NewFileCacheMonitor returns a monitor over the local cache manager.
func NewFileCacheMonitor(src CacheSource, fetchRate FetchRateSource) *FileCacheMonitor {
	return &FileCacheMonitor{
		src:       src,
		fetchRate: fetchRate,
		inflight:  make(map[uint64][]predict.FileAccess),
	}
}

// Name implements Monitor.
func (m *FileCacheMonitor) Name() string { return "filecache" }

// PredictAvail implements Monitor.
func (m *FileCacheMonitor) PredictAvail(_ []string, snap *Snapshot) {
	var rate float64
	if m.fetchRate != nil {
		rate = m.fetchRate()
	}
	snap.LocalCache = CacheAvail{
		Cached:       m.src.CachedPaths(),
		FetchRateBps: rate,
		Known:        true,
	}
}

// StartOp implements Monitor.
func (m *FileCacheMonitor) StartOp(opID uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight[opID] = nil
}

// StopOp implements Monitor: it returns the names and sizes of files
// accessed during the operation.
func (m *FileCacheMonitor) StopOp(opID uint64, u *Usage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	files, ok := m.inflight[opID]
	if !ok {
		return
	}
	delete(m.inflight, opID)
	u.Files = append(u.Files, files...)
}

// AddUsage implements Monitor: the execution layer reports file accesses.
func (m *FileCacheMonitor) AddUsage(opID uint64, usage Usage) {
	if len(usage.Files) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	files, ok := m.inflight[opID]
	if !ok {
		return
	}
	m.inflight[opID] = append(files, usage.Files...)
}

// UpdatePreds implements Monitor.
func (m *FileCacheMonitor) UpdatePreds(string, *wire.ServerStatus) {}
