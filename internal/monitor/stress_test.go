package monitor

import (
	"sync"
	"testing"
	"time"

	"spectra/internal/energy"
	"spectra/internal/rpc"
	"spectra/internal/sim"
	"spectra/internal/wire"
)

// TestSetConcurrentStress hammers the full monitor framework from many
// goroutines at once — snapshots, operation lifecycles, usage reports, and
// status polls — verifying nothing corrupts under the race detector and
// per-operation accounting stays exact.
func TestSetConcurrentStress(t *testing.T) {
	machine := sim.NewMachine(sim.MachineConfig{Name: "m", SpeedMHz: 1000})
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	battery := sim.NewBattery(1e9)
	meter := energy.NewExactMeter(battery)
	acct := &stressAccount{}
	network := NewNetworkMonitor()
	set := NewSet(
		NewCPUMonitor(machine),
		network,
		NewBatteryMonitor(meter, energy.NewGoalAdaptor(clock, meter), acct, nil),
		NewFileCacheMonitor(cacheStub{}, func() float64 { return 1000 }),
		NewRemoteProxyMonitor(),
	)

	const (
		workers = 8
		opsEach = 50
	)
	var wg sync.WaitGroup
	results := make([][]Usage, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				id := uint64(w*opsEach + i + 1)
				set.StartOp(id)
				set.AddUsage(id, Usage{
					RemoteMegacycles: 10,
					BytesSent:        100,
					BytesReceived:    50,
					RPCs:             1,
				})
				set.AddUsage(id, Usage{RemoteMegacycles: 5, RPCs: 1})
				results[w] = append(results[w], set.StopOp(id))
			}
		}(w)
	}
	// Concurrent snapshot and poll traffic.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			set.Snapshot(clock.Now(), []string{"s1", "s2"})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			set.UpdatePreds("s1", &wire.ServerStatus{Name: "s1", AvailMHz: 100})
			network.Log("s1").Record(rpc.TrafficObservation{Bytes: 100, Elapsed: time.Millisecond})
		}
	}()
	wg.Wait()

	for w := range results {
		if len(results[w]) != opsEach {
			t.Fatalf("worker %d completed %d ops", w, len(results[w]))
		}
		for i, u := range results[w] {
			if u.RemoteMegacycles != 15 || u.BytesSent != 100 || u.RPCs != 2 {
				t.Fatalf("worker %d op %d usage = %+v", w, i, u)
			}
		}
	}
}

type stressAccount struct{}

func (stressAccount) AttributedJoules() float64 { return 0 }
