package monitor

import (
	"sync"

	"spectra/internal/rpc"
	"spectra/internal/wire"
)

// NetworkMonitor predicts per-server bandwidth and latency from passive
// observation of RPC traffic (paper §3.3.2) and accounts bytes and RPC
// counts per operation. All client-server communication passes through
// Spectra, so observing demand is a matter of summing what the transport
// reports via AddUsage.
type NetworkMonitor struct {
	mu sync.Mutex

	logs      map[string]*rpc.TrafficLog
	reachable map[string]bool
	inflight  map[uint64]*netUsage
}

type netUsage struct {
	sent, received int64
	rpcs           int
}

var _ Monitor = (*NetworkMonitor)(nil)

// NewNetworkMonitor returns a monitor with no known servers.
func NewNetworkMonitor() *NetworkMonitor {
	return &NetworkMonitor{
		logs:      make(map[string]*rpc.TrafficLog),
		reachable: make(map[string]bool),
		inflight:  make(map[uint64]*netUsage),
	}
}

// Name implements Monitor.
func (m *NetworkMonitor) Name() string { return "network" }

// Log returns (creating if needed) the traffic log for a server. The
// transport records every exchange into it.
func (m *NetworkMonitor) Log(server string) *rpc.TrafficLog {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.logs[server]
	if !ok {
		l = rpc.NewTrafficLog()
		m.logs[server] = l
	}
	return l
}

// SetReachable records whether a server currently responds; the transport
// and the status poller call it.
func (m *NetworkMonitor) SetReachable(server string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reachable[server] = ok
}

// PredictAvail implements Monitor.
func (m *NetworkMonitor) PredictAvail(servers []string, snap *Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range servers {
		avail := NetAvail{Reachable: m.reachable[s]}
		if l, ok := m.logs[s]; ok {
			if est, ok := l.Estimate(); ok {
				avail.BandwidthBps = est.BandwidthBps
				avail.Latency = est.Latency
				avail.Known = true
			}
		}
		snap.Network[s] = avail
	}
}

// StartOp implements Monitor.
func (m *NetworkMonitor) StartOp(opID uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight[opID] = &netUsage{}
}

// StopOp implements Monitor.
func (m *NetworkMonitor) StopOp(opID uint64, u *Usage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nu, ok := m.inflight[opID]
	if !ok {
		return
	}
	delete(m.inflight, opID)
	u.BytesSent += nu.sent
	u.BytesReceived += nu.received
	u.RPCs += nu.rpcs
}

// AddUsage implements Monitor: the transport reports each exchange's bytes.
func (m *NetworkMonitor) AddUsage(opID uint64, usage Usage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nu, ok := m.inflight[opID]
	if !ok {
		return
	}
	nu.sent += usage.BytesSent
	nu.received += usage.BytesReceived
	nu.rpcs += usage.RPCs
}

// UpdatePreds implements Monitor: a successful status poll proves
// reachability.
func (m *NetworkMonitor) UpdatePreds(server string, status *wire.ServerStatus) {
	if status == nil {
		m.SetReachable(server, false)
		return
	}
	m.SetReachable(server, true)
}
