package monitor

import (
	"math"
	"testing"
	"time"

	"spectra/internal/energy"
	"spectra/internal/predict"
	"spectra/internal/rpc"
	"spectra/internal/sim"
	"spectra/internal/wire"
)

func TestUsageMerge(t *testing.T) {
	u := Usage{LocalMegacycles: 1, BytesSent: 10, RPCs: 1, Elapsed: time.Second}
	u.Merge(Usage{
		LocalMegacycles:  2,
		RemoteMegacycles: 3,
		BytesSent:        5,
		BytesReceived:    7,
		RPCs:             2,
		EnergyJoules:     4,
		EnergyValid:      true,
		Files:            []predict.FileAccess{{Path: "a", SizeBytes: 1}},
		Elapsed:          2 * time.Second,
	})
	if u.LocalMegacycles != 3 || u.RemoteMegacycles != 3 || u.BytesSent != 15 ||
		u.BytesReceived != 7 || u.RPCs != 3 {
		t.Fatalf("merged = %+v", u)
	}
	if !u.EnergyValid || u.EnergyJoules != 4 {
		t.Fatalf("energy merge = %+v", u)
	}
	if len(u.Files) != 1 || u.Elapsed != 2*time.Second {
		t.Fatalf("files/elapsed merge = %+v", u)
	}
}

func TestCPUMonitorAvailabilityAndSmoothing(t *testing.T) {
	m := sim.NewMachine(sim.MachineConfig{Name: "m", SpeedMHz: 200})
	cm := NewCPUMonitor(m)
	snap := NewSnapshot(time.Unix(0, 0))
	cm.PredictAvail(nil, snap)
	if !snap.LocalCPU.Known || snap.LocalCPU.AvailMHz != 200 {
		t.Fatalf("unloaded avail = %+v", snap.LocalCPU)
	}
	// Load appears: one background task -> load 0.5 -> smoothed 0.25.
	m.SetBackgroundTasks(1)
	snap2 := NewSnapshot(time.Unix(1, 0))
	cm.PredictAvail(nil, snap2)
	if math.Abs(snap2.LocalCPU.LoadFraction-0.25) > 1e-12 {
		t.Fatalf("smoothed load = %v, want 0.25", snap2.LocalCPU.LoadFraction)
	}
	if math.Abs(snap2.LocalCPU.AvailMHz-150) > 1e-9 {
		t.Fatalf("avail = %v, want 150", snap2.LocalCPU.AvailMHz)
	}
	// Repeated sampling converges toward 0.5.
	for i := 0; i < 20; i++ {
		cm.PredictAvail(nil, NewSnapshot(time.Unix(int64(2+i), 0)))
	}
	snap3 := NewSnapshot(time.Unix(100, 0))
	cm.PredictAvail(nil, snap3)
	if math.Abs(snap3.LocalCPU.LoadFraction-0.5) > 1e-3 {
		t.Fatalf("converged load = %v, want ~0.5", snap3.LocalCPU.LoadFraction)
	}
}

func TestCPUMonitorMeasuresOperationCycles(t *testing.T) {
	m := sim.NewMachine(sim.MachineConfig{Name: "m", SpeedMHz: 200})
	cm := NewCPUMonitor(m)
	cm.StartOp(1)
	m.ChargeCycles(123)
	var u Usage
	cm.StopOp(1, &u)
	if u.LocalMegacycles != 123 {
		t.Fatalf("local megacycles = %v, want 123", u.LocalMegacycles)
	}
	// Unknown op: no-op.
	var u2 Usage
	cm.StopOp(99, &u2)
	if u2.LocalMegacycles != 0 {
		t.Fatalf("unknown op contributed cycles: %+v", u2)
	}
}

func TestNetworkMonitorEstimateAndReachability(t *testing.T) {
	nm := NewNetworkMonitor()
	log := nm.Log("serverB")
	// 100 KB/s, negligible latency.
	for _, b := range []int64{10_000, 50_000, 200_000} {
		log.Record(rpc.TrafficObservation{
			Bytes:   b,
			Elapsed: time.Duration(float64(b) / 100_000 * float64(time.Second)),
		})
	}
	nm.SetReachable("serverB", true)
	snap := NewSnapshot(time.Unix(0, 0))
	nm.PredictAvail([]string{"serverB", "ghost"}, snap)

	b := snap.Network["serverB"]
	if !b.Known || !b.Reachable {
		t.Fatalf("serverB avail = %+v", b)
	}
	if math.Abs(b.BandwidthBps-100_000)/100_000 > 0.05 {
		t.Fatalf("bandwidth = %v, want ~100000", b.BandwidthBps)
	}
	g := snap.Network["ghost"]
	if g.Known || g.Reachable {
		t.Fatalf("ghost avail = %+v", g)
	}
}

func TestNetworkMonitorPerOpAccounting(t *testing.T) {
	nm := NewNetworkMonitor()
	nm.StartOp(1)
	nm.AddUsage(1, Usage{BytesSent: 100, BytesReceived: 50, RPCs: 1})
	nm.AddUsage(1, Usage{BytesSent: 10, BytesReceived: 5, RPCs: 1})
	nm.AddUsage(2, Usage{BytesSent: 999}) // unknown op ignored
	var u Usage
	nm.StopOp(1, &u)
	if u.BytesSent != 110 || u.BytesReceived != 55 || u.RPCs != 2 {
		t.Fatalf("usage = %+v", u)
	}
}

func TestNetworkMonitorUpdatePreds(t *testing.T) {
	nm := NewNetworkMonitor()
	nm.UpdatePreds("s", &wire.ServerStatus{Name: "s"})
	snap := NewSnapshot(time.Unix(0, 0))
	nm.PredictAvail([]string{"s"}, snap)
	if !snap.Network["s"].Reachable {
		t.Fatal("status poll should mark reachable")
	}
	nm.UpdatePreds("s", nil)
	snap2 := NewSnapshot(time.Unix(1, 0))
	nm.PredictAvail([]string{"s"}, snap2)
	if snap2.Network["s"].Reachable {
		t.Fatal("nil status should mark unreachable")
	}
}

// testAccount is a controllable EnergyAccount.
type testAccount struct{ joules float64 }

func (a *testAccount) AttributedJoules() float64 { return a.joules }

func TestBatteryMonitorAvailability(t *testing.T) {
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	b := sim.NewBattery(10_000)
	meter := energy.NewExactMeter(b)
	adaptor := energy.NewGoalAdaptor(clock, meter)
	adaptor.SetGoal(10 * time.Hour)
	acct := &testAccount{}
	bm := NewBatteryMonitor(meter, adaptor, acct, nil)

	snap := NewSnapshot(clock.Now())
	bm.PredictAvail(nil, snap)
	if snap.Battery.RemainingJoules != 10_000 {
		t.Fatalf("remaining = %v", snap.Battery.RemainingJoules)
	}
	if snap.Battery.Importance <= 0 {
		t.Fatalf("importance = %v, want > 0 for ambitious goal", snap.Battery.Importance)
	}
}

func TestBatteryMonitorWallPowerZeroesImportance(t *testing.T) {
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	b := sim.NewBattery(10_000)
	meter := energy.NewExactMeter(b)
	adaptor := energy.NewGoalAdaptor(clock, meter)
	adaptor.SetGoal(100 * time.Hour)
	machine := sim.NewMachine(sim.MachineConfig{Name: "m", OnWallPower: true, Battery: b})
	bm := NewBatteryMonitor(meter, adaptor, &testAccount{}, machine)

	snap := NewSnapshot(clock.Now())
	bm.PredictAvail(nil, snap)
	if !snap.Battery.OnWallPower || snap.Battery.Importance != 0 {
		t.Fatalf("wall power battery avail = %+v", snap.Battery)
	}
}

func TestBatteryMonitorPerOpEnergy(t *testing.T) {
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	b := sim.NewBattery(10_000)
	meter := energy.NewExactMeter(b)
	acct := &testAccount{}
	bm := NewBatteryMonitor(meter, energy.NewGoalAdaptor(clock, meter), acct, nil)

	bm.StartOp(1)
	acct.joules += 2.5
	var u Usage
	bm.StopOp(1, &u)
	if !u.EnergyValid || u.EnergyJoules != 2.5 {
		t.Fatalf("energy usage = %+v", u)
	}
}

func TestBatteryMonitorConcurrentOpsInvalid(t *testing.T) {
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	b := sim.NewBattery(10_000)
	meter := energy.NewExactMeter(b)
	acct := &testAccount{}
	bm := NewBatteryMonitor(meter, energy.NewGoalAdaptor(clock, meter), acct, nil)

	bm.StartOp(1)
	bm.StartOp(2) // overlaps with 1
	acct.joules += 5
	var u1, u2 Usage
	bm.StopOp(1, &u1)
	bm.StopOp(2, &u2)
	if u1.EnergyValid || u2.EnergyValid {
		t.Fatalf("concurrent energy marked valid: %+v %+v", u1, u2)
	}
}

func TestFileCacheMonitor(t *testing.T) {
	src := cacheStub{"/coda/a": true}
	fm := NewFileCacheMonitor(src, func() float64 { return 50_000 })
	snap := NewSnapshot(time.Unix(0, 0))
	fm.PredictAvail(nil, snap)
	if !snap.LocalCache.Known || !snap.LocalCache.Cached["/coda/a"] ||
		snap.LocalCache.FetchRateBps != 50_000 {
		t.Fatalf("cache avail = %+v", snap.LocalCache)
	}

	fm.StartOp(7)
	fm.AddUsage(7, Usage{Files: []predict.FileAccess{{Path: "/coda/a", SizeBytes: 9}}})
	fm.AddUsage(7, Usage{Files: []predict.FileAccess{{Path: "/coda/b", SizeBytes: 3}}})
	var u Usage
	fm.StopOp(7, &u)
	if len(u.Files) != 2 {
		t.Fatalf("files = %+v", u.Files)
	}
}

type cacheStub map[string]bool

func (c cacheStub) CachedPaths() map[string]bool { return c }

func TestRemoteProxyMonitor(t *testing.T) {
	rm := NewRemoteProxyMonitor()
	rm.UpdatePreds("serverA", &wire.ServerStatus{
		Name:         "serverA",
		SpeedMHz:     400,
		AvailMHz:     300,
		LoadFraction: 0.25,
		CachedFiles:  []string{"/coda/x"},
		FetchRateBps: 10_000,
		Services:     []string{"latex"},
	})
	snap := NewSnapshot(time.Unix(0, 0))
	rm.PredictAvail([]string{"serverA", "serverB"}, snap)

	a := snap.RemoteCPU["serverA"]
	if !a.Known || a.AvailMHz != 300 || a.SpeedMHz != 400 {
		t.Fatalf("serverA cpu = %+v", a)
	}
	if !snap.RemoteCache["serverA"].Cached["/coda/x"] {
		t.Fatalf("serverA cache = %+v", snap.RemoteCache["serverA"])
	}
	if got := snap.Services["serverA"]; len(got) != 1 || got[0] != "latex" {
		t.Fatalf("services = %v", got)
	}
	if snap.RemoteCPU["serverB"].Known {
		t.Fatal("unknown server must not be Known")
	}

	rm.StartOp(3)
	rm.AddUsage(3, Usage{RemoteMegacycles: 100})
	rm.AddUsage(3, Usage{RemoteMegacycles: 50})
	var u Usage
	rm.StopOp(3, &u)
	if u.RemoteMegacycles != 150 {
		t.Fatalf("remote megacycles = %v", u.RemoteMegacycles)
	}

	if _, ok := rm.LastStatus("serverA"); !ok {
		t.Fatal("LastStatus missing")
	}
	rm.UpdatePreds("serverA", nil)
	if _, ok := rm.LastStatus("serverA"); ok {
		t.Fatal("nil status should clear state")
	}
}

func TestSetLifecycle(t *testing.T) {
	machine := sim.NewMachine(sim.MachineConfig{Name: "m", SpeedMHz: 100})
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	b := sim.NewBattery(1000)
	meter := energy.NewExactMeter(b)
	acct := &testAccount{}
	set := NewSet(
		NewCPUMonitor(machine),
		NewNetworkMonitor(),
		NewBatteryMonitor(meter, energy.NewGoalAdaptor(clock, meter), acct, nil),
		NewFileCacheMonitor(cacheStub{}, nil),
		NewRemoteProxyMonitor(),
	)
	if len(set.Monitors()) != 5 {
		t.Fatalf("monitors = %d", len(set.Monitors()))
	}
	set.UpdatePreds("s", &wire.ServerStatus{Name: "s", AvailMHz: 1, Services: []string{"svc"}})

	snap := set.Snapshot(clock.Now(), []string{"s"})
	if !snap.LocalCPU.Known {
		t.Fatal("snapshot missing local CPU")
	}
	if !snap.ServerUsable("s", "svc") {
		t.Fatal("server s should be usable for svc")
	}
	if snap.ServerUsable("s", "other") {
		t.Fatal("server s must not be usable for unregistered service")
	}
	if snap.ServerUsable("ghost", "svc") {
		t.Fatal("ghost server must not be usable")
	}

	set.StartOp(1)
	machine.ChargeCycles(10)
	acct.joules += 1
	set.AddUsage(1, Usage{RemoteMegacycles: 5, BytesSent: 3, RPCs: 1})
	u := set.StopOp(1)
	if u.LocalMegacycles != 10 || u.RemoteMegacycles != 5 || u.BytesSent != 3 ||
		!u.EnergyValid || u.EnergyJoules != 1 {
		t.Fatalf("merged usage = %+v", u)
	}
}

func TestSetAdd(t *testing.T) {
	set := NewSet()
	set.Add(NewNetworkMonitor())
	if len(set.Monitors()) != 1 {
		t.Fatal("Add failed")
	}
}
