// Package monitor implements Spectra's resource monitors (paper §3.3):
// modular components that measure the supply of a single resource (or a
// related set) and observe operation resource demand. Before an operation,
// Spectra iterates over the monitors to build a resource Snapshot; around
// execution it calls StartOp/StopOp to measure consumption; server-reported
// usage arrives through AddUsage; and periodic server polls reach the
// remote proxy monitors through UpdatePreds.
package monitor

import (
	"time"

	"spectra/internal/obs"
	"spectra/internal/predict"
	"spectra/internal/wire"
)

// Monitor is the common interface all resource monitors implement.
type Monitor interface {
	// Name identifies the monitor.
	Name() string
	// PredictAvail contributes availability predictions for the listed
	// candidate servers to the snapshot.
	PredictAvail(servers []string, snap *Snapshot)
	// StartOp alerts the monitor that an operation begins.
	StartOp(opID uint64)
	// StopOp ends observation and merges measured usage into u.
	StopOp(opID uint64, u *Usage)
	// AddUsage accounts externally reported consumption (e.g. from Spectra
	// servers) for an in-flight operation.
	AddUsage(opID uint64, u Usage)
	// UpdatePreds delivers a polled server status snapshot.
	UpdatePreds(server string, status *wire.ServerStatus)
}

// Usage aggregates the resources one operation consumed.
type Usage struct {
	// LocalMegacycles is CPU demand executed on the client.
	LocalMegacycles float64
	// RemoteMegacycles is CPU demand executed on Spectra servers.
	RemoteMegacycles float64
	// BytesSent and BytesReceived count client-server RPC traffic.
	BytesSent     int64
	BytesReceived int64
	// RPCs counts request/response exchanges.
	RPCs int
	// EnergyJoules is client energy attributed to the operation; valid
	// only when EnergyValid (concurrent operations are not separable).
	EnergyJoules float64
	EnergyValid  bool
	// Files lists Coda files the operation accessed, on any machine.
	Files []predict.FileAccess
	// Elapsed is the wall-clock duration of the operation.
	Elapsed time.Duration
}

// Merge folds o into u.
func (u *Usage) Merge(o Usage) {
	u.LocalMegacycles += o.LocalMegacycles
	u.RemoteMegacycles += o.RemoteMegacycles
	u.BytesSent += o.BytesSent
	u.BytesReceived += o.BytesReceived
	u.RPCs += o.RPCs
	if o.EnergyValid {
		u.EnergyJoules += o.EnergyJoules
		u.EnergyValid = true
	}
	u.Files = append(u.Files, o.Files...)
	if o.Elapsed > u.Elapsed {
		u.Elapsed = o.Elapsed
	}
}

// CPUAvail predicts the cycles available to a new operation on a machine.
type CPUAvail struct {
	// AvailMHz is megacycles per second the operation would receive.
	AvailMHz float64
	// SpeedMHz is the machine's clock rate.
	SpeedMHz float64
	// LoadFraction is the smoothed fraction of CPU used by other work.
	LoadFraction float64
	// Known is false when no data is available for the machine.
	Known bool
}

// NetAvail predicts network conditions toward one server.
type NetAvail struct {
	BandwidthBps float64
	Latency      time.Duration
	// Reachable is false when the server cannot currently be contacted.
	Reachable bool
	// Known is false before any traffic or polls have been observed.
	Known bool
}

// BatteryAvail reports energy supply.
type BatteryAvail struct {
	RemainingJoules float64
	// Importance is the goal-directed energy-conservation parameter c.
	Importance float64
	// OnWallPower reports whether the client currently draws wall power.
	OnWallPower bool
}

// CacheAvail reports file cache state for one machine.
type CacheAvail struct {
	// Cached is the set of Coda paths currently cached.
	Cached map[string]bool
	// FetchRateBps estimates how fast uncached data arrives from file
	// servers.
	FetchRateBps float64
	// Known is false when cache state is unavailable.
	Known bool
}

// Snapshot is a consistent view of local and remote resource availability
// gathered immediately before placement is decided.
type Snapshot struct {
	When time.Time

	LocalCPU   CPUAvail
	Battery    BatteryAvail
	LocalCache CacheAvail

	Network     map[string]NetAvail
	RemoteCPU   map[string]CPUAvail
	RemoteCache map[string]CacheAvail
	// Services lists the service names each server offers.
	Services map[string][]string
}

// NewSnapshot returns an empty snapshot taken at the given time.
func NewSnapshot(when time.Time) *Snapshot {
	return &Snapshot{
		When:        when,
		Network:     make(map[string]NetAvail),
		RemoteCPU:   make(map[string]CPUAvail),
		RemoteCache: make(map[string]CacheAvail),
		Services:    make(map[string][]string),
	}
}

// ServerUsable reports whether a server is a viable execution target in
// this snapshot: reachable and offering the service.
func (s *Snapshot) ServerUsable(server, service string) bool {
	net, ok := s.Network[server]
	if !ok || !net.Reachable {
		return false
	}
	services, ok := s.Services[server]
	if !ok {
		return false
	}
	for _, svc := range services {
		if svc == service {
			return true
		}
	}
	return false
}

// Set is the modular monitor framework shared by Spectra clients and
// servers: an ordered collection of monitors addressed as a unit.
type Set struct {
	monitors []Monitor
	// snapSeconds times Snapshot calls; a nil handle is a no-op.
	snapSeconds *obs.Histogram
}

// SetMetrics attaches the metrics registry: every Snapshot records its
// wall-clock duration. A nil registry detaches.
func (s *Set) SetMetrics(reg *obs.Registry) {
	s.snapSeconds = reg.Histogram(obs.MSnapshotSeconds, obs.DefaultLatencyBuckets)
}

// NewSet returns a framework containing the given monitors.
func NewSet(monitors ...Monitor) *Set {
	return &Set{monitors: append([]Monitor(nil), monitors...)}
}

// Add appends a monitor, enabling new measurement capability.
func (s *Set) Add(m Monitor) { s.monitors = append(s.monitors, m) }

// Monitors returns the monitors in order.
func (s *Set) Monitors() []Monitor {
	return append([]Monitor(nil), s.monitors...)
}

// Snapshot polls every monitor for availability predictions.
func (s *Set) Snapshot(when time.Time, servers []string) *Snapshot {
	// Gate the clock reads, not just the observation: Snapshot runs on
	// every decision, and time.Now is the only cost when metrics are off.
	var start time.Time
	if s.snapSeconds != nil {
		start = time.Now()
	}
	snap := NewSnapshot(when)
	for _, m := range s.monitors {
		m.PredictAvail(servers, snap)
	}
	if s.snapSeconds != nil {
		s.snapSeconds.Observe(time.Since(start).Seconds())
	}
	return snap
}

// StartOp begins observation of an operation on every monitor.
func (s *Set) StartOp(opID uint64) {
	for _, m := range s.monitors {
		m.StartOp(opID)
	}
}

// StopOp ends observation and returns the merged usage.
func (s *Set) StopOp(opID uint64) Usage {
	var u Usage
	for _, m := range s.monitors {
		m.StopOp(opID, &u)
	}
	return u
}

// AddUsage forwards externally reported usage to every monitor.
func (s *Set) AddUsage(opID uint64, u Usage) {
	for _, m := range s.monitors {
		m.AddUsage(opID, u)
	}
}

// UpdatePreds forwards a server status to every monitor.
func (s *Set) UpdatePreds(server string, status *wire.ServerStatus) {
	for _, m := range s.monitors {
		m.UpdatePreds(server, status)
	}
}
