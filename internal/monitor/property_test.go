package monitor

import (
	"testing"
	"testing/quick"
	"time"

	"spectra/internal/predict"
)

// usageFrom builds a Usage from compact random inputs.
func usageFrom(v [6]uint16, valid bool) Usage {
	return Usage{
		LocalMegacycles:  float64(v[0]),
		RemoteMegacycles: float64(v[1]),
		BytesSent:        int64(v[2]),
		BytesReceived:    int64(v[3]),
		RPCs:             int(v[4] % 10),
		EnergyJoules:     float64(v[5]) / 10,
		EnergyValid:      valid,
		Files:            []predict.FileAccess{{Path: "f", SizeBytes: int64(v[0])}},
		Elapsed:          time.Duration(v[1]) * time.Millisecond,
	}
}

// Property: merging usages is associative for every additive field, and
// energy validity is the OR of the inputs.
func TestUsageMergeAssociativityProperty(t *testing.T) {
	f := func(a, b, c [6]uint16, va, vb, vc bool) bool {
		left := usageFrom(a, va)
		left.Merge(usageFrom(b, vb))
		left.Merge(usageFrom(c, vc))

		bc := usageFrom(b, vb)
		bc.Merge(usageFrom(c, vc))
		right := usageFrom(a, va)
		right.Merge(bc)

		if left.LocalMegacycles != right.LocalMegacycles ||
			left.RemoteMegacycles != right.RemoteMegacycles ||
			left.BytesSent != right.BytesSent ||
			left.BytesReceived != right.BytesReceived ||
			left.RPCs != right.RPCs ||
			left.Elapsed != right.Elapsed ||
			left.EnergyValid != right.EnergyValid ||
			len(left.Files) != len(right.Files) {
			return false
		}
		if left.EnergyValid != (va || vb || vc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
