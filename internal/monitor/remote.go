package monitor

import (
	"sync"

	"spectra/internal/wire"
)

// RemoteProxyMonitor mirrors the resource monitors running on Spectra
// servers (paper §3.3.5): clients periodically poll servers for CPU and
// file-cache snapshots, which arrive here through UpdatePreds; per-RPC
// server resource consumption arrives through AddUsage and is accumulated
// until the operation completes.
type RemoteProxyMonitor struct {
	mu sync.Mutex

	status   map[string]*wire.ServerStatus
	inflight map[uint64]float64 // opID -> accumulated remote megacycles
}

var _ Monitor = (*RemoteProxyMonitor)(nil)

// NewRemoteProxyMonitor returns a proxy with no server state yet.
func NewRemoteProxyMonitor() *RemoteProxyMonitor {
	return &RemoteProxyMonitor{
		status:   make(map[string]*wire.ServerStatus),
		inflight: make(map[uint64]float64),
	}
}

// Name implements Monitor.
func (m *RemoteProxyMonitor) Name() string { return "remote-proxy" }

// PredictAvail implements Monitor: it publishes the most recent polled
// snapshot of each candidate server.
func (m *RemoteProxyMonitor) PredictAvail(servers []string, snap *Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range servers {
		st, ok := m.status[s]
		if !ok || st == nil {
			snap.RemoteCPU[s] = CPUAvail{}
			snap.RemoteCache[s] = CacheAvail{}
			continue
		}
		snap.RemoteCPU[s] = CPUAvail{
			AvailMHz:     st.AvailMHz,
			SpeedMHz:     st.SpeedMHz,
			LoadFraction: st.LoadFraction,
			Known:        true,
		}
		cached := make(map[string]bool, len(st.CachedFiles))
		for _, f := range st.CachedFiles {
			cached[f] = true
		}
		snap.RemoteCache[s] = CacheAvail{
			Cached:       cached,
			FetchRateBps: st.FetchRateBps,
			Known:        true,
		}
		snap.Services[s] = append([]string(nil), st.Services...)
	}
}

// StartOp implements Monitor.
func (m *RemoteProxyMonitor) StartOp(opID uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight[opID] = 0
}

// StopOp implements Monitor: it reports the operation's total server CPU
// consumption.
func (m *RemoteProxyMonitor) StopOp(opID uint64, u *Usage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mc, ok := m.inflight[opID]
	if !ok {
		return
	}
	delete(m.inflight, opID)
	u.RemoteMegacycles += mc
}

// AddUsage implements Monitor: server usage reports accumulate here.
func (m *RemoteProxyMonitor) AddUsage(opID uint64, usage Usage) {
	if usage.RemoteMegacycles <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.inflight[opID]; !ok {
		return
	}
	m.inflight[opID] += usage.RemoteMegacycles
}

// UpdatePreds implements Monitor.
func (m *RemoteProxyMonitor) UpdatePreds(server string, status *wire.ServerStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if status == nil {
		delete(m.status, server)
		return
	}
	m.status[server] = status
}

// LastStatus returns the most recent status for a server, if any.
func (m *RemoteProxyMonitor) LastStatus(server string) (*wire.ServerStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.status[server]
	return st, ok
}
