package monitor

import (
	"sync"

	"spectra/internal/wire"
)

// cpuSmoothing is the EWMA coefficient for the load estimate; recent
// samples dominate but transient spikes are damped, following the
// prediction algorithm of Narayanan et al. (paper §3.3.1).
const cpuSmoothing = 0.5

// CPUSource exposes the local processor statistics the CPU monitor samples,
// playing the role of Linux's /proc. *sim.Machine satisfies it.
type CPUSource interface {
	// SpeedMHz is the processor clock rate.
	SpeedMHz() float64
	// LoadFraction is the fraction of cycles recently used by other
	// processes.
	LoadFraction() float64
	// CycleCount is the cumulative megacycles charged to operations,
	// analogous to per-process CPU counters.
	CycleCount() float64
}

// CPUMonitor measures local CPU supply and demand. Availability is the
// smoothed share of cycles an operation would receive assuming background
// load stays constant and scheduling is fair; demand is the difference of
// the operation cycle counter across the operation.
type CPUMonitor struct {
	mu sync.Mutex

	src CPUSource
	// smoothedLoad is the EWMA of sampled load; negative until first
	// sample.
	smoothedLoad float64
	seeded       bool
	inflight     map[uint64]float64 // opID -> cycle counter at start
}

var _ Monitor = (*CPUMonitor)(nil)

// NewCPUMonitor returns a monitor over the local processor.
func NewCPUMonitor(src CPUSource) *CPUMonitor {
	return &CPUMonitor{
		src:      src,
		inflight: make(map[uint64]float64),
	}
}

// Name implements Monitor.
func (m *CPUMonitor) Name() string { return "cpu" }

// PredictAvail implements Monitor: it samples current load, smooths it,
// and predicts available megacycles per second.
func (m *CPUMonitor) PredictAvail(_ []string, snap *Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()

	load := m.src.LoadFraction()
	if !m.seeded {
		m.smoothedLoad = load
		m.seeded = true
	} else {
		m.smoothedLoad = cpuSmoothing*load + (1-cpuSmoothing)*m.smoothedLoad
	}
	speed := m.src.SpeedMHz()
	snap.LocalCPU = CPUAvail{
		AvailMHz:     speed * (1 - m.smoothedLoad),
		SpeedMHz:     speed,
		LoadFraction: m.smoothedLoad,
		Known:        true,
	}
}

// StartOp implements Monitor.
func (m *CPUMonitor) StartOp(opID uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight[opID] = m.src.CycleCount()
}

// StopOp implements Monitor.
func (m *CPUMonitor) StopOp(opID uint64, u *Usage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start, ok := m.inflight[opID]
	if !ok {
		return
	}
	delete(m.inflight, opID)
	delta := m.src.CycleCount() - start
	if delta > 0 {
		u.LocalMegacycles += delta
	}
}

// AddUsage implements Monitor; local CPU has no external reports.
func (m *CPUMonitor) AddUsage(uint64, Usage) {}

// UpdatePreds implements Monitor; local CPU ignores server polls.
func (m *CPUMonitor) UpdatePreds(string, *wire.ServerStatus) {}
