package monitor

import (
	"sync"

	"spectra/internal/energy"
	"spectra/internal/wire"
)

// EnergyAccount reports cumulative joules attributed to client activity.
// In the simulation it plays the role of the paper's external multimeter on
// the 560X: it keeps counting even on wall power, which lets Spectra learn
// energy demand while plugged in.
type EnergyAccount interface {
	AttributedJoules() float64
}

// WallPowerSource reports whether the client currently draws wall power.
type WallPowerSource interface {
	OnWallPower() bool
}

// BatteryMonitor measures energy supply and demand (paper §3.3.3).
// Availability is the remaining battery energy plus the goal-directed
// importance of energy conservation; demand is the energy attributed to an
// operation, invalidated when operations overlap because concurrent energy
// use cannot be separated.
type BatteryMonitor struct {
	mu sync.Mutex

	meter   energy.Meter
	adaptor *energy.GoalAdaptor
	account EnergyAccount
	wall    WallPowerSource

	inflight map[uint64]*energyUsage
}

type energyUsage struct {
	startJoules float64
	overlapped  bool
}

var _ Monitor = (*BatteryMonitor)(nil)

// NewBatteryMonitor returns a monitor reading the given measurement source.
// The account supplies per-operation attribution; wall may be nil when the
// platform is always battery powered.
func NewBatteryMonitor(meter energy.Meter, adaptor *energy.GoalAdaptor, account EnergyAccount, wall WallPowerSource) *BatteryMonitor {
	return &BatteryMonitor{
		meter:    meter,
		adaptor:  adaptor,
		account:  account,
		wall:     wall,
		inflight: make(map[uint64]*energyUsage),
	}
}

// Name implements Monitor.
func (m *BatteryMonitor) Name() string { return "battery:" + m.meter.Name() }

// PredictAvail implements Monitor.
func (m *BatteryMonitor) PredictAvail(_ []string, snap *Snapshot) {
	var importance float64
	if m.adaptor != nil {
		importance = m.adaptor.Update()
	}
	onWall := false
	if m.wall != nil {
		onWall = m.wall.OnWallPower()
	}
	if onWall {
		importance = 0
	}
	snap.Battery = BatteryAvail{
		RemainingJoules: m.meter.RemainingJoules(),
		Importance:      importance,
		OnWallPower:     onWall,
	}
}

// StartOp implements Monitor. Starting a second operation while one is in
// flight marks both as overlapped; their energy measurements are discarded.
func (m *BatteryMonitor) StartOp(opID uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	overlapped := len(m.inflight) > 0
	if overlapped {
		for _, eu := range m.inflight {
			eu.overlapped = true
		}
	}
	m.inflight[opID] = &energyUsage{
		startJoules: m.account.AttributedJoules(),
		overlapped:  overlapped,
	}
}

// StopOp implements Monitor.
func (m *BatteryMonitor) StopOp(opID uint64, u *Usage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	eu, ok := m.inflight[opID]
	if !ok {
		return
	}
	delete(m.inflight, opID)
	if eu.overlapped {
		return // cannot attribute energy of concurrent operations
	}
	delta := m.account.AttributedJoules() - eu.startJoules
	if delta < 0 {
		return
	}
	u.EnergyJoules += delta
	u.EnergyValid = true
}

// AddUsage implements Monitor; server energy is not charged to the client
// battery.
func (m *BatteryMonitor) AddUsage(uint64, Usage) {}

// UpdatePreds implements Monitor.
func (m *BatteryMonitor) UpdatePreds(string, *wire.ServerStatus) {}
