package monitor

import (
	"sync"
	"time"

	"spectra/internal/obs"
)

// Time-series names RecordSnapshot emits. Per-server series are prefixed
// "server.<name>.".
const (
	TSLocalCPUAvailMHz = "local.cpu.availMHz"
	TSLocalCPULoad     = "local.cpu.load"
	TSBatteryJoules    = "battery.joules"
	TSEnergyImportance = "battery.importance"
)

// RecordSnapshot writes one monitor snapshot into the time-series recorder
// as a single batch, returning the batch sequence number (0 when the
// recorder is nil). Decision traces store the number (SnapshotSeq) so a
// decision can be located in the surrounding resource history.
func RecordSnapshot(ts *obs.TimeSeriesRecorder, snap *Snapshot, servers []string) uint64 {
	if ts == nil || snap == nil {
		return 0
	}
	values := map[string]float64{
		TSLocalCPUAvailMHz: snap.LocalCPU.AvailMHz,
		TSLocalCPULoad:     snap.LocalCPU.LoadFraction,
		TSBatteryJoules:    snap.Battery.RemainingJoules,
		TSEnergyImportance: snap.Battery.Importance,
	}
	for _, s := range servers {
		net := snap.Network[s]
		reachable := 0.0
		if net.Reachable {
			reachable = 1.0
		}
		values["server."+s+".reachable"] = reachable
		values["server."+s+".bandwidthBps"] = net.BandwidthBps
		values["server."+s+".latencyMs"] = float64(net.Latency) / float64(time.Millisecond)
		values["server."+s+".cpu.availMHz"] = snap.RemoteCPU[s].AvailMHz
	}
	return ts.Record(snap.When, values)
}

// TelemetryOptions tunes the background resource sampler.
type TelemetryOptions struct {
	// Interval between samples; <= 0 selects one second.
	Interval time.Duration
	// Servers, when non-nil, supplies the candidate servers whose proxy
	// series are sampled alongside the local resources.
	Servers func() []string
	// Now, when non-nil, replaces time.Now as the sample timestamp source
	// (simulations pass the virtual clock).
	Now func() time.Time
}

func (o TelemetryOptions) interval() time.Duration {
	if o.Interval <= 0 {
		return time.Second
	}
	return o.Interval
}

// StartTelemetry samples the monitor set into the time-series recorder at
// a fixed interval until the returned stop function is called, so resource
// history accumulates between decisions, not just at them. stop blocks
// until the sampler goroutine has exited and is safe to call twice.
func StartTelemetry(set *Set, ts *obs.TimeSeriesRecorder, opts TelemetryOptions) (stop func()) {
	if set == nil || ts == nil {
		return func() {}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(opts.interval())
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				var servers []string
				if opts.Servers != nil {
					servers = opts.Servers()
				}
				RecordSnapshot(ts, set.Snapshot(now(), servers), servers)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
