package monitor

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// coarseLevelsPerOctave is the quantization resolution of a CoarseSnapshot:
// continuous availability values map to level = round(log2(v) * 2), so one
// level step is a factor of √2 (~41%). Placement decisions are insensitive
// to smaller fluctuations — the demand models themselves carry more noise —
// which is what makes a coarse fingerprint a usable cache key.
const coarseLevelsPerOctave = 2

// CoarseSnapshot is a quantized fingerprint of a Snapshot: per-resource
// availability reduced to logarithmic levels plus the health-verdict vector
// (per-server reachability). Two snapshots with the same fingerprint
// describe, for placement purposes, the same resource picture; the decision
// cache keys on it and invalidates on drift between fingerprints.
type CoarseSnapshot struct {
	LocalCPULevel   int
	BatteryLevel    int
	ImportanceLevel int
	OnWallPower     bool
	// Servers is sorted by name so fingerprints are deterministic.
	Servers []CoarseServer
}

// CoarseServer is one server's quantized availability and health verdict.
type CoarseServer struct {
	Name           string
	Reachable      bool
	CPULevel       int
	BandwidthLevel int
	LatencyLevel   int
}

// QuantizeLevel maps a positive availability value to its logarithmic
// level; zero and negative values share the minimum level.
func QuantizeLevel(v float64) int {
	if v <= 0 {
		return math.MinInt32
	}
	return int(math.Round(math.Log2(v) * coarseLevelsPerOctave))
}

// Coarsen reduces a snapshot to its fingerprint over the given candidate
// servers. Health verdicts must already be folded into the snapshot (the
// client applies them at snapshot fill), so Reachable is the verdict vector.
func Coarsen(s *Snapshot, servers []string) CoarseSnapshot {
	c := CoarseSnapshot{
		LocalCPULevel:   QuantizeLevel(s.LocalCPU.AvailMHz),
		BatteryLevel:    QuantizeLevel(s.Battery.RemainingJoules),
		ImportanceLevel: QuantizeLevel(s.Battery.Importance),
		OnWallPower:     s.Battery.OnWallPower,
	}
	if len(servers) > 0 {
		c.Servers = make([]CoarseServer, 0, len(servers))
		for _, name := range servers {
			net := s.Network[name]
			cpu := s.RemoteCPU[name]
			c.Servers = append(c.Servers, CoarseServer{
				Name:           name,
				Reachable:      net.Reachable,
				CPULevel:       QuantizeLevel(cpu.AvailMHz),
				BandwidthLevel: QuantizeLevel(net.BandwidthBps),
				LatencyLevel:   QuantizeLevel(float64(net.Latency) / float64(time.Millisecond)),
			})
		}
		sort.Slice(c.Servers, func(i, j int) bool { return c.Servers[i].Name < c.Servers[j].Name })
	}
	return c
}

// Key renders the fingerprint as a stable string.
func (c CoarseSnapshot) Key() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(c.LocalCPULevel))
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(c.BatteryLevel))
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(c.ImportanceLevel))
	b.WriteByte('/')
	b.WriteString(strconv.FormatBool(c.OnWallPower))
	for _, s := range c.Servers {
		b.WriteByte('|')
		b.WriteString(s.Name)
		b.WriteByte(':')
		b.WriteString(strconv.FormatBool(s.Reachable))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(s.CPULevel))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(s.BandwidthLevel))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(s.LatencyLevel))
	}
	return b.String()
}

// Drift compares a cached fingerprint against a live one. maxLevels is the
// largest per-resource level delta (√2 per level); healthChanged reports a
// change in the health-verdict vector — per-server reachability, wall-power
// state, or the server set itself — which drift tolerance never excuses.
func (c CoarseSnapshot) Drift(live CoarseSnapshot) (maxLevels int, healthChanged bool) {
	abs := func(d int) int {
		if d < 0 {
			return -d
		}
		return d
	}
	max := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	maxLevels = abs(levelDelta(c.LocalCPULevel, live.LocalCPULevel))
	maxLevels = max(maxLevels, abs(levelDelta(c.BatteryLevel, live.BatteryLevel)))
	maxLevels = max(maxLevels, abs(levelDelta(c.ImportanceLevel, live.ImportanceLevel)))
	if c.OnWallPower != live.OnWallPower {
		healthChanged = true
	}
	if len(c.Servers) != len(live.Servers) {
		return maxLevels, true
	}
	for i, cs := range c.Servers {
		ls := live.Servers[i]
		if cs.Name != ls.Name || cs.Reachable != ls.Reachable {
			return maxLevels, true
		}
		maxLevels = max(maxLevels, abs(levelDelta(cs.CPULevel, ls.CPULevel)))
		maxLevels = max(maxLevels, abs(levelDelta(cs.BandwidthLevel, ls.BandwidthLevel)))
		maxLevels = max(maxLevels, abs(levelDelta(cs.LatencyLevel, ls.LatencyLevel)))
	}
	return maxLevels, healthChanged
}

// levelDelta treats a transition between "no supply" (the sentinel minimum
// level) and any real level as a maximal move, without overflowing the
// int arithmetic the caller does on the result.
func levelDelta(a, b int) int {
	if a == b {
		return 0
	}
	if a == math.MinInt32 || b == math.MinInt32 {
		return math.MaxInt32 / 2
	}
	return a - b
}
