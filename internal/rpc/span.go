package rpc

import (
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// RebaseSpans converts server-side span records onto the client's
// timeline. Records are offsets from the server's receipt of the request,
// on the server's clock; without synchronized clocks the client knows only
// when it sent the request (start) and how long the whole exchange took
// (elapsed). The unaccounted time — elapsed minus the server's busy window
// — is the two network legs, assumed symmetric, so the server's receipt is
// placed at start + slack/2. The placement error is bounded by the
// (typically small) request/response transfer-time asymmetry; durations
// are exact. Origin labels the spans with the server's name; Parent is -1,
// for SpanRecorder.Attach to remap under the carrying rpc span.
func RebaseSpans(origin string, start time.Time, elapsed time.Duration, recs []wire.SpanRecord) []obs.Span {
	if len(recs) == 0 {
		return nil
	}
	var serverNs int64
	for _, rec := range recs {
		if end := rec.StartOffsetNs + rec.DurationNs; end > serverNs {
			serverNs = end
		}
	}
	slack := elapsed.Nanoseconds() - serverNs
	if slack < 0 {
		slack = 0
	}
	base := start.Add(time.Duration(slack / 2))
	out := make([]obs.Span, len(recs))
	for i, rec := range recs {
		s := base.Add(time.Duration(rec.StartOffsetNs))
		out[i] = obs.Span{
			ID:        i,
			Parent:    -1,
			Name:      rec.Name,
			Origin:    origin,
			Start:     s,
			End:       s.Add(time.Duration(rec.DurationNs)),
			WallNanos: rec.DurationNs,
		}
	}
	return out
}
