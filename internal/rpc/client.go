package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// RemoteError is a server-side failure returned through the RPC layer.
type RemoteError struct {
	Service string
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error from %q: %s", e.Service, e.Msg)
}

// Client is a connection to one Spectra server. Concurrent calls are
// multiplexed as independent streams over a single framed connection
// (see muxConn): each request carries a distinct ID, responses are
// matched back to callers by ID in whatever order the server finishes
// them, and cancelled streams propagate a cancel frame so the server
// stops the work. Every successful exchange is recorded in the traffic
// log for passive network monitoring.
//
// The client is self-healing: when the connection fails at the transport
// level — dial failure, flat-timeout expiry, broken stream — it is
// discarded and the next call dials a fresh one, so a single fault never
// poisons subsequent exchanges. Deadline expiries and cancellations do
// NOT break the connection: the stream is abandoned, a cancel frame is
// sent, and sibling streams proceed untouched. Idempotent exchanges
// (Ping, Status) additionally retry with capped exponential backoff and
// jitter; Call does not retry, because service operations are not
// idempotent in general — callers fail over instead.
type Client struct {
	mu sync.Mutex

	addr    string
	mux     *muxConn
	traffic *TrafficLog
	timeout time.Duration

	closed  bool
	redials int
	retry   RetryPolicy
	// budget is the shared retry token bucket (nil permits all retries);
	// pooled clients share their pool's bucket.
	budget *RetryBudget
	rng    splitMix
	// sleep is swapped out by tests to observe backoff without waiting.
	sleep func(time.Duration)
	// onEvict fires once per broken connection the client discards (see
	// setEvictHook). It must not block or acquire locks.
	onEvict func()

	// nextID allocates stream IDs, monotonically across reconnects so a
	// server never sees an ID reused on any connection from this client.
	nextID atomic.Uint64

	// Observability handles (nil-safe no-ops when unset). everDialed
	// distinguishes reconnections from the first dial, which is not a
	// redial worth alerting on.
	mRetries     *obs.Counter
	mRedials     *obs.Counter
	mCallSeconds *obs.Histogram
	everDialed   bool
}

// Dial connects to a Spectra server. The traffic log may be shared with a
// network monitor; pass nil to create a private one. A failed initial dial
// is returned as a *TransportError; the returned client is nil and must
// not be used.
func Dial(addr string, traffic *TrafficLog) (*Client, error) {
	c := NewClient(addr, traffic)
	c.mu.Lock()
	_, err := c.ensureMuxLocked(c.timeout, false)
	if err == nil {
		c.redials = 0 // the initial dial is not a redial
	}
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// NewClient returns a client that dials lazily: the first exchange (and
// any exchange after a transport fault) establishes the connection.
func NewClient(addr string, traffic *TrafficLog) *Client {
	if traffic == nil {
		traffic = NewTrafficLog()
	}
	return &Client{
		addr:    addr,
		traffic: traffic,
		timeout: 30 * time.Second,
		rng:     splitMix{state: jitterSeed(addr, 0)},
		sleep:   time.Sleep,
	}
}

// reseedJitter re-derives the backoff jitter stream with a salt, so pooled
// clients sharing one address do not back off in lockstep with each other.
func (c *Client) reseedJitter(salt uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rng = splitMix{state: jitterSeed(c.addr, salt)}
}

// SetTimeout sets the per-exchange flat timeout: the liveness backstop
// after which a silent server is declared broken and the connection is
// redialed. It bounds each stream independently — concurrent streams on
// the shared connection each run their own timer.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.timeout = d
	}
}

// SetRetryPolicy tunes automatic retries of idempotent exchanges.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p
}

// SetRetryBudget attaches a shared retry token bucket; retries stop while
// it is empty. Nil detaches (all retries permitted).
func (c *Client) SetRetryBudget(b *RetryBudget) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = b
}

// SetMetrics attaches the metrics registry: retry and redial counts plus
// per-exchange latency flow into it. A nil registry detaches.
func (c *Client) SetMetrics(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mRetries = reg.Counter(obs.MRPCRetries)
	c.mRedials = reg.Counter(obs.MRPCRedials)
	c.mCallSeconds = reg.Histogram(obs.MRPCCallSeconds, obs.DefaultLatencyBuckets)
}

// setEvictHook registers a callback fired exactly once per connection
// broken by a transport fault, at the moment the fault is recorded —
// possibly from a connection goroutine, so an idle connection's death is
// counted without waiting for the next exchange. Deadline expiries,
// cancellations, and Close do not fire it — those leave no broken
// connection behind. The hook must not block or acquire locks that could
// be held across exchanges; pools use it for lock-free eviction
// accounting.
func (c *Client) setEvictHook(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEvict = fn
}

// muxFailed is every muxConn's death callback: transport faults count as
// evictions; deliberate closes do not.
func (c *Client) muxFailed(cause error) {
	if cause == ErrClientClosed {
		return
	}
	c.mu.Lock()
	hook := c.onEvict
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// Addr returns the server address.
func (c *Client) Addr() string { return c.addr }

// Traffic returns the client's traffic log.
func (c *Client) Traffic() *TrafficLog { return c.traffic }

// Redials counts reconnections performed after transport faults.
func (c *Client) Redials() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// connected reports whether a live multiplexed connection exists.
func (c *Client) connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mux != nil && !c.mux.dead()
}

// Close shuts the connection down. In-flight streams fail with
// ErrClientClosed; a closed client never redials.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	m := c.mux
	c.mux = nil
	c.mu.Unlock()
	if m == nil {
		return nil
	}
	return m.fail(ErrClientClosed)
}

// Call invokes a service operation and returns the response payload and
// the server's usage report. Transport failures are returned as
// *TransportError without retrying: service operations are not idempotent,
// so recovery (retry or failover) is the caller's decision.
func (c *Client) Call(service, optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
	out, usage, _, err := c.CallTraced(service, optype, payload, nil)
	return out, usage, err
}

// CallTraced is Call with trace propagation: tc (which may be nil) rides
// the request so the server executes under the client's trace, and the
// server's span records for the request ride back on the response. Span
// offsets are relative to the server's receipt of the request, on the
// server's clock; RebaseSpans converts them to client-timeline spans.
func (c *Client) CallTraced(service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	return c.CallContext(context.Background(), service, optype, payload, tc)
}

// CallContext is CallTraced under an end-to-end deadline: the context's
// remaining budget bounds the dial and the exchange and rides the request
// as a wire.DeadlineContext so the server can shed work the client has
// abandoned. Cancellation or budget expiry abandons only this stream — a
// cancel frame tells the server to stop the work, the shared connection
// stays healthy, and the failure is returned as *DeadlineError.
func (c *Client) CallContext(ctx context.Context, service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	reply, err := c.exchangeCtx(ctx, &wire.Message{
		Type:    wire.MsgRequest,
		Service: service,
		OpType:  optype,
		Payload: payload,
		Trace:   tc,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	switch reply.Code {
	case wire.CodeOverloaded:
		// Admission-control shed: the exchange completed and the connection
		// is healthy, but the server refused the work. Classified separately
		// from RemoteError so failover engages and from TransportError so
		// pools do not evict a good connection.
		return nil, reply.Usage, reply.Spans, &OverloadError{Addr: c.addr}
	case wire.CodeDeadlineExceeded:
		// The server judged the budget expired and shed the request without
		// executing it. The connection is healthy; the operation is out of
		// time on this placement.
		return nil, reply.Usage, reply.Spans, &DeadlineError{Op: "server", Addr: c.addr, Err: errServerShed}
	}
	if reply.Err != "" {
		return nil, reply.Usage, reply.Spans, &RemoteError{Service: service, Msg: reply.Err}
	}
	return reply.Payload, reply.Usage, reply.Spans, nil
}

// Status fetches the server's resource snapshot, retrying transient
// transport faults per the retry policy (the exchange is idempotent).
func (c *Client) Status() (*wire.ServerStatus, error) {
	return c.StatusContext(context.Background())
}

// StatusContext is Status under a deadline: retries stop once the next
// backoff would overrun the remaining budget.
func (c *Client) StatusContext(ctx context.Context) (*wire.ServerStatus, error) {
	reply, err := c.exchangeRetry(ctx, func() *wire.Message {
		return &wire.Message{Type: wire.MsgStatus}
	})
	if err != nil {
		return nil, err
	}
	if reply.Status == nil {
		return nil, &TransportError{Op: "status", Addr: c.addr, Err: errEmptyStatus}
	}
	return reply.Status, nil
}

// Ping performs a minimal round trip, seeding the latency estimate. Like
// Status it is idempotent and retries transient faults.
func (c *Client) Ping() (time.Duration, error) {
	return c.PingContext(context.Background())
}

// PingContext is Ping under a deadline.
func (c *Client) PingContext(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	if _, err := c.exchangeRetry(ctx, func() *wire.Message {
		return &wire.Message{Type: wire.MsgPing}
	}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// exchangeRetry performs an idempotent exchange, retrying transient
// transport faults with capped exponential backoff and jitter. msg is a
// constructor because each attempt needs a fresh message (IDs are
// assigned per attempt). Retries respect both the shared retry budget
// (stopping while it is drained, so correlated outages do not trigger a
// retry storm) and the context's remaining time: an attempt whose backoff
// would overrun the budget is never scheduled, and the give-up is
// classified as a *DeadlineError rather than the last transport fault.
func (c *Client) exchangeRetry(ctx context.Context, msg func() *wire.Message) (*wire.Message, error) {
	c.mu.Lock()
	policy := c.retry
	retries := c.mRetries
	budget := c.budget
	c.mu.Unlock()
	attempts := policy.attempts()

	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if !budget.Allow() {
				// The shared bucket is empty: enough peers are already
				// retrying that another attempt only deepens the outage.
				break
			}
			c.mu.Lock()
			d := policy.delay(i-1, &c.rng)
			sleep := c.sleep
			c.mu.Unlock()
			if deadline, ok := ctx.Deadline(); ok {
				if remaining := time.Until(deadline); d >= remaining {
					return nil, &DeadlineError{Op: "backoff", Addr: c.addr, Err: lastErr}
				}
			}
			retries.Inc()
			sleep(d)
		}
		reply, err := c.exchangeCtx(ctx, msg())
		if err == nil {
			return reply, nil
		}
		lastErr = err
		if !IsTransient(err) || IsDeadline(err) {
			// Remote errors would fail identically on retry; deadline
			// failures mean the budget is spent, so backing off and trying
			// again can only finish later than giving up now.
			break
		}
	}
	return nil, lastErr
}

// exchange sends one message and reads the matching reply without a
// deadline; see exchangeCtx.
func (c *Client) exchange(msg *wire.Message) (*wire.Message, error) {
	return c.exchangeCtx(context.Background(), msg)
}

// exchangeCtx runs one stream over the multiplexed connection: assign an
// ID, propagate the remaining budget on request frames, hand the message
// to the demux, and record the traffic observation on success. The
// effective per-stream timeout is the smaller of the flat per-exchange
// timeout and the context's remaining budget; budgetBound records which
// one binds, because the two expire differently — a budget expiry
// abandons just this stream (cancel frame, *DeadlineError, connection
// kept), while a flat-timeout expiry means the server went silent past
// the liveness bound, so the connection is broken, the failure is a
// *TransportError, and the next exchange redials.
func (c *Client) exchangeCtx(ctx context.Context, msg *wire.Message) (*wire.Message, error) {
	var remaining time.Duration // 0 means unbounded
	if deadline, ok := ctx.Deadline(); ok {
		remaining = time.Until(deadline)
		if remaining <= 0 {
			return nil, &DeadlineError{Op: "exchange", Addr: c.addr, Err: context.DeadlineExceeded}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, &DeadlineError{Op: "exchange", Addr: c.addr, Err: err}
	}

	c.mu.Lock()
	timeout := c.timeout
	// budgetBound records that the effective timeout is the context's
	// remaining budget, not the per-exchange flat timeout: its expiry is
	// then the budget running out — a per-stream event that must not be
	// misread as a transport fault, which would evict a healthy shared
	// connection and count against the server's health.
	budgetBound := false
	if remaining > 0 && (timeout <= 0 || remaining < timeout) {
		timeout = remaining
		budgetBound = true
	}
	m, err := c.ensureMuxLocked(timeout, budgetBound)
	callH := c.mCallSeconds
	budget := c.budget
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}

	msg.ID = c.nextID.Add(1)
	if remaining > 0 && msg.Type == wire.MsgRequest {
		msg.Deadline = wire.NewDeadlineContext(remaining)
	}

	start := time.Now()
	reply, bytes, err := m.call(ctx, msg, timeout, budgetBound)
	if err != nil {
		if m.dead() {
			c.noteMuxDead(m)
		}
		return nil, err
	}
	elapsed := time.Since(start)
	c.traffic.Record(TrafficObservation{
		Bytes:   bytes,
		Elapsed: elapsed,
		When:    time.Now(),
	})
	callH.Observe(elapsed.Seconds())
	// Every successful exchange earns back a fraction of a retry token
	// for the budget shared with pooled siblings.
	budget.Credit()
	return reply, nil
}

// ensureMuxLocked returns the live multiplexed connection, dialing one if
// none exists (or the previous one died while idle). The dial is bounded
// by the exchange's effective timeout; budgetBound marks that timeout as
// the context's remaining budget, so a dial that runs out of time is a
// deadline expiry, not evidence the server is unreachable. The caller
// holds c.mu.
func (c *Client) ensureMuxLocked(timeout time.Duration, budgetBound bool) (*muxConn, error) {
	if c.closed {
		return nil, ErrClientClosed
	}
	if m := c.mux; m != nil {
		if !m.dead() {
			return m, nil
		}
		// The connection died while idle; its eviction was already
		// counted by the death callback. Just discard the reference.
		c.mux = nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		if budgetBound && isTimeoutErr(err) {
			return nil, &DeadlineError{Op: "dial", Addr: c.addr, Err: context.DeadlineExceeded}
		}
		return nil, &TransportError{Op: "dial", Addr: c.addr, Err: err}
	}
	c.mux = newMuxConn(c.addr, conn, c.muxFailed)
	c.redials++
	if c.everDialed {
		c.mRedials.Inc()
	}
	c.everDialed = true
	return c.mux, nil
}

// noteMuxDead discards the client's reference to a failed connection so
// the next exchange redials. Concurrent streams failing together all
// report the same muxConn; the pointer guard makes the discard idempotent
// (the eviction itself was counted once, by the death callback).
func (c *Client) noteMuxDead(m *muxConn) {
	c.mu.Lock()
	if c.mux == m {
		c.mux = nil
	}
	c.mu.Unlock()
}
