package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// RemoteError is a server-side failure returned through the RPC layer.
type RemoteError struct {
	Service string
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error from %q: %s", e.Service, e.Msg)
}

// Client is a connection to one Spectra server. Calls are serialized over a
// single TCP connection, matching the paper's sequential execution model.
// Every exchange is recorded in the traffic log for passive network
// monitoring.
//
// The client is self-healing: when an exchange fails at the transport
// level — dial failure, timeout, broken or desynchronized stream — the
// connection is closed and the next call dials a fresh one, so a single
// fault never poisons the stream for subsequent exchanges. Idempotent
// exchanges (Ping, Status) additionally retry with capped exponential
// backoff and jitter; Call does not retry, because service operations are
// not idempotent in general — callers fail over instead.
type Client struct {
	mu sync.Mutex

	addr    string
	conn    net.Conn
	nextID  uint64
	traffic *TrafficLog
	timeout time.Duration

	closed  bool
	redials int
	retry   RetryPolicy
	// budget is the shared retry token bucket (nil permits all retries);
	// pooled clients share their pool's bucket.
	budget *RetryBudget
	rng    splitMix
	// sleep is swapped out by tests to observe backoff without waiting.
	sleep func(time.Duration)

	// Observability handles (nil-safe no-ops when unset). everDialed
	// distinguishes reconnections from the first dial, which is not a
	// redial worth alerting on.
	mRetries     *obs.Counter
	mRedials     *obs.Counter
	mCallSeconds *obs.Histogram
	everDialed   bool
}

// Dial connects to a Spectra server. The traffic log may be shared with a
// network monitor; pass nil to create a private one. A failed initial dial
// is returned as a *TransportError; the returned client is nil and must
// not be used.
func Dial(addr string, traffic *TrafficLog) (*Client, error) {
	c := NewClient(addr, traffic)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConnLocked(c.timeout, false); err != nil {
		return nil, err
	}
	c.redials = 0 // the initial dial is not a redial
	return c, nil
}

// NewClient returns a client that dials lazily: the first exchange (and
// any exchange after a transport fault) establishes the connection.
func NewClient(addr string, traffic *TrafficLog) *Client {
	if traffic == nil {
		traffic = NewTrafficLog()
	}
	return &Client{
		addr:    addr,
		traffic: traffic,
		timeout: 30 * time.Second,
		rng:     splitMix{state: jitterSeed(addr, 0)},
		sleep:   time.Sleep,
	}
}

// reseedJitter re-derives the backoff jitter stream with a salt, so pooled
// clients sharing one address do not back off in lockstep with each other.
func (c *Client) reseedJitter(salt uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rng = splitMix{state: jitterSeed(c.addr, salt)}
}

// SetTimeout sets the per-exchange deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.timeout = d
	}
}

// SetRetryPolicy tunes automatic retries of idempotent exchanges.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p
}

// SetRetryBudget attaches a shared retry token bucket; retries stop while
// it is empty. Nil detaches (all retries permitted).
func (c *Client) SetRetryBudget(b *RetryBudget) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = b
}

// SetMetrics attaches the metrics registry: retry and redial counts plus
// per-exchange latency flow into it. A nil registry detaches.
func (c *Client) SetMetrics(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mRetries = reg.Counter(obs.MRPCRetries)
	c.mRedials = reg.Counter(obs.MRPCRedials)
	c.mCallSeconds = reg.Histogram(obs.MRPCCallSeconds, obs.DefaultLatencyBuckets)
}

// Addr returns the server address.
func (c *Client) Addr() string { return c.addr }

// Traffic returns the client's traffic log.
func (c *Client) Traffic() *TrafficLog { return c.traffic }

// Redials counts reconnections performed after transport faults.
func (c *Client) Redials() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// Close shuts the connection down. A closed client never redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Call invokes a service operation and returns the response payload and
// the server's usage report. Transport failures are returned as
// *TransportError without retrying: service operations are not idempotent,
// so recovery (retry or failover) is the caller's decision.
func (c *Client) Call(service, optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
	out, usage, _, err := c.CallTraced(service, optype, payload, nil)
	return out, usage, err
}

// CallTraced is Call with trace propagation: tc (which may be nil) rides
// the request so the server executes under the client's trace, and the
// server's span records for the request ride back on the response. Span
// offsets are relative to the server's receipt of the request, on the
// server's clock; RebaseSpans converts them to client-timeline spans.
func (c *Client) CallTraced(service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	return c.CallContext(context.Background(), service, optype, payload, tc)
}

// CallContext is CallTraced under an end-to-end deadline: the context's
// remaining budget bounds the dial and the exchange, rides the request as
// a wire.DeadlineContext so the server can shed work the client has
// abandoned, and cancellation interrupts an in-flight exchange (the
// connection is closed so the blocked read returns immediately, and the
// stream resyncs by redialing on the next call). Budget expiry and
// cancellation are returned as *DeadlineError.
func (c *Client) CallContext(ctx context.Context, service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	reply, err := c.exchangeCtx(ctx, &wire.Message{
		Type:    wire.MsgRequest,
		Service: service,
		OpType:  optype,
		Payload: payload,
		Trace:   tc,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	switch reply.Code {
	case wire.CodeOverloaded:
		// Admission-control shed: the exchange completed and the connection
		// is healthy, but the server refused the work. Classified separately
		// from RemoteError so failover engages and from TransportError so
		// pools do not evict a good connection.
		return nil, reply.Usage, reply.Spans, &OverloadError{Addr: c.addr}
	case wire.CodeDeadlineExceeded:
		// The server judged the budget expired and shed the request without
		// executing it. The connection is healthy; the operation is out of
		// time on this placement.
		return nil, reply.Usage, reply.Spans, &DeadlineError{Op: "server", Addr: c.addr, Err: errServerShed}
	}
	if reply.Err != "" {
		return nil, reply.Usage, reply.Spans, &RemoteError{Service: service, Msg: reply.Err}
	}
	return reply.Payload, reply.Usage, reply.Spans, nil
}

// Status fetches the server's resource snapshot, retrying transient
// transport faults per the retry policy (the exchange is idempotent).
func (c *Client) Status() (*wire.ServerStatus, error) {
	return c.StatusContext(context.Background())
}

// StatusContext is Status under a deadline: retries stop once the next
// backoff would overrun the remaining budget.
func (c *Client) StatusContext(ctx context.Context) (*wire.ServerStatus, error) {
	reply, err := c.exchangeRetry(ctx, func() *wire.Message {
		return &wire.Message{Type: wire.MsgStatus}
	})
	if err != nil {
		return nil, err
	}
	if reply.Status == nil {
		return nil, &TransportError{Op: "status", Addr: c.addr, Err: errEmptyStatus}
	}
	return reply.Status, nil
}

// Ping performs a minimal round trip, seeding the latency estimate. Like
// Status it is idempotent and retries transient faults.
func (c *Client) Ping() (time.Duration, error) {
	return c.PingContext(context.Background())
}

// PingContext is Ping under a deadline.
func (c *Client) PingContext(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	if _, err := c.exchangeRetry(ctx, func() *wire.Message {
		return &wire.Message{Type: wire.MsgPing}
	}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// exchangeRetry performs an idempotent exchange, retrying transient
// transport faults with capped exponential backoff and jitter. msg is a
// constructor because each attempt needs a fresh message (IDs are
// assigned per attempt). Retries respect both the shared retry budget
// (stopping while it is drained, so correlated outages do not trigger a
// retry storm) and the context's remaining time: an attempt whose backoff
// would overrun the budget is never scheduled, and the give-up is
// classified as a *DeadlineError rather than the last transport fault.
func (c *Client) exchangeRetry(ctx context.Context, msg func() *wire.Message) (*wire.Message, error) {
	c.mu.Lock()
	policy := c.retry
	retries := c.mRetries
	budget := c.budget
	c.mu.Unlock()
	attempts := policy.attempts()

	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if !budget.Allow() {
				// The shared bucket is empty: enough peers are already
				// retrying that another attempt only deepens the outage.
				break
			}
			c.mu.Lock()
			d := policy.delay(i-1, &c.rng)
			sleep := c.sleep
			c.mu.Unlock()
			if deadline, ok := ctx.Deadline(); ok {
				if remaining := time.Until(deadline); d >= remaining {
					return nil, &DeadlineError{Op: "backoff", Addr: c.addr, Err: lastErr}
				}
			}
			retries.Inc()
			sleep(d)
		}
		reply, err := c.exchangeCtx(ctx, msg())
		if err == nil {
			return reply, nil
		}
		lastErr = err
		if !IsTransient(err) || IsDeadline(err) {
			// Remote errors would fail identically on retry; deadline
			// failures mean the budget is spent, so backing off and trying
			// again can only finish later than giving up now.
			break
		}
	}
	return nil, lastErr
}

// exchange sends one message and reads the matching reply without a
// deadline; see exchangeCtx.
func (c *Client) exchange(msg *wire.Message) (*wire.Message, error) {
	return c.exchangeCtx(context.Background(), msg)
}

// exchangeCtx sends one message and reads the matching reply, recording
// the traffic observation. Any transport fault closes the connection —
// after a timeout or partial read/write the stream is desynchronized and
// replies would no longer line up with requests — so the next exchange
// redials. The context bounds the whole exchange: the effective I/O
// deadline is the smaller of the per-exchange timeout and the context's
// remaining time, the remaining budget is propagated on request frames,
// and cancellation mid-exchange forces the blocked I/O to return by
// expiring the connection deadline (close-on-cancel).
func (c *Client) exchangeCtx(ctx context.Context, msg *wire.Message) (*wire.Message, error) {
	var remaining time.Duration // 0 means unbounded
	if deadline, ok := ctx.Deadline(); ok {
		remaining = time.Until(deadline)
		if remaining <= 0 {
			return nil, &DeadlineError{Op: "exchange", Addr: c.addr, Err: context.DeadlineExceeded}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, &DeadlineError{Op: "exchange", Addr: c.addr, Err: err}
	}

	c.mu.Lock()
	defer c.mu.Unlock()

	timeout := c.timeout
	// budgetBound records that the effective I/O deadline is the context's
	// remaining budget, not the per-exchange timeout: an I/O timeout is then
	// the budget expiring, even when the connection's deadline fires a hair
	// before the context's own timer does — misreading that race as a
	// transport fault would evict a healthy connection and count against the
	// server's health.
	budgetBound := false
	if remaining > 0 && (timeout <= 0 || remaining < timeout) {
		timeout = remaining
		budgetBound = true
	}
	if err := c.ensureConnLocked(timeout, budgetBound); err != nil {
		return nil, err
	}
	c.nextID++
	msg.ID = c.nextID
	if remaining > 0 && msg.Type == wire.MsgRequest {
		msg.Deadline = wire.NewDeadlineContext(remaining)
	}

	var ioDeadline time.Time // zero clears any stale forced expiry
	if timeout > 0 {
		ioDeadline = time.Now().Add(timeout)
	}
	if err := c.conn.SetDeadline(ioDeadline); err != nil {
		c.breakConnLocked()
		return nil, &TransportError{Op: "deadline", Addr: c.addr, Err: err}
	}

	if done := ctx.Done(); done != nil {
		// Close-on-cancel: a watcher forces the blocked read or write to
		// return immediately by moving the connection deadline into the
		// past. The poisoned stream is then discarded below and resyncs by
		// redialing on the next exchange. The watcher is joined before the
		// exchange returns: when cancellation races a successful reply, the
		// select may still take the done arm, and an unjoined watcher could
		// fire its forced expiry after the connection was handed to the next
		// exchange — poisoning an innocent request with an instant timeout.
		conn := c.conn
		stop := make(chan struct{})
		watcherDone := make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-done:
				conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-watcherDone
		}()
	}

	start := time.Now()
	sent, err := wire.WriteMessage(c.conn, msg)
	if err != nil {
		c.breakConnLocked()
		if cerr := ctx.Err(); cerr != nil {
			return nil, &DeadlineError{Op: "exchange", Addr: c.addr, Err: cerr}
		}
		if budgetBound && isTimeoutErr(err) {
			return nil, &DeadlineError{Op: "exchange", Addr: c.addr, Err: context.DeadlineExceeded}
		}
		return nil, &TransportError{Op: "write", Addr: c.addr, Err: err}
	}
	for {
		reply, received, err := wire.ReadMessage(c.conn)
		if err != nil {
			c.breakConnLocked()
			if cerr := ctx.Err(); cerr != nil {
				return nil, &DeadlineError{Op: "exchange", Addr: c.addr, Err: cerr}
			}
			if budgetBound && isTimeoutErr(err) {
				return nil, &DeadlineError{Op: "exchange", Addr: c.addr, Err: context.DeadlineExceeded}
			}
			return nil, &TransportError{Op: "read", Addr: c.addr, Err: err}
		}
		if reply.ID < msg.ID {
			// Stale reply from an abandoned exchange on this connection;
			// skip it and keep reading.
			continue
		}
		if reply.ID != msg.ID {
			// A reply from the future means the stream is desynchronized;
			// nothing read from it can be trusted.
			c.breakConnLocked()
			return nil, &TransportError{
				Op:   "desync",
				Addr: c.addr,
				Err:  fmt.Errorf("reply id %d for request %d", reply.ID, msg.ID),
			}
		}
		elapsed := time.Since(start)
		c.traffic.Record(TrafficObservation{
			Bytes:   int64(sent + received),
			Elapsed: elapsed,
			When:    time.Now(),
		})
		c.mCallSeconds.Observe(elapsed.Seconds())
		// Every successful exchange earns back a fraction of a retry token
		// for the budget shared with pooled siblings.
		c.budget.Credit()
		return reply, nil
	}
}

// ensureConnLocked dials if no healthy connection exists, bounding the
// dial by the exchange's effective timeout. budgetBound marks the timeout
// as the context's remaining budget, so a dial that runs out of time is a
// deadline expiry, not evidence the server is unreachable. The caller
// holds c.mu.
func (c *Client) ensureConnLocked(timeout time.Duration, budgetBound bool) error {
	if c.closed {
		return ErrClientClosed
	}
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		if budgetBound && isTimeoutErr(err) {
			return &DeadlineError{Op: "dial", Addr: c.addr, Err: context.DeadlineExceeded}
		}
		return &TransportError{Op: "dial", Addr: c.addr, Err: err}
	}
	c.conn = conn
	c.redials++
	if c.everDialed {
		c.mRedials.Inc()
	}
	c.everDialed = true
	return nil
}

// breakConnLocked discards a poisoned connection so the next exchange
// redials instead of reading garbage frames. The caller holds c.mu.
func (c *Client) breakConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
