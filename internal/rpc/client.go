package rpc

import (
	"fmt"
	"net"
	"sync"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// RemoteError is a server-side failure returned through the RPC layer.
type RemoteError struct {
	Service string
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error from %q: %s", e.Service, e.Msg)
}

// Client is a connection to one Spectra server. Calls are serialized over a
// single TCP connection, matching the paper's sequential execution model.
// Every exchange is recorded in the traffic log for passive network
// monitoring.
//
// The client is self-healing: when an exchange fails at the transport
// level — dial failure, timeout, broken or desynchronized stream — the
// connection is closed and the next call dials a fresh one, so a single
// fault never poisons the stream for subsequent exchanges. Idempotent
// exchanges (Ping, Status) additionally retry with capped exponential
// backoff and jitter; Call does not retry, because service operations are
// not idempotent in general — callers fail over instead.
type Client struct {
	mu sync.Mutex

	addr    string
	conn    net.Conn
	nextID  uint64
	traffic *TrafficLog
	timeout time.Duration

	closed  bool
	redials int
	retry   RetryPolicy
	rng     splitMix
	// sleep is swapped out by tests to observe backoff without waiting.
	sleep func(time.Duration)

	// Observability handles (nil-safe no-ops when unset). everDialed
	// distinguishes reconnections from the first dial, which is not a
	// redial worth alerting on.
	mRetries     *obs.Counter
	mRedials     *obs.Counter
	mCallSeconds *obs.Histogram
	everDialed   bool
}

// Dial connects to a Spectra server. The traffic log may be shared with a
// network monitor; pass nil to create a private one. A failed initial dial
// is returned as a *TransportError; the returned client is nil and must
// not be used.
func Dial(addr string, traffic *TrafficLog) (*Client, error) {
	c := NewClient(addr, traffic)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConnLocked(); err != nil {
		return nil, err
	}
	c.redials = 0 // the initial dial is not a redial
	return c, nil
}

// NewClient returns a client that dials lazily: the first exchange (and
// any exchange after a transport fault) establishes the connection.
func NewClient(addr string, traffic *TrafficLog) *Client {
	if traffic == nil {
		traffic = NewTrafficLog()
	}
	return &Client{
		addr:    addr,
		traffic: traffic,
		timeout: 30 * time.Second,
		rng:     splitMix{state: jitterSeed(addr, 0)},
		sleep:   time.Sleep,
	}
}

// reseedJitter re-derives the backoff jitter stream with a salt, so pooled
// clients sharing one address do not back off in lockstep with each other.
func (c *Client) reseedJitter(salt uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rng = splitMix{state: jitterSeed(c.addr, salt)}
}

// SetTimeout sets the per-exchange deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.timeout = d
	}
}

// SetRetryPolicy tunes automatic retries of idempotent exchanges.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p
}

// SetMetrics attaches the metrics registry: retry and redial counts plus
// per-exchange latency flow into it. A nil registry detaches.
func (c *Client) SetMetrics(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mRetries = reg.Counter(obs.MRPCRetries)
	c.mRedials = reg.Counter(obs.MRPCRedials)
	c.mCallSeconds = reg.Histogram(obs.MRPCCallSeconds, obs.DefaultLatencyBuckets)
}

// Addr returns the server address.
func (c *Client) Addr() string { return c.addr }

// Traffic returns the client's traffic log.
func (c *Client) Traffic() *TrafficLog { return c.traffic }

// Redials counts reconnections performed after transport faults.
func (c *Client) Redials() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// Close shuts the connection down. A closed client never redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Call invokes a service operation and returns the response payload and
// the server's usage report. Transport failures are returned as
// *TransportError without retrying: service operations are not idempotent,
// so recovery (retry or failover) is the caller's decision.
func (c *Client) Call(service, optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
	out, usage, _, err := c.CallTraced(service, optype, payload, nil)
	return out, usage, err
}

// CallTraced is Call with trace propagation: tc (which may be nil) rides
// the request so the server executes under the client's trace, and the
// server's span records for the request ride back on the response. Span
// offsets are relative to the server's receipt of the request, on the
// server's clock; RebaseSpans converts them to client-timeline spans.
func (c *Client) CallTraced(service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	reply, err := c.exchange(&wire.Message{
		Type:    wire.MsgRequest,
		Service: service,
		OpType:  optype,
		Payload: payload,
		Trace:   tc,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if reply.Code == wire.CodeOverloaded {
		// Admission-control shed: the exchange completed and the connection
		// is healthy, but the server refused the work. Classified separately
		// from RemoteError so failover engages and from TransportError so
		// pools do not evict a good connection.
		return nil, reply.Usage, reply.Spans, &OverloadError{Addr: c.addr}
	}
	if reply.Err != "" {
		return nil, reply.Usage, reply.Spans, &RemoteError{Service: service, Msg: reply.Err}
	}
	return reply.Payload, reply.Usage, reply.Spans, nil
}

// Status fetches the server's resource snapshot, retrying transient
// transport faults per the retry policy (the exchange is idempotent).
func (c *Client) Status() (*wire.ServerStatus, error) {
	reply, err := c.exchangeRetry(func() *wire.Message {
		return &wire.Message{Type: wire.MsgStatus}
	})
	if err != nil {
		return nil, err
	}
	if reply.Status == nil {
		return nil, &TransportError{Op: "status", Addr: c.addr, Err: errEmptyStatus}
	}
	return reply.Status, nil
}

// Ping performs a minimal round trip, seeding the latency estimate. Like
// Status it is idempotent and retries transient faults.
func (c *Client) Ping() (time.Duration, error) {
	start := time.Now()
	if _, err := c.exchangeRetry(func() *wire.Message {
		return &wire.Message{Type: wire.MsgPing}
	}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// exchangeRetry performs an idempotent exchange, retrying transient
// transport faults with capped exponential backoff and jitter. msg is a
// constructor because each attempt needs a fresh message (IDs are
// assigned per attempt).
func (c *Client) exchangeRetry(msg func() *wire.Message) (*wire.Message, error) {
	c.mu.Lock()
	policy := c.retry
	retries := c.mRetries
	c.mu.Unlock()
	attempts := policy.attempts()

	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			retries.Inc()
			c.mu.Lock()
			d := policy.delay(i-1, &c.rng)
			sleep := c.sleep
			c.mu.Unlock()
			sleep(d)
		}
		reply, err := c.exchange(msg())
		if err == nil {
			return reply, nil
		}
		lastErr = err
		if !IsTransient(err) {
			break
		}
	}
	return nil, lastErr
}

// exchange sends one message and reads the matching reply, recording the
// traffic observation. Any transport fault closes the connection — after a
// timeout or partial read/write the stream is desynchronized and replies
// would no longer line up with requests — so the next exchange redials.
func (c *Client) exchange(msg *wire.Message) (*wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if err := c.ensureConnLocked(); err != nil {
		return nil, err
	}
	c.nextID++
	msg.ID = c.nextID

	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			c.breakConnLocked()
			return nil, &TransportError{Op: "deadline", Addr: c.addr, Err: err}
		}
	}

	start := time.Now()
	sent, err := wire.WriteMessage(c.conn, msg)
	if err != nil {
		c.breakConnLocked()
		return nil, &TransportError{Op: "write", Addr: c.addr, Err: err}
	}
	for {
		reply, received, err := wire.ReadMessage(c.conn)
		if err != nil {
			c.breakConnLocked()
			return nil, &TransportError{Op: "read", Addr: c.addr, Err: err}
		}
		if reply.ID < msg.ID {
			// Stale reply from an abandoned exchange on this connection;
			// skip it and keep reading.
			continue
		}
		if reply.ID != msg.ID {
			// A reply from the future means the stream is desynchronized;
			// nothing read from it can be trusted.
			c.breakConnLocked()
			return nil, &TransportError{
				Op:   "desync",
				Addr: c.addr,
				Err:  fmt.Errorf("reply id %d for request %d", reply.ID, msg.ID),
			}
		}
		elapsed := time.Since(start)
		c.traffic.Record(TrafficObservation{
			Bytes:   int64(sent + received),
			Elapsed: elapsed,
			When:    time.Now(),
		})
		c.mCallSeconds.Observe(elapsed.Seconds())
		return reply, nil
	}
}

// ensureConnLocked dials if no healthy connection exists. The caller holds
// c.mu.
func (c *Client) ensureConnLocked() error {
	if c.closed {
		return ErrClientClosed
	}
	if c.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return &TransportError{Op: "dial", Addr: c.addr, Err: err}
	}
	c.conn = conn
	c.redials++
	if c.everDialed {
		c.mRedials.Inc()
	}
	c.everDialed = true
	return nil
}

// breakConnLocked discards a poisoned connection so the next exchange
// redials instead of reading garbage frames. The caller holds c.mu.
func (c *Client) breakConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
