package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"spectra/internal/wire"
)

// RemoteError is a server-side failure returned through the RPC layer.
type RemoteError struct {
	Service string
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error from %q: %s", e.Service, e.Msg)
}

// Client is a connection to one Spectra server. Calls are serialized over a
// single TCP connection, matching the paper's sequential execution model.
// Every exchange is recorded in the traffic log for passive network
// monitoring.
type Client struct {
	mu sync.Mutex

	addr    string
	conn    net.Conn
	nextID  uint64
	traffic *TrafficLog
	timeout time.Duration
}

// Dial connects to a Spectra server. The traffic log may be shared with a
// network monitor; pass nil to create a private one.
func Dial(addr string, traffic *TrafficLog) (*Client, error) {
	if traffic == nil {
		traffic = NewTrafficLog()
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return &Client{
		addr:    addr,
		conn:    conn,
		traffic: traffic,
		timeout: 30 * time.Second,
	}, nil
}

// SetTimeout sets the per-exchange deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.timeout = d
	}
}

// Addr returns the server address.
func (c *Client) Addr() string { return c.addr }

// Traffic returns the client's traffic log.
func (c *Client) Traffic() *TrafficLog { return c.traffic }

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Call invokes a service operation and returns the response payload and
// the server's usage report.
func (c *Client) Call(service, optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
	reply, err := c.exchange(&wire.Message{
		Type:    wire.MsgRequest,
		Service: service,
		OpType:  optype,
		Payload: payload,
	})
	if err != nil {
		return nil, nil, err
	}
	if reply.Err != "" {
		return nil, reply.Usage, &RemoteError{Service: service, Msg: reply.Err}
	}
	return reply.Payload, reply.Usage, nil
}

// Status fetches the server's resource snapshot.
func (c *Client) Status() (*wire.ServerStatus, error) {
	reply, err := c.exchange(&wire.Message{Type: wire.MsgStatus})
	if err != nil {
		return nil, err
	}
	if reply.Status == nil {
		return nil, errors.New("rpc: empty status reply")
	}
	return reply.Status, nil
}

// Ping performs a minimal round trip, seeding the latency estimate.
func (c *Client) Ping() (time.Duration, error) {
	start := time.Now()
	if _, err := c.exchange(&wire.Message{Type: wire.MsgPing}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// exchange sends one message and reads the matching reply, recording the
// traffic observation.
func (c *Client) exchange(msg *wire.Message) (*wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if c.conn == nil {
		return nil, errors.New("rpc: client closed")
	}
	c.nextID++
	msg.ID = c.nextID

	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("rpc: set deadline: %w", err)
		}
	}

	start := time.Now()
	sent, err := wire.WriteMessage(c.conn, msg)
	if err != nil {
		return nil, err
	}
	for {
		reply, received, err := wire.ReadMessage(c.conn)
		if err != nil {
			return nil, err
		}
		if reply.ID != msg.ID {
			// Stale reply from an abandoned exchange; skip it.
			continue
		}
		c.traffic.Record(TrafficObservation{
			Bytes:   int64(sent + received),
			Elapsed: time.Since(start),
			When:    time.Now(),
		})
		return reply, nil
	}
}
