package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spectra/internal/wire"
)

// TestMuxOutOfOrderResponses drives the wire protocol directly: two
// requests are written on one connection, the first blocked server-side
// and the second fast, so the replies come back in reverse order. Each
// must carry the ID of its own request — the whole point of the demux.
func TestMuxOutOfOrderResponses(t *testing.T) {
	release := make(chan struct{})
	srv := NewServer(nil)
	srv.Register("slow", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		<-release
		return []byte("slow"), nil, nil
	})
	srv.Register("fast", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		return []byte("fast"), nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgRequest, ID: 1, Service: "slow"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgRequest, ID: 2, Service: "fast"}); err != nil {
		t.Fatal(err)
	}

	first, _, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != 2 || string(first.Payload) != "fast" {
		t.Fatalf("first reply = ID %d payload %q, want the fast request (ID 2)", first.ID, first.Payload)
	}
	close(release)
	second, _, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != 1 || string(second.Payload) != "slow" {
		t.Fatalf("second reply = ID %d payload %q, want the slow request (ID 1)", second.ID, second.Payload)
	}
}

// TestMuxClientMatchesInterleavedReplies proves the client-side demux end
// to end: slow and fast calls interleaved on ONE client (one connection)
// each get their own payload back, and the fast calls complete while the
// slow ones are still parked.
func TestMuxClientMatchesInterleavedReplies(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	srv := NewServer(nil)
	srv.Register("hold", func(_ string, p []byte) ([]byte, *wire.UsageReport, error) {
		entered <- struct{}{}
		<-release
		return p, nil, nil
	})
	srv.Register("echo", func(_ string, p []byte) ([]byte, *wire.UsageReport, error) {
		return p, nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(addr, nil)
	defer c.Close()

	var wg sync.WaitGroup
	held := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, _, err := c.Call("hold", "x", []byte(fmt.Sprintf("held-%d", i)))
			if err == nil && string(out) != fmt.Sprintf("held-%d", i) {
				err = fmt.Errorf("held call %d got %q", i, out)
			}
			held <- err
		}(i)
	}
	<-entered
	<-entered // both slow calls are in flight on the shared connection

	// Fast calls must cut through while the slow replies are outstanding.
	for i := 0; i < 5; i++ {
		want := fmt.Sprintf("quick-%d", i)
		out, _, err := c.Call("echo", "x", []byte(want))
		if err != nil {
			t.Fatalf("interleaved echo %d: %v", i, err)
		}
		if string(out) != want {
			t.Fatalf("interleaved echo %d returned %q, want %q", i, out, want)
		}
	}

	close(release)
	wg.Wait()
	close(held)
	for err := range held {
		if err != nil {
			t.Fatal(err)
		}
	}
	if c.Redials() != 1 {
		t.Fatalf("redials = %d, want 1 (everything multiplexed over the first dial)", c.Redials())
	}
}

// TestMuxReaderDeathFailsAllStreams kills the connection while several
// streams are in flight: every one must fail promptly with a classified
// transport error (not a deadline), and the break must be counted as one
// eviction, not one per stream.
func TestMuxReaderDeathFailsAllStreams(t *testing.T) {
	entered := make(chan struct{}, 8)
	srv := NewServer(nil)
	srv.Register("hold", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		entered <- struct{}{}
		select {} // never replies; the conn dies first
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The server leaks its stuck handlers deliberately; don't Close it
	// (Close waits for them).

	c := NewClient(addr, nil)
	defer c.Close()
	var evictions atomic.Int64
	c.setEvictHook(func() { evictions.Add(1) })

	const streams = 4
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		go func() {
			_, _, err := c.Call("hold", "x", nil)
			errs <- err
		}()
	}
	for i := 0; i < streams; i++ {
		<-entered // all streams in flight on one connection
	}

	// Break the transport out from under them.
	c.mu.Lock()
	m := c.mux
	c.mu.Unlock()
	m.conn.Close()

	for i := 0; i < streams; i++ {
		select {
		case err := <-errs:
			var terr *TransportError
			if !errors.As(err, &terr) {
				t.Fatalf("stream %d failed with %v, want *TransportError", i, err)
			}
			if IsDeadline(err) {
				t.Fatalf("stream %d misclassified as deadline: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stream %d still blocked after connection death", i)
		}
	}
	if got := evictions.Load(); got != 1 {
		t.Fatalf("connection death counted as %d evictions, want exactly 1", got)
	}
}

// TestMuxCancelFrameStopsServerWork registers a context-aware handler and
// proves a MsgCancel for an in-flight request cancels the handler's
// context, that the cancelled stream gets no reply, and that the
// connection keeps serving other streams.
func TestMuxCancelFrameStopsServerWork(t *testing.T) {
	started := make(chan struct{}, 1)
	cancelled := make(chan struct{}, 1)
	srv := NewServer(nil)
	srv.RegisterContext("watch", func(ctx context.Context, _ string, _ []byte) ([]byte, *wire.UsageReport, error) {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			cancelled <- struct{}{}
			return nil, nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return []byte("never cancelled"), nil, nil
		}
	})
	srv.Register("echo", func(_ string, p []byte) ([]byte, *wire.UsageReport, error) {
		return p, nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgRequest, ID: 7, Service: "watch"}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgCancel, ID: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("cancel frame never reached the handler's context")
	}

	// The cancelled stream must produce no reply; the next frame on the
	// connection must be the echo's.
	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgRequest, ID: 8, Service: "echo", Payload: []byte("alive")}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.ID != 8 || string(reply.Payload) != "alive" {
		t.Fatalf("post-cancel frame = ID %d payload %q err %q, want the echo reply (ID 8); the cancelled stream must stay silent", reply.ID, reply.Payload, reply.Err)
	}
}

// TestMuxCancelBeforeExecutionDropsWork sends a cancel for a request still
// waiting in the server's admission queue: the work must never execute.
func TestMuxCancelBeforeExecutionDropsWork(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	executed := make(chan struct{}, 8)
	srv := NewServer(nil)
	srv.SetLimits(ServerLimits{MaxConcurrent: 1, MaxQueue: 8})
	srv.Register("gate", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		entered <- struct{}{}
		<-release
		return nil, nil, nil
	})
	srv.Register("work", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		executed <- struct{}{}
		return []byte("ran"), nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		srv.Close()
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgRequest, ID: 1, Service: "gate"}); err != nil {
		t.Fatal(err)
	}
	<-entered // the worker slot is held; the next request queues

	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgRequest, ID: 2, Service: "work"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgCancel, ID: 2}); err != nil {
		t.Fatal(err)
	}

	// Free the worker slot; the cancelled request must be dropped, not run.
	release <- struct{}{}
	reply, _, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.ID != 1 {
		t.Fatalf("got reply for stream %d, want only the gate's (ID 1): cancelled queued work must stay silent", reply.ID)
	}
	select {
	case <-executed:
		t.Fatal("queued work executed despite its cancel frame")
	case <-time.After(100 * time.Millisecond):
	}
}

// TestMuxDuplicateStreamIDRejected proves the server refuses a request
// reusing an in-flight stream ID instead of corrupting the demux table.
func TestMuxDuplicateStreamIDRejected(t *testing.T) {
	release := make(chan struct{})
	srv := NewServer(nil)
	srv.Register("hold", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		<-release
		return []byte("done"), nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		srv.Close()
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgRequest, ID: 5, Service: "hold"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.WriteMessage(conn, &wire.Message{Type: wire.MsgRequest, ID: 5, Service: "hold"}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.ID != 5 || reply.Err == "" {
		t.Fatalf("duplicate in-flight ID got reply %+v, want an error response", reply)
	}
}

// TestMuxSingleConnStress hammers one client — one multiplexed connection
// — from 64 goroutines, mixing plain calls with budget-bounded ones that
// sometimes expire (exercising the cancel path), under -race in CI. The
// connection must survive: deadline expiries never break it.
func TestMuxSingleConnStress(t *testing.T) {
	srv := NewServer(nil)
	srv.Register("echo", func(_ string, p []byte) ([]byte, *wire.UsageReport, error) {
		return p, nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(addr, nil)
	defer c.Close()

	const goroutines = 64
	const perG = 25
	var ok, expired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				payload := []byte(fmt.Sprintf("g%d-i%d", g, i))
				var out []byte
				var err error
				if i%5 == 4 {
					// A tiny budget that sometimes expires mid-flight,
					// driving the cancel-frame path under load.
					ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
					out, _, _, err = c.CallContext(ctx, "echo", "x", payload, nil)
					cancel()
				} else {
					out, _, err = c.Call("echo", "x", payload)
				}
				switch {
				case err == nil:
					if string(out) != string(payload) {
						t.Errorf("goroutine %d call %d got %q, want %q (cross-stream reply mixup)", g, i, out, payload)
						return
					}
					ok.Add(1)
				case IsDeadline(err):
					expired.Add(1)
				default:
					t.Errorf("goroutine %d call %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("no call succeeded under stress")
	}
	if c.Redials() != 1 {
		t.Fatalf("redials = %d, want 1: deadline expiries under load must not break the shared connection", c.Redials())
	}
	t.Logf("stress: %d ok, %d expired over one connection", ok.Load(), expired.Load())
}
