package rpc

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"spectra/internal/wire"
)

// faultyServer is a handcrafted wire-speaking server whose first nBad
// connections misbehave (per badMode) and whose later connections serve
// echo correctly.
type faultyServer struct {
	ln    net.Listener
	conns atomic.Int64
	nBad  int64
	// badMode: "garbage" writes a non-frame; "close" drops the conn after
	// reading the request; "stall" reads the request and never replies.
	badMode string
}

func startFaultyServer(t *testing.T, nBad int64, badMode string) *faultyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &faultyServer{ln: ln, nBad: nBad, badMode: badMode}
	go fs.accept()
	t.Cleanup(func() { ln.Close() })
	return fs
}

func (fs *faultyServer) accept() {
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		n := fs.conns.Add(1)
		go fs.serve(conn, n <= fs.nBad)
	}
}

func (fs *faultyServer) serve(conn net.Conn, bad bool) {
	defer conn.Close()
	for {
		msg, _, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		if bad {
			switch fs.badMode {
			case "garbage":
				conn.Write([]byte("!!!! this is not a spectra frame !!!!"))
				return
			case "close":
				return
			case "stall":
				time.Sleep(5 * time.Second)
				return
			}
		}
		reply := &wire.Message{Type: wire.MsgResponse, ID: msg.ID}
		switch msg.Type {
		case wire.MsgPing:
			reply.Type = wire.MsgPong
		case wire.MsgStatus:
			reply.Type = wire.MsgStatusReply
			reply.Status = &wire.ServerStatus{Name: "faulty", SpeedMHz: 100}
		default:
			reply.Payload = append([]byte("echo:"), msg.Payload...)
		}
		if _, err := wire.WriteMessage(conn, reply); err != nil {
			return
		}
	}
}

// TestGarbageReplyPoisonsConnectionOnceOnly is the poisoned-connection
// regression test: a garbage frame kills the exchange, the client discards
// the desynchronized connection, and the next call transparently redials
// instead of reading garbage forever.
func TestGarbageReplyPoisonsConnectionOnceOnly(t *testing.T) {
	fs := startFaultyServer(t, 1, "garbage")
	c, err := Dial(fs.ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Call("echo", "op", []byte("x"))
	if err == nil {
		t.Fatal("call over garbage stream succeeded")
	}
	if !IsTransient(err) {
		t.Fatalf("garbage frame classified as non-transient: %v", err)
	}

	out, _, err := c.Call("echo", "op", []byte("y"))
	if err != nil {
		t.Fatalf("call after redial: %v", err)
	}
	if string(out) != "echo:y" {
		t.Fatalf("reply = %q", out)
	}
	if c.Redials() != 1 {
		t.Fatalf("redials = %d, want 1", c.Redials())
	}
}

// TestTimeoutDesynchronizedStreamRedials covers the timeout flavor of the
// same bug: after a deadline expires mid-exchange the stream may hold a
// late reply; the client must not reuse it.
func TestTimeoutDesynchronizedStreamRedials(t *testing.T) {
	fs := startFaultyServer(t, 1, "stall")
	c, err := Dial(fs.ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(150 * time.Millisecond)

	if _, _, err := c.Call("echo", "op", []byte("x")); err == nil {
		t.Fatal("call to stalled server succeeded")
	} else if !IsTransient(err) {
		t.Fatalf("timeout classified as non-transient: %v", err)
	}

	out, _, err := c.Call("echo", "op", []byte("y"))
	if err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	if string(out) != "echo:y" {
		t.Fatalf("reply = %q", out)
	}
}

// TestPingRetriesWithBackoff exercises the idempotent-exchange retry loop:
// the first two connections break, the third serves, and the observed
// backoff delays grow.
func TestPingRetriesWithBackoff(t *testing.T) {
	fs := startFaultyServer(t, 2, "close")
	c := NewClient(fs.ln.Addr().String(), nil)
	defer c.Close()

	var delays []time.Duration
	c.sleep = func(d time.Duration) { delays = append(delays, d) }
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts:    4,
		BaseDelay:      10 * time.Millisecond,
		MaxDelay:       time.Second,
		JitterFraction: -1, // deterministic delays for the assertion
	})

	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping never recovered: %v", err)
	}
	if len(delays) != 2 {
		t.Fatalf("observed %d backoff sleeps, want 2 (%v)", len(delays), delays)
	}
	if delays[0] != 10*time.Millisecond || delays[1] != 20*time.Millisecond {
		t.Fatalf("backoff = %v, want [10ms 20ms]", delays)
	}
}

// TestStatusRetryGivesUpAfterBudget verifies the retry budget is honored
// against a server that never recovers.
func TestStatusRetryGivesUpAfterBudget(t *testing.T) {
	fs := startFaultyServer(t, 1<<30, "close")
	c := NewClient(fs.ln.Addr().String(), nil)
	defer c.Close()

	attempts := 0
	c.sleep = func(time.Duration) { attempts++ }
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})

	if _, err := c.Status(); err == nil {
		t.Fatal("status against a dead server succeeded")
	} else if !IsTransient(err) {
		t.Fatalf("dead server error non-transient: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("backoff sleeps = %d, want 2 (3 attempts)", attempts)
	}
}

// TestRemoteErrorNotRetriedNotTransient pins the error classification:
// remote application failures are final.
func TestRemoteErrorNotRetriedNotTransient(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Call("fail", "op", nil)
	if err == nil {
		t.Fatal("failing service returned success")
	}
	if IsTransient(err) {
		t.Fatalf("remote app error classified transient: %v", err)
	}
	if !IsRemote(err) {
		t.Fatalf("remote app error not classified remote: %v", err)
	}
	var rerr *RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("error type = %T", err)
	}
}

// TestBackoffCapAndJitterDeterminism checks delays cap at MaxDelay and
// jitter only ever shrinks them, deterministically for a fixed seed.
func TestBackoffCapAndJitterDeterminism(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 300 * time.Millisecond}
	r1 := &splitMix{state: 42}
	r2 := &splitMix{state: 42}
	for n := 0; n < 6; n++ {
		d1 := p.delay(n, r1)
		d2 := p.delay(n, r2)
		if d1 != d2 {
			t.Fatalf("delay(%d) nondeterministic: %v vs %v", n, d1, d2)
		}
		if d1 > 300*time.Millisecond {
			t.Fatalf("delay(%d) = %v exceeds cap", n, d1)
		}
		if d1 <= 0 {
			t.Fatalf("delay(%d) = %v", n, d1)
		}
	}
}

// TestClosedClientNeverRedials ensures explicit Close is final.
func TestClosedClientNeverRedials(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := c.Call("echo", "op", nil); err == nil {
		t.Fatal("call on closed client succeeded")
	} else if IsTransient(err) {
		t.Fatalf("closed-client error should not be transient: %v", err)
	}
	if c.Redials() != 0 {
		t.Fatalf("closed client redialed %d times", c.Redials())
	}
}

// TestDialFailureIsTransient classifies initial dial failures so callers
// can fail over.
func TestDialFailureIsTransient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	if _, err := Dial(addr, nil); err == nil {
		t.Fatal("dial to closed port succeeded")
	} else if !IsTransient(err) {
		t.Fatalf("dial failure non-transient: %v", err)
	}
}
