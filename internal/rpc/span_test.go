package rpc

import (
	"errors"
	"testing"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// TestCallTracedReturnsServerSpans pins the cross-wire span protocol: a
// traced call comes back with queue/exec/respond records covering the
// server-side handling, while an untraced call ships none.
func TestCallTracedReturnsServerSpans(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, _, spans, err := c.CallTraced("echo", "greet", []byte("hi"), &wire.TraceContext{TraceID: 7, SpanID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "greet:hi" {
		t.Fatalf("response = %q", out)
	}
	if len(spans) != 3 {
		t.Fatalf("server spans = %d, want 3 (queue/exec/respond): %+v", len(spans), spans)
	}
	byName := map[string]wire.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.StartOffsetNs < 0 || s.DurationNs < 0 {
			t.Errorf("span %s has negative timing: %+v", s.Name, s)
		}
	}
	for _, name := range []string{obs.SpanServerQueue, obs.SpanServerExec, obs.SpanServerRespond} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing server span %s in %+v", name, spans)
		}
	}
	if exec, respond := byName[obs.SpanServerExec], byName[obs.SpanServerRespond]; respond.StartOffsetNs < exec.StartOffsetNs {
		t.Errorf("respond starts before exec: %+v vs %+v", respond, exec)
	}

	// Untraced calls stay span-free.
	if _, _, spans, err = c.CallTraced("echo", "greet", nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 {
		t.Fatalf("untraced call returned spans: %+v", spans)
	}
}

// TestCallTracedSpansOnError checks that even failing calls return the
// server-side spans recorded up to the failure.
func TestCallTracedSpansOnError(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, spans, err := c.CallTraced("fail", "x", nil, &wire.TraceContext{TraceID: 1, SpanID: 0})
	var rerr *RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("failed call returned no server spans")
	}
}

// TestServerObserverEmitsTraces checks the server-side flight-recorder
// view: with an observer attached, each handled request is counted and
// emitted as a thin DecisionTrace carrying the request's spans, keyed by
// the propagated trace ID.
func TestServerObserverEmitsTraces(t *testing.T) {
	srv, addr := startTestServer(t)
	sink := obs.NewMemorySink(16)
	o := obs.NewObserver()
	o.Sink = sink
	srv.SetObserver("srv-a", o)

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, _, err := c.CallTraced("echo", "greet", []byte("x"), &wire.TraceContext{TraceID: 99, SpanID: 4}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Call("fail", "x", nil); err == nil {
		t.Fatal("fail service succeeded")
	}

	deadline := time.Now().Add(2 * time.Second)
	for sink.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	traces := sink.Traces()
	if len(traces) != 2 {
		t.Fatalf("server traces = %d, want 2", len(traces))
	}
	tr := traces[0]
	if tr.OpID != 99 {
		t.Errorf("server trace OpID = %d, want propagated trace ID 99", tr.OpID)
	}
	if tr.Operation != "echo/greet" {
		t.Errorf("server trace operation = %q, want echo/greet", tr.Operation)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("server trace spans = %d, want 3", len(tr.Spans))
	}
	for _, s := range tr.Spans {
		if s.Origin != "srv-a" {
			t.Errorf("span origin = %q, want srv-a", s.Origin)
		}
	}
	if !traces[1].Aborted {
		t.Error("failed request's server trace not marked Aborted")
	}

	if got := o.Registry.Counter(obs.MServerRequests).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", obs.MServerRequests, got)
	}
	if got := o.Registry.Counter(obs.MServerErrors).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MServerErrors, got)
	}
}
