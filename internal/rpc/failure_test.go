package rpc

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"spectra/internal/wire"
)

// TestServerSurvivesGarbageConnection feeds raw garbage to the server; the
// offending connection dies, but the server keeps serving others.
func TestServerSurvivesGarbageConnection(t *testing.T) {
	_, addr := startTestServer(t)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("this is not a spectra frame at all")); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Call("echo", "op", []byte("still alive")); err != nil {
		t.Fatalf("server died after garbage: %v", err)
	}
}

// TestServerRejectsOversizedFrame sends a frame whose length prefix claims
// more than the protocol maximum; the connection must be dropped without
// the server attempting a giant allocation-and-read.
func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr := startTestServer(t)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], wire.MaxMessageBytes+1)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The server should close the connection rather than wait for 64 MiB.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("expected connection close or read error")
	}

	// And other clients are unaffected.
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Call("echo", "op", nil); err != nil {
		t.Fatalf("server unusable after oversized frame: %v", err)
	}
}

// TestClientTimeoutOnSilentServer ensures a stuck server cannot hang the
// client past its deadline.
func TestClientTimeoutOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Accept and say nothing.
		defer conn.Close()
		time.Sleep(5 * time.Second)
	}()

	c, err := Dial(ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(200 * time.Millisecond)
	start := time.Now()
	if _, _, err := c.Call("echo", "op", nil); err == nil {
		t.Fatal("call to silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}
