package rpc

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: for exchanges synthesized from any positive (bandwidth,
// latency) pair, the estimator recovers a non-negative latency and a
// bandwidth within 10% of truth, regardless of the transfer-size mix.
func TestTrafficEstimateRecoversLinkProperty(t *testing.T) {
	f := func(bwSeed, latSeed uint16, sizes [8]uint16) bool {
		bw := float64(bwSeed%2000)*100 + 1000 // 1 kB/s .. 201 kB/s
		lat := time.Duration(latSeed%100+1) * time.Millisecond

		l := NewTrafficLog()
		distinct := make(map[int64]bool)
		for _, s := range sizes {
			bytes := int64(s)*64 + 64 // 64 B .. ~4 MB
			distinct[bytes] = true
			elapsed := lat + time.Duration(float64(bytes)/bw*float64(time.Second))
			l.Record(TrafficObservation{Bytes: bytes, Elapsed: elapsed})
		}
		est, ok := l.Estimate()
		if !ok {
			return false
		}
		if est.Latency < 0 {
			return false
		}
		if len(distinct) < 2 {
			// A single transfer size cannot separate latency from
			// bandwidth; only well-definedness is required.
			return est.BandwidthBps >= 0
		}
		if est.BandwidthBps <= 0 {
			return false
		}
		rel := (est.BandwidthBps - bw) / bw
		if rel < 0 {
			rel = -rel
		}
		return rel < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
