package rpc

import (
	"context"
	"net"
	"os"
	"sync"
	"time"

	"spectra/internal/wire"
)

// sendqDepth bounds frames queued for a connection's writer goroutine.
// Callers block (interruptibly) when the queue is full; best-effort
// cancel frames are dropped instead, since a congested connection's
// server will shed the expired request at admission anyway.
const sendqDepth = 128

// pending is one in-flight stream's rendezvous state. The reply channel
// is buffered so the reader goroutine never blocks delivering a match;
// the byte counts are written under muxConn.mu (by the writer and reader
// goroutines) and read under it by the caller, giving the happens-before
// edge a cross-goroutine counter needs.
type pending struct {
	reply    chan *wire.Message
	sent     int // request-frame bytes put on the wire
	received int // reply-frame bytes read off the wire
}

// muxWrite is one frame queued for the writer goroutine. id names the
// pending entry to credit sent bytes to; 0 marks untracked frames
// (cancels), which expect no reply.
type muxWrite struct {
	msg *wire.Message
	id  uint64
}

// muxConn multiplexes concurrent exchanges over one framed connection,
// HTTP/2 style: every request carries a distinct wire.Message.ID, a
// single writer goroutine serializes outbound frames, and a single
// reader goroutine matches inbound responses to waiting callers by ID —
// out-of-order delivery is expected, since the server executes requests
// concurrently. Replies whose ID matches no waiter are strays from
// cancelled or timed-out streams and are dropped.
//
// A muxConn fails as a unit: when either goroutine hits a transport
// fault, the first cause is recorded, done closes, and every in-flight
// call returns that classified error. A failed muxConn is never reused —
// the owning Client discards it and dials afresh.
type muxConn struct {
	addr string
	conn net.Conn

	sendq chan muxWrite
	done  chan struct{}
	// onDead, when non-nil, is called exactly once with the winning
	// failure cause, from whichever goroutine recorded it (no muxConn
	// locks held). Owners use it for eager eviction accounting.
	onDead func(cause error)

	mu    sync.Mutex
	calls map[uint64]*pending
	err   error
}

// newMuxConn wraps an established connection and starts its writer and
// reader goroutines. onDead may be nil.
func newMuxConn(addr string, conn net.Conn, onDead func(cause error)) *muxConn {
	m := &muxConn{
		addr:   addr,
		conn:   conn,
		sendq:  make(chan muxWrite, sendqDepth),
		done:   make(chan struct{}),
		onDead: onDead,
		calls:  make(map[uint64]*pending),
	}
	go m.writeLoop()
	go m.readLoop()
	return m
}

// writeLoop is the connection's single writer: it drains sendq in order,
// so a request frame always precedes its own cancel frame. A write fault
// fails the whole connection. A write that blocks on TCP backpressure
// holds the loop — callers are not stuck with it (they wait on their own
// timers), and a caller-side flat timeout breaks the connection, which
// errors the blocked write out.
func (m *muxConn) writeLoop() {
	for {
		select {
		case w := <-m.sendq:
			n, err := wire.WriteMessage(m.conn, w.msg)
			if w.id != 0 {
				m.mu.Lock()
				if p := m.calls[w.id]; p != nil {
					p.sent = n
				}
				m.mu.Unlock()
			}
			if err != nil {
				m.fail(&TransportError{Op: "write", Addr: m.addr, Err: err})
				return
			}
		case <-m.done:
			return
		}
	}
}

// readLoop is the connection's single reader: it matches each inbound
// frame to its waiting caller by ID. Unmatched IDs are strays from
// abandoned streams and are dropped. Any read fault — including garbage
// framing, which desynchronizes the stream beyond recovery — fails the
// whole connection, and with it every in-flight stream.
func (m *muxConn) readLoop() {
	for {
		reply, n, err := wire.ReadMessage(m.conn)
		if err != nil {
			m.fail(&TransportError{Op: "read", Addr: m.addr, Err: err})
			return
		}
		m.mu.Lock()
		p := m.calls[reply.ID]
		if p != nil {
			delete(m.calls, reply.ID)
			p.received = n
		}
		m.mu.Unlock()
		if p != nil {
			p.reply <- reply
		}
	}
}

// fail records the connection's first failure cause, wakes every
// in-flight call through done, and closes the underlying connection
// (which errors out the reader and writer). Only the first cause wins;
// later calls are no-ops. Returns the connection Close error on the
// winning call.
func (m *muxConn) fail(cause error) error {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return nil
	}
	m.err = cause
	m.mu.Unlock()
	if m.onDead != nil {
		m.onDead(cause)
	}
	close(m.done)
	return m.conn.Close()
}

// failure returns the recorded failure cause after done has closed.
func (m *muxConn) failure() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil {
		return &TransportError{Op: "read", Addr: m.addr, Err: net.ErrClosed}
	}
	return m.err
}

// dead reports whether the connection has failed.
func (m *muxConn) dead() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// register parks a new stream in the demux table, failing fast when the
// connection is already dead.
func (m *muxConn) register(id uint64, p *pending) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	m.calls[id] = p
	return nil
}

// unregister abandons a stream; a reply arriving later is dropped as a
// stray.
func (m *muxConn) unregister(id uint64) {
	m.mu.Lock()
	delete(m.calls, id)
	m.mu.Unlock()
}

// sendCancel enqueues a best-effort MsgCancel for an abandoned stream so
// the server stops (or never starts) the work. A full send queue drops
// the frame: the connection is congested and the server will shed the
// expired request at admission from its propagated deadline.
func (m *muxConn) sendCancel(id uint64) {
	select {
	case m.sendq <- muxWrite{msg: &wire.Message{Type: wire.MsgCancel, ID: id}}:
	default:
	}
}

// call runs one exchange over the multiplexed connection: register the
// stream, enqueue the request frame, and wait for the demuxed reply. The
// returned byte count covers both frames, for the traffic log.
//
// Failure classification mirrors the serial client's contract:
//
//   - Context cancellation or expiry abandons the stream, sends a
//     best-effort cancel frame, and returns a *DeadlineError. The
//     connection stays healthy — other streams proceed untouched.
//   - An effTimeout expiry while budgetBound (the context's remaining
//     budget was the binding constraint) is the same deadline expiry,
//     classified identically.
//   - An effTimeout expiry that is NOT budget-bound is the per-exchange
//     flat timeout: the server went silent past the liveness bound, so
//     the whole connection is broken and the failure is a
//     *TransportError — exactly as the serial client treated a read
//     timeout — and the owner redials on the next exchange.
//   - Connection death (reader or writer fault, possibly from a sibling
//     stream's flat timeout) returns the connection's classified cause.
func (m *muxConn) call(ctx context.Context, msg *wire.Message, effTimeout time.Duration, budgetBound bool) (*wire.Message, int64, error) {
	p := &pending{reply: make(chan *wire.Message, 1)}
	if err := m.register(msg.ID, p); err != nil {
		return nil, 0, err
	}

	var timeC <-chan time.Time
	if effTimeout > 0 {
		timer := time.NewTimer(effTimeout)
		defer timer.Stop()
		timeC = timer.C
	}

	// Enqueue the request frame. Nothing has been sent until the writer
	// picks it up, so abandoning here needs no cancel frame.
	select {
	case m.sendq <- muxWrite{msg: msg, id: msg.ID}:
	case <-m.done:
		m.unregister(msg.ID)
		return nil, 0, m.failure()
	case <-ctx.Done():
		m.unregister(msg.ID)
		return nil, 0, &DeadlineError{Op: "exchange", Addr: m.addr, Err: ctx.Err()}
	case <-timeC:
		m.unregister(msg.ID)
		if budgetBound {
			return nil, 0, &DeadlineError{Op: "exchange", Addr: m.addr, Err: context.DeadlineExceeded}
		}
		m.fail(&TransportError{Op: "write", Addr: m.addr, Err: os.ErrDeadlineExceeded})
		return nil, 0, m.failure()
	}

	finish := func(reply *wire.Message) (*wire.Message, int64, error) {
		m.mu.Lock()
		bytes := int64(p.sent + p.received)
		m.mu.Unlock()
		return reply, bytes, nil
	}

	select {
	case reply := <-p.reply:
		return finish(reply)
	case <-m.done:
		m.unregister(msg.ID)
		// The reply may have been delivered in the race window before
		// the failure; prefer it.
		select {
		case reply := <-p.reply:
			return finish(reply)
		default:
		}
		return nil, 0, m.failure()
	case <-ctx.Done():
		m.unregister(msg.ID)
		select {
		case reply := <-p.reply:
			return finish(reply)
		default:
		}
		m.sendCancel(msg.ID)
		return nil, 0, &DeadlineError{Op: "exchange", Addr: m.addr, Err: ctx.Err()}
	case <-timeC:
		m.unregister(msg.ID)
		select {
		case reply := <-p.reply:
			return finish(reply)
		default:
		}
		if budgetBound {
			m.sendCancel(msg.ID)
			return nil, 0, &DeadlineError{Op: "exchange", Addr: m.addr, Err: context.DeadlineExceeded}
		}
		m.fail(&TransportError{Op: "read", Addr: m.addr, Err: os.ErrDeadlineExceeded})
		return nil, 0, m.failure()
	}
}
