package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"spectra/internal/wire"
)

func startTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(func() *wire.ServerStatus {
		return &wire.ServerStatus{Name: "test", SpeedMHz: 500, AvailMHz: 400}
	})
	srv.Register("echo", func(optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
		return append([]byte(optype+":"), payload...), &wire.UsageReport{CPUMegacycles: 5}, nil
	})
	srv.Register("fail", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		return nil, nil, errors.New("service exploded")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestClientServerCall(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, usage, err := c.Call("echo", "greet", []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte("greet:world")) {
		t.Fatalf("response = %q", out)
	}
	if usage == nil || usage.CPUMegacycles != 5 {
		t.Fatalf("usage = %+v", usage)
	}
	if c.Traffic().Len() != 1 {
		t.Fatalf("traffic observations = %d, want 1", c.Traffic().Len())
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Call("fail", "x", nil)
	var rerr *RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if rerr.Service != "fail" || rerr.Msg != "service exploded" {
		t.Fatalf("remote error = %+v", rerr)
	}
}

func TestUnknownService(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Call("nope", "x", nil)
	var rerr *RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("want RemoteError for unknown service, got %v", err)
	}
}

func TestStatus(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "test" || st.SpeedMHz != 500 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Services) != 2 {
		t.Fatalf("services = %v, want echo+fail", st.Services)
	}
}

func TestPing(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	d, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("ping duration = %v", d)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Fatal("dialing a closed port should fail")
	}
}

func TestClientClosedCall(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := c.Call("echo", "x", nil); err == nil {
		t.Fatal("call on closed client should fail")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Call("echo", "x", nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	c.SetTimeout(500 * time.Millisecond)
	if _, _, err := c.Call("echo", "x", nil); err == nil {
		t.Fatal("call after server close should fail")
	}
}

func TestSequentialCallsShareConnection(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("msg-%d", i))
		out, _, err := c.Call("echo", "op", payload)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		want := append([]byte("op:"), payload...)
		if !bytes.Equal(out, want) {
			t.Fatalf("call %d response = %q, want %q", i, out, want)
		}
	}
	if got := c.Traffic().Len(); got != 20 {
		t.Fatalf("traffic observations = %d, want 20", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startTestServer(t)
	const clients = 8
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			c, err := Dial(addr, nil)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				if _, _, err := c.Call("echo", "op", []byte{byte(i), byte(j)}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegisterReplaces(t *testing.T) {
	srv, addr := startTestServer(t)
	srv.Register("echo", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		return []byte("v2"), nil, nil
	})
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, _, err := c.Call("echo", "op", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "v2" {
		t.Fatalf("response = %q, want v2", out)
	}
}
