package rpc

import (
	"fmt"
	"net"
	"sync"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// Handler executes one service request on a Spectra server. It returns the
// response payload and a report of the resources consumed, which the server
// attaches to the RPC response (paper §3.3.5).
type Handler func(optype string, payload []byte) ([]byte, *wire.UsageReport, error)

// StatusFunc produces the server's current resource snapshot.
type StatusFunc func() *wire.ServerStatus

// Server accepts Spectra RPC connections and dispatches requests to
// registered service handlers. Each connection is served by its own
// goroutine; Close stops the listener and waits for them to drain.
type Server struct {
	mu       sync.Mutex
	services map[string]Handler
	status   StatusFunc

	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool

	// Observability (see SetObserver). obsName labels server-side spans;
	// sink receives one thin DecisionTrace per handled request; the metric
	// handles are nil-safe no-ops when unset.
	obsName      string
	sink         obs.TraceSink
	mRequests    *obs.Counter
	mErrors      *obs.Counter
	mExecSeconds *obs.Histogram
}

// NewServer returns a server with no services registered.
func NewServer(status StatusFunc) *Server {
	return &Server{
		services: make(map[string]Handler),
		status:   status,
		conns:    make(map[net.Conn]struct{}),
	}
}

// SetObserver enables server-side observability: requests are counted and
// timed in the observer's registry, and each handled request is emitted to
// the observer's trace sink as a thin DecisionTrace (OpID = the caller's
// trace ID when one was propagated, Operation = "service/optype") carrying
// the queue/exec/respond spans — the server's own flight-recorder view of
// the work clients sent it. name labels the spans' Origin. A nil observer
// detaches.
func (s *Server) SetObserver(name string, o *obs.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o == nil {
		s.obsName, s.sink, s.mRequests, s.mErrors, s.mExecSeconds = "", nil, nil, nil, nil
		return
	}
	s.obsName = name
	s.sink = o.Sink
	if o.Registry != nil {
		s.mRequests = o.Registry.Counter(obs.MServerRequests)
		s.mErrors = o.Registry.Counter(obs.MServerErrors)
		s.mExecSeconds = o.Registry.Histogram(obs.MServerExecSeconds, obs.DefaultLatencyBuckets)
	}
}

// Register adds a service. Registering an existing name replaces it.
func (s *Server) Register(service string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.services[service] = h
}

// Services returns the registered service names.
func (s *Server) Services() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.services))
	for name := range s.services {
		out = append(out, name)
	}
	return out
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts
// accepting connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", &TransportError{Op: "listen", Addr: addr, Err: err}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrServerClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener, closes open connections, and waits for all
// serving goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	for {
		msg, _, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		recv := time.Now()
		reply := s.handle(msg, recv)
		if reply == nil {
			continue
		}
		if _, err := wire.WriteMessage(conn, reply); err != nil {
			return
		}
	}
}

func (s *Server) handle(msg *wire.Message, recv time.Time) *wire.Message {
	switch msg.Type {
	case wire.MsgPing:
		return &wire.Message{Type: wire.MsgPong, ID: msg.ID}
	case wire.MsgStatus:
		reply := &wire.Message{Type: wire.MsgStatusReply, ID: msg.ID}
		if s.status != nil {
			st := s.status()
			if st != nil {
				st.Services = s.Services()
			}
			reply.Status = st
		}
		return reply
	case wire.MsgRequest:
		return s.handleRequest(msg, recv)
	default:
		return &wire.Message{
			Type: wire.MsgResponse,
			ID:   msg.ID,
			Err:  fmt.Sprintf("unexpected message type %v", msg.Type),
		}
	}
}

func (s *Server) handleRequest(msg *wire.Message, recv time.Time) *wire.Message {
	s.mu.Lock()
	h, ok := s.services[msg.Service]
	name, sink := s.obsName, s.sink
	reqs, errsC, execH := s.mRequests, s.mErrors, s.mExecSeconds
	s.mu.Unlock()

	reply := &wire.Message{Type: wire.MsgResponse, ID: msg.ID, Service: msg.Service}
	if !ok {
		reply.Err = fmt.Sprintf("unknown service %q", msg.Service)
		errsC.Inc()
		return reply
	}

	// Timestamps are taken only when someone will consume them: a traced
	// request needs span records, an observed server wants metrics and its
	// own trace. The plain path stays clock-free beyond recv.
	traced := msg.Trace != nil
	observed := sink != nil || reqs != nil
	var dispatch, execEnd time.Time
	if traced || observed {
		dispatch = time.Now()
	}
	out, usage, err := h(msg.OpType, msg.Payload)
	if traced || observed {
		execEnd = time.Now()
	}
	if err != nil {
		reply.Err = err.Error()
		reply.Usage = usage
	} else {
		reply.Payload = out
		reply.Usage = usage
	}

	if traced || observed {
		respondEnd := time.Now()
		queueNs := dispatch.Sub(recv).Nanoseconds()
		execNs := execEnd.Sub(dispatch).Nanoseconds()
		recs := []wire.SpanRecord{
			{Name: obs.SpanServerQueue, StartOffsetNs: 0, DurationNs: queueNs},
			{Name: obs.SpanServerExec, StartOffsetNs: queueNs, DurationNs: execNs},
			{Name: obs.SpanServerRespond, StartOffsetNs: queueNs + execNs, DurationNs: respondEnd.Sub(execEnd).Nanoseconds()},
		}
		if traced {
			reply.Trace = msg.Trace
			reply.Spans = recs
		}
		reqs.Inc()
		if err != nil {
			errsC.Inc()
		}
		execH.Observe(execEnd.Sub(dispatch).Seconds())
		if sink != nil {
			var traceID uint64
			if traced {
				traceID = msg.Trace.TraceID
			}
			sink.Emit(&obs.DecisionTrace{
				OpID:      traceID,
				Operation: msg.Service + "/" + msg.OpType,
				Begin:     recv,
				End:       respondEnd,
				Aborted:   err != nil,
				Spans:     RebaseSpans(name, recv, 0, recs),
			})
		}
	}
	return reply
}
