package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"spectra/internal/wire"
)

// Handler executes one service request on a Spectra server. It returns the
// response payload and a report of the resources consumed, which the server
// attaches to the RPC response (paper §3.3.5).
type Handler func(optype string, payload []byte) ([]byte, *wire.UsageReport, error)

// StatusFunc produces the server's current resource snapshot.
type StatusFunc func() *wire.ServerStatus

// Server accepts Spectra RPC connections and dispatches requests to
// registered service handlers. Each connection is served by its own
// goroutine; Close stops the listener and waits for them to drain.
type Server struct {
	mu       sync.Mutex
	services map[string]Handler
	status   StatusFunc

	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer returns a server with no services registered.
func NewServer(status StatusFunc) *Server {
	return &Server{
		services: make(map[string]Handler),
		status:   status,
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register adds a service. Registering an existing name replaces it.
func (s *Server) Register(service string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.services[service] = h
}

// Services returns the registered service names.
func (s *Server) Services() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.services))
	for name := range s.services {
		out = append(out, name)
	}
	return out
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts
// accepting connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("rpc: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener, closes open connections, and waits for all
// serving goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	for {
		msg, _, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		reply := s.handle(msg)
		if reply == nil {
			continue
		}
		if _, err := wire.WriteMessage(conn, reply); err != nil {
			return
		}
	}
}

func (s *Server) handle(msg *wire.Message) *wire.Message {
	switch msg.Type {
	case wire.MsgPing:
		return &wire.Message{Type: wire.MsgPong, ID: msg.ID}
	case wire.MsgStatus:
		reply := &wire.Message{Type: wire.MsgStatusReply, ID: msg.ID}
		if s.status != nil {
			st := s.status()
			if st != nil {
				st.Services = s.Services()
			}
			reply.Status = st
		}
		return reply
	case wire.MsgRequest:
		return s.handleRequest(msg)
	default:
		return &wire.Message{
			Type: wire.MsgResponse,
			ID:   msg.ID,
			Err:  fmt.Sprintf("unexpected message type %v", msg.Type),
		}
	}
}

func (s *Server) handleRequest(msg *wire.Message) *wire.Message {
	s.mu.Lock()
	h, ok := s.services[msg.Service]
	s.mu.Unlock()

	reply := &wire.Message{Type: wire.MsgResponse, ID: msg.ID, Service: msg.Service}
	if !ok {
		reply.Err = fmt.Sprintf("unknown service %q", msg.Service)
		return reply
	}
	out, usage, err := h(msg.OpType, msg.Payload)
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	reply.Payload = out
	reply.Usage = usage
	return reply
}
