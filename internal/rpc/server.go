package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// Handler executes one service request on a Spectra server. It returns the
// response payload and a report of the resources consumed, which the server
// attaches to the RPC response (paper §3.3.5).
type Handler func(optype string, payload []byte) ([]byte, *wire.UsageReport, error)

// CtxHandler is a Handler that additionally observes per-stream
// cancellation: ctx is cancelled when the client abandons the request (a
// wire.MsgCancel frame for this stream) or its connection drops, so a
// long-running service can stop burning resources for a reply nobody
// will read. Handlers registered through Register ignore ctx; use
// RegisterContext for cancellation-aware services.
type CtxHandler func(ctx context.Context, optype string, payload []byte) ([]byte, *wire.UsageReport, error)

// StatusFunc produces the server's current resource snapshot.
type StatusFunc func() *wire.ServerStatus

// ServerLimits bounds concurrent request execution. A single multiplexed
// connection can push many requests at once; the worker bound keeps the
// server's measured compute honest (unbounded concurrency would thrash the
// very CPU signal the client's predictors rely on), and the queue bound
// sheds overload as classified wire.CodeOverloaded rejections instead of
// letting latency pile up invisibly.
type ServerLimits struct {
	// MaxConcurrent caps requests executing simultaneously; 0 disables
	// admission control entirely (every request executes immediately).
	MaxConcurrent int
	// MaxQueue caps requests waiting for a worker slot beyond
	// MaxConcurrent; once exceeded, requests are shed. 0 means no waiting:
	// any request arriving with all workers busy is shed immediately.
	MaxQueue int
}

// Server accepts Spectra RPC connections and dispatches requests to
// registered service handlers. Connections are multiplexed: a read loop
// per connection decodes frames and dispatches each request to its own
// goroutine (bounded by the admission-control worker pool), replies are
// written back through a per-connection serialized writer as handlers
// complete — out of order when executions overlap — and a MsgCancel
// frame cancels the named in-flight stream. Close stops the listener and
// waits for read loops and dispatched handlers to drain.
type Server struct {
	mu       sync.Mutex
	services map[string]CtxHandler
	status   StatusFunc

	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool

	// Admission control (see SetLimits). workers is a counting semaphore
	// of execution slots; queued tracks requests blocked waiting for one.
	// shedExpired enables deadline-aware admission: requests whose
	// propagated budget has already run out are answered
	// wire.CodeDeadlineExceeded without executing.
	limits      ServerLimits
	workers     chan struct{}
	queued      atomic.Int64
	shedExpired bool

	// Observability (see SetObserver). obsName labels server-side spans;
	// sink receives one thin DecisionTrace per handled request; the metric
	// handles are nil-safe no-ops when unset.
	obsName      string
	sink         obs.TraceSink
	mRequests    *obs.Counter
	mErrors      *obs.Counter
	mExecSeconds *obs.Histogram
	mRejected    *obs.Counter
	gQueueDepth  *obs.Gauge
	mQueueWait   *obs.Histogram
	mDeadline    *obs.Counter
}

// NewServer returns a server with no services registered. Deadline-aware
// shedding is on by default; see SetShedExpired.
func NewServer(status StatusFunc) *Server {
	return &Server{
		services:    make(map[string]CtxHandler),
		status:      status,
		conns:       make(map[net.Conn]struct{}),
		shedExpired: true,
	}
}

// SetShedExpired toggles deadline-aware admission. When on (the default),
// a request carrying a wire.DeadlineContext whose budget has expired — on
// arrival, while queued for a worker slot, or by the time a slot is
// finally granted — is shed with wire.CodeDeadlineExceeded instead of
// executed: the client has already abandoned the reply, so running the
// work would burn a worker slot for nobody. Requests without a deadline
// are unaffected.
func (s *Server) SetShedExpired(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shedExpired = on
}

// SetObserver enables server-side observability: requests are counted and
// timed in the observer's registry, and each handled request is emitted to
// the observer's trace sink as a thin DecisionTrace (OpID = the caller's
// trace ID when one was propagated, Operation = "service/optype") carrying
// the queue/exec/respond spans — the server's own flight-recorder view of
// the work clients sent it. name labels the spans' Origin. A nil observer
// detaches.
func (s *Server) SetObserver(name string, o *obs.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o == nil {
		s.obsName, s.sink, s.mRequests, s.mErrors, s.mExecSeconds = "", nil, nil, nil, nil
		s.mRejected, s.gQueueDepth, s.mQueueWait, s.mDeadline = nil, nil, nil, nil
		return
	}
	s.obsName = name
	s.sink = o.Sink
	if o.Registry != nil {
		s.mRequests = o.Registry.Counter(obs.MServerRequests)
		s.mErrors = o.Registry.Counter(obs.MServerErrors)
		s.mExecSeconds = o.Registry.Histogram(obs.MServerExecSeconds, obs.DefaultLatencyBuckets)
		s.mRejected = o.Registry.Counter(obs.MServerQueueRejected)
		s.gQueueDepth = o.Registry.Gauge(obs.MServerQueueDepth)
		s.mQueueWait = o.Registry.Histogram(obs.MServerQueueWaitSeconds, obs.DefaultLatencyBuckets)
		s.mDeadline = o.Registry.Counter(obs.MServerDeadlineShed)
	}
}

// SetLimits installs admission control: at most MaxConcurrent requests
// execute at once, at most MaxQueue more wait for a slot, and anything
// beyond that is shed with a wire.CodeOverloaded response. Ping and Status
// exchanges bypass admission — health checks and resource polling must keep
// working on an overloaded server. Set limits before Listen; changing them
// while requests are in flight miscounts slots held on the old semaphore.
// A zero MaxConcurrent disables admission control.
func (s *Server) SetLimits(l ServerLimits) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limits = l
	if l.MaxConcurrent > 0 {
		s.workers = make(chan struct{}, l.MaxConcurrent)
	} else {
		s.workers = nil
	}
}

// Limits returns the installed admission-control bounds.
func (s *Server) Limits() ServerLimits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limits
}

// Register adds a service that ignores cancellation. Registering an
// existing name replaces it.
func (s *Server) Register(service string, h Handler) {
	s.RegisterContext(service, func(_ context.Context, optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
		return h(optype, payload)
	})
}

// RegisterContext adds a cancellation-aware service: the handler's ctx is
// cancelled when the client abandons the stream or the connection drops.
// Registering an existing name replaces it.
func (s *Server) RegisterContext(service string, h CtxHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.services[service] = h
}

// Services returns the registered service names.
func (s *Server) Services() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.services))
	for name := range s.services {
		out = append(out, name)
	}
	return out
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts
// accepting connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", &TransportError{Op: "listen", Addr: addr, Err: err}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrServerClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener, closes open connections, and waits for all
// serving goroutines — read loops and dispatched handlers — to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connState is the server side of one multiplexed connection: a
// serialized writer (handlers finish concurrently, frames must not
// interleave) and the registry of in-flight streams a MsgCancel frame
// can target.
type connState struct {
	conn net.Conn

	wmu sync.Mutex // serializes reply frames from concurrent handlers

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc
}

// write frames one reply, serialized against concurrent handlers.
func (cs *connState) write(m *wire.Message) error {
	cs.wmu.Lock()
	defer cs.wmu.Unlock()
	_, err := wire.WriteMessage(cs.conn, m)
	return err
}

// track registers a stream's cancel function, refusing duplicates: an ID
// already in flight on this connection is a protocol violation.
func (cs *connState) track(id uint64, cancel context.CancelFunc) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, dup := cs.inflight[id]; dup {
		return false
	}
	cs.inflight[id] = cancel
	return true
}

// untrack forgets a completed stream.
func (cs *connState) untrack(id uint64) {
	cs.mu.Lock()
	delete(cs.inflight, id)
	cs.mu.Unlock()
}

// cancel fires the named stream's cancel function, if it is still in
// flight. Cancels for unknown IDs — already answered, never seen — are
// ignored; the frame is advisory.
func (cs *connState) cancel(id uint64) {
	cs.mu.Lock()
	fn := cs.inflight[id]
	cs.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// cancelAll fires every in-flight stream's cancel function; the
// connection is gone, so no reply can reach any of them.
func (cs *connState) cancelAll() {
	cs.mu.Lock()
	fns := make([]context.CancelFunc, 0, len(cs.inflight))
	for _, fn := range cs.inflight {
		fns = append(fns, fn)
	}
	cs.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// serveConn is one connection's read loop. It never blocks on request
// execution: each decoded request is dispatched to its own goroutine
// (admission control bounds how many actually execute) so a slow handler
// cannot head-of-line-block the frames behind it, and replies are
// written back through the serialized writer as handlers complete.
// MsgCancel frames cancel the named stream; a dropped connection cancels
// every stream it carried.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	cs := &connState{conn: conn, inflight: make(map[uint64]context.CancelFunc)}
	defer func() {
		cs.cancelAll()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	for {
		msg, _, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		recv := time.Now()
		switch msg.Type {
		case wire.MsgCancel:
			cs.cancel(msg.ID)
		case wire.MsgRequest:
			ctx, cancel := context.WithCancel(context.Background())
			if !cs.track(msg.ID, cancel) {
				cancel()
				reply := &wire.Message{
					Type: wire.MsgResponse,
					ID:   msg.ID,
					Err:  fmt.Sprintf("duplicate in-flight stream id %d", msg.ID),
				}
				if err := cs.write(reply); err != nil {
					return
				}
				continue
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer cs.untrack(msg.ID)
				defer cancel()
				reply := s.handleRequest(ctx, msg, recv)
				if reply == nil {
					// Cancelled: the stream's client is gone; there is
					// nobody to write to.
					return
				}
				// A write fault here poisons the connection; the read
				// loop notices on its next read and tears down.
				cs.write(reply)
			}()
		default:
			// Ping, Status, and protocol errors are answered inline:
			// they are cheap, bypass admission control (health checks
			// must keep working on an overloaded server), and carry no
			// cancellable work.
			reply := s.handle(msg, recv)
			if reply == nil {
				continue
			}
			if err := cs.write(reply); err != nil {
				return
			}
		}
	}
}

func (s *Server) handle(msg *wire.Message, recv time.Time) *wire.Message {
	switch msg.Type {
	case wire.MsgPing:
		return &wire.Message{Type: wire.MsgPong, ID: msg.ID}
	case wire.MsgStatus:
		reply := &wire.Message{Type: wire.MsgStatusReply, ID: msg.ID}
		if s.status != nil {
			st := s.status()
			if st != nil {
				st.Services = s.Services()
			}
			reply.Status = st
		}
		return reply
	default:
		return &wire.Message{
			Type: wire.MsgResponse,
			ID:   msg.ID,
			Err:  fmt.Sprintf("unexpected message type %v", msg.Type),
		}
	}
}

// handleRequest executes one dispatched request: deadline-aware
// admission, the bounded worker pool, the handler itself, and span
// accounting. A nil return means the stream was cancelled — the client
// abandoned it, so no reply is written.
func (s *Server) handleRequest(ctx context.Context, msg *wire.Message, recv time.Time) *wire.Message {
	s.mu.Lock()
	h, ok := s.services[msg.Service]
	name, sink := s.obsName, s.sink
	reqs, errsC, execH := s.mRequests, s.mErrors, s.mExecSeconds
	limits, workers := s.limits, s.workers
	rejected, queueDepth, queueWait := s.mRejected, s.gQueueDepth, s.mQueueWait
	shedExpired, deadlineShed := s.shedExpired, s.mDeadline
	s.mu.Unlock()

	reply := &wire.Message{Type: wire.MsgResponse, ID: msg.ID, Service: msg.Service}
	if !ok {
		reply.Err = fmt.Sprintf("unknown service %q", msg.Service)
		errsC.Inc()
		return reply
	}
	if ctx.Err() != nil {
		return nil
	}

	// Deadline-aware admission: a propagated budget is measured from recv
	// on the server's own clock (the wire format is relative, so no clock
	// synchronization is assumed). expiry stays zero when the request
	// carries no deadline or shedding is disabled.
	var expiry time.Time
	if shedExpired && msg.Deadline != nil {
		expiry = recv.Add(msg.Deadline.Budget())
		if !time.Now().Before(expiry) {
			deadlineShed.Inc()
			reply.Code = wire.CodeDeadlineExceeded
			reply.Err = "deadline expired before execution"
			return reply
		}
	}

	// Admission control: acquire a worker slot or shed. The wait (if any)
	// lands inside the queue span, since dispatch is stamped after it, and
	// is bounded by the request's remaining budget and its cancellation:
	// work that would only start after its client gave up is shed at
	// dequeue instead of run.
	if workers != nil {
		select {
		case workers <- struct{}{}:
		default:
			q := s.queued.Add(1)
			if int(q) > limits.MaxQueue {
				s.queued.Add(-1)
				rejected.Inc()
				reply.Code = wire.CodeOverloaded
				reply.Err = fmt.Sprintf(
					"overloaded: %d executing, %d queued", limits.MaxConcurrent, limits.MaxQueue)
				return reply
			}
			queueDepth.Set(float64(q))
			waitStart := time.Now()
			if expiry.IsZero() {
				select {
				case workers <- struct{}{}:
				case <-ctx.Done():
					queueDepth.Set(float64(s.queued.Add(-1)))
					return nil
				}
			} else {
				timer := time.NewTimer(time.Until(expiry))
				select {
				case workers <- struct{}{}:
					timer.Stop()
				case <-ctx.Done():
					timer.Stop()
					queueDepth.Set(float64(s.queued.Add(-1)))
					return nil
				case <-timer.C:
					queueDepth.Set(float64(s.queued.Add(-1)))
					deadlineShed.Inc()
					reply.Code = wire.CodeDeadlineExceeded
					reply.Err = "deadline expired while queued"
					return reply
				}
			}
			queueDepth.Set(float64(s.queued.Add(-1)))
			queueWait.Observe(time.Since(waitStart).Seconds())
		}
		defer func() { <-workers }()

		// Re-check after winning a slot: the semaphore send can race the
		// timer, and on an overloaded server the grant itself may arrive
		// after the budget ran out.
		if !expiry.IsZero() && !time.Now().Before(expiry) {
			deadlineShed.Inc()
			reply.Code = wire.CodeDeadlineExceeded
			reply.Err = "deadline expired while queued"
			return reply
		}
	}
	// A cancel that landed while queued means the client is gone: drop
	// the work before burning the slot on it.
	if ctx.Err() != nil {
		return nil
	}

	// Timestamps are taken only when someone will consume them: a traced
	// request needs span records, an observed server wants metrics and its
	// own trace. The plain path stays clock-free beyond recv.
	traced := msg.Trace != nil
	observed := sink != nil || reqs != nil
	var dispatch, execEnd time.Time
	if traced || observed {
		dispatch = time.Now()
	}
	out, usage, err := h(ctx, msg.OpType, msg.Payload)
	if traced || observed {
		execEnd = time.Now()
	}
	if err != nil {
		reply.Err = err.Error()
		reply.Usage = usage
	} else {
		reply.Payload = out
		reply.Usage = usage
	}

	if traced || observed {
		respondEnd := time.Now()
		queueNs := dispatch.Sub(recv).Nanoseconds()
		execNs := execEnd.Sub(dispatch).Nanoseconds()
		recs := []wire.SpanRecord{
			{Name: obs.SpanServerQueue, StartOffsetNs: 0, DurationNs: queueNs},
			{Name: obs.SpanServerExec, StartOffsetNs: queueNs, DurationNs: execNs},
			{Name: obs.SpanServerRespond, StartOffsetNs: queueNs + execNs, DurationNs: respondEnd.Sub(execEnd).Nanoseconds()},
		}
		if traced {
			reply.Trace = msg.Trace
			reply.Spans = recs
		}
		reqs.Inc()
		if err != nil {
			errsC.Inc()
		}
		execH.Observe(execEnd.Sub(dispatch).Seconds())
		if sink != nil {
			var traceID uint64
			if traced {
				traceID = msg.Trace.TraceID
			}
			sink.Emit(&obs.DecisionTrace{
				OpID:      traceID,
				Operation: msg.Service + "/" + msg.OpType,
				Begin:     recv,
				End:       respondEnd,
				Aborted:   err != nil,
				Spans:     RebaseSpans(name, recv, 0, recs),
			})
		}
	}
	// A stream cancelled mid-execution has nobody waiting: the work is
	// accounted above, but the reply is not worth the bytes.
	if ctx.Err() != nil {
		return nil
	}
	return reply
}
