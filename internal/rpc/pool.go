package rpc

import (
	"context"
	"errors"
	"sync"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// Pool sentinel errors. Like the client/server lifecycle sentinels they are
// deliberately unclassified: a closed pool is permanent and exhaustion is a
// local admission decision, so neither should engage transport-level retry.
var (
	// ErrPoolClosed reports a checkout attempted on a Close()d pool.
	ErrPoolClosed = errors.New("rpc: pool closed")
	// ErrPoolExhausted reports a checkout rejected because every connection
	// was busy and either the waiter cap was reached or the wait outlived
	// the operation's budget. Deadline-bounded waits return it wrapped in a
	// *DeadlineError, so errors.Is(err, ErrPoolExhausted) holds for both.
	ErrPoolExhausted = errors.New("rpc: pool exhausted")
)

// DefaultPoolSize is the connection cap used when PoolOptions.Size is zero.
const DefaultPoolSize = 4

// PoolOptions tunes a connection pool.
type PoolOptions struct {
	// Size caps the number of live connections; 0 selects DefaultPoolSize.
	Size int
	// MaxWaiters caps how many checkouts may block waiting for a connection
	// when the pool is at capacity; 0 means unlimited, negative means no
	// waiting (immediate ErrPoolExhausted at capacity).
	MaxWaiters int
	// Timeout is the per-exchange deadline applied to pooled clients; 0
	// keeps the client default.
	Timeout time.Duration
	// Retry is the retry policy applied to pooled clients' idempotent
	// exchanges.
	Retry RetryPolicy
}

func (o PoolOptions) size() int {
	if o.Size <= 0 {
		return DefaultPoolSize
	}
	return o.Size
}

// Pool is a bounded set of RPC clients to one server, letting independent
// operations overlap their exchanges instead of serializing on a single
// connection's mutex. Connections are created lazily (each Client dials on
// first use), checked out per call, and checked back in afterward; a
// transport fault evicts the faulty connection so its slot is re-created
// fresh, while application errors and admission-control sheds return the
// connection — which is healthy — to the idle set.
//
// The pool never holds its mutex across network I/O: checkout and checkin
// only move *Client values between slices, and the exchange itself runs on
// the checked-out client outside the pool lock. Waiting for a free
// connection parks the checkout on a per-waiter hand-off channel so the
// wait can be abandoned when the operation's deadline expires — the
// unbounded sync.Cond wait this replaces was the dominant p99 tail term.
// All clients of one pool share a RetryBudget, bounding the aggregate
// retry rate during correlated outages.
type Pool struct {
	mu sync.Mutex

	addr    string
	traffic *TrafficLog
	opts    PoolOptions
	budget  *RetryBudget

	idle    []*Client      // connections ready for checkout
	live    int            // connections existing (idle + checked out)
	waitq   []chan *Client // parked checkouts, oldest first; buffered cap 1
	seq     uint64         // jitter-seed salt for the next created client
	evicted int            // connections discarded after transport faults
	closed  bool

	// Observability handles (nil-safe no-ops when unset).
	registry   *obs.Registry
	mCreated   *obs.Counter
	mEvicted   *obs.Counter
	mWaits     *obs.Counter
	mExhausted *obs.Counter
	gInUse     *obs.Gauge
}

// NewPool returns a pool of lazily dialed connections to addr. The traffic
// log may be shared with a network monitor; pass nil to create a private
// one. No connection is dialed until the first call needs one.
func NewPool(addr string, traffic *TrafficLog, opts PoolOptions) *Pool {
	if traffic == nil {
		traffic = NewTrafficLog()
	}
	return &Pool{
		addr:    addr,
		traffic: traffic,
		opts:    opts,
		budget:  NewRetryBudget(0, 0),
	}
}

// Addr returns the server address.
func (p *Pool) Addr() string { return p.addr }

// Traffic returns the shared traffic log.
func (p *Pool) Traffic() *TrafficLog { return p.traffic }

// Size returns the pool's connection cap.
func (p *Pool) Size() int { return p.opts.size() }

// RetryBudget returns the shared retry token bucket all of this pool's
// clients draw from.
func (p *Pool) RetryBudget() *RetryBudget { return p.budget }

// SetMetrics attaches the metrics registry: connection churn, waiter
// pressure, and in-use depth flow into it. A nil registry detaches.
func (p *Pool) SetMetrics(reg *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registry = reg
	p.mCreated = reg.Counter(obs.MPoolCreated)
	p.mEvicted = reg.Counter(obs.MPoolEvicted)
	p.mWaits = reg.Counter(obs.MPoolWaits)
	p.mExhausted = reg.Counter(obs.MPoolExhausted)
	p.gInUse = reg.Gauge(obs.MPoolInUse)
	for _, c := range p.idle {
		c.SetMetrics(reg)
	}
}

// SetTimeout sets the per-exchange deadline for all connections, current
// and future.
func (p *Pool) SetTimeout(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d > 0 {
		p.opts.Timeout = d
	}
	for _, c := range p.idle {
		c.SetTimeout(d)
	}
}

// SetRetryPolicy tunes automatic retries of idempotent exchanges for all
// connections, current and future.
func (p *Pool) SetRetryPolicy(policy RetryPolicy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.opts.Retry = policy
	for _, c := range p.idle {
		c.SetRetryPolicy(policy)
	}
}

// PoolStats is a point-in-time view of pool occupancy, for tests and
// debugging.
type PoolStats struct {
	// Live counts existing connections (idle + checked out).
	Live int
	// Idle counts connections ready for checkout.
	Idle int
	// Waiters counts checkouts blocked waiting for a free connection.
	Waiters int
	// Created counts every connection the pool has made.
	Created int
	// Evicted counts connections discarded after transport faults.
	Evicted int
}

// Stats returns current occupancy counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Live:    p.live,
		Idle:    len(p.idle),
		Waiters: len(p.waitq),
		Created: int(p.seq),
		Evicted: p.evicted,
	}
}

// Close shuts the pool down: idle connections are closed immediately,
// blocked checkouts fail with ErrPoolClosed, and connections currently
// checked out are closed at checkin.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	waiters := p.waitq
	p.waitq = nil
	p.mu.Unlock()

	for _, w := range waiters {
		w <- nil // wakes the parked checkout into ErrPoolClosed
	}
	var err error
	for _, c := range idle {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// checkout returns a connection for exclusive use. It prefers an idle
// connection, creates one if below the cap, and otherwise parks on the
// wait queue until a checkin hands one over — or until the context
// expires, in which case it fails promptly with a *DeadlineError wrapping
// ErrPoolExhausted instead of blocking past any useful deadline. The
// matching checkin must always follow a successful checkout.
func (p *Pool) checkout(ctx context.Context) (*Client, error) {
	if err := ctx.Err(); err != nil {
		return nil, &DeadlineError{Op: "checkout", Addr: p.addr, Err: err}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.gInUse.Set(float64(p.live - len(p.idle)))
		p.mu.Unlock()
		return c, nil
	}
	if p.live < p.opts.size() {
		c := p.newClientLocked()
		p.live++
		p.gInUse.Set(float64(p.live - len(p.idle)))
		p.mu.Unlock()
		return c, nil
	}
	if p.opts.MaxWaiters < 0 || (p.opts.MaxWaiters > 0 && len(p.waitq) >= p.opts.MaxWaiters) {
		p.mExhausted.Inc()
		p.mu.Unlock()
		return nil, ErrPoolExhausted
	}
	w := make(chan *Client, 1)
	p.waitq = append(p.waitq, w)
	p.mWaits.Inc()
	p.mu.Unlock()

	select {
	case c := <-w:
		if c == nil {
			return nil, ErrPoolClosed
		}
		return c, nil
	case <-ctx.Done():
	}
	// The wait was abandoned — unless a grant is already in flight: a
	// checkin may have popped this waiter between the cancellation firing
	// and the lock below. If the waiter is no longer queued, collect the
	// granted connection and use it; the exchange fails fast on the
	// expired context and the connection is checked back in, so nothing
	// leaks.
	p.mu.Lock()
	if p.removeWaiterLocked(w) {
		p.mExhausted.Inc()
		p.mu.Unlock()
		return nil, &DeadlineError{
			Op:   "checkout",
			Addr: p.addr,
			Err:  errors.Join(ErrPoolExhausted, ctx.Err()),
		}
	}
	p.mu.Unlock()
	c := <-w
	if c == nil {
		return nil, ErrPoolClosed
	}
	return c, nil
}

// removeWaiterLocked unlinks a parked checkout, reporting whether it was
// still queued (false means a grant is in flight on its channel). The
// caller holds p.mu.
func (p *Pool) removeWaiterLocked(w chan *Client) bool {
	for i, q := range p.waitq {
		if q == w {
			p.waitq = append(p.waitq[:i], p.waitq[i+1:]...)
			return true
		}
	}
	return false
}

// popWaiterLocked dequeues the oldest parked checkout, or nil. The caller
// holds p.mu.
func (p *Pool) popWaiterLocked() chan *Client {
	if len(p.waitq) == 0 {
		return nil
	}
	w := p.waitq[0]
	p.waitq = p.waitq[1:]
	return w
}

// newClientLocked creates a connection slot. The client dials lazily, so no
// network I/O happens here under the pool lock. The caller holds p.mu.
func (p *Pool) newClientLocked() *Client {
	c := NewClient(p.addr, p.traffic)
	// Pooled siblings share an address; salt the jitter seed so their
	// backoff streams stay decorrelated.
	c.reseedJitter(p.seq)
	p.seq++
	if p.opts.Timeout > 0 {
		c.SetTimeout(p.opts.Timeout)
	}
	c.SetRetryPolicy(p.opts.Retry)
	c.SetRetryBudget(p.budget)
	if p.registry != nil {
		c.SetMetrics(p.registry)
	}
	p.mCreated.Inc()
	return c
}

// checkin returns a connection after use. err is the call's outcome: a
// transport fault evicts the connection (its stream cannot be trusted and
// the slot is better served by a fresh dial), anything else — success,
// remote application errors, admission-control sheds, deadline expiries —
// returns it to the idle set. A *DeadlineError never evicts even when its
// cause chain contains a transport fault: the client already discarded the
// broken stream and resyncs by redialing, so the slot stays warm. When
// checkouts are parked, the connection (or, after an eviction, a fresh
// replacement) is handed straight to the oldest waiter instead of waking
// it to re-contend. Channel hand-offs and Close happen outside the pool
// lock.
func (p *Pool) checkin(c *Client, err error) {
	var terr *TransportError
	evict := errors.As(err, &terr) && !IsDeadline(err)

	p.mu.Lock()
	if p.closed {
		p.live--
		p.mu.Unlock()
		c.Close()
		return
	}
	if evict {
		p.live--
		p.evicted++
		p.mEvicted.Inc()
		var w chan *Client
		var replacement *Client
		if len(p.waitq) > 0 {
			replacement = p.newClientLocked()
			p.live++
			w = p.popWaiterLocked()
		}
		p.gInUse.Set(float64(p.live - len(p.idle)))
		p.mu.Unlock()
		c.Close()
		if w != nil {
			w <- replacement
		}
		return
	}
	w := p.popWaiterLocked()
	if w == nil {
		p.idle = append(p.idle, c)
	}
	p.gInUse.Set(float64(p.live - len(p.idle)))
	p.mu.Unlock()
	if w != nil {
		w <- c
	}
}

// Call invokes a service operation on a pooled connection. Semantics match
// (*Client).Call: transport failures return *TransportError without
// retrying, remote failures return *RemoteError, admission-control sheds
// return *OverloadError.
func (p *Pool) Call(service, optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
	out, usage, _, err := p.CallTraced(service, optype, payload, nil)
	return out, usage, err
}

// CallTraced is Call with trace propagation, matching (*Client).CallTraced.
func (p *Pool) CallTraced(service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	return p.CallContext(context.Background(), service, optype, payload, tc)
}

// CallContext is CallTraced under an end-to-end deadline: the remaining
// budget bounds the pool checkout wait, the dial, and the exchange, and is
// propagated to the server, matching (*Client).CallContext.
func (p *Pool) CallContext(ctx context.Context, service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	c, err := p.checkout(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	out, usage, spans, err := c.CallContext(ctx, service, optype, payload, tc)
	p.checkin(c, err)
	return out, usage, spans, err
}

// Status fetches the server's resource snapshot on a pooled connection.
func (p *Pool) Status() (*wire.ServerStatus, error) {
	return p.StatusContext(context.Background())
}

// StatusContext is Status under a deadline.
func (p *Pool) StatusContext(ctx context.Context) (*wire.ServerStatus, error) {
	c, err := p.checkout(ctx)
	if err != nil {
		return nil, err
	}
	st, err := c.StatusContext(ctx)
	p.checkin(c, err)
	return st, err
}

// Ping performs a minimal round trip on a pooled connection.
func (p *Pool) Ping() (time.Duration, error) {
	c, err := p.checkout(context.Background())
	if err != nil {
		return 0, err
	}
	d, err := c.Ping()
	p.checkin(c, err)
	return d, err
}
