package rpc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// Pool sentinel errors. Like the client/server lifecycle sentinels they are
// deliberately unclassified: a closed pool is permanent and exhaustion is a
// local admission decision, so neither should engage transport-level retry.
var (
	// ErrPoolClosed reports a checkout attempted on a Close()d pool.
	ErrPoolClosed = errors.New("rpc: pool closed")
	// ErrPoolExhausted reports a checkout rejected because every stream
	// slot was busy and either the waiter cap was reached or the wait
	// outlived the operation's budget. Deadline-bounded waits return it
	// wrapped in a *DeadlineError, so errors.Is(err, ErrPoolExhausted)
	// holds for both.
	ErrPoolExhausted = errors.New("rpc: pool exhausted")
)

// DefaultPoolSize is the connection cap used when PoolOptions.Size is
// zero. Connections are multiplexed, so concurrency comes from stream
// slots, not connection count: two connections exist for redundancy (a
// flat-timeout fault on one does not strand every in-flight stream), not
// for parallelism.
const DefaultPoolSize = 2

// DefaultStreamsPerConn is the per-connection concurrent-stream cap used
// when PoolOptions.StreamsPerConn is zero.
const DefaultStreamsPerConn = 64

// PoolOptions tunes a connection pool.
type PoolOptions struct {
	// Size caps the number of multiplexed connections; 0 selects
	// DefaultPoolSize. 1 pins all streams to a single connection.
	Size int
	// StreamsPerConn caps concurrent in-flight streams per connection; 0
	// selects DefaultStreamsPerConn. Size × StreamsPerConn is the pool's
	// total concurrency.
	StreamsPerConn int
	// MaxWaiters caps how many checkouts may block waiting for a stream
	// slot when the pool is at capacity; 0 means unlimited, negative means
	// no waiting (immediate ErrPoolExhausted at capacity).
	MaxWaiters int
	// Timeout is the per-exchange flat timeout applied to pooled clients;
	// 0 keeps the client default.
	Timeout time.Duration
	// Retry is the retry policy applied to pooled clients' idempotent
	// exchanges.
	Retry RetryPolicy
}

func (o PoolOptions) size() int {
	if o.Size <= 0 {
		return DefaultPoolSize
	}
	return o.Size
}

func (o PoolOptions) streams() int {
	if o.StreamsPerConn <= 0 {
		return DefaultStreamsPerConn
	}
	return o.StreamsPerConn
}

// Pool is a stream-slot limiter over a small set of multiplexed
// connections to one server. Concurrency no longer requires a connection
// per in-flight call: each connection carries up to StreamsPerConn
// concurrent streams, so the pool's job shrinks to bounding total
// in-flight work (Size × StreamsPerConn slots) and spreading streams
// round-robin across connections. Checkout is a semaphore acquire — free
// in the common case, a deadline-bounded wait at saturation — so the
// checkout queue that once dominated the p99 tail is gone from the hot
// path.
//
// Connections are created lazily and self-heal: a transport fault breaks
// only the faulted connection, its in-flight streams fail with classified
// errors, and the next stream routed to it redials. The pool counts each
// broken connection as an eviction (via a lock-free hook, so the
// accounting cannot deadlock against client internals). All clients of
// one pool share a RetryBudget, bounding the aggregate retry rate during
// correlated outages.
type Pool struct {
	addr    string
	traffic *TrafficLog
	opts    PoolOptions
	budget  *RetryBudget

	// slots is the stream-slot semaphore (cap Size × StreamsPerConn);
	// closeCh wakes parked acquires on Close.
	slots   chan struct{}
	closeCh chan struct{}

	mu       sync.Mutex
	clients  []*Client // one per connection slot; nil until first use
	next     uint64    // round-robin cursor over connection slots
	seq      uint64    // clients ever created (jitter salt, Stats.Created)
	closed   bool
	registry *obs.Registry

	// Lock-free occupancy and eviction accounting. The eviction counters
	// are fired from the clients' evict hooks, which run under client
	// locks — they must not touch p.mu (SetMetrics and client creation
	// hold p.mu while taking client locks, and an AB-BA deadlock hides
	// there).
	waiters atomic.Int64
	inUse   atomic.Int64
	evicted atomic.Int64

	mCreated   atomic.Pointer[obs.Counter]
	mEvicted   atomic.Pointer[obs.Counter]
	mWaits     atomic.Pointer[obs.Counter]
	mExhausted atomic.Pointer[obs.Counter]
	gInUse     atomic.Pointer[obs.Gauge]
}

// NewPool returns a pool of lazily dialed multiplexed connections to
// addr. The traffic log may be shared with a network monitor; pass nil to
// create a private one. No connection is dialed until the first call
// needs one.
func NewPool(addr string, traffic *TrafficLog, opts PoolOptions) *Pool {
	if traffic == nil {
		traffic = NewTrafficLog()
	}
	return &Pool{
		addr:    addr,
		traffic: traffic,
		opts:    opts,
		budget:  NewRetryBudget(0, 0),
		slots:   make(chan struct{}, opts.size()*opts.streams()),
		closeCh: make(chan struct{}),
	}
}

// Addr returns the server address.
func (p *Pool) Addr() string { return p.addr }

// Traffic returns the shared traffic log.
func (p *Pool) Traffic() *TrafficLog { return p.traffic }

// Size returns the pool's connection cap.
func (p *Pool) Size() int { return p.opts.size() }

// StreamSlots returns the pool's total concurrency: connection cap times
// streams per connection.
func (p *Pool) StreamSlots() int { return cap(p.slots) }

// RetryBudget returns the shared retry token bucket all of this pool's
// clients draw from.
func (p *Pool) RetryBudget() *RetryBudget { return p.budget }

// SetMetrics attaches the metrics registry: connection churn, waiter
// pressure, and in-flight depth flow into it. A nil registry detaches.
func (p *Pool) SetMetrics(reg *obs.Registry) {
	p.mCreated.Store(reg.Counter(obs.MPoolCreated))
	p.mEvicted.Store(reg.Counter(obs.MPoolEvicted))
	p.mWaits.Store(reg.Counter(obs.MPoolWaits))
	p.mExhausted.Store(reg.Counter(obs.MPoolExhausted))
	p.gInUse.Store(reg.Gauge(obs.MPoolInUse))
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registry = reg
	for _, c := range p.clients {
		if c != nil {
			c.SetMetrics(reg)
		}
	}
}

// SetTimeout sets the per-exchange flat timeout for all connections,
// current and future.
func (p *Pool) SetTimeout(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d > 0 {
		p.opts.Timeout = d
	}
	for _, c := range p.clients {
		if c != nil {
			c.SetTimeout(d)
		}
	}
}

// SetRetryPolicy tunes automatic retries of idempotent exchanges for all
// connections, current and future.
func (p *Pool) SetRetryPolicy(policy RetryPolicy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.opts.Retry = policy
	for _, c := range p.clients {
		if c != nil {
			c.SetRetryPolicy(policy)
		}
	}
}

// PoolStats is a point-in-time view of pool occupancy, for tests and
// debugging.
type PoolStats struct {
	// Live counts connections currently established.
	Live int
	// Idle counts free stream slots (total minus in flight).
	Idle int
	// Waiters counts checkouts blocked waiting for a stream slot.
	Waiters int
	// Created counts every connection slot the pool has populated.
	Created int
	// Evicted counts broken connections discarded after transport faults.
	Evicted int
}

// Stats returns current occupancy counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	live := 0
	for _, c := range p.clients {
		if c != nil && c.connected() {
			live++
		}
	}
	created := int(p.seq)
	p.mu.Unlock()
	return PoolStats{
		Live:    live,
		Idle:    cap(p.slots) - int(p.inUse.Load()),
		Waiters: int(p.waiters.Load()),
		Created: created,
		Evicted: int(p.evicted.Load()),
	}
}

// Close shuts the pool down: connections are closed immediately (failing
// their in-flight streams), and blocked checkouts fail with
// ErrPoolClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	clients := p.clients
	p.clients = nil
	p.mu.Unlock()

	close(p.closeCh)
	var err error
	for _, c := range clients {
		if c == nil {
			continue
		}
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// acquire claims a stream slot and picks the connection to run on. The
// fast path is a non-blocking semaphore send; at saturation the checkout
// parks until a slot frees — or until the context expires, in which case
// it fails promptly with a *DeadlineError wrapping ErrPoolExhausted
// instead of blocking past any useful deadline. A successful acquire must
// be followed by release.
func (p *Pool) acquire(ctx context.Context) (*Client, error) {
	if err := ctx.Err(); err != nil {
		return nil, &DeadlineError{Op: "checkout", Addr: p.addr, Err: err}
	}
	select {
	case <-p.closeCh:
		return nil, ErrPoolClosed
	default:
	}

	select {
	case p.slots <- struct{}{}:
	default:
		// Every stream slot is in flight: park or give up.
		if p.opts.MaxWaiters < 0 {
			p.mExhausted.Load().Inc()
			return nil, ErrPoolExhausted
		}
		if w := p.waiters.Add(1); p.opts.MaxWaiters > 0 && w > int64(p.opts.MaxWaiters) {
			p.waiters.Add(-1)
			p.mExhausted.Load().Inc()
			return nil, ErrPoolExhausted
		}
		p.mWaits.Load().Inc()
		select {
		case p.slots <- struct{}{}:
			p.waiters.Add(-1)
		case <-ctx.Done():
			p.waiters.Add(-1)
			p.mExhausted.Load().Inc()
			return nil, &DeadlineError{
				Op:   "checkout",
				Addr: p.addr,
				Err:  errors.Join(ErrPoolExhausted, ctx.Err()),
			}
		case <-p.closeCh:
			p.waiters.Add(-1)
			return nil, ErrPoolClosed
		}
	}

	c, err := p.clientForNextSlot()
	if err != nil {
		<-p.slots
		return nil, err
	}
	p.gInUse.Load().Set(float64(p.inUse.Add(1)))
	return c, nil
}

// release returns a stream slot after the exchange finishes. Connection
// health needs no handling here: a transport fault already broke only the
// faulted connection inside the client, which redials lazily, and the
// eviction was counted by the client's evict hook.
func (p *Pool) release() {
	p.gInUse.Load().Set(float64(p.inUse.Add(-1)))
	<-p.slots
}

// clientForNextSlot picks the connection for a newly granted stream slot,
// round-robin across connection slots, creating clients lazily.
func (p *Pool) clientForNextSlot() (*Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	if p.clients == nil {
		p.clients = make([]*Client, p.opts.size())
	}
	i := int(p.next % uint64(len(p.clients)))
	p.next++
	c := p.clients[i]
	if c == nil {
		c = p.newClientLocked()
		p.clients[i] = c
	}
	return c, nil
}

// newClientLocked creates a connection slot. The client dials lazily, so no
// network I/O happens here under the pool lock. The caller holds p.mu.
func (p *Pool) newClientLocked() *Client {
	c := NewClient(p.addr, p.traffic)
	// Pooled siblings share an address; salt the jitter seed so their
	// backoff streams stay decorrelated.
	c.reseedJitter(p.seq)
	p.seq++
	if p.opts.Timeout > 0 {
		c.SetTimeout(p.opts.Timeout)
	}
	c.SetRetryPolicy(p.opts.Retry)
	c.SetRetryBudget(p.budget)
	if p.registry != nil {
		c.SetMetrics(p.registry)
	}
	// The hook is lock-free by contract: it may fire under client locks.
	c.setEvictHook(func() {
		p.evicted.Add(1)
		p.mEvicted.Load().Inc()
	})
	p.mCreated.Load().Inc()
	return c
}

// Call invokes a service operation on a pooled connection. Semantics match
// (*Client).Call: transport failures return *TransportError without
// retrying, remote failures return *RemoteError, admission-control sheds
// return *OverloadError.
func (p *Pool) Call(service, optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
	out, usage, _, err := p.CallTraced(service, optype, payload, nil)
	return out, usage, err
}

// CallTraced is Call with trace propagation, matching (*Client).CallTraced.
func (p *Pool) CallTraced(service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	return p.CallContext(context.Background(), service, optype, payload, tc)
}

// CallContext is CallTraced under an end-to-end deadline: the remaining
// budget bounds the stream-slot wait, the dial, and the exchange, and is
// propagated to the server, matching (*Client).CallContext.
func (p *Pool) CallContext(ctx context.Context, service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	c, err := p.acquire(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	out, usage, spans, err := c.CallContext(ctx, service, optype, payload, tc)
	p.release()
	return out, usage, spans, err
}

// Status fetches the server's resource snapshot on a pooled connection.
func (p *Pool) Status() (*wire.ServerStatus, error) {
	return p.StatusContext(context.Background())
}

// StatusContext is Status under a deadline.
func (p *Pool) StatusContext(ctx context.Context) (*wire.ServerStatus, error) {
	c, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	st, err := c.StatusContext(ctx)
	p.release()
	return st, err
}

// Ping performs a minimal round trip on a pooled connection.
func (p *Pool) Ping() (time.Duration, error) {
	c, err := p.acquire(context.Background())
	if err != nil {
		return 0, err
	}
	d, err := c.Ping()
	p.release()
	return d, err
}
