package rpc

import (
	"errors"
	"sync"
	"time"

	"spectra/internal/obs"
	"spectra/internal/wire"
)

// Pool sentinel errors. Like the client/server lifecycle sentinels they are
// deliberately unclassified: a closed pool is permanent and exhaustion is a
// local admission decision, so neither should engage transport-level retry.
var (
	// ErrPoolClosed reports a checkout attempted on a Close()d pool.
	ErrPoolClosed = errors.New("rpc: pool closed")
	// ErrPoolExhausted reports a checkout rejected because every connection
	// was busy and the waiter cap was reached.
	ErrPoolExhausted = errors.New("rpc: pool exhausted")
)

// DefaultPoolSize is the connection cap used when PoolOptions.Size is zero.
const DefaultPoolSize = 4

// PoolOptions tunes a connection pool.
type PoolOptions struct {
	// Size caps the number of live connections; 0 selects DefaultPoolSize.
	Size int
	// MaxWaiters caps how many checkouts may block waiting for a connection
	// when the pool is at capacity; 0 means unlimited, negative means no
	// waiting (immediate ErrPoolExhausted at capacity).
	MaxWaiters int
	// Timeout is the per-exchange deadline applied to pooled clients; 0
	// keeps the client default.
	Timeout time.Duration
	// Retry is the retry policy applied to pooled clients' idempotent
	// exchanges.
	Retry RetryPolicy
}

func (o PoolOptions) size() int {
	if o.Size <= 0 {
		return DefaultPoolSize
	}
	return o.Size
}

// Pool is a bounded set of RPC clients to one server, letting independent
// operations overlap their exchanges instead of serializing on a single
// connection's mutex. Connections are created lazily (each Client dials on
// first use), checked out per call, and checked back in afterward; a
// transport fault evicts the faulty connection so its slot is re-created
// fresh, while application errors and admission-control sheds return the
// connection — which is healthy — to the idle set.
//
// The pool never holds its mutex across network I/O: checkout and checkin
// only move *Client values between slices, and the exchange itself runs on
// the checked-out client outside the pool lock. Waiting for a free
// connection uses a sync.Cond, which releases the lock while blocked.
type Pool struct {
	mu   sync.Mutex
	cond *sync.Cond

	addr    string
	traffic *TrafficLog
	opts    PoolOptions

	idle    []*Client // connections ready for checkout
	live    int       // connections existing (idle + checked out)
	waiters int       // checkouts blocked in cond.Wait
	seq     uint64    // jitter-seed salt for the next created client
	evicted int       // connections discarded after transport faults
	closed  bool

	// Observability handles (nil-safe no-ops when unset).
	registry   *obs.Registry
	mCreated   *obs.Counter
	mEvicted   *obs.Counter
	mWaits     *obs.Counter
	mExhausted *obs.Counter
	gInUse     *obs.Gauge
}

// NewPool returns a pool of lazily dialed connections to addr. The traffic
// log may be shared with a network monitor; pass nil to create a private
// one. No connection is dialed until the first call needs one.
func NewPool(addr string, traffic *TrafficLog, opts PoolOptions) *Pool {
	if traffic == nil {
		traffic = NewTrafficLog()
	}
	p := &Pool{
		addr:    addr,
		traffic: traffic,
		opts:    opts,
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Addr returns the server address.
func (p *Pool) Addr() string { return p.addr }

// Traffic returns the shared traffic log.
func (p *Pool) Traffic() *TrafficLog { return p.traffic }

// Size returns the pool's connection cap.
func (p *Pool) Size() int { return p.opts.size() }

// SetMetrics attaches the metrics registry: connection churn, waiter
// pressure, and in-use depth flow into it. A nil registry detaches.
func (p *Pool) SetMetrics(reg *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registry = reg
	p.mCreated = reg.Counter(obs.MPoolCreated)
	p.mEvicted = reg.Counter(obs.MPoolEvicted)
	p.mWaits = reg.Counter(obs.MPoolWaits)
	p.mExhausted = reg.Counter(obs.MPoolExhausted)
	p.gInUse = reg.Gauge(obs.MPoolInUse)
	for _, c := range p.idle {
		c.SetMetrics(reg)
	}
}

// SetTimeout sets the per-exchange deadline for all connections, current
// and future.
func (p *Pool) SetTimeout(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d > 0 {
		p.opts.Timeout = d
	}
	for _, c := range p.idle {
		c.SetTimeout(d)
	}
}

// SetRetryPolicy tunes automatic retries of idempotent exchanges for all
// connections, current and future.
func (p *Pool) SetRetryPolicy(policy RetryPolicy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.opts.Retry = policy
	for _, c := range p.idle {
		c.SetRetryPolicy(policy)
	}
}

// PoolStats is a point-in-time view of pool occupancy, for tests and
// debugging.
type PoolStats struct {
	// Live counts existing connections (idle + checked out).
	Live int
	// Idle counts connections ready for checkout.
	Idle int
	// Waiters counts checkouts blocked waiting for a free connection.
	Waiters int
	// Created counts every connection the pool has made.
	Created int
	// Evicted counts connections discarded after transport faults.
	Evicted int
}

// Stats returns current occupancy counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Live:    p.live,
		Idle:    len(p.idle),
		Waiters: p.waiters,
		Created: int(p.seq),
		Evicted: p.evicted,
	}
}

// Close shuts the pool down: idle connections are closed immediately,
// blocked checkouts fail with ErrPoolClosed, and connections currently
// checked out are closed at checkin.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.cond.Broadcast()
	p.mu.Unlock()

	var err error
	for _, c := range idle {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// checkout returns a connection for exclusive use. It prefers an idle
// connection, creates one if below the cap, and otherwise blocks until a
// checkin frees one (or fails with ErrPoolExhausted when the waiter cap is
// reached). The matching checkin must always follow.
func (p *Pool) checkout() (*Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	waited := false
	for {
		if p.closed {
			return nil, ErrPoolClosed
		}
		if n := len(p.idle); n > 0 {
			c := p.idle[n-1]
			p.idle[n-1] = nil
			p.idle = p.idle[:n-1]
			p.gInUse.Set(float64(p.live - len(p.idle)))
			return c, nil
		}
		if p.live < p.opts.size() {
			c := p.newClientLocked()
			p.live++
			p.gInUse.Set(float64(p.live - len(p.idle)))
			return c, nil
		}
		if p.opts.MaxWaiters < 0 || (p.opts.MaxWaiters > 0 && p.waiters >= p.opts.MaxWaiters) {
			p.mExhausted.Inc()
			return nil, ErrPoolExhausted
		}
		if !waited {
			waited = true
			p.mWaits.Inc()
		}
		p.waiters++
		p.cond.Wait()
		p.waiters--
	}
}

// newClientLocked creates a connection slot. The client dials lazily, so no
// network I/O happens here under the pool lock. The caller holds p.mu.
func (p *Pool) newClientLocked() *Client {
	c := NewClient(p.addr, p.traffic)
	// Pooled siblings share an address; salt the jitter seed so their
	// backoff streams stay decorrelated.
	c.reseedJitter(p.seq)
	p.seq++
	if p.opts.Timeout > 0 {
		c.SetTimeout(p.opts.Timeout)
	}
	c.SetRetryPolicy(p.opts.Retry)
	if p.registry != nil {
		c.SetMetrics(p.registry)
	}
	p.mCreated.Inc()
	return c
}

// checkin returns a connection after use. err is the call's outcome: a
// transport fault evicts the connection (its stream cannot be trusted and
// the slot is better served by a fresh dial), anything else — success,
// remote application errors, admission-control sheds — returns it to the
// idle set. Closing the evicted or drained client happens outside the pool
// lock.
func (p *Pool) checkin(c *Client, err error) {
	var terr *TransportError
	evict := errors.As(err, &terr)

	p.mu.Lock()
	if p.closed {
		p.live--
		p.mu.Unlock()
		c.Close()
		return
	}
	if evict {
		p.live--
		p.evicted++
		p.mEvicted.Inc()
		p.gInUse.Set(float64(p.live - len(p.idle)))
		// A freed slot lets a waiter create a fresh connection.
		p.cond.Signal()
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.gInUse.Set(float64(p.live - len(p.idle)))
	p.cond.Signal()
	p.mu.Unlock()
}

// Call invokes a service operation on a pooled connection. Semantics match
// (*Client).Call: transport failures return *TransportError without
// retrying, remote failures return *RemoteError, admission-control sheds
// return *OverloadError.
func (p *Pool) Call(service, optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
	out, usage, _, err := p.CallTraced(service, optype, payload, nil)
	return out, usage, err
}

// CallTraced is Call with trace propagation, matching (*Client).CallTraced.
func (p *Pool) CallTraced(service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, *wire.UsageReport, []wire.SpanRecord, error) {
	c, err := p.checkout()
	if err != nil {
		return nil, nil, nil, err
	}
	out, usage, spans, err := c.CallTraced(service, optype, payload, tc)
	p.checkin(c, err)
	return out, usage, spans, err
}

// Status fetches the server's resource snapshot on a pooled connection.
func (p *Pool) Status() (*wire.ServerStatus, error) {
	c, err := p.checkout()
	if err != nil {
		return nil, err
	}
	st, err := c.Status()
	p.checkin(c, err)
	return st, err
}

// Ping performs a minimal round trip on a pooled connection.
func (p *Pool) Ping() (time.Duration, error) {
	c, err := p.checkout()
	if err != nil {
		return 0, err
	}
	d, err := c.Ping()
	p.checkin(c, err)
	return d, err
}
