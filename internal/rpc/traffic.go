// Package rpc provides Spectra's remote procedure call layer: a TCP client
// and server speaking the wire protocol, plus the passive traffic log the
// network monitor uses to estimate bandwidth and latency without active
// probing (paper §3.3.2): short exchanges approximate round-trip time,
// large transfers approximate throughput.
package rpc

import (
	"math"
	"sync"
	"time"
)

// Default traffic-log tuning.
const (
	// DefaultLogWindow is how many recent observations the estimator keeps.
	DefaultLogWindow = 128
	// smallExchangeBytes is the size below which an exchange is treated as
	// a pure round-trip sample.
	smallExchangeBytes = 1024
)

// TrafficObservation records one request/response exchange.
type TrafficObservation struct {
	// Bytes is the total bytes moved (sent + received).
	Bytes int64
	// Elapsed is the wall-clock duration of the exchange.
	Elapsed time.Duration
	// When is the completion time.
	When time.Time
}

// Estimate is the network monitor's view of a path.
type Estimate struct {
	BandwidthBps float64
	Latency      time.Duration
	// Samples is the number of observations behind the estimate.
	Samples int
}

// TrafficLog accumulates passive observations of exchanges with one peer
// and fits t = latency + bytes/bandwidth over a sliding window by least
// squares. It is safe for concurrent use.
type TrafficLog struct {
	mu sync.Mutex

	window int
	obs    []TrafficObservation
	next   int
	filled bool
}

// NewTrafficLog returns a log with the default window.
func NewTrafficLog() *TrafficLog { return NewTrafficLogWindow(DefaultLogWindow) }

// NewTrafficLogWindow returns a log keeping the given number of recent
// observations.
func NewTrafficLogWindow(window int) *TrafficLog {
	if window <= 0 {
		window = DefaultLogWindow
	}
	return &TrafficLog{
		window: window,
		obs:    make([]TrafficObservation, window),
	}
}

// Record adds one exchange observation.
func (l *TrafficLog) Record(o TrafficObservation) {
	if o.Bytes < 0 || o.Elapsed <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.obs[l.next] = o
	l.next++
	if l.next == l.window {
		l.next = 0
		l.filled = true
	}
}

// Len returns the number of stored observations.
func (l *TrafficLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lenLocked()
}

func (l *TrafficLog) lenLocked() int {
	if l.filled {
		return l.window
	}
	return l.next
}

// Estimate fits the window and returns bandwidth/latency. ok is false with
// fewer than two observations or a degenerate fit.
func (l *TrafficLog) Estimate() (Estimate, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()

	n := l.lenLocked()
	if n == 0 {
		return Estimate{}, false
	}

	// Least squares of elapsed-seconds on bytes.
	var sb, st, sbb, sbt float64
	for i := 0; i < n; i++ {
		o := l.obs[i]
		b := float64(o.Bytes)
		t := o.Elapsed.Seconds()
		sb += b
		st += t
		sbb += b * b
		sbt += b * t
	}
	fn := float64(n)
	meanT := st / fn
	meanB := sb / fn

	denom := sbb - sb*sb/fn
	if n < 2 || denom < 1e-9 {
		// All transfers the same size: cannot separate latency from
		// bandwidth. Treat small exchanges as latency-only, otherwise
		// attribute everything to bandwidth.
		if meanB < smallExchangeBytes {
			return Estimate{
				BandwidthBps: 0,
				Latency:      time.Duration(meanT * float64(time.Second)),
				Samples:      n,
			}, true
		}
		if meanT <= 0 {
			return Estimate{}, false
		}
		return Estimate{BandwidthBps: meanB / meanT, Samples: n}, true
	}

	slope := (sbt - sb*st/fn) / denom
	intercept := meanT - slope*meanB

	var est Estimate
	est.Samples = n
	if intercept > 0 {
		est.Latency = time.Duration(intercept * float64(time.Second))
	}
	switch {
	case slope > 1e-12:
		est.BandwidthBps = 1 / slope
	case meanT > 0 && meanB > 0:
		est.BandwidthBps = meanB / meanT
	}
	if math.IsInf(est.BandwidthBps, 0) || math.IsNaN(est.BandwidthBps) {
		est.BandwidthBps = 0
	}
	return est, true
}

// Totals returns the sum of bytes and elapsed time across the window,
// useful for tests and diagnostics.
func (l *TrafficLog) Totals() (bytes int64, elapsed time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i < l.lenLocked(); i++ {
		bytes += l.obs[i].Bytes
		elapsed += l.obs[i].Elapsed
	}
	return bytes, elapsed
}
