package rpc

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"spectra/internal/wire"
)

// TestPoolCheckoutDeadlineExhausted proves a deadline-bounded checkout
// against a fully busy pool fails promptly with a *DeadlineError that
// satisfies errors.Is for both ErrPoolExhausted and the context cause,
// instead of blocking until a stream slot frees up.
func TestPoolCheckoutDeadlineExhausted(t *testing.T) {
	addr, entered, release := startBlockingServer(t)
	p := NewPool(addr, nil, PoolOptions{Size: 1, StreamsPerConn: 1})
	defer p.Close()

	go p.Call("gate", "x", nil)
	<-entered // the single stream slot is now busy

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, _, err := p.CallContext(ctx, "echo", "x", []byte("late"), nil)
	elapsed := time.Since(start)

	if !IsDeadline(err) {
		t.Fatalf("checkout past deadline = %v, want *DeadlineError", err)
	}
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("errors.Is(err, ErrPoolExhausted) = false for %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
	if !IsTransient(err) {
		t.Fatal("deadline checkout failure must be transient so failover engages")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("abandoned checkout took %v, want prompt return", elapsed)
	}
	if st := p.Stats(); st.Waiters != 0 {
		t.Fatalf("abandoned waiter still queued: %+v", st)
	}

	// The pool must still function once the stream slot frees up.
	release <- struct{}{}
	if _, _, err := p.Call("echo", "x", []byte("after")); err != nil {
		t.Fatalf("pool broken after abandoned wait: %v", err)
	}
}

// TestPoolCheckoutCancelPrompt proves explicit cancellation (not just
// expiry) unparks a waiting checkout immediately.
func TestPoolCheckoutCancelPrompt(t *testing.T) {
	addr, entered, release := startBlockingServer(t)
	p := NewPool(addr, nil, PoolOptions{Size: 1, StreamsPerConn: 1})
	defer p.Close()

	go p.Call("gate", "x", nil)
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := p.CallContext(ctx, "echo", "x", nil, nil)
		errc <- err
	}()
	// Let the waiter park, then cancel.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !IsDeadline(err) || !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled checkout = %v, want *DeadlineError wrapping context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled checkout did not return promptly")
	}
	release <- struct{}{}
}

// TestRetryBudgetBucket exercises the token-bucket arithmetic, including
// nil-safety.
func TestRetryBudgetBucket(t *testing.T) {
	b := NewRetryBudget(2, 0.5)
	if !b.Allow() || !b.Allow() {
		t.Fatal("full bucket must allow its burst")
	}
	if b.Allow() {
		t.Fatal("drained bucket must refuse retries")
	}
	b.Credit() // 0.5 tokens: still below one whole retry
	if b.Allow() {
		t.Fatal("fractional balance must not permit a retry")
	}
	b.Credit() // 1.0 token
	if !b.Allow() {
		t.Fatal("earned token must permit a retry")
	}
	for i := 0; i < 10; i++ {
		b.Credit()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("credits must cap at max: got %v, want 2", got)
	}

	var nilBudget *RetryBudget
	if !nilBudget.Allow() {
		t.Fatal("nil budget must allow everything")
	}
	nilBudget.Credit() // must not panic
}

// TestServerShedsExpiredAtAdmission drives the wire protocol directly: a
// request arriving with its budget already spent must be answered
// CodeDeadlineExceeded without the handler ever running.
func TestServerShedsExpiredAtAdmission(t *testing.T) {
	executed := make(chan struct{}, 1)
	srv := NewServer(nil)
	srv.Register("work", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		executed <- struct{}{}
		return nil, nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := &wire.Message{
		Type:     wire.MsgRequest,
		ID:       1,
		Service:  "work",
		Deadline: &wire.DeadlineContext{BudgetMillis: -1},
	}
	if _, err := wire.WriteMessage(conn, req); err != nil {
		t.Fatal(err)
	}
	reply, _, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("reply code = %q, want %q", reply.Code, wire.CodeDeadlineExceeded)
	}
	select {
	case <-executed:
		t.Fatal("handler ran for an already-expired request")
	default:
	}
}

// TestServerShedsExpiredWhileQueued proves the queue wait itself is
// deadline-bounded: a queued request whose budget runs out while a worker
// slot is held is shed without executing, while the same request without a
// deadline would have waited indefinitely.
func TestServerShedsExpiredWhileQueued(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	executed := make(chan struct{}, 8)
	srv := NewServer(nil)
	srv.SetLimits(ServerLimits{MaxConcurrent: 1, MaxQueue: 8})
	srv.Register("gate", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		entered <- struct{}{}
		<-release
		return nil, nil, nil
	})
	srv.Register("work", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		executed <- struct{}{}
		return nil, nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		srv.Close()
	}()

	hold, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	if _, err := wire.WriteMessage(hold, &wire.Message{Type: wire.MsgRequest, ID: 1, Service: "gate"}); err != nil {
		t.Fatal(err)
	}
	<-entered // the single worker slot is now occupied

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := &wire.Message{
		Type:     wire.MsgRequest,
		ID:       1,
		Service:  "work",
		Deadline: &wire.DeadlineContext{BudgetMillis: 80},
	}
	start := time.Now()
	if _, err := wire.WriteMessage(conn, req); err != nil {
		t.Fatal(err)
	}
	reply, _, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if reply.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("reply code = %q, want %q", reply.Code, wire.CodeDeadlineExceeded)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("queued shed took %v, want ~the 80ms budget", elapsed)
	}
	select {
	case <-executed:
		t.Fatal("handler ran for a request that expired while queued")
	default:
	}
}

// TestClientServerShedClassified proves the client maps a server-side shed
// to a *DeadlineError and the pooled connection survives it.
func TestClientServerShedClassified(t *testing.T) {
	srv := NewServer(nil)
	srv.Register("echo", func(_ string, p []byte) ([]byte, *wire.UsageReport, error) {
		return p, nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := NewPool(addr, nil, PoolOptions{Size: 1})
	defer p.Close()

	// Warm the connection, then issue a call whose budget is so small the
	// server judges it expired on arrival (1ms propagated budget plus the
	// scheduling gap between the client stamping it and the server's
	// admission check). Retry until the race lands; it typically does on
	// the first try.
	if _, _, err := p.Call("echo", "x", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, _, _, err := p.CallContext(ctx, "echo", "x", []byte("tiny"), nil)
		cancel()
		if err == nil {
			continue // the exchange beat the budget; try again
		}
		if !IsDeadline(err) {
			t.Fatalf("tiny-budget call = %v, want *DeadlineError", err)
		}
		// Whether the client or the server gave up first, the connection
		// must remain usable (deadline failures never poison the pool).
		if _, _, err := p.Call("echo", "x", []byte("after")); err != nil {
			t.Fatalf("pool poisoned by deadline failure: %v", err)
		}
		if st := p.Stats(); st.Evicted != 0 {
			// A cancellation that broke the stream mid-exchange legitimately
			// discards the connection client-side; the pool slot itself must
			// still be live either way.
			if st.Live != 1 {
				t.Fatalf("pool lost its slot after deadline failure: %+v", st)
			}
		}
		return
	}
	t.Skip("could not land a deadline expiry in 5s; machine too fast/slow")
}

// TestClientCancelMidExchangeKeepsConnection cancels an in-flight exchange
// and proves (a) the call returns promptly as a *DeadlineError even though
// the server is still holding the reply, and (b) the multiplexed
// connection survives: the abandoned stream's late reply is discarded as a
// stray, and the next call reuses the same connection without redialing —
// the serial client had to break the connection here, which cancellation
// no longer costs.
func TestClientCancelMidExchangeKeepsConnection(t *testing.T) {
	addr, entered, release := startBlockingServer(t)
	c := NewClient(addr, nil)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := c.CallContext(ctx, "gate", "x", nil, nil)
		errc <- err
	}()
	<-entered // the exchange is in flight, blocked on the server
	cancel()

	select {
	case err := <-errc:
		if !IsDeadline(err) || !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled exchange = %v, want *DeadlineError wrapping context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled exchange did not return promptly")
	}

	release <- struct{}{} // let the server-side handler finish
	out, _, err := c.Call("echo", "x", []byte("resync"))
	if err != nil {
		t.Fatalf("client broken after cancellation: %v", err)
	}
	if string(out) != "resync" {
		t.Fatalf("follow-up call returned %q", out)
	}
	if c.Redials() != 1 {
		t.Fatalf("redials = %d, want 1: cancellation must not break the multiplexed connection", c.Redials())
	}
}

// TestRetryBackoffCappedByDeadline proves an idempotent retry gives up as a
// *DeadlineError the moment the next backoff would overrun the remaining
// budget, instead of sleeping through it and returning the stale transport
// fault late.
func TestRetryBackoffCappedByDeadline(t *testing.T) {
	// A listener that is immediately closed yields fast connection-refused
	// dials, making every attempt a transient transport fault.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(addr, nil)
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Second})

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.StatusContext(ctx)
	elapsed := time.Since(start)

	var derr *DeadlineError
	if !errors.As(err, &derr) {
		t.Fatalf("budget-capped retry = %v, want *DeadlineError", err)
	}
	if derr.Op != "backoff" {
		t.Fatalf("deadline op = %q, want %q", derr.Op, "backoff")
	}
	// The give-up must still expose the underlying transport fault for
	// diagnosis.
	var terr *TransportError
	if !errors.As(err, &terr) {
		t.Fatalf("deadline give-up hides the transport cause: %v", err)
	}
	if elapsed >= 5*time.Second {
		t.Fatalf("retry slept %v through the deadline instead of giving up", elapsed)
	}
}

// TestRetryStopsWhenBudgetDrained proves the shared retry budget gates
// retries: with an empty bucket the first failure is final.
func TestRetryStopsWhenBudgetDrained(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(addr, nil)
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	drained := NewRetryBudget(1, 0.1)
	drained.Allow() // empty the bucket
	c.SetRetryBudget(drained)

	attempts := 0
	c.sleep = func(time.Duration) { attempts++ }
	if _, err := c.Status(); err == nil {
		t.Fatal("status against a dead address must fail")
	}
	if attempts != 0 {
		t.Fatalf("drained budget still permitted %d retries", attempts)
	}
}
