package rpc

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spectra/internal/wire"
)

// startBlockingServer hosts a "gate" service that blocks until released,
// so tests can hold pool stream slots busy deterministically, plus the
// usual echo.
func startBlockingServer(t *testing.T) (addr string, entered chan struct{}, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	srv := NewServer(nil)
	srv.Register("echo", func(optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
		return payload, nil, nil
	})
	srv.Register("gate", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		entered <- struct{}{}
		<-release
		return []byte("through"), nil, nil
	})
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		// Unblock any stragglers so Close can drain.
		close(release)
		srv.Close()
	})
	return bound, entered, release
}

func TestPoolCallsOverlap(t *testing.T) {
	addr, entered, release := startBlockingServer(t)
	p := NewPool(addr, nil, PoolOptions{Size: 3})
	defer p.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := p.Call("gate", "x", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	// All three calls must enter the handler simultaneously — impossible
	// when exchanges serialize.
	for i := 0; i < 3; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 3 calls entered the handler concurrently", i)
		}
	}
	for i := 0; i < 3; i++ {
		release <- struct{}{}
	}
	wg.Wait()

	// Round-robin spread the three streams over all three connections.
	st := p.Stats()
	if st.Live != 3 || st.Created != 3 || st.Idle != p.StreamSlots() {
		t.Fatalf("stats after overlap = %+v (want Live=3 Created=3 Idle=%d)", st, p.StreamSlots())
	}
}

func TestPoolSingleConnOverlap(t *testing.T) {
	// The inverse of the old serial-per-connection behavior: ONE connection
	// must carry concurrent streams.
	addr, entered, release := startBlockingServer(t)
	p := NewPool(addr, nil, PoolOptions{Size: 1})
	defer p.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := p.Call("gate", "x", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	for i := 0; i < 3; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 3 calls entered the handler over one multiplexed connection", i)
		}
	}
	for i := 0; i < 3; i++ {
		release <- struct{}{}
	}
	wg.Wait()
	if st := p.Stats(); st.Live != 1 || st.Created != 1 {
		t.Fatalf("single-connection pool grew: %+v", st)
	}
}

func TestPoolCheckoutUnderExhaustion(t *testing.T) {
	addr, entered, release := startBlockingServer(t)
	// One connection, one stream slot: the old fully-serialized shape.
	p := NewPool(addr, nil, PoolOptions{Size: 1, StreamsPerConn: 1})
	defer p.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Call("gate", "x", nil)
	}()
	<-entered // the single stream slot is now busy

	// A second call must wait for the slot, not dial a second connection.
	done := make(chan []byte, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		out, _, err := p.Call("echo", "x", []byte("queued"))
		if err != nil {
			t.Error(err)
		}
		done <- out
	}()

	// Give the waiter time to block, then verify it has neither failed nor
	// grown the pool.
	deadline := time.After(5 * time.Second)
	for p.Stats().Waiters == 0 {
		select {
		case <-deadline:
			t.Fatal("second call never blocked as a waiter")
		case <-time.After(time.Millisecond):
		}
	}
	if st := p.Stats(); st.Live != 1 || st.Created != 1 {
		t.Fatalf("pool grew past its cap: %+v", st)
	}

	release <- struct{}{} // finish the gate call; its release feeds the waiter
	select {
	case out := <-done:
		if !bytes.Equal(out, []byte("queued")) {
			t.Fatalf("queued call returned %q", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never received the freed stream slot")
	}
	wg.Wait()
}

func TestPoolExhaustedWithWaiterCap(t *testing.T) {
	addr, entered, release := startBlockingServer(t)
	p := NewPool(addr, nil, PoolOptions{Size: 1, StreamsPerConn: 1, MaxWaiters: -1})
	defer p.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Call("gate", "x", nil)
	}()
	<-entered

	if _, _, err := p.Call("echo", "x", nil); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("want ErrPoolExhausted with no-wait policy, got %v", err)
	}
	release <- struct{}{}
	wg.Wait()
}

func TestPoolCheckoutDeadlineBounded(t *testing.T) {
	addr, entered, release := startBlockingServer(t)
	p := NewPool(addr, nil, PoolOptions{Size: 1, StreamsPerConn: 1})
	defer p.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Call("gate", "x", nil)
	}()
	<-entered

	// A deadline-bounded checkout on the exhausted pool must fail promptly
	// with a classified deadline error, not block indefinitely.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, _, err := p.CallContext(ctx, "echo", "x", nil, nil)
	if !IsDeadline(err) {
		t.Fatalf("want DeadlineError from bounded checkout, got %v", err)
	}
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("deadline checkout failure should wrap ErrPoolExhausted, got %v", err)
	}
	release <- struct{}{}
	wg.Wait()
}

func TestPoolEvictsOnTransportError(t *testing.T) {
	srv := NewServer(nil)
	srv.Register("echo", func(_ string, payload []byte) ([]byte, *wire.UsageReport, error) {
		return payload, nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(addr, nil, PoolOptions{Size: 2})
	defer p.Close()

	if _, _, err := p.Call("echo", "x", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Live != 1 || st.Created != 1 {
		t.Fatalf("stats after warm call = %+v", st)
	}

	// Kill the server: the established connection breaks at the transport
	// level and must be counted as an eviction, not recycled.
	srv.Close()
	if _, _, err := p.Call("echo", "x", nil); !IsTransient(err) {
		t.Fatalf("want transport error after server death, got %v", err)
	}
	deadline := time.After(5 * time.Second)
	for p.Stats().Evicted == 0 {
		select {
		case <-deadline:
			t.Fatalf("broken connection never counted as evicted: %+v", p.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("a broken connection still counts as live: %+v", st)
	}

	// A remote application error, by contrast, must NOT evict.
	srv2 := NewServer(nil)
	srv2.Register("fail", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		return nil, nil, errors.New("app error")
	})
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	p2 := NewPool(addr2, nil, PoolOptions{Size: 2})
	defer p2.Close()
	if _, _, err := p2.Call("fail", "x", nil); !IsRemote(err) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if st := p2.Stats(); st.Live != 1 || st.Evicted != 0 {
		t.Fatalf("remote app error evicted a healthy connection: %+v", st)
	}
}

func TestPoolCloseDrainsWaiters(t *testing.T) {
	addr, entered, release := startBlockingServer(t)
	p := NewPool(addr, nil, PoolOptions{Size: 1, StreamsPerConn: 1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Call("gate", "x", nil)
	}()
	<-entered

	// Park several waiters on the exhausted pool.
	const waiters = 4
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := p.Call("echo", "x", nil)
			errs <- err
		}()
	}
	deadline := time.After(5 * time.Second)
	for p.Stats().Waiters < waiters {
		select {
		case <-deadline:
			t.Fatalf("only %d waiters parked", p.Stats().Waiters)
		case <-time.After(time.Millisecond):
		}
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrPoolClosed) {
				t.Fatalf("waiter %d got %v, want ErrPoolClosed", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close left a waiter blocked")
		}
	}

	release <- struct{}{} // let the server-side handler finish
	wg.Wait()
	if _, _, err := p.Call("echo", "x", nil); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("call on closed pool = %v, want ErrPoolClosed", err)
	}
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("connections survived Close: %+v", st)
	}
}

func TestPoolOverloadKeepsConnection(t *testing.T) {
	srv := NewServer(nil)
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.Register("slow", func(string, []byte) ([]byte, *wire.UsageReport, error) {
		started <- struct{}{}
		<-block
		return []byte("ok"), nil, nil
	})
	srv.SetLimits(ServerLimits{MaxConcurrent: 1, MaxQueue: 0})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		srv.Close()
	}()

	p := NewPool(addr, nil, PoolOptions{Size: 2})
	defer p.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Call("slow", "x", nil) // occupies the single worker slot
	}()
	<-started

	_, _, err = p.Call("slow", "x", nil)
	if !IsOverloaded(err) {
		t.Fatalf("want OverloadError from admission control, got %v", err)
	}
	if !IsTransient(err) {
		t.Fatal("overload must be transient so failover engages")
	}
	// The shed call's connection is healthy: no eviction, and the only
	// occupied stream slot is the still-blocked first call's.
	if st := p.Stats(); st.Evicted != 0 || st.Idle != p.StreamSlots()-1 {
		t.Fatalf("overload evicted a healthy connection: %+v", st)
	}
	block <- struct{}{}
	wg.Wait()
}

func TestPoolJitterDecorrelated(t *testing.T) {
	// Pooled siblings to one address must not share a jitter stream, and
	// clients of different addresses must differ too (the old constant seed
	// put every client in the fleet in lockstep).
	p := NewPool("10.0.0.1:7009", nil, PoolOptions{Size: 2})
	defer p.Close()
	c1, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("round-robin handed consecutive streams the same connection in a 2-conn pool")
	}
	if c1.rng.state == c2.rng.state {
		t.Fatal("pooled siblings share a jitter seed")
	}
	other := NewClient("10.0.0.2:7009", nil)
	if c1.rng.state == other.rng.state {
		t.Fatal("clients of different addresses share a jitter seed")
	}
	p.release()
	p.release()
}

func TestPoolConcurrentStress(t *testing.T) {
	addr, _, _ := startBlockingServer(t)
	p := NewPool(addr, nil, PoolOptions{Size: 4})
	defer p.Close()

	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, _, err := p.Call("echo", "x", []byte("s")); err != nil {
					t.Error(err)
					return
				}
				calls.Add(1)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 16*25 {
		t.Fatalf("completed %d calls, want %d", calls.Load(), 16*25)
	}
	st := p.Stats()
	if st.Live > 4 || st.Created > 4 {
		t.Fatalf("pool exceeded its cap under stress: %+v", st)
	}
}
