package rpc

import (
	"math"
	"testing"
	"time"
)

func TestTrafficLogEmpty(t *testing.T) {
	l := NewTrafficLog()
	if _, ok := l.Estimate(); ok {
		t.Fatal("empty log must not estimate")
	}
	if l.Len() != 0 {
		t.Fatal("len should be 0")
	}
}

func TestTrafficLogRecoversLinkParameters(t *testing.T) {
	// Synthesize exchanges over a 100 KB/s link with 20 ms RTT.
	const (
		bw  = 100_000.0
		rtt = 20 * time.Millisecond
	)
	l := NewTrafficLog()
	for _, bytes := range []int64{200, 500, 10_000, 50_000, 100_000, 300_000} {
		elapsed := rtt + time.Duration(float64(bytes)/bw*float64(time.Second))
		l.Record(TrafficObservation{Bytes: bytes, Elapsed: elapsed})
	}
	est, ok := l.Estimate()
	if !ok {
		t.Fatal("should estimate")
	}
	if math.Abs(est.BandwidthBps-bw)/bw > 0.05 {
		t.Fatalf("bandwidth = %v, want ~%v", est.BandwidthBps, bw)
	}
	if d := est.Latency - rtt; d < -2*time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("latency = %v, want ~%v", est.Latency, rtt)
	}
	if est.Samples != 6 {
		t.Fatalf("samples = %d", est.Samples)
	}
}

func TestTrafficLogSmallExchangesOnly(t *testing.T) {
	l := NewTrafficLog()
	for i := 0; i < 5; i++ {
		l.Record(TrafficObservation{Bytes: 100, Elapsed: 30 * time.Millisecond})
	}
	est, ok := l.Estimate()
	if !ok {
		t.Fatal("should estimate")
	}
	if est.Latency != 30*time.Millisecond {
		t.Fatalf("latency = %v, want 30ms", est.Latency)
	}
	if est.BandwidthBps != 0 {
		t.Fatalf("bandwidth from latency-only data = %v", est.BandwidthBps)
	}
}

func TestTrafficLogUniformBulkOnly(t *testing.T) {
	l := NewTrafficLog()
	for i := 0; i < 4; i++ {
		l.Record(TrafficObservation{Bytes: 100_000, Elapsed: time.Second})
	}
	est, ok := l.Estimate()
	if !ok {
		t.Fatal("should estimate")
	}
	if math.Abs(est.BandwidthBps-100_000) > 1 {
		t.Fatalf("bandwidth = %v, want 100000", est.BandwidthBps)
	}
}

func TestTrafficLogIgnoresInvalid(t *testing.T) {
	l := NewTrafficLog()
	l.Record(TrafficObservation{Bytes: -1, Elapsed: time.Second})
	l.Record(TrafficObservation{Bytes: 10, Elapsed: 0})
	if l.Len() != 0 {
		t.Fatalf("invalid observations stored: %d", l.Len())
	}
}

func TestTrafficLogWindowWraps(t *testing.T) {
	l := NewTrafficLogWindow(4)
	// Old regime: slow link.
	for i := 0; i < 4; i++ {
		l.Record(TrafficObservation{Bytes: 100_000, Elapsed: 10 * time.Second})
	}
	// New regime: fast link fully replaces the window.
	for i := 0; i < 4; i++ {
		l.Record(TrafficObservation{Bytes: 100_000, Elapsed: time.Second})
	}
	if l.Len() != 4 {
		t.Fatalf("window len = %d, want 4", l.Len())
	}
	est, ok := l.Estimate()
	if !ok {
		t.Fatal("should estimate")
	}
	if math.Abs(est.BandwidthBps-100_000) > 1 {
		t.Fatalf("post-wrap bandwidth = %v, want 100000", est.BandwidthBps)
	}
}

func TestTrafficLogTotals(t *testing.T) {
	l := NewTrafficLog()
	l.Record(TrafficObservation{Bytes: 10, Elapsed: time.Second})
	l.Record(TrafficObservation{Bytes: 20, Elapsed: 2 * time.Second})
	bytes, elapsed := l.Totals()
	if bytes != 30 || elapsed != 3*time.Second {
		t.Fatalf("totals = (%d, %v)", bytes, elapsed)
	}
}

func TestTrafficLogDefaultWindow(t *testing.T) {
	l := NewTrafficLogWindow(-1)
	for i := 0; i < DefaultLogWindow+10; i++ {
		l.Record(TrafficObservation{Bytes: 10, Elapsed: time.Millisecond})
	}
	if l.Len() != DefaultLogWindow {
		t.Fatalf("len = %d, want %d", l.Len(), DefaultLogWindow)
	}
}
