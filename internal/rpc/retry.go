package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TransportError marks a transport-level failure of an exchange: the
// connection could not be established, broke mid-exchange, timed out, or
// the stream desynchronized. Transport errors are transient — the client
// closes the offending connection and redials on the next call — and a
// caller may safely retry idempotent exchanges or fail the work over to a
// different server. Contrast RemoteError, which reports that the exchange
// completed and the remote application itself failed.
type TransportError struct {
	// Op names the failing stage ("dial", "write", "read").
	Op string
	// Addr is the server address.
	Addr string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("rpc: transport %s %s: %v", e.Op, e.Addr, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Sentinel errors: named, classified terminal states of the endpoint
// lifecycles. They are deliberately neither transport nor remote errors —
// a closed endpoint is permanent, so retry and failover must not engage —
// and callers can test for them with errors.Is.
var (
	// ErrClientClosed reports an exchange attempted on a Close()d client.
	ErrClientClosed = errors.New("rpc: client closed")
	// ErrServerClosed reports Listen called on a Close()d server.
	ErrServerClosed = errors.New("rpc: server closed")
)

// errEmptyStatus is the cause carried by the *TransportError returned when
// a status exchange completes without a status payload (a protocol
// violation: the stream cannot be trusted).
var errEmptyStatus = errors.New("empty status reply")

// errServerShed is the cause carried by the *DeadlineError returned when a
// server replies CodeDeadlineExceeded: it judged the request's budget
// expired and shed it without executing.
var errServerShed = errors.New("server shed expired request")

// OverloadError reports that the server shed the request at admission
// control: its worker pool and wait queue were full, so the request was
// never executed. The exchange itself succeeded — the connection is
// healthy — but the work should be retried later or failed over to a less
// loaded placement.
type OverloadError struct {
	// Addr is the overloaded server's address.
	Addr string
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("rpc: server %s overloaded, request shed", e.Addr)
}

// IsOverloaded reports whether an RPC failure is an admission-control
// rejection. Overload is transient (IsTransient is also true) but, unlike
// a transport fault, says nothing about the connection's health — pools
// must not evict on it, and reachability tracking must not mark the
// server down.
func IsOverloaded(err error) bool {
	var oerr *OverloadError
	return errors.As(err, &oerr)
}

// DeadlineError reports that an exchange was abandoned because the
// operation's latency budget ran out: the pool checkout would have waited
// past the deadline, a retry backoff would have overrun it, the in-flight
// exchange was cancelled, or the server shed the request as already
// expired. Deadline errors are transient — the failover ladder may try a
// different placement with whatever budget remains — but they say nothing
// about the connection's health, so pools must not evict on one unless it
// also wraps a *TransportError (a cancellation that broke the stream).
type DeadlineError struct {
	// Op names the blocking point that gave up ("checkout", "backoff",
	// "exchange", "server").
	Op string
	// Addr is the server address, when one was selected.
	Addr string
	// Err is the underlying cause (context.DeadlineExceeded,
	// context.Canceled, ErrPoolExhausted, or a wrapped transport fault).
	Err error
}

// Error implements error.
func (e *DeadlineError) Error() string {
	if e.Addr == "" {
		return fmt.Sprintf("rpc: deadline %s: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("rpc: deadline %s %s: %v", e.Op, e.Addr, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *DeadlineError) Unwrap() error { return e.Err }

// IsDeadline reports whether an RPC failure is a latency-budget expiry or
// cancellation. Deadline failures are transient (IsTransient is also true)
// so the failover ladder engages, but reachability tracking must not mark
// the server down on one — the server may be healthy and merely slow.
func IsDeadline(err error) bool {
	var derr *DeadlineError
	return errors.As(err, &derr)
}

// isTimeoutErr reports whether an I/O failure is a deadline firing on the
// connection (as opposed to a reset, refusal, or short read).
func isTimeoutErr(err error) bool {
	var nerr net.Error
	return errors.As(err, &nerr) && nerr.Timeout()
}

// IsTransient reports whether an RPC failure is worth retrying or failing
// over: transport faults, admission-control rejections, and deadline
// expiries are; remote application errors are not.
func IsTransient(err error) bool {
	var terr *TransportError
	if errors.As(err, &terr) {
		return true
	}
	return IsOverloaded(err) || IsDeadline(err)
}

// IsRemote reports whether an RPC failure is a remote application error —
// the exchange itself succeeded and the service returned a failure, so a
// retry on the same or a different server would fail identically.
func IsRemote(err error) bool {
	var rerr *RemoteError
	return errors.As(err, &rerr)
}

// RetryPolicy bounds automatic retries of idempotent exchanges (Ping and
// Status). Each retry waits BaseDelay·Multiplier^n, capped at MaxDelay,
// with a deterministic jitter fraction subtracted so synchronized clients
// do not retry in lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries; 0 selects 3. 1 disables
	// retrying.
	MaxAttempts int
	// BaseDelay is the wait before the first retry; 0 selects 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; 0 selects 2s.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor; 0 selects 2.
	Multiplier float64
	// JitterFraction in [0,1) randomly shrinks each delay by up to that
	// fraction; 0 selects 0.2. Negative disables jitter.
	JitterFraction float64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// delay computes the backoff before retry number n (0-based), drawing
// jitter from the supplied generator.
func (p RetryPolicy) delay(n int, rng *splitMix) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < n; i++ {
		d *= mult
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	jitter := p.JitterFraction
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 && rng != nil {
		if jitter >= 1 {
			jitter = 0.99
		}
		d *= 1 - jitter*rng.float64()
	}
	return time.Duration(d)
}

// RetryBudget is a shared token bucket bounding the aggregate retry rate
// across the clients that share it (typically the clients of one Pool).
// Each retry withdraws one token; each successful exchange deposits
// CreditRatio tokens back, up to the cap. Under a correlated outage the
// bucket drains quickly and retries stop fleet-wide instead of every
// client independently stacking full backoff ladders — the retry-storm
// half of the p99 tail. A nil *RetryBudget permits everything, so wiring
// one up is always optional.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

// Default RetryBudget shape: a burst of 10 retries, refilled at one token
// per 10 successes.
const (
	defaultRetryTokens = 10
	defaultRetryRatio  = 0.1
)

// NewRetryBudget creates a full bucket. max <= 0 selects 10 tokens;
// ratio <= 0 selects 0.1 (one retry earned per ten successes).
func NewRetryBudget(max, ratio float64) *RetryBudget {
	if max <= 0 {
		max = defaultRetryTokens
	}
	if ratio <= 0 {
		ratio = defaultRetryRatio
	}
	return &RetryBudget{tokens: max, max: max, ratio: ratio}
}

// Allow withdraws one retry token, reporting whether a retry may proceed.
// A nil budget always allows.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Credit deposits the success dividend. A nil budget ignores it.
func (b *RetryBudget) Credit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Tokens reports the current balance, for tests and introspection.
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// jitterSeed derives a deterministic per-endpoint jitter seed (FNV-1a over
// the address, mixed with a salt for pooled siblings). Seeding from the
// address decorrelates backoff across a fleet of clients: with a shared
// constant seed, every client recovering from the same outage would sleep
// identical jittered delays and hammer the server in lockstep.
func jitterSeed(addr string, salt uint64) uint64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= fnvPrime
	}
	// One SplitMix64 round over the salt scatters pooled siblings that
	// share an address into distinct jitter streams.
	z := h + (salt+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// splitMix is a tiny deterministic generator (SplitMix64) for retry
// jitter, so behavior does not depend on math/rand ordering.
type splitMix struct{ state uint64 }

func (r *splitMix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitMix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
