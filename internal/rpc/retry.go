package rpc

import (
	"errors"
	"fmt"
	"time"
)

// TransportError marks a transport-level failure of an exchange: the
// connection could not be established, broke mid-exchange, timed out, or
// the stream desynchronized. Transport errors are transient — the client
// closes the offending connection and redials on the next call — and a
// caller may safely retry idempotent exchanges or fail the work over to a
// different server. Contrast RemoteError, which reports that the exchange
// completed and the remote application itself failed.
type TransportError struct {
	// Op names the failing stage ("dial", "write", "read", "desync").
	Op string
	// Addr is the server address.
	Addr string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("rpc: transport %s %s: %v", e.Op, e.Addr, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Sentinel errors: named, classified terminal states of the endpoint
// lifecycles. They are deliberately neither transport nor remote errors —
// a closed endpoint is permanent, so retry and failover must not engage —
// and callers can test for them with errors.Is.
var (
	// ErrClientClosed reports an exchange attempted on a Close()d client.
	ErrClientClosed = errors.New("rpc: client closed")
	// ErrServerClosed reports Listen called on a Close()d server.
	ErrServerClosed = errors.New("rpc: server closed")
)

// errEmptyStatus is the cause carried by the *TransportError returned when
// a status exchange completes without a status payload (a protocol
// violation: the stream cannot be trusted).
var errEmptyStatus = errors.New("empty status reply")

// OverloadError reports that the server shed the request at admission
// control: its worker pool and wait queue were full, so the request was
// never executed. The exchange itself succeeded — the connection is
// healthy — but the work should be retried later or failed over to a less
// loaded placement.
type OverloadError struct {
	// Addr is the overloaded server's address.
	Addr string
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("rpc: server %s overloaded, request shed", e.Addr)
}

// IsOverloaded reports whether an RPC failure is an admission-control
// rejection. Overload is transient (IsTransient is also true) but, unlike
// a transport fault, says nothing about the connection's health — pools
// must not evict on it, and reachability tracking must not mark the
// server down.
func IsOverloaded(err error) bool {
	var oerr *OverloadError
	return errors.As(err, &oerr)
}

// IsTransient reports whether an RPC failure is worth retrying or failing
// over: transport faults and admission-control rejections are, remote
// application errors are not.
func IsTransient(err error) bool {
	var terr *TransportError
	if errors.As(err, &terr) {
		return true
	}
	return IsOverloaded(err)
}

// IsRemote reports whether an RPC failure is a remote application error —
// the exchange itself succeeded and the service returned a failure, so a
// retry on the same or a different server would fail identically.
func IsRemote(err error) bool {
	var rerr *RemoteError
	return errors.As(err, &rerr)
}

// RetryPolicy bounds automatic retries of idempotent exchanges (Ping and
// Status). Each retry waits BaseDelay·Multiplier^n, capped at MaxDelay,
// with a deterministic jitter fraction subtracted so synchronized clients
// do not retry in lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries; 0 selects 3. 1 disables
	// retrying.
	MaxAttempts int
	// BaseDelay is the wait before the first retry; 0 selects 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; 0 selects 2s.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor; 0 selects 2.
	Multiplier float64
	// JitterFraction in [0,1) randomly shrinks each delay by up to that
	// fraction; 0 selects 0.2. Negative disables jitter.
	JitterFraction float64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// delay computes the backoff before retry number n (0-based), drawing
// jitter from the supplied generator.
func (p RetryPolicy) delay(n int, rng *splitMix) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < n; i++ {
		d *= mult
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	jitter := p.JitterFraction
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 && rng != nil {
		if jitter >= 1 {
			jitter = 0.99
		}
		d *= 1 - jitter*rng.float64()
	}
	return time.Duration(d)
}

// jitterSeed derives a deterministic per-endpoint jitter seed (FNV-1a over
// the address, mixed with a salt for pooled siblings). Seeding from the
// address decorrelates backoff across a fleet of clients: with a shared
// constant seed, every client recovering from the same outage would sleep
// identical jittered delays and hammer the server in lockstep.
func jitterSeed(addr string, salt uint64) uint64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= fnvPrime
	}
	// One SplitMix64 round over the salt scatters pooled siblings that
	// share an address into distinct jitter streams.
	z := h + (salt+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// splitMix is a tiny deterministic generator (SplitMix64) for retry
// jitter, so behavior does not depend on math/rand ordering.
type splitMix struct{ state uint64 }

func (r *splitMix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitMix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
