// Package utility implements Spectra's utility functions (paper §3.6).
// The solver evaluates execution alternatives by their impact on the three
// user metrics — execution time, energy usage, and fidelity — each weighted
// by its current importance, and returns the product of the weighted
// values.
package utility

import (
	"math"
	"time"
)

// DefaultEnergyExponent is the constant k in the weighted energy term
// (1/E)^(k·c); the paper uses 10.
const DefaultEnergyExponent = 10

// Prediction carries the context-independent metric values the utility
// function weighs: predicted execution time, predicted energy usage, and
// the application-assigned desirability of the alternative's fidelity.
type Prediction struct {
	Latency time.Duration
	// EnergyJoules is the predicted client energy consumption.
	EnergyJoules float64
	// Fidelity is the application's desirability of the fidelity setting,
	// typically in (0, 1].
	Fidelity float64
	// Feasible is false for alternatives that cannot execute at all (e.g.
	// remote plans while partitioned); their utility is zero.
	Feasible bool
}

// Function scores a prediction; higher is better. Applications may override
// the default with their own implementation.
type Function interface {
	Utility(Prediction) float64
}

// LatencyDesirability expresses how desirable an execution time is, in
// (0, 1] ideally. Applications must provide one (paper: "Spectra requires
// each application to provide a function that expresses the desirability of
// different latency values").
type LatencyDesirability func(time.Duration) float64

// ImportanceSource yields the current energy-conservation importance c in
// [0,1], normally a GoalAdaptor.
type ImportanceSource func() float64

// Default is the paper's default utility function: the product of the
// application's latency desirability, the weighted energy term (1/E)^(k·c),
// and the fidelity desirability.
type Default struct {
	// Latency maps predicted execution time to desirability; nil selects
	// InverseLatency.
	Latency LatencyDesirability
	// Importance yields c; nil means c = 0 (energy ignored).
	Importance ImportanceSource
	// K is the energy exponent constant; 0 selects DefaultEnergyExponent.
	K float64
}

var _ Function = Default{}

// Utility implements Function.
func (d Default) Utility(p Prediction) float64 {
	if !p.Feasible {
		return 0
	}
	latFn := d.Latency
	if latFn == nil {
		latFn = InverseLatency
	}
	u := latFn(p.Latency)
	if u < 0 {
		u = 0
	}

	var c float64
	if d.Importance != nil {
		c = clamp01(d.Importance())
	}
	u *= EnergyTerm(p.EnergyJoules, c, d.K)

	fid := p.Fidelity
	if fid < 0 {
		fid = 0
	}
	u *= fid
	if math.IsNaN(u) || math.IsInf(u, 0) {
		return 0
	}
	return u
}

// EnergyTerm computes the weighted energy component (1/E)^(k·c). When c is
// 0 energy does not affect utility at all; when c is 1 it dominates. Energy
// below one millijoule is clamped to keep the term finite.
func EnergyTerm(joules, c, k float64) float64 {
	if k <= 0 {
		k = DefaultEnergyExponent
	}
	c = clamp01(c)
	if c == 0 {
		return 1
	}
	if joules < 1e-3 {
		joules = 1e-3
	}
	return math.Pow(1/joules, k*c)
}

// InverseLatency is the 1/T desirability used by Janus and Latex: an
// operation that takes twice as long is half as desirable. Latencies under
// one millisecond are clamped.
func InverseLatency(t time.Duration) float64 {
	s := t.Seconds()
	if s < 1e-3 {
		s = 1e-3
	}
	return 1 / s
}

// DeadlineLatency returns a desirability function in the style of
// Pangloss-Lite: 1 at or below best, 0 at or beyond worst, and linear in
// between. (The paper prints the interpolation as (T−0.5)/(5−0.5), which
// increases with T; desirability must decrease, so the intended
// (worst−T)/(worst−best) is used here.)
func DeadlineLatency(best, worst time.Duration) LatencyDesirability {
	if worst <= best {
		worst = best + time.Nanosecond
	}
	return func(t time.Duration) float64 {
		switch {
		case t <= best:
			return 1
		case t >= worst:
			return 0
		default:
			return float64(worst-t) / float64(worst-best)
		}
	}
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
