package utility

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestInverseLatency(t *testing.T) {
	if got := InverseLatency(2 * time.Second); got != 0.5 {
		t.Fatalf("1/T(2s) = %v", got)
	}
	if got := InverseLatency(500 * time.Millisecond); got != 2 {
		t.Fatalf("1/T(0.5s) = %v", got)
	}
	// Clamped below 1 ms.
	if got := InverseLatency(0); got != 1000 {
		t.Fatalf("1/T(0) = %v, want 1000", got)
	}
}

func TestDeadlineLatency(t *testing.T) {
	f := DeadlineLatency(500*time.Millisecond, 5*time.Second)
	tests := []struct {
		give time.Duration
		want float64
	}{
		{give: 100 * time.Millisecond, want: 1},
		{give: 500 * time.Millisecond, want: 1},
		{give: 5 * time.Second, want: 0},
		{give: 10 * time.Second, want: 0},
		{give: 2750 * time.Millisecond, want: 0.5},
	}
	for _, tt := range tests {
		if got := f(tt.give); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("f(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestDeadlineLatencyDegenerate(t *testing.T) {
	f := DeadlineLatency(time.Second, time.Second)
	if got := f(500 * time.Millisecond); got != 1 {
		t.Fatalf("below best = %v", got)
	}
	if got := f(2 * time.Second); got != 0 {
		t.Fatalf("beyond worst = %v", got)
	}
}

func TestEnergyTermZeroImportance(t *testing.T) {
	if got := EnergyTerm(100, 0, 10); got != 1 {
		t.Fatalf("c=0 term = %v, want 1", got)
	}
}

func TestEnergyTermPenalizesHighEnergy(t *testing.T) {
	low := EnergyTerm(1, 0.5, 10)
	high := EnergyTerm(10, 0.5, 10)
	if high >= low {
		t.Fatalf("energy term not decreasing: E=1 -> %v, E=10 -> %v", low, high)
	}
	// c=1, k=10: (1/10)^10
	if got := EnergyTerm(10, 1, 10); math.Abs(got-1e-10)/1e-10 > 1e-9 {
		t.Fatalf("term = %v, want 1e-10", got)
	}
}

func TestEnergyTermClampsTinyEnergy(t *testing.T) {
	got := EnergyTerm(0, 1, 10)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("term for zero energy = %v", got)
	}
}

func TestDefaultUtilityProduct(t *testing.T) {
	u := Default{Importance: func() float64 { return 0 }}
	p := Prediction{Latency: 2 * time.Second, EnergyJoules: 5, Fidelity: 0.5, Feasible: true}
	// 1/2 × 1 × 0.5 = 0.25
	if got := u.Utility(p); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("utility = %v, want 0.25", got)
	}
}

func TestDefaultUtilityInfeasible(t *testing.T) {
	u := Default{}
	p := Prediction{Latency: time.Second, EnergyJoules: 1, Fidelity: 1, Feasible: false}
	if got := u.Utility(p); got != 0 {
		t.Fatalf("infeasible utility = %v, want 0", got)
	}
}

func TestDefaultUtilityEnergyTradeoff(t *testing.T) {
	// With c=1, a slower but cheaper alternative must win; with c=0 the
	// faster one must win. This is the hybrid-vs-remote speech tradeoff.
	fast := Prediction{Latency: 2 * time.Second, EnergyJoules: 3, Fidelity: 1, Feasible: true}
	slow := Prediction{Latency: 3 * time.Second, EnergyJoules: 1, Fidelity: 1, Feasible: true}

	perf := Default{Importance: func() float64 { return 0 }}
	if perf.Utility(fast) <= perf.Utility(slow) {
		t.Fatal("with c=0 the faster alternative must win")
	}
	save := Default{Importance: func() float64 { return 1 }}
	if save.Utility(slow) <= save.Utility(fast) {
		t.Fatal("with c=1 the cheaper alternative must win")
	}
}

func TestDefaultUtilityCustomLatency(t *testing.T) {
	u := Default{Latency: DeadlineLatency(time.Second, 3*time.Second)}
	p := Prediction{Latency: 2 * time.Second, EnergyJoules: 1, Fidelity: 1, Feasible: true}
	if got := u.Utility(p); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utility = %v, want 0.5", got)
	}
}

func TestDefaultUtilityNegativeFidelityClamped(t *testing.T) {
	u := Default{}
	p := Prediction{Latency: time.Second, EnergyJoules: 1, Fidelity: -3, Feasible: true}
	if got := u.Utility(p); got != 0 {
		t.Fatalf("utility = %v, want 0", got)
	}
}

// Property: utility is finite, non-negative, monotone non-increasing in
// latency and in energy (at fixed everything else).
func TestDefaultUtilityMonotoneProperty(t *testing.T) {
	imp := 0.7
	u := Default{Importance: func() float64 { return imp }}
	f := func(latMs uint16, joulesQ uint16, fidQ uint8) bool {
		lat := time.Duration(latMs) * time.Millisecond
		joules := float64(joulesQ) / 100
		fid := float64(fidQ%101) / 100
		p := Prediction{Latency: lat, EnergyJoules: joules, Fidelity: fid, Feasible: true}
		base := u.Utility(p)
		if base < 0 || math.IsNaN(base) || math.IsInf(base, 0) {
			return false
		}
		slower := p
		slower.Latency += time.Second
		costlier := p
		costlier.EnergyJoules += 10
		return u.Utility(slower) <= base+1e-12 && u.Utility(costlier) <= base+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
