package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn(7) = %v", n)
		}
		if u := r.Uniform(2, 5); u < 2 || u >= 5 {
			t.Fatalf("Uniform = %v", u)
		}
	}
	if r.Intn(0) != 0 {
		t.Fatal("Intn(0) should be 0")
	}
	if r.Uniform(5, 2) != 5 {
		t.Fatal("degenerate Uniform should return lo")
	}
}

func TestZipfSkewsSmall(t *testing.T) {
	r := NewRNG(7)
	counts := make(map[int]int)
	const draws = 5000
	for i := 0; i < draws; i++ {
		k := r.Zipf(50, 1.1)
		if k < 1 || k > 50 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("Zipf not skewed: count(1)=%d count(10)=%d", counts[1], counts[10])
	}
	if r.Zipf(1, 1.1) != 1 {
		t.Fatal("Zipf(1) should be 1")
	}
}

func TestUtterances(t *testing.T) {
	u := Utterances(1, 50)
	if len(u) != 50 {
		t.Fatalf("len = %d", len(u))
	}
	for _, s := range u {
		if s < 1 || s > 3 {
			t.Fatalf("utterance length %v out of [1,3]", s)
		}
	}
	u2 := Utterances(1, 50)
	for i := range u {
		if u[i] != u2[i] {
			t.Fatal("utterances not reproducible")
		}
	}
}

func TestSentences(t *testing.T) {
	s := Sentences(2, 100, 40)
	short, long := 0, 0
	for _, w := range s {
		if w < 2 || w > 40 {
			t.Fatalf("sentence %v out of range", w)
		}
		if w <= 10 {
			short++
		} else {
			long++
		}
	}
	if short <= long {
		t.Fatalf("sentence lengths not skewed short: %d short, %d long", short, long)
	}
}

func TestEditPattern(t *testing.T) {
	always := EditPattern(3, 20, 1.0)
	for _, e := range always {
		if !e {
			t.Fatal("probability 1 produced a non-edit")
		}
	}
	never := EditPattern(3, 20, 0)
	for _, e := range never {
		if e {
			t.Fatal("probability 0 produced an edit")
		}
	}
}

// Property: generators never panic and respect bounds for arbitrary seeds.
func TestGeneratorBoundsProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%32) + 1
		for _, u := range Utterances(seed, count) {
			if u < 1 || u > 3 {
				return false
			}
		}
		for _, w := range Sentences(seed, count, 30) {
			if w < 2 || w > 30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
