// Package workload provides deterministic workload generators for the
// evaluation harness, examples, and soak tests: utterance lengths for the
// speech recognizer, sentence lengths for the translator, and edit
// patterns for the document workload. All generators are seeded and
// reproducible — the simulation substrate is deterministic and the
// workloads must be too.
package workload

import (
	"math"
)

// RNG is a small deterministic generator (SplitMix64) so workloads do not
// depend on math/rand ordering across Go versions.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*r.Float64()
}

// Zipf returns a value in [1, n] following a Zipf-like distribution with
// exponent s > 0; small values dominate, as sentence and utterance lengths
// do in real corpora.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 1
	}
	// Inverse-CDF sampling over the discrete Zipf mass function.
	var norm float64
	for k := 1; k <= n; k++ {
		norm += 1 / math.Pow(float64(k), s)
	}
	target := r.Float64() * norm
	var acc float64
	for k := 1; k <= n; k++ {
		acc += 1 / math.Pow(float64(k), s)
		if acc >= target {
			return k
		}
	}
	return n
}

// Utterances generates n speech utterance lengths in seconds, clustered
// around typical command phrases (1-3 s).
func Utterances(seed uint64, n int) []float64 {
	r := NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Round((1.0+2.0*r.Float64())*10) / 10
	}
	return out
}

// Sentences generates n translation sentence lengths in words with a
// Zipf-like skew toward short sentences, capped at maxWords.
func Sentences(seed uint64, n, maxWords int) []float64 {
	r := NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(2 + r.Zipf(maxWords-2, 1.1))
	}
	return out
}

// EditPattern says whether the user edited the document before each of n
// compile runs, with the given edit probability.
func EditPattern(seed uint64, n int, editProb float64) []bool {
	r := NewRNG(seed)
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Float64() < editProb
	}
	return out
}
