package simnet

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestTransferTimeBasic(t *testing.T) {
	l := NewLink(LinkConfig{Name: "l", Latency: 10 * time.Millisecond, BandwidthBps: 1000})
	d, err := l.TransferTime(2000)
	if err != nil {
		t.Fatal(err)
	}
	want := 10*time.Millisecond + 2*time.Second
	if d != want {
		t.Fatalf("transfer time = %v, want %v", d, want)
	}
}

func TestTransferTimeZeroAndNegativeBytes(t *testing.T) {
	l := NewLink(LinkConfig{Name: "l", Latency: time.Millisecond, BandwidthBps: 1000})
	d0, err := l.TransferTime(0)
	if err != nil || d0 != time.Millisecond {
		t.Fatalf("zero-byte transfer = %v, %v", d0, err)
	}
	dn, err := l.TransferTime(-10)
	if err != nil || dn != time.Millisecond {
		t.Fatalf("negative-byte transfer = %v, %v", dn, err)
	}
}

func TestPartitionedLink(t *testing.T) {
	l := NewLink(LinkConfig{Name: "l", BandwidthBps: 1000})
	l.SetPartitioned(true)
	if _, err := l.TransferTime(10); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	if _, err := l.RoundTripTime(1, 1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("round trip on partitioned link: %v", err)
	}
	l.SetPartitioned(false)
	if _, err := l.TransferTime(10); err != nil {
		t.Fatalf("healed link still failing: %v", err)
	}
}

func TestContentionReducesBandwidth(t *testing.T) {
	l := NewLink(LinkConfig{Name: "l", BandwidthBps: 1000})
	if got := l.EffectiveBandwidthBps(); got != 1000 {
		t.Fatalf("effective bw = %v", got)
	}
	l.SetContention(0.5)
	if got := l.EffectiveBandwidthBps(); got != 500 {
		t.Fatalf("effective bw under contention = %v, want 500", got)
	}
	l.SetContention(2) // clamped
	if got := l.EffectiveBandwidthBps(); got < 1 || got > 1000 {
		t.Fatalf("clamped contention gave bw %v", got)
	}
	l.SetContention(-1)
	if got := l.EffectiveBandwidthBps(); got != 1000 {
		t.Fatalf("negative contention gave bw %v", got)
	}
}

func TestScaleAndSetBandwidth(t *testing.T) {
	l := NewLink(LinkConfig{Name: "l", BandwidthBps: 1000})
	l.ScaleBandwidth(0.5)
	if got := l.BandwidthBps(); got != 500 {
		t.Fatalf("scaled bw = %v, want 500", got)
	}
	l.ScaleBandwidth(-2) // ignored
	if got := l.BandwidthBps(); got != 500 {
		t.Fatalf("negative scale changed bw to %v", got)
	}
	l.SetBandwidthBps(250)
	if got := l.BandwidthBps(); got != 250 {
		t.Fatalf("set bw = %v, want 250", got)
	}
	l.SetBandwidthBps(0) // ignored
	if got := l.BandwidthBps(); got != 250 {
		t.Fatalf("zero bw accepted: %v", got)
	}
}

func TestRoundTripTime(t *testing.T) {
	l := NewLink(LinkConfig{Name: "l", Latency: 5 * time.Millisecond, BandwidthBps: 1000})
	d, err := l.RoundTripTime(500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	want := 10*time.Millisecond + 2*time.Second
	if d != want {
		t.Fatalf("round trip = %v, want %v", d, want)
	}
}

func TestTrafficAccounting(t *testing.T) {
	l := NewLink(LinkConfig{Name: "l", BandwidthBps: 1000})
	l.RecordTransfer(100, 200)
	l.RecordTransfer(-5, 50)
	sent, recv := l.Traffic()
	if sent != 100 || recv != 250 {
		t.Fatalf("traffic = (%d,%d), want (100,250)", sent, recv)
	}
}

func TestLinkPresets(t *testing.T) {
	serial := NewSerialLink()
	wifi := NewWireless2Mb()
	if serial.BandwidthBps() >= wifi.BandwidthBps() {
		t.Fatal("serial link must be slower than wireless")
	}
	if serial.Name() != "serial" || wifi.Name() != "wireless" {
		t.Fatal("preset names wrong")
	}
}

func TestLatencySetter(t *testing.T) {
	l := NewLink(LinkConfig{Name: "l", BandwidthBps: 1000, Latency: time.Millisecond})
	l.SetLatency(3 * time.Millisecond)
	if l.Latency() != 3*time.Millisecond {
		t.Fatalf("latency = %v", l.Latency())
	}
	if l.RTT() != 6*time.Millisecond {
		t.Fatalf("rtt = %v", l.RTT())
	}
	l.SetLatency(-time.Second)
	if l.Latency() != 3*time.Millisecond {
		t.Fatal("negative latency accepted")
	}
}

// Property: transfer time is monotone in byte count and never below latency.
func TestTransferTimeMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		l := NewLink(LinkConfig{Name: "l", Latency: time.Millisecond, BandwidthBps: 50_000})
		small, big := int64(a%1_000_000), int64(b%1_000_000)
		if small > big {
			small, big = big, small
		}
		ts, err1 := l.TransferTime(small)
		tb, err2 := l.TransferTime(big)
		return err1 == nil && err2 == nil && ts <= tb && ts >= l.Latency()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
