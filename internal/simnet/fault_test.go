package simnet

import (
	"errors"
	"testing"
	"time"
)

func testLink() *Link {
	return NewLink(LinkConfig{Name: "test", Latency: time.Millisecond, BandwidthBps: 1_000_000})
}

// TestFaultInjectorDeterministicDrops verifies that two injectors with the
// same seed drop exactly the same transfers — failure sequences replay.
func TestFaultInjectorDeterministicDrops(t *testing.T) {
	run := func() []bool {
		l := testLink()
		l.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 42, DropRate: 0.3}))
		pattern := make([]bool, 200)
		for i := range pattern {
			_, err := l.TransferTime(1000)
			pattern[i] = err != nil
			if err != nil && !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("drop error = %v, want ErrInjectedFault", err)
			}
		}
		return pattern
	}
	a, b := run(), run()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at transfer %d", i)
		}
		if a[i] {
			drops++
		}
	}
	// 30% of 200 = 60 expected; allow a generous band.
	if drops < 30 || drops > 100 {
		t.Fatalf("drops = %d out of 200 at rate 0.3", drops)
	}

	// A different seed produces a different sequence.
	l := testLink()
	l.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 7, DropRate: 0.3}))
	same := true
	for i := range a {
		_, err := l.TransferTime(1000)
		if (err != nil) != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestFaultInjectorSpikes verifies latency spikes stretch transfers without
// failing them, and that counters account both fault kinds.
func TestFaultInjectorSpikes(t *testing.T) {
	l := testLink()
	base, err := l.TransferTime(1000)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewFaultInjector(FaultConfig{Seed: 9, SpikeRate: 1.0, SpikeLatency: 250 * time.Millisecond})
	l.SetFaultInjector(inj)
	spiked, err := l.TransferTime(1000)
	if err != nil {
		t.Fatal(err)
	}
	if spiked != base+250*time.Millisecond {
		t.Fatalf("spiked transfer = %v, want %v", spiked, base+250*time.Millisecond)
	}
	if inj.Spikes() != 1 || inj.Drops() != 0 {
		t.Fatalf("counters = %d spikes / %d drops", inj.Spikes(), inj.Drops())
	}

	inj2 := NewFaultInjector(FaultConfig{Seed: 9, DropRate: 1.0})
	l.SetFaultInjector(inj2)
	if _, err := l.TransferTime(1000); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault", err)
	}
	if inj2.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", inj2.Drops())
	}
}

// TestFaultInjectorFlapSchedule scripts an outage window: the link
// partitions when the clock passes the down event and heals at the up
// event, without any manual SetPartitioned calls.
func TestFaultInjectorFlapSchedule(t *testing.T) {
	epoch := time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)
	now := epoch
	inj := NewFaultInjector(FaultConfig{})
	inj.SetClock(func() time.Time { return now })
	inj.Schedule([]FlapEvent{
		{At: epoch.Add(10 * time.Second), Down: true},
		{At: epoch.Add(20 * time.Second), Down: false},
	})
	l := testLink()
	l.SetFaultInjector(inj)

	if _, err := l.TransferTime(1000); err != nil {
		t.Fatalf("before the outage: %v", err)
	}
	now = epoch.Add(11 * time.Second)
	if _, err := l.TransferTime(1000); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("inside the outage: %v, want ErrPartitioned", err)
	}
	// Still down until the heal event fires.
	now = epoch.Add(19 * time.Second)
	if _, err := l.TransferTime(1000); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("still inside the outage: %v, want ErrPartitioned", err)
	}
	now = epoch.Add(21 * time.Second)
	if _, err := l.TransferTime(1000); err != nil {
		t.Fatalf("after the heal: %v", err)
	}

	// A clock jump across both events lands on the final state.
	inj.Schedule([]FlapEvent{
		{At: epoch.Add(30 * time.Second), Down: true},
		{At: epoch.Add(40 * time.Second), Down: false},
	})
	now = epoch.Add(50 * time.Second)
	if _, err := l.TransferTime(1000); err != nil {
		t.Fatalf("after jumping past down+up: %v", err)
	}
}
