package simnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrInjectedFault is the cause of a transfer dropped by a FaultInjector.
// Spectra classifies it as transient: the same call may succeed on another
// placement or on retry.
var ErrInjectedFault = errors.New("simnet: injected fault")

// FaultConfig tunes a link's fault injector. The zero value injects
// nothing.
type FaultConfig struct {
	// Seed initializes the deterministic RNG; 0 selects a fixed default so
	// identical configurations replay identical fault sequences.
	Seed uint64
	// DropRate is the probability in [0,1] that a transfer fails with
	// ErrInjectedFault.
	DropRate float64
	// SpikeRate is the probability in [0,1] that a transfer incurs
	// SpikeLatency of extra delay (a congestion burst).
	SpikeRate float64
	// SpikeLatency is the extra one-way delay added to spiked transfers.
	SpikeLatency time.Duration
}

// FlapEvent is one step of a scripted link outage: at time At the link
// goes down (Down=true) or heals (Down=false).
type FlapEvent struct {
	At   time.Time
	Down bool
}

// FaultInjector perturbs a link's transfers deterministically: probabilistic
// drops, latency spikes, and scripted partition flaps. All randomness comes
// from a SplitMix64 stream seeded at construction, so a simulation with the
// same seed observes the same faults at the same transfers — failures are
// reproducible, which is what makes the chaos scenarios assertable.
type FaultInjector struct {
	mu sync.Mutex

	cfg   FaultConfig
	state uint64

	// now supplies the (virtual) current time for evaluating the flap
	// schedule; nil disables scripted flaps.
	now   func() time.Time
	flaps []FlapEvent
	// flapIdx is the first schedule entry not yet consumed.
	flapIdx int

	drops  int64
	spikes int64
}

// NewFaultInjector builds an injector from the configuration.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.Seed == 0 {
		cfg.Seed = 0x9e3779b97f4a7c15
	}
	return &FaultInjector{cfg: cfg, state: cfg.Seed}
}

// SetClock supplies the time source used to evaluate the flap schedule —
// the simulation's virtual clock.
func (f *FaultInjector) SetClock(now func() time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = now
}

// Schedule installs a scripted flap sequence, replacing any previous one.
// Events are applied in time order as the clock passes them.
func (f *FaultInjector) Schedule(events []FlapEvent) {
	sorted := append([]FlapEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At.Before(sorted[j].At) })
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flaps = sorted
	f.flapIdx = 0
}

// Drops returns how many transfers the injector has dropped.
func (f *FaultInjector) Drops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drops
}

// Spikes returns how many transfers the injector has delayed.
func (f *FaultInjector) Spikes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.spikes
}

// flapState consumes all schedule entries at or before the current time and
// returns the partition state the link should adopt. ok is false when no
// entry has newly fired.
func (f *FaultInjector) flapState() (down, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.now == nil || f.flapIdx >= len(f.flaps) {
		return false, false
	}
	now := f.now()
	for f.flapIdx < len(f.flaps) && !f.flaps[f.flapIdx].At.After(now) {
		down = f.flaps[f.flapIdx].Down
		ok = true
		f.flapIdx++
	}
	return down, ok
}

// perturb decides one transfer's fate: dropped, spiked, or untouched.
func (f *FaultInjector) perturb() (extra time.Duration, drop bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.DropRate > 0 && f.float64Locked() < f.cfg.DropRate {
		f.drops++
		return 0, true
	}
	if f.cfg.SpikeRate > 0 && f.float64Locked() < f.cfg.SpikeRate {
		f.spikes++
		return f.cfg.SpikeLatency, false
	}
	return 0, false
}

// nextLocked advances the SplitMix64 stream.
func (f *FaultInjector) nextLocked() uint64 {
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64Locked returns a uniform sample in [0,1).
func (f *FaultInjector) float64Locked() float64 {
	return float64(f.nextLocked()>>11) / float64(1<<53)
}

// dropError wraps ErrInjectedFault with the link's name.
func dropError(link string) error {
	return fmt.Errorf("simnet: drop on %q: %w", link, ErrInjectedFault)
}
