// Package simnet models the network links of the Spectra testbed: the
// serial line between the Itsy and the T20, and the shared 2 Mb/s wireless
// network connecting the 560X to servers A and B and to the Coda file
// servers. A link turns byte counts into transfer durations; the passive
// network monitor recovers bandwidth and latency estimates from the
// resulting traffic observations, just as it would from real RPC logs.
package simnet

import (
	"errors"
	"sync"
	"time"

	"spectra/internal/sim"
)

// ErrPartitioned is returned when a transfer is attempted over a
// partitioned link.
var ErrPartitioned = errors.New("simnet: link partitioned")

// Link models a point-to-point network path.
type Link struct {
	mu sync.Mutex

	name string
	// latency is the one-way propagation delay.
	latency time.Duration
	// bandwidthBps is the raw link bandwidth in bytes per second.
	bandwidthBps float64
	// contention is the fraction of bandwidth consumed by other hosts
	// sharing the medium, in [0,1).
	contention float64
	// partitioned marks the link as down.
	partitioned bool

	// faults perturbs transfers when non-nil (chaos testing).
	faults *FaultInjector

	// bytesSent/bytesReceived account traffic crossing the link.
	bytesSent     int64
	bytesReceived int64
}

// LinkConfig configures a Link.
type LinkConfig struct {
	Name         string
	Latency      time.Duration
	BandwidthBps float64
	Contention   float64
}

// NewLink constructs a link.
func NewLink(cfg LinkConfig) *Link {
	if cfg.BandwidthBps <= 0 {
		cfg.BandwidthBps = 1
	}
	if cfg.Contention < 0 {
		cfg.Contention = 0
	}
	if cfg.Contention >= 1 {
		cfg.Contention = 0.99
	}
	return &Link{
		name:         cfg.Name,
		latency:      cfg.Latency,
		bandwidthBps: cfg.BandwidthBps,
		contention:   cfg.Contention,
	}
}

// NewSerialLink returns a model of the Itsy-T20 serial line: 115.2 kb/s
// with negligible propagation delay.
func NewSerialLink() *Link {
	return NewLink(LinkConfig{
		Name:         "serial",
		Latency:      5 * time.Millisecond,
		BandwidthBps: 14_400, // 115.2 kb/s
	})
}

// NewWireless2Mb returns a model of the shared 2 Mb/s wireless network used
// in the Latex and Pangloss experiments. Effective throughput of the 2 Mb/s
// WaveLAN generation was well under the nominal rate; 160 KB/s matches
// published measurements.
func NewWireless2Mb() *Link {
	return NewLink(LinkConfig{
		Name:         "wireless",
		Latency:      8 * time.Millisecond,
		BandwidthBps: 160_000,
	})
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Latency returns the one-way propagation delay.
func (l *Link) Latency() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.latency
}

// SetLatency changes the one-way propagation delay.
func (l *Link) SetLatency(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if d >= 0 {
		l.latency = d
	}
}

// RTT returns the round-trip time.
func (l *Link) RTT() time.Duration { return 2 * l.Latency() }

// BandwidthBps returns the raw link bandwidth in bytes per second.
func (l *Link) BandwidthBps() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bandwidthBps
}

// SetBandwidthBps changes the raw bandwidth, as the paper's network
// scenario does by halving it.
func (l *Link) SetBandwidthBps(bps float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if bps > 0 {
		l.bandwidthBps = bps
	}
}

// ScaleBandwidth multiplies the raw bandwidth by f (>0).
func (l *Link) ScaleBandwidth(f float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if f > 0 {
		l.bandwidthBps *= f
	}
}

// SetContention sets the fraction of bandwidth used by other hosts.
func (l *Link) SetContention(f float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case f < 0:
		l.contention = 0
	case f >= 1:
		l.contention = 0.99
	default:
		l.contention = f
	}
}

// EffectiveBandwidthBps returns the bandwidth available to this host after
// contention, the quantity the network monitor ultimately estimates.
func (l *Link) EffectiveBandwidthBps() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bandwidthBps * (1 - l.contention)
}

// SetPartitioned marks the link up or down.
func (l *Link) SetPartitioned(down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.partitioned = down
}

// Partitioned reports whether the link is down.
func (l *Link) Partitioned() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.partitioned
}

// SetFaultInjector attaches (or with nil detaches) a fault injector; every
// subsequent transfer consults it for drops, latency spikes, and scripted
// partition flaps.
func (l *Link) SetFaultInjector(f *FaultInjector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.faults = f
}

// Faults returns the attached fault injector, or nil.
func (l *Link) Faults() *FaultInjector {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.faults
}

// TransferTime returns how long moving n bytes one way takes, including
// one propagation delay. It returns ErrPartitioned if the link is down and
// ErrInjectedFault when an attached fault injector drops the transfer.
func (l *Link) TransferTime(n int64) (time.Duration, error) {
	f := l.Faults()
	if f != nil {
		if down, ok := f.flapState(); ok {
			l.SetPartitioned(down)
		}
	}
	if l.Partitioned() {
		return 0, ErrPartitioned
	}
	if n < 0 {
		n = 0
	}
	var extra time.Duration
	if f != nil {
		ex, drop := f.perturb()
		if drop {
			return 0, dropError(l.name)
		}
		extra = ex
	}
	bw := l.EffectiveBandwidthBps()
	return l.Latency() + extra + sim.DurationSeconds(float64(n)/bw), nil
}

// RoundTripTime returns the duration of a request/response exchange that
// sends sendBytes and receives recvBytes, including both propagation
// delays.
func (l *Link) RoundTripTime(sendBytes, recvBytes int64) (time.Duration, error) {
	up, err := l.TransferTime(sendBytes)
	if err != nil {
		return 0, err
	}
	down, err := l.TransferTime(recvBytes)
	if err != nil {
		return 0, err
	}
	return up + down, nil
}

// RecordTransfer accounts traffic over the link.
func (l *Link) RecordTransfer(sent, received int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if sent > 0 {
		l.bytesSent += sent
	}
	if received > 0 {
		l.bytesReceived += received
	}
}

// Traffic returns the cumulative bytes sent and received over the link.
func (l *Link) Traffic() (sent, received int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesSent, l.bytesReceived
}
