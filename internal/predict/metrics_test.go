package predict

import (
	"testing"

	"spectra/internal/obs"
)

func TestBinnedPredictSource(t *testing.T) {
	p := NewBinnedPredictor(nil)
	if _, src, ok := p.PredictSource(Query{}); ok || src != SourceNone {
		t.Fatalf("empty predictor: src=%v ok=%v, want SourceNone/false", src, ok)
	}
	p.Observe(Observation{Discrete: map[string]string{"f": "a"}, Value: 10})
	if _, src, ok := p.PredictSource(Query{Discrete: map[string]string{"f": "a"}}); !ok || src != SourceBin {
		t.Fatalf("matching bin: src=%v ok=%v, want SourceBin/true", src, ok)
	}
	if _, src, ok := p.PredictSource(Query{Discrete: map[string]string{"f": "b"}}); !ok || src != SourceGeneric {
		t.Fatalf("unseen bin: src=%v ok=%v, want SourceGeneric/true", src, ok)
	}
}

func TestDefaultNumericHitCounters(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewDefaultNumeric(Options{Metrics: reg})

	p.Predict(Query{}) // nothing observed yet: miss
	if got := reg.Counter(obs.MPredictMiss).Value(); got != 1 {
		t.Fatalf("miss = %d, want 1", got)
	}

	p.Observe(Observation{Discrete: map[string]string{"f": "a"}, Value: 4})
	p.Predict(Query{Discrete: map[string]string{"f": "a"}})
	if got := reg.Counter(obs.MPredictHitBin).Value(); got != 1 {
		t.Fatalf("bin hits = %d, want 1", got)
	}
	p.Predict(Query{Discrete: map[string]string{"f": "zzz"}})
	if got := reg.Counter(obs.MPredictHitGeneric).Value(); got != 1 {
		t.Fatalf("generic hits = %d, want 1", got)
	}

	p.Observe(Observation{Data: "doc1", Value: 7})
	p.Predict(Query{Data: "doc1"})
	if got := reg.Counter(obs.MPredictHitData).Value(); got != 1 {
		t.Fatalf("data hits = %d, want 1", got)
	}
}

func TestDefaultNumericNoMetricsStillWorks(t *testing.T) {
	p := NewDefaultNumeric(Options{})
	p.Observe(Observation{Value: 3})
	if v, ok := p.Predict(Query{}); !ok || v < 2.99 || v > 3.01 {
		t.Fatalf("predict = (%v, %v), want (≈3, true)", v, ok)
	}
}
