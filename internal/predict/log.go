package predict

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// UsageLog persists resource-usage observations so that models survive
// restarts: "Each predictor reads the logged resource usage data and
// generates a parameterized model of demand" (paper §3.4). Records are
// JSON lines in one file per operation.
//
// Locking is per operation, matching the one-file-per-operation layout:
// concurrent Ends of different operations append to different files and
// never contend, while appends and replays of the same operation serialize
// so lines stay whole and ordered.
type UsageLog struct {
	mu    sync.Mutex // guards locks map only
	locks map[string]*sync.Mutex
	dir   string
}

// Record is one logged observation of one resource.
type Record struct {
	Resource string             `json:"resource"`
	Params   map[string]float64 `json:"params,omitempty"`
	Discrete map[string]string  `json:"discrete,omitempty"`
	Data     string             `json:"data,omitempty"`
	Value    float64            `json:"value"`
	// Files lists accessed files for the file predictor; only present on
	// "files" records.
	Files []FileAccess `json:"files,omitempty"`
}

// NewUsageLog returns a log rooted at dir, creating it if needed.
// An empty dir disables persistence: Append becomes a no-op and Replay
// yields nothing.
func NewUsageLog(dir string) (*UsageLog, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("predict: create log dir: %w", err)
		}
	}
	return &UsageLog{dir: dir, locks: make(map[string]*sync.Mutex)}, nil
}

// opLock returns the mutex guarding one operation's log file.
func (l *UsageLog) opLock(operation string) *sync.Mutex {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.locks == nil {
		l.locks = make(map[string]*sync.Mutex)
	}
	m, ok := l.locks[operation]
	if !ok {
		m = new(sync.Mutex)
		l.locks[operation] = m
	}
	return m
}

// Append writes a record to the operation's log file.
func (l *UsageLog) Append(operation string, rec Record) error {
	return l.AppendAll(operation, []Record{rec})
}

// AppendAll writes a batch of records to the operation's log file in one
// open/write/close, holding only that operation's lock. End uses it to
// flush an operation's whole observation set without reopening the file
// per record.
func (l *UsageLog) AppendAll(operation string, recs []Record) error {
	if l == nil || l.dir == "" || len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("predict: marshal record: %w", err)
		}
		buf = append(buf, data...)
		buf = append(buf, '\n')
	}

	m := l.opLock(operation)
	m.Lock()
	defer m.Unlock()

	f, err := os.OpenFile(l.path(operation), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("predict: open log: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("predict: write log: %w", err)
	}
	return nil
}

// Replay invokes fn for every logged record of the operation, in order.
// A missing log file is not an error. Malformed lines are skipped.
func (l *UsageLog) Replay(operation string, fn func(Record)) error {
	if l == nil || l.dir == "" {
		return nil
	}
	m := l.opLock(operation)
	m.Lock()
	defer m.Unlock()

	f, err := os.Open(l.path(operation))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("predict: open log: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		fn(rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("predict: read log: %w", err)
	}
	return nil
}

// path maps an operation name to its log file, sanitizing separators.
func (l *UsageLog) path(operation string) string {
	safe := strings.NewReplacer("/", "_", string(filepath.Separator), "_", "..", "_").Replace(operation)
	return filepath.Join(l.dir, safe+".log")
}
