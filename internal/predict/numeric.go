package predict

import (
	"container/list"
	"sync"

	"spectra/internal/obs"
)

// DefaultDataCacheSize bounds the LRU cache of data-specific models.
const DefaultDataCacheSize = 32

// Numeric is the interface implemented by numeric demand predictors.
// Applications may supply their own implementation (paper §3.4); the
// default is DefaultNumeric.
type Numeric interface {
	// Observe records a measured sample.
	Observe(Observation)
	// Predict estimates usage at the query point. ok is false when the
	// predictor has no basis for an estimate yet.
	Predict(Query) (value float64, ok bool)
}

// Options configures a DefaultNumeric predictor.
type Options struct {
	// Features are the continuous regression features.
	Features []string
	// Decay is the recency decay in (0,1]; 0 selects DefaultDecay.
	Decay float64
	// DataCacheSize bounds the LRU of data-specific models; 0 selects
	// DefaultDataCacheSize, negative disables data-specific models.
	DataCacheSize int
	// DisableParams drops the continuous features (ablation: the models
	// reduce to decayed means per discrete bin).
	DisableParams bool
	// Metrics, when non-nil, receives model-selection hit counters
	// (data-specific vs bin vs generic vs miss) for every Predict call.
	Metrics *obs.Registry
}

// DefaultNumeric is the paper's default predictor: a binned, recency-
// weighted linear model plus an LRU cache of data-specific models keyed by
// data-object name. When a query names a data object with a cached model,
// the data-specific prediction wins; otherwise the general model is used.
type DefaultNumeric struct {
	mu sync.Mutex

	features  []string
	decay     float64
	general   *BinnedPredictor
	cacheSize int
	byData    map[string]*list.Element
	lru       *list.List // of *dataEntry, front = most recent

	// Pre-resolved hit counters; nil handles are no-ops, so the unmetered
	// path costs one nil test per Predict.
	hitData, hitBin, hitGeneric, miss *obs.Counter
}

type dataEntry struct {
	name  string
	model *BinnedPredictor
}

var _ Numeric = (*DefaultNumeric)(nil)

// NewDefaultNumeric constructs the default predictor.
func NewDefaultNumeric(opts Options) *DefaultNumeric {
	features := opts.Features
	if opts.DisableParams {
		features = nil
	}
	decay := opts.Decay
	if decay == 0 {
		decay = DefaultDecay
	}
	size := opts.DataCacheSize
	if size == 0 {
		size = DefaultDataCacheSize
	}
	p := &DefaultNumeric{
		features:  append([]string(nil), features...),
		decay:     decay,
		general:   NewBinnedPredictorDecay(features, decay),
		cacheSize: size,
		byData:    make(map[string]*list.Element),
		lru:       list.New(),
	}
	if opts.Metrics != nil {
		p.hitData = opts.Metrics.Counter(obs.MPredictHitData)
		p.hitBin = opts.Metrics.Counter(obs.MPredictHitBin)
		p.hitGeneric = opts.Metrics.Counter(obs.MPredictHitGeneric)
		p.miss = opts.Metrics.Counter(obs.MPredictMiss)
	}
	return p
}

// Observe records the sample in the general model and, when the observation
// names a data object, in that object's data-specific model.
func (p *DefaultNumeric) Observe(o Observation) {
	p.general.Observe(o)
	if o.Data == "" || p.cacheSize < 0 {
		return
	}
	p.dataModel(o.Data, true).Observe(o)
}

// Predict uses the data-specific model when one is cached for the query's
// data object and has samples, otherwise the general model.
func (p *DefaultNumeric) Predict(q Query) (float64, bool) {
	v, src, ok := p.PredictSource(q)
	switch src {
	case SourceData:
		p.hitData.Inc()
	case SourceBin:
		p.hitBin.Inc()
	case SourceGeneric:
		p.hitGeneric.Inc()
	default:
		p.miss.Inc()
	}
	return v, ok
}

// PredictSource is Predict plus the model that answered: a data-specific
// model, the matching discrete bin of the general model, its generic
// fallback, or none. It does not touch the hit counters.
func (p *DefaultNumeric) PredictSource(q Query) (float64, Source, bool) {
	if q.Data != "" && p.cacheSize >= 0 {
		if m := p.dataModel(q.Data, false); m != nil {
			if v, ok := m.Predict(q); ok {
				return v, SourceData, true
			}
		}
	}
	return p.general.PredictSource(q)
}

// DataModelCount returns the number of cached data-specific models.
func (p *DefaultNumeric) DataModelCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// HasDataModel reports whether a model is cached for the given data object
// without affecting LRU order.
func (p *DefaultNumeric) HasDataModel(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.byData[name]
	return ok
}

// dataModel returns the model for a data object, creating (and possibly
// evicting) when create is set. A lookup moves the entry to the LRU front.
func (p *DefaultNumeric) dataModel(name string, create bool) *BinnedPredictor {
	p.mu.Lock()
	defer p.mu.Unlock()

	if el, ok := p.byData[name]; ok {
		p.lru.MoveToFront(el)
		entry, _ := el.Value.(*dataEntry)
		if entry == nil {
			return nil
		}
		return entry.model
	}
	if !create {
		return nil
	}
	entry := &dataEntry{
		name:  name,
		model: NewBinnedPredictorDecay(p.features, p.decay),
	}
	p.byData[name] = p.lru.PushFront(entry)
	for p.lru.Len() > p.cacheSize {
		oldest := p.lru.Back()
		if oldest == nil {
			break
		}
		p.lru.Remove(oldest)
		old, _ := oldest.Value.(*dataEntry)
		if old != nil {
			delete(p.byData, old.name)
		}
	}
	return entry.model
}
