package predict

import (
	"fmt"
	"sync"
	"testing"

	"spectra/internal/obs"
)

// Stress the predictors with interleaved readers and writers. Run with
// -race (the CI race job does); without it the test still checks basic
// liveness and sane outputs under concurrency.
func TestConcurrentPredictorStress(t *testing.T) {
	const (
		writers = 4
		readers = 4
		iters   = 300
	)

	lm := NewLinearModel([]string{"x"})
	bp := NewBinnedPredictor([]string{"x"})
	fp := NewFilePredictor()
	dn := NewDefaultNumeric(Options{
		Features: []string{"x"},
		Metrics:  obs.NewRegistry(),
	})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				x := float64(i % 50)
				lm.Observe(map[string]float64{"x": x}, 2*x+1)
				bp.Observe(Observation{
					Params:   map[string]float64{"x": x},
					Discrete: map[string]string{"fid": fmt.Sprintf("f%d", i%3)},
					Value:    3 * x,
				})
				dn.Observe(Observation{
					Params: map[string]float64{"x": x},
					Data:   fmt.Sprintf("d%d", i%8),
					Value:  x,
				})
				fp.ObserveOp([]FileAccess{
					{Path: fmt.Sprintf("/w%d/f%d", w, i%20), SizeBytes: 512},
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				x := float64(i % 50)
				lm.Predict(map[string]float64{"x": x})
				bp.PredictSource(Query{
					Params:   map[string]float64{"x": x},
					Discrete: map[string]string{"fid": fmt.Sprintf("f%d", i%3)},
				})
				dn.Predict(Query{
					Params: map[string]float64{"x": x},
					Data:   fmt.Sprintf("d%d", i%8),
				})
				fp.Likelihood(fmt.Sprintf("/w%d/f%d", r%writers, i%20))
				fp.Candidates(1e-3)
				fp.ExpectedFetchBytes(nil)
				if i%25 == 0 {
					bp.BinCount()
					dn.DataModelCount()
					fp.KnownFiles()
				}
			}
		}(r)
	}
	wg.Wait()

	if bp.BinCount() == 0 || bp.SampleCount() == 0 {
		t.Fatal("binned predictor absorbed no samples")
	}
	if fp.KnownFiles() == 0 {
		t.Fatal("file predictor lost all files")
	}
	if v, ok := lm.Predict(map[string]float64{"x": 10}); !ok || v <= 0 {
		t.Fatalf("linear model predict = (%v, %v)", v, ok)
	}
}
