package predict

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearModelEmpty(t *testing.T) {
	m := NewLinearModel([]string{"x"})
	if _, ok := m.Predict(map[string]float64{"x": 1}); ok {
		t.Fatal("empty model must not predict")
	}
	if _, ok := m.Mean(); ok {
		t.Fatal("empty model has no mean")
	}
}

func TestLinearModelMeanOnlyWithFewSamples(t *testing.T) {
	m := NewLinearModel([]string{"x"})
	m.Observe(map[string]float64{"x": 3}, 10)
	got, ok := m.Predict(map[string]float64{"x": 100})
	if !ok || got != 10 {
		t.Fatalf("single-sample prediction = (%v,%v), want (10,true)", got, ok)
	}
}

func TestLinearModelRecoversLine(t *testing.T) {
	// y = 2x + 5, exact fit expected.
	m := NewLinearModelDecay([]string{"x"}, 1)
	for x := 0.0; x < 10; x++ {
		m.Observe(map[string]float64{"x": x}, 2*x+5)
	}
	got, ok := m.Predict(map[string]float64{"x": 20})
	if !ok {
		t.Fatal("model should predict")
	}
	if math.Abs(got-45) > 1e-6 {
		t.Fatalf("predict(20) = %v, want 45", got)
	}
}

func TestLinearModelMultipleFeatures(t *testing.T) {
	// y = 3a - 2b + 1
	m := NewLinearModelDecay([]string{"a", "b"}, 1)
	pts := []struct{ a, b float64 }{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}, {5, 1}, {3, 4},
	}
	for _, p := range pts {
		m.Observe(map[string]float64{"a": p.a, "b": p.b}, 3*p.a-2*p.b+1)
	}
	got, ok := m.Predict(map[string]float64{"a": 10, "b": 2})
	if !ok || math.Abs(got-27) > 1e-6 {
		t.Fatalf("predict = (%v,%v), want 27", got, ok)
	}
}

func TestLinearModelConstantInputFallsBackToMean(t *testing.T) {
	// All x identical: slope underdetermined; ridge keeps it solvable and
	// the answer should stay near the mean.
	m := NewLinearModelDecay([]string{"x"}, 1)
	for i := 0; i < 10; i++ {
		m.Observe(map[string]float64{"x": 4}, 8)
	}
	got, ok := m.Predict(map[string]float64{"x": 4})
	if !ok || math.Abs(got-8) > 1e-3 {
		t.Fatalf("constant-input prediction = (%v,%v), want ~8", got, ok)
	}
}

func TestLinearModelRecencyWeighting(t *testing.T) {
	// Behaviour change: old regime y=100, new regime y=10. A decayed model
	// must end much closer to 10 than an unweighted mean (55).
	m := NewLinearModelDecay(nil, 0.7)
	for i := 0; i < 20; i++ {
		m.Observe(nil, 100)
	}
	for i := 0; i < 10; i++ {
		m.Observe(nil, 10)
	}
	got, ok := m.Predict(nil)
	if !ok {
		t.Fatal("should predict")
	}
	if got > 15 {
		t.Fatalf("decayed prediction = %v, want close to 10", got)
	}

	flat := NewLinearModelDecay(nil, 1)
	for i := 0; i < 20; i++ {
		flat.Observe(nil, 100)
	}
	for i := 0; i < 10; i++ {
		flat.Observe(nil, 10)
	}
	fg, _ := flat.Predict(nil)
	if math.Abs(fg-70) > 1e-6 {
		t.Fatalf("unweighted mean = %v, want 70", fg)
	}
}

func TestLinearModelInvalidDecayUsesDefault(t *testing.T) {
	m := NewLinearModelDecay([]string{"x"}, -3)
	m.Observe(map[string]float64{"x": 1}, 2)
	if _, ok := m.Predict(map[string]float64{"x": 1}); !ok {
		t.Fatal("model with defaulted decay should work")
	}
}

func TestLinearModelFeaturesCopied(t *testing.T) {
	feats := []string{"x"}
	m := NewLinearModel(feats)
	feats[0] = "mutated"
	if got := m.Features(); got[0] != "x" {
		t.Fatalf("features aliased caller slice: %v", got)
	}
	got := m.Features()
	got[0] = "mutated2"
	if m.Features()[0] != "x" {
		t.Fatal("Features() exposed internal slice")
	}
}

func TestLinearModelCoefficients(t *testing.T) {
	m := NewLinearModelDecay([]string{"x"}, 1)
	if _, ok := m.Coefficients(); ok {
		t.Fatal("empty model exposed coefficients")
	}
	for x := 0.0; x < 6; x++ {
		m.Observe(map[string]float64{"x": x}, 2*x+5)
	}
	beta, ok := m.Coefficients()
	if !ok || len(beta) != 2 {
		t.Fatalf("coefficients = %v, %v", beta, ok)
	}
	if math.Abs(beta[0]-5) > 1e-6 || math.Abs(beta[1]-2) > 1e-6 {
		t.Fatalf("beta = %v, want [5 2]", beta)
	}
}

func TestLinearModelSampleCount(t *testing.T) {
	m := NewLinearModel(nil)
	for i := 0; i < 7; i++ {
		m.Observe(nil, float64(i))
	}
	if m.SampleCount() != 7 {
		t.Fatalf("sample count = %d", m.SampleCount())
	}
	if s := m.String(); s == "" {
		t.Fatal("String empty")
	}
}

// Property: predictions on the training input of a perfectly linear
// relation are finite and bounded by observed extremes within tolerance.
func TestLinearModelFiniteProperty(t *testing.T) {
	f := func(vals []float64) bool {
		m := NewLinearModel([]string{"x"})
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Clamp magnitudes so the ridge solver stays well conditioned.
			v = math.Mod(v, 1e6)
			m.Observe(map[string]float64{"x": float64(i)}, v)
		}
		got, ok := m.Predict(map[string]float64{"x": 1})
		if !ok {
			return m.SampleCount() == 0
		}
		return !math.IsNaN(got) && !math.IsInf(got, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
