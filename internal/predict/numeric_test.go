package predict

import (
	"fmt"
	"math"
	"testing"
)

func TestDefaultNumericGeneralModel(t *testing.T) {
	p := NewDefaultNumeric(Options{Decay: 1})
	p.Observe(Observation{Value: 10})
	p.Observe(Observation{Value: 20})
	got, ok := p.Predict(Query{})
	if !ok || math.Abs(got-15) > 1e-5 {
		t.Fatalf("predict = (%v,%v), want 15", got, ok)
	}
}

func TestDefaultNumericDataSpecificWins(t *testing.T) {
	p := NewDefaultNumeric(Options{Decay: 1})
	// General behaviour: cheap documents.
	for i := 0; i < 10; i++ {
		p.Observe(Observation{Data: "small.tex", Value: 100})
	}
	// One expensive document.
	for i := 0; i < 10; i++ {
		p.Observe(Observation{Data: "big.tex", Value: 5000})
	}
	big, ok := p.Predict(Query{Data: "big.tex"})
	if !ok || math.Abs(big-5000) > 1e-4 {
		t.Fatalf("big.tex = (%v,%v), want 5000", big, ok)
	}
	small, ok := p.Predict(Query{Data: "small.tex"})
	if !ok || math.Abs(small-100) > 1e-5 {
		t.Fatalf("small.tex = (%v,%v), want 100", small, ok)
	}
	// Unknown document: general model (mean of everything).
	unknown, ok := p.Predict(Query{Data: "new.tex"})
	if !ok || math.Abs(unknown-2550) > 1e-4 {
		t.Fatalf("new.tex = (%v,%v), want 2550", unknown, ok)
	}
}

func TestDefaultNumericLRUEviction(t *testing.T) {
	p := NewDefaultNumeric(Options{Decay: 1, DataCacheSize: 3})
	for i := 0; i < 5; i++ {
		p.Observe(Observation{Data: fmt.Sprintf("doc%d", i), Value: float64(i)})
	}
	if got := p.DataModelCount(); got != 3 {
		t.Fatalf("cached models = %d, want 3", got)
	}
	if p.HasDataModel("doc0") || p.HasDataModel("doc1") {
		t.Fatal("oldest models should have been evicted")
	}
	for _, d := range []string{"doc2", "doc3", "doc4"} {
		if !p.HasDataModel(d) {
			t.Fatalf("expected model for %s", d)
		}
	}
}

func TestDefaultNumericLRUTouchOnPredict(t *testing.T) {
	p := NewDefaultNumeric(Options{Decay: 1, DataCacheSize: 2})
	p.Observe(Observation{Data: "a", Value: 1})
	p.Observe(Observation{Data: "b", Value: 2})
	// Touch "a" so "b" becomes the eviction victim.
	if _, ok := p.Predict(Query{Data: "a"}); !ok {
		t.Fatal("predict a failed")
	}
	p.Observe(Observation{Data: "c", Value: 3})
	if !p.HasDataModel("a") || p.HasDataModel("b") || !p.HasDataModel("c") {
		t.Fatalf("LRU order wrong: a=%v b=%v c=%v",
			p.HasDataModel("a"), p.HasDataModel("b"), p.HasDataModel("c"))
	}
}

func TestDefaultNumericDataModelsDisabled(t *testing.T) {
	p := NewDefaultNumeric(Options{Decay: 1, DataCacheSize: -1})
	p.Observe(Observation{Data: "x", Value: 42})
	if p.DataModelCount() != 0 {
		t.Fatal("data models should be disabled")
	}
	got, ok := p.Predict(Query{Data: "x"})
	if !ok || math.Abs(got-42) > 1e-5 {
		t.Fatalf("general prediction = (%v,%v)", got, ok)
	}
}

func TestDefaultNumericDisableParams(t *testing.T) {
	p := NewDefaultNumeric(Options{Features: []string{"len"}, Decay: 1, DisableParams: true})
	for l := 1.0; l <= 6; l++ {
		p.Observe(Observation{Params: map[string]float64{"len": l}, Value: 10 * l})
	}
	// Without parameters the prediction is the mean (35), not 10*len.
	got, ok := p.Predict(Query{Params: map[string]float64{"len": 10}})
	if !ok || math.Abs(got-35) > 1e-5 {
		t.Fatalf("param-disabled prediction = (%v,%v), want 35", got, ok)
	}
}

func TestDefaultNumericParamsEnable(t *testing.T) {
	p := NewDefaultNumeric(Options{Features: []string{"len"}, Decay: 1})
	for l := 1.0; l <= 6; l++ {
		p.Observe(Observation{Params: map[string]float64{"len": l}, Value: 10 * l})
	}
	got, ok := p.Predict(Query{Params: map[string]float64{"len": 10}})
	if !ok || math.Abs(got-100) > 1e-6 {
		t.Fatalf("parameterized prediction = (%v,%v), want 100", got, ok)
	}
}
