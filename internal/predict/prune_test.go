package predict

import (
	"fmt"
	"testing"
)

// Regression: before pruning, every file ever observed stayed in the model
// forever — 10k unique files across a churning workload meant 10k map
// entries decayed on every subsequent ObserveOp.
func TestFilePredictorBoundedUnderChurn(t *testing.T) {
	p := NewFilePredictor()
	const unique = 10000
	for i := 0; i < unique; i++ {
		p.ObserveOp([]FileAccess{{Path: fmt.Sprintf("/churn/f%05d", i), SizeBytes: 1024}})
	}
	// With decay d, a file untouched for n ops has likelihood ≈ d^n (its
	// entry likelihood starts at 1); it must be pruned once below epsilon.
	// After 10k churn ops almost all of the early files are long gone.
	if n := p.KnownFiles(); n >= unique/10 {
		t.Fatalf("model holds %d files after %d-unique-file churn; pruning is not bounding it", n, unique)
	}
	// Recent files must still be there with meaningful likelihoods.
	last := fmt.Sprintf("/churn/f%05d", unique-1)
	if p.Likelihood(last) != 1 {
		t.Fatalf("most recent file likelihood = %v, want 1", p.Likelihood(last))
	}
}

func TestFilePredictorPruneBelowEpsilon(t *testing.T) {
	p := NewFilePredictorDecay(0.5)
	p.ObserveOp([]FileAccess{{Path: "/a", SizeBytes: 10}})
	// Decay /a by observing ops that don't touch it: 0.5^n < 1e-4 at n=14.
	for i := 0; i < 14; i++ {
		p.ObserveOp([]FileAccess{{Path: "/b"}})
	}
	if got := p.Likelihood("/a"); got != 0 {
		t.Fatalf("likelihood(/a) = %v, want 0 (pruned)", got)
	}
	if p.KnownFiles() != 1 {
		t.Fatalf("known files = %d, want 1 (/b only)", p.KnownFiles())
	}
	// A pruned file that is accessed again re-enters like a new file.
	p.ObserveOp([]FileAccess{{Path: "/a"}})
	if p.Likelihood("/a") != 1 {
		t.Fatalf("re-observed likelihood = %v, want 1", p.Likelihood("/a"))
	}
}

// Pruning must never remove a file whose likelihood is still above the
// client's reintegration/candidate threshold (1e-3 > PruneEpsilon).
func TestFilePredictorPruneKeepsCandidates(t *testing.T) {
	p := NewFilePredictorDecay(0.9)
	p.ObserveOp([]FileAccess{{Path: "/keep", SizeBytes: 100}})
	for i := 0; i < 20; i++ { // 0.9^20 ≈ 0.12, far above epsilon
		p.ObserveOp([]FileAccess{{Path: "/other"}})
	}
	cands := p.Candidates(1e-3)
	found := false
	for _, c := range cands {
		if c.Path == "/keep" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/keep missing from candidates %v", cands)
	}
}
