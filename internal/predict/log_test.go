package predict

import (
	"os"
	"path/filepath"
	"testing"
)

func TestUsageLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := NewUsageLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Resource: "cpu", Value: 100, Params: map[string]float64{"len": 2}},
		{Resource: "energy", Value: 1.5, Discrete: map[string]string{"plan": "hybrid"}},
		{Resource: "files", Files: []FileAccess{{Path: "a", SizeBytes: 9}}},
	}
	for _, r := range recs {
		if err := l.Append("speech/recognize", r); err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	if err := l.Replay("speech/recognize", func(r Record) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if got[0].Resource != "cpu" || got[0].Value != 100 || got[0].Params["len"] != 2 {
		t.Fatalf("record 0 = %+v", got[0])
	}
	if got[1].Discrete["plan"] != "hybrid" {
		t.Fatalf("record 1 = %+v", got[1])
	}
	if len(got[2].Files) != 1 || got[2].Files[0].Path != "a" {
		t.Fatalf("record 2 = %+v", got[2])
	}
}

func TestUsageLogMissingFile(t *testing.T) {
	l, err := NewUsageLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	called := false
	if err := l.Replay("never-logged", func(Record) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("callback invoked for missing log")
	}
}

func TestUsageLogDisabled(t *testing.T) {
	l, err := NewUsageLog("")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("op", Record{Resource: "cpu", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay("op", func(Record) { t.Fatal("unexpected record") }); err != nil {
		t.Fatal(err)
	}
}

func TestUsageLogSkipsMalformedLines(t *testing.T) {
	dir := t.TempDir()
	l, err := NewUsageLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("op", Record{Resource: "cpu", Value: 1}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the log with a garbage line, then append another record.
	f, err := os.OpenFile(filepath.Join(dir, "op.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{not json\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := l.Append("op", Record{Resource: "cpu", Value: 2}); err != nil {
		t.Fatal(err)
	}
	var vals []float64
	if err := l.Replay("op", func(r Record) { vals = append(vals, r.Value) }); err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("replayed values = %v, want [1 2]", vals)
	}
}

func TestUsageLogSanitizesOperationNames(t *testing.T) {
	dir := t.TempDir()
	l, err := NewUsageLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("../escape/attempt", Record{Resource: "cpu", Value: 1}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("log dir entries = %d, want 1", len(entries))
	}
	// The file must live directly inside dir, not above it.
	if filepath.Dir(filepath.Join(dir, entries[0].Name())) != dir {
		t.Fatal("log escaped its directory")
	}
}
