package predict

import (
	"sort"
	"sync"
)

// FilePredictor implements the paper's default file-access predictor
// (§3.5). For every file an operation has ever touched it maintains a
// recency-weighted estimate of access likelihood: each execution updates
// each known file's model with 1 if the file was accessed and 0 otherwise.
// The resulting per-file values are probabilities that the file will be
// accessed by the next execution, used both to estimate cache-miss cost and
// to decide which dirty files must be reintegrated before remote execution.
type FilePredictor struct {
	mu sync.Mutex

	decay float64
	files map[string]*fileStat
}

// PruneEpsilon is the likelihood below which a decayed file is dropped
// from the model. It sits well under the reintegration/candidate threshold
// used by the client (1e-3), so pruning never changes a prediction that
// anything consumes; without it the map grows without bound as operations
// touch churning file sets (a file accessed once is otherwise remembered —
// and decayed — forever).
const PruneEpsilon = 1e-4

type fileStat struct {
	likelihood float64
	sizeBytes  int64
	samples    int
	remote     bool
}

// FileAccess describes one file touched by an operation.
type FileAccess struct {
	Path string
	// SizeBytes is the file's size, used to estimate fetch cost.
	SizeBytes int64
	// Remote reports whether the access happened on a remote server
	// rather than the client; miss costs depend on whose cache holds the
	// file.
	Remote bool `json:"remote,omitempty"`
}

// FileLikelihood is a prediction for a single file.
type FileLikelihood struct {
	Path       string
	SizeBytes  int64
	Likelihood float64
	// Remote is the location of the most recent observed access.
	Remote bool
}

// NewFilePredictor returns a predictor with the default recency decay.
func NewFilePredictor() *FilePredictor {
	return NewFilePredictorDecay(DefaultDecay)
}

// NewFilePredictorDecay returns a predictor with an explicit decay in
// (0,1].
func NewFilePredictorDecay(decay float64) *FilePredictor {
	if decay <= 0 || decay > 1 {
		decay = DefaultDecay
	}
	return &FilePredictor{
		decay: decay,
		files: make(map[string]*fileStat),
	}
}

// ObserveOp records the set of files one operation execution accessed.
// Files never seen before enter the model with likelihood 1; files known
// but not accessed this time decay toward 0.
func (p *FilePredictor) ObserveOp(accessed []FileAccess) {
	p.mu.Lock()
	defer p.mu.Unlock()

	seen := make(map[string]bool, len(accessed))
	for _, a := range accessed {
		seen[a.Path] = true
		st, ok := p.files[a.Path]
		if !ok {
			st = &fileStat{likelihood: 1}
			p.files[a.Path] = st
		} else {
			st.likelihood = p.decay*st.likelihood + (1 - p.decay)
		}
		if a.SizeBytes > 0 {
			st.sizeBytes = a.SizeBytes
		}
		st.remote = a.Remote
		st.samples++
	}
	for path, st := range p.files {
		if seen[path] {
			continue
		}
		st.likelihood *= p.decay
		st.samples++
		if st.likelihood < PruneEpsilon {
			delete(p.files, path)
		}
	}
}

// Likelihood returns the predicted access probability for a file; unknown
// files have likelihood 0.
func (p *FilePredictor) Likelihood(path string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.files[path]
	if !ok {
		return 0
	}
	return st.likelihood
}

// Candidates returns every file with access likelihood at or above the
// threshold, sorted by path for determinism.
func (p *FilePredictor) Candidates(threshold float64) []FileLikelihood {
	p.mu.Lock()
	defer p.mu.Unlock()

	var out []FileLikelihood
	for path, st := range p.files {
		if st.likelihood < threshold {
			continue
		}
		out = append(out, FileLikelihood{
			Path:       path,
			SizeBytes:  st.sizeBytes,
			Likelihood: st.likelihood,
			Remote:     st.remote,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ExpectedFetchBytes estimates how many bytes must be fetched from file
// servers to run the operation given the set of locally cached files: for
// each uncached candidate file it adds size × likelihood (paper §3.5).
func (p *FilePredictor) ExpectedFetchBytes(cached map[string]bool) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()

	var total float64
	for path, st := range p.files {
		if cached[path] {
			continue
		}
		total += float64(st.sizeBytes) * st.likelihood
	}
	return total
}

// KnownFiles returns the number of files in the model.
func (p *FilePredictor) KnownFiles() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.files)
}
