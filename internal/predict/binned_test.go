package predict

import (
	"math"
	"testing"
)

func TestDiscreteKeyCanonical(t *testing.T) {
	tests := []struct {
		name string
		give map[string]string
		want string
	}{
		{name: "nil", give: nil, want: ""},
		{name: "empty", give: map[string]string{}, want: ""},
		{name: "single", give: map[string]string{"vocab": "full"}, want: "vocab=full"},
		{
			name: "sorted",
			give: map[string]string{"b": "2", "a": "1"},
			want: "a=1;b=2",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DiscreteKey(tt.give); got != tt.want {
				t.Errorf("DiscreteKey = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestBinnedPredictorSeparatesBins(t *testing.T) {
	p := NewBinnedPredictorDecay(nil, 1)
	for i := 0; i < 5; i++ {
		p.Observe(Observation{Discrete: map[string]string{"vocab": "full"}, Value: 100})
		p.Observe(Observation{Discrete: map[string]string{"vocab": "reduced"}, Value: 10})
	}
	full, ok := p.Predict(Query{Discrete: map[string]string{"vocab": "full"}})
	if !ok || math.Abs(full-100) > 1e-5 {
		t.Fatalf("full bin = (%v,%v), want 100", full, ok)
	}
	red, ok := p.Predict(Query{Discrete: map[string]string{"vocab": "reduced"}})
	if !ok || math.Abs(red-10) > 1e-5 {
		t.Fatalf("reduced bin = (%v,%v), want 10", red, ok)
	}
	if p.BinCount() != 2 {
		t.Fatalf("bin count = %d, want 2", p.BinCount())
	}
}

func TestBinnedPredictorGenericFallback(t *testing.T) {
	p := NewBinnedPredictorDecay(nil, 1)
	p.Observe(Observation{Discrete: map[string]string{"plan": "local"}, Value: 50})
	p.Observe(Observation{Discrete: map[string]string{"plan": "remote"}, Value: 70})
	// Never-seen combination: falls back to the generic model (mean 60).
	got, ok := p.Predict(Query{Discrete: map[string]string{"plan": "hybrid"}})
	if !ok || math.Abs(got-60) > 1e-5 {
		t.Fatalf("generic fallback = (%v,%v), want 60", got, ok)
	}
}

func TestBinnedPredictorEmpty(t *testing.T) {
	p := NewBinnedPredictor(nil)
	if _, ok := p.Predict(Query{}); ok {
		t.Fatal("empty predictor must not predict")
	}
	if p.SampleCount() != 0 {
		t.Fatal("sample count should be 0")
	}
}

func TestBinnedPredictorRegressionWithinBin(t *testing.T) {
	p := NewBinnedPredictorDecay([]string{"len"}, 1)
	for l := 1.0; l <= 8; l++ {
		p.Observe(Observation{
			Params:   map[string]float64{"len": l},
			Discrete: map[string]string{"vocab": "full"},
			Value:    100 * l,
		})
		p.Observe(Observation{
			Params:   map[string]float64{"len": l},
			Discrete: map[string]string{"vocab": "reduced"},
			Value:    30 * l,
		})
	}
	got, ok := p.Predict(Query{
		Params:   map[string]float64{"len": 10},
		Discrete: map[string]string{"vocab": "reduced"},
	})
	if !ok || math.Abs(got-300) > 1e-6 {
		t.Fatalf("reduced@10 = (%v,%v), want 300", got, ok)
	}
}
