package predict

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFilePredictorFirstAccessLikelihoodOne(t *testing.T) {
	p := NewFilePredictor()
	p.ObserveOp([]FileAccess{{Path: "/coda/lm.bin", SizeBytes: 277 * 1024}})
	if got := p.Likelihood("/coda/lm.bin"); got != 1 {
		t.Fatalf("likelihood = %v, want 1", got)
	}
	if got := p.Likelihood("/coda/other"); got != 0 {
		t.Fatalf("unknown file likelihood = %v, want 0", got)
	}
}

func TestFilePredictorDecaysUnaccessed(t *testing.T) {
	p := NewFilePredictorDecay(0.5)
	p.ObserveOp([]FileAccess{{Path: "a", SizeBytes: 10}})
	p.ObserveOp([]FileAccess{{Path: "b", SizeBytes: 20}}) // a not accessed
	if got := p.Likelihood("a"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("a likelihood = %v, want 0.5", got)
	}
	p.ObserveOp([]FileAccess{{Path: "b", SizeBytes: 20}})
	if got := p.Likelihood("a"); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("a likelihood = %v, want 0.25", got)
	}
	// b accessed every time after introduction: stays 1.
	if got := p.Likelihood("b"); math.Abs(got-1) > 1e-12 {
		t.Fatalf("b likelihood = %v, want 1", got)
	}
}

func TestFilePredictorReaccessRecovers(t *testing.T) {
	p := NewFilePredictorDecay(0.5)
	p.ObserveOp([]FileAccess{{Path: "a", SizeBytes: 10}})
	p.ObserveOp(nil) // a -> 0.5
	p.ObserveOp([]FileAccess{{Path: "a", SizeBytes: 10}})
	// 0.5*0.5 + 0.5 = 0.75
	if got := p.Likelihood("a"); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("a likelihood = %v, want 0.75", got)
	}
}

func TestFilePredictorExpectedFetchBytes(t *testing.T) {
	p := NewFilePredictorDecay(0.5)
	p.ObserveOp([]FileAccess{
		{Path: "a", SizeBytes: 1000},
		{Path: "b", SizeBytes: 500},
	})
	cached := map[string]bool{"b": true}
	// a uncached with likelihood 1 -> 1000 bytes expected.
	if got := p.ExpectedFetchBytes(cached); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("expected fetch = %v, want 1000", got)
	}
	// Everything cached -> 0.
	if got := p.ExpectedFetchBytes(map[string]bool{"a": true, "b": true}); got != 0 {
		t.Fatalf("expected fetch with warm cache = %v, want 0", got)
	}
}

func TestFilePredictorCandidates(t *testing.T) {
	p := NewFilePredictorDecay(0.5)
	p.ObserveOp([]FileAccess{{Path: "z", SizeBytes: 1}, {Path: "a", SizeBytes: 2}})
	p.ObserveOp([]FileAccess{{Path: "a", SizeBytes: 2}}) // z decays to 0.5
	got := p.Candidates(0.6)
	if len(got) != 1 || got[0].Path != "a" {
		t.Fatalf("candidates(0.6) = %+v, want only a", got)
	}
	all := p.Candidates(0)
	if len(all) != 2 || all[0].Path != "a" || all[1].Path != "z" {
		t.Fatalf("candidates(0) = %+v, want sorted [a z]", all)
	}
	if p.KnownFiles() != 2 {
		t.Fatalf("known files = %d", p.KnownFiles())
	}
}

func TestFilePredictorInvalidDecay(t *testing.T) {
	p := NewFilePredictorDecay(7)
	p.ObserveOp([]FileAccess{{Path: "a", SizeBytes: 1}})
	if p.Likelihood("a") != 1 {
		t.Fatal("predictor with defaulted decay broken")
	}
}

// Property: likelihoods always stay within [0,1].
func TestFilePredictorBoundedProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		p := NewFilePredictorDecay(0.9)
		p.ObserveOp([]FileAccess{{Path: "f", SizeBytes: 1}})
		for _, hit := range pattern {
			if hit {
				p.ObserveOp([]FileAccess{{Path: "f", SizeBytes: 1}})
			} else {
				p.ObserveOp(nil)
			}
			l := p.Likelihood("f")
			if l < 0 || l > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
