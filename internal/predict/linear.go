// Package predict implements Spectra's self-tuning resource-demand
// predictors. Spectra observes application resource usage, logs it, and
// builds models that predict future demand as a function of fidelity and
// operation input parameters (paper §3.4):
//
//   - continuous variables are modeled with recency-weighted linear
//     regression (LinearModel);
//   - discrete variables are binned, with a generic fallback model used for
//     combinations not yet encountered (BinnedPredictor);
//   - a LRU cache of data-specific models captures per-data-object behaviour
//     such as Latex documents (DataCache);
//   - file accesses are modeled with a per-file access-likelihood estimator
//     (FilePredictor, in file.go).
package predict

import (
	"fmt"
	"math"
	"sync"
)

// DefaultDecay is the per-sample exponential decay applied to model state so
// that recent samples dominate, as required for adapting to changes in
// application behaviour over time.
const DefaultDecay = 0.95

// _ridge is a small regularizer keeping the normal equations solvable when
// inputs are collinear or constant.
const _ridge = 1e-9

// LinearModel is an online, recency-weighted multiple linear regression
// from a fixed set of continuous features to a resource-usage value.
// It maintains exponentially decayed sufficient statistics (XᵀWX, XᵀWy) and
// solves the normal equations at prediction time; with no features it
// degrades to a decayed mean. The zero value is not usable; construct with
// NewLinearModel. LinearModel is safe for concurrent use.
type LinearModel struct {
	mu sync.Mutex

	features []string
	decay    float64

	// Sufficient statistics over the augmented feature vector
	// x = (1, f1, ..., fk).
	xtx [][]float64 // (k+1) x (k+1)
	xty []float64   // (k+1)
	n   float64     // decayed sample count
	raw int         // undecayed sample count
}

// NewLinearModel returns a model over the given continuous features using
// the default recency decay. Feature order is fixed for the model lifetime.
func NewLinearModel(features []string) *LinearModel {
	return NewLinearModelDecay(features, DefaultDecay)
}

// NewLinearModelDecay returns a model with an explicit decay in (0, 1].
// A decay of 1 disables recency weighting (plain least squares), which the
// ablation benchmarks use.
func NewLinearModelDecay(features []string, decay float64) *LinearModel {
	if decay <= 0 || decay > 1 {
		decay = DefaultDecay
	}
	k := len(features) + 1
	m := &LinearModel{
		features: append([]string(nil), features...),
		decay:    decay,
		xtx:      make([][]float64, k),
		xty:      make([]float64, k),
	}
	for i := range m.xtx {
		m.xtx[i] = make([]float64, k)
	}
	return m
}

// Features returns the model's feature names.
func (m *LinearModel) Features() []string {
	return append([]string(nil), m.features...)
}

// SampleCount returns the number of observations the model has absorbed.
func (m *LinearModel) SampleCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.raw
}

// Observe updates the model with a sample. Missing features are treated
// as zero.
func (m *LinearModel) Observe(params map[string]float64, value float64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	x := m.vectorLocked(params)
	k := len(x)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			m.xtx[i][j] = m.decay*m.xtx[i][j] + x[i]*x[j]
		}
		m.xty[i] = m.decay*m.xty[i] + x[i]*value
	}
	m.n = m.decay*m.n + 1
	m.raw++
}

// Predict returns the model's estimate for the given parameters and whether
// the model has enough data to predict at all. With fewer samples than
// features the regression is underdetermined, so the decayed mean is
// returned instead.
func (m *LinearModel) Predict(params map[string]float64) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	if m.raw == 0 {
		return 0, false
	}
	mean := m.xty[0] / m.n
	if m.raw <= len(m.features) {
		return mean, true
	}
	beta, ok := m.solveLocked()
	if !ok {
		return mean, true
	}
	x := m.vectorLocked(params)
	var y float64
	for i, b := range beta {
		y += b * x[i]
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return mean, true
	}
	return y, true
}

// Coefficients returns the current regression coefficients: the intercept
// followed by one weight per feature (in Features order). ok is false when
// the model cannot solve yet (too few or degenerate samples). Intended for
// introspection and tests; Predict is the evaluation path.
func (m *LinearModel) Coefficients() ([]float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.raw <= len(m.features) {
		return nil, false
	}
	beta, ok := m.solveLocked()
	if !ok {
		return nil, false
	}
	return beta, true
}

// Mean returns the decayed mean of observed values.
func (m *LinearModel) Mean() (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.raw == 0 {
		return 0, false
	}
	return m.xty[0] / m.n, true
}

// vectorLocked builds the augmented feature vector (1, f1..fk).
func (m *LinearModel) vectorLocked(params map[string]float64) []float64 {
	x := make([]float64, len(m.features)+1)
	x[0] = 1
	for i, f := range m.features {
		x[i+1] = params[f]
	}
	return x
}

// solveLocked solves (XᵀWX + ridge·I) β = XᵀWy by Gaussian elimination with
// partial pivoting. It reports false if the system is singular.
func (m *LinearModel) solveLocked() ([]float64, bool) {
	k := len(m.xty)
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k+1)
		copy(a[i], m.xtx[i])
		a[i][i] += _ridge * m.n
		a[i][k] = m.xty[i]
	}
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= k; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	beta := make([]float64, k)
	for i := 0; i < k; i++ {
		beta[i] = a[i][k] / a[i][i]
	}
	return beta, true
}

// String implements fmt.Stringer for debugging.
func (m *LinearModel) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("LinearModel(features=%v samples=%d)", m.features, m.raw)
}
