package predict

import (
	"sort"
	"strings"
	"sync"
)

// Observation is one measured sample of a resource's usage by an operation.
type Observation struct {
	// Params are the continuous inputs: operation input parameters and any
	// continuous fidelity dimensions (e.g. utterance length in seconds).
	Params map[string]float64
	// Discrete are the discrete dimensions, typically fidelity settings
	// (e.g. vocabulary="full") and the chosen execution plan.
	Discrete map[string]string
	// Data optionally names the data object the operation ran on (e.g. the
	// Latex top-level input file), enabling data-specific models.
	Data string
	// Value is the measured resource usage (cycles, bytes, joules, ...).
	Value float64
}

// Query describes the prediction point: the same dimensions as an
// Observation, without a value.
type Query struct {
	Params   map[string]float64
	Discrete map[string]string
	Data     string
}

// BinnedPredictor implements the paper's default numeric predictor: it
// maintains one linear model per combination of discrete values plus a
// generic model independent of discrete variables, used whenever a specific
// combination has not yet been encountered.
type BinnedPredictor struct {
	mu sync.Mutex

	features []string
	decay    float64
	bins     map[string]*LinearModel
	generic  *LinearModel
}

// NewBinnedPredictor returns a predictor whose linear models regress over
// the given continuous features.
func NewBinnedPredictor(features []string) *BinnedPredictor {
	return NewBinnedPredictorDecay(features, DefaultDecay)
}

// NewBinnedPredictorDecay returns a predictor with an explicit recency
// decay for its models.
func NewBinnedPredictorDecay(features []string, decay float64) *BinnedPredictor {
	return &BinnedPredictor{
		features: append([]string(nil), features...),
		decay:    decay,
		bins:     make(map[string]*LinearModel),
		generic:  NewLinearModelDecay(features, decay),
	}
}

// Observe updates both the bin matching the observation's discrete values
// and the generic model.
func (p *BinnedPredictor) Observe(o Observation) {
	key := DiscreteKey(o.Discrete)

	p.mu.Lock()
	bin, ok := p.bins[key]
	if !ok {
		bin = NewLinearModelDecay(p.features, p.decay)
		p.bins[key] = bin
	}
	p.mu.Unlock()

	bin.Observe(o.Params, o.Value)
	p.generic.Observe(o.Params, o.Value)
}

// Source identifies which model answered a prediction query.
type Source int

const (
	// SourceNone means no model could answer.
	SourceNone Source = iota
	// SourceBin means the discrete-combination bin answered.
	SourceBin
	// SourceGeneric means the discrete-independent fallback answered.
	SourceGeneric
	// SourceData means a data-specific model answered (DefaultNumeric).
	SourceData
)

// Predict returns the estimate for the query point. It prefers the bin for
// the query's discrete combination and falls back to the generic model.
func (p *BinnedPredictor) Predict(q Query) (float64, bool) {
	v, _, ok := p.PredictSource(q)
	return v, ok
}

// PredictSource is Predict plus the model that produced the answer, for
// observability of bin-vs-generic hit rates.
func (p *BinnedPredictor) PredictSource(q Query) (float64, Source, bool) {
	key := DiscreteKey(q.Discrete)

	p.mu.Lock()
	bin := p.bins[key]
	p.mu.Unlock()

	if bin != nil {
		if v, ok := bin.Predict(q.Params); ok {
			return v, SourceBin, true
		}
	}
	if v, ok := p.generic.Predict(q.Params); ok {
		return v, SourceGeneric, true
	}
	return 0, SourceNone, false
}

// BinCount returns the number of discrete combinations seen so far.
func (p *BinnedPredictor) BinCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.bins)
}

// SampleCount returns the total number of observations absorbed.
func (p *BinnedPredictor) SampleCount() int {
	return p.generic.SampleCount()
}

// DiscreteKey canonicalizes a discrete-value assignment into a stable map
// key ("k1=v1;k2=v2" with sorted keys). An empty or nil map yields "".
func DiscreteKey(discrete map[string]string) string {
	if len(discrete) == 0 {
		return ""
	}
	keys := make([]string, 0, len(discrete))
	for k := range discrete {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(discrete[k])
	}
	return b.String()
}
