package core

import (
	"time"
)

// Poller periodically refreshes the client's server database, as the paper
// describes ("Each client periodically polls servers to obtain a snapshot
// of resource availability", §3.3.5). It is meant for live deployments;
// simulations poll explicitly so virtual time stays deterministic.
type Poller struct {
	stop chan struct{}
	done chan struct{}
}

// StartPolling launches a background poller with the given interval.
// Call Stop to shut it down; the goroutine exits before Stop returns.
func StartPolling(client *Client, interval time.Duration) *Poller {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	p := &Poller{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		client.PollServers()
		for {
			select {
			case <-ticker.C:
				client.PollServers()
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// Stop terminates the poller and waits for its goroutine to exit.
func (p *Poller) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}
