package core

import (
	"context"
	"fmt"
	"sync"

	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/rpc"
	"spectra/internal/sim"
	"spectra/internal/wire"
)

// EchoService is the built-in service every Spectra server offers so that
// clients can probe bandwidth and latency with bulk echo exchanges.
const EchoService = "_spectra.echo"

// Server is a network-facing Spectra server: it hosts services on a node,
// executes them in metered contexts, reports per-RPC resource usage back to
// clients, and publishes resource snapshots for the remote proxy monitors
// (paper §3.2, §3.3.5). The snapshot is produced by the same modular
// monitor framework the client uses (paper §3.3: "contained within a
// modular framework shared by Spectra clients and servers").
type Server struct {
	mu sync.Mutex

	name     string
	node     *Node
	clock    sim.Clock
	rpc      *rpc.Server
	monitors *monitor.Set
	addr     string
}

// NewServer wraps a node as a network server.
func NewServer(name string, node *Node, clock sim.Clock) *Server {
	s := &Server{
		name:  name,
		node:  node,
		clock: clock,
		monitors: monitor.NewSet(
			monitor.NewCPUMonitor(node.Machine()),
			monitor.NewFileCacheMonitor(serverCache{node: node}, node.FetchRateBps),
		),
	}
	s.rpc = rpc.NewServer(s.status)
	s.registerAll()
	s.rpc.Register(EchoService, func(optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
		return payload, &wire.UsageReport{}, nil
	})
	return s
}

// Node returns the underlying node.
func (s *Server) Node() *Node { return s.node }

// Monitors returns the server-side monitor framework (CPU and file-cache
// monitors), so daemons can sample it into a telemetry recorder.
func (s *Server) Monitors() *monitor.Set { return s.monitors }

// SetObserver enables server-side observability: request counts, execution
// latency, per-request traces with queue/exec/respond spans (through the
// RPC layer), and snapshot timing in the monitor framework.
func (s *Server) SetObserver(o *obs.Observer) {
	if o == nil {
		s.rpc.SetObserver("", nil)
		return
	}
	s.rpc.SetObserver(s.name, o)
	s.monitors.SetMetrics(o.Registry)
}

// SetLimits installs admission control on the RPC layer: at most
// MaxConcurrent requests execute at once, at most MaxQueue more wait, and
// the rest are shed with classified overload rejections that clients fail
// over. Call before Listen.
func (s *Server) SetLimits(l rpc.ServerLimits) { s.rpc.SetLimits(l) }

// SetShedExpired toggles deadline-aware load shedding: when on (the
// default), queued requests whose propagated budget has already expired are
// answered with a deadline rejection instead of executing work the client
// has abandoned. Call before Listen.
func (s *Server) SetShedExpired(on bool) { s.rpc.SetShedExpired(on) }

// Register hosts a service on the server (and its node).
func (s *Server) Register(service string, fn ServiceFunc) {
	s.node.RegisterService(service, fn)
	s.rpc.RegisterContext(service, s.wrap(service, fn))
}

// registerAll exposes services already present on the node.
func (s *Server) registerAll() {
	for _, name := range s.node.ServiceNames() {
		fn, ok := s.node.Service(name)
		if ok {
			s.rpc.RegisterContext(name, s.wrap(name, fn))
		}
	}
}

// wrap adapts a ServiceFunc into an rpc.CtxHandler that meters execution,
// reports consumption in the RPC response, and threads the request's
// cancellation into the ServiceContext so abandoned streams stop pacing.
func (s *Server) wrap(service string, fn ServiceFunc) rpc.CtxHandler {
	return func(rctx context.Context, optype string, payload []byte) ([]byte, *wire.UsageReport, error) {
		ctx := NewServiceContext(s.clock, s.node, nil)
		ctx.SetContext(rctx)
		out, err := fn(ctx, optype, payload)
		usage := ctx.Usage()
		report := &wire.UsageReport{
			CPUMegacycles: usage.Megacycles,
			Extra: []wire.NamedValue{
				{Name: "computeSeconds", Value: usage.ComputeSeconds},
				{Name: "fetchSeconds", Value: usage.FetchSeconds},
			},
		}
		for _, f := range usage.Files {
			report.Files = append(report.Files, wire.FileUsage{
				Path:      f.Path,
				SizeBytes: f.SizeBytes,
			})
		}
		if err != nil {
			return nil, report, fmt.Errorf("%s/%s: %w", service, optype, err)
		}
		return out, report, nil
	}
}

// serverCache adapts a node's (possibly nil) cache manager to the monitor
// framework's CacheSource.
type serverCache struct {
	node *Node
}

// CachedPaths implements monitor.CacheSource.
func (c serverCache) CachedPaths() map[string]bool {
	if c.node.Coda() == nil {
		return nil
	}
	return c.node.Coda().CachedPaths()
}

// status builds the server's resource snapshot through the server-side
// monitor framework: the CPU monitor contributes a load-smoothed
// availability estimate, the file-cache monitor the cached-file set.
func (s *Server) status() *wire.ServerStatus {
	snap := s.monitors.Snapshot(s.clock.Now(), nil)
	var cached []string
	for path := range snap.LocalCache.Cached {
		cached = append(cached, path)
	}
	return &wire.ServerStatus{
		Name:         s.name,
		SpeedMHz:     snap.LocalCPU.SpeedMHz,
		LoadFraction: snap.LocalCPU.LoadFraction,
		AvailMHz:     snap.LocalCPU.AvailMHz,
		CachedFiles:  cached,
		FetchRateBps: snap.LocalCache.FetchRateBps,
	}
}

// Listen binds the server and starts serving in the background, returning
// the bound address.
func (s *Server) Listen(addr string) (string, error) {
	bound, err := s.rpc.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.addr = bound
	s.mu.Unlock()
	return bound, nil
}

// Addr returns the bound address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Close stops the server and waits for connections to drain.
func (s *Server) Close() error { return s.rpc.Close() }
