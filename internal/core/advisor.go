package core

import (
	"sync"
)

// Advisor watches resource conditions for one operation and reports when
// the best execution alternative changes — the Odyssey-style upcall that
// lets adaptive applications react between operations instead of
// discovering changed conditions at the next begin_fidelity_op. Call Check
// after condition changes (or from a poll loop); it re-evaluates the
// decision space against the current snapshot.
type Advisor struct {
	mu sync.Mutex

	client *Client
	op     *Operation
	params map[string]float64
	data   string

	lastKey string
	primed  bool
}

// NewAdvisor returns an advisor for the operation at the given inputs.
func (c *Client) NewAdvisor(op *Operation, params map[string]float64, data string) *Advisor {
	return &Advisor{
		client: c,
		op:     op,
		params: params,
		data:   data,
	}
}

// Check re-evaluates the decision space. changed is true when the best
// alternative differs from the previous Check (the first Check primes the
// advisor and reports no change). ok is false when nothing is feasible.
func (a *Advisor) Check() (best ScoredAlternative, changed, ok bool) {
	scored := a.client.EvaluateAlternatives(a.op, a.params, a.data)
	for _, s := range scored {
		if !s.Predicted.Feasible {
			continue
		}
		best = s
		ok = true
		break
	}
	if !ok {
		return ScoredAlternative{}, false, false
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	key := best.Alternative.Key()
	if !a.primed {
		a.primed = true
		a.lastKey = key
		return best, false, true
	}
	if key != a.lastKey {
		a.lastKey = key
		return best, true, true
	}
	return best, false, true
}
