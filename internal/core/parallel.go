package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"spectra/internal/sim"

	spectrarpc "spectra/internal/rpc"
)

// ParallelCall is one branch of a parallel remote phase: the paper's
// future-work extension (§4.3) — "the three engines could be executed in
// parallel on different servers". Each branch may target a different
// server.
type ParallelCall struct {
	// Server names the target; "" uses the operation's decided server.
	Server  string
	OpType  string
	Payload []byte
}

// parallelResult is one branch's outcome: output or error, plus the usage
// actually incurred (partial on failure).
type parallelResult struct {
	out []byte
	rep callReport
	err error
}

// ParallelRuntime is implemented by runtimes that support parallel remote
// execution. Both SimRuntime and NetRuntime do.
type ParallelRuntime interface {
	// ParallelRemote executes the calls concurrently and returns per-branch
	// results (outputs or errors, with per-branch usage reports whose phases
	// are zeroed) and the combined phase usage of the overlapped execution.
	// One failed branch does not abort the others. The context carries the
	// operation's latency budget: live branches are bounded and cancelled by
	// it; the simulation runtime ignores it (virtual time).
	ParallelRemote(ctx context.Context, service string, calls []ParallelCall) ([]parallelResult, phaseUsage)
}

var (
	_ ParallelRuntime = (*SimRuntime)(nil)
	_ ParallelRuntime = (*NetRuntime)(nil)
)

// errNoParallel is returned when the runtime cannot execute in parallel.
var errNoParallel = errors.New("core: runtime does not support parallel execution")

// DoParallelOps executes several remote operations concurrently,
// implementing the paper's proposed parallel execution plans. Outputs are
// returned in call order. Resource usage is accounted per branch; the
// operation's wall-clock advances by the slowest branch only. A branch
// that fails transiently — its server died or its link partitioned
// mid-phase — does not fail the phase: the surviving branches' results are
// kept and the failed branch is re-executed through the failover ladder
// (next-best server, then the client itself).
func (x *OpContext) DoParallelOps(calls []ParallelCall) ([][]byte, error) {
	if x.ended {
		return nil, errEnded
	}
	if len(calls) == 0 {
		return nil, errors.New("core: DoParallelOps needs at least one call")
	}
	pr, ok := x.client.runtime.(ParallelRuntime)
	if !ok {
		return nil, errNoParallel
	}
	resolved := make([]ParallelCall, len(calls))
	for i, c := range calls {
		if c.Server == "" {
			c.Server = x.decision.Alternative.Server
		}
		if c.Server == "" {
			return nil, fmt.Errorf("core: parallel call %d has no server", i)
		}
		resolved[i] = c
	}
	// The whole phase — parallel branches and any failover rungs for the
	// branches that die — runs inside the operation's latency budget, from
	// the same sanctioned root as the single-call path. Without deadline
	// machinery the context is unbounded but still threads through.
	var budget time.Duration
	if _, ok := x.client.runtime.(DeadlineRuntime); ok && !x.client.deadline.Disabled {
		budget = x.client.deadline.budgetFor(x.decision.Predicted.Latency.Seconds())
	}
	ctx, cancel := budgetContext(budget)
	defer cancel()
	results, combined := pr.ParallelRemote(ctx, x.op.spec.Service, resolved)
	for _, res := range results {
		x.account(res.rep)
	}
	x.phases.localSeconds += combined.localSeconds
	x.phases.netSeconds += combined.netSeconds
	x.phases.idleSeconds += combined.idleSeconds

	outs := make([][]byte, len(calls))
	for i, res := range results {
		if res.err == nil {
			outs[i] = res.out
			x.client.health.RecordSuccess(resolved[i].Server)
			continue
		}
		if x.client.failover.disabled() || !isTransientExec(res.err) {
			return nil, fmt.Errorf("core: parallel ops: %w", res.err)
		}
		x.client.noteRemoteFailure(resolved[i].Server, res.err)
		out, _, degraded, err := x.failRemote(ctx, resolved[i].OpType, resolved[i].Payload, resolved[i].Server, res.err, nil)
		if err != nil {
			return nil, fmt.Errorf("core: parallel ops: %w", err)
		}
		if degraded {
			x.degraded = true
		}
		outs[i] = out
	}
	return outs, nil
}

// ParallelRemote implements ParallelRuntime for the simulation: each
// branch executes against a private clock starting at the current instant;
// the shared clock then advances by the slowest branch. The client's radio
// serializes the transfers (network power for their sum) and idles for the
// remainder of the overlapped window. Failed branches contribute the usage
// they incurred before failing. The context is ignored: simulated branches
// consume virtual time, which a wall-clock budget cannot bound.
func (r *SimRuntime) ParallelRemote(_ context.Context, service string, calls []ParallelCall) ([]parallelResult, phaseUsage) {
	start := r.env.Clock().Now()
	results := make([]parallelResult, len(calls))

	var maxElapsed time.Duration
	var transferSeconds float64
	for i, call := range calls {
		out, rep, elapsed, err := r.parallelBranch(start, service, call)
		transferSeconds += rep.phases.netSeconds
		rep.phases = phaseUsage{} // combined accounting below
		results[i] = parallelResult{out: out, rep: rep, err: err}
		if elapsed > maxElapsed {
			maxElapsed = elapsed
		}
	}

	r.env.Clock().Advance(maxElapsed)
	idleSeconds := sim.Seconds(maxElapsed) - transferSeconds
	if idleSeconds < 0 {
		idleSeconds = 0
	}
	r.env.HostAccount().DrainNetwork(sim.DurationSeconds(transferSeconds))
	r.env.HostAccount().DrainIdle(sim.DurationSeconds(idleSeconds))

	combined := phaseUsage{netSeconds: transferSeconds, idleSeconds: idleSeconds}
	return results, combined
}

// parallelBranch runs one branch against a private clock and returns its
// report (with per-branch phases still populated for transfer accounting)
// and total elapsed duration. On failure it returns the usage and time the
// branch consumed before the fault.
func (r *SimRuntime) parallelBranch(start time.Time, service string, call ParallelCall) ([]byte, callReport, time.Duration, error) {
	node, link, ok := r.env.Server(call.Server)
	if !ok {
		return nil, callReport{}, 0, fmt.Errorf("core: unknown server %q", call.Server)
	}
	fn, ok := node.Service(service)
	if !ok {
		return nil, callReport{}, 0, fmt.Errorf("core: server %q does not offer service %q", call.Server, service)
	}

	reqBytes := int64(len(call.Payload) + msgOverheadBytes)
	upT, err := link.TransferTime(reqBytes)
	if err != nil {
		r.setReachable(call.Server, false)
		return nil, callReport{}, 0, fmt.Errorf("core: send to %q: %w", call.Server, err)
	}

	branchClock := sim.NewVirtualClock(start.Add(upT))
	ctx := NewServiceContext(branchClock, node, nil)
	svcStart := branchClock.Now()
	out, err := fn(ctx, call.OpType, call.Payload)
	svcT := branchClock.Now().Sub(svcStart)
	usage := ctx.Usage()
	partial := callReport{
		bytesSent:        reqBytes,
		rpcs:             1,
		remoteMegacycles: usage.Megacycles,
		phases:           phaseUsage{netSeconds: sim.Seconds(upT)},
	}
	if err != nil {
		r.recordTraffic(call.Server, reqBytes, upT)
		link.RecordTransfer(reqBytes, 0)
		return nil, partial, upT + svcT, fmt.Errorf("core: remote %s on %q: %w", service, call.Server, err)
	}

	respBytes := int64(len(out) + msgOverheadBytes)
	downT, err := link.TransferTime(respBytes)
	if err != nil {
		r.setReachable(call.Server, false)
		r.recordTraffic(call.Server, reqBytes, upT)
		link.RecordTransfer(reqBytes, 0)
		return nil, partial, upT + svcT, fmt.Errorf("core: receive from %q: %w", call.Server, err)
	}

	elapsed := upT + svcT + downT
	r.recordTraffic(call.Server, reqBytes, upT)
	r.recordTraffic(call.Server, respBytes, downT)
	link.RecordTransfer(reqBytes, respBytes)
	r.setReachable(call.Server, true)

	rep := callReport{
		bytesSent:        reqBytes,
		bytesReceived:    respBytes,
		rpcs:             1,
		remoteMegacycles: usage.Megacycles,
		files:            usage.Files,
		phases:           phaseUsage{netSeconds: sim.Seconds(upT + downT)},
	}
	return out, rep, elapsed, nil
}

// ParallelRemote implements ParallelRuntime for the live runtime: branches
// check pooled connections out of each target server's pool, so the RPCs
// genuinely overlap without dialing throwaway sockets. A failed branch
// leaves its error in place without aborting its siblings.
//
// Energy accounting mirrors the sim path: the client radio serializes the
// transfers, so the network phase is the per-branch transfer seconds summed
// (bytes over the measured link estimate, plus per-exchange latency) and
// the CPU idles for the rest of the overlapped window.
//
// The context bounds every branch: checkout wait, dial, and exchange all
// respect the operation budget, and an expired budget cancels the
// branches mid-flight instead of letting a stalled server hold the phase
// open unbounded.
func (r *NetRuntime) ParallelRemote(ctx context.Context, service string, calls []ParallelCall) ([]parallelResult, phaseUsage) {
	start := time.Now()
	results := make([]parallelResult, len(calls))

	var wg sync.WaitGroup
	for i := range calls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			call := calls[i]
			pool, err := r.pool(call.Server)
			if err != nil {
				results[i].err = err
				return
			}
			out, usage, _, err := pool.CallContext(ctx, service, call.OpType, call.Payload, nil)
			if err != nil {
				if !isRemoteAppError(err) && !spectrarpc.IsOverloaded(err) {
					r.setReachable(call.Server, false)
				}
				results[i].err = fmt.Errorf("core: remote %s on %q: %w", service, call.Server, err)
				return
			}
			rep := callReport{
				bytesSent:     int64(len(call.Payload)) + msgOverheadBytes,
				bytesReceived: int64(len(out)) + msgOverheadBytes,
				rpcs:          1,
			}
			if usage != nil {
				rep.remoteMegacycles = usage.CPUMegacycles
			}
			results[i] = parallelResult{out: out, rep: rep}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	netSeconds := r.parallelTransferSeconds(calls, results)
	idleSeconds := elapsed.Seconds() - netSeconds
	if idleSeconds < 0 {
		// The link estimate says the transfers alone outlast the window;
		// trust the wall clock and book the whole window to the radio.
		netSeconds = elapsed.Seconds()
		idleSeconds = 0
	}
	combined := phaseUsage{netSeconds: netSeconds, idleSeconds: idleSeconds}
	r.account.DrainNetwork(sim.DurationSeconds(netSeconds))
	r.account.DrainIdle(sim.DurationSeconds(idleSeconds))
	return results, combined
}

// parallelTransferSeconds estimates how long the client radio spent moving
// the branches' bytes: each branch's request+response size over its link's
// measured bandwidth, plus one round trip of latency per exchange. Branches
// whose link has no estimate yet (or that failed before transferring)
// contribute nothing — the time is then attributed to idle, which matches
// the old behavior until the passive monitor warms up.
func (r *NetRuntime) parallelTransferSeconds(calls []ParallelCall, results []parallelResult) float64 {
	if r.network == nil {
		return 0
	}
	var total float64
	for i := range results {
		if results[i].err != nil {
			continue
		}
		est, ok := r.network.Log(calls[i].Server).Estimate()
		if !ok || est.BandwidthBps <= 0 {
			continue
		}
		bytes := results[i].rep.bytesSent + results[i].rep.bytesReceived
		total += float64(bytes)/est.BandwidthBps + est.Latency.Seconds()
	}
	return total
}
