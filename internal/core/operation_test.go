package core

import (
	"testing"

	"spectra/internal/utility"
)

func TestFidelityCombos(t *testing.T) {
	tests := []struct {
		name string
		dims []FidelityDimension
		want int
	}{
		{name: "none", dims: nil, want: 1},
		{name: "one", dims: []FidelityDimension{{Name: "v", Values: []string{"a", "b"}}}, want: 2},
		{
			name: "cartesian",
			dims: []FidelityDimension{
				{Name: "x", Values: []string{"1", "2"}},
				{Name: "y", Values: []string{"1", "2", "3"}},
			},
			want: 6,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			combos := fidelityCombos(tt.dims)
			if len(combos) != tt.want {
				t.Fatalf("combos = %d, want %d", len(combos), tt.want)
			}
			seen := make(map[string]bool, len(combos))
			for _, c := range combos {
				key := ""
				for _, d := range tt.dims {
					key += c[d.Name] + "|"
				}
				if seen[key] {
					t.Fatalf("duplicate combo %v", c)
				}
				seen[key] = true
			}
		})
	}
}

func TestSpecValidationTable(t *testing.T) {
	valid := OperationSpec{
		Name:    "op",
		Service: "svc",
		Plans:   []PlanSpec{{Name: "local"}},
	}
	tests := []struct {
		name    string
		mutate  func(*OperationSpec)
		wantErr bool
	}{
		{name: "valid", mutate: func(*OperationSpec) {}},
		{name: "no name", mutate: func(s *OperationSpec) { s.Name = "" }, wantErr: true},
		{name: "no plans", mutate: func(s *OperationSpec) { s.Plans = nil }, wantErr: true},
		{
			name:    "unnamed plan",
			mutate:  func(s *OperationSpec) { s.Plans = []PlanSpec{{}} },
			wantErr: true,
		},
		{
			name: "duplicate plan",
			mutate: func(s *OperationSpec) {
				s.Plans = []PlanSpec{{Name: "p"}, {Name: "p"}}
			},
			wantErr: true,
		},
		{
			name: "empty fidelity dim",
			mutate: func(s *OperationSpec) {
				s.Fidelities = []FidelityDimension{{Name: "v"}}
			},
			wantErr: true,
		},
		{
			name: "unnamed fidelity dim",
			mutate: func(s *OperationSpec) {
				s.Fidelities = []FidelityDimension{{Values: []string{"a"}}}
			},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := valid
			tt.mutate(&spec)
			err := spec.validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAlternativeEnumeration(t *testing.T) {
	op := &Operation{
		spec: OperationSpec{
			Name: "op",
			Plans: []PlanSpec{
				{Name: "local"},
				{Name: "remote", UsesServer: true},
			},
			Fidelities: []FidelityDimension{
				{Name: "q", Values: []string{"hi", "lo"}},
			},
		},
	}
	op.fidelityCombos = fidelityCombos(op.spec.Fidelities)

	// Two servers: local plan x2 fidelities + remote x 2 servers x 2.
	alts := op.alternatives([]string{"a", "b"})
	if len(alts) != 6 {
		t.Fatalf("alternatives = %d, want 6", len(alts))
	}
	// No servers: remote plans disappear.
	alts = op.alternatives(nil)
	if len(alts) != 2 {
		t.Fatalf("alternatives without servers = %d, want 2", len(alts))
	}
	for _, a := range alts {
		if a.Plan != "local" {
			t.Fatalf("server plan leaked: %+v", a)
		}
	}
}

func TestAlternativeEnumerationValidityFilter(t *testing.T) {
	op := &Operation{
		spec: OperationSpec{
			Name:  "op",
			Plans: []PlanSpec{{Name: "local"}},
			Fidelities: []FidelityDimension{
				{Name: "q", Values: []string{"hi", "lo"}},
			},
			Valid: func(plan string, fid map[string]string) bool {
				return fid["q"] != "lo"
			},
		},
	}
	op.fidelityCombos = fidelityCombos(op.spec.Fidelities)
	alts := op.alternatives(nil)
	if len(alts) != 1 || alts[0].Fidelity["q"] != "hi" {
		t.Fatalf("filtered alternatives = %+v", alts)
	}
}

func TestFidelityValueDefaults(t *testing.T) {
	op := &Operation{spec: OperationSpec{Name: "op"}}
	if got := op.fidelityValue(nil); got != 1 {
		t.Fatalf("default fidelity value = %v, want 1", got)
	}
	op.spec.FidelityUtility = func(fid map[string]string) float64 { return 0.25 }
	if got := op.fidelityValue(nil); got != 0.25 {
		t.Fatalf("custom fidelity value = %v", got)
	}
}

func TestPlanSpecLookup(t *testing.T) {
	op := &Operation{spec: OperationSpec{
		Name:  "op",
		Plans: []PlanSpec{{Name: "a"}, {Name: "b", UsesServer: true}},
	}}
	p, ok := op.planSpec("b")
	if !ok || !p.UsesServer {
		t.Fatalf("planSpec(b) = %+v, %v", p, ok)
	}
	if _, ok := op.planSpec("c"); ok {
		t.Fatal("missing plan found")
	}
}

func TestSpecAccessors(t *testing.T) {
	op := &Operation{spec: OperationSpec{
		Name:           "op",
		Service:        "svc",
		Plans:          []PlanSpec{{Name: "local"}},
		LatencyUtility: utility.InverseLatency,
	}}
	if op.Name() != "op" || op.Spec().Service != "svc" {
		t.Fatal("accessors wrong")
	}
}
