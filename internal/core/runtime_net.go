package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/predict"
	"spectra/internal/sim"
	"spectra/internal/wire"

	spectrarpc "spectra/internal/rpc"
)

// probeEchoBytes sizes the bulk probe exchange against a live server.
const probeEchoBytes = 64 * 1024

// NetRuntime executes operations against real Spectra servers over TCP.
// Local components run on the host node in-process; remote components are
// RPCs to spectrad daemons, whose responses carry server resource usage.
// Passive traffic observation feeds the shared network monitor exactly as
// in the simulation. File state is per-process: as in the paper, a shared
// distributed file system (Coda) is assumed for cross-machine consistency,
// which the in-process substrate provides within one process.
type NetRuntime struct {
	mu sync.Mutex

	clock   sim.Clock
	host    *Node
	account *EnergyAccount
	network *monitor.NetworkMonitor

	addrs    map[string]string
	pools    map[string]*spectrarpc.Pool
	poolOpts spectrarpc.PoolOptions

	// metrics, when non-nil, is attached to every connection pool.
	metrics *obs.Registry
}

var _ Runtime = (*NetRuntime)(nil)

// NewNetRuntime builds a live runtime around the host node. The network
// monitor may be nil.
func NewNetRuntime(host *Node, network *monitor.NetworkMonitor) *NetRuntime {
	return &NetRuntime{
		clock:   sim.RealClock{},
		host:    host,
		account: NewEnergyAccount(host.Machine()),
		network: network,
		addrs:   make(map[string]string),
		pools:   make(map[string]*spectrarpc.Pool),
	}
}

// HostAccount returns the client energy account.
func (r *NetRuntime) HostAccount() *EnergyAccount { return r.account }

// AddServer maps a server name to its TCP address.
func (r *NetRuntime) AddServer(name, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs[name] = addr
}

// SetPoolOptions tunes the per-server connection pools. It applies to
// pools created afterward, so call it before the first remote exchange
// (NewLiveSetup does).
func (r *NetRuntime) SetPoolOptions(opts spectrarpc.PoolOptions) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.poolOpts = opts
}

// SetMetrics attaches the metrics registry to every current and future
// connection pool (pool churn, retry/redial counts, call latency).
func (r *NetRuntime) SetMetrics(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = reg
	for _, p := range r.pools {
		p.SetMetrics(reg)
	}
}

// Close shuts every connection pool down.
func (r *NetRuntime) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for name, p := range r.pools {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
		delete(r.pools, name)
	}
	return first
}

// Now implements Runtime.
func (r *NetRuntime) Now() time.Time { return r.clock.Now() }

// HostService reports whether the client node offers the service, which
// makes local failover possible.
func (r *NetRuntime) HostService(service string) bool {
	_, ok := r.host.Service(service)
	return ok
}

// LocalCall implements Runtime, identically to the simulation: the service
// runs on the host node in a metered context.
func (r *NetRuntime) LocalCall(service, optype string, payload []byte) ([]byte, callReport, error) {
	fn, ok := r.host.Service(service)
	if !ok {
		return nil, callReport{}, fmt.Errorf("core: host does not offer service %q", service)
	}
	ctx := NewServiceContext(r.clock, r.host, r.account)
	out, err := fn(ctx, optype, payload)
	usage := ctx.Usage()
	rep := callReport{
		files: usage.Files,
		phases: phaseUsage{
			localSeconds: usage.ComputeSeconds,
			netSeconds:   usage.FetchSeconds,
		},
	}
	if err != nil {
		return nil, rep, fmt.Errorf("core: local %s/%s: %w", service, optype, err)
	}
	return out, rep, nil
}

// RemoteCall implements Runtime over TCP. Traced calls (tc != nil) carry
// the trace context to the server; the server's span records return on the
// response and are rebased onto the client timeline (see rpc.RebaseSpans).
func (r *NetRuntime) RemoteCall(server, service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, callReport, error) {
	return r.RemoteCallContext(context.Background(), server, service, optype, payload, tc)
}

// RemoteCallContext implements DeadlineRuntime: RemoteCall bounded by the
// context's remaining budget. The budget caps the pool checkout wait, the
// dial, and the exchange, rides the request so the server can shed expired
// work, and cancellation interrupts the exchange mid-flight.
func (r *NetRuntime) RemoteCallContext(ctx context.Context, server, service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, callReport, error) {
	pool, err := r.pool(server)
	if err != nil {
		return nil, callReport{}, err
	}
	start := time.Now()
	out, usage, spans, err := pool.CallContext(ctx, service, optype, payload, tc)
	elapsed := time.Since(start)
	if err != nil {
		// A transport fault means the server cannot be contacted; an
		// admission-control shed means the opposite — the server answered,
		// it is just saturated — so only the former flips reachability. A
		// deadline expiry says nothing either way (the server may be healthy
		// and merely slow, or the budget was short). The pool already
		// evicted any faulted connection.
		if !isRemoteAppError(err) && !spectrarpc.IsOverloaded(err) && !spectrarpc.IsDeadline(err) {
			r.setReachable(server, false)
		}
		return nil, callReport{}, fmt.Errorf("core: remote %s on %q: %w", service, server, err)
	}
	r.setReachable(server, true)

	rep := callReport{
		bytesSent:     int64(len(payload)) + msgOverheadBytes,
		bytesReceived: int64(len(out)) + msgOverheadBytes,
		rpcs:          1,
	}
	if tc != nil {
		rep.serverSpans = spectrarpc.RebaseSpans(server, start, elapsed, spans)
	}
	var serverSeconds float64
	if usage != nil {
		rep.remoteMegacycles = usage.CPUMegacycles
		for _, f := range usage.Files {
			rep.files = append(rep.files, predict.FileAccess{
				Path:      f.Path,
				SizeBytes: f.SizeBytes,
				Remote:    true,
			})
		}
		for _, nv := range usage.Extra {
			if nv.Name == "computeSeconds" || nv.Name == "fetchSeconds" {
				serverSeconds += nv.Value
			}
		}
	}
	// Phase split: the server reports how long it computed; the remainder
	// of the exchange is attributed to the network.
	idle := serverSeconds
	net := elapsed.Seconds() - idle
	if net < 0 {
		net = 0
		idle = elapsed.Seconds()
	}
	rep.phases = phaseUsage{netSeconds: net, idleSeconds: idle}
	r.account.DrainIdle(sim.DurationSeconds(idle))
	r.account.DrainNetwork(sim.DurationSeconds(net))
	return out, rep, nil
}

// Reintegrate implements Runtime against the host's cache manager.
func (r *NetRuntime) Reintegrate(volume string) (int64, time.Duration, error) {
	if r.host.Coda() == nil {
		return 0, 0, nil
	}
	start := time.Now()
	res, err := r.host.Coda().Reintegrate(volume)
	if err != nil {
		return 0, 0, fmt.Errorf("core: reintegrate %q: %w", volume, err)
	}
	return res.BytesSent, time.Since(start), nil
}

// PollServer implements Runtime.
func (r *NetRuntime) PollServer(server string) (*wire.ServerStatus, error) {
	pool, err := r.pool(server)
	if err != nil {
		return nil, err
	}
	status, err := pool.Status()
	if err != nil {
		if !isRemoteAppError(err) && !spectrarpc.IsOverloaded(err) {
			r.setReachable(server, false)
		}
		return nil, fmt.Errorf("core: poll %q: %w", server, err)
	}
	r.setReachable(server, true)
	return status, nil
}

// Probe implements Runtime: a ping plus a bulk echo give the passive
// estimator a latency and a bandwidth observation.
func (r *NetRuntime) Probe(server string) error {
	pool, err := r.pool(server)
	if err != nil {
		return err
	}
	if _, err := pool.Ping(); err != nil {
		r.setReachable(server, false)
		return fmt.Errorf("core: probe %q: %w", server, err)
	}
	bulk := make([]byte, probeEchoBytes)
	if _, _, err := pool.Call(EchoService, "echo", bulk); err != nil {
		if !spectrarpc.IsOverloaded(err) {
			r.setReachable(server, false)
		}
		return fmt.Errorf("core: bulk probe %q: %w", server, err)
	}
	r.setReachable(server, true)
	return nil
}

// pool returns (creating if needed) the server's connection pool, sharing
// its traffic log with the network monitor. Creation never dials —
// connections are established lazily by the first exchanges to need them,
// and faulted connections are evicted and replaced inside the pool.
func (r *NetRuntime) pool(server string) (*spectrarpc.Pool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.pools[server]; ok {
		return p, nil
	}
	addr, ok := r.addrs[server]
	if !ok {
		return nil, fmt.Errorf("core: unknown server %q", server)
	}
	var traffic *spectrarpc.TrafficLog
	if r.network != nil {
		traffic = r.network.Log(server)
	}
	p := spectrarpc.NewPool(addr, traffic, r.poolOpts)
	if r.metrics != nil {
		p.SetMetrics(r.metrics)
	}
	r.pools[server] = p
	return p, nil
}

func (r *NetRuntime) setReachable(server string, ok bool) {
	if r.network != nil {
		r.network.SetReachable(server, ok)
	}
}

// isRemoteAppError distinguishes application-level failures (the service
// returned an error) from transport failures.
func isRemoteAppError(err error) bool {
	var rerr *spectrarpc.RemoteError
	return errors.As(err, &rerr)
}
