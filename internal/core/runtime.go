package core

import (
	"time"

	"spectra/internal/obs"
	"spectra/internal/predict"
	"spectra/internal/wire"
)

// callReport describes what one LocalCall/RemoteCall consumed, as observed
// by the runtime. The OpContext routes it into the monitor framework.
type callReport struct {
	bytesSent        int64
	bytesReceived    int64
	rpcs             int
	remoteMegacycles float64
	files            []predict.FileAccess
	phases           phaseUsage
	// serverSpans are server-side spans of a traced RemoteCall, already
	// rebased onto the client timeline (Parent -1, Origin = server name);
	// the OpContext attaches them under its rpc span. Nil when untraced.
	serverSpans []obs.Span
}

// Runtime executes operation components and server housekeeping. The
// simulation runtime models the paper's testbed; the network runtime drives
// real Spectra servers over TCP.
type Runtime interface {
	// Now returns the runtime's notion of current time (virtual in the
	// simulation), used for operation elapsed-time measurement.
	Now() time.Time

	// LocalCall executes a service on the client machine (do_local_op).
	LocalCall(service, optype string, payload []byte) ([]byte, callReport, error)

	// RemoteCall executes a service on the named server (do_remote_op).
	// tc, when non-nil, propagates the operation's trace context to the
	// server; the runtime returns the server's spans in the callReport,
	// rebased onto the client timeline.
	RemoteCall(server, service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, callReport, error)

	// Reintegrate pushes the client's buffered modifications for a volume
	// to the file servers, returning the bytes sent and the time it took.
	Reintegrate(volume string) (int64, time.Duration, error)

	// PollServer fetches a server's resource snapshot.
	PollServer(server string) (*wire.ServerStatus, error)

	// Probe generates a small and a bulk exchange with the server so the
	// passive network monitor has fresh observations.
	Probe(server string) error
}

// ConsistencySource exposes the Coda state Spectra consults to enforce
// data consistency (paper §3.5). *coda.Client satisfies it once VolumeOf
// is available through the environment wrapper.
type ConsistencySource interface {
	// DirtyVolumes lists volumes with buffered client modifications.
	DirtyVolumes() []string
	// VolumeDirtyBytes is the data a reintegration of the volume would
	// transfer.
	VolumeDirtyBytes(volume string) int64
	// VolumeOf maps a file path to its volume.
	VolumeOf(path string) (string, error)
}
