package core

import (
	"testing"
	"time"

	"spectra/internal/utility"

	solverpkg "spectra/internal/solver"
)

func TestPollerRefreshesStatus(t *testing.T) {
	addr := startLiveServer(t, "polled", 800)
	setup := newLiveClient(t, map[string]string{"polled": addr})

	poller := StartPolling(setup.Client, 20*time.Millisecond)
	defer poller.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if st, ok := setup.Remote.LastStatus("polled"); ok && st.SpeedMHz == 800 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poller never delivered a status")
		}
		time.Sleep(5 * time.Millisecond)
	}
	poller.Stop() // idempotent with the deferred Stop
}

func TestCustomUtilityOverride(t *testing.T) {
	setup := newToySetup(t)
	// A perverse application utility that prefers the slowest alternative.
	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "slowlover.op",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
		Utility: preferSlow{},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	for i := 0; i < 3; i++ {
		runToyOp(t, setup, op, solverpkg.Alternative{Plan: "local"})
		runToyOp(t, setup, op, solverpkg.Alternative{Server: "big", Plan: "remote"})
	}
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	// With the default utility the fast remote plan wins (see
	// TestSelfTunedDecisionPrefersFasterPlan); the override flips it.
	if octx.Decision().Alternative.Plan != "local" {
		t.Fatalf("custom utility ignored: %+v", octx.Decision().Alternative)
	}
	octx.Abort()
}

// preferSlow scores alternatives by their predicted latency.
type preferSlow struct{}

func (preferSlow) Utility(p utility.Prediction) float64 {
	if !p.Feasible {
		return 0
	}
	return p.Latency.Seconds()
}
