package core

import (
	"sync"
	"testing"
	"time"

	"spectra/internal/coda"
	"spectra/internal/sim"
	"spectra/internal/solver"
)

// liveWork is a toy service that sleeps according to the hosting machine's
// modeled speed: 30 Mc on a 1000 MHz server costs 30 ms of real time.
func liveWork(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
	ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 30})
	return []byte("done"), nil
}

// startLiveServer runs a spectrad-style server on a loopback port.
func startLiveServer(t *testing.T, name string, mhz float64) string {
	t.Helper()
	machine := sim.NewMachine(sim.MachineConfig{
		Name:        name,
		SpeedMHz:    mhz,
		OnWallPower: true,
	})
	node := NewNode(machine, coda.NewClient(name, coda.NewFileServer(), 0), nil)
	srv := NewServer(name, node, sim.RealClock{})
	srv.Register("toy", liveWork)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func newLiveClient(t *testing.T, servers map[string]string) *LiveSetup {
	t.Helper()
	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    100, // ten times slower than the fast server
		Power:       sim.PowerModel{IdleW: 2, BusyW: 10, NetW: 3},
		OnWallPower: true,
		Battery:     sim.NewBattery(100_000),
	})
	setup, err := NewLiveSetup(LiveOptions{Host: host, Servers: servers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { setup.Runtime.Close() })
	setup.Host.RegisterService("toy", liveWork)
	return setup
}

func TestLiveEndToEndOffloading(t *testing.T) {
	addr := startLiveServer(t, "fast", 1000)
	setup := newLiveClient(t, map[string]string{"fast": addr})

	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "toy.live",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Client.PollServers()
	setup.Client.Probe()

	run := func(alt solver.Alternative) Report {
		t.Helper()
		octx, err := setup.Client.BeginForced(op, alt, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		if alt.Plan == "remote" {
			_, err = octx.DoRemoteOp("run", []byte("x"))
		} else {
			_, err = octx.DoLocalOp("run", []byte("x"))
		}
		if err != nil {
			t.Fatal(err)
		}
		rep, err := octx.End()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Train both plans over the real network.
	var local, remote Report
	for i := 0; i < 3; i++ {
		local = run(solver.Alternative{Plan: "local"})
		remote = run(solver.Alternative{Server: "fast", Plan: "remote"})
	}
	// Local: 30 Mc at 100 MHz = ~300 ms. Remote: ~30 ms + loopback RPC.
	if local.Elapsed < 200*time.Millisecond {
		t.Fatalf("local elapsed = %v, want ~300ms", local.Elapsed)
	}
	if remote.Elapsed >= local.Elapsed {
		t.Fatalf("remote %v should beat local %v", remote.Elapsed, local.Elapsed)
	}
	if remote.Usage.RemoteMegacycles != 30 {
		t.Fatalf("server-reported cycles = %v, want 30", remote.Usage.RemoteMegacycles)
	}
	if remote.Usage.RPCs != 1 || remote.Usage.BytesSent == 0 {
		t.Fatalf("remote usage = %+v", remote.Usage)
	}

	// Spectra's own decision must offload.
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := octx.Decision().Alternative; got.Plan != "remote" || got.Server != "fast" {
		t.Fatalf("live decision = %+v, want remote on fast", got)
	}
	octx.Abort()
}

func TestLiveServerStatusAndProbe(t *testing.T) {
	addr := startLiveServer(t, "srv", 500)
	setup := newLiveClient(t, map[string]string{"srv": addr})

	status, err := setup.Runtime.PollServer("srv")
	if err != nil {
		t.Fatal(err)
	}
	if status.Name != "srv" || status.SpeedMHz != 500 {
		t.Fatalf("status = %+v", status)
	}
	foundToy := false
	for _, s := range status.Services {
		if s == "toy" {
			foundToy = true
		}
	}
	if !foundToy {
		t.Fatalf("services = %v, want toy", status.Services)
	}

	if err := setup.Runtime.Probe("srv"); err != nil {
		t.Fatal(err)
	}
	if setup.Network.Log("srv").Len() < 2 {
		t.Fatal("probe produced no traffic observations")
	}
	est, ok := setup.Network.Log("srv").Estimate()
	if !ok || est.BandwidthBps <= 0 {
		t.Fatalf("estimate = %+v, %v", est, ok)
	}
}

func TestLiveUnreachableServer(t *testing.T) {
	setup := newLiveClient(t, map[string]string{"ghost": "127.0.0.1:1"})
	if _, err := setup.Runtime.PollServer("ghost"); err == nil {
		t.Fatal("polling a dead server should fail")
	}
	setup.Client.PollServers() // must not panic; marks unreachable
	snap := setup.Client.Monitors().Snapshot(time.Now(), setup.Client.Servers())
	if snap.Network["ghost"].Reachable {
		t.Fatal("ghost marked reachable")
	}
}

func TestServiceLoop(t *testing.T) {
	loop := NewServiceLoop()
	machine := sim.NewMachine(sim.MachineConfig{Name: "m", SpeedMHz: 1000, OnWallPower: true})
	node := NewNode(machine, coda.NewClient("m", coda.NewFileServer(), 0), nil)
	node.RegisterService("loop", loop.Handler())

	// Service main loop, as in the paper's Figure 2.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			op, ok := loop.GetOp() // service_getop
			if !ok {
				return
			}
			out := append([]byte(op.OpType+":"), op.Payload...)
			op.Return(out, nil) // service_retop
		}
	}()

	fn, _ := node.Service("loop")
	ctx := NewServiceContext(sim.RealClock{}, node, nil)
	out, err := fn(ctx, "greet", []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "greet:world" {
		t.Fatalf("out = %q", out)
	}

	loop.Close()
	wg.Wait()
	if _, err := fn(ctx, "late", nil); err == nil {
		t.Fatal("closed loop should reject requests")
	}
	if _, ok := loop.GetOp(); ok {
		t.Fatal("GetOp after close should report closed")
	}
	loop.Close() // idempotent
}

func TestServiceRequestDoubleReturn(t *testing.T) {
	loop := NewServiceLoop()
	defer loop.Close()
	machine := sim.NewMachine(sim.MachineConfig{Name: "m", SpeedMHz: 1000, OnWallPower: true})
	node := NewNode(machine, coda.NewClient("m", coda.NewFileServer(), 0), nil)

	go func() {
		op, ok := loop.GetOp()
		if !ok {
			return
		}
		op.Return([]byte("first"), nil)
		op.Return([]byte("second"), nil) // ignored
	}()
	fn := loop.Handler()
	ctx := NewServiceContext(sim.RealClock{}, node, nil)
	out, err := fn(ctx, "op", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "first" {
		t.Fatalf("out = %q", out)
	}
}
