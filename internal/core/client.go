package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/predict"
	"spectra/internal/sim"
	"spectra/internal/solver"
	"spectra/internal/utility"
)

// Config assembles a Spectra client.
type Config struct {
	// Runtime executes operation components.
	Runtime Runtime
	// Monitors is the resource-monitor framework.
	Monitors *monitor.Set
	// Network is the network monitor inside Monitors (also addressed
	// directly for traffic logs and reachability).
	Network *monitor.NetworkMonitor
	// Consistency exposes Coda dirty state; may be nil when the client
	// never modifies files.
	Consistency ConsistencySource
	// Servers lists the statically configured candidate servers
	// (paper §3.2); a discovery Registry may extend it.
	Servers []string
	// Registry optionally discovers additional servers; may be nil.
	Registry Registry
	// UsageLog persists observations across restarts; may be nil.
	UsageLog *predict.UsageLog
	// Models tunes the demand models.
	Models ModelOptions
	// Solver tunes the heuristic search.
	Solver solver.Options
	// Exhaustive replaces the heuristic solver with exhaustive search
	// (ablation and oracle runs).
	Exhaustive bool
	// Failover tunes transparent re-execution after transient remote
	// failures (see FailoverOptions); the zero value enables it.
	Failover FailoverOptions
	// Deadline tunes end-to-end latency budgets, cancellation, and hedged
	// requests on runtimes that support them (see DeadlineOptions); the
	// zero value enables them with defaults.
	Deadline DeadlineOptions
	// Health tunes the per-server circuit breaker feeding server
	// availability into the decision space; the zero value enables it.
	Health HealthOptions
	// Obs enables observability: metrics, decision traces, and
	// predictor-accuracy accounting. Nil disables all of it at the cost of
	// one nil test per event.
	Obs *obs.Observer
	// SnapshotTTL caches the decision snapshot for this long, so N
	// concurrent BeginFidelityOps share one monitors.Snapshot instead of
	// issuing N remote-status fan-outs. 0 disables caching (every Begin
	// snapshots afresh — the right choice for deterministic simulation,
	// where virtual time may not advance between Begins). Live setups
	// default this to a few tens of milliseconds (see LiveOptions).
	SnapshotTTL time.Duration
	// Cache tunes the placement-decision cache in front of the solver; the
	// zero value disables it (see CacheOptions).
	Cache CacheOptions
	// OverheadClock times decision overheads (BeginOverhead) — a real
	// measurement even in simulation, so it is separate from the Runtime's
	// semantic clock. Nil selects the system clock; tests inject a
	// deterministic clock to pin overhead arithmetic.
	OverheadClock sim.Clock
}

// Registry discovers Spectra servers at runtime. The paper designed for a
// service discovery protocol but shipped static configuration; both are
// provided here.
type Registry interface {
	// Discover returns currently announced server names.
	Discover() []string
}

// StaticRegistry is a fixed server list.
type StaticRegistry []string

// Discover implements Registry.
func (r StaticRegistry) Discover() []string { return append([]string(nil), r...) }

// Client is the Spectra client: it registers operations, decides how and
// where they execute, and self-tunes from observed resource usage.
type Client struct {
	mu sync.Mutex

	runtime  Runtime
	monitors *monitor.Set
	network  *monitor.NetworkMonitor
	cons     ConsistencySource
	servers  []string
	registry Registry
	usageLog *predict.UsageLog

	modelOpts  ModelOptions
	solverOpts solver.Options
	exhaustive bool
	failover   FailoverOptions
	deadline   DeadlineOptions
	health     *HealthTracker

	// latring samples successful remote-call latencies for the adaptive
	// hedge delay (p95 of the window).
	latring latencyRing

	hooks obsHooks

	// wallClock times decision overheads (Config.OverheadClock); never used
	// for semantics, only measurement.
	wallClock sim.Clock

	// dcache is the placement-decision cache; nil when disabled.
	dcache *decisionCache

	// healthGen counts health-tracker transitions. The snapshot cache
	// records the generation it was filled under and treats any later
	// transition as staleness: a post-failover Begin must see the real
	// fleet immediately, not a TTL-fresh snapshot predating the verdict.
	healthGen atomic.Uint64

	// Decision snapshot cache (see Config.SnapshotTTL). Guarded by snapMu,
	// not c.mu: a cache fill calls into the monitor framework (remote proxy
	// reads), and Begin must not contend with the server-list mutex for it.
	// A cached snapshot is shared read-only by every Begin that hits it;
	// applyHealth runs once at fill time, so it is never mutated after
	// publication.
	snapTTL       time.Duration
	snapMu        sync.Mutex
	snapKey       string
	snapAt        time.Time
	snapVal       *monitor.Snapshot
	snapSeq       uint64
	snapHealthGen uint64

	ops    map[string]*Operation
	nextID atomic.Uint64
}

// NewClient assembles a client from the configuration.
func NewClient(cfg Config) (*Client, error) {
	if cfg.Runtime == nil {
		return nil, errors.New("core: config needs a Runtime")
	}
	if cfg.Monitors == nil {
		return nil, errors.New("core: config needs Monitors")
	}
	c := &Client{
		runtime:    cfg.Runtime,
		monitors:   cfg.Monitors,
		network:    cfg.Network,
		cons:       cfg.Consistency,
		servers:    append([]string(nil), cfg.Servers...),
		registry:   cfg.Registry,
		usageLog:   cfg.UsageLog,
		modelOpts:  cfg.Models,
		solverOpts: cfg.Solver,
		exhaustive: cfg.Exhaustive,
		failover:   cfg.Failover,
		deadline:   cfg.Deadline,
		health:     NewHealthTracker(cfg.Health),
		hooks:      newObsHooks(cfg.Obs),
		snapTTL:    cfg.SnapshotTTL,
		wallClock:  cfg.OverheadClock,
		ops:        make(map[string]*Operation),
	}
	if c.wallClock == nil {
		c.wallClock = sim.RealClock{}
	}
	if cfg.Cache.Enabled {
		c.dcache = newDecisionCache(cfg.Cache, cfg.Obs)
	}
	var metricHook func(string, HealthState, HealthState)
	if cfg.Obs != nil && cfg.Obs.Registry != nil {
		metricHook = c.hooks.healthTransition(
			cfg.Obs.Registry.Counter(obs.MHealthOpened),
			cfg.Obs.Registry.Counter(obs.MHealthClosed),
		)
		c.modelOpts.Metrics = cfg.Obs.Registry
	}
	// Runs under the tracker lock: the generation bump is an atomic and the
	// metric hook only touches lock-free counters, so that is safe.
	c.health.OnTransition = func(server string, from, to HealthState) {
		c.healthGen.Add(1)
		if metricHook != nil {
			metricHook(server, from, to)
		}
	}
	return c, nil
}

// Servers returns the current candidate server list: static configuration
// plus anything the discovery registry announces.
func (c *Client) Servers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.servers...)
	if c.registry != nil {
		seen := make(map[string]bool, len(out))
		for _, s := range out {
			seen[s] = true
		}
		for _, s := range c.registry.Discover() {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// AddServer appends a statically configured server.
func (c *Client) AddServer(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.servers {
		if s == name {
			return
		}
	}
	c.servers = append(c.servers, name)
}

// Monitors returns the monitor framework.
func (c *Client) Monitors() *monitor.Set { return c.monitors }

// Runtime returns the execution runtime.
func (c *Client) Runtime() Runtime { return c.runtime }

// Health returns the per-server health tracker.
func (c *Client) Health() *HealthTracker { return c.health }

// PollServers refreshes the server database: each candidate is polled for
// a status snapshot, which the remote proxy monitors record. Unreachable
// servers are marked so; polling errors are reflected in the snapshot
// rather than returned. Servers quarantined by the health tracker are
// skipped until their quarantine elapses, at which point the poll doubles
// as the half-open probe: success re-adopts the server, failure renews
// the quarantine.
func (c *Client) PollServers() {
	var start time.Time
	if c.hooks.pollSeconds != nil {
		start = time.Now()
	}
	for _, server := range c.Servers() {
		if !c.health.Usable(server, c.runtime.Now()) {
			c.monitors.UpdatePreds(server, nil)
			continue
		}
		status, err := c.runtime.PollServer(server)
		if err != nil {
			c.hooks.pollErrors.Inc()
			c.health.RecordFailure(server, c.runtime.Now())
			c.monitors.UpdatePreds(server, nil)
			continue
		}
		c.health.RecordSuccess(server)
		c.monitors.UpdatePreds(server, status)
	}
	c.hooks.pollCycles.Inc()
	if c.hooks.pollSeconds != nil {
		c.hooks.pollSeconds.Observe(time.Since(start).Seconds())
	}
}

// Probe generates fresh traffic toward every candidate server so the
// passive network monitor has current bandwidth and latency estimates.
// Like PollServers it respects and feeds the health tracker.
func (c *Client) Probe() {
	for _, server := range c.Servers() {
		if !c.health.Usable(server, c.runtime.Now()) {
			continue
		}
		if err := c.runtime.Probe(server); err != nil {
			c.health.RecordFailure(server, c.runtime.Now())
			continue
		}
		c.health.RecordSuccess(server)
	}
}

// RegisterFidelity registers an operation (paper §3.1): its execution
// plans, fidelity dimensions, and input parameters. Demand models are
// created and warmed from the persistent usage log.
func (c *Client) RegisterFidelity(spec OperationSpec) (*Operation, error) {
	start := c.wallClock.Now()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ops[spec.Name]; ok {
		return nil, fmt.Errorf("core: operation %q already registered", spec.Name)
	}
	op := &Operation{
		client:         c,
		spec:           spec,
		models:         newOpModels(spec.modelFeatureNames(), c.modelOpts, spec.Predictors),
		acc:            c.hooks.o.AccuracyFor(spec.Name),
		fidelityCombos: fidelityCombos(spec.allFidelityDimensions()),
		shapeKey:       spec.decisionShapeKey(),
	}
	if err := c.usageLog.Replay(spec.Name, op.models.replay); err != nil {
		return nil, fmt.Errorf("core: replay usage log for %q: %w", spec.Name, err)
	}
	op.registerDuration = c.wallClock.Now().Sub(start)
	c.ops[spec.Name] = op
	return op, nil
}

// Operation returns a registered operation.
func (c *Client) Operation(name string) (*Operation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	op, ok := c.ops[name]
	return op, ok
}

// Decision describes how Spectra chose to execute an operation.
type Decision struct {
	// Alternative is the chosen server, plan, and fidelity.
	Alternative solver.Alternative
	// Predicted is the metric prediction for the chosen alternative.
	Predicted utility.Prediction
	// Utility is the chosen alternative's utility.
	Utility float64
	// Evaluations counts utility evaluations the solver performed.
	Evaluations int
	// Candidates is the size of the decision space considered.
	Candidates int
	// Forced is true when the caller dictated the alternative.
	Forced bool
	// Overhead breaks down the real (wall-clock) cost of the decision.
	Overhead BeginOverhead
	// ReintegratedBytes is the data consistency enforcement pushed to the
	// file servers before execution.
	ReintegratedBytes int64
}

// BeginOverhead is the Figure-10 breakdown of begin_fidelity_op.
type BeginOverhead struct {
	// FilePrediction covers file-access prediction and snapshotting of
	// cache state.
	FilePrediction time.Duration
	// Choosing covers solver search over the alternatives.
	Choosing time.Duration
	// Other covers the remaining bookkeeping.
	Other time.Duration
	// Total is the full begin_fidelity_op duration.
	Total time.Duration
}

// errNoAlternative is returned when nothing can execute the operation.
var errNoAlternative = errors.New("core: no feasible execution alternative")

// BeginFidelityOp decides how and where the operation should execute
// (paper §3.6) and starts resource observation. The caller must execute
// according to the returned decision and call End.
func (c *Client) BeginFidelityOp(op *Operation, params map[string]float64, data string) (*OpContext, error) {
	return c.begin(op, params, data, nil)
}

// BeginForced starts an operation with a caller-chosen alternative,
// bypassing the solver. The validation harness uses it to measure every
// alternative; consistency is still enforced.
func (c *Client) BeginForced(op *Operation, alt solver.Alternative, params map[string]float64, data string) (*OpContext, error) {
	return c.begin(op, params, data, &alt)
}

func (c *Client) begin(op *Operation, params map[string]float64, data string, forced *solver.Alternative) (*OpContext, error) {
	wallStart := c.wallClock.Now()
	c.hooks.opBegin.Inc()
	if !op.spec.UsesData {
		data = ""
	}

	// With a trace sink attached, a span recorder times the phases of the
	// decision (and later of execution); nil otherwise, so every recording
	// call below is a no-op and the untraced path stays allocation-free.
	var rec *obs.SpanRecorder
	traceOn := c.hooks.o.TraceOn()
	if traceOn {
		rec = obs.NewSpanRecorder(c.runtime.Now)
	}

	servers := c.Servers()
	spPredict := rec.Start(obs.SpanPredict, -1)
	snap, snapSeq := c.snapshotFor(servers)

	// Placement-decision cache: a warm Begin reuses a prior decision under
	// an unchanged coarse resource picture, skipping prediction and solver
	// search. Forced Begins bypass it (the caller dictated the placement),
	// traced Begins bypass it (traces must record a full deliberation), and
	// dirty consistency state bypasses it (reintegration planning needs the
	// estimator's file predictions).
	var (
		cacheKey   string
		coarse     monitor.CoarseSnapshot
		cacheStore bool
	)
	if c.dcache != nil {
		if forced != nil || traceOn || c.dirtyState() {
			c.dcache.bypass()
		} else {
			coarse = monitor.Coarsen(snap, servers)
			cacheKey = cacheBeginKey(op, params, data, servers)
			if dec, dem, ok := c.dcache.lookup(cacheKey, coarse, c.runtime.Now(), c.accuracyProbe(op)); ok {
				return c.beginWarm(op, params, data, dec, dem, cacheKey, wallStart)
			}
			cacheStore = true
		}
	}

	est := newEstimator(op, snap, params, data, c.cons, c.wallClock)
	rec.EndSpan(spPredict)

	fn := c.utilityFn(op, snap)
	eval := func(alt solver.Alternative) float64 {
		return fn.Utility(est.Predict(alt))
	}

	// With a trace sink attached, the evaluator additionally records every
	// distinct alternative it scores, with the per-resource demand behind
	// each prediction. traceSeen dedups by identity key: the solver may
	// revisit an alternative across restarts (its own cache dedups real
	// evaluations, but forced runs and fallback scans bypass it).
	var (
		tr        *obs.DecisionTrace
		traceSeen map[string]int
	)
	if c.hooks.o.TraceOn() {
		tr = &obs.DecisionTrace{
			Operation:   op.Name(),
			Begin:       c.runtime.Now(),
			Forced:      forced != nil,
			Snapshot:    summarizeSnapshot(snap, servers),
			SnapshotSeq: snapSeq,
		}
		traceSeen = make(map[string]int)
		eval = func(alt solver.Alternative) float64 {
			pred, dem := est.PredictDetail(alt)
			u := fn.Utility(pred)
			if _, ok := traceSeen[alt.Key()]; !ok {
				traceSeen[alt.Key()] = len(tr.Evaluated)
				tr.Evaluated = append(tr.Evaluated, obs.EvaluatedAlternative{
					Server:        alt.Server,
					Plan:          alt.Plan,
					Fidelity:      alt.Fidelity,
					Demand:        dem,
					FidelityValue: pred.Fidelity,
					Utility:       u,
					Feasible:      pred.Feasible,
				})
			}
			return u
		}
	}

	var (
		decision  Decision
		chooseT   time.Duration
		demand    obs.ResourceDemand
		demandSet bool
	)
	if forced != nil {
		c.hooks.opForced.Inc()
		pred, dem := est.PredictDetail(*forced)
		decision = Decision{
			Alternative: *forced,
			Predicted:   pred,
			Utility:     eval(*forced),
			Forced:      true,
			Candidates:  1,
		}
		if !decision.Predicted.Feasible {
			return nil, fmt.Errorf("%w: forced %s", errNoAlternative, forced.Key())
		}
		demand, demandSet = dem, true
	} else {
		candidates := op.alternatives(servers)
		if len(candidates) == 0 {
			return nil, errNoAlternative
		}
		spSolve := rec.Start(obs.SpanSolve, -1)
		chooseStart := c.wallClock.Now()
		var res solver.Result
		if c.exhaustive {
			res = solver.Exhaustive(candidates, eval)
		} else {
			res = solver.Heuristic(candidates, eval, c.solverOpts)
		}
		chooseT = c.wallClock.Now().Sub(chooseStart)
		if !res.Found || res.Utility <= 0 {
			// Fall back to the best local alternative if the chosen one is
			// infeasible; if nothing is feasible, report it.
			res = bestFeasible(candidates, est, eval)
			if !res.Found {
				rec.EndSpan(spSolve)
				return nil, errNoAlternative
			}
		}
		rec.EndSpan(spSolve)
		c.hooks.solverEvals.Add(int64(res.Evaluations))
		c.hooks.solverRestarts.Add(int64(res.Restarts))
		c.hooks.candidates.Observe(float64(len(candidates)))
		pred, dem := est.PredictDetail(res.Best)
		decision = Decision{
			Alternative: res.Best,
			Predicted:   pred,
			Utility:     res.Utility,
			Evaluations: res.Evaluations,
			Candidates:  len(candidates),
		}
		demand, demandSet = dem, true
		if cacheStore {
			c.dcache.store(cacheKey, coarse, decision, dem, c.runtime.Now(), c.accuracyProbe(op))
		}
		if tr != nil {
			tr.Candidates = len(candidates)
			tr.Evaluations = res.Evaluations
			tr.Restarts = res.Restarts
			c.oracleRank(tr, traceSeen, candidates)
		}
	}

	octx := &OpContext{
		client:     c,
		op:         op,
		id:         c.allocOpID(),
		decision:   decision,
		params:     params,
		data:       data,
		simStart:   c.runtime.Now(),
		wallStart:  wallStart,
		cacheKey:   cacheKey,
		trace:      tr,
		predDemand: demand,
		predValid:  demandSet,
		spans:      rec,
	}
	if tr != nil {
		tr.OpID = octx.id
		if tr.Candidates == 0 {
			tr.Candidates = decision.Candidates
		}
		if i, ok := traceSeen[decision.Alternative.Key()]; ok {
			tr.Chosen = tr.Evaluated[i]
		}
	}

	// Data consistency: before executing remotely, reintegrate dirty
	// volumes the operation may read (paper §3.5).
	if plan, ok := op.planSpec(decision.Alternative.Plan); ok && plan.UsesServer {
		_, discrete := op.modelQuery(decision.Alternative, params)
		key := predict.DiscreteKey(discrete)
		volumes, _ := est.reintegration(key)
		if len(volumes) > 0 {
			spRe := rec.Start(obs.SpanReintegrate, -1)
			for _, vol := range volumes {
				bytes, dur, err := c.runtime.Reintegrate(vol)
				if err != nil {
					rec.EndSpan(spRe)
					return nil, fmt.Errorf("core: consistency for %q: %w", op.Name(), err)
				}
				octx.decision.ReintegratedBytes += bytes
				octx.phases.netSeconds += dur.Seconds()
			}
			rec.EndSpan(spRe)
		}
	}

	c.monitors.StartOp(octx.id)
	octx.started = true

	total := c.wallClock.Now().Sub(wallStart)
	filePredT := est.filePredTime
	choosing := chooseT - filePredT
	if choosing < 0 {
		choosing = 0
	}
	octx.decision.Overhead = BeginOverhead{
		FilePrediction: filePredT,
		Choosing:       choosing,
		Other:          total - filePredT - choosing,
		Total:          total,
	}
	if tr != nil {
		tr.ReintegratedBytes = octx.decision.ReintegratedBytes
	}
	c.hooks.beginSeconds.Observe(total.Seconds())
	return octx, nil
}

// beginWarm completes a Begin from a decision-cache hit: the prior decision
// is reused verbatim, observation starts as usual, and the overhead
// breakdown honestly reports near-zero Choosing — the whole Begin cost one
// fingerprint comparison, not a solver search.
func (c *Client) beginWarm(op *Operation, params map[string]float64, data string, dec Decision, demand obs.ResourceDemand, key string, wallStart time.Time) (*OpContext, error) {
	// ReintegratedBytes belonged to the Begin that filled the entry; this
	// Begin ran no consistency enforcement (dirty state bypasses the cache).
	dec.ReintegratedBytes = 0
	octx := &OpContext{
		client:     c,
		op:         op,
		id:         c.allocOpID(),
		decision:   dec,
		params:     params,
		data:       data,
		simStart:   c.runtime.Now(),
		wallStart:  wallStart,
		cacheKey:   key,
		predDemand: demand,
		predValid:  true,
	}
	c.monitors.StartOp(octx.id)
	octx.started = true
	total := c.wallClock.Now().Sub(wallStart)
	octx.decision.Overhead = BeginOverhead{Other: total, Total: total}
	c.hooks.beginSeconds.Observe(total.Seconds())
	return octx, nil
}

// dirtyState reports whether the Coda client has buffered modifications;
// such Begins need the estimator's reintegration planning and therefore
// bypass the decision cache.
func (c *Client) dirtyState() bool {
	return c.cons != nil && len(c.cons.DirtyVolumes()) > 0
}

// accuracyProbe adapts the observer's accuracy tracker into the decision
// cache's per-resource rolling-error probe for one operation; nil (no
// regression checking) when accuracy accounting is off.
func (c *Client) accuracyProbe(op *Operation) func(resource string) (float64, bool) {
	if c.hooks.o == nil || c.hooks.o.Accuracy == nil {
		return nil
	}
	acc := c.hooks.o.Accuracy
	name := op.Name()
	return func(resource string) (float64, bool) {
		mean, _, ok := acc.RelativeError(name, resource)
		return mean, ok
	}
}

// oracleRank computes the Figure-8 metric when the exhaustive oracle
// decides with tracing on: the percentile rank the heuristic solver's
// choice would have achieved among all candidates. The oracle has already
// evaluated (and the trace recorded) every candidate, so the heuristic is
// replayed against those memoized utilities at zero additional model cost.
func (c *Client) oracleRank(tr *obs.DecisionTrace, seen map[string]int, candidates []solver.Alternative) {
	if !c.exhaustive || len(tr.Evaluated) == 0 {
		return
	}
	memo := func(a solver.Alternative) float64 {
		if i, ok := seen[a.Key()]; ok {
			return tr.Evaluated[i].Utility
		}
		return -1
	}
	h := solver.Heuristic(candidates, memo, c.solverOpts)
	if !h.Found {
		return
	}
	better := 0
	for _, ev := range tr.Evaluated {
		if ev.Utility > h.Utility {
			better++
		}
	}
	pct := 100 * float64(len(tr.Evaluated)-better) / float64(len(tr.Evaluated))
	tr.OracleRan = true
	tr.HeuristicRankPct = pct
	c.hooks.rankPct.Observe(pct)
}

// utilityFn returns the operation's utility function over the snapshot.
func (c *Client) utilityFn(op *Operation, snap *monitor.Snapshot) utility.Function {
	if op.spec.Utility != nil {
		return op.spec.Utility
	}
	return utility.Default{
		Latency:    op.spec.LatencyUtility,
		Importance: func() float64 { return snap.Battery.Importance },
	}
}

// snapshotFor returns the decision snapshot for a Begin, plus its
// time-series sequence number (0 when no recorder is attached). With a
// positive SnapshotTTL, concurrent Begins within the window share one
// snapshot — monitors are consulted once, the time-series records one
// batch, and health verdicts are folded in at fill time so the published
// snapshot is immutable. With TTL disabled every call fills afresh.
func (c *Client) snapshotFor(servers []string) (*monitor.Snapshot, uint64) {
	now := c.runtime.Now()
	if c.snapTTL <= 0 {
		snap := c.monitors.Snapshot(now, servers)
		c.applyHealth(snap, servers)
		return snap, c.recordSnapshot(snap, servers)
	}
	key := strings.Join(servers, "\x00")
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	// A health-tracker transition since the fill invalidates the snapshot
	// regardless of age: its folded-in verdicts no longer describe the
	// fleet, and a post-failover Begin must not route to a server the
	// breaker just opened on (nor keep shunning one that just healed).
	gen := c.healthGen.Load()
	age := now.Sub(c.snapAt)
	if c.snapVal != nil && c.snapKey == key && age >= 0 && age < c.snapTTL && c.snapHealthGen == gen {
		c.hooks.snapCacheHits.Inc()
		return c.snapVal, c.snapSeq
	}
	c.hooks.snapCacheMisses.Inc()
	snap := c.monitors.Snapshot(now, servers)
	c.applyHealth(snap, servers)
	// gen was read before the fill: if applyHealth itself fired a
	// transition (a half-open probe), the snapshot is conservatively
	// treated as already stale — at most one extra refill, never a loop.
	c.snapVal, c.snapKey, c.snapAt = snap, key, now
	c.snapHealthGen = gen
	c.snapSeq = c.recordSnapshot(snap, servers)
	return snap, c.snapSeq
}

// recordSnapshot enters a decision snapshot into the resource time-series
// history (when a recorder is attached), so post-hoc analysis can line a
// decision up against what the monitors reported before and after it.
func (c *Client) recordSnapshot(snap *monitor.Snapshot, servers []string) uint64 {
	if ts := c.hooks.o.Timeline(); ts != nil {
		return monitor.RecordSnapshot(ts, snap, servers)
	}
	return 0
}

// applyHealth folds the health tracker's verdicts into a snapshot:
// quarantined servers are marked unreachable, removing them from the
// solver's decision space until their half-open probe succeeds.
func (c *Client) applyHealth(snap *monitor.Snapshot, servers []string) {
	now := c.runtime.Now()
	for _, s := range servers {
		if !c.health.Usable(s, now) {
			na := snap.Network[s]
			na.Reachable = false
			snap.Network[s] = na
		}
	}
}

// bestFeasible scans all candidates for the highest-utility feasible one.
func bestFeasible(candidates []solver.Alternative, est *estimator, eval solver.Evaluator) solver.Result {
	var res solver.Result
	for _, alt := range candidates {
		if !est.Predict(alt).Feasible {
			continue
		}
		u := eval(alt)
		res.Evaluations++
		if !res.Found || u > res.Utility {
			res.Found = true
			res.Best = alt
			res.Utility = u
		}
	}
	return res
}

func (c *Client) allocOpID() uint64 {
	return c.nextID.Add(1)
}
