package core

import (
	"testing"

	"spectra/internal/sim"
	"spectra/internal/solver"
)

// TestPartitionMidOperation partitions the link after the decision but
// before the remote call: failover recovers the call on the client (the
// host offers the service), the application sees no error, and the next
// decision routes around the dead server.
func TestPartitionMidOperation(t *testing.T) {
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	for i := 0; i < 3; i++ {
		runToy(t, setup, op, solver.Alternative{Plan: "local"})
		runToy(t, setup, op, solver.Alternative{Server: "big", Plan: "remote"})
	}

	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Alternative.Plan != "remote" {
		t.Fatalf("pre-partition decision = %+v", octx.Decision().Alternative)
	}

	// The network partitions between decision and execution. Failover
	// re-executes the call locally: the application sees output, not an
	// error, and the report records the degraded recovery.
	_, link, _ := setup.Env.Server("big")
	link.SetPartitioned(true)
	if _, err := octx.DoRemoteOp("run", []byte("x")); err != nil {
		t.Fatalf("failover did not absorb the partition: %v", err)
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatalf("report not marked degraded: %+v", rep)
	}
	if len(rep.Failovers) != 1 || rep.Failovers[0].From != "big" || rep.Failovers[0].To != "" {
		t.Fatalf("failover events = %+v", rep.Failovers)
	}

	// The failed call marked the server unreachable; the next decision
	// must fall back to local without an explicit poll.
	octx2, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx2.Decision().Alternative.Plan != "local" {
		t.Fatalf("post-partition decision = %+v", octx2.Decision().Alternative)
	}
	if _, err := octx2.DoLocalOp("run", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := octx2.End(); err != nil {
		t.Fatal(err)
	}

	// Healing the link and polling restores remote execution.
	link.SetPartitioned(false)
	setup.Refresh()
	octx3, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx3.Decision().Alternative.Plan != "remote" {
		t.Fatalf("post-heal decision = %+v", octx3.Decision().Alternative)
	}
	octx3.Abort()
}

// TestLiveServerCrashMidSession kills a live server after training; the
// client's next remote call is transparently recovered on the client, and
// after polling, decisions fall back to local.
func TestLiveServerCrashMidSession(t *testing.T) {
	machineAddr := startLiveServerHandle(t)
	setup := newLiveClient(t, map[string]string{"fast": machineAddr.addr})

	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "toy.crash",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup.Client.PollServers()
	setup.Client.Probe()

	run := func(alt solver.Alternative) (Report, error) {
		octx, err := setup.Client.BeginForced(op, alt, nil, "")
		if err != nil {
			return Report{}, err
		}
		if alt.Plan == "remote" {
			_, err = octx.DoRemoteOp("run", nil)
		} else {
			_, err = octx.DoLocalOp("run", nil)
		}
		if err != nil {
			octx.Abort()
			return Report{}, err
		}
		return octx.End()
	}
	for i := 0; i < 2; i++ {
		if _, err := run(solver.Alternative{Plan: "local"}); err != nil {
			t.Fatal(err)
		}
		if _, err := run(solver.Alternative{Server: "fast", Plan: "remote"}); err != nil {
			t.Fatal(err)
		}
	}

	// The server crashes. The next remote call fails over to the client:
	// no application-visible error, a degraded report.
	machineAddr.srv.Close()
	rep, err := run(solver.Alternative{Server: "fast", Plan: "remote"})
	if err != nil {
		t.Fatalf("failover did not absorb the crash: %v", err)
	}
	if !rep.Degraded || len(rep.Failovers) != 1 || rep.Failovers[0].To != "" {
		t.Fatalf("report after crash = %+v", rep)
	}
	setup.Client.PollServers() // confirms unreachability

	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Alternative.Plan != "local" {
		t.Fatalf("decision with dead server = %+v", octx.Decision().Alternative)
	}
	octx.Abort()
}

// liveHandle carries a live server and its address for crash tests.
type liveHandle struct {
	srv  *Server
	addr string
}

func startLiveServerHandle(t *testing.T) liveHandle {
	t.Helper()
	machine := sim.NewMachine(sim.MachineConfig{
		Name:        "fast",
		SpeedMHz:    1000,
		OnWallPower: true,
	})
	srv := NewServer("fast", NewNode(machine, nil, nil), sim.RealClock{})
	srv.Register("toy", liveWork)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return liveHandle{srv: srv, addr: addr}
}
