package core

import (
	"testing"

	"spectra/internal/solver"
)

func TestAdvisorReportsChanges(t *testing.T) {
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	for i := 0; i < 3; i++ {
		runToy(t, setup, op, solver.Alternative{Plan: "local"})
		runToy(t, setup, op, solver.Alternative{Server: "big", Plan: "remote"})
	}

	advisor := setup.Client.NewAdvisor(op, nil, "")

	// First check primes: no change reported.
	best, changed, ok := advisor.Check()
	if !ok || changed {
		t.Fatalf("priming check = (%v, changed=%v, ok=%v)", best.Alternative, changed, ok)
	}
	if best.Alternative.Plan != "remote" {
		t.Fatalf("initial best = %+v, want remote", best.Alternative)
	}

	// Stable conditions: still no change.
	if _, changed, ok := advisor.Check(); !ok || changed {
		t.Fatal("stable conditions reported a change")
	}

	// Partition the server: the best flips to local and Check says so.
	_, link, _ := setup.Env.Server("big")
	link.SetPartitioned(true)
	setup.Client.PollServers()
	best, changed, ok = advisor.Check()
	if !ok || !changed {
		t.Fatalf("partition not reported: changed=%v ok=%v", changed, ok)
	}
	if best.Alternative.Plan != "local" {
		t.Fatalf("post-partition best = %+v", best.Alternative)
	}

	// Healing flips it back — exactly one change reported.
	link.SetPartitioned(false)
	setup.Refresh()
	best, changed, ok = advisor.Check()
	if !ok || !changed || best.Alternative.Plan != "remote" {
		t.Fatalf("heal not reported: %+v changed=%v ok=%v", best.Alternative, changed, ok)
	}
	if _, changed, _ := advisor.Check(); changed {
		t.Fatal("duplicate change reported")
	}
}

func TestAdvisorNothingFeasible(t *testing.T) {
	setup := newToySetup(t)
	// An operation with only a remote plan, on a partitioned network.
	op, err := setup.Client.RegisterFidelity(OperationSpec{
		Name:    "remoteonly.op",
		Service: "toy",
		Plans:   []PlanSpec{{Name: "remote", UsesServer: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, link, _ := setup.Env.Server("big")
	link.SetPartitioned(true)
	setup.Client.PollServers()

	advisor := setup.Client.NewAdvisor(op, nil, "")
	if _, _, ok := advisor.Check(); ok {
		t.Fatal("advisor found a feasible alternative during partition")
	}
}
