package core

import (
	"errors"
	"testing"
	"time"

	"spectra/internal/sim"
	"spectra/internal/simnet"
	"spectra/internal/solver"
)

// newToySetup builds a 100 MHz client and a 1000 MHz server connected by a
// fast link, hosting a "toy" service that burns cycles given by the
// payload length times a work factor.
func newToySetup(t *testing.T) *SimSetup {
	t.Helper()
	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    100,
		Power:       sim.PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
		OnWallPower: true,
		Battery:     sim.NewBattery(50_000),
	})
	server := sim.NewMachine(sim.MachineConfig{
		Name:        "big",
		SpeedMHz:    1000,
		Power:       sim.PowerModel{IdleW: 10, BusyW: 50, NetW: 12},
		OnWallPower: true,
	})
	link := simnet.NewLink(simnet.LinkConfig{
		Name:         "lan",
		Latency:      time.Millisecond,
		BandwidthBps: 1_000_000,
	})
	fsLink := simnet.NewLink(simnet.LinkConfig{
		Name:         "fs",
		Latency:      time.Millisecond,
		BandwidthBps: 1_000_000,
	})
	setup, err := NewSimSetup(SimOptions{
		Host:       host,
		HostFSLink: fsLink,
		Servers:    []SimServer{{Name: "big", Machine: server, Link: link, FSLink: fsLink}},
	})
	if err != nil {
		t.Fatal(err)
	}

	work := func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 500})
		return []byte("ok"), nil
	}
	setup.Env.Host().RegisterService("toy", work)
	node, _, _ := setup.Env.Server("big")
	node.RegisterService("toy", work)
	return setup
}

func toySpec() OperationSpec {
	return OperationSpec{
		Name:    "toy.op",
		Service: "toy",
		Plans: []PlanSpec{
			{Name: "local"},
			{Name: "remote", UsesServer: true},
		},
	}
}

// runToy executes one forced toy op through the proper API.
func runToy(t *testing.T, setup *SimSetup, op *Operation, alt solver.Alternative) Report {
	t.Helper()
	octx, err := setup.Client.BeginForced(op, alt, nil, "")
	if err != nil {
		t.Fatalf("BeginForced(%v): %v", alt, err)
	}
	if alt.Plan == "remote" {
		if _, err := octx.DoRemoteOp("run", []byte("x")); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := octx.DoLocalOp("run", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := octx.End()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRegisterValidation(t *testing.T) {
	setup := newToySetup(t)
	if _, err := setup.Client.RegisterFidelity(OperationSpec{}); err == nil {
		t.Fatal("empty spec must fail")
	}
	if _, err := setup.Client.RegisterFidelity(OperationSpec{Name: "x"}); err == nil {
		t.Fatal("spec without plans must fail")
	}
	if _, err := setup.Client.RegisterFidelity(toySpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Client.RegisterFidelity(toySpec()); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if _, ok := setup.Client.Operation("toy.op"); !ok {
		t.Fatal("operation not found after registration")
	}
}

func TestForcedExecutionMeasuresUsage(t *testing.T) {
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()

	local := runToy(t, setup, op, solver.Alternative{Plan: "local"})
	if local.Usage.LocalMegacycles != 500 {
		t.Fatalf("local cycles = %v, want 500", local.Usage.LocalMegacycles)
	}
	if local.Elapsed != 5*time.Second {
		t.Fatalf("local elapsed = %v, want 5s", local.Elapsed)
	}
	if !local.Usage.EnergyValid || local.Usage.EnergyJoules <= 0 {
		t.Fatalf("local energy = %+v", local.Usage)
	}

	remote := runToy(t, setup, op, solver.Alternative{Server: "big", Plan: "remote"})
	if remote.Usage.RemoteMegacycles != 500 {
		t.Fatalf("remote cycles = %v, want 500", remote.Usage.RemoteMegacycles)
	}
	if remote.Usage.LocalMegacycles != 0 {
		t.Fatalf("remote op charged local cycles: %v", remote.Usage.LocalMegacycles)
	}
	if remote.Usage.RPCs != 1 || remote.Usage.BytesSent == 0 {
		t.Fatalf("remote network usage = %+v", remote.Usage)
	}
	// 500 Mc on 1000 MHz = 0.5 s plus small transfer times.
	if remote.Elapsed < 500*time.Millisecond || remote.Elapsed > time.Second {
		t.Fatalf("remote elapsed = %v", remote.Elapsed)
	}
}

func TestSelfTunedDecisionPrefersFasterPlan(t *testing.T) {
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()

	// Training: observe both plans.
	for i := 0; i < 4; i++ {
		runToy(t, setup, op, solver.Alternative{Plan: "local"})
		runToy(t, setup, op, solver.Alternative{Server: "big", Plan: "remote"})
	}

	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	d := octx.Decision()
	if d.Alternative.Plan != "remote" || d.Alternative.Server != "big" {
		t.Fatalf("decision = %+v, want remote on big", d.Alternative)
	}
	if d.Predicted.Latency <= 0 || d.Predicted.Latency > 2*time.Second {
		t.Fatalf("predicted latency = %v", d.Predicted.Latency)
	}
	if d.Evaluations == 0 || d.Candidates != 2 {
		t.Fatalf("decision stats = %+v", d)
	}
	if _, err := octx.DoRemoteOp("run", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := octx.End(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionFailsOverToLocal(t *testing.T) {
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	for i := 0; i < 3; i++ {
		runToy(t, setup, op, solver.Alternative{Plan: "local"})
		runToy(t, setup, op, solver.Alternative{Server: "big", Plan: "remote"})
	}

	_, link, _ := setup.Env.Server("big")
	link.SetPartitioned(true)
	setup.Client.PollServers() // poll fails, marking the server unreachable

	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Alternative.Plan != "local" {
		t.Fatalf("decision under partition = %+v", octx.Decision().Alternative)
	}
	octx.Abort()

	// Forcing the remote plan under partition must fail feasibility.
	if _, err := setup.Client.BeginForced(op, solver.Alternative{Server: "big", Plan: "remote"}, nil, ""); !errors.Is(err, errNoAlternative) {
		t.Fatalf("forced remote under partition: %v", err)
	}
}

func TestEnergyImportanceFlipsDecision(t *testing.T) {
	// Remote is slightly slower here but burns far less client energy;
	// with an aggressive battery goal Spectra must switch to remote.
	host := sim.NewMachine(sim.MachineConfig{
		Name:        "client",
		SpeedMHz:    500,
		Power:       sim.PowerModel{IdleW: 0.2, BusyW: 10, NetW: 0.5},
		OnWallPower: false,
		Battery:     sim.NewBattery(30_000),
	})
	server := sim.NewMachine(sim.MachineConfig{
		Name:        "big",
		SpeedMHz:    450,
		Power:       sim.PowerModel{IdleW: 10, BusyW: 50, NetW: 12},
		OnWallPower: true,
	})
	link := simnet.NewLink(simnet.LinkConfig{Name: "lan", Latency: time.Millisecond, BandwidthBps: 2_000_000})
	setup, err := NewSimSetup(SimOptions{
		Host:    host,
		Servers: []SimServer{{Name: "big", Machine: server, Link: link}},
	})
	if err != nil {
		t.Fatal(err)
	}
	work := func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
		ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 1000})
		return []byte("ok"), nil
	}
	setup.Env.Host().RegisterService("toy", work)
	node, _, _ := setup.Env.Server("big")
	node.RegisterService("toy", work)

	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	for i := 0; i < 5; i++ {
		runToy(t, setup, op, solver.Alternative{Plan: "local"})
		runToy(t, setup, op, solver.Alternative{Server: "big", Plan: "remote"})
	}

	// Performance mode: local (2.0s) beats remote (~2.2s+transfer).
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Alternative.Plan != "local" {
		t.Fatalf("performance-mode decision = %+v", octx.Decision().Alternative)
	}
	octx.Abort()

	// Energy mode: aggressive lifetime goal raises importance; remote
	// execution lets the client idle at 0.2 W instead of computing at 10 W.
	setup.Adaptor.SetImportance(1)
	octx2, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx2.Decision().Alternative.Plan != "remote" {
		t.Fatalf("energy-mode decision = %+v", octx2.Decision().Alternative)
	}
	octx2.Abort()
}

func TestBeginOverheadPopulated(t *testing.T) {
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	octx, err := setup.Client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	oh := octx.Decision().Overhead
	if oh.Total <= 0 {
		t.Fatalf("overhead = %+v", oh)
	}
	if oh.Total < oh.FilePrediction+oh.Choosing {
		t.Fatalf("overhead breakdown inconsistent: %+v", oh)
	}
	if op.RegisterDuration() <= 0 {
		t.Fatal("register duration missing")
	}
	octx.Abort()
}

func TestOpContextGuards(t *testing.T) {
	setup := newToySetup(t)
	op, err := setup.Client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	setup.Refresh()
	octx, err := setup.Client.BeginForced(op, solver.Alternative{Plan: "local"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := octx.DoRemoteOp("run", nil); err == nil {
		t.Fatal("remote call on local plan must fail")
	}
	if _, err := octx.End(); err != nil {
		t.Fatal(err)
	}
	if _, err := octx.End(); !errors.Is(err, errEnded) {
		t.Fatalf("double End: %v", err)
	}
	if _, err := octx.DoLocalOp("run", nil); !errors.Is(err, errEnded) {
		t.Fatalf("call after End: %v", err)
	}
	octx.Abort() // no-op after end
}

func TestRegistryExtendsServers(t *testing.T) {
	setup := newToySetup(t)
	c := setup.Client
	base := len(c.Servers())
	c.AddServer("extra")
	c.AddServer("extra") // idempotent
	if got := len(c.Servers()); got != base+1 {
		t.Fatalf("servers = %d, want %d", got, base+1)
	}
}

func TestStaticRegistry(t *testing.T) {
	r := StaticRegistry{"a", "b"}
	got := r.Discover()
	if len(got) != 2 || got[0] != "a" {
		t.Fatalf("discover = %v", got)
	}
}

func TestUsageLogWarmsModels(t *testing.T) {
	dir := t.TempDir()

	build := func() (*SimSetup, *Operation) {
		host := sim.NewMachine(sim.MachineConfig{
			Name: "client", SpeedMHz: 100,
			Power:       sim.PowerModel{IdleW: 1, BusyW: 10, NetW: 2},
			OnWallPower: true, Battery: sim.NewBattery(50_000),
		})
		server := sim.NewMachine(sim.MachineConfig{Name: "big", SpeedMHz: 1000, OnWallPower: true})
		link := simnet.NewLink(simnet.LinkConfig{Name: "lan", Latency: time.Millisecond, BandwidthBps: 1_000_000})
		setup, err := NewSimSetup(SimOptions{
			Host:        host,
			Servers:     []SimServer{{Name: "big", Machine: server, Link: link}},
			UsageLogDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		work := func(ctx *ServiceContext, optype string, payload []byte) ([]byte, error) {
			ctx.Compute(sim.ComputeDemand{IntegerMegacycles: 500})
			return []byte("ok"), nil
		}
		setup.Env.Host().RegisterService("toy", work)
		node, _, _ := setup.Env.Server("big")
		node.RegisterService("toy", work)
		op, err := setup.Client.RegisterFidelity(toySpec())
		if err != nil {
			t.Fatal(err)
		}
		return setup, op
	}

	// First life: train.
	setup1, op1 := build()
	setup1.Refresh()
	for i := 0; i < 4; i++ {
		runToy(t, setup1, op1, solver.Alternative{Plan: "local"})
		runToy(t, setup1, op1, solver.Alternative{Server: "big", Plan: "remote"})
	}

	// Second life: models warmed from the log; first decision is already
	// informed (remote wins).
	setup2, op2 := build()
	setup2.Refresh()
	octx, err := setup2.Client.BeginFidelityOp(op2, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Alternative.Plan != "remote" {
		t.Fatalf("warmed decision = %+v", octx.Decision().Alternative)
	}
	octx.Abort()
}
