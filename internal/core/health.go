package core

import (
	"sort"
	"sync"
	"time"
)

// HealthState is a server's position in the circuit-breaker lifecycle.
type HealthState int

// Health states.
const (
	// HealthClosed is the healthy state: the server participates in the
	// decision space normally.
	HealthClosed HealthState = iota
	// HealthOpen quarantines a server after repeated consecutive
	// failures: it is excluded from decisions and from routine polling
	// until the quarantine elapses.
	HealthOpen
	// HealthHalfOpen admits probe traffic after quarantine: the next
	// success closes the circuit, the next failure reopens it.
	HealthHalfOpen
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case HealthClosed:
		return "closed"
	case HealthOpen:
		return "open"
	case HealthHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// HealthOptions tunes the per-server health tracker.
type HealthOptions struct {
	// FailureThreshold is how many consecutive failures quarantine a
	// server; 0 selects 3. Negative disables tracking.
	FailureThreshold int
	// Quarantine is how long an open server is excluded before one probe
	// is allowed through (half-open); 0 selects 30s. The duration is
	// measured on the runtime clock — virtual time in simulations.
	Quarantine time.Duration
}

func (o HealthOptions) threshold() int {
	if o.FailureThreshold == 0 {
		return 3
	}
	return o.FailureThreshold
}

func (o HealthOptions) quarantine() time.Duration {
	if o.Quarantine <= 0 {
		return 30 * time.Second
	}
	return o.Quarantine
}

func (o HealthOptions) disabled() bool { return o.FailureThreshold < 0 }

// HealthTracker is a small per-server circuit breaker (paper-adjacent: the
// cyber-foraging literature treats surrogate unreliability as the central
// operational hazard). Failures of remote calls, polls, and probes count
// against a server; enough consecutive failures quarantine it so the
// solver stops considering it, and after the quarantine a half-open probe
// decides whether to re-adopt it.
type HealthTracker struct {
	mu sync.Mutex

	opts    HealthOptions
	servers map[string]*serverHealth

	// OnTransition, when non-nil, is called after every state change with
	// the server name and both states. It runs under the tracker's lock:
	// keep it fast and never call back into the tracker. Set it before the
	// tracker is shared across goroutines.
	OnTransition func(server string, from, to HealthState)
}

type serverHealth struct {
	state    HealthState
	failures int
	openedAt time.Time
}

// NewHealthTracker returns a tracker with every server healthy.
func NewHealthTracker(opts HealthOptions) *HealthTracker {
	return &HealthTracker{opts: opts, servers: make(map[string]*serverHealth)}
}

func (h *HealthTracker) get(server string) *serverHealth {
	sh, ok := h.servers[server]
	if !ok {
		sh = &serverHealth{}
		h.servers[server] = sh
	}
	return sh
}

// RecordSuccess notes a successful exchange with the server, closing the
// circuit and resetting the failure count.
func (h *HealthTracker) RecordSuccess(server string) {
	if h == nil || h.opts.disabled() {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.get(server)
	from := sh.state
	sh.state = HealthClosed
	sh.failures = 0
	if from != HealthClosed && h.OnTransition != nil {
		h.OnTransition(server, from, HealthClosed)
	}
}

// RecordFailure notes a failed exchange at the given instant. Reaching the
// consecutive-failure threshold — or failing the half-open probe — opens
// the circuit.
func (h *HealthTracker) RecordFailure(server string, now time.Time) {
	if h == nil || h.opts.disabled() {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.get(server)
	sh.failures++
	if sh.state == HealthHalfOpen || sh.failures >= h.opts.threshold() {
		from := sh.state
		sh.state = HealthOpen
		sh.openedAt = now
		if from != HealthOpen && h.OnTransition != nil {
			h.OnTransition(server, from, HealthOpen)
		}
	}
}

// Usable reports whether the server may be used at the given instant. An
// open server becomes usable again once its quarantine elapses — the
// transition to half-open happens here, so the next exchange doubles as
// the probe.
func (h *HealthTracker) Usable(server string, now time.Time) bool {
	if h == nil || h.opts.disabled() {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh, ok := h.servers[server]
	if !ok {
		return true
	}
	switch sh.state {
	case HealthOpen:
		if now.Sub(sh.openedAt) >= h.opts.quarantine() {
			sh.state = HealthHalfOpen
			if h.OnTransition != nil {
				h.OnTransition(server, HealthOpen, HealthHalfOpen)
			}
			return true
		}
		return false
	default:
		return true
	}
}

// State returns the server's current circuit state.
func (h *HealthTracker) State(server string) HealthState {
	if h == nil || h.opts.disabled() {
		return HealthClosed
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh, ok := h.servers[server]
	if !ok {
		return HealthClosed
	}
	return sh.state
}

// ConsecutiveFailures returns the server's current failure streak.
func (h *HealthTracker) ConsecutiveFailures(server string) int {
	if h == nil || h.opts.disabled() {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sh, ok := h.servers[server]
	if !ok {
		return 0
	}
	return sh.failures
}

// Quarantined lists servers currently open (still inside quarantine as of
// now), sorted for determinism.
func (h *HealthTracker) Quarantined(now time.Time) []string {
	if h == nil || h.opts.disabled() {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for name, sh := range h.servers {
		if sh.state == HealthOpen && now.Sub(sh.openedAt) < h.opts.quarantine() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
