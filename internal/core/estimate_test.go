package core

import (
	"math"
	"testing"
	"time"

	"spectra/internal/monitor"
	"spectra/internal/predict"
	"spectra/internal/solver"
)

// estimatorFixture builds an operation with trained models and a
// hand-constructed snapshot so predictions can be checked arithmetically.
type estimatorFixture struct {
	op   *Operation
	snap *monitor.Snapshot
}

func newEstimatorFixture(t *testing.T) *estimatorFixture {
	t.Helper()
	op := &Operation{
		spec: OperationSpec{
			Name:    "est.op",
			Service: "svc",
			Plans: []PlanSpec{
				{Name: "local"},
				{Name: "remote", UsesServer: true},
			},
		},
		models: newOpModels(nil, ModelOptions{Decay: 1}, nil),
	}
	op.fidelityCombos = fidelityCombos(nil)

	// Train: local plan = 100 Mc local; remote plan = 100 Mc remote,
	// 1000 bytes, 1 RPC.
	for i := 0; i < 3; i++ {
		op.models.observe(predict.Record{Discrete: map[string]string{"plan": "local"}},
			phaseUsage{localSeconds: 1}, observedUsage{localMegacycles: 100, energyJoules: 10, energyValid: true})
		op.models.observe(predict.Record{Discrete: map[string]string{"plan": "remote"}},
			phaseUsage{idleSeconds: 0.1, netSeconds: 0.01},
			observedUsage{remoteMegacycles: 100, netBytes: 1000, rpcs: 1, energyJoules: 0.5, energyValid: true})
	}

	snap := monitor.NewSnapshot(time.Unix(0, 0))
	snap.LocalCPU = monitor.CPUAvail{AvailMHz: 100, SpeedMHz: 100, Known: true}
	snap.LocalCache = monitor.CacheAvail{Cached: map[string]bool{}, FetchRateBps: 10_000, Known: true}
	snap.Network["srv"] = monitor.NetAvail{
		BandwidthBps: 100_000,
		Latency:      10 * time.Millisecond,
		Reachable:    true,
		Known:        true,
	}
	snap.RemoteCPU["srv"] = monitor.CPUAvail{AvailMHz: 1000, SpeedMHz: 1000, Known: true}
	snap.RemoteCache["srv"] = monitor.CacheAvail{Cached: map[string]bool{}, FetchRateBps: 100_000, Known: true}
	snap.Services["srv"] = []string{"svc"}
	return &estimatorFixture{op: op, snap: snap}
}

func TestEstimatorLocalPlanArithmetic(t *testing.T) {
	f := newEstimatorFixture(t)
	est := newEstimator(f.op, f.snap, nil, "", nil, nil)
	p := est.Predict(solver.Alternative{Plan: "local"})
	if !p.Feasible {
		t.Fatal("local plan infeasible")
	}
	// 100 Mc / 100 MHz = 1 s, nothing else.
	if math.Abs(p.Latency.Seconds()-1) > 1e-6 {
		t.Fatalf("local latency = %v, want 1s", p.Latency)
	}
	// Energy model: regression on phases; at (1,0,0) it saw 10 J.
	if math.Abs(p.EnergyJoules-10) > 0.5 {
		t.Fatalf("local energy = %v, want ~10", p.EnergyJoules)
	}
}

func TestEstimatorRemotePlanArithmetic(t *testing.T) {
	f := newEstimatorFixture(t)
	est := newEstimator(f.op, f.snap, nil, "", nil, nil)
	p := est.Predict(solver.Alternative{Server: "srv", Plan: "remote"})
	if !p.Feasible {
		t.Fatal("remote plan infeasible")
	}
	// 100 Mc / 1000 MHz = 0.1 s; 1000 B / 100 kB/s = 0.01 s; 1 RPC x 10 ms.
	want := 0.1 + 0.01 + 0.01
	if math.Abs(p.Latency.Seconds()-want) > 1e-3 {
		t.Fatalf("remote latency = %v, want %vs", p.Latency, want)
	}
}

func TestEstimatorInfeasibleCases(t *testing.T) {
	f := newEstimatorFixture(t)
	est := newEstimator(f.op, f.snap, nil, "", nil, nil)

	// Unknown plan.
	if p := est.Predict(solver.Alternative{Plan: "ghost"}); p.Feasible {
		t.Fatal("unknown plan feasible")
	}
	// Unknown server.
	if p := est.Predict(solver.Alternative{Server: "ghost", Plan: "remote"}); p.Feasible {
		t.Fatal("unknown server feasible")
	}
	// Unreachable server.
	f.snap.Network["srv"] = monitor.NetAvail{Reachable: false}
	if p := est.Predict(solver.Alternative{Server: "srv", Plan: "remote"}); p.Feasible {
		t.Fatal("unreachable server feasible")
	}
	// Reachable but no CPU status.
	f.snap.Network["srv"] = monitor.NetAvail{Reachable: true, Known: true, BandwidthBps: 1000}
	f.snap.RemoteCPU["srv"] = monitor.CPUAvail{}
	if p := est.Predict(solver.Alternative{Server: "srv", Plan: "remote"}); p.Feasible {
		t.Fatal("statusless server feasible")
	}
}

func TestEstimatorMissCost(t *testing.T) {
	f := newEstimatorFixture(t)
	// The remote plan reads a 50 kB file on the server.
	f.op.models.observe(predict.Record{Discrete: map[string]string{"plan": "remote"}},
		phaseUsage{idleSeconds: 0.1},
		observedUsage{remoteMegacycles: 100, netBytes: 1000, rpcs: 1,
			files: []predict.FileAccess{{Path: "/data", SizeBytes: 50_000, Remote: true}}})

	est := newEstimator(f.op, f.snap, nil, "", nil, nil)
	cold := est.Predict(solver.Alternative{Server: "srv", Plan: "remote"})

	// Warm the server cache: the miss cost disappears.
	f.snap.RemoteCache["srv"] = monitor.CacheAvail{
		Cached: map[string]bool{"/data": true}, FetchRateBps: 100_000, Known: true,
	}
	est2 := newEstimator(f.op, f.snap, nil, "", nil, nil)
	warm := est2.Predict(solver.Alternative{Server: "srv", Plan: "remote"})

	// Cold: the file entered the model at likelihood 1 (files start certain
	// on first access), so the expected fetch is 50 kB / 100 kB/s = 0.5 s.
	delta := cold.Latency.Seconds() - warm.Latency.Seconds()
	if math.Abs(delta-0.5) > 1e-3 {
		t.Fatalf("miss cost = %vs, want 0.5s", delta)
	}
}

// fakeCons is a scripted ConsistencySource.
type fakeCons struct {
	dirty map[string]int64
	vols  map[string]string
}

func (f *fakeCons) DirtyVolumes() []string {
	var out []string
	for v := range f.dirty {
		out = append(out, v)
	}
	return out
}

func (f *fakeCons) VolumeDirtyBytes(v string) int64 { return f.dirty[v] }

func (f *fakeCons) VolumeOf(path string) (string, error) { return f.vols[path], nil }

func TestEstimatorReintegrationCost(t *testing.T) {
	f := newEstimatorFixture(t)
	// The remote plan reads /doc (volume "docs") remotely.
	f.op.models.observe(predict.Record{Discrete: map[string]string{"plan": "remote"}},
		phaseUsage{idleSeconds: 0.1},
		observedUsage{remoteMegacycles: 100, netBytes: 1000, rpcs: 1,
			files: []predict.FileAccess{{Path: "/doc", SizeBytes: 1000, Remote: true}}})
	// Also a locally-read file in a different dirty volume, which must NOT
	// trigger reintegration.
	f.op.models.observe(predict.Record{Discrete: map[string]string{"plan": "local"}},
		phaseUsage{localSeconds: 1},
		observedUsage{localMegacycles: 100,
			files: []predict.FileAccess{{Path: "/scratch", SizeBytes: 500, Remote: false}}})

	cons := &fakeCons{
		dirty: map[string]int64{"docs": 20_000, "scratch": 9_999},
		vols:  map[string]string{"/doc": "docs", "/scratch": "scratch"},
	}
	est := newEstimator(f.op, f.snap, nil, "", cons, nil)

	// Remote plan: must reintegrate "docs" (20 kB / 10 kB/s = 2 s).
	vols, bytes := est.reintegration("plan=remote")
	if len(vols) != 1 || vols[0] != "docs" || bytes != 20_000 {
		t.Fatalf("reintegration = %v, %d", vols, bytes)
	}
	p := est.Predict(solver.Alternative{Server: "srv", Plan: "remote"})
	base := 0.1 + 0.01 + 0.01 // cpu + bytes + rtt (cache warm below threshold effects)
	reint := 2.0
	if math.Abs(p.Latency.Seconds()-(base+reint)) > 0.3 {
		t.Fatalf("remote latency with reintegration = %v, want ~%vs", p.Latency, base+reint)
	}

	// Local plan: dirty volumes do not matter.
	volsLocal, bytesLocal := est.reintegration("plan=local")
	if len(volsLocal) != 0 || bytesLocal != 0 {
		t.Fatalf("local reintegration = %v, %d", volsLocal, bytesLocal)
	}
}

func TestEstimatorFilePredictionTimeAccounted(t *testing.T) {
	f := newEstimatorFixture(t)
	est := newEstimator(f.op, f.snap, nil, "", nil, nil)
	est.Predict(solver.Alternative{Plan: "local"})
	if est.filePredTime < 0 {
		t.Fatal("negative file prediction time")
	}
	// Memoized: a second prediction of the same key adds nothing.
	before := est.filePredTime
	est.Predict(solver.Alternative{Plan: "local"})
	if est.filePredTime != before {
		t.Fatal("memoized candidates recomputed")
	}
}
