package core

import (
	"fmt"
	"time"

	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/rpc"
	"spectra/internal/sim"
	"spectra/internal/wire"
)

// Wire-level modeling constants for the simulated transport.
const (
	// msgOverheadBytes approximates per-message framing and header cost.
	msgOverheadBytes = 96
	// probePingBytes and probeBulkBytes size the two probe exchanges.
	probePingBytes = 160
	probeBulkBytes = 64 * 1024
	// statusPollBytes approximates a status request/reply exchange.
	statusPollBytes = 640
)

// SimRuntime executes operations against the simulated testbed: transfers
// advance the virtual clock according to link models, computation runs on
// machine models, and the client's energy account is charged busy, network,
// or idle power depending on the phase — exactly the signal sources the
// monitors would observe on real hardware.
type SimRuntime struct {
	env *Env
	// network receives passive traffic observations and reachability.
	network *monitor.NetworkMonitor
}

var _ Runtime = (*SimRuntime)(nil)

// NewSimRuntime returns a runtime over the environment. The network
// monitor may be nil (no passive observation).
func NewSimRuntime(env *Env, network *monitor.NetworkMonitor) *SimRuntime {
	return &SimRuntime{env: env, network: network}
}

// Now implements Runtime.
func (r *SimRuntime) Now() time.Time { return r.env.Clock().Now() }

// HostService reports whether the client node offers the service, which
// makes local failover possible.
func (r *SimRuntime) HostService(service string) bool {
	_, ok := r.env.Host().Service(service)
	return ok
}

// LocalCall implements Runtime: the service runs on the host with the
// host's energy metered as busy/network power.
func (r *SimRuntime) LocalCall(service, optype string, payload []byte) ([]byte, callReport, error) {
	fn, ok := r.env.Host().Service(service)
	if !ok {
		return nil, callReport{}, fmt.Errorf("core: host does not offer service %q", service)
	}
	ctx := NewServiceContext(r.env.Clock(), r.env.Host(), r.env.HostAccount())
	out, err := fn(ctx, optype, payload)
	usage := ctx.Usage()
	rep := callReport{
		files: usage.Files,
		phases: phaseUsage{
			localSeconds: usage.ComputeSeconds,
			netSeconds:   usage.FetchSeconds,
		},
	}
	if err != nil {
		return nil, rep, fmt.Errorf("core: local %s/%s: %w", service, optype, err)
	}
	return out, rep, nil
}

// RemoteCall implements Runtime: the request crosses the link, the service
// runs on the server machine while the client idles, and the response
// returns. Both transfers are recorded as passive traffic observations.
// Traced calls (tc != nil) additionally return the server-side spans; the
// simulation shares one virtual clock, so they are exact, not rebased.
func (r *SimRuntime) RemoteCall(server, service, optype string, payload []byte, tc *wire.TraceContext) ([]byte, callReport, error) {
	node, link, ok := r.env.Server(server)
	if !ok {
		return nil, callReport{}, fmt.Errorf("core: unknown server %q", server)
	}
	fn, ok := node.Service(service)
	if !ok {
		return nil, callReport{}, fmt.Errorf("core: server %q does not offer service %q", server, service)
	}

	reqBytes := int64(len(payload) + msgOverheadBytes)
	upT, err := link.TransferTime(reqBytes)
	if err != nil {
		r.setReachable(server, false)
		return nil, callReport{}, fmt.Errorf("core: send to %q: %w", server, err)
	}
	clock := r.env.Clock()
	clock.Sleep(upT)
	r.env.HostAccount().DrainNetwork(upT)
	r.recordTraffic(server, reqBytes, upT)
	link.RecordTransfer(reqBytes, 0)

	// Server-side execution: the client idles while the server computes
	// (and fetches any uncached files over its own file-server link).
	ctx := NewServiceContext(clock, node, nil)
	svcStart := clock.Now()
	out, err := fn(ctx, optype, payload)
	svcT := clock.Now().Sub(svcStart)
	r.env.HostAccount().DrainIdle(svcT)
	usage := ctx.Usage()
	if err != nil {
		return nil, callReport{}, fmt.Errorf("core: remote %s on %q: %w", service, server, err)
	}

	respBytes := int64(len(out) + msgOverheadBytes)
	downT, err := link.TransferTime(respBytes)
	if err != nil {
		r.setReachable(server, false)
		return nil, callReport{}, fmt.Errorf("core: receive from %q: %w", server, err)
	}
	respStart := clock.Now()
	clock.Sleep(downT)
	r.env.HostAccount().DrainNetwork(downT)
	r.recordTraffic(server, respBytes, downT)
	link.RecordTransfer(0, respBytes)
	r.setReachable(server, true)

	var serverSpans []obs.Span
	if tc != nil {
		// The simulated server dispatches immediately (no queueing model),
		// so the queue span is zero-length at the service start.
		svcEnd := svcStart.Add(svcT)
		serverSpans = []obs.Span{
			{ID: 0, Parent: -1, Name: obs.SpanServerQueue, Origin: server, Start: svcStart, End: svcStart},
			{ID: 1, Parent: -1, Name: obs.SpanServerExec, Origin: server, Start: svcStart, End: svcEnd},
			{ID: 2, Parent: -1, Name: obs.SpanServerRespond, Origin: server, Start: respStart, End: respStart.Add(downT)},
		}
	}

	rep := callReport{
		bytesSent:        reqBytes,
		bytesReceived:    respBytes,
		rpcs:             1,
		remoteMegacycles: usage.Megacycles,
		files:            usage.Files,
		phases: phaseUsage{
			netSeconds:  sim.Seconds(upT + downT),
			idleSeconds: sim.Seconds(svcT),
		},
		serverSpans: serverSpans,
	}
	return out, rep, nil
}

// Reintegrate implements Runtime: dirty volume data crosses the host's
// file-server link before becoming visible to other machines.
func (r *SimRuntime) Reintegrate(volume string) (int64, time.Duration, error) {
	host := r.env.Host()
	bytes := host.Coda().VolumeDirtyBytes(volume)
	if bytes == 0 {
		return 0, 0, nil
	}
	var t time.Duration
	if host.FSLink() != nil {
		var err error
		t, err = host.FSLink().TransferTime(bytes)
		if err != nil {
			return 0, 0, fmt.Errorf("core: reintegrate %q: %w", volume, err)
		}
	}
	if _, err := host.Coda().Reintegrate(volume); err != nil {
		return 0, 0, fmt.Errorf("core: reintegrate %q: %w", volume, err)
	}
	r.env.Clock().Sleep(t)
	r.env.HostAccount().DrainNetwork(t)
	return bytes, t, nil
}

// PollServer implements Runtime: a small status RPC, observed by the
// network monitor like any other exchange.
func (r *SimRuntime) PollServer(server string) (*wire.ServerStatus, error) {
	node, link, ok := r.env.Server(server)
	if !ok {
		return nil, fmt.Errorf("core: unknown server %q", server)
	}
	t, err := link.RoundTripTime(statusPollBytes/2, statusPollBytes/2)
	if err != nil {
		r.setReachable(server, false)
		return nil, fmt.Errorf("core: poll %q: %w", server, err)
	}
	r.env.Clock().Sleep(t)
	r.env.HostAccount().DrainNetwork(t)
	r.recordTraffic(server, statusPollBytes, t)
	r.setReachable(server, true)

	m := node.Machine()
	cached := node.Coda().CachedPaths()
	files := make([]string, 0, len(cached))
	for path := range cached {
		files = append(files, path)
	}
	return &wire.ServerStatus{
		Name:         server,
		SpeedMHz:     m.SpeedMHz(),
		LoadFraction: m.LoadFraction(),
		AvailMHz:     m.AvailableMHz(),
		CachedFiles:  files,
		FetchRateBps: node.FetchRateBps(),
		Services:     node.ServiceNames(),
	}, nil
}

// Probe implements Runtime: one small and one bulk exchange seed the
// bandwidth and latency estimates for the server's path.
func (r *SimRuntime) Probe(server string) error {
	_, link, ok := r.env.Server(server)
	if !ok {
		return fmt.Errorf("core: unknown server %q", server)
	}
	for _, size := range []int64{probePingBytes, probeBulkBytes} {
		t, err := link.RoundTripTime(size/2, size/2)
		if err != nil {
			r.setReachable(server, false)
			return fmt.Errorf("core: probe %q: %w", server, err)
		}
		r.env.Clock().Sleep(t)
		r.env.HostAccount().DrainNetwork(t)
		r.recordTraffic(server, size, t)
	}
	r.setReachable(server, true)
	return nil
}

func (r *SimRuntime) recordTraffic(server string, bytes int64, elapsed time.Duration) {
	if r.network == nil {
		return
	}
	r.network.Log(server).Record(rpc.TrafficObservation{
		Bytes:   bytes,
		Elapsed: elapsed,
		When:    r.env.Clock().Now(),
	})
}

func (r *SimRuntime) setReachable(server string, ok bool) {
	if r.network == nil {
		return
	}
	r.network.SetReachable(server, ok)
}
