package core

import (
	"fmt"
	"time"

	"spectra/internal/coda"
	"spectra/internal/energy"
	"spectra/internal/monitor"
	"spectra/internal/obs"
	"spectra/internal/predict"
	"spectra/internal/sim"
	"spectra/internal/simnet"
	"spectra/internal/solver"
)

// SimServer describes one candidate server in a simulated testbed.
type SimServer struct {
	Name    string
	Machine *sim.Machine
	// Link connects the client to this server.
	Link *simnet.Link
	// FSLink connects this server to the file servers; nil shares Link.
	FSLink *simnet.Link
}

// SimOptions describes a simulated testbed to assemble.
type SimOptions struct {
	// Start is the virtual epoch; zero selects a fixed instant.
	Start time.Time
	// Host is the client machine; required.
	Host *sim.Machine
	// HostFSLink connects the client to the file servers; required for
	// file-using workloads.
	HostFSLink *simnet.Link
	// Servers are the candidate compute servers.
	Servers []SimServer
	// Meter selects the battery measurement driver; nil selects the exact
	// (multimeter-style) meter.
	Meter func(*sim.Battery) energy.Meter
	// UsageLogDir enables persistent usage logs when non-empty.
	UsageLogDir string
	// Models, Solver, Exhaustive pass through to the client Config.
	Models     ModelOptions
	Solver     solver.Options
	Exhaustive bool
	// Failover and Health tune transparent recovery and server health
	// tracking; zero values enable both with defaults.
	Failover FailoverOptions
	Health   HealthOptions
	// Obs enables metrics, decision traces, and prediction-accuracy
	// accounting; nil disables observability.
	Obs *obs.Observer
	// Cache tunes the placement-decision cache; the zero value disables it
	// (a deterministic replay wants every Begin to deliberate).
	Cache CacheOptions
	// SnapshotTTL caches the decision snapshot; 0 (the default) disables
	// caching, which is right for deterministic simulation where virtual
	// time may not advance between Begins. Benchmarks opt in to measure the
	// warm path.
	SnapshotTTL time.Duration
	// OverheadClock times decision overheads; nil selects the system clock.
	OverheadClock sim.Clock
}

// SimSetup is an assembled simulated deployment: environment, monitors,
// runtime, and Spectra client, wired the way the paper's testbed was.
type SimSetup struct {
	Env        *Env
	Client     *Client
	Clock      *sim.VirtualClock
	FileServer *coda.FileServer
	Adaptor    *energy.GoalAdaptor
	Network    *monitor.NetworkMonitor
	Remote     *monitor.RemoteProxyMonitor
	Runtime    *SimRuntime
	Meter      energy.Meter
}

// NewSimSetup assembles a complete simulated Spectra deployment.
func NewSimSetup(opts SimOptions) (*SimSetup, error) {
	if opts.Host == nil {
		return nil, fmt.Errorf("core: SimOptions needs a Host machine")
	}
	start := opts.Start
	if start.IsZero() {
		start = time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	clock := sim.NewVirtualClock(start)
	fileServer := coda.NewFileServer()

	hostCoda := coda.NewClient(opts.Host.Name(), fileServer, 0)
	host := NewNode(opts.Host, hostCoda, opts.HostFSLink)
	env := NewEnv(clock, fileServer, host)

	var serverNames []string
	for _, s := range opts.Servers {
		if s.Machine == nil || s.Link == nil {
			return nil, fmt.Errorf("core: server %q needs a machine and a link", s.Name)
		}
		fsLink := s.FSLink
		if fsLink == nil {
			fsLink = s.Link
		}
		node := NewNode(s.Machine, coda.NewClient(s.Name, fileServer, 0), fsLink)
		env.AddServer(s.Name, node, s.Link)
		serverNames = append(serverNames, s.Name)
	}

	battery := opts.Host.Battery()
	if battery == nil {
		battery = sim.NewBattery(1e9)
	}
	meterFn := opts.Meter
	if meterFn == nil {
		meterFn = func(b *sim.Battery) energy.Meter { return energy.NewExactMeter(b) }
	}
	meter := meterFn(battery)
	adaptor := energy.NewGoalAdaptor(clock, meter)

	network := monitor.NewNetworkMonitor()
	remote := monitor.NewRemoteProxyMonitor()
	monitors := monitor.NewSet(
		monitor.NewCPUMonitor(opts.Host),
		network,
		monitor.NewBatteryMonitor(meter, adaptor, env.HostAccount(), opts.Host),
		monitor.NewFileCacheMonitor(hostCoda, host.FetchRateBps),
		remote,
	)

	var usageLog *predict.UsageLog
	if opts.UsageLogDir != "" {
		var err error
		usageLog, err = predict.NewUsageLog(opts.UsageLogDir)
		if err != nil {
			return nil, err
		}
	}

	if opts.Obs != nil {
		monitors.SetMetrics(opts.Obs.Registry)
	}

	runtime := NewSimRuntime(env, network)
	client, err := NewClient(Config{
		Runtime:       runtime,
		Monitors:      monitors,
		Network:       network,
		Consistency:   hostCoda,
		Servers:       serverNames,
		UsageLog:      usageLog,
		Models:        opts.Models,
		Solver:        opts.Solver,
		Exhaustive:    opts.Exhaustive,
		Failover:      opts.Failover,
		Health:        opts.Health,
		Obs:           opts.Obs,
		Cache:         opts.Cache,
		SnapshotTTL:   opts.SnapshotTTL,
		OverheadClock: opts.OverheadClock,
	})
	if err != nil {
		return nil, err
	}
	return &SimSetup{
		Env:        env,
		Client:     client,
		Clock:      clock,
		FileServer: fileServer,
		Adaptor:    adaptor,
		Network:    network,
		Remote:     remote,
		Runtime:    runtime,
		Meter:      meter,
	}, nil
}

// Refresh polls every server and probes the network, giving the monitors a
// current view before decisions are made. Call it after changing
// environment conditions, as the background activity of a live deployment
// would.
func (s *SimSetup) Refresh() {
	s.Client.PollServers()
	s.Client.Probe()
	// Sample the local monitors too (e.g. the CPU monitor's smoothed load).
	s.Client.Monitors().Snapshot(s.Clock.Now(), s.Client.Servers())
}
