package core

import (
	"testing"
	"time"

	"spectra/internal/sim"
	"spectra/internal/solver"
)

func TestAnnounceRegistryLifecycle(t *testing.T) {
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	r := NewAnnounceRegistry(clock, 10*time.Second)

	if got := r.Discover(); len(got) != 0 {
		t.Fatalf("empty registry discovered %v", got)
	}
	r.Announce("beta")
	r.Announce("alpha")
	r.Announce("") // ignored
	if got := r.Discover(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("discover = %v, want [alpha beta]", got)
	}

	// Refreshing keeps a server alive past the original expiry.
	clock.Advance(8 * time.Second)
	r.Announce("alpha")
	clock.Advance(5 * time.Second) // beta expired (13s), alpha fresh (5s)
	if got := r.Discover(); len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("discover after expiry = %v, want [alpha]", got)
	}

	r.Withdraw("alpha")
	if got := r.Discover(); len(got) != 0 {
		t.Fatalf("discover after withdraw = %v", got)
	}
}

func TestAnnounceRegistryDefaultTTL(t *testing.T) {
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	r := NewAnnounceRegistry(clock, 0)
	r.Announce("s")
	clock.Advance(29 * time.Second)
	if got := r.Discover(); len(got) != 1 {
		t.Fatalf("default ttl expired too early: %v", got)
	}
	clock.Advance(2 * time.Second)
	if got := r.Discover(); len(got) != 0 {
		t.Fatalf("default ttl never expired: %v", got)
	}
}

// TestDiscoveryExtendsDecisionSpace wires an AnnounceRegistry into a
// client: a dynamically announced server becomes a candidate and wins the
// placement decision; when its announcement lapses the client falls back.
func TestDiscoveryExtendsDecisionSpace(t *testing.T) {
	setup := newToySetup(t)
	registry := NewAnnounceRegistry(setup.Clock, time.Hour)

	// Rebuild the client with the registry and no static servers.
	client, err := NewClient(Config{
		Runtime:     setup.Client.Runtime(),
		Monitors:    setup.Client.Monitors(),
		Network:     setup.Network,
		Consistency: setup.Env.Host().Coda(),
		Registry:    registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	op, err := client.RegisterFidelity(toySpec())
	if err != nil {
		t.Fatal(err)
	}

	// Nothing announced: only the local plan exists.
	octx, err := client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Candidates != 1 {
		t.Fatalf("candidates = %d, want 1 before discovery", octx.Decision().Candidates)
	}
	octx.Abort()

	// The server announces itself; after a poll it joins the space.
	registry.Announce("big")
	client.PollServers()
	client.Probe()
	octx, err = client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Candidates != 2 {
		t.Fatalf("candidates = %d, want 2 after discovery", octx.Decision().Candidates)
	}
	octx.Abort()

	// Train so the remote plan wins, proving the discovered server is used.
	for i := 0; i < 3; i++ {
		for _, alt := range []solver.Alternative{
			{Plan: "local"},
			{Server: "big", Plan: "remote"},
		} {
			o, err := client.BeginForced(op, alt, nil, "")
			if err != nil {
				t.Fatal(err)
			}
			if alt.Plan == "remote" {
				if _, err := o.DoRemoteOp("run", []byte("x")); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := o.DoLocalOp("run", []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := o.End(); err != nil {
				t.Fatal(err)
			}
		}
	}
	octx, err = client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := octx.Decision().Alternative; got.Server != "big" {
		t.Fatalf("decision = %+v, want discovered server", got)
	}
	octx.Abort()

	// Withdrawal shrinks the space again.
	registry.Withdraw("big")
	octx, err = client.BeginFidelityOp(op, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if octx.Decision().Candidates != 1 {
		t.Fatalf("candidates after withdrawal = %d, want 1", octx.Decision().Candidates)
	}
	octx.Abort()
}
